package redshift

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redshift/internal/faults"
)

// This file is the elasticity half of the chaos suite: the PR's headline
// claim is that the full fault battery passes DURING a live online resize
// with concurrent read and write traffic — reads stay bit-identical to a
// fault-free static twin across the endpoint swap, and writes never get
// lost (they may see retryable rejections only inside the bounded cutover
// window). Run with `make chaos-resize`.

// resizeWriter keeps inserting into its own table for the whole resize,
// treating retryable rejections per the client contract: back off and
// resend the same statement. It reports how many rows landed and how many
// retryable rejections it absorbed; any non-retryable failure is fatal
// (a lost write).
type resizeWriter struct {
	landed  atomic.Int64
	retried atomic.Int64
	fatal   atomic.Value // error
}

func (rw *resizeWriter) run(w *Warehouse, id int, stop <-chan struct{}) {
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		stmt := fmt.Sprintf(`INSERT INTO audit VALUES (%d, %d)`, id, i)
		for {
			_, err := w.Execute(stmt)
			if err == nil {
				rw.landed.Add(1)
				break
			}
			if !faults.Retryable(err) {
				rw.fatal.Store(err)
				return
			}
			rw.retried.Add(1)
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

// TestChaosResizeLiveTraffic runs the PR-4 fault battery concurrently with
// an online resize and live writers. Invariants checked:
//
//   - every battery read, before/during/after the endpoint swap, is
//     bit-identical to a fault-free static twin
//   - every write either lands exactly once or is retried through a
//     retryable rejection — zero lost, zero duplicated
//   - the decommissioned source rejects writes through stale handles
//   - the resize fault sites actually fired (the workflow retried through
//     injected copy faults, not around them)
//   - nothing leaks: no in-flight batches, no running queries
func TestChaosResizeLiveTraffic(t *testing.T) {
	seed := chaosSeed(t)

	clean := launch(t, Options{Nodes: 2})
	seedChaosTables(t, clean, 1000)

	chaos := launch(t, Options{
		Nodes:           2,
		BlockCacheBytes: -1,
		FaultPlan: &FaultPlan{
			Seed: seed,
			Sites: map[string]FaultRule{
				// The PR-4 read-path battery.
				"storage.read.primary": {Prob: 0.05, Err: "injected disk error"},
				"cluster.fetch.secondary": {Prob: 0.3, Err: "injected link error",
					Latency: 200 * time.Microsecond, LatencyProb: 0.2},
				"s3.backup.get":      {Latency: 300 * time.Microsecond, LatencyProb: 0.3},
				"exec.exchange.send": {Latency: 100 * time.Microsecond, LatencyProb: 0.1},
				// The resize workflow's own sites: copy and catch-up see a
				// capped number of guaranteed injections (Count < the retry
				// policy's attempts, so the workflow must retry through them
				// but can never exhaust) plus latency; the cutover only gets
				// latency — it must stay slow-but-successful for this test,
				// the crash test below owns the failure path.
				faults.SiteResizeCopy: {Prob: 1, Count: 2, Err: "injected copy fault",
					Latency: 500 * time.Microsecond, LatencyProb: 1},
				faults.SiteResizeCatchup: {Prob: 1, Count: 1, Err: "injected catchup fault",
					Latency: 200 * time.Microsecond, LatencyProb: 1},
				faults.SiteResizeCutover: {Latency: 200 * time.Microsecond, LatencyProb: 1},
			},
		},
	})
	seedChaosTables(t, chaos, 1000)
	chaos.MustExecute(`CREATE TABLE audit (writer BIGINT, seq BIGINT) DISTSTYLE KEY DISTKEY(seq)`)
	if _, _, err := chaos.Backup(); err != nil {
		t.Fatal(err)
	}

	want := make([]string, len(chaosBattery))
	for i, q := range chaosBattery {
		want[i] = rowsString(clean.MustExecute(q).Rows)
	}

	src := chaos.DB()
	stop := make(chan struct{})
	writers := make([]*resizeWriter, 2)
	var wg sync.WaitGroup
	for wi := range writers {
		writers[wi] = &resizeWriter{}
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			writers[wi].run(chaos, wi, stop)
		}(wi)
	}

	resizeDone := make(chan error, 1)
	go func() {
		_, err := chaos.Resize(3)
		resizeDone <- err
	}()

	// The battery loops across the whole resize — queries land on the
	// source, then on the target after the swap, and must agree with the
	// static twin either way.
	round := 0
	for done := false; !done; round++ {
		select {
		case err := <-resizeDone:
			if err != nil {
				t.Fatalf("seed %d: online resize failed under faults: %v", seed, err)
			}
			done = true
		default:
		}
		for i, q := range chaosBattery {
			res, err := chaos.Execute(q)
			if err != nil {
				t.Fatalf("seed %d round %d query %d failed during live resize: %v", seed, round, i, err)
			}
			if got := rowsString(res.Rows); got != want[i] {
				t.Errorf("seed %d round %d query %d diverged during live resize:\ngot:\n%swant:\n%s",
					seed, round, i, got, want[i])
			}
		}
	}
	close(stop)
	wg.Wait()

	var landed, retried int64
	for _, rw := range writers {
		if err := rw.fatal.Load(); err != nil {
			t.Fatalf("seed %d: writer hit a non-retryable error (lost write): %v", seed, err)
		}
		landed += rw.landed.Load()
		retried += rw.retried.Load()
	}
	res := chaos.MustExecute(`SELECT COUNT(*) FROM audit`)
	if got := res.Rows[0][0].I; got != landed {
		t.Errorf("seed %d: audit rows = %d, writers landed %d — writes lost or duplicated across the swap", seed, got, landed)
	}
	t.Logf("seed %d: %d battery rounds, %d writes landed, %d retryable rejections absorbed", seed, round, landed, retried)

	// The endpoint moved and the source is permanently write-dead.
	if chaos.DB() == src {
		t.Fatal("endpoint did not move")
	}
	if chaos.Nodes() != 3 {
		t.Errorf("nodes = %d after resize, want 3", chaos.Nodes())
	}
	if !src.Decommissioned() {
		t.Error("source not decommissioned after swap")
	}
	if _, err := src.Execute(`INSERT INTO audit VALUES (99, 99)`); err == nil {
		t.Error("decommissioned source accepted a write via a stale handle")
	}

	// stv_resize on the new primary records the completed workflow.
	pr := chaos.MustExecute(`SELECT active, phase FROM stv_resize`)
	if len(pr.Rows) != 1 || pr.Rows[0][0].I != 0 || pr.Rows[0][1].S != "done" {
		t.Errorf("stv_resize = %v, want inactive/done", pr.Rows)
	}

	// The resize fault sites genuinely fired.
	siteInjected := map[string]int64{}
	for _, s := range chaos.Faults().Snapshot() {
		siteInjected[s.Site] = s.Injected
	}
	if siteInjected[faults.SiteResizeCopy] == 0 {
		t.Errorf("seed %d: no faults injected at %s — the workflow never retried through a copy fault", seed, faults.SiteResizeCopy)
	}

	assertChaosClean(t, chaos)
}

// TestChaosResizeCrashAtEachPhase kills the resize at every workflow phase
// via its fault site (probability 1 exhausts the per-table retry policy)
// and checks the rollback contract each time: the source stays
// authoritative and writable, the endpoint never moves, stv_resize records
// the failed phase, no backups leak, and nothing stays in flight.
func TestChaosResizeCrashAtEachPhase(t *testing.T) {
	cases := []struct {
		site  string
		phase string
	}{
		{faults.SiteResizeCopy, "snapshot-copy"},
		{faults.SiteResizeCatchup, "catch-up"},
		{faults.SiteResizeCutover, "cutover"},
	}
	for _, tc := range cases {
		t.Run(tc.phase, func(t *testing.T) {
			w := launch(t, Options{
				Nodes: 2,
				FaultPlan: &FaultPlan{
					Seed:  chaosSeed(t),
					Sites: map[string]FaultRule{tc.site: {Prob: 1, Err: "injected " + tc.phase + " crash"}},
				},
			})
			seedEvents(t, w, 500)
			src := w.DB()
			backupsBefore := len(w.Backups())

			// The catch-up phase only runs when a write lands between the
			// snapshot copy and the staleness check; slow the copy down and
			// write under it to force a catch-up round.
			stop := make(chan struct{})
			var writerWg sync.WaitGroup
			if tc.site == faults.SiteResizeCatchup {
				w.Faults().SetRule(faults.SiteResizeCopy,
					FaultRule{Latency: 2 * time.Millisecond, LatencyProb: 1})
				writerWg.Add(1)
				go func() {
					defer writerWg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						_, _ = w.Execute(fmt.Sprintf(`INSERT INTO events VALUES (%d, 1, 'view', 1)`, 10_000+i))
						time.Sleep(100 * time.Microsecond)
					}
				}()
			}

			_, err := w.Resize(4)
			close(stop)
			writerWg.Wait()
			if err == nil {
				t.Fatalf("resize survived a guaranteed fault at %s", tc.site)
			}
			if !strings.Contains(err.Error(), tc.phase) {
				t.Errorf("error %q does not name the failed phase %q", err, tc.phase)
			}

			// Rollback contract: endpoint unmoved, source authoritative and
			// writable again.
			if w.DB() != src {
				t.Fatal("endpoint moved despite the failed resize")
			}
			if src.ReadOnly() {
				t.Error("source still read-only after rollback")
			}
			if _, err := w.Execute(`INSERT INTO events VALUES (20000, 2, 'buy', 3)`); err != nil {
				t.Errorf("write after rollback failed: %v", err)
			}
			if res := w.MustExecute(`SELECT COUNT(*) FROM events`); res.Rows[0][0].I < 501 {
				t.Errorf("post-rollback count = %d", res.Rows[0][0].I)
			}
			pr := w.MustExecute(`SELECT active, phase FROM stv_resize`)
			if len(pr.Rows) != 1 || pr.Rows[0][0].I != 0 || pr.Rows[0][1].S != "failed: "+tc.phase {
				t.Errorf("stv_resize = %v, want inactive/failed: %s", pr.Rows, tc.phase)
			}
			if n := w.Metrics().Counter("resize_failures_total").Value(); n != 1 {
				t.Errorf("resize_failures_total = %d, want 1", n)
			}
			// No scratch state leaks: a failed resize never reaches the
			// pre-swap backup, and the dead target leaves no work in flight.
			if got := len(w.Backups()); got != backupsBefore {
				t.Errorf("backups leaked: %d -> %d", backupsBefore, got)
			}
			assertChaosClean(t, w)

			// The workflow is retryable: clear the fault and resize again.
			w.Faults().SetRule(tc.site, FaultRule{})
			w.Faults().SetRule(faults.SiteResizeCopy, FaultRule{})
			if _, err := w.Resize(4); err != nil {
				t.Fatalf("clean resize after rollback failed: %v", err)
			}
			if w.Nodes() != 4 {
				t.Errorf("nodes = %d after retried resize, want 4", w.Nodes())
			}
			assertChaosClean(t, w)
		})
	}
}

// TestChaosBurstRouting exercises concurrency scaling under injected route
// faults: WLM pressure on a 1-slot primary crosses the cost threshold, a
// burst cluster hydrates from a fresh backup, and routed reads come back
// bit-identical to the primary's answers at the routed snapshot version.
// Injected routing faults and post-write staleness both fall back to the
// primary — a wrong or dropped result is impossible by construction, so
// the assertion is exact equality on every query.
func TestChaosBurstRouting(t *testing.T) {
	seed := chaosSeed(t)
	w := launch(t, Options{
		Nodes:      2,
		QuerySlots: 1,
		// No result cache: the battery repeats identical queries, and a
		// cache hit would answer them without ever queueing on the WLM —
		// no queue, no pressure, no scale-out to test.
		ResultCacheBytes: -1,
		BurstThreshold:   1e-9, // any measurable queue wait triggers scale-out
		BurstRetireAfter: 200 * time.Millisecond,
		FaultPlan: &FaultPlan{
			Seed: seed,
			Sites: map[string]FaultRule{
				faults.SiteBurstRoute: {Prob: 0.2, Err: "injected route fault"},
				"s3.backup.get":       {Latency: 200 * time.Microsecond, LatencyProb: 0.3},
			},
		},
	})
	defer w.Close()
	seedChaosTables(t, w, 1000)

	want := make([]string, len(chaosBattery))
	for i, q := range chaosBattery {
		want[i] = rowsString(w.MustExecute(q).Rows)
	}

	// Saturate the single WLM slot from many goroutines so queue pressure
	// stays above threshold while the battery repeats.
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				for i, q := range chaosBattery {
					res, err := w.Execute(q)
					if err != nil {
						errCh <- fmt.Errorf("round %d query %d: %w", round, i, err)
						return
					}
					if got := rowsString(res.Rows); got != want[i] {
						errCh <- fmt.Errorf("round %d query %d diverged:\ngot:\n%swant:\n%s", round, i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("seed %d: %v", seed, err)
	}

	routed := w.Metrics().Counter("burst_routed_queries_total").Value()
	if routed == 0 {
		t.Fatalf("seed %d: no queries were routed to the burst cluster", seed)
	}
	if n := w.Metrics().Counter("burst_hydrations_total").Value(); n == 0 {
		t.Errorf("seed %d: burst cluster never hydrated", seed)
	}
	t.Logf("seed %d: %d routed, %d fallbacks, %d hydrations", seed, routed,
		w.Metrics().Counter("burst_fallbacks_total").Value(),
		w.Metrics().Counter("burst_hydrations_total").Value())

	// Staleness safety: a write moves the tables past the burst snapshot;
	// subsequent reads must reflect it immediately (burst answers at the
	// old snapshot are no longer eligible).
	w.MustExecute(`INSERT INTO events VALUES (99999, 1, 'buy', 2.5)`)
	res := w.MustExecute(`SELECT COUNT(*) FROM events`)
	if res.Rows[0][0].I != 1001 {
		t.Fatalf("post-write count = %d, want 1001 (stale burst answer?)", res.Rows[0][0].I)
	}

	// The cluster retires once the queue stays empty.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		rows := w.MustExecute(`SELECT state FROM stv_burst_clusters`).Rows
		allDone := len(rows) > 0
		for _, r := range rows {
			if r[0].S == "serving" || r[0].S == "hydrating" {
				allDone = false
			}
		}
		if allDone {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	sts := w.MustExecute(`SELECT burst_cluster, state, routed_queries FROM stv_burst_clusters ORDER BY burst_cluster`)
	if len(sts.Rows) == 0 {
		t.Fatal("stv_burst_clusters is empty after routing")
	}
	retired := false
	for _, r := range sts.Rows {
		if r[1].S == "retired" {
			retired = true
		}
	}
	if !retired {
		t.Errorf("no burst cluster retired after the queue drained: %v", sts.Rows)
	}
	if n := w.Metrics().Counter("burst_retirements_total").Value(); n == 0 {
		t.Error("burst_retirements_total = 0 after retirement")
	}
	assertChaosClean(t, w)
}
