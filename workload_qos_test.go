package redshift

import (
	"context"
	"testing"
	"time"

	"redshift/internal/workload"
)

// qosWorkload is the pinned QoS battery mix: a dashboard tenant firing
// short repeated SELECTs while an ETL tenant saturates its queue with
// heavy transform waves. The seed is pinned — a QoS regression here
// replays byte-identically anywhere.
func qosWorkload(seed int64) workload.Workload {
	return workload.Workload{
		Seed:     seed,
		Duration: 4 * time.Second,
		Scale:    2,
		Tenants: []workload.TenantSpec{
			{Name: "wallboard", Archetype: workload.Dashboard, Queue: "dash", Rate: 50, Burstiness: 0.3, BurstSize: 6, Repeat: 0.5, Sessions: 4},
			{Name: "nightly-etl", Archetype: workload.ETL, Queue: "etl", Rate: 12, Sessions: 4},
		},
	}
}

// qosQueues is the named-queue layout under test: a short-query fast lane,
// a dashboard queue, and a deliberately narrow ETL queue. The express
// threshold sits between the dashboard shorts' plan cost (≲1k estimated
// rows at scale 2) and the ETL transforms' (≳4k), so the fast lane admits
// the former and the query_group routes the latter.
func qosQueues() []QueueSpec {
	return []QueueSpec{
		{Name: "express", Slots: 2, MaxEstRows: 4000, Priority: 10},
		{Name: "dash", Slots: 1, Priority: 5},
		{Name: "etl", Slots: 1, MemFraction: 0.5},
		{Name: "default", Slots: 1},
	}
}

func replayQoS(t *testing.T, w *Warehouse, wl workload.Workload) *workload.Report {
	t.Helper()
	rep, err := workload.Replay(context.Background(), workload.Synthesize(wl),
		workload.SessionOpener(w), wl, workload.ReplayOptions{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e := rep.FirstError(); e != "" {
		t.Fatalf("replay error: %s", e)
	}
	return rep
}

// TestWorkloadQoSFastLane replays the pinned mix against named queues and
// proves the QoS guarantees hold while the ETL queue is saturated: short
// queries stay in their lanes (zero cross-queue leakage), their p99 stays
// bounded, and the stv_wlm_* tables account for every admission.
func TestWorkloadQoSFastLane(t *testing.T) {
	w := launch(t, Options{Nodes: 2, WLMQueues: qosQueues()})
	rep := replayQoS(t, w, qosWorkload(42))

	short := rep.Group("wallboard", workload.KindShort)
	if short.Count < 50 {
		t.Fatalf("only %d short queries replayed", short.Count)
	}
	// Lane isolation: a dashboard query may ride the fast lane, fall back
	// to its dash queue, or be a cache hit — it must never take an ETL slot.
	for q, n := range short.Queues {
		switch q {
		case "express", "dash", "":
		default:
			t.Errorf("%d dashboard queries leaked into queue %q", n, q)
		}
	}
	if short.Queues["express"] == 0 {
		t.Error("no dashboard query rode the fast lane")
	}
	if short.CacheHits == 0 {
		t.Error("repeated dashboard queries never hit the result cache")
	}
	// Bounded tail while ETL churns: generous enough for a loaded CI
	// runner, tight enough that head-of-line blocking behind multi-hundred-
	// millisecond transform waves would trip it.
	if short.P99 > 500*time.Millisecond {
		t.Errorf("fast-lane p99 = %v under ETL saturation", short.P99)
	}

	transforms := rep.Group("nightly-etl", workload.KindTransform)
	if transforms.Count == 0 {
		t.Fatal("no ETL transforms replayed")
	}
	for q := range transforms.Queues {
		if q == "dash" {
			t.Error("ETL transform admitted into the dashboard queue")
		}
	}

	// The system tables account for the load: every queue within its slot
	// budget, ETL actually queued, and the books drained.
	res := w.MustExecute(`SELECT queue, slots, peak_active, total_queries FROM stv_wlm_queues`)
	seen := map[string]bool{}
	for _, r := range res.Rows {
		name, slots, peak := r[0].S, r[1].I, r[2].I
		seen[name] = true
		if slots > 0 && peak > slots {
			t.Errorf("queue %s peak active %d exceeded its %d slots", name, peak, slots)
		}
		if name == "etl" && r[3].I == 0 {
			t.Error("ETL queue admitted nothing")
		}
	}
	for _, q := range []string{"express", "dash", "etl", "default"} {
		if !seen[q] {
			t.Errorf("stv_wlm_queues missing queue %q", q)
		}
	}
	res = w.MustExecute(`SELECT queue, active, queued FROM stv_wlm_queue_state`)
	for _, r := range res.Rows {
		if r[1].I != 0 || r[2].I != 0 {
			t.Errorf("queue %s not drained after replay: active %d queued %d", r[0].S, r[1].I, r[2].I)
		}
	}
}

// twinWorkload is the twin-comparison mix: slots are scarce (2 total) and
// the ETL tenant offers more concurrent transforms than the whole cluster
// has slots, so a shared queue is certain to head-of-line block the
// dashboard's shorts behind transforms.
func twinWorkload(seed int64) workload.Workload {
	return workload.Workload{
		Seed:     seed,
		Duration: 4 * time.Second,
		// Scale 6 makes each transform tens of milliseconds — long enough
		// that a shared slot held by one is an unmissable head-of-line stall
		// for a millisecond-class short.
		Scale: 6,
		Tenants: []workload.TenantSpec{
			// Repeat 0: every short really executes — cache hits would dodge
			// the queue in both twins and dilute the comparison.
			{Name: "wallboard", Archetype: workload.Dashboard, Rate: 40, Repeat: 0, Sessions: 3},
			// 8 closed-loop ETL sessions offer more concurrent transforms
			// than the twin's 3 shared slots: the shared queue is saturated
			// by construction.
			{Name: "nightly-etl", Archetype: workload.ETL, Queue: "etl", Rate: 25, Sessions: 8},
		},
	}
}

// TestWorkloadQoSSingleQueueTwin replays the identical pinned stream
// against a single shared queue with the same total slot count — the
// ablation. Dashboard shorts head-of-line block behind ETL transforms
// there, so the named-queue run's short-query tail must beat the twin's.
func TestWorkloadQoSSingleQueueTwin(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	measure := func(seed int64) (named, single workload.Dist) {
		nw := launch(t, Options{Nodes: 2, WLMQueues: []QueueSpec{
			{Name: "express", Slots: 2, MaxEstRows: 4000, Priority: 10},
			{Name: "etl", Slots: 1},
		}})
		named = replayQoS(t, nw, twinWorkload(seed)).Group("wallboard", workload.KindShort)
		sw := launch(t, Options{Nodes: 2, QuerySlots: 3})
		wl := twinWorkload(seed)
		wl.Tenants[1].Queue = "" // no named queues to SET query_group to
		single = replayQoS(t, sw, wl).Group("wallboard", workload.KindShort)
		return named, single
	}
	named, single := measure(42)
	if named.P99 < single.P99 {
		t.Logf("short-query p99: named queues %v < single queue %v (avg wait %v vs %v)",
			named.P99, single.P99, named.AvgWait, single.AvgWait)
		return
	}
	// One retry with a fresh seed before declaring a QoS regression: the
	// ordering is structural, but a CI scheduler hiccup can smear one run.
	named2, single2 := measure(43)
	if named2.P99 >= single2.P99 {
		t.Errorf("fast lane lost to the single-queue twin twice: %v vs %v, then %v vs %v",
			named.P99, single.P99, named2.P99, single2.P99)
	}
}
