package redshift

import (
	"fmt"
	"strings"
	"testing"
)

// statsBattery exercises the counters most at risk of double counting
// under morsel workers: a pruning filter (blocks_skipped), a join
// (probe-side rows), and a grand aggregate (partial-agg batches).
var statsBattery = []string{
	`SELECT ts, SUM(amount) AS total FROM events WHERE ts >= 2000 GROUP BY ts ORDER BY ts`,
	`SELECT u.segment, COUNT(*) AS n, SUM(e.amount) AS total
		FROM events e JOIN users u ON e.user_id = u.id
		GROUP BY u.segment ORDER BY u.segment`,
	`SELECT COUNT(*), SUM(amount) FROM events`,
}

// stableSpanLines reduces an EXPLAIN ANALYZE rendering to its
// run-invariant fields: span names plus the row/batch/block counters.
// Durations, memory peaks, cache and dop attributes are stripped — those
// legitimately differ between serial and parallel runs.
func stableSpanLines(res *Result) string {
	var out strings.Builder
	for _, row := range res.Rows {
		fields := strings.Fields(strings.TrimLeft(row[0].S, " "))
		var keep []string
		for _, f := range fields {
			if strings.HasPrefix(f, "(") {
				continue
			}
			if i := strings.IndexByte(f, '='); i >= 0 {
				switch f[:i] {
				case "rows", "est_rows", "batches", "blocks_read", "blocks_skipped", "groups":
					keep = append(keep, f)
				}
				continue
			}
			keep = append(keep, f)
		}
		out.WriteString(strings.Join(keep, " "))
		out.WriteByte('\n')
	}
	return out.String()
}

// sliceStatsSnapshot reads stv_slice_stats into per-slice counter tuples.
func sliceStatsSnapshot(t *testing.T, w *Warehouse) map[int64][]int64 {
	t.Helper()
	res := w.MustExecute(`SELECT slice, scans, blocks_read, blocks_skipped, rows_read, bytes_read
		FROM stv_slice_stats ORDER BY slice`)
	snap := make(map[int64][]int64, len(res.Rows))
	for _, r := range res.Rows {
		vals := make([]int64, 0, len(r)-1)
		for _, d := range r[1:] {
			vals = append(vals, d.I)
		}
		snap[r[0].I] = vals
	}
	return snap
}

// sliceStatsDelta runs fn and reports how much each slice's cumulative
// counters moved, as a comparable string.
func sliceStatsDelta(t *testing.T, w *Warehouse, fn func()) string {
	t.Helper()
	before := sliceStatsSnapshot(t, w)
	fn()
	after := sliceStatsSnapshot(t, w)
	var b strings.Builder
	for sl := int64(0); sl < int64(len(after)); sl++ {
		fmt.Fprintf(&b, "slice %d:", sl)
		for i, v := range after[sl] {
			fmt.Fprintf(&b, " %d", v-before[sl][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelStatsMatchSerial is the no-double-counting regression: the
// same query run serially and at dop=4 must report identical rows=,
// est_rows=, batches= and block counters in EXPLAIN ANALYZE, identical
// stl_query scan totals, and identical stv_slice_stats movement — worker
// fan-out may not inflate (or lose) a single observed row or block.
func TestParallelStatsMatchSerial(t *testing.T) {
	seed := spillSeed(t)
	// No block cache: bytes_read and blocks_read stay run-invariant
	// instead of shifting between cold and warm executions.
	w := launch(t, Options{Nodes: 2, BlockCacheBytes: -1})
	seedSpillTables(t, w, seed, 4000, 1000)
	w.MustExecute(`ANALYZE events`)
	w.MustExecute(`ANALYZE users`)
	w.MustExecute(`SET result_cache TO off`)

	for i, q := range statsBattery {
		serialSpans := stableSpanLines(w.MustExecute(`EXPLAIN ANALYZE ` + q))
		serialSlices := sliceStatsDelta(t, w, func() { w.MustExecute(q) })
		serialRec := lastQueryRecord(t, w)

		w.MustExecute(`SET max_parallel_workers TO 4`)
		parOut := w.MustExecute(`EXPLAIN ANALYZE ` + q)
		parSpans := stableSpanLines(parOut)
		parSlices := sliceStatsDelta(t, w, func() { w.MustExecute(q) })
		parRec := lastQueryRecord(t, w)
		w.MustExecute(`SET max_parallel_workers TO default`)

		if !strings.Contains(rowsString(parOut.Rows), "dop=4") {
			t.Errorf("query %d: parallel EXPLAIN ANALYZE does not surface dop=4:\n%s",
				i, rowsString(parOut.Rows))
		}
		if serialSpans != parSpans {
			t.Errorf("query %d: EXPLAIN ANALYZE counters diverged between serial and dop=4:\nserial:\n%sparallel:\n%s",
				i, serialSpans, parSpans)
		}
		if serialSlices != parSlices {
			t.Errorf("query %d: stv_slice_stats moved differently under dop=4:\nserial:\n%sparallel:\n%s",
				i, serialSlices, parSlices)
		}
		if serialRec != parRec {
			t.Errorf("query %d: stl_query scan totals diverged:\nserial:  %s\nparallel: %s",
				i, serialRec, parRec)
		}
	}
}

// lastQueryRecord returns the newest stl_query record's run-invariant
// counters (result rows, blocks read/skipped, shuffle bytes).
func lastQueryRecord(t *testing.T, w *Warehouse) string {
	t.Helper()
	recs := w.DB().QueryLog().Records()
	if len(recs) == 0 {
		t.Fatal("no stl_query records")
	}
	r := recs[len(recs)-1]
	return fmt.Sprintf("%s rows=%d blocks_read=%d blocks_skipped=%d net_bytes=%d",
		r.SQL, r.Rows, r.BlocksRead, r.BlocksSkipped, r.NetBytes)
}
