// Scan-path benchmarks: the decoded-block buffer cache (hot vs cold) and
// predicate-first late materialization (decoded bytes vs selectivity).
// BENCH_scan.json records the pre-change baseline these are compared to.
package redshift_test

import (
	"fmt"
	"strings"
	"testing"

	"redshift"
)

// scanBenchWarehouse loads a 3-column table whose filter column f is
// unsorted (zone maps cannot prune), so the scan path itself is measured.
func scanBenchWarehouse(b *testing.B, opts redshift.Options, table string, rows int) *redshift.Warehouse {
	b.Helper()
	w, err := redshift.Launch(opts)
	if err != nil {
		b.Fatal(err)
	}
	w.MustExecute(fmt.Sprintf(`CREATE TABLE %s (id BIGINT, f BIGINT, tag VARCHAR(32))`, table))
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d|%d|tag-%08d-%08d\n", i, (i*2654435761)%1000000, i, i*7)
	}
	if err := w.PutObject("lake/"+table+"/a.csv", []byte(sb.String())); err != nil {
		b.Fatal(err)
	}
	w.MustExecute(fmt.Sprintf(`COPY %s FROM 's3://lake/%s/'`, table, table))
	return w
}

// decodedBytes sums the cumulative decoded-bytes counter across slices.
func decodedBytes(b *testing.B, w *redshift.Warehouse) int64 {
	b.Helper()
	res := w.MustExecute(`SELECT SUM(bytes_read) FROM stv_slice_stats`)
	return res.Rows[0][0].I
}

// BenchmarkScanHotCold measures the buffer cache: cold clears it before
// every run (every block decodes), warm runs entirely from cached vectors.
func BenchmarkScanHotCold(b *testing.B) {
	w := scanBenchWarehouse(b, redshift.Options{Nodes: 2}, "hotcold", 200000)
	query := `SELECT SUM(f), MAX(tag) FROM hotcold`
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.DB().BlockCache().Clear()
			w.MustExecute(query)
		}
	})
	b.Run("warm", func(b *testing.B) {
		w.MustExecute(query) // prime
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.MustExecute(query)
		}
		b.StopTimer()
		if decoded := decodedBytes(b, w); decoded == 0 {
			b.Fatal("no decode accounting at all")
		}
	})
}

// BenchmarkFilterSelectivity measures late materialization in isolation
// (cache disabled): at low selectivity the wide tag column short-circuits
// out of most blocks, so decoded bytes track survivors, not table size.
// The predicate is computed (f % N) so zone maps cannot serve it — the
// class of filter only predicate-first evaluation helps — and the small
// BlockCap gives empty blocks a realistic chance at 0.1%.
func BenchmarkFilterSelectivity(b *testing.B) {
	w := scanBenchWarehouse(b, redshift.Options{Nodes: 2, BlockCap: 256, BlockCacheBytes: -1}, "scanf", 120000)
	for _, tc := range []struct {
		name string
		hi   int
	}{
		{"sel0.1pct", 1000},
		{"sel10pct", 100000},
		{"sel90pct", 900000},
	} {
		b.Run(tc.name, func(b *testing.B) {
			query := fmt.Sprintf(`SELECT MAX(tag), SUM(id) FROM scanf WHERE f %% 1000000 < %d`, tc.hi)
			w.MustExecute(query)
			before := decodedBytes(b, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.MustExecute(query)
			}
			b.StopTimer()
			b.ReportMetric(float64(decodedBytes(b, w)-before)/float64(b.N), "decoded-B/op")
		})
	}
}
