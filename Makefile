GO ?= go

.PHONY: build test race bench bench-scan bench-spill bench-plan bench-serve bench-parallel bench-wlm chaos chaos-resize spill workload

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Vet plus race-detector runs over the packages with the most concurrency:
# the distributed cluster, the query engine and its operators, the shared
# block cache, and the telemetry registry — plus the root-level morsel
# worker suites (twin battery, cancel/fault storm, stats parity).
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/cluster ./internal/core ./internal/exec ./internal/storage ./internal/telemetry ./internal/wire
	SPILL_SEED=$(SPILL_SEED) $(GO) test -race -run TestParallel .

# Short randomized-fault run under the race detector: query battery with
# injected read errors and latency spikes must match a fault-free twin, a
# fully dead cluster must fail cleanly. The seed is pinned for CI and
# echoed by the suite on failure; replay with CHAOS_SEED=<seed> make chaos.
CHAOS_SEED ?= 20260805
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -run 'TestChaosFaultMasking|TestChaosAllReplicas|TestChaosTimeout' -v .

# Elasticity chaos battery under the race detector: the fault battery runs
# DURING a live online resize with concurrent writers (reads bit-identical
# to a fault-free twin across the endpoint swap, zero lost writes), the
# resize is killed at every phase and must roll back with the source
# authoritative, and concurrency-scaling burst routing stays bit-identical
# under injected route faults. Replay with CHAOS_SEED=<seed> make chaos-resize.
chaos-resize:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -run 'TestChaosResize|TestChaosBurst' -v .

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# One-iteration scan-path benchmarks: a CI smoke check that the cache and
# late-materialization paths stay runnable (BENCH_scan.json has real runs).
bench-scan:
	$(GO) test -bench 'ScanHotCold|FilterSelectivity' -benchtime 1x -run '^$$' .

# Memory-governance suite under the race detector: the spill twin battery
# (bit-identical results at unlimited/256KiB/64KiB grants), the mid-spill
# cancellation/timeout leak checks, and the operator-level property tests.
# The seed is pinned for CI; replay with SPILL_SEED=<seed> make spill.
SPILL_SEED ?= 20260805
spill:
	SPILL_SEED=$(SPILL_SEED) $(GO) test -race -run 'TestSpill|TestWorkMem' -v .
	SPILL_SEED=$(SPILL_SEED) $(GO) test -race -run 'TestSpill|TestStvQueryMemory' ./internal/core
	SPILL_SEED=$(SPILL_SEED) $(GO) test -race -run 'TestProp|TestAggAccounting' ./internal/exec

# One-iteration spill benchmarks: CI smoke that the grace-join and
# external-sort disk paths stay runnable (BENCH_spill.json has real runs).
bench-spill:
	$(GO) test -bench 'SpillJoin|ExternalSort' -benchtime 1x -run '^$$' ./internal/exec

# One-iteration plan-quality benchmark: CI smoke that the cost-based join
# reorderer and the syntax-order escape hatch both stay runnable
# (BENCH_plan.json has real runs comparing bytes moved).
bench-plan:
	$(GO) test -bench PlanQuality -benchtime 1x -run '^$$' .

# One-iteration serving-path benchmarks: CI smoke that the 1k-session wire
# throughput benchmark and the parser-pooling benchmark stay runnable
# (BENCH_serve.json has real runs comparing cache-on vs cache-off qps).
bench-serve:
	$(GO) test -bench ServeThroughput -benchtime 1x -run '^$$' ./internal/wire
	$(GO) test -bench ParsePooling -benchtime 1x -run '^$$' ./internal/sql

# One-iteration intra-slice parallelism benchmarks: CI smoke that the
# morsel-driven scan and parallel join build stay runnable at dop 1 and 4
# (BENCH_parallel.json has real runs; speedup needs a multi-core host).
bench-parallel:
	$(GO) test -bench 'ParallelScan|ParallelBuild' -benchtime 1x -run '^$$' .

# Multi-tenant QoS battery under the race detector: the pinned-seed
# workload replay against named queues (fast-lane p99 bounded under ETL
# saturation, zero cross-queue leakage, stv_wlm_* books balanced), the
# single-queue ablation twin, the named-queue WLM unit suite, and the
# synthesizer determinism/shape tests.
workload:
	$(GO) test -race -run 'TestWorkloadQoS' -v .
	$(GO) test -race -run 'TestWLM' ./internal/core
	$(GO) test -race ./internal/workload

# One-iteration WLM replay benchmark: CI smoke that both twin
# configurations (named fast lane vs single shared queue) stay runnable
# (BENCH_wlm.json has real runs comparing short-query p99).
bench-wlm:
	$(GO) test -bench WorkloadReplay -benchtime 1x -run '^$$' .
