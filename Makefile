GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Vet plus race-detector runs over the packages with the most concurrency:
# the distributed cluster, the query engine, and the telemetry registry.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/cluster ./internal/core ./internal/telemetry

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
