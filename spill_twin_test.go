package redshift

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
)

// spillSeed picks the data-generation seed for the spill suite. CI pins it
// via SPILL_SEED; a failure report always includes the seed so the exact
// dataset can be replayed locally:
//
//	SPILL_SEED=<seed> go test -race -run TestSpill .
func spillSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("SPILL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SPILL_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("spill seed = %d (replay with SPILL_SEED=%d)", seed, seed)
	return seed
}

// seedSpillTables loads a fact table big enough that hash aggregation,
// sorting and the join build side all blow through a KiB-scale grant:
// events has one group per row on ts, users is a broadcast-joined
// dimension fattened with a pad column. Amounts are exact halves so float
// sums are order-independent and compare bit-for-bit across tiers.
func seedSpillTables(t *testing.T, w *Warehouse, seed int64, nEvents, nUsers int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w.MustExecute(`CREATE TABLE events (
		ts BIGINT NOT NULL, user_id BIGINT, kind VARCHAR(16), amount DOUBLE PRECISION
	) DISTSTYLE KEY DISTKEY(user_id) COMPOUND SORTKEY(ts)`)
	w.MustExecute(`CREATE TABLE users (
		id BIGINT NOT NULL, segment VARCHAR(16), pad VARCHAR(64)
	) DISTSTYLE KEY DISTKEY(id)`)

	kinds := []string{"view", "click", "buy"}
	var ev strings.Builder
	for i := 0; i < nEvents; i++ {
		// user_id range deliberately exceeds the users table so LEFT JOIN
		// has rows to null-extend.
		fmt.Fprintf(&ev, "%d|%d|%s|%g\n",
			i, rng.Intn(nUsers+nUsers/2), kinds[rng.Intn(3)], float64(rng.Intn(100))/2)
	}
	if err := w.PutObject("lake/events/part0.csv", []byte(ev.String())); err != nil {
		t.Fatal(err)
	}
	w.MustExecute(`COPY events FROM 's3://lake/events/'`)

	segs := []string{"free", "pro", "enterprise"}
	var us strings.Builder
	for i := 0; i < nUsers; i++ {
		fmt.Fprintf(&us, "%d|%s|%s\n", i, segs[rng.Intn(3)], strings.Repeat("x", 40+i%8))
	}
	if err := w.PutObject("lake/users/part0.csv", []byte(us.String())); err != nil {
		t.Fatal(err)
	}
	w.MustExecute(`COPY users FROM 's3://lake/users/'`)
}

// spillBattery exercises every spillable operator — hash join (inner and
// left), high-cardinality hash aggregation, full-table ORDER BY and
// DISTINCT — with every query fully ordered so results compare row for
// row.
var spillBattery = []string{
	`SELECT ts, SUM(amount) AS total FROM events GROUP BY ts ORDER BY ts`,
	`SELECT u.segment, COUNT(*) AS n, SUM(e.amount) AS total
		FROM events e JOIN users u ON e.user_id = u.id
		GROUP BY u.segment ORDER BY u.segment`,
	`SELECT e.ts, u.segment FROM events e LEFT JOIN users u ON e.user_id = u.id
		ORDER BY e.ts`,
	`SELECT ts, user_id, amount FROM events ORDER BY amount, ts`,
	`SELECT DISTINCT user_id, kind FROM events ORDER BY user_id, kind`,
	`SELECT kind, COUNT(*) AS n, SUM(amount) AS total, MIN(ts), MAX(ts)
		FROM events GROUP BY kind ORDER BY kind`,
}

// assertSpillClean checks the post-run hygiene invariants: all tracked
// execution memory returned, no batch leaked, and the scratch base dir
// holds no leftover per-query directories.
func assertSpillClean(t *testing.T, w *Warehouse, spillDir string) {
	t.Helper()
	if n := w.Metrics().Gauge("exec_mem_bytes").Value(); n != 0 {
		t.Errorf("exec_mem_bytes = %d after queries finished, want 0", n)
	}
	if n := w.Metrics().Gauge("exec_batches_in_flight").Value(); n != 0 {
		t.Errorf("exec_batches_in_flight = %d after queries finished, want 0", n)
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("scratch %s not cleaned up from %s", e.Name(), spillDir)
	}
}

// TestSpillTwinMatchesUnlimited is the tentpole's headline invariant: the
// same battery, run under an unlimited grant and under grants small enough
// to force every blocking operator to disk, returns bit-identical rows.
// Spilling changes where the work happens, never what it computes.
func TestSpillTwinMatchesUnlimited(t *testing.T) {
	seed := spillSeed(t)
	const nEvents, nUsers = 8000, 2000

	ref := launch(t, Options{Nodes: 2})
	seedSpillTables(t, ref, seed, nEvents, nUsers)
	want := make([]string, len(spillBattery))
	for i, q := range spillBattery {
		want[i] = rowsString(ref.MustExecute(q).Rows)
		if want[i] == "" {
			t.Fatalf("reference query %d returned no rows", i)
		}
	}
	if n := ref.Metrics().Counter("spill_bytes_total").Value(); n != 0 {
		t.Errorf("unlimited tier spilled %d bytes, want 0", n)
	}

	for _, tier := range []struct {
		name  string
		grant int64
	}{
		{"256KiB", 256 << 10},
		{"64KiB", 64 << 10},
	} {
		t.Run(tier.name, func(t *testing.T) {
			dir := t.TempDir()
			w := launch(t, Options{Nodes: 2, WLMSlotMemBytes: tier.grant, SpillDir: dir})
			seedSpillTables(t, w, seed, nEvents, nUsers)
			for i, q := range spillBattery {
				res, err := w.Execute(q)
				if err != nil {
					t.Fatalf("seed %d tier %s query %d failed: %v", seed, tier.name, i, err)
				}
				if got := rowsString(res.Rows); got != want[i] {
					t.Errorf("seed %d tier %s query %d diverged from unlimited run:\ngot:\n%swant:\n%s",
						seed, tier.name, i, got, want[i])
				}
			}
			if n := w.Metrics().Counter("spill_bytes_total").Value(); n == 0 {
				t.Errorf("tier %s never spilled — the battery did not exercise the disk path", tier.name)
			}
			if n := w.Metrics().Counter("spilled_queries_total").Value(); n == 0 {
				t.Errorf("tier %s recorded no spilled queries", tier.name)
			}
			assertSpillClean(t, w, dir)
		})
	}
}

// TestSpillJoinStaysWithinGrant is the acceptance bound: a join whose
// build side is at least 8x the grant completes, spills, and its tracked
// peak never exceeds 2x the grant.
func TestSpillJoinStaysWithinGrant(t *testing.T) {
	seed := spillSeed(t)
	const grant = 64 << 10
	const nEvents, nUsers = 6000, 24000

	dir := t.TempDir()
	w := launch(t, Options{Nodes: 2, WLMSlotMemBytes: grant, SpillDir: dir})
	seedSpillTables(t, w, seed, nEvents, nUsers)

	// The join is co-located on the dist key, so each of the 4 slices
	// builds its local 6000-user partition: ~6000 x (12B payload + ~80B
	// key overhead) = ~540 KiB per build — over 8x the 64 KiB grant even
	// if only one slice's build is ever charged at a time.
	res := w.MustExecute(`SELECT u.segment, COUNT(*) AS n, SUM(e.amount) AS total
		FROM events e JOIN users u ON e.user_id = u.id
		GROUP BY u.segment ORDER BY u.segment`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}

	recs := w.DB().QueryLog().Records()
	if len(recs) == 0 {
		t.Fatal("no stl_query records")
	}
	last := recs[len(recs)-1]
	if last.SpillBytes == 0 {
		t.Fatal("8x-grant join did not spill")
	}
	if last.SpillBytes < 8*grant/2 {
		// The build side alone is >= 8x the grant; well over half of it
		// must have hit disk (probe and output partitions add more).
		t.Errorf("spill_bytes = %d, implausibly low for an 8x-grant build", last.SpillBytes)
	}
	if last.MemPeak == 0 {
		t.Error("mem_peak = 0 — tracker never charged")
	}
	if last.MemPeak > 2*grant {
		t.Errorf("mem_peak = %d exceeds 2x grant (%d): spilling failed to bound memory",
			last.MemPeak, 2*grant)
	}
	t.Logf("grant=%d mem_peak=%d spill_bytes=%d", grant, last.MemPeak, last.SpillBytes)
	assertSpillClean(t, w, dir)
}

// TestWorkMemOverridesGrant: SET work_mem swaps the per-query budget at
// runtime — shrinking it forces spills on an otherwise-ungoverned
// warehouse, and 'default' restores the WLM grant.
func TestWorkMemOverridesGrant(t *testing.T) {
	seed := spillSeed(t)
	dir := t.TempDir()
	w := launch(t, Options{Nodes: 2, SpillDir: dir})
	seedSpillTables(t, w, seed, 8000, 500)
	// The governed repeats must actually execute (spilling is the point);
	// keep the result cache from answering them.
	w.MustExecute(`SET result_cache TO off`)

	const q = `SELECT ts, SUM(amount) AS total FROM events GROUP BY ts ORDER BY ts`
	want := rowsString(w.MustExecute(q).Rows)
	if n := w.Metrics().Counter("spill_bytes_total").Value(); n != 0 {
		t.Fatalf("ungoverned query spilled %d bytes", n)
	}

	w.MustExecute(`SET work_mem TO '64KB'`)
	res := w.MustExecute(q)
	if got := rowsString(res.Rows); got != want {
		t.Errorf("work_mem-governed run diverged:\ngot:\n%swant:\n%s", got, want)
	}
	spilled := w.Metrics().Counter("spill_bytes_total").Value()
	if spilled == 0 {
		t.Error("64KB work_mem did not force a spill")
	}

	// EXPLAIN surfaces the active grant.
	ex := w.MustExecute(`EXPLAIN ` + q)
	if !strings.Contains(rowsString(ex.Rows), "Memory Grant: 65536 bytes") {
		t.Errorf("EXPLAIN does not show the work_mem grant:\n%s", rowsString(ex.Rows))
	}

	w.MustExecute(`SET work_mem TO 'default'`)
	w.MustExecute(q)
	if n := w.Metrics().Counter("spill_bytes_total").Value(); n != spilled {
		t.Errorf("spill_bytes_total grew after work_mem reset: %d -> %d", spilled, n)
	}
	assertSpillClean(t, w, dir)
}
