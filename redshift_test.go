package redshift

import (
	"fmt"
	"strings"
	"testing"
)

// launch builds a small warehouse with multi-block tables.
func launch(t *testing.T, opts Options) *Warehouse {
	t.Helper()
	if opts.BlockCap == 0 {
		opts.BlockCap = 64
	}
	w, err := Launch(opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func seedEvents(t *testing.T, w *Warehouse, n int) {
	t.Helper()
	w.MustExecute(`CREATE TABLE events (
		ts BIGINT NOT NULL, user_id BIGINT, kind VARCHAR(16), amount DOUBLE PRECISION
	) DISTSTYLE KEY DISTKEY(user_id) COMPOUND SORTKEY(ts)`)
	var b strings.Builder
	kinds := []string{"view", "click", "buy"}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d|%d|%s|%g\n", 1000+i, i%100, kinds[i%3], float64(i%50)/2)
	}
	if err := w.PutObject("lake/events/part0.csv", []byte(b.String())); err != nil {
		t.Fatal(err)
	}
	w.MustExecute(`COPY events FROM 's3://lake/events/'`)
}

func TestQuickstartLifecycle(t *testing.T) {
	w := launch(t, Options{Nodes: 2})
	seedEvents(t, w, 1000)

	res := w.MustExecute(`SELECT kind, COUNT(*) AS n, SUM(amount) AS total
		FROM events GROUP BY kind ORDER BY kind`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	var n int64
	for _, r := range res.Rows {
		n += r[1].I
	}
	if n != 1000 {
		t.Errorf("total = %d", n)
	}
}

func TestBackupRestoreLifecycle(t *testing.T) {
	w := launch(t, Options{Nodes: 2})
	seedEvents(t, w, 500)
	before := w.MustExecute(`SELECT COUNT(*), SUM(amount) FROM events`).Rows[0]

	id, stats, err := w.Backup()
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksUploaded == 0 {
		t.Fatal("nothing uploaded")
	}
	if got := w.Backups(); len(got) != 1 || got[0] != id {
		t.Errorf("Backups = %v", got)
	}

	// Friday-delete / Monday-restore (§2.3): new cluster, different size.
	if err := w.Restore(id, 1); err != nil {
		t.Fatal(err)
	}
	if w.Nodes() != 1 {
		t.Errorf("restored nodes = %d", w.Nodes())
	}
	// Streaming restore: query before any background fetch completes.
	after := w.MustExecute(`SELECT COUNT(*), SUM(amount) FROM events`).Rows[0]
	if after[0].I != before[0].I || after[1].F != before[1].F {
		t.Fatalf("restored data differs: %v vs %v", after, before)
	}
	// Finish the background fetch; second run must be identical.
	if _, err := w.FinishRestore(4); err != nil {
		t.Fatal(err)
	}
	again := w.MustExecute(`SELECT COUNT(*), SUM(amount) FROM events`).Rows[0]
	if again[0].I != before[0].I {
		t.Error("data changed after background restore")
	}
}

func TestIncrementalBackupSharesBlocks(t *testing.T) {
	w := launch(t, Options{Nodes: 2})
	seedEvents(t, w, 300)
	_, s1, err := w.Backup()
	if err != nil {
		t.Fatal(err)
	}
	// Append a little and back up again: only new blocks upload.
	w.MustExecute(`INSERT INTO events VALUES (99999, 1, 'click', 0.5)`)
	_, s2, err := w.Backup()
	if err != nil {
		t.Fatal(err)
	}
	if s2.BlocksUploaded >= s1.BlocksUploaded {
		t.Errorf("second backup uploaded %d blocks vs first %d; should be incremental", s2.BlocksUploaded, s1.BlocksUploaded)
	}
	// GC after deleting the first backup keeps shared blocks.
	first := w.Backups()[0]
	if err := w.DeleteBackup(first); err != nil {
		t.Fatal(err)
	}
	if _, err := w.GCBackups(); err != nil {
		t.Fatal(err)
	}
	second := w.Backups()[0]
	if err := w.Restore(second, 2); err != nil {
		t.Fatalf("restore after GC: %v", err)
	}
	res := w.MustExecute(`SELECT COUNT(*) FROM events`)
	if res.Rows[0][0].I != 301 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestDisasterRecoveryRegion(t *testing.T) {
	w := launch(t, Options{Nodes: 2, DisasterRecovery: true})
	seedEvents(t, w, 200)
	id, _, err := w.Backup()
	if err != nil {
		t.Fatal(err)
	}
	// Burn down the primary backup region.
	for _, key := range w.backupS3.List("") {
		w.backupS3.Drop(key)
	}
	if err := w.Restore(id, 2); err != nil {
		t.Fatalf("DR restore: %v", err)
	}
	if _, err := w.FinishRestore(2); err != nil {
		t.Fatal(err)
	}
	res := w.MustExecute(`SELECT COUNT(*) FROM events`)
	if res.Rows[0][0].I != 200 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestResizeLifecycle(t *testing.T) {
	w := launch(t, Options{Nodes: 2})
	seedEvents(t, w, 400)
	stats, err := w.Resize(4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FromNodes != 2 || stats.ToNodes != 4 || stats.Rows != 400 {
		t.Errorf("stats = %+v", stats)
	}
	if w.Nodes() != 4 {
		t.Errorf("nodes = %d", w.Nodes())
	}
	res := w.MustExecute(`SELECT COUNT(*) FROM events WHERE kind = 'buy'`)
	if res.Rows[0][0].I != 133 { // i%3==2 for i in [0,400)
		t.Errorf("post-resize count = %v", res.Rows[0][0])
	}
}

func TestNodeFailureAndReplacement(t *testing.T) {
	w := launch(t, Options{Nodes: 2})
	seedEvents(t, w, 600)
	before := w.MustExecute(`SELECT SUM(amount) FROM events`).Rows[0][0]

	w.FailNode(1)
	during := w.MustExecute(`SELECT SUM(amount) FROM events`).Rows[0][0]
	if during.F != before.F {
		t.Fatalf("answer changed during failure: %v vs %v", during, before)
	}
	blocks, bytes, err := w.ReplaceNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if blocks == 0 || bytes == 0 {
		t.Errorf("replacement rebuilt %d blocks / %d bytes", blocks, bytes)
	}
	after := w.MustExecute(`SELECT SUM(amount) FROM events`).Rows[0][0]
	if after.F != before.F {
		t.Errorf("answer changed after replacement")
	}
}

func TestInterpretedEngineOption(t *testing.T) {
	w := launch(t, Options{Nodes: 1, Interpreted: true})
	seedEvents(t, w, 100)
	res := w.MustExecute(`SELECT COUNT(*) FROM events`)
	if res.Rows[0][0].I != 100 {
		t.Errorf("interpreted count = %v", res.Rows[0][0])
	}
}

func TestLaunchDefaults(t *testing.T) {
	w, err := Launch(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Nodes() != 2 {
		t.Errorf("default nodes = %d", w.Nodes())
	}
	if _, err := w.Execute(`SELECT 1`); err == nil {
		t.Log("leader-only SELECT unsupported by design (documented)")
	}
}

func TestMustExecutePanics(t *testing.T) {
	w := launch(t, Options{Nodes: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("MustExecute did not panic")
		}
	}()
	w.MustExecute(`SELECT * FROM missing`)
}

// TestArchitectureTopology is the F3 check from DESIGN.md: the structural
// claims of Figure 3 hold — a leader endpoint over compute nodes sliced per
// core, synchronous in-cluster replication, and S3 beneath everything as
// the third replica and backup target.
func TestArchitectureTopology(t *testing.T) {
	w := launch(t, Options{Nodes: 3, SlicesPerNode: 4})
	cl := w.DB().Cluster()
	if cl.NumNodes() != 3 || cl.NumSlices() != 12 {
		t.Fatalf("topology = %d nodes / %d slices", cl.NumNodes(), cl.NumSlices())
	}
	// Slices partition nodes evenly (one per "core").
	for i := 0; i < cl.NumSlices(); i++ {
		if cl.Slice(i).Node.ID != i/4 {
			t.Fatalf("slice %d on node %d", i, cl.Slice(i).Node.ID)
		}
	}
	// The leader accepts SQL and coordinates: a leader-only query touches
	// no compute node.
	res := w.MustExecute(`SELECT 1`)
	if res.Stats.RowsScanned != 0 || res.Rows[0][0].I != 1 {
		t.Fatalf("leader-local query = %+v", res)
	}
	// Writes replicate synchronously inside the cluster...
	w.MustExecute(`CREATE TABLE t (a BIGINT)`)
	w.MustExecute(`INSERT INTO t VALUES (1), (2), (3)`)
	if cl.NetBytes() == 0 {
		t.Fatal("no replication traffic for a write")
	}
	// ...and S3 sits beneath as the backup/restore layer.
	if _, _, err := w.Backup(); err != nil {
		t.Fatal(err)
	}
	if w.BackupStore().NumObjects() == 0 {
		t.Fatal("backup produced no S3 objects")
	}
}
