// Weblog analytics: the §1 Amazon EDW scenario at laptop scale — a large
// click-stream fact table joined against a product dimension, with the
// co-located join, zone-map pruning and approximate distinct counts doing
// the work the paper attributes to the architecture.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"redshift"
)

const (
	clicks   = 1_000_000
	products = 3_000 // paper ratio 333:1 (2T clicks : 6B products)
)

func main() {
	wh, err := redshift.Launch(redshift.Options{Nodes: 4, SlicesPerNode: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Both tables distributed by the join key: the planner will prove
	// co-location (DS_DIST_NONE) and no rows will cross the network.
	wh.MustExecute(`
		CREATE TABLE clicks (
			ts BIGINT NOT NULL,
			product_id BIGINT,
			user_id BIGINT,
			latency_ms DOUBLE PRECISION
		) DISTSTYLE KEY DISTKEY(product_id) COMPOUND SORTKEY(ts)`)
	wh.MustExecute(`
		CREATE TABLE products (
			id BIGINT NOT NULL,
			category VARCHAR(16),
			price DOUBLE PRECISION
		) DISTSTYLE KEY DISTKEY(id)`)

	fmt.Printf("loading %d clicks + %d products...\n", clicks, products)
	start := time.Now()
	loadData(wh)
	fmt.Printf("loaded in %v\n\n", time.Since(start).Round(time.Millisecond))

	// The headline query: join the full click stream with the catalog.
	q := `
		SELECT p.category,
		       COUNT(*) AS clicks,
		       APPROXIMATE COUNT(DISTINCT c.user_id) AS uniques,
		       AVG(c.latency_ms) AS avg_latency
		FROM clicks c
		JOIN products p ON c.product_id = p.id
		GROUP BY p.category
		ORDER BY clicks DESC`
	res := wh.MustExecute(q)
	fmt.Println("category  clicks   uniques  avg_latency")
	for _, r := range res.Rows {
		fmt.Printf("%-8s %7d  %7d   %10.2f\n", r[0].S, r[1].I, r[2].I, r[3].F)
	}
	fmt.Printf("\njoin stats: %d rows scanned, %d bytes crossed the network (co-located), %v\n",
		res.Stats.RowsScanned, res.Stats.NetBytes, res.Stats.ExecTime.Round(time.Millisecond))

	// A time-windowed query shows the sort key + zone maps: only the
	// window's blocks are read.
	res = wh.MustExecute(fmt.Sprintf(
		`SELECT COUNT(*) FROM clicks WHERE ts BETWEEN %d AND %d`, clicks/2, clicks/2+10_000))
	fmt.Printf("\nwindow scan: read %d blocks, skipped %d (%.0f%% pruned by zone maps)\n",
		res.Stats.BlocksRead, res.Stats.BlocksSkipped,
		100*float64(res.Stats.BlocksSkipped)/float64(res.Stats.BlocksRead+res.Stats.BlocksSkipped))
}

func loadData(wh *redshift.Warehouse) {
	cats := []string{"books", "music", "toys", "garden", "sports"}
	var pb strings.Builder
	for i := 0; i < products; i++ {
		fmt.Fprintf(&pb, "%d|%s|%.2f\n", i, cats[i%len(cats)], 3+float64(i%900)/10)
	}
	must(wh.PutObject("lake/products/part0.csv", []byte(pb.String())))
	// Clicks in four objects so COPY's per-slice parallel parse has work.
	for part := 0; part < 4; part++ {
		var cb strings.Builder
		for i := part; i < clicks; i += 4 {
			fmt.Fprintf(&cb, "%d|%d|%d|%.1f\n", i, i%products, i%50_000, 1+float64(i%200)/10)
		}
		must(wh.PutObject(fmt.Sprintf("lake/clicks/part%d.csv", part), []byte(cb.String())))
	}
	wh.MustExecute(`COPY products FROM 's3://lake/products/'`)
	wh.MustExecute(`COPY clicks FROM 's3://lake/clicks/'`)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
