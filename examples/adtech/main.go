// Ad-tech data transformation: the §4 pipeline use case — "many billion ad
// impressions may be distilled into lookup tables that informs an ad
// exchange online service". Raw impressions land in the lake, one SQL job
// distills them into a compact lookup table, and the serving layer reads
// the lookup with cheap point-ish queries.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"redshift"
)

func main() {
	wh, err := redshift.Launch(redshift.Options{Nodes: 2, SlicesPerNode: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Raw impressions: wide, high-volume, mutating-schema log data — the
	// "dark data" the paper wants analyzable (§1).
	wh.MustExecute(`
		CREATE TABLE impressions (
			ts BIGINT NOT NULL,
			campaign_id BIGINT,
			site VARCHAR(32),
			clicked BOOLEAN,
			cost DOUBLE PRECISION
		) DISTSTYLE KEY DISTKEY(campaign_id) COMPOUND SORTKEY(ts)`)

	const n = 400_000
	rng := rand.New(rand.NewSource(1))
	sites := []string{"news.example", "video.example", "social.example", "mail.example"}
	var b strings.Builder
	for i := 0; i < n; i++ {
		clicked := "f"
		if rng.Float64() < 0.02+0.01*float64(i%7) {
			clicked = "t"
		}
		fmt.Fprintf(&b, "%d|%d|%s|%s|%.4f\n",
			i, i%500, sites[rng.Intn(len(sites))], clicked, 0.001+rng.Float64()*0.01)
	}
	must(wh.PutObject("lake/impressions/day1.csv", []byte(b.String())))

	start := time.Now()
	wh.MustExecute(`COPY impressions FROM 's3://lake/impressions/'`)
	fmt.Printf("ingested %d impressions in %v\n", n, time.Since(start).Round(time.Millisecond))

	// The distillation job: one declarative statement replaces the
	// MapReduce chain (§4: SQL "reduce[s] the labor involved in writing
	// Map Reduce jobs").
	start = time.Now()
	res := wh.MustExecute(`
		SELECT campaign_id,
		       COUNT(*) AS impressions,
		       SUM(CASE WHEN clicked = TRUE THEN 1 ELSE 0 END) AS clicks,
		       SUM(cost) AS spend
		FROM impressions
		GROUP BY campaign_id`)
	fmt.Printf("distilled %d campaigns in %v\n", len(res.Rows), time.Since(start).Round(time.Millisecond))

	// Materialize the lookup table the ad exchange serves from.
	wh.MustExecute(`
		CREATE TABLE campaign_stats (
			campaign_id BIGINT NOT NULL,
			impressions BIGINT,
			clicks BIGINT,
			spend DOUBLE PRECISION
		) DISTSTYLE ALL`)
	var insert strings.Builder
	insert.WriteString("INSERT INTO campaign_stats VALUES ")
	for i, r := range res.Rows {
		if i > 0 {
			insert.WriteString(", ")
		}
		fmt.Fprintf(&insert, "(%d, %d, %d, %f)", r[0].I, r[1].I, r[2].I, r[3].F)
	}
	wh.MustExecute(insert.String())

	// The online side: top campaigns by click-through rate.
	top := wh.MustExecute(`
		SELECT campaign_id, clicks, impressions
		FROM campaign_stats
		WHERE impressions > 100
		ORDER BY clicks DESC
		LIMIT 5`)
	fmt.Println("\ntop campaigns by clicks (served from the lookup table):")
	for _, r := range top.Rows {
		fmt.Printf("  campaign %4d: %4d clicks / %5d impressions (ctr %.2f%%)\n",
			r[0].I, r[1].I, r[2].I, 100*float64(r[1].I)/float64(r[2].I))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
