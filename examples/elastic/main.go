// Elastic resize: §3.1 — grow a 2-node cluster to 6 nodes and shrink back
// to 1 while the data keeps answering queries, with the source readable
// (and writes rejected) during each copy.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"redshift"
)

func main() {
	wh, err := redshift.Launch(redshift.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	wh.MustExecute(`CREATE TABLE metrics (
		ts BIGINT NOT NULL, host BIGINT, cpu DOUBLE PRECISION
	) DISTSTYLE KEY DISTKEY(host) COMPOUND SORTKEY(ts)`)
	var b strings.Builder
	const rows = 300_000
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d|%d|%.2f\n", i, i%512, float64(i%101))
	}
	if err := wh.PutObject("lake/metrics/a.csv", []byte(b.String())); err != nil {
		log.Fatal(err)
	}
	wh.MustExecute(`COPY metrics FROM 's3://lake/metrics/'`)

	query := `SELECT host, AVG(cpu) AS avg_cpu FROM metrics GROUP BY host ORDER BY avg_cpu DESC LIMIT 3`
	fmt.Printf("cluster: %d nodes\n", wh.Nodes())
	show(wh, query)

	// Grow: reports got slow, add nodes. No capacity estimation up front —
	// "removing the need for up-front capacity and performance estimation".
	for _, target := range []int{6, 1} {
		start := time.Now()
		stats, err := wh.Resize(target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nresized %d → %d nodes in %v (copied %d rows across %d tables)\n",
			stats.FromNodes, stats.ToNodes, time.Since(start).Round(time.Millisecond),
			stats.Rows, stats.Tables)
		fmt.Printf("cluster: %d nodes — same endpoint, same answers:\n", wh.Nodes())
		show(wh, query)

		count := wh.MustExecute(`SELECT COUNT(*) FROM metrics`).Rows[0][0].I
		if count != rows {
			log.Fatalf("resize lost rows: %d != %d", count, rows)
		}
	}

	// Writes flow again after the copy completes.
	wh.MustExecute(`INSERT INTO metrics VALUES (9999999, 1, 50.0)`)
	fmt.Printf("\npost-resize write accepted; total rows now %d\n",
		wh.MustExecute(`SELECT COUNT(*) FROM metrics`).Rows[0][0].I)
}

func show(wh *redshift.Warehouse, q string) {
	for _, r := range wh.MustExecute(q).Rows {
		fmt.Printf("  host %3d: avg cpu %.2f\n", r[0].I, r[1].F)
	}
}
