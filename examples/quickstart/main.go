// Quickstart: the paper's "time to first report" in one file — launch a
// cluster, create a table, COPY data in, run the first query (§3.1).
package main

import (
	"fmt"
	"log"
	"strings"

	"redshift"
)

func main() {
	// 1. "Provision" a cluster. The paper's whole pitch: this is all the
	//    configuration a customer supplies (§3.3).
	wh, err := redshift.Launch(redshift.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster up: 2 nodes × 2 slices")

	// 2. Create a table. Encodings are left unset on purpose — the system
	//    picks them from a data sample at first COPY (the "dusty knob").
	wh.MustExecute(`
		CREATE TABLE trips (
			day DATE NOT NULL,
			city VARCHAR(32),
			distance_km DOUBLE PRECISION,
			fare DOUBLE PRECISION
		) DISTSTYLE KEY DISTKEY(city) COMPOUND SORTKEY(day)`)

	// 3. Drop some CSV into the data lake and COPY it in — parallel parse,
	//    distribution by city, local sort by day, stats update (§2.1).
	var csv strings.Builder
	cities := []string{"Melbourne", "Sydney", "Brisbane"}
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&csv, "2015-%02d-%02d|%s|%.1f|%.2f\n",
			1+i%12, 1+i%28, cities[i%3], 1+float64(i%40)/2, 5+float64(i%300)/10)
	}
	if err := wh.PutObject("lake/trips/part-000.csv", []byte(csv.String())); err != nil {
		log.Fatal(err)
	}
	res := wh.MustExecute(`COPY trips FROM 's3://lake/trips/'`)
	fmt.Printf("%s (%.1f ms)\n", res.Message, res.Stats.ExecTime.Seconds()*1000)

	// 4. First report.
	res = wh.MustExecute(`
		SELECT city, COUNT(*) AS trips, AVG(fare) AS avg_fare, SUM(distance_km) AS km
		FROM trips
		WHERE day BETWEEN DATE '2015-03-01' AND DATE '2015-09-30'
		GROUP BY city
		ORDER BY trips DESC`)
	fmt.Println("\ncity       trips  avg_fare  total_km")
	for _, row := range res.Rows {
		fmt.Printf("%-9s %6d   %7.2f  %8.1f\n", row[0].S, row[1].I, row[2].F, row[3].F)
	}
	fmt.Printf("\n(scanned %d rows, skipped %d blocks via zone maps, %.1f ms)\n",
		res.Stats.RowsScanned, res.Stats.BlocksSkipped, res.Stats.ExecTime.Seconds()*1000)

	// 5. Look at the plan the leader compiled.
	fmt.Println("\nEXPLAIN:")
	for _, row := range wh.MustExecute(`EXPLAIN SELECT city, COUNT(*) FROM trips GROUP BY city`).Rows {
		fmt.Println("  " + row[0].S)
	}
}
