// Disaster recovery: §2.2/§3.2 end to end — incremental backups, the
// Friday-delete/Monday-restore pattern ("a meaningful percentage of Amazon
// Redshift customers delete their clusters every Friday and restore from
// backup each Monday"), streaming restore with page faults, node-failure
// masking, and the second-region checkbox.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"redshift"
	"redshift/internal/sim"
)

func main() {
	wh, err := redshift.Launch(redshift.Options{
		Nodes:            2,
		BlockCap:         1024,
		DisasterRecovery: true, // the §3.2 checkbox
	})
	if err != nil {
		log.Fatal(err)
	}
	wh.MustExecute(`CREATE TABLE ledger (
		day BIGINT NOT NULL, account BIGINT, amount DOUBLE PRECISION
	) COMPOUND SORTKEY(day)`)
	var b strings.Builder
	for i := 0; i < 300_000; i++ {
		fmt.Fprintf(&b, "%d|%d|%.2f\n", i/1000, i%5000, float64(i%997)/7)
	}
	must(wh.PutObject("lake/ledger/a.csv", []byte(b.String())))
	wh.MustExecute(`COPY ledger FROM 's3://lake/ledger/'`)
	checksum := wh.MustExecute(`SELECT COUNT(*), SUM(amount) FROM ledger`).Rows[0]
	fmt.Printf("loaded: %s rows, sum %s\n", checksum[0], checksum[1])

	// Friday: back up (continuous + incremental in the real system).
	id, stats, err := wh.Backup()
	must(err)
	fmt.Printf("backup %s: %d blocks, %d uploaded (incremental dedup)\n",
		id, stats.BlocksTotal, stats.BlocksUploaded)

	// A second backup after a tiny change uploads almost nothing.
	wh.MustExecute(`INSERT INTO ledger VALUES (999, 1, 1.0)`)
	id2, stats2, err := wh.Backup()
	must(err)
	fmt.Printf("backup %s: %d blocks, only %d uploaded\n", id2, stats2.BlocksTotal, stats2.BlocksUploaded)

	// Make S3 reads cost real time so streaming restore is visible.
	wh.BackupStore().WithDelays(sim.Wall{}, 2*time.Millisecond, 200)

	// Monday: restore onto a brand-new (smaller) cluster. The database is
	// open for SQL the moment metadata is back.
	start := time.Now()
	must(wh.Restore(id2, 1))
	openAt := time.Since(start)
	first := wh.MustExecute(`SELECT COUNT(*) FROM ledger WHERE day < 20`) // working set
	firstAt := time.Since(start)
	fetched, err := wh.FinishRestore(8)
	must(err)
	fullAt := time.Since(start)
	fmt.Printf("\nstreaming restore to a 1-node cluster:\n")
	fmt.Printf("  open for SQL after      %8v\n", openAt.Round(time.Millisecond))
	fmt.Printf("  first report after      %8v (%s rows, page-faulted the working set)\n",
		firstAt.Round(time.Millisecond), first.Rows[0][0])
	fmt.Printf("  fully local after       %8v (%d blocks fetched in background)\n",
		fullAt.Round(time.Millisecond), fetched)

	verify := wh.MustExecute(`SELECT COUNT(*), SUM(amount) FROM ledger`).Rows[0]
	fmt.Printf("  checksum after restore: %s rows, sum %s (+1 inserted row)\n", verify[0], verify[1])

	// Node failure: reads keep working off replicas ("media failures
	// transparent"), then the replacement workflow rebuilds the node.
	wh2, err := redshift.Launch(redshift.Options{Nodes: 2, BlockCap: 1024})
	must(err)
	wh2.MustExecute(`CREATE TABLE t (k BIGINT, v BIGINT)`)
	var tb strings.Builder
	for i := 0; i < 100_000; i++ {
		fmt.Fprintf(&tb, "%d|%d\n", i, i)
	}
	must(wh2.PutObject("t/a.csv", []byte(tb.String())))
	wh2.MustExecute(`COPY t FROM 't/'`)
	before := wh2.MustExecute(`SELECT SUM(v) FROM t`).Rows[0][0]
	wh2.FailNode(1)
	after := wh2.MustExecute(`SELECT SUM(v) FROM t`).Rows[0][0]
	fmt.Printf("\nnode 1 failed: query answer unchanged (%s = %s)\n", before, after)
	blocks, bytes, err := wh2.ReplaceNode(1)
	must(err)
	fmt.Printf("node replaced: %d blocks rebuilt from the cohort peer (%d bytes)\n", blocks, bytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
