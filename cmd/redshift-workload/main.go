// Command redshift-workload synthesizes a deterministic multi-tenant
// workload (dashboard refresher + ETL batch + ad-hoc analyst) and replays
// it, printing per-tenant latency quantiles, queue waits, cache hits and
// error/retry counts.
//
// By default it launches an in-process warehouse with named WLM queues
// (express fast lane, dash, etl) and replays against it — a self-contained
// QoS demo:
//
//	redshift-workload -seed 42 -duration 5s
//
// Point it at a live server instead with -addr; the server must be started
// with matching -wlm-queues (the tenants SET query_group TO dash/etl).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"redshift"
	"redshift/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed (same seed ⇒ byte-identical stream)")
	duration := flag.Duration("duration", 5*time.Second, "arrival horizon of the synthesized trace")
	scale := flag.Int("scale", 1, "dataset size multiplier")
	pace := flag.Float64("pace", 0, "open-loop replay speed (2 = replay a 10s trace in 5s; 0 = closed-loop, as fast as admitted)")
	addr := flag.String("addr", "", "replay against a live server instead of in-process (host:port)")
	slots := flag.Int("slots", 2, "slots per named queue of the in-process warehouse")
	flag.Parse()

	w := workload.Workload{
		Seed:     *seed,
		Duration: *duration,
		Scale:    *scale,
		Tenants: []workload.TenantSpec{
			{Name: "wallboard", Archetype: workload.Dashboard, Queue: "dash", Rate: 40, Burstiness: 0.3, BurstSize: 6, Repeat: 0.7, Sessions: 4},
			{Name: "nightly-etl", Archetype: workload.ETL, Queue: "etl", Rate: 10, Sessions: 2},
			{Name: "analyst", Archetype: workload.AdHoc, Rate: 5, Repeat: 0.2, Sessions: 2},
		},
	}
	stream := workload.Synthesize(w)
	log.Printf("synthesized %d statements for %d tenants (seed %d)", len(stream.Events), len(w.Tenants), *seed)

	var open workload.Opener
	if *addr != "" {
		open = workload.WireOpener(*addr)
	} else {
		wh, err := redshift.Launch(redshift.Options{
			Nodes:         2,
			SlicesPerNode: 2,
			WLMQueues: []redshift.QueueSpec{
				{Name: "express", Slots: *slots, MaxEstRows: 20_000, Priority: 10},
				{Name: "dash", Slots: *slots, Priority: 5},
				{Name: "etl", Slots: *slots, MemFraction: 0.5},
				{Name: "default", Slots: *slots},
			},
		})
		if err != nil {
			log.Fatalf("launch: %v", err)
		}
		open = workload.SessionOpener(wh)
		log.Printf("launched in-process warehouse: queues express(fast lane)/dash/etl/default, %d slots each", *slots)
	}

	rep, err := workload.Replay(context.Background(), stream, open, w, workload.ReplayOptions{Pace: *pace, Retries: 3})
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	fmt.Print(rep.String())
	if e := rep.FirstError(); e != "" {
		log.Fatalf("first statement error: %s", e)
	}
}
