// Command redshift-cli is an interactive SQL shell against a
// redshift-server leader node.
//
// Usage:
//
//	redshift-cli -addr 127.0.0.1:5439
//	echo "SELECT COUNT(*) FROM sales" | redshift-cli -addr ...
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"redshift/internal/faults"
	"redshift/internal/wire"
)

// retryPolicy backs off and resends statements the server marks retryable
// (resize cutover window, WLM admission timeout) — the client-visible half
// of the elasticity contract: a live resize delays writes, it doesn't fail
// them.
var retryPolicy = faults.Policy{
	MaxAttempts: 5,
	Base:        50 * time.Millisecond,
	Max:         time.Second,
	Jitter:      0.5,
}

func main() {
	addr := flag.String("addr", "127.0.0.1:5439", "server address")
	flag.Parse()

	client, err := wire.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect: %v\n", err)
		os.Exit(1)
	}
	defer client.Close()

	interactive := isTerminal()
	if interactive {
		fmt.Println("redshift-cli: connected. End statements with ';'. \\q quits.")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("redshift=> ")
		} else {
			fmt.Print("redshift-> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == "\\q" || trimmed == "quit" || trimmed == "exit") {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			run(client, buf.String())
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 {
		run(client, buf.String())
	}
}

func run(client *wire.Client, query string) {
	query = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(query), ";"))
	if query == "" {
		return
	}
	resp, err := client.QueryRetry(context.Background(), query, retryPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "connection error: %v\n", err)
		os.Exit(1)
	}
	if resp.Error != "" {
		fmt.Printf("ERROR: %s\n", resp.Error)
		return
	}
	if resp.Message != "" {
		fmt.Println(resp.Message)
		return
	}
	printTable(resp)
	fmt.Printf("(%d rows, %.1f ms)\n", len(resp.Rows), resp.ExecMillis)
}

// printTable renders an aligned text table.
func printTable(resp *wire.Response) {
	widths := make([]int, len(resp.Columns))
	for i, c := range resp.Columns {
		widths[i] = len(c)
	}
	for _, row := range resp.Rows {
		for i, v := range row {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(vals []string) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%-*s", widths[i], v)
		}
		fmt.Println(" " + strings.Join(parts, " | "))
	}
	line(resp.Columns)
	seps := make([]string, len(widths))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	fmt.Println(" " + strings.Join(seps, "-+-"))
	for _, row := range resp.Rows {
		line(row)
	}
}

// isTerminal reports whether stdin looks interactive.
func isTerminal() bool {
	info, err := os.Stdin.Stat()
	return err == nil && info.Mode()&os.ModeCharDevice != 0
}
