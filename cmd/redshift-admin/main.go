// Command redshift-admin exercises the control plane the way the console
// does: it runs the admin workflows (provision, connect, backup, restore,
// resize, patch, replace-node) against the fleet cost model on a simulated
// clock and prints what the customer would wait — the generator behind
// Figure 2's "time to deploy and manage a cluster".
//
// Usage:
//
//	redshift-admin provision -nodes 16 [-warm]
//	redshift-admin backup -nodes 16 -changed-gb 400
//	redshift-admin restore -nodes 16 -total-tb 2 [-streaming] [-working-set 0.05]
//	redshift-admin resize -from 2 -to 16 -total-tb 1
//	redshift-admin patch -nodes 16
//	redshift-admin replace-node -node-gb 500 [-warm]
//	redshift-admin figure2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"redshift/internal/controlplane"
	"redshift/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "provision":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		nodes := fs.Int("nodes", 2, "cluster size")
		warm := fs.Bool("warm", false, "use preconfigured nodes")
		fs.Parse(args)
		report("provision", run(func(o *controlplane.Ops) error {
			_, err := o.Provision(*nodes, *warm)
			return err
		}))
	case "connect":
		report("connect", run(func(o *controlplane.Ops) error {
			_, err := o.Connect()
			return err
		}))
	case "backup":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		nodes := fs.Int("nodes", 2, "cluster size")
		changed := fs.Float64("changed-gb", 100, "changed data in GB")
		fs.Parse(args)
		report("backup", run(func(o *controlplane.Ops) error {
			_, err := o.Backup(*nodes, int64(*changed*1e9))
			return err
		}))
	case "restore":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		nodes := fs.Int("nodes", 2, "cluster size")
		total := fs.Float64("total-tb", 1, "total data in TB")
		streaming := fs.Bool("streaming", false, "streaming restore")
		ws := fs.Float64("working-set", 0.05, "working set fraction")
		fs.Parse(args)
		report("restore", run(func(o *controlplane.Ops) error {
			_, err := o.Restore(*nodes, int64(*total*1e12), *streaming, *ws)
			return err
		}))
	case "resize":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		from := fs.Int("from", 2, "source nodes")
		to := fs.Int("to", 16, "target nodes")
		total := fs.Float64("total-tb", 1, "total data in TB")
		fs.Parse(args)
		report("resize", run(func(o *controlplane.Ops) error {
			_, err := o.Resize(*from, *to, int64(*total*1e12))
			return err
		}))
	case "patch":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		nodes := fs.Int("nodes", 2, "cluster size")
		fs.Parse(args)
		report("patch", run(func(o *controlplane.Ops) error {
			_, err := o.Patch(*nodes, func() bool { return true })
			return err
		}))
	case "replace-node":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		gb := fs.Float64("node-gb", 200, "data on the failed node in GB")
		warm := fs.Bool("warm", true, "use a preconfigured standby")
		fs.Parse(args)
		report("replace-node", run(func(o *controlplane.Ops) error {
			if !*warm {
				o.Warm = nil
			}
			_, err := o.ReplaceNode(int64(*gb * 1e9))
			return err
		}))
	case "figure2":
		figure2()
	default:
		usage()
	}
}

// run executes one workflow in virtual time and returns its duration.
func run(fn func(o *controlplane.Ops) error) time.Duration {
	var err error
	d := sim.Elapse(func(c *sim.VClock) {
		o := controlplane.NewOps(c, sim.Default2013(), controlplane.NewWarmPool(1000))
		err = fn(o)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "workflow failed: %v\n", err)
		os.Exit(1)
	}
	return d
}

func report(name string, d time.Duration) {
	fmt.Printf("%-14s %s (simulated wall-clock the customer waits)\n", name, d.Round(time.Second))
}

// figure2 prints the full Figure 2 table.
func figure2() {
	fmt.Println("Time to deploy and manage a cluster (simulated minutes, Figure 2)")
	fmt.Printf("%-10s %10s %10s %10s %10s %12s\n", "nodes", "deploy", "connect", "backup", "restore", "resize(2→N)")
	for _, n := range []int{2, 16, 128} {
		deploy := run(func(o *controlplane.Ops) error { _, err := o.Provision(n, true); return err })
		connect := run(func(o *controlplane.Ops) error { _, err := o.Connect(); return err })
		backupD := run(func(o *controlplane.Ops) error { _, err := o.Backup(n, int64(100e9*float64(n))); return err })
		restore := run(func(o *controlplane.Ops) error {
			_, err := o.Restore(n, int64(500e9*float64(n)), true, 0.15)
			return err
		})
		resize := run(func(o *controlplane.Ops) error { _, err := o.Resize(2, n, 2e12); return err })
		fmt.Printf("%-10d %10.1f %10.1f %10.1f %10.1f %12.1f\n",
			n, deploy.Minutes(), connect.Minutes(), backupD.Minutes(), restore.Minutes(), resize.Minutes())
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: redshift-admin <provision|connect|backup|restore|resize|patch|replace-node|figure2> [flags]`)
	os.Exit(2)
}
