// Command redshift-server runs a warehouse cluster and exposes its leader
// node on TCP (newline-delimited JSON; see internal/wire). It is the
// miniature of the managed service: one process, one cluster, a SQL
// endpoint that survives resizes behind the scenes.
//
// Usage:
//
//	redshift-server -addr 127.0.0.1:5439 -nodes 4 -slices 2 [-demo]
//
// Operational metrics (counters, gauges, latency quantiles) are served as
// plain text on http://<metrics-addr>/metrics; -metrics "" disables them.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"redshift"
	"redshift/internal/sql"
	"redshift/internal/wire"
)

// byteSizeFlag resolves a human-readable byte-size flag value into the
// Options convention: "default" (or empty) keeps the built-in default (0),
// "off" disables the feature (-1), anything else parses through
// sql.ParseByteSize ("64MB", "1GiB", "65536").
func byteSizeFlag(name, v string) int64 {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "", "default":
		return 0
	case "off", "none", "disabled":
		return -1
	}
	n, err := sql.ParseByteSize(v)
	if err != nil {
		log.Fatalf("-%s: %v", name, err)
	}
	return n
}

func main() {
	addr := flag.String("addr", "127.0.0.1:5439", "listen address")
	nodes := flag.Int("nodes", 2, "compute nodes")
	slices := flag.Int("slices", 2, "slices per node")
	demo := flag.Bool("demo", false, "preload a small demo dataset")
	interpreted := flag.Bool("interpreted", false, "use the row-at-a-time engine")
	encrypted := flag.Bool("encrypted", false, "encrypt all at-rest backup data (§3.2)")
	slots := flag.Int("slots", 0, "WLM query slots (0 = unlimited)")
	wlmQueues := flag.String("wlm-queues", "", `named WLM queues, e.g. "express=2,short=20000;dash=4,prio=5;etl=2,mem=50%,timeout=60s" (empty = one default queue of -slots)`)
	wlmMem := flag.String("wlm-mem", "default", `execution-memory pool split across WLM slots, e.g. "512MB" ("default" disables governance)`)
	planCache := flag.Int("plan-cache", 0, "plan cache entries (0 = default 256, negative disables)")
	resultCache := flag.String("result-cache-bytes", "default", `result cache budget, e.g. "64MB" ("default" = 32MiB, "off" disables)`)
	blockCache := flag.String("block-cache-bytes", "default", `decoded-block buffer cache budget, e.g. "256MB" ("default" = 64MiB, "off" disables)`)
	maxParallel := flag.Int("max-parallel-workers", 0, "morsel workers per slice per query (0 = all cores, negative forces serial)")
	burstThreshold := flag.Float64("burst-threshold", 0, "concurrency-scaling threshold in slot-cost units (0 disables; queue depth × oldest wait s × slot cost)")
	burstSlotCost := flag.Float64("burst-slot-cost", 0, "price of one query-second of WLM queue wait (default 1)")
	metricsAddr := flag.String("metrics", "127.0.0.1:5440", "metrics HTTP address (empty disables)")
	flag.Parse()

	queues, err := redshift.ParseWLMQueues(*wlmQueues)
	if err != nil {
		log.Fatalf("-wlm-queues: %v", err)
	}
	memPool := byteSizeFlag("wlm-mem", *wlmMem)
	if memPool < 0 {
		memPool = 0 // "off" and "default" both mean ungoverned
	}

	wh, err := redshift.Launch(redshift.Options{
		Nodes:              *nodes,
		SlicesPerNode:      *slices,
		Interpreted:        *interpreted,
		Encrypted:          *encrypted,
		QuerySlots:         *slots,
		WLMQueues:          queues,
		WLMSlotMemBytes:    memPool,
		PlanCacheEntries:   *planCache,
		ResultCacheBytes:   byteSizeFlag("result-cache-bytes", *resultCache),
		BlockCacheBytes:    byteSizeFlag("block-cache-bytes", *blockCache),
		MaxParallelWorkers: *maxParallel,
		BurstThreshold:     *burstThreshold,
		BurstSlotCost:      *burstSlotCost,
	})
	if err != nil {
		log.Fatalf("launch: %v", err)
	}
	if *demo {
		if err := loadDemo(wh); err != nil {
			log.Fatalf("demo data: %v", err)
		}
		log.Printf("demo dataset loaded: tables products, sales")
	}

	// One session per connection: prepared statements and SET variables are
	// connection-scoped, and a client that disconnects mid-query has that
	// query cancelled. Warehouse wire sessions additionally follow endpoint
	// swaps (RESIZE keeps existing connections working) and understand the
	// RESIZE admin verb.
	srv := wire.NewSessionServer(func() wire.SessionExecutor { return wh.NewWireSession() })
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("leader node accepting connections on %s (%d nodes × %d slices)", bound, *nodes, *slices)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(rw, wh.Metrics().Render())
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (%d requests served)", srv.Handled())
	srv.Close()
}

// loadDemo creates and populates a tiny retail schema.
func loadDemo(wh *redshift.Warehouse) error {
	stmts := []string{
		`CREATE TABLE products (id BIGINT NOT NULL, category VARCHAR(32), price DOUBLE PRECISION)
		 DISTSTYLE KEY DISTKEY(id)`,
		`CREATE TABLE sales (ts BIGINT NOT NULL, product_id BIGINT, qty BIGINT)
		 DISTSTYLE KEY DISTKEY(product_id) COMPOUND SORTKEY(ts)`,
	}
	for _, s := range stmts {
		if _, err := wh.Execute(s); err != nil {
			return err
		}
	}
	var prods, sales strings.Builder
	cats := []string{"books", "music", "toys", "garden"}
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&prods, "%d|%s|%g\n", i, cats[i%4], 5+float64(i)/3)
	}
	for i := 0; i < 10_000; i++ {
		fmt.Fprintf(&sales, "%d|%d|%d\n", 1_000_000+i, i%100, 1+i%7)
	}
	if err := wh.PutObject("demo/products/p.csv", []byte(prods.String())); err != nil {
		return err
	}
	if err := wh.PutObject("demo/sales/s.csv", []byte(sales.String())); err != nil {
		return err
	}
	for _, s := range []string{
		`COPY products FROM 's3://demo/products/'`,
		`COPY sales FROM 's3://demo/sales/'`,
	} {
		if _, err := wh.Execute(s); err != nil {
			return err
		}
	}
	return nil
}
