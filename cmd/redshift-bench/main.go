// Command redshift-bench regenerates every figure, table and ablation from
// the paper's evaluation (see DESIGN.md's experiment index) and prints the
// paper's claim next to this system's measurement.
//
// Usage:
//
//	redshift-bench             # run everything at full scale
//	redshift-bench -quick      # small data sizes (seconds, used by CI)
//	redshift-bench -exp T1     # one experiment (F1,F2,F4,F5,T1,T2,T3,A1..A8)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"redshift/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink data sizes for a fast run")
	exp := flag.String("exp", "", "run a single experiment by ID")
	flag.Parse()

	start := time.Now()
	if *exp != "" {
		t, err := bench.ByID(*exp, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(t.String())
		return
	}
	for _, t := range bench.All(*quick) {
		fmt.Print(t.String())
		fmt.Println()
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
}
