// Top-level benchmarks: one per figure, table and ablation in the paper's
// evaluation, as indexed in DESIGN.md. Each benchmark regenerates its
// experiment through internal/bench (the same harness cmd/redshift-bench
// uses) so `go test -bench=.` reproduces the whole evaluation; the smoke
// test at the bottom keeps every experiment exercised by plain `go test`.
package redshift_test

import (
	"fmt"
	"strings"
	"testing"

	"redshift"
	"redshift/internal/bench"
)

// runExp is the shared benchmark body: regenerate the experiment b.N times.
func runExp(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := bench.ByID(id, true /* quick sizes for testing.B */)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFigure1AnalysisGap(b *testing.B)       { runExp(b, "F1") }
func BenchmarkFigure2AdminOps(b *testing.B)          { runExp(b, "F2") }
func BenchmarkFigure4FeatureCadence(b *testing.B)    { runExp(b, "F4") }
func BenchmarkFigure5TicketsPerCluster(b *testing.B) { runExp(b, "F5") }
func BenchmarkTable1EDW(b *testing.B)                { runExp(b, "T1") }
func BenchmarkTable2Provisioning(b *testing.B)       { runExp(b, "T2") }
func BenchmarkTable3StreamingRestore(b *testing.B)   { runExp(b, "T3") }
func BenchmarkAblationCompression(b *testing.B)      { runExp(b, "A1") }
func BenchmarkAblationZoneMaps(b *testing.B)         { runExp(b, "A2") }
func BenchmarkAblationZOrder(b *testing.B)           { runExp(b, "A3") }
func BenchmarkAblationCompilation(b *testing.B)      { runExp(b, "A4") }
func BenchmarkAblationDistribution(b *testing.B)     { runExp(b, "A5") }
func BenchmarkAblationCohorts(b *testing.B)          { runExp(b, "A6") }
func BenchmarkAblationResize(b *testing.B)           { runExp(b, "A7") }
func BenchmarkAblationApproximate(b *testing.B)      { runExp(b, "A8") }

// TestExperimentSuiteSmoke runs every experiment at quick scale and checks
// the core claims' shapes, so `go test ./...` alone validates the
// reproduction end to end.
func TestExperimentSuiteSmoke(t *testing.T) {
	tables := bench.All(true)
	if len(tables) != 15 {
		t.Fatalf("expected 15 experiments, got %d", len(tables))
	}
	byID := map[string]bench.Table{}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		byID[tb.ID] = tb
	}

	// F2: flat across cluster sizes — deploy within 20% between 2 and 128.
	f2 := byID["F2"]
	if f2.Rows[0][1] != f2.Rows[2][1] {
		t.Errorf("F2 deploy not flat: %v vs %v", f2.Rows[0], f2.Rows[2])
	}

	// A2: blocks read must grow with selectivity and skip most at 0.0001.
	a2 := byID["A2"]
	first, last := a2.Rows[0], a2.Rows[len(a2.Rows)-1]
	if first[2] == "0" {
		t.Errorf("A2: no blocks skipped at high selectivity: %v", first)
	}
	if last[2] != "0" {
		t.Errorf("A2: full scan should skip nothing: %v", last)
	}

	// A3: on the non-leading column c4, interleaved must read a smaller
	// fraction than compound (which reads everything).
	a3 := byID["A3"]
	c4 := a3.Rows[3]
	if c4[3] != "1.00" {
		t.Errorf("A3: compound should read all blocks for c4: %v", c4)
	}
	if c4[4] >= c4[3] {
		t.Errorf("A3: interleaved should beat compound on c4: %v", c4)
	}
	// And on the leading column compound wins (the tradeoff).
	c1 := a3.Rows[0]
	if !(c1[3] < c1[4]) {
		t.Errorf("A3: compound should win on the leading column: %v", c1)
	}

	// A5: collocated join must move far fewer bytes than shuffle.
	a5 := byID["A5"]
	if !strings.Contains(a5.Rows[0][1], "DS_DIST_NONE") ||
		!strings.Contains(a5.Rows[1][1], "DS_DIST_BOTH") {
		t.Errorf("A5 strategies wrong: %v", a5.Rows)
	}

	// T2: warm provisioning much faster than cold.
	t2 := byID["T2"]
	if t2.Rows[0][2] == t2.Rows[1][2] {
		t.Errorf("T2: warm == cold: %v", t2.Rows)
	}
}

// BenchmarkStreamingPipeline drives a multi-batch scan+join+agg query
// through the per-slice streaming executor and reports the peak number of
// in-flight batches (the exec_batches_in_flight high-water gauge). The
// peak must stay O(slices × pipeline depth) — a handful of batches — while
// the scan itself emits hundreds, which is the memory claim of the fused
// operator dataflow over the old stage-at-a-time executor.
func BenchmarkStreamingPipeline(b *testing.B) {
	w, err := redshift.Launch(redshift.Options{Nodes: 2, BlockCap: 64})
	if err != nil {
		b.Fatal(err)
	}
	w.MustExecute(`CREATE TABLE fact (
		k BIGINT NOT NULL, grp BIGINT, v BIGINT
	) DISTSTYLE KEY DISTKEY(k)`)
	w.MustExecute(`CREATE TABLE dim (
		k BIGINT NOT NULL, name VARCHAR(16)
	) DISTSTYLE KEY DISTKEY(k)`)
	var fact, dim strings.Builder
	const rows = 20000 // ≈312 64-row scan batches per run
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&fact, "%d|%d|%d\n", i%500, i%11, i%100)
	}
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&dim, "%d|name%d\n", i, i)
	}
	w.PutObject("lake/fact/f.csv", []byte(fact.String()))
	w.PutObject("lake/dim/d.csv", []byte(dim.String()))
	w.MustExecute(`COPY fact FROM 's3://lake/fact/'`)
	w.MustExecute(`COPY dim FROM 's3://lake/dim/'`)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := w.MustExecute(`SELECT f.grp, SUM(f.v) AS total
			FROM fact f JOIN dim d ON f.k = d.k
			GROUP BY f.grp ORDER BY total DESC`)
		if len(res.Rows) != 11 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
	b.StopTimer()
	peak := w.Metrics().Gauge("exec_batches_in_flight_peak").Value()
	b.ReportMetric(float64(peak), "peak-batches")
	if peak < 1 || peak > 64 {
		b.Fatalf("peak in-flight batches = %d, want 1..64 (slices × depth), not O(scan batches ≈ %d)", peak, rows/64)
	}
}
