// Plan-quality benchmark: a 3-table star join written in the worst
// possible FROM order, run with the cost-based join reorderer (default)
// and with it disabled (SyntaxJoinOrder). net-B/op is the query's
// interconnect traffic (Result.Stats.NetBytes) — the cost model's target
// metric. BENCH_plan.json records the baseline comparison.
package redshift_test

import (
	"fmt"
	"strings"
	"testing"

	"redshift"
)

// planBenchWarehouse seeds a star schema sized so the syntax-order plan
// hurts: the fact table is under the broadcast cap, so building it first
// broadcasts every fact row to every node, while the reordered plan keeps
// fact as the probe side and moves only the dimensions.
func planBenchWarehouse(b *testing.B, opts redshift.Options) *redshift.Warehouse {
	b.Helper()
	w, err := redshift.Launch(opts)
	if err != nil {
		b.Fatal(err)
	}
	const nFact, nSmall, nMed = 60000, 100, 5000
	w.MustExecute(`CREATE TABLE fact (
		id BIGINT NOT NULL, d1 BIGINT, d2 BIGINT, amount DOUBLE PRECISION
	) DISTSTYLE KEY DISTKEY(id)`)
	w.MustExecute(`CREATE TABLE dimsmall (sid BIGINT, sval VARCHAR(16))`)
	w.MustExecute(`CREATE TABLE dimmed (mid BIGINT, mval VARCHAR(16))`)
	var f, s, m strings.Builder
	for i := 0; i < nFact; i++ {
		fmt.Fprintf(&f, "%d|%d|%d|%g\n", i, i%nSmall, i%nMed, float64(i%40)/4)
	}
	for i := 0; i < nSmall; i++ {
		fmt.Fprintf(&s, "%d|s%03d\n", i, i)
	}
	for i := 0; i < nMed; i++ {
		fmt.Fprintf(&m, "%d|m%05d\n", i, i)
	}
	for _, obj := range []struct{ key, data string }{
		{"lake/fact/a.csv", f.String()},
		{"lake/dimsmall/a.csv", s.String()},
		{"lake/dimmed/a.csv", m.String()},
	} {
		if err := w.PutObject(obj.key, []byte(obj.data)); err != nil {
			b.Fatal(err)
		}
	}
	w.MustExecute(`COPY fact FROM 's3://lake/fact/'`)
	w.MustExecute(`COPY dimsmall FROM 's3://lake/dimsmall/'`)
	w.MustExecute(`COPY dimmed FROM 's3://lake/dimmed/'`)
	for _, tbl := range []string{"fact", "dimsmall", "dimmed"} {
		w.MustExecute("ANALYZE " + tbl)
	}
	return w
}

// BenchmarkPlanQuality runs the star join with the medium dimension
// written first, the fact table second and the smallest relation last —
// the order a syntax-bound planner executes verbatim, broadcasting the
// whole fact table as the first build side.
func BenchmarkPlanQuality(b *testing.B) {
	query := `SELECT s.sval, COUNT(*) AS n, SUM(f.amount) AS total
		FROM dimmed m JOIN fact f ON f.d2 = m.mid JOIN dimsmall s ON f.d1 = s.sid
		GROUP BY s.sval ORDER BY s.sval`
	for _, mode := range []struct {
		name   string
		syntax bool
	}{
		{"reordered", false},
		{"syntax-order", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			w := planBenchWarehouse(b, redshift.Options{Nodes: 2, SyntaxJoinOrder: mode.syntax})
			w.MustExecute(query) // prime block cache: isolate plan quality
			b.ReportAllocs()
			b.ResetTimer()
			var net int64
			for i := 0; i < b.N; i++ {
				res := w.MustExecute(query)
				net += res.Stats.NetBytes
			}
			b.StopTimer()
			b.ReportMetric(float64(net)/float64(b.N), "net-B/op")
		})
	}
}
