// WLM QoS benchmark: replay one pinned multi-tenant trace (dashboard
// shorts + saturating ETL waves) against named queues with a short-query
// fast lane, then against a single shared queue with the same total slot
// count. One op is one full replay; the reported short_p99_ms /
// short_wait_ms metrics are what BENCH_wlm.json records — the QoS claim is
// their ratio between the two configurations, not the wall time.
package redshift_test

import (
	"context"
	"testing"
	"time"

	"redshift"
	"redshift/internal/workload"
)

// benchWorkload is the pinned trace both configurations replay.
func benchWorkload() workload.Workload {
	return workload.Workload{
		Seed:     42,
		Duration: 4 * time.Second,
		Scale:    6,
		Tenants: []workload.TenantSpec{
			{Name: "wallboard", Archetype: workload.Dashboard, Rate: 40, Repeat: 0, Sessions: 3},
			{Name: "nightly-etl", Archetype: workload.ETL, Queue: "etl", Rate: 25, Sessions: 8},
		},
	}
}

func replayBench(b *testing.B, opts redshift.Options, wl workload.Workload) *workload.Report {
	b.Helper()
	if opts.BlockCap == 0 {
		opts.BlockCap = 64
	}
	w, err := redshift.Launch(opts)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := workload.Replay(context.Background(), workload.Synthesize(wl),
		workload.SessionOpener(w), wl, workload.ReplayOptions{Retries: 3})
	if err != nil {
		b.Fatal(err)
	}
	if e := rep.FirstError(); e != "" {
		b.Fatalf("replay error: %s", e)
	}
	return rep
}

func BenchmarkWorkloadReplay(b *testing.B) {
	cases := []struct {
		name string
		opts redshift.Options
		wl   workload.Workload
	}{
		{
			name: "named-fastlane",
			opts: redshift.Options{Nodes: 2, WLMQueues: []redshift.QueueSpec{
				{Name: "express", Slots: 2, MaxEstRows: 4000, Priority: 10},
				{Name: "etl", Slots: 1},
			}},
			wl: benchWorkload(),
		},
		{
			name: "single-queue",
			opts: redshift.Options{Nodes: 2, QuerySlots: 3},
			wl: func() workload.Workload {
				wl := benchWorkload()
				wl.Tenants[1].Queue = "" // no named queues to route to
				return wl
			}(),
		},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var p99, wait time.Duration
			var n int
			for i := 0; i < b.N; i++ {
				short := replayBench(b, c.opts, c.wl).Group("wallboard", workload.KindShort)
				p99 += short.P99
				wait += short.AvgWait
				n += short.Count
			}
			b.ReportMetric(float64(p99.Milliseconds())/float64(b.N), "short_p99_ms")
			b.ReportMetric(float64(wait.Microseconds())/1000/float64(b.N), "short_wait_ms")
			b.ReportMetric(float64(n)/float64(b.N), "shorts/op")
		})
	}
}
