package fleetops

import (
	"math"
	"testing"
)

func TestAnalysisGapWidens(t *testing.T) {
	pts := DefaultGapModel().Run()
	if len(pts) != 31 || pts[0].Year != 1990 || pts[30].Year != 2020 {
		t.Fatalf("series shape wrong: %d points", len(pts))
	}
	// Figure 1's claim: the gap keeps widening.
	for i := 1; i < len(pts); i++ {
		if pts[i].DarkFraction < pts[i-1].DarkFraction-1e-9 {
			t.Fatalf("dark fraction shrank at %d: %f → %f", pts[i].Year, pts[i-1].DarkFraction, pts[i].DarkFraction)
		}
	}
	last := pts[len(pts)-1]
	if last.DarkFraction < 0.9 {
		t.Errorf("by 2020 most data should be dark, got %.2f", last.DarkFraction)
	}
	if pts[0].DarkFraction != 0 {
		t.Errorf("1990 should start with no gap, got %f", pts[0].DarkFraction)
	}
	// "data doubling in size every 20 months" ≈ 51%/yr near the end.
	growth := pts[30].EnterprisePB / pts[29].EnterprisePB
	if growth < 1.4 || growth > 1.7 {
		t.Errorf("terminal enterprise growth = %.2f, want ≈1.5", growth)
	}
}

func TestDeployCadenceFeatureRate(t *testing.T) {
	res := DefaultDeployModel(2).Run(104)
	// ~1 feature/week over two years, minus the few lost to failed patches.
	got := res.CumFeatures[103]
	if got < 85 || got > 110 {
		t.Errorf("features after 104 weeks = %d, want ≈100", got)
	}
	if res.Patches != 52 {
		t.Errorf("patches = %d, want 52", res.Patches)
	}
	// Cumulative curve is monotone.
	for i := 1; i < len(res.CumFeatures); i++ {
		if res.CumFeatures[i] < res.CumFeatures[i-1] {
			t.Fatal("cumulative features decreased")
		}
	}
}

func TestSlowerCadenceRaisesPatchFailureProbability(t *testing.T) {
	// §5: moving from 2-week to 4-week patches "meaningfully increased the
	// probability of a failed patch".
	two := DefaultDeployModel(2)
	four := DefaultDeployModel(4)
	p2 := two.PatchFailureProbability(2 * two.FeaturesPerWeek)
	p4 := four.PatchFailureProbability(4 * four.FeaturesPerWeek)
	if p4 < p2*2 {
		t.Errorf("4-week failure probability %.4f should be ≥2x the 2-week %.4f", p4, p2)
	}
	// And strictly superlinear: doubling batch size more than doubles risk.
	if p4/p2 <= 2.0 {
		t.Errorf("interaction term missing: ratio %.2f", p4/p2)
	}
}

func TestDeployDeterministic(t *testing.T) {
	a := DefaultDeployModel(2).Run(104)
	b := DefaultDeployModel(2).Run(104)
	if a.FailedPatches != b.FailedPatches || a.CumFeatures[50] != b.CumFeatures[50] {
		t.Error("deploy model not deterministic for fixed seed")
	}
}

func TestTicketsPerClusterDecline(t *testing.T) {
	stats := DefaultFleetModel().Run(104)
	first := avgTickets(stats[:8])
	last := avgTickets(stats[96:])
	if last >= first/2 {
		t.Errorf("tickets/cluster should fall ≥2x over two years: %.4f → %.4f", first, last)
	}
	// While the fleet grew substantially ("thousands of clusters").
	if stats[103].Clusters < 5*stats[0].Clusters {
		t.Errorf("fleet grew only %.0f → %.0f", stats[0].Clusters, stats[103].Clusters)
	}
	// §5: "operational load roughly correlates to business success" —
	// absolute tickets may grow, but far slower than the fleet does.
	fleetGrowth := stats[103].Clusters / stats[0].Clusters
	loadGrowth := avgAbs(stats[96:]) / avgAbs(stats[:8])
	if loadGrowth > fleetGrowth/2 {
		t.Errorf("ticket load grew %.1fx against fleet growth %.1fx; extinguishing should keep it sublinear", loadGrowth, fleetGrowth)
	}
}

func avgTickets(ws []WeekStats) float64 {
	var s float64
	for _, w := range ws {
		s += w.TicketsPerCluster
	}
	return s / float64(len(ws))
}

func avgAbs(ws []WeekStats) float64 {
	var s float64
	for _, w := range ws {
		s += w.Tickets
	}
	return s / float64(len(ws))
}

func TestFleetDeterministic(t *testing.T) {
	a := DefaultFleetModel().Run(104)
	b := DefaultFleetModel().Run(104)
	for i := range a {
		if math.Abs(a[i].Tickets-b[i].Tickets) > 1e-9 {
			t.Fatal("fleet model not deterministic")
		}
	}
}

func TestExtinguishingIsTheMechanism(t *testing.T) {
	// Ablation: with Pareto extinguishing disabled, tickets/cluster must
	// NOT decline the way Figure 5 shows.
	m := DefaultFleetModel()
	m.ExtinguishPerWeek = 0
	stats := m.Run(104)
	first := avgTickets(stats[:8])
	last := avgTickets(stats[96:])
	if last < first*0.8 {
		t.Errorf("without extinguishing, tickets/cluster still fell: %.4f → %.4f", first, last)
	}
}
