// Package fleetops models the operational processes behind the paper's
// fleet-level figures:
//
//   - Figure 1 — the "analysis gap": enterprise data compounding at
//     30–60%/yr against warehouse capacity at 8–11%/yr.
//   - Figure 4 — cumulative features under continuous delivery (~1/week),
//     and §5's claim that slowing the patch cadence from two to four weeks
//     "meaningfully increased the probability of a failed patch".
//   - Figure 5 — tickets per cluster falling over time while the fleet
//     grows, driven by weekly Pareto extinguishing of the top defect cause.
//
// Every model is deterministic for a given seed so the figures regenerate
// identically.
package fleetops

import (
	"math"
	"math/rand"
)

// GapPoint is one year of the Figure 1 series.
type GapPoint struct {
	Year int
	// EnterprisePB is total data collected by the enterprise.
	EnterprisePB float64
	// WarehousePB is data actually analyzable in the warehouse.
	WarehousePB float64
	// DarkFraction is the share of data not available for analysis.
	DarkFraction float64
}

// GapModel parameterizes the Figure 1 growth curves.
type GapModel struct {
	StartYear int
	Years     int
	// StartPB is both curves' starting size.
	StartPB float64
	// EnterpriseCAGR0/1: enterprise data growth accelerates linearly from
	// the first rate to the second over the period (the paper: 30–40%
	// historically, 50–60% in recent market research).
	EnterpriseCAGR0 float64
	EnterpriseCAGR1 float64
	// WarehouseCAGR is the warehouse market's growth (8–11%).
	WarehouseCAGR float64
}

// DefaultGapModel matches the paper's quoted rates over 1990–2020.
func DefaultGapModel() GapModel {
	return GapModel{
		StartYear:       1990,
		Years:           31,
		StartPB:         1,
		EnterpriseCAGR0: 0.30,
		EnterpriseCAGR1: 0.55,
		WarehouseCAGR:   0.095,
	}
}

// Run produces the Figure 1 series.
func (m GapModel) Run() []GapPoint {
	out := make([]GapPoint, m.Years)
	ent, wh := m.StartPB, m.StartPB
	for i := 0; i < m.Years; i++ {
		frac := 0.0
		if ent > 0 {
			frac = 1 - wh/ent
			if frac < 0 {
				frac = 0
			}
		}
		out[i] = GapPoint{Year: m.StartYear + i, EnterprisePB: ent, WarehousePB: wh, DarkFraction: frac}
		t := float64(i) / float64(m.Years-1)
		cagr := m.EnterpriseCAGR0 + t*(m.EnterpriseCAGR1-m.EnterpriseCAGR0)
		ent *= 1 + cagr
		wh *= 1 + m.WarehouseCAGR
	}
	return out
}

// DeployModel parameterizes continuous delivery (Figure 4 and §5).
type DeployModel struct {
	Seed int64
	// CadenceWeeks is how often a patch ships (the paper: 2, vs 4 as the
	// cautionary experiment).
	CadenceWeeks int
	// FeaturesPerWeek is the team's steady output (~1/week per §1).
	FeaturesPerWeek float64
	// PerChangeRisk is the chance any single change breaks a patch.
	PerChangeRisk float64
	// InteractionRisk is the extra per-pair risk when changes ship
	// together — what makes big batches disproportionately fragile.
	InteractionRisk float64
}

// DefaultDeployModel matches the paper's cadence and feature rate.
func DefaultDeployModel(cadenceWeeks int) DeployModel {
	return DeployModel{
		Seed:            42,
		CadenceWeeks:    cadenceWeeks,
		FeaturesPerWeek: 1.0,
		PerChangeRisk:   0.010,
		InteractionRisk: 0.0020,
	}
}

// DeployResult summarizes a simulated delivery history.
type DeployResult struct {
	// CumFeatures[w] is features shipped by end of week w.
	CumFeatures   []int
	Patches       int
	FailedPatches int
	// PatchFailureProbability is the analytic per-patch failure chance for
	// the cadence's average batch size.
	PatchFailureProbability float64
}

// PatchFailureProbability computes the per-patch failure chance for a batch
// of n changes: independent per-change risk plus pairwise interaction risk.
func (m DeployModel) PatchFailureProbability(n float64) float64 {
	pairs := n * (n - 1) / 2
	exponent := n*math.Log(1-m.PerChangeRisk) + pairs*math.Log(1-m.InteractionRisk)
	return 1 - math.Exp(exponent)
}

// Run simulates weeks of continuous delivery.
func (m DeployModel) Run(weeks int) DeployResult {
	rng := rand.New(rand.NewSource(m.Seed))
	res := DeployResult{CumFeatures: make([]int, weeks)}
	res.PatchFailureProbability = m.PatchFailureProbability(float64(m.CadenceWeeks) * m.FeaturesPerWeek)
	cum := 0
	pendingChanges := 0.0
	for w := 0; w < weeks; w++ {
		// Features completed this week (Poisson-ish via rounding noise).
		done := int(m.FeaturesPerWeek + rng.Float64()*0.99)
		pendingChanges += m.FeaturesPerWeek
		if m.CadenceWeeks > 0 && (w+1)%m.CadenceWeeks == 0 {
			res.Patches++
			if rng.Float64() < m.PatchFailureProbability(pendingChanges) {
				res.FailedPatches++
			} else {
				cum += int(pendingChanges)
			}
			pendingChanges = 0
		}
		_ = done
		res.CumFeatures[w] = cum
	}
	return res
}

// FleetModel parameterizes Figure 5's ticket trajectory.
type FleetModel struct {
	Seed int64
	// InitialClusters and WeeklyGrowth shape the fleet curve ("operational
	// load roughly correlates to business success").
	InitialClusters float64
	WeeklyGrowth    float64
	// InitialCauses is how many latent defect causes exist at launch;
	// cause i's per-cluster weekly ticket rate is BaseRate / (i+1)^Zipf —
	// the Pareto distribution that makes top-10 extinguishing effective.
	InitialCauses int
	Zipf          float64
	BaseRate      float64
	// NewCausesPerWeek is the defect inflow from continuous delivery.
	NewCausesPerWeek float64
	// ExtinguishPerWeek is how many top causes engineering removes weekly
	// (§5: "extinguishing one of the top ten causes of error each week").
	ExtinguishPerWeek int
}

// DefaultFleetModel matches the paper's qualitative setup.
func DefaultFleetModel() FleetModel {
	return FleetModel{
		Seed:              7,
		InitialClusters:   200,
		WeeklyGrowth:      0.035, // thousands of clusters after two years
		InitialCauses:     400,
		Zipf:              1.1,
		BaseRate:          0.004,
		NewCausesPerWeek:  2.0,
		ExtinguishPerWeek: 1,
	}
}

// WeekStats is one week of the Figure 5 series.
type WeekStats struct {
	Week              int
	Clusters          float64
	Tickets           float64
	TicketsPerCluster float64
	ActiveCauses      int
}

// Run simulates the fleet for the given number of weeks.
func (m FleetModel) Run(weeks int) []WeekStats {
	rng := rand.New(rand.NewSource(m.Seed))
	// Active causes with their per-cluster weekly rates.
	var rates []float64
	for i := 0; i < m.InitialCauses; i++ {
		rates = append(rates, m.BaseRate/math.Pow(float64(i+1), m.Zipf))
	}
	nextRank := m.InitialCauses
	clusters := m.InitialClusters
	out := make([]WeekStats, weeks)
	for w := 0; w < weeks; w++ {
		var perCluster float64
		for _, r := range rates {
			perCluster += r
		}
		noise := 1 + 0.1*(rng.Float64()-0.5)
		tickets := perCluster * clusters * noise
		out[w] = WeekStats{
			Week:              w,
			Clusters:          clusters,
			Tickets:           tickets,
			TicketsPerCluster: tickets / clusters,
			ActiveCauses:      len(rates),
		}
		// Pareto work scheduling: remove the top causes.
		for k := 0; k < m.ExtinguishPerWeek && len(rates) > 0; k++ {
			top := 0
			for i, r := range rates {
				if r > rates[top] {
					top = i
				}
				_ = r
			}
			rates = append(rates[:top], rates[top+1:]...)
		}
		// New defects arrive with feature deploys, entering with
		// tail-of-Pareto rates (big obvious defects were already designed
		// or tested out; new ones are mostly small).
		arrivals := int(m.NewCausesPerWeek + rng.Float64())
		for a := 0; a < arrivals; a++ {
			nextRank++
			rank := 10 + rng.Intn(nextRank) // occasionally a bad one
			rates = append(rates, m.BaseRate/math.Pow(float64(rank), m.Zipf))
		}
		clusters *= 1 + m.WeeklyGrowth
	}
	return out
}
