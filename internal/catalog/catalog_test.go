package catalog

import (
	"strings"
	"testing"

	"redshift/internal/compress"
	"redshift/internal/hll"
	"redshift/internal/types"
)

func clickTable() *TableDef {
	return &TableDef{
		Name: "clicks",
		Columns: []ColumnDef{
			{Name: "ts", Type: types.Timestamp, Encoding: compress.Delta},
			{Name: "product_id", Type: types.Int64, Encoding: compress.LZ},
			{Name: "url", Type: types.String, Encoding: compress.Text},
		},
		DistStyle:   DistKey,
		DistKeyCol:  1,
		SortStyle:   SortCompound,
		SortKeyCols: []int{0},
	}
}

func TestCreateGetDrop(t *testing.T) {
	c := New()
	def := clickTable()
	if err := c.Create(def); err != nil {
		t.Fatal(err)
	}
	if def.ID != 1 {
		t.Errorf("ID = %d", def.ID)
	}
	got, err := c.Get("CLICKS") // case-insensitive
	if err != nil || got != def {
		t.Fatalf("Get: %v %v", got, err)
	}
	if got, err := c.GetByID(1); err != nil || got != def {
		t.Fatalf("GetByID: %v %v", got, err)
	}
	if err := c.Create(clickTable()); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := c.Drop("clicks"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("clicks"); err == nil {
		t.Error("Get after Drop succeeded")
	}
	if err := c.Drop("clicks"); err == nil {
		t.Error("double Drop succeeded")
	}
}

func TestIDsNotReused(t *testing.T) {
	c := New()
	a := clickTable()
	c.Create(a)
	c.Drop("clicks")
	b := clickTable()
	c.Create(b)
	if b.ID == a.ID {
		t.Errorf("table ID %d reused", b.ID)
	}
}

func TestValidateRejectsBadDefs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TableDef)
	}{
		{"no name", func(d *TableDef) { d.Name = "" }},
		{"no columns", func(d *TableDef) { d.Columns = nil }},
		{"dup column", func(d *TableDef) { d.Columns[1].Name = "TS" }},
		{"invalid type", func(d *TableDef) { d.Columns[0].Type = types.Invalid }},
		{"bad encoding", func(d *TableDef) { d.Columns[2].Encoding = compress.Delta }},
		{"distkey out of range", func(d *TableDef) { d.DistKeyCol = 99 }},
		{"distkey without style", func(d *TableDef) { d.DistStyle = DistEven }},
		{"sortkey out of range", func(d *TableDef) { d.SortKeyCols = []int{-1} }},
		{"sort style without keys", func(d *TableDef) { d.SortKeyCols = nil }},
		{"keys without style", func(d *TableDef) { d.SortStyle = SortNone }},
		{"too many interleaved", func(d *TableDef) {
			d.SortStyle = SortInterleaved
			d.SortKeyCols = []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
		}},
	}
	for _, tc := range cases {
		c := New()
		def := clickTable()
		tc.mutate(def)
		if err := c.Create(def); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSchemaAndOrdinal(t *testing.T) {
	def := clickTable()
	s := def.Schema()
	if s.Len() != 3 || s.Columns[2].Name != "url" || s.Columns[2].Type != types.String {
		t.Errorf("Schema = %+v", s)
	}
	if def.Ordinal("PRODUCT_ID") != 1 || def.Ordinal("nope") != -1 {
		t.Error("Ordinal wrong")
	}
	encs := def.Encodings()
	if len(encs) != 3 || encs[0] != compress.Delta {
		t.Errorf("Encodings = %v", encs)
	}
}

func TestListSorted(t *testing.T) {
	c := New()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		def := clickTable()
		def.Name = name
		if err := c.Create(def); err != nil {
			t.Fatal(err)
		}
	}
	list := c.List()
	if len(list) != 3 || list[0].Name != "alpha" || list[2].Name != "zeta" {
		names := make([]string, len(list))
		for i, d := range list {
			names[i] = d.Name
		}
		t.Errorf("List = %v", strings.Join(names, ","))
	}
}

func TestStatsLifecycle(t *testing.T) {
	c := New()
	def := clickTable()
	c.Create(def)

	s, err := c.Stats(def.ID)
	if err != nil || s.Rows != 0 {
		t.Fatalf("initial stats: %+v %v", s, err)
	}
	delta := TableStats{
		Rows:         100,
		UnsortedRows: 10,
		Cols: []ColumnStats{
			{Min: types.NewTimestamp(5), Max: types.NewTimestamp(50), NDV: 90},
			{Min: types.NewInt(1), Max: types.NewInt(9), NullCount: 3, NDV: 9},
			{Min: types.NewString("a"), Max: types.NewString("z"), NDV: 50},
		},
	}
	if err := c.UpdateStats(def.ID, delta); err != nil {
		t.Fatal(err)
	}
	delta2 := TableStats{
		Rows: 50,
		Cols: []ColumnStats{
			{Min: types.NewTimestamp(1), Max: types.NewTimestamp(20), NDV: 40},
			{Min: types.NewInt(5), Max: types.NewInt(30), NDV: 20},
			{Min: types.NewString("m"), Max: types.NewString("q"), NDV: 10},
		},
	}
	if err := c.UpdateStats(def.ID, delta2); err != nil {
		t.Fatal(err)
	}
	s, _ = c.Stats(def.ID)
	if s.Rows != 150 || s.UnsortedRows != 10 {
		t.Errorf("rows=%d unsorted=%d", s.Rows, s.UnsortedRows)
	}
	if s.Cols[0].Min.I != 1 || s.Cols[0].Max.I != 50 {
		t.Errorf("ts bounds = %v..%v", s.Cols[0].Min, s.Cols[0].Max)
	}
	if s.Cols[1].Min.I != 1 || s.Cols[1].Max.I != 30 || s.Cols[1].NullCount != 3 {
		t.Errorf("product bounds = %+v", s.Cols[1])
	}
	if s.Cols[2].Min.S != "a" || s.Cols[2].Max.S != "z" {
		t.Errorf("url bounds = %+v", s.Cols[2])
	}

	// ReplaceStats overwrites.
	if err := c.ReplaceStats(def.ID, TableStats{Rows: 7, Cols: make([]ColumnStats, 3)}); err != nil {
		t.Fatal(err)
	}
	s, _ = c.Stats(def.ID)
	if s.Rows != 7 {
		t.Errorf("after replace rows=%d", s.Rows)
	}

	if err := c.UpdateStats(999, delta); err == nil {
		t.Error("UpdateStats on missing table succeeded")
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	c := New()
	def := clickTable()
	c.Create(def)
	s, _ := c.Stats(def.ID)
	s.Rows = 999999
	if len(s.Cols) > 0 {
		s.Cols[0].NDV = 123
	}
	s2, _ := c.Stats(def.ID)
	if s2.Rows == 999999 || (len(s2.Cols) > 0 && s2.Cols[0].NDV == 123) {
		t.Error("Stats returned shared state")
	}
}

func TestSetEncoding(t *testing.T) {
	c := New()
	def := clickTable()
	c.Create(def)
	if err := c.SetEncoding(def.ID, 1, compress.Mostly8); err != nil {
		t.Fatal(err)
	}
	encs, err := c.Encodings(def.ID)
	if err != nil || encs[1] != compress.Mostly8 {
		t.Errorf("encoding not applied: %v %v", encs, err)
	}
	// The definition stays immutable; only the catalog's view changes.
	if def.Columns[1].Encoding == compress.Mostly8 {
		t.Error("SetEncoding mutated the shared TableDef")
	}
	// Returned slice is a copy.
	encs[0] = compress.LZ
	again, _ := c.Encodings(def.ID)
	if again[0] == compress.LZ {
		t.Error("Encodings returned shared state")
	}
	if err := c.SetEncoding(def.ID, 2, compress.Delta); err == nil {
		t.Error("inapplicable encoding accepted")
	}
	if err := c.SetEncoding(def.ID, 99, compress.Raw); err == nil {
		t.Error("bad ordinal accepted")
	}
	if err := c.SetEncoding(12345, 0, compress.Raw); err == nil {
		t.Error("bad table accepted")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	c := New()
	def := clickTable()
	c.Create(def)
	c.UpdateStats(def.ID, TableStats{Rows: 42, Cols: make([]ColumnStats, 3)})
	other := clickTable()
	other.Name = "products"
	c.Create(other)

	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	d, err := got.Get("clicks")
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != def.ID || d.DistStyle != DistKey || d.DistKeyCol != 1 || len(d.SortKeyCols) != 1 {
		t.Errorf("restored def = %+v", d)
	}
	s, err := got.Stats(d.ID)
	if err != nil || s.Rows != 42 {
		t.Errorf("restored stats = %+v %v", s, err)
	}
	// New tables in the restored catalog must not collide with old IDs.
	third := clickTable()
	third.Name = "third"
	if err := got.Create(third); err != nil {
		t.Fatal(err)
	}
	if third.ID <= other.ID {
		t.Errorf("restored nextID wrong: new table got %d", third.ID)
	}

	if _, err := Unmarshal([]byte("{garbage")); err == nil {
		t.Error("Unmarshal accepted garbage")
	}
}

func TestDistSortStyleStrings(t *testing.T) {
	if DistEven.String() != "EVEN" || DistKey.String() != "KEY" || DistAll.String() != "ALL" {
		t.Error("DistStyle names wrong")
	}
	if SortNone.String() != "NONE" || SortCompound.String() != "COMPOUND" || SortInterleaved.String() != "INTERLEAVED" {
		t.Error("SortStyle names wrong")
	}
}

// sliceStats builds one slice's worth of per-column stats over the given
// int64 values, the way load.ComputeStats would: exact count, an HLL
// sketch, and width sums.
func sliceStats(vals []int64) TableStats {
	sk := hll.New()
	cs := ColumnStats{WidthSum: int64(len(vals)) * 8}
	for i, v := range vals {
		sk.AddInt64(v)
		val := types.NewInt(v)
		if i == 0 {
			cs.Min, cs.Max = val, val
			continue
		}
		if types.Compare(val, cs.Min) < 0 {
			cs.Min = val
		}
		if types.Compare(val, cs.Max) > 0 {
			cs.Max = val
		}
	}
	cs.NDV = sk.Estimate()
	cs.Sketch = sk.Marshal()
	return TableStats{Rows: int64(len(vals)), Cols: []ColumnStats{cs}}
}

// Regression for the NDV merge bug: per-slice stats carry HLL sketches, so
// merging four hash-distributed slices (disjoint value ranges) must report
// the union's distinct count — not the max of any one slice's quarter.
func TestMergeUnionsNDVSketches(t *testing.T) {
	const slices, perSlice = 4, 5000
	var merged TableStats
	for s := 0; s < slices; s++ {
		vals := make([]int64, perSlice)
		for i := range vals {
			vals[i] = int64(s*perSlice + i) // disjoint ranges per slice
		}
		merged.Merge(sliceStats(vals))
	}
	const truth = slices * perSlice
	if merged.Rows != truth {
		t.Fatalf("Rows = %d, want %d", merged.Rows, truth)
	}
	ndv := merged.Cols[0].NDV
	if lo, hi := int64(truth*95/100), int64(truth*105/100); ndv < lo || ndv > hi {
		t.Errorf("merged NDV = %d, want within 5%% of %d", ndv, truth)
	}
	if ndv <= perSlice*105/100 {
		t.Errorf("merged NDV = %d looks like one slice's max, not the union", ndv)
	}
	if w := merged.Cols[0].WidthSum; w != truth*8 {
		t.Errorf("WidthSum = %d, want %d", w, truth*8)
	}
}

// Without sketches the merge degrades to the old max-of-NDV bound rather
// than inventing counts.
func TestMergeWithoutSketchesFallsBackToMax(t *testing.T) {
	a := TableStats{Rows: 10, Cols: []ColumnStats{{NDV: 7}}}
	b := TableStats{Rows: 10, Cols: []ColumnStats{{NDV: 9}}}
	a.Merge(b)
	if a.Cols[0].NDV != 9 {
		t.Errorf("NDV = %d, want max fallback 9", a.Cols[0].NDV)
	}
}

// NullFrac and AvgWidth derive from the merged counters.
func TestNullFracAndAvgWidth(t *testing.T) {
	cs := ColumnStats{NullCount: 25, WidthSum: 300}
	if f := cs.NullFrac(100); f != 0.25 {
		t.Errorf("NullFrac = %v", f)
	}
	if f := cs.NullFrac(0); f != 0 {
		t.Errorf("NullFrac(0 rows) = %v", f)
	}
	// 75 non-null rows share 300 bytes -> 4 bytes/value.
	if w := cs.AvgWidth(100, 16); w != 4 {
		t.Errorf("AvgWidth = %v", w)
	}
	if w := (&ColumnStats{}).AvgWidth(100, 16); w != 16 {
		t.Errorf("AvgWidth default = %v", w)
	}
}

// Stats copies must not alias the stored sketch buffers.
func TestStatsCopyDoesNotAliasSketches(t *testing.T) {
	c := New()
	def := clickTable()
	c.Create(def)
	st := sliceStats([]int64{1, 2, 3})
	st.Cols = append(st.Cols, ColumnStats{}, ColumnStats{}) // 3 columns
	st.Cols[0], st.Cols[1] = st.Cols[1], st.Cols[0]         // product_id carries the sketch
	if err := c.ReplaceStats(def.ID, st); err != nil {
		t.Fatal(err)
	}
	got1, _ := c.Stats(def.ID)
	for i := range got1.Cols[1].Sketch {
		got1.Cols[1].Sketch[i] = 0xFF // scribble on the copy
	}
	got2, _ := c.Stats(def.ID)
	sk, err := hll.Unmarshal(got2.Cols[1].Sketch)
	if err != nil {
		t.Fatal(err)
	}
	if est := sk.Estimate(); est != 3 {
		t.Errorf("stored sketch corrupted through copy: estimate %d", est)
	}
}

func TestCatalogVersionBumpsOnDDL(t *testing.T) {
	c := New()
	v0 := c.Version()
	if v0 < 1 {
		t.Fatalf("initial version = %d, want >= 1", v0)
	}
	def := clickTable()
	if err := c.Create(def); err != nil {
		t.Fatal(err)
	}
	v1 := c.Version()
	if v1 <= v0 {
		t.Errorf("Create did not bump version: %d -> %d", v0, v1)
	}
	// A failed Create (duplicate) must not bump.
	c.Create(clickTable())
	if c.Version() != v1 {
		t.Errorf("failed Create bumped version to %d", c.Version())
	}
	if err := c.Drop("clicks"); err != nil {
		t.Fatal(err)
	}
	if c.Version() <= v1 {
		t.Errorf("Drop did not bump version: %d -> %d", v1, c.Version())
	}
}

func TestDataVersionLifecycle(t *testing.T) {
	c := New()
	if got := c.DataVersion(42); got != 0 {
		t.Errorf("unknown table data version = %d, want 0", got)
	}
	def := clickTable()
	if err := c.Create(def); err != nil {
		t.Fatal(err)
	}
	if got := c.DataVersion(def.ID); got != 1 {
		t.Errorf("fresh table data version = %d, want 1", got)
	}
	c.BumpDataVersion(def.ID)
	c.BumpDataVersion(def.ID)
	if got := c.DataVersion(def.ID); got != 3 {
		t.Errorf("after two bumps data version = %d, want 3", got)
	}
	// Bumping an unknown ID is a no-op, not a resurrection.
	c.BumpDataVersion(999)
	if got := c.DataVersion(999); got != 0 {
		t.Errorf("bump of unknown id materialized version %d", got)
	}
	if err := c.Drop("clicks"); err != nil {
		t.Fatal(err)
	}
	if got := c.DataVersion(def.ID); got != 0 {
		t.Errorf("dropped table data version = %d, want 0", got)
	}
}

func TestUnmarshalSeedsDataVersions(t *testing.T) {
	c := New()
	def := clickTable()
	if err := c.Create(def); err != nil {
		t.Fatal(err)
	}
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.DataVersion(def.ID); got != 1 {
		t.Errorf("restored data version = %d, want 1", got)
	}
}
