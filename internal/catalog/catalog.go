// Package catalog implements the system catalog: table definitions with
// their distribution and sort configuration (§2.1 — the "main things set by
// a customer" per §3.3), per-column encodings (set automatically by default,
// a "dusty knob"), and the table statistics that feed the optimizer.
package catalog

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"redshift/internal/compress"
	"redshift/internal/hll"
	"redshift/internal/types"
)

// DistStyle is how a table's rows are distributed across slices (§2.1:
// "round robin fashion, hashed according to a distribution key, or
// duplicated on all slices").
type DistStyle uint8

const (
	// DistEven distributes rows round-robin.
	DistEven DistStyle = iota
	// DistKey distributes rows by hash of the distribution key, enabling
	// co-located joins on that key.
	DistKey
	// DistAll duplicates the table on every node.
	DistAll
)

// String returns the DISTSTYLE name.
func (d DistStyle) String() string {
	switch d {
	case DistEven:
		return "EVEN"
	case DistKey:
		return "KEY"
	case DistAll:
		return "ALL"
	default:
		return fmt.Sprintf("DISTSTYLE(%d)", uint8(d))
	}
}

// SortStyle is how a table's sort key orders rows within each slice.
type SortStyle uint8

const (
	// SortNone leaves rows in load order.
	SortNone SortStyle = iota
	// SortCompound orders by the sort key columns lexicographically.
	SortCompound
	// SortInterleaved orders by the multidimensional z-curve over the sort
	// key columns (§3.3's graceful-degradation alternative to projections).
	SortInterleaved
)

// String returns the SORTKEY style name.
func (s SortStyle) String() string {
	switch s {
	case SortNone:
		return "NONE"
	case SortCompound:
		return "COMPOUND"
	case SortInterleaved:
		return "INTERLEAVED"
	default:
		return fmt.Sprintf("SORTSTYLE(%d)", uint8(s))
	}
}

// ColumnDef is a table column plus its physical configuration.
type ColumnDef struct {
	Name    string
	Type    types.Type
	NotNull bool
	// Encoding is the block codec for the column.
	Encoding compress.Encoding
	// AutoEncoding records that the encoding was (or will be) chosen by
	// sampling rather than by the user — the knob is still dusty.
	AutoEncoding bool
}

// TableDef describes one table.
type TableDef struct {
	ID        int64
	Name      string
	Columns   []ColumnDef
	DistStyle DistStyle
	// DistKeyCol is the distribution key column ordinal; -1 when DistStyle
	// is not DistKey.
	DistKeyCol int
	SortStyle  SortStyle
	// SortKeyCols are the sort key column ordinals, in declaration order.
	SortKeyCols []int
}

// Schema returns the logical schema of the table.
func (t *TableDef) Schema() types.Schema {
	cols := make([]types.Column, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = types.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
	}
	return types.NewSchema(cols...)
}

// Encodings returns the per-column encodings in order.
func (t *TableDef) Encodings() []compress.Encoding {
	encs := make([]compress.Encoding, len(t.Columns))
	for i, c := range t.Columns {
		encs[i] = c.Encoding
	}
	return encs
}

// Ordinal returns the position of the named column, or -1.
func (t *TableDef) Ordinal(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Validate checks internal consistency of the definition.
func (t *TableDef) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table has no name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %s has no columns", t.Name)
	}
	seen := map[string]bool{}
	for _, c := range t.Columns {
		key := strings.ToLower(c.Name)
		if seen[key] {
			return fmt.Errorf("catalog: table %s: duplicate column %s", t.Name, c.Name)
		}
		seen[key] = true
		if c.Type == types.Invalid {
			return fmt.Errorf("catalog: table %s: column %s has invalid type", t.Name, c.Name)
		}
		if !compress.Applicable(c.Encoding, c.Type) {
			return fmt.Errorf("catalog: table %s: column %s: encoding %s not applicable to %s",
				t.Name, c.Name, c.Encoding, c.Type)
		}
	}
	if t.DistStyle == DistKey {
		if t.DistKeyCol < 0 || t.DistKeyCol >= len(t.Columns) {
			return fmt.Errorf("catalog: table %s: distkey ordinal %d out of range", t.Name, t.DistKeyCol)
		}
	} else if t.DistKeyCol != -1 {
		return fmt.Errorf("catalog: table %s: distkey set without DISTSTYLE KEY", t.Name)
	}
	if t.SortStyle == SortNone && len(t.SortKeyCols) > 0 {
		return fmt.Errorf("catalog: table %s: sortkey columns without a sort style", t.Name)
	}
	if t.SortStyle != SortNone && len(t.SortKeyCols) == 0 {
		return fmt.Errorf("catalog: table %s: sort style without sortkey columns", t.Name)
	}
	if t.SortStyle == SortInterleaved && len(t.SortKeyCols) > 8 {
		return fmt.Errorf("catalog: table %s: interleaved sortkey limited to 8 columns", t.Name)
	}
	for _, k := range t.SortKeyCols {
		if k < 0 || k >= len(t.Columns) {
			return fmt.Errorf("catalog: table %s: sortkey ordinal %d out of range", t.Name, k)
		}
	}
	return nil
}

// ColumnStats summarizes one column for the optimizer and the zone-map-aware
// planner: bounds, null count, a distinct-value estimate and the average
// value width.
type ColumnStats struct {
	Min, Max  types.Value
	NullCount int64
	// NDV is the estimated number of distinct values (HyperLogLog).
	NDV int64
	// Sketch is the serialized HLL sketch behind NDV. Keeping the sketch
	// lets per-slice (and per-segment) statistics merge losslessly: unioning
	// sketches estimates the distinct count of the union, where taking the
	// max of per-slice NDVs collapses a hash-distributed column to a
	// one-slice lower bound (~NDV/slices).
	Sketch []byte `json:",omitempty"`
	// WidthSum is the total byte width of the column's non-null values
	// (8 for fixed-width types, len(s) for strings); WidthSum/(rows-nulls)
	// is the average row width the cost model prices data movement with.
	WidthSum int64
}

// NullFrac returns the fraction of NULLs given the table's row count.
func (c *ColumnStats) NullFrac(rows int64) float64 {
	if rows <= 0 {
		return 0
	}
	return float64(c.NullCount) / float64(rows)
}

// AvgWidth returns the average non-null value width in bytes, or def when
// the column has no recorded widths (pre-upgrade stats, all-NULL column).
func (c *ColumnStats) AvgWidth(rows int64, def float64) float64 {
	nonNull := rows - c.NullCount
	if c.WidthSum <= 0 || nonNull <= 0 {
		return def
	}
	return float64(c.WidthSum) / float64(nonNull)
}

// TableStats summarizes a table. Stats update automatically on COPY (§2.1:
// "optimizer statistics are updated with load").
type TableStats struct {
	Rows int64
	Cols []ColumnStats
	// UnsortedRows counts rows loaded after the last sort boundary; a large
	// unsorted fraction is the signal for automatic table maintenance
	// (§3.2 future work: the database "take[s] action to correct itself").
	UnsortedRows int64
}

// Merge folds other into s column-wise (used when slices report local
// statistics to the leader).
func (s *TableStats) Merge(other TableStats) {
	s.Rows += other.Rows
	s.UnsortedRows += other.UnsortedRows
	if len(s.Cols) == 0 {
		s.Cols = make([]ColumnStats, len(other.Cols))
		for i := range s.Cols {
			s.Cols[i] = other.Cols[i]
			s.Cols[i].Sketch = append([]byte(nil), other.Cols[i].Sketch...)
		}
		return
	}
	for i := range s.Cols {
		if i >= len(other.Cols) {
			break
		}
		o := other.Cols[i]
		s.Cols[i].NullCount += o.NullCount
		s.Cols[i].WidthSum += o.WidthSum
		if o.Min.T != types.Invalid {
			if s.Cols[i].Min.T == types.Invalid || types.Compare(o.Min, s.Cols[i].Min) < 0 {
				s.Cols[i].Min = o.Min
			}
		}
		if o.Max.T != types.Invalid {
			if s.Cols[i].Max.T == types.Invalid || types.Compare(o.Max, s.Cols[i].Max) > 0 {
				s.Cols[i].Max = o.Max
			}
		}
		mergeNDV(&s.Cols[i], o)
	}
}

// mergeNDV folds the other side's distinct-value estimate into dst. When
// both sides carry HLL sketches the union is lossless: register-wise max
// then re-estimate. A side without a sketch (stats written before sketches
// were persisted) degrades to the old max-as-lower-bound rule, and the
// surviving sketch — now covering only part of the data — stays as a
// lower-bound witness.
func mergeNDV(dst *ColumnStats, o ColumnStats) {
	if len(o.Sketch) > 0 {
		if len(dst.Sketch) > 0 {
			a, errA := hll.Unmarshal(dst.Sketch)
			b, errB := hll.Unmarshal(o.Sketch)
			if errA == nil && errB == nil {
				a.Merge(b)
				dst.Sketch = a.Marshal()
				dst.NDV = a.Estimate()
				return
			}
		} else if dst.NDV == 0 {
			// dst has seen no values yet: adopt the other side wholesale.
			dst.Sketch = append([]byte(nil), o.Sketch...)
			dst.NDV = o.NDV
			return
		}
	}
	if o.NDV > dst.NDV {
		dst.NDV = o.NDV
	}
}

// Catalog is the leader node's table registry. It is safe for concurrent
// use. TableDef contents are immutable after Create; the one piece of
// mutable physical design — current per-column encodings, which COPY's
// sampling updates — lives in the catalog's own locked map so readers
// copying definitions never race a chooser.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]*TableDef
	byID   map[int64]*TableDef
	stats  map[int64]*TableStats
	// encodings holds each table's CURRENT column encodings (initialized
	// from the definition, updated by automatic selection).
	encodings map[int64][]compress.Encoding
	nextID    int64

	// version is the global catalog version: a monotonic counter bumped by
	// every DDL change (Create, Drop). Cached query plans carry the version
	// they were bound under, so any schema change invalidates them by
	// simple integer mismatch — no eviction scan.
	version int64
	// dataVer is each table's data version, bumped by every committed data
	// mutation (COPY, INSERT, TRUNCATE, VACUUM) and by ANALYZE (statistics
	// feed plans, so stats refreshes must also invalidate cached plans).
	// Result-cache entries key on these, giving precise staleness checks.
	dataVer map[int64]int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		byName:    map[string]*TableDef{},
		byID:      map[int64]*TableDef{},
		stats:     map[int64]*TableStats{},
		encodings: map[int64][]compress.Encoding{},
		dataVer:   map[int64]int64{},
		nextID:    1,
		version:   1,
	}
}

// Version returns the global catalog version. It starts at 1 and increases
// on every DDL change; equal versions guarantee identical schemas.
func (c *Catalog) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// DataVersion returns the table's data version (0 for an unknown table; a
// freshly created table starts at 1). Two reads returning the same value
// bracket a window with no committed mutation of the table.
func (c *Catalog) DataVersion(id int64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dataVer[id]
}

// BumpDataVersion records a committed data mutation (or statistics refresh)
// of the table. Callers bump AFTER the transaction publishes, so a result
// cached under version v can never contain less data than v's bumps —
// a version-matched cache hit is therefore never stale.
func (c *Catalog) BumpDataVersion(id int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byID[id]; ok {
		c.dataVer[id]++
	}
}

// Create validates and registers a table, assigning its ID.
func (c *Catalog) Create(def *TableDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, ok := c.byName[key]; ok {
		return fmt.Errorf("catalog: table %s already exists", def.Name)
	}
	def.ID = c.nextID
	if err := def.Validate(); err != nil {
		return err
	}
	c.nextID++
	c.byName[key] = def
	c.byID[def.ID] = def
	c.stats[def.ID] = &TableStats{Cols: make([]ColumnStats, len(def.Columns))}
	c.encodings[def.ID] = def.Encodings()
	c.dataVer[def.ID] = 1
	c.version++
	return nil
}

// Drop removes a table by name.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	def, ok := c.byName[key]
	if !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.byName, key)
	delete(c.byID, def.ID)
	delete(c.stats, def.ID)
	delete(c.encodings, def.ID)
	delete(c.dataVer, def.ID)
	c.version++
	return nil
}

// Get returns the table by name, or an error naming the table.
func (c *Catalog) Get(name string) (*TableDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	def, ok := c.byName[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %s does not exist", name)
	}
	return def, nil
}

// GetByID returns the table by ID.
func (c *Catalog) GetByID(id int64) (*TableDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	def, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("catalog: table id %d does not exist", id)
	}
	return def, nil
}

// List returns all table definitions, sorted by name.
func (c *Catalog) List() []*TableDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*TableDef, 0, len(c.byName))
	for _, def := range c.byName {
		out = append(out, def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats returns a copy of the table's statistics.
func (c *Catalog) Stats(id int64) (TableStats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.stats[id]
	if !ok {
		return TableStats{}, fmt.Errorf("catalog: no stats for table id %d", id)
	}
	return copyStats(s), nil
}

// copyStats deep-copies table statistics so callers (and concurrent
// merges) never alias the catalog's sketch buffers.
func copyStats(s *TableStats) TableStats {
	cp := *s
	cp.Cols = append([]ColumnStats(nil), s.Cols...)
	for i := range cp.Cols {
		cp.Cols[i].Sketch = append([]byte(nil), cp.Cols[i].Sketch...)
	}
	return cp
}

// UpdateStats folds a statistics delta into the table's stats.
func (c *Catalog) UpdateStats(id int64, delta TableStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.stats[id]
	if !ok {
		return fmt.Errorf("catalog: no stats for table id %d", id)
	}
	s.Merge(delta)
	return nil
}

// ReplaceStats overwrites the table's statistics (VACUUM/ANALYZE result).
func (c *Catalog) ReplaceStats(id int64, stats TableStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.stats[id]; !ok {
		return fmt.Errorf("catalog: no stats for table id %d", id)
	}
	cp := copyStats(&stats)
	c.stats[id] = &cp
	return nil
}

// SetEncoding records an automatically chosen encoding for a column. The
// table definition itself is untouched (it is immutable after Create); the
// current encoding lives in the catalog's locked map.
func (c *Catalog) SetEncoding(id int64, col int, enc compress.Encoding) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	def, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("catalog: table id %d does not exist", id)
	}
	if col < 0 || col >= len(def.Columns) {
		return fmt.Errorf("catalog: column %d out of range", col)
	}
	if !compress.Applicable(enc, def.Columns[col].Type) {
		return fmt.Errorf("catalog: encoding %s not applicable to %s", enc, def.Columns[col].Type)
	}
	c.encodings[id][col] = enc
	return nil
}

// Encodings returns a copy of the table's current column encodings.
func (c *Catalog) Encodings(id int64) ([]compress.Encoding, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	encs, ok := c.encodings[id]
	if !ok {
		return nil, fmt.Errorf("catalog: table id %d does not exist", id)
	}
	return append([]compress.Encoding(nil), encs...), nil
}

// snapshot is the serialized catalog state used by backup.
type snapshot struct {
	NextID    int64
	Tables    []*TableDef
	Stats     map[int64]*TableStats
	Encodings map[int64][]compress.Encoding
}

// Marshal serializes the catalog for backup (§2.3: restore brings back
// "metadata and catalog" first, before any data block).
func (c *Catalog) Marshal() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := snapshot{NextID: c.nextID, Stats: c.stats, Encodings: c.encodings}
	for _, def := range c.byID {
		snap.Tables = append(snap.Tables, def)
	}
	sort.Slice(snap.Tables, func(i, j int) bool { return snap.Tables[i].ID < snap.Tables[j].ID })
	return json.Marshal(snap)
}

// Unmarshal reconstructs a catalog serialized with Marshal.
func Unmarshal(data []byte) (*Catalog, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("catalog: corrupt snapshot: %w", err)
	}
	c := New()
	c.nextID = snap.NextID
	for _, def := range snap.Tables {
		c.byName[strings.ToLower(def.Name)] = def
		c.byID[def.ID] = def
		c.dataVer[def.ID] = 1
	}
	for id, s := range snap.Stats {
		c.stats[id] = s
	}
	for id, encs := range snap.Encodings {
		c.encodings[id] = encs
	}
	// Older snapshots without the encodings map fall back to definitions.
	for id, def := range c.byID {
		if _, ok := c.encodings[id]; !ok {
			c.encodings[id] = def.Encodings()
		}
	}
	return c, nil
}
