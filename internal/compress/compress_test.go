package compress

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"redshift/internal/types"
)

// mkInts builds an Int64 vector from a slice, with nulls where null[i].
func mkInts(vals []int64, nulls []bool) *types.Vector {
	v := types.NewVector(types.Int64, len(vals))
	for i, x := range vals {
		if nulls != nil && i < len(nulls) && nulls[i] {
			v.AppendNull()
		} else {
			v.Append(types.NewInt(x))
		}
	}
	return v
}

func mkStrs(vals []string) *types.Vector {
	v := types.NewVector(types.String, len(vals))
	for _, s := range vals {
		v.Append(types.NewString(s))
	}
	return v
}

func mkFloats(vals []float64) *types.Vector {
	v := types.NewVector(types.Float64, len(vals))
	for _, f := range vals {
		v.Append(types.NewFloat(f))
	}
	return v
}

func roundTrip(t *testing.T, e Encoding, v *types.Vector) {
	t.Helper()
	data, err := Encode(e, v)
	if err != nil {
		t.Fatalf("%s encode: %v", e, err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("%s decode: %v", e, err)
	}
	if !got.Equal(v) {
		t.Fatalf("%s round trip mismatch:\n in  %v\n out %v", e, v, got)
	}
	if enc, err := BlockEncoding(data); err != nil || enc != e {
		t.Fatalf("BlockEncoding = %v, %v; want %v", enc, err, e)
	}
}

func TestRoundTripAllEncodingsInt(t *testing.T) {
	vals := []int64{0, 1, -1, 127, -128, 300, 70000, math.MaxInt64, math.MinInt64, 42, 42, 42}
	nulls := []bool{false, true, false, false, false, false, false, false, false, true, false, false}
	for _, e := range []Encoding{Raw, RunLength, Delta, Mostly8, Mostly16, Mostly32, LZ} {
		roundTrip(t, e, mkInts(vals, nulls))
	}
}

func TestRoundTripByteDictInt(t *testing.T) {
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(i % 7)
	}
	roundTrip(t, ByteDict, mkInts(vals, nil))
}

func TestByteDictOverflow(t *testing.T) {
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = int64(i)
	}
	if _, err := Encode(ByteDict, mkInts(vals, nil)); err != ErrDictOverflow {
		t.Fatalf("err = %v, want ErrDictOverflow", err)
	}
}

func TestRoundTripStrings(t *testing.T) {
	vals := []string{"us-east-1", "us-west-2", "", "eu-west-1", "us-east-1", "héllo wörld", strings.Repeat("x", 5000)}
	for _, e := range []Encoding{Raw, RunLength, Text, LZ} {
		roundTrip(t, e, mkStrs(vals))
	}
	v := mkStrs([]string{"a", "b", "a"})
	v.AppendNull()
	for _, e := range []Encoding{Raw, RunLength, Text, LZ, ByteDict} {
		roundTrip(t, e, v)
	}
}

func TestRoundTripFloats(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1)}
	for _, e := range []Encoding{Raw, RunLength, LZ} {
		roundTrip(t, e, mkFloats(vals))
	}
}

func TestRoundTripEmpty(t *testing.T) {
	for _, e := range []Encoding{Raw, RunLength, Delta, Mostly8, ByteDict, LZ} {
		roundTrip(t, e, mkInts(nil, nil))
	}
	roundTrip(t, Text, mkStrs(nil))
}

func TestEncodeNotApplicable(t *testing.T) {
	if _, err := Encode(Delta, mkStrs([]string{"a"})); err == nil {
		t.Error("Delta on strings should fail")
	}
	if _, err := Encode(Text, mkInts([]int64{1}, nil)); err == nil {
		t.Error("Text on ints should fail")
	}
	if _, err := Encode(Mostly8, mkFloats([]float64{1})); err == nil {
		t.Error("Mostly8 on floats should fail")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{byte(numEncodings) + 5, byte(types.Int64), 3, 0},
		{byte(RunLength), byte(types.Int64), 10, 0, 2, 200}, // run overflows count
		{byte(Text), byte(types.String), 1, 0, 255, 255, 255, 255, 15},
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: corrupt block decoded without error", i)
		}
	}
}

func TestPropertyRoundTripIntsEveryEncoding(t *testing.T) {
	f := func(vals []int64, nullSeed uint8) bool {
		nulls := make([]bool, len(vals))
		for i := range nulls {
			nulls[i] = (int(nullSeed)+i)%5 == 0
		}
		v := mkInts(vals, nulls)
		for _, e := range []Encoding{Raw, RunLength, Delta, Mostly8, Mostly16, Mostly32, LZ} {
			data, err := Encode(e, v)
			if err != nil {
				return false
			}
			got, err := Decode(data)
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRoundTripStrings(t *testing.T) {
	f := func(vals []string) bool {
		v := mkStrs(vals)
		for _, e := range []Encoding{Raw, RunLength, Text, LZ} {
			data, err := Encode(e, v)
			if err != nil {
				return false
			}
			got, err := Decode(data)
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestChooseSortedIntsPrefersDeltaOrRLE(t *testing.T) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(1_600_000_000 + i)
	}
	got := Choose(mkInts(vals, nil))
	if got != Delta {
		t.Errorf("Choose(sorted dense ints) = %v, want DELTA", got)
	}
}

func TestChooseConstantColumnPrefersRunLength(t *testing.T) {
	vals := make([]int64, 4096)
	got := Choose(mkInts(vals, nil))
	if got != RunLength {
		t.Errorf("Choose(constant) = %v, want RUNLENGTH", got)
	}
}

func TestChooseSmallIntsPrefersMostly8(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = rng.Int63n(200) - 100
		if i%100 == 0 {
			vals[i] = math.MaxInt64 - int64(i) // a few exceptions
		}
	}
	got := Choose(mkInts(vals, nil))
	if got != Mostly8 {
		t.Errorf("Choose(mostly small random) = %v, want MOSTLY8", got)
	}
}

func TestChooseLowCardinalityStringsPrefersDictionary(t *testing.T) {
	regions := []string{"us-east-1", "us-west-2", "eu-west-1", "ap-northeast-1"}
	v := types.NewVector(types.String, 4096)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4096; i++ {
		v.Append(types.NewString(regions[rng.Intn(len(regions))]))
	}
	got := Choose(v)
	if got != ByteDict && got != Text {
		t.Errorf("Choose(low-card strings) = %v, want a dictionary encoding", got)
	}
}

func TestChooseHighEntropyStringsAvoidsDictionaryBloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := types.NewVector(types.String, 1024)
	letters := "abcdefghijklmnopqrstuvwxyz0123456789"
	for i := 0; i < 1024; i++ {
		b := make([]byte, 24)
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		v.Append(types.NewString(string(b)))
	}
	got := Choose(v)
	// Unique random strings: dictionary adds overhead; RAW or LZ should win.
	if got == Text || got == ByteDict {
		t.Errorf("Choose(unique strings) = %v; dictionary should not win", got)
	}
}

func TestChooseEmpty(t *testing.T) {
	if got := Choose(types.NewVector(types.Int64, 0)); got != Raw {
		t.Errorf("Choose(empty) = %v, want RAW", got)
	}
}

func TestAnalyzeReportsAllApplicable(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	results := Analyze(mkInts(vals, nil))
	if len(results) != 8 { // all but Text apply to ints
		t.Fatalf("got %d results: %+v", len(results), results)
	}
	// Sorted ascending by size among applicable.
	prev := -1
	for _, r := range results {
		if !r.Applicable {
			continue
		}
		if prev >= 0 && r.Bytes < prev {
			t.Errorf("results not sorted: %+v", results)
		}
		prev = r.Bytes
		if r.Ratio <= 0 {
			t.Errorf("ratio missing for %v", r.Encoding)
		}
	}
	// ByteDict must be reported as inapplicable (overflow), with zero bytes.
	for _, r := range results {
		if r.Encoding == ByteDict && r.Applicable {
			t.Error("ByteDict should overflow on 1000 distinct values")
		}
	}
}

func TestCompressionRatioOnRealisticColumns(t *testing.T) {
	// A sorted timestamp column must compress at least 3x under DELTA
	// (2-byte varint deltas vs 8-byte raw values).
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = 1_300_000_000_000 + int64(i)*1000
	}
	v := mkInts(vals, nil)
	raw, _ := Encode(Raw, v)
	delta, _ := Encode(Delta, v)
	if len(raw) < 3*len(delta) {
		t.Errorf("delta ratio too small: raw=%d delta=%d", len(raw), len(delta))
	}
}

func TestSample(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i)
	}
	v := mkInts(vals, nil)
	s := Sample(v, 100)
	if s.Len() > 100 {
		t.Errorf("sample too large: %d", s.Len())
	}
	if s.Len() < 50 {
		t.Errorf("sample too small: %d", s.Len())
	}
	small := mkInts([]int64{1, 2}, nil)
	if Sample(small, 100) != small {
		t.Error("small vectors should be returned as-is")
	}
}

func TestParseEncodingRoundTrip(t *testing.T) {
	for e := Encoding(0); e < numEncodings; e++ {
		got, err := ParseEncoding(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEncoding(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEncoding("bogus"); err == nil {
		t.Error("ParseEncoding accepted bogus name")
	}
	if e, err := ParseEncoding("none"); err != nil || e != Raw {
		t.Errorf("ParseEncoding(none) = %v, %v", e, err)
	}
}
