// Package compress implements the per-column block encodings of §2.1 and the
// automatic, sampling-based encoding selection of §1 ("we automatically pick
// compression types based on data sampling") and §3.3 ("simply setting them
// accurately ourselves").
//
// The encoding set mirrors Redshift's: RAW, RUNLENGTH, DELTA, MOSTLY8/16/32,
// BYTEDICT, TEXT (string dictionary) and LZO (stand-in: DEFLATE, the stdlib
// Lempel-Ziv). Every encoded block is self-describing: a fixed header carries
// the encoding, the value type, the row count and the null bitmap, so blocks
// can be shipped to S3, replicated and page-faulted back without side tables.
package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"

	"redshift/internal/types"
)

// Encoding identifies a block codec.
type Encoding uint8

// The supported encodings. Raw must be zero so the zero value is valid.
const (
	Raw Encoding = iota
	RunLength
	Delta
	Mostly8
	Mostly16
	Mostly32
	ByteDict
	Text
	LZ

	numEncodings
)

// String returns the CREATE TABLE ... ENCODE name of the encoding.
func (e Encoding) String() string {
	switch e {
	case Raw:
		return "RAW"
	case RunLength:
		return "RUNLENGTH"
	case Delta:
		return "DELTA"
	case Mostly8:
		return "MOSTLY8"
	case Mostly16:
		return "MOSTLY16"
	case Mostly32:
		return "MOSTLY32"
	case ByteDict:
		return "BYTEDICT"
	case Text:
		return "TEXT"
	case LZ:
		return "LZO"
	default:
		return fmt.Sprintf("ENCODING(%d)", uint8(e))
	}
}

// ParseEncoding maps an ENCODE clause name to an Encoding.
func ParseEncoding(s string) (Encoding, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "RAW", "NONE":
		return Raw, nil
	case "RUNLENGTH":
		return RunLength, nil
	case "DELTA", "DELTA32K":
		return Delta, nil
	case "MOSTLY8":
		return Mostly8, nil
	case "MOSTLY16":
		return Mostly16, nil
	case "MOSTLY32":
		return Mostly32, nil
	case "BYTEDICT":
		return ByteDict, nil
	case "TEXT", "TEXT255", "TEXT32K":
		return Text, nil
	case "LZO", "LZ", "ZSTD":
		return LZ, nil
	default:
		return Raw, fmt.Errorf("compress: unknown encoding %q", s)
	}
}

// Applicable reports whether encoding e can represent columns of type t.
func Applicable(e Encoding, t types.Type) bool {
	switch e {
	case Raw, RunLength, ByteDict, LZ:
		return true
	case Delta, Mostly8, Mostly16, Mostly32:
		return t == types.Int64 || t == types.Date || t == types.Timestamp || t == types.Bool
	case Text:
		return t == types.String
	default:
		return false
	}
}

// intKind reports whether the type stores its payload in Vector.Ints.
func intKind(t types.Type) bool { return t != types.Float64 && t != types.String }

// Encode serializes v with encoding e into a self-describing block.
func Encode(e Encoding, v *types.Vector) ([]byte, error) {
	if !Applicable(e, v.T) {
		return nil, fmt.Errorf("compress: %s not applicable to %s", e, v.T)
	}
	var buf bytes.Buffer
	buf.WriteByte(byte(e))
	buf.WriteByte(byte(v.T))
	writeUvarint(&buf, uint64(v.Len()))
	writeNulls(&buf, v)

	var err error
	switch e {
	case Raw:
		err = encodeRaw(&buf, v)
	case RunLength:
		err = encodeRunLength(&buf, v)
	case Delta:
		err = encodeDelta(&buf, v)
	case Mostly8:
		err = encodeMostly(&buf, v, 1)
	case Mostly16:
		err = encodeMostly(&buf, v, 2)
	case Mostly32:
		err = encodeMostly(&buf, v, 4)
	case ByteDict:
		err = encodeByteDict(&buf, v)
	case Text:
		err = encodeText(&buf, v)
	case LZ:
		err = encodeLZ(&buf, v)
	}
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reconstructs the vector from a self-describing block.
func Decode(data []byte) (*types.Vector, error) {
	r := bytes.NewReader(data)
	encByte, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("compress: short block: %w", err)
	}
	typByte, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("compress: short block: %w", err)
	}
	e, t := Encoding(encByte), types.Type(typByte)
	if e >= numEncodings {
		return nil, fmt.Errorf("compress: corrupt block: encoding %d", encByte)
	}
	n64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("compress: corrupt block length: %w", err)
	}
	n := int(n64)
	nulls, err := readNulls(r, n)
	if err != nil {
		return nil, err
	}

	v := types.NewVector(t, n)
	switch e {
	case Raw:
		err = decodeRaw(r, v, n)
	case RunLength:
		err = decodeRunLength(r, v, n)
	case Delta:
		err = decodeDelta(r, v, n)
	case Mostly8:
		err = decodeMostly(r, v, n, 1)
	case Mostly16:
		err = decodeMostly(r, v, n, 2)
	case Mostly32:
		err = decodeMostly(r, v, n, 4)
	case ByteDict:
		err = decodeByteDict(r, v, n)
	case Text:
		err = decodeText(r, v, n)
	case LZ:
		err = decodeLZ(r, v, n)
	}
	if err != nil {
		return nil, err
	}
	v.Nulls = nulls
	return v, nil
}

// BlockEncoding returns the encoding tag of an encoded block without
// decoding it.
func BlockEncoding(data []byte) (Encoding, error) {
	if len(data) < 2 {
		return Raw, fmt.Errorf("compress: short block")
	}
	return Encoding(data[0]), nil
}

// header/null-bitmap helpers

func writeUvarint(buf *bytes.Buffer, x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], x)])
}

func writeVarint(buf *bytes.Buffer, x int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutVarint(tmp[:], x)])
}

func writeNulls(buf *bytes.Buffer, v *types.Vector) {
	if !v.HasNulls() {
		buf.WriteByte(0)
		return
	}
	buf.WriteByte(1)
	n := v.Len()
	packed := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if v.IsNull(i) {
			packed[i/8] |= 1 << uint(i%8)
		}
	}
	buf.Write(packed)
}

func readNulls(r *bytes.Reader, n int) ([]bool, error) {
	flag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("compress: corrupt null header: %w", err)
	}
	if flag == 0 {
		return nil, nil
	}
	packed := make([]byte, (n+7)/8)
	if _, err := io.ReadFull(r, packed); err != nil {
		return nil, fmt.Errorf("compress: corrupt null bitmap: %w", err)
	}
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		nulls[i] = packed[i/8]&(1<<uint(i%8)) != 0
	}
	return nulls, nil
}

// RAW: fixed 8-byte little-endian for numerics, length-prefixed bytes for
// strings.

func encodeRaw(buf *bytes.Buffer, v *types.Vector) error {
	switch v.T {
	case types.Float64:
		var tmp [8]byte
		for _, f := range v.Floats {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
			buf.Write(tmp[:])
		}
	case types.String:
		for _, s := range v.Strs {
			writeUvarint(buf, uint64(len(s)))
			buf.WriteString(s)
		}
	default:
		var tmp [8]byte
		for _, i := range v.Ints {
			binary.LittleEndian.PutUint64(tmp[:], uint64(i))
			buf.Write(tmp[:])
		}
	}
	return nil
}

func decodeRaw(r *bytes.Reader, v *types.Vector, n int) error {
	switch v.T {
	case types.Float64:
		var tmp [8]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(r, tmp[:]); err != nil {
				return fmt.Errorf("compress: raw float: %w", err)
			}
			v.Floats = append(v.Floats, math.Float64frombits(binary.LittleEndian.Uint64(tmp[:])))
		}
	case types.String:
		for i := 0; i < n; i++ {
			s, err := readString(r)
			if err != nil {
				return err
			}
			v.Strs = append(v.Strs, s)
		}
	default:
		var tmp [8]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(r, tmp[:]); err != nil {
				return fmt.Errorf("compress: raw int: %w", err)
			}
			v.Ints = append(v.Ints, int64(binary.LittleEndian.Uint64(tmp[:])))
		}
	}
	return nil
}

func readString(r *bytes.Reader) (string, error) {
	l, err := binary.ReadUvarint(r)
	if err != nil {
		return "", fmt.Errorf("compress: string length: %w", err)
	}
	if l > uint64(r.Len()) {
		return "", fmt.Errorf("compress: corrupt string length %d", l)
	}
	b := make([]byte, l)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("compress: string body: %w", err)
	}
	return string(b), nil
}

// RUNLENGTH: (value, run) pairs. Ideal for sorted low-cardinality columns.

func encodeRunLength(buf *bytes.Buffer, v *types.Vector) error {
	n := v.Len()
	for i := 0; i < n; {
		j := i + 1
		for j < n && sameAt(v, i, j) {
			j++
		}
		switch v.T {
		case types.Float64:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.Floats[i]))
			buf.Write(tmp[:])
		case types.String:
			writeUvarint(buf, uint64(len(v.Strs[i])))
			buf.WriteString(v.Strs[i])
		default:
			writeVarint(buf, v.Ints[i])
		}
		writeUvarint(buf, uint64(j-i))
		i = j
	}
	return nil
}

func sameAt(v *types.Vector, i, j int) bool {
	switch v.T {
	case types.Float64:
		return v.Floats[i] == v.Floats[j]
	case types.String:
		return v.Strs[i] == v.Strs[j]
	default:
		return v.Ints[i] == v.Ints[j]
	}
}

func decodeRunLength(r *bytes.Reader, v *types.Vector, n int) error {
	for v.Len() < n {
		var iv int64
		var fv float64
		var sv string
		var err error
		switch v.T {
		case types.Float64:
			var tmp [8]byte
			if _, err = io.ReadFull(r, tmp[:]); err != nil {
				return fmt.Errorf("compress: rle float: %w", err)
			}
			fv = math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))
		case types.String:
			if sv, err = readString(r); err != nil {
				return err
			}
		default:
			if iv, err = binary.ReadVarint(r); err != nil {
				return fmt.Errorf("compress: rle int: %w", err)
			}
		}
		run, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("compress: rle run: %w", err)
		}
		if run == 0 || v.Len()+int(run) > n {
			return fmt.Errorf("compress: corrupt rle run %d", run)
		}
		for k := uint64(0); k < run; k++ {
			switch v.T {
			case types.Float64:
				v.Floats = append(v.Floats, fv)
			case types.String:
				v.Strs = append(v.Strs, sv)
			default:
				v.Ints = append(v.Ints, iv)
			}
		}
	}
	return nil
}

// DELTA: first value then zigzag-varint deltas. Ideal for sorted or
// timestamp-like integer columns.

func encodeDelta(buf *bytes.Buffer, v *types.Vector) error {
	prev := int64(0)
	for i, x := range v.Ints {
		if i == 0 {
			writeVarint(buf, x)
		} else {
			writeVarint(buf, x-prev)
		}
		prev = x
	}
	return nil
}

func decodeDelta(r *bytes.Reader, v *types.Vector, n int) error {
	prev := int64(0)
	for i := 0; i < n; i++ {
		d, err := binary.ReadVarint(r)
		if err != nil {
			return fmt.Errorf("compress: delta: %w", err)
		}
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		v.Ints = append(v.Ints, prev)
	}
	return nil
}

// MOSTLY8/16/32: narrow fixed-width payload with an exception list for
// values outside the narrow range. Ideal for columns declared BIGINT that
// mostly hold small values.

func mostlyFits(x int64, width int) bool {
	switch width {
	case 1:
		return x >= math.MinInt8 && x <= math.MaxInt8
	case 2:
		return x >= math.MinInt16 && x <= math.MaxInt16
	default:
		return x >= math.MinInt32 && x <= math.MaxInt32
	}
}

func encodeMostly(buf *bytes.Buffer, v *types.Vector, width int) error {
	type exception struct {
		pos int
		val int64
	}
	var exceptions []exception
	for i, x := range v.Ints {
		if !mostlyFits(x, width) {
			exceptions = append(exceptions, exception{i, x})
		}
	}
	writeUvarint(buf, uint64(len(exceptions)))
	for _, e := range exceptions {
		writeUvarint(buf, uint64(e.pos))
		writeVarint(buf, e.val)
	}
	var tmp [4]byte
	for _, x := range v.Ints {
		if !mostlyFits(x, width) {
			x = 0 // placeholder; real value is in the exception list
		}
		switch width {
		case 1:
			buf.WriteByte(byte(int8(x)))
		case 2:
			binary.LittleEndian.PutUint16(tmp[:2], uint16(int16(x)))
			buf.Write(tmp[:2])
		default:
			binary.LittleEndian.PutUint32(tmp[:4], uint32(int32(x)))
			buf.Write(tmp[:4])
		}
	}
	return nil
}

func decodeMostly(r *bytes.Reader, v *types.Vector, n, width int) error {
	nExc, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("compress: mostly exceptions: %w", err)
	}
	exc := make(map[int]int64, nExc)
	for i := uint64(0); i < nExc; i++ {
		pos, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("compress: mostly exception pos: %w", err)
		}
		val, err := binary.ReadVarint(r)
		if err != nil {
			return fmt.Errorf("compress: mostly exception val: %w", err)
		}
		exc[int(pos)] = val
	}
	var tmp [4]byte
	for i := 0; i < n; i++ {
		var x int64
		switch width {
		case 1:
			b, err := r.ReadByte()
			if err != nil {
				return fmt.Errorf("compress: mostly8: %w", err)
			}
			x = int64(int8(b))
		case 2:
			if _, err := io.ReadFull(r, tmp[:2]); err != nil {
				return fmt.Errorf("compress: mostly16: %w", err)
			}
			x = int64(int16(binary.LittleEndian.Uint16(tmp[:2])))
		default:
			if _, err := io.ReadFull(r, tmp[:4]); err != nil {
				return fmt.Errorf("compress: mostly32: %w", err)
			}
			x = int64(int32(binary.LittleEndian.Uint32(tmp[:4])))
		}
		if ev, ok := exc[i]; ok {
			x = ev
		}
		v.Ints = append(v.Ints, x)
	}
	return nil
}

// BYTEDICT: per-block dictionary of up to 256 distinct values with one-byte
// indexes. Ideal for low-cardinality columns of any type.

// ErrDictOverflow reports that a block has too many distinct values for
// BYTEDICT; the automatic chooser treats it as "not applicable here".
var ErrDictOverflow = fmt.Errorf("compress: more than 256 distinct values in block")

func encodeByteDict(buf *bytes.Buffer, v *types.Vector) error {
	n := v.Len()
	dict := types.NewVector(v.T, 16)
	index := make([]byte, 0, n)

	find := func(i int) (int, bool) {
		for d := 0; d < dict.Len(); d++ {
			if sameValue(v, i, dict, d) {
				return d, true
			}
		}
		return 0, false
	}
	for i := 0; i < n; i++ {
		d, ok := find(i)
		if !ok {
			if dict.Len() == 256 {
				return ErrDictOverflow
			}
			d = dict.Len()
			dict.Append(v.Get(i).WithoutNull())
		}
		index = append(index, byte(d))
	}
	writeUvarint(buf, uint64(dict.Len()))
	if err := encodeRaw(buf, dict); err != nil {
		return err
	}
	buf.Write(index)
	return nil
}

func sameValue(a *types.Vector, i int, b *types.Vector, j int) bool {
	switch a.T {
	case types.Float64:
		return a.Floats[i] == b.Floats[j]
	case types.String:
		return a.Strs[i] == b.Strs[j]
	default:
		return a.Ints[i] == b.Ints[j]
	}
}

func decodeByteDict(r *bytes.Reader, v *types.Vector, n int) error {
	dn, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("compress: bytedict size: %w", err)
	}
	if dn > 256 {
		return fmt.Errorf("compress: corrupt bytedict size %d", dn)
	}
	dict := types.NewVector(v.T, int(dn))
	if err := decodeRaw(r, dict, int(dn)); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return fmt.Errorf("compress: bytedict index: %w", err)
		}
		if int(b) >= dict.Len() {
			return fmt.Errorf("compress: bytedict index %d out of range", b)
		}
		switch v.T {
		case types.Float64:
			v.Floats = append(v.Floats, dict.Floats[b])
		case types.String:
			v.Strs = append(v.Strs, dict.Strs[b])
		default:
			v.Ints = append(v.Ints, dict.Ints[b])
		}
	}
	return nil
}

// TEXT: unbounded string dictionary with varint indexes (generalizes
// Redshift's TEXT255/TEXT32K).

func encodeText(buf *bytes.Buffer, v *types.Vector) error {
	dict := make(map[string]int)
	var words []string
	idx := make([]int, v.Len())
	for i, s := range v.Strs {
		d, ok := dict[s]
		if !ok {
			d = len(words)
			dict[s] = d
			words = append(words, s)
		}
		idx[i] = d
	}
	writeUvarint(buf, uint64(len(words)))
	for _, w := range words {
		writeUvarint(buf, uint64(len(w)))
		buf.WriteString(w)
	}
	for _, d := range idx {
		writeUvarint(buf, uint64(d))
	}
	return nil
}

func decodeText(r *bytes.Reader, v *types.Vector, n int) error {
	wn, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("compress: text dict size: %w", err)
	}
	if wn > uint64(r.Len()) {
		return fmt.Errorf("compress: corrupt text dict size %d", wn)
	}
	words := make([]string, wn)
	for i := range words {
		if words[i], err = readString(r); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("compress: text index: %w", err)
		}
		if d >= wn {
			return fmt.Errorf("compress: text index %d out of range", d)
		}
		v.Strs = append(v.Strs, words[d])
	}
	return nil
}

// LZ: DEFLATE over the RAW payload — the heavyweight general-purpose codec,
// standing in for LZO.

func encodeLZ(buf *bytes.Buffer, v *types.Vector) error {
	var raw bytes.Buffer
	if err := encodeRaw(&raw, v); err != nil {
		return err
	}
	w, err := flate.NewWriter(buf, flate.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return err
	}
	return w.Close()
}

func decodeLZ(r *bytes.Reader, v *types.Vector, n int) error {
	fr := flate.NewReader(r)
	defer fr.Close()
	raw, err := io.ReadAll(fr)
	if err != nil {
		return fmt.Errorf("compress: lz: %w", err)
	}
	return decodeRaw(bytes.NewReader(raw), v, n)
}
