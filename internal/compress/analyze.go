package compress

import (
	"sort"

	"redshift/internal/types"
)

// Result is one row of an ANALYZE COMPRESSION report: how one encoding
// performed on a sample of a column.
type Result struct {
	Encoding Encoding
	// Bytes is the encoded size of the sample; zero when the encoding
	// could not represent the sample (e.g. BYTEDICT overflow).
	Bytes int
	// Ratio is raw size divided by encoded size (higher is better).
	Ratio float64
	// Applicable reports whether the encoding could represent the sample.
	Applicable bool
}

// lzPenalty is how much smaller (multiplicatively) the heavyweight LZ codec
// must be than the best lightweight codec before the chooser prefers it,
// charging for its decode CPU cost. §2.1 stresses sequential-scan speed;
// a lightweight codec that scans faster wins near-ties.
const lzPenalty = 1.25

// Analyze encodes the sample under every applicable encoding and reports
// the sizes, largest ratio first. It implements ANALYZE COMPRESSION and is
// the engine behind automatic selection during COPY (§2.1: "By default,
// compression scheme ... updated with load").
func Analyze(sample *types.Vector) []Result {
	rawSize := encodedSize(Raw, sample)
	var out []Result
	for e := Encoding(0); e < numEncodings; e++ {
		if !Applicable(e, sample.T) {
			continue
		}
		size := encodedSize(e, sample)
		res := Result{Encoding: e, Bytes: size, Applicable: size > 0}
		if size > 0 && rawSize > 0 {
			res.Ratio = float64(rawSize) / float64(size)
		}
		out = append(out, res)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Applicable != out[j].Applicable {
			return out[i].Applicable
		}
		return out[i].Bytes < out[j].Bytes
	})
	return out
}

// encodedSize returns the encoded byte count, or 0 when not encodable.
func encodedSize(e Encoding, v *types.Vector) int {
	b, err := Encode(e, v)
	if err != nil {
		return 0
	}
	return len(b)
}

// Choose picks the encoding COPY applies to a column, given a sample of its
// data: the smallest lightweight encoding, unless LZ beats it by more than
// lzPenalty. An empty sample chooses Raw.
func Choose(sample *types.Vector) Encoding {
	if sample.Len() == 0 {
		return Raw
	}
	results := Analyze(sample)
	bestLight, bestLZ := -1, -1
	for i, r := range results {
		if !r.Applicable {
			continue
		}
		if r.Encoding == LZ {
			if bestLZ < 0 {
				bestLZ = i
			}
		} else if bestLight < 0 {
			bestLight = i
		}
	}
	switch {
	case bestLight < 0 && bestLZ < 0:
		return Raw
	case bestLight < 0:
		return LZ
	case bestLZ < 0:
		return results[bestLight].Encoding
	}
	if float64(results[bestLZ].Bytes)*lzPenalty < float64(results[bestLight].Bytes) {
		return LZ
	}
	return results[bestLight].Encoding
}

// Sample extracts at most max values as a handful of contiguous runs
// spread across the vector. Contiguity matters: a strided sample destroys
// the local structure (sortedness, runs) that DELTA and RUNLENGTH exploit
// and would bias the chooser toward general-purpose codecs.
func Sample(v *types.Vector, max int) *types.Vector {
	n := v.Len()
	if n <= max {
		return v
	}
	const chunks = 8
	chunkLen := max / chunks
	out := types.NewVector(v.T, max)
	for c := 0; c < chunks; c++ {
		start := c * (n - chunkLen) / (chunks - 1)
		for i := start; i < start+chunkLen && i < n && out.Len() < max; i++ {
			out.Append(v.Get(i))
		}
	}
	return out
}
