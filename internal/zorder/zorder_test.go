package zorder

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"redshift/internal/types"
)

func mustCurve(t *testing.T, dims int) Curve {
	t.Helper()
	c, err := NewCurve(dims)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(0); err == nil {
		t.Error("NewCurve(0) should fail")
	}
	if _, err := NewCurve(9); err == nil {
		t.Error("NewCurve(9) should fail")
	}
	c := mustCurve(t, 2)
	if c.Bits() != 16 || c.Dims() != 2 {
		t.Errorf("2-dim curve: bits=%d dims=%d", c.Bits(), c.Dims())
	}
	c8 := mustCurve(t, 8)
	if c8.Bits() != 8 {
		t.Errorf("8-dim curve bits=%d, want 8", c8.Bits())
	}
}

func TestEncodeDecodeKnownValues(t *testing.T) {
	c := mustCurve(t, 2)
	// Classic 2-d Morton: (x=1, y=0) and (x=0, y=1) differ in the two
	// lowest interleaved bits; dim 0 gets the higher of the pair.
	z10 := c.Encode([]uint64{1, 0})
	z01 := c.Encode([]uint64{0, 1})
	if z10 != 2 || z01 != 1 {
		t.Errorf("Encode(1,0)=%d Encode(0,1)=%d, want 2,1", z10, z01)
	}
	if c.Encode([]uint64{0, 0}) != 0 {
		t.Error("Encode(0,0) != 0")
	}
	maxZ := c.Encode([]uint64{c.MaxCoord(), c.MaxCoord()})
	if maxZ != 1<<32-1 {
		t.Errorf("Encode(max,max) = %d", maxZ)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for dims := 1; dims <= MaxDims; dims++ {
		c := mustCurve(t, dims)
		rng := rand.New(rand.NewSource(int64(dims)))
		for trial := 0; trial < 200; trial++ {
			coords := make([]uint64, dims)
			for d := range coords {
				coords[d] = rng.Uint64() & c.MaxCoord()
			}
			got := c.Decode(c.Encode(coords))
			for d := range coords {
				if got[d] != coords[d] {
					t.Fatalf("dims=%d coords=%v decoded=%v", dims, coords, got)
				}
			}
		}
	}
}

func TestEncodeClampsOversizedCoords(t *testing.T) {
	c := mustCurve(t, 4)
	z := c.Encode([]uint64{1 << 60, 0, 0, 0})
	want := c.Encode([]uint64{c.MaxCoord(), 0, 0, 0})
	if z != want {
		t.Errorf("oversized coord not clamped: %d vs %d", z, want)
	}
}

func TestEncodeDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	mustCurve(t, 2).Encode([]uint64{1})
}

func TestRangesExactSmallBox(t *testing.T) {
	c := mustCurve(t, 2)
	lo := []uint64{2, 3}
	hi := []uint64{5, 6}
	ranges := Ranges2DCheck(t, c, lo, hi, 64)
	_ = ranges
}

// Ranges2DCheck verifies coverage soundness: every point inside the box has
// its z-value in some range, and (when the budget is generous) points far
// outside are not covered gratuitously.
func Ranges2DCheck(t *testing.T, c Curve, lo, hi []uint64, budget int) []Range {
	t.Helper()
	ranges := c.Ranges(lo, hi, budget)
	if len(ranges) > budget {
		t.Fatalf("got %d ranges, budget %d", len(ranges), budget)
	}
	inRanges := func(z uint64) bool {
		for _, r := range ranges {
			if r.Contains(z) {
				return true
			}
		}
		return false
	}
	// Check all points for small boxes, a dense random sample for large.
	area := (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1)
	if area <= 1<<14 {
		for x := lo[0]; x <= hi[0]; x++ {
			for y := lo[1]; y <= hi[1]; y++ {
				if !inRanges(c.Encode([]uint64{x, y})) {
					t.Fatalf("point (%d,%d) in box not covered", x, y)
				}
			}
		}
	} else {
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 20000; i++ {
			x := lo[0] + uint64(rng.Int63n(int64(hi[0]-lo[0]+1)))
			y := lo[1] + uint64(rng.Int63n(int64(hi[1]-lo[1]+1)))
			if !inRanges(c.Encode([]uint64{x, y})) {
				t.Fatalf("point (%d,%d) in box not covered", x, y)
			}
		}
	}
	// Ranges must be sorted and non-overlapping.
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo <= ranges[i-1].Hi {
			t.Fatalf("ranges overlap or unsorted: %v", ranges)
		}
	}
	return ranges
}

func TestRangesBudgetOverApproximates(t *testing.T) {
	c := mustCurve(t, 2)
	lo := []uint64{100, 200}
	hi := []uint64{5000, 7000}
	for _, budget := range []int{1, 2, 4, 16} {
		Ranges2DCheck(t, c, lo, hi, budget)
	}
}

func TestRangesEmptyBox(t *testing.T) {
	c := mustCurve(t, 2)
	if rs := c.Ranges([]uint64{5, 5}, []uint64{4, 9}, 16); rs != nil {
		t.Errorf("inverted box should produce nil, got %v", rs)
	}
}

func TestRangesSinglePoint(t *testing.T) {
	c := mustCurve(t, 3)
	pt := []uint64{7, 11, 13}
	rs := c.Ranges(pt, pt, 16)
	if len(rs) != 1 {
		t.Fatalf("single point → %v", rs)
	}
	z := c.Encode(pt)
	if rs[0].Lo != z || rs[0].Hi != z {
		t.Errorf("range %v, want [%d,%d]", rs[0], z, z)
	}
}

func TestRangesFullDomainIsOneRange(t *testing.T) {
	c := mustCurve(t, 2)
	rs := c.Ranges([]uint64{0, 0}, []uint64{c.MaxCoord(), c.MaxCoord()}, 4)
	if len(rs) != 1 || rs[0].Lo != 0 || rs[0].Hi != 1<<32-1 {
		t.Errorf("full domain → %v", rs)
	}
}

func TestRangesPropertyCoverage(t *testing.T) {
	c := mustCurve(t, 2)
	f := func(ax, ay, bx, by uint16, seed int64) bool {
		lo := []uint64{uint64(min16(ax, bx)), uint64(min16(ay, by))}
		hi := []uint64{uint64(max16(ax, bx)), uint64(max16(ay, by))}
		ranges := c.Ranges(lo, hi, 32)
		// Sample random points inside the box; all must be covered.
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			x := lo[0] + uint64(rng.Int63n(int64(hi[0]-lo[0]+1)))
			y := lo[1] + uint64(rng.Int63n(int64(hi[1]-lo[1]+1)))
			z := c.Encode([]uint64{x, y})
			covered := false
			for _, r := range ranges {
				if r.Contains(z) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}
func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}

func TestNormalizerIntMonotone(t *testing.T) {
	n := NewNormalizer(types.Int64, types.NewInt(-1000), types.NewInt(1000))
	f := func(a, b int16) bool {
		ra := n.Rank(types.NewInt(int64(a)), 16)
		rb := n.Rank(types.NewInt(int64(b)), 16)
		if a <= b {
			return ra <= rb
		}
		return ra >= rb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizerIntExtremeRange(t *testing.T) {
	n := NewNormalizer(types.Int64, types.NewInt(-1<<62), types.NewInt(1<<62))
	vals := []int64{-1 << 62, -12345, 0, 98765, 1 << 62}
	prev := uint64(0)
	for i, x := range vals {
		r := n.Rank(types.NewInt(x), 16)
		if i > 0 && r < prev {
			t.Errorf("rank not monotone at %d: %d < %d", x, r, prev)
		}
		prev = r
	}
	if n.Rank(types.NewInt(-1<<62), 16) != 0 {
		t.Error("min should rank 0")
	}
	if n.Rank(types.NewInt(1<<62), 16) != 1<<16-1 {
		t.Error("max should rank to top")
	}
}

func TestNormalizerFloatMonotone(t *testing.T) {
	n := NewNormalizer(types.Float64, types.NewFloat(-1e6), types.NewFloat(1e6))
	f := func(a, b float32) bool {
		ra := n.Rank(types.NewFloat(float64(a)), 16)
		rb := n.Rank(types.NewFloat(float64(b)), 16)
		if float64(a) <= float64(b) {
			return ra <= rb
		}
		return ra >= rb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizerStringMonotone(t *testing.T) {
	n := NewNormalizer(types.String, types.Value{}, types.Value{})
	f := func(a, b string) bool {
		ra := n.Rank(types.NewString(a), 16)
		rb := n.Rank(types.NewString(b), 16)
		if a <= b {
			return ra <= rb
		}
		return ra >= rb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizerNullRanksLowest(t *testing.T) {
	n := NewNormalizer(types.Int64, types.NewInt(0), types.NewInt(100))
	if n.Rank(types.NewNull(types.Int64), 16) != 0 {
		t.Error("NULL should rank 0")
	}
}

func TestNormalizerDegenerateRange(t *testing.T) {
	n := NewNormalizer(types.Int64, types.NewInt(7), types.NewInt(7))
	if got := n.Rank(types.NewInt(7), 16); got != 0 {
		t.Errorf("degenerate range rank = %d", got)
	}
}

func TestKeyClustersBothDimensions(t *testing.T) {
	// The heart of the §3.3 claim: sort 64x64 grid points by z-key, cut the
	// sorted sequence into blocks, and verify that a predicate on either
	// dimension alone prunes most blocks via min/max.
	c := mustCurve(t, 2)
	norms := []Normalizer{
		NewNormalizer(types.Int64, types.NewInt(0), types.NewInt(63)),
		NewNormalizer(types.Int64, types.NewInt(0), types.NewInt(63)),
	}
	type pt struct {
		x, y int64
		z    uint64
	}
	var pts []pt
	for x := int64(0); x < 64; x++ {
		for y := int64(0); y < 64; y++ {
			z := c.Key(norms, []types.Value{types.NewInt(x), types.NewInt(y)})
			pts = append(pts, pt{x, y, z})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].z < pts[j].z })

	const blockSize = 256 // 16 blocks over 4096 points
	survivors := func(sel func(pt) bool) int {
		n := 0
		for b := 0; b < len(pts); b += blockSize {
			blk := pts[b : b+blockSize]
			hit := false
			for _, p := range blk {
				if sel(p) {
					hit = true
					break
				}
			}
			if hit {
				n++
			}
		}
		return n
	}
	totalBlocks := len(pts) / blockSize
	onX := survivors(func(p pt) bool { return p.x >= 10 && p.x <= 13 })
	onY := survivors(func(p pt) bool { return p.y >= 10 && p.y <= 13 })
	if onX > totalBlocks/2 {
		t.Errorf("x predicate keeps %d/%d blocks; z-order should prune", onX, totalBlocks)
	}
	if onY > totalBlocks/2 {
		t.Errorf("y predicate keeps %d/%d blocks; z-order should prune (non-leading column!)", onY, totalBlocks)
	}
}
