// Package zorder implements the multidimensional z-curve (Morton order) the
// paper favors over indexes and projections (§1 design goal 5, §3.3): rows
// sorted by interleaved sort key cluster in every key dimension at once, so
// per-column zone maps stay selective for predicates on any key column — not
// only the leading one — and degrade gracefully "with excess participation".
//
// The package provides the curve itself (encode/decode), order-preserving
// normalizers from SQL values to fixed-width ranks, and decomposition of a
// multidimensional box query into a small set of covering z-ranges
// (Orenstein-Merrett [7]).
package zorder

import (
	"fmt"
	"math"

	"redshift/internal/types"
)

// MaxDims is the largest supported number of interleaved dimensions,
// matching Redshift's limit of eight columns in an INTERLEAVED SORTKEY.
const MaxDims = 8

// Curve interleaves dims coordinates of bits bits each into a single
// z-value. Higher-order bits alternate across dimensions, dimension 0 first.
type Curve struct {
	dims int
	bits uint
}

// NewCurve returns a curve over dims dimensions. Each dimension receives
// min(16, 64/dims) bits so every z-value fits in a uint64.
func NewCurve(dims int) (Curve, error) {
	if dims < 1 || dims > MaxDims {
		return Curve{}, fmt.Errorf("zorder: dims must be in [1,%d], got %d", MaxDims, dims)
	}
	bits := uint(64 / dims)
	if bits > 16 {
		bits = 16
	}
	return Curve{dims: dims, bits: bits}, nil
}

// Dims returns the number of dimensions.
func (c Curve) Dims() int { return c.dims }

// Bits returns the number of bits per dimension.
func (c Curve) Bits() uint { return c.bits }

// MaxCoord returns the largest representable coordinate.
func (c Curve) MaxCoord() uint64 { return (1 << c.bits) - 1 }

// Encode interleaves the coordinates into a z-value. Coordinates above
// MaxCoord are clamped. len(coords) must equal Dims.
func (c Curve) Encode(coords []uint64) uint64 {
	if len(coords) != c.dims {
		panic(fmt.Sprintf("zorder: encode got %d coords, curve has %d dims", len(coords), c.dims))
	}
	max := c.MaxCoord()
	var z uint64
	for b := int(c.bits) - 1; b >= 0; b-- {
		for d := 0; d < c.dims; d++ {
			x := coords[d]
			if x > max {
				x = max
			}
			z = z<<1 | (x>>uint(b))&1
		}
	}
	return z
}

// Decode splits a z-value back into its coordinates.
func (c Curve) Decode(z uint64) []uint64 {
	coords := make([]uint64, c.dims)
	total := int(c.bits) * c.dims
	for i := 0; i < total; i++ {
		// Bit i (from the top) of z belongs to dimension i % dims.
		bit := (z >> uint(total-1-i)) & 1
		d := i % c.dims
		coords[d] = coords[d]<<1 | bit
	}
	return coords
}

// Range is an inclusive z-value interval.
type Range struct {
	Lo, Hi uint64
}

// Contains reports whether z lies in the range.
func (r Range) Contains(z uint64) bool { return z >= r.Lo && z <= r.Hi }

// Ranges decomposes the axis-aligned box [lo[d], hi[d]] (inclusive on both
// ends, one entry per dimension) into at most maxRanges z-ranges that
// together cover every point in the box. When the exact decomposition would
// exceed maxRanges, subtrees are over-approximated by their full z-interval,
// so the result may cover extra points but never misses one — the safe
// direction for block pruning.
func (c Curve) Ranges(lo, hi []uint64, maxRanges int) []Range {
	if len(lo) != c.dims || len(hi) != c.dims {
		panic("zorder: box dimensionality mismatch")
	}
	if maxRanges < 1 {
		maxRanges = 1
	}
	clamped := func(xs []uint64) []uint64 {
		out := make([]uint64, len(xs))
		for i, x := range xs {
			if x > c.MaxCoord() {
				x = c.MaxCoord()
			}
			out[i] = x
		}
		return out
	}
	lo, hi = clamped(lo), clamped(hi)
	for d := 0; d < c.dims; d++ {
		if lo[d] > hi[d] {
			return nil
		}
	}

	d := &decomposer{c: c, lo: lo, hi: hi, budget: maxRanges}
	d.visit(0, 0)
	return mergeRanges(d.out)
}

// decomposer walks the z-order quadtree. A node at level L covers the
// hypercube whose coordinates share the top L bits encoded in prefix.
type decomposer struct {
	c      Curve
	lo, hi []uint64
	out    []Range
	budget int
}

// visit examines the node with the given z-prefix at the given level
// (level = number of bits consumed per dimension).
func (d *decomposer) visit(prefix uint64, level uint) {
	c := d.c
	rem := c.bits - level
	span := uint64(1)<<(uint(c.dims)*rem) - 1
	zLo := prefix << (uint(c.dims) * rem)
	zHi := zLo + span

	// Node hypercube bounds per dimension.
	inside, disjoint := true, false
	coords := c.Decode(zLo)
	for dim := 0; dim < c.dims; dim++ {
		cellLo := coords[dim]
		cellHi := cellLo + (1 << rem) - 1
		if cellLo > d.hi[dim] || cellHi < d.lo[dim] {
			disjoint = true
			break
		}
		if cellLo < d.lo[dim] || cellHi > d.hi[dim] {
			inside = false
		}
	}
	switch {
	case disjoint:
		return
	case inside || rem == 0:
		d.emit(zLo, zHi)
		return
	case len(d.out) >= d.budget:
		// Budget exhausted: over-approximate with the whole subtree.
		d.emit(zLo, zHi)
		return
	}
	for child := uint64(0); child < 1<<uint(c.dims); child++ {
		d.visit(prefix<<uint(c.dims)|child, level+1)
	}
}

// emit records a covering range. The DFS yields ranges in ascending z
// order, so when the budget is full the range is folded into the last one,
// keeping the output within budget while preserving full coverage.
func (d *decomposer) emit(zLo, zHi uint64) {
	if len(d.out) >= d.budget {
		if zHi > d.out[len(d.out)-1].Hi {
			d.out[len(d.out)-1].Hi = zHi
		}
		return
	}
	d.out = append(d.out, Range{zLo, zHi})
}

// mergeRanges sorts (input is already in ascending z order from the
// depth-first walk) and coalesces adjacent or overlapping ranges.
func mergeRanges(rs []Range) []Range {
	if len(rs) == 0 {
		return rs
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 && last.Hi != math.MaxUint64 || r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// Normalizer maps SQL values of one column to order-preserving unsigned
// ranks for use as curve coordinates. Ranks are monotone in the SQL order:
// a ≤ b implies Rank(a) ≤ Rank(b). NULL ranks lowest, matching Compare.
type Normalizer struct {
	T types.Type
	// MinI/MaxI bound observed integer-kind values (from table statistics);
	// values outside are clamped.
	MinI, MaxI int64
	// MinF/MaxF bound observed float values.
	MinF, MaxF float64
}

// NewNormalizer builds a normalizer for a column with the observed bounds.
// String columns need no bounds (the rank uses the first 8 bytes).
func NewNormalizer(t types.Type, min, max types.Value) Normalizer {
	n := Normalizer{T: t}
	switch t {
	case types.Float64:
		n.MinF, n.MaxF = min.F, max.F
	case types.String:
	default:
		n.MinI, n.MaxI = min.I, max.I
	}
	return n
}

// Rank maps v to a coordinate in [0, 2^bits).
func (n Normalizer) Rank(v types.Value, bits uint) uint64 {
	if v.Null {
		return 0
	}
	max := uint64(1)<<bits - 1
	switch n.T {
	case types.String:
		var u uint64
		for i := 0; i < 8; i++ {
			u <<= 8
			if i < len(v.S) {
				u |= uint64(v.S[i])
			}
		}
		return u >> (64 - bits)
	case types.Float64:
		lo, hi := floatBitsOrdered(n.MinF), floatBitsOrdered(n.MaxF)
		return scaleRank(floatBitsOrdered(v.F), lo, hi, max)
	default:
		return scaleRank(intBitsOrdered(v.I), intBitsOrdered(n.MinI), intBitsOrdered(n.MaxI), max)
	}
}

// intBitsOrdered maps int64 to uint64 preserving order.
func intBitsOrdered(x int64) uint64 { return uint64(x) ^ (1 << 63) }

// floatBitsOrdered maps float64 to uint64 preserving IEEE-754 total order
// for finite values.
func floatBitsOrdered(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

// scaleRank linearly scales x from [lo, hi] into [0, max], clamping.
func scaleRank(x, lo, hi, max uint64) uint64 {
	if x <= lo {
		return 0
	}
	if x >= hi {
		return max
	}
	span := hi - lo
	if span == 0 {
		return 0
	}
	// Use big-float arithmetic to avoid overflow on 64-bit spans.
	frac := float64(x-lo) / float64(span)
	r := uint64(frac * float64(max))
	if r > max {
		r = max
	}
	return r
}

// Key computes the z-value for one row's sort-key values using the given
// normalizers (one per dimension, aligned with the curve).
func (c Curve) Key(norms []Normalizer, vals []types.Value) uint64 {
	coords := make([]uint64, c.dims)
	for d := 0; d < c.dims; d++ {
		coords[d] = norms[d].Rank(vals[d], c.bits)
	}
	return c.Encode(coords)
}
