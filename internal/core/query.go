package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"redshift/internal/catalog"
	"redshift/internal/cluster"
	"redshift/internal/exec"
	"redshift/internal/faults"
	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/telemetry"
	"redshift/internal/types"
)

// exchangeBuf is the per-(src,dst) slack of an exchange, in batches. Small
// on purpose: it is what bounds a query's in-flight memory to
// O(slices × pipeline depth) instead of O(intermediate result size).
const exchangeBuf = 2

// runSelect executes a SELECT: plan at the leader, per-slice parallel
// execution with strategy-appropriate data movement, final merge at the
// leader (§2.1's query processing flow).
func (db *Database) runSelect(ctx context.Context, sess *Session, s *sql.Select) (*Result, error) {
	if s.From == nil {
		return db.runLeaderSelect(s)
	}
	if isSystemTable(s.From.Table) {
		return db.runSystemSelect(ctx, s)
	}
	res, _, err := db.runSelectTraced(ctx, sess, s)
	return res, err
}

// classifyQueryErr folds a run error into its stl_query terminal state and
// a user-facing error. A context error is rewritten so the user sees why
// the query died ("cancelled on user request" / "statement timeout"), not
// a bare context.Canceled.
func classifyQueryErr(ctx context.Context, qid int64, err error) (string, error) {
	switch {
	case err == nil:
		return "success", nil
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout", fmt.Errorf("core: query %d aborted: statement timeout", qid)
	case errors.Is(err, context.Canceled):
		cause := context.Cause(ctx)
		if cause == nil || errors.Is(cause, context.Canceled) {
			cause = errors.New("context cancelled")
		}
		if errors.Is(cause, context.DeadlineExceeded) {
			return "timeout", fmt.Errorf("core: query %d aborted: statement timeout", qid)
		}
		return "cancelled", fmt.Errorf("core: query %d aborted: %v", qid, cause)
	default:
		return "error", err
	}
}

// runSelectTraced executes a data-plane SELECT through the staged
// lifecycle — normalize, result-cache lookup, bind/plan (cached), execute,
// result-cache store — and returns the result with its span tree (nil on a
// cache hit: nothing executed). Every run — including failed, cancelled
// and cache-served ones — is appended to the query log and counted in the
// metrics registry.
func (db *Database) runSelectTraced(ctx context.Context, sess *Session, s *sql.Select) (*Result, *telemetry.Span, error) {
	start := time.Now()
	// Stage 2: normalize. Rendering the AST canonicalizes whitespace,
	// comments, keyword case and redundant parens; the result is the
	// stl_query text and the key both caches share.
	norm := sql.Normalize(s)

	// Result-cache lookup runs before the timeout clock, the WLM queue and
	// the planner: a hit holds no slot, reads no blocks, runs no operator.
	cacheable := db.resultCacheable(sess, s)
	if cacheable {
		if res, ok := db.resultLookup(norm); ok {
			qid, _, cancel := db.registerQuery(ctx, norm)
			cancel(nil)
			db.unregisterQuery(qid)
			db.recordQuery(qid, norm, start, "", 0, 0, 0, res, nil, nil, "success", 0, 0)
			return res, nil, nil
		}
	}

	if d := sess.StatementTimeout(); d > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, d)
		defer cancelT()
	}
	qid, ctx, cancel := db.registerQuery(ctx, norm)
	defer cancel(nil)
	defer db.unregisterQuery(qid)

	// Stage 3: bind/plan, through the shared plan cache. Planning happens
	// BEFORE WLM admission — it is leader-side work that holds no slot, and
	// the plan's cost estimate is what routes short queries into the
	// fast-lane queue.
	trace := telemetry.StartSpan("query")
	planSpan := trace.StartChild("plan")
	planStart := time.Now()
	p, _, err := db.planFor(s, norm)
	planTime := time.Since(planStart)
	planSpan.End()
	if err != nil {
		trace.End()
		db.recordQuery(qid, norm, start, "", 0, planTime, 0, nil, trace, err, "error", 0, 0)
		return nil, trace, err
	}

	// WLM admission: the fast lane claims queries whose cost estimate is
	// under its threshold; otherwise the session's query_group names the
	// queue, else the default queue.
	queue := db.wlm.Route(sess.QueryGroup(), p.EstCost)
	ticket, err := db.wlm.AcquireQueueCtx(ctx, queue)
	if err != nil {
		// The slot was never acquired: nothing to release.
		trace.End()
		state := "evicted"
		if !IsQueueTimeout(err) {
			state, err = classifyQueryErr(ctx, qid, err)
			if state == "timeout" {
				// The query never started executing, so resending it is
				// always safe — unlike a mid-execution statement timeout, an
				// admission timeout is retryable.
				err = faults.MarkRetryable(err)
			}
		}
		db.recordQuery(qid, norm, start, queue, 0, planTime, 0, nil, trace, err, state, 0, 0)
		return nil, trace, err
	}
	defer db.wlm.ReleaseTicket(ticket)
	queueWait := ticket.Wait

	// Pin the referenced tables' data versions BEFORE taking the txn
	// snapshot (writers bump AFTER publishing): anything published after
	// this point either misses the snapshot too, or bumps a version and
	// invalidates the entry we are about to store. Either way a future
	// version-matched hit can never be staler than re-executing.
	var verKey []tableVersion
	if cacheable {
		verKey = db.captureTableVersions(p)
	}

	// Memory governance: the query's grant comes from work_mem (session
	// override) or the admitting queue's per-slot budget; the tracker
	// charges blocking operators against it and the scratch dir receives
	// their spills. The deferred cleanup runs on EVERY exit — success,
	// error, cancel, timeout — so scratch files never outlive the query and
	// exec_mem_bytes returns to zero.
	grant := sess.memBudgetFor(ticket.Grant)
	mem := exec.NewMemTracker(grant, db.metrics.Gauge("exec_mem_bytes"))
	spillDir := exec.NewSpillDir(db.spillBase(), fmt.Sprintf("query-%d", qid))
	defer func() {
		mem.ReleaseAll()
		spillDir.Cleanup()
	}()
	db.attachQueryMem(qid, mem, spillDir, grant)

	q := &queryRun{
		db:       db,
		p:        p,
		mode:     db.cfg.Mode,
		snapshot: db.txm.CurrentXid(),
		scans:    &exec.ScanStats{},
		qid:      qid,
		reqDOP:   sess.maxParallel.Load(),
		trace:    trace,
		mem:      mem,
		spillDir: spillDir,
	}
	netBefore := db.cl.NetBytes()
	execStart := time.Now()
	final, err := q.execute(ctx)
	execTime := time.Since(execStart)
	trace.End()
	db.metrics.Counter("query_retries_total").Add(q.scans.Retries.Load())
	db.metrics.Counter("failover_reads_total").Add(q.scans.FailoverReads.Load())
	if err != nil {
		state, err := classifyQueryErr(ctx, qid, err)
		db.recordQuery(qid, norm, start, ticket.Queue, queueWait, planTime, execTime, nil, trace, err, state, mem.Peak(), spillDir.Bytes())
		return nil, trace, err
	}
	res := &Result{
		Schema: p.Schema(),
		Stats: ExecStats{
			BlocksRead:    q.scans.BlocksRead.Load(),
			BlocksSkipped: q.scans.BlocksSkipped.Load(),
			RowsScanned:   q.scans.RowsRead.Load(),
			NetBytes:      db.cl.NetBytes() - netBefore,
			PlanTime:      planTime,
			QueueWait:     queueWait,
			ExecTime:      execTime,
			Queue:         ticket.Queue,
		},
	}
	for i := 0; i < final.N; i++ {
		res.Rows = append(res.Rows, final.Row(i))
	}
	if cacheable {
		db.resultStore(norm, res, verKey)
	}
	db.recordQuery(qid, norm, start, ticket.Queue, queueWait, planTime, execTime, res, trace, nil, "success", mem.Peak(), spillDir.Bytes())
	return res, trace, nil
}

// recordQuery appends one finished SELECT to the query log and emits its
// counters into the registry. sqlText is the normalized statement; queue is
// the WLM queue that admitted (or evicted) it, "" for cache hits.
func (db *Database) recordQuery(qid int64, sqlText string, start time.Time, queue string, queueWait, planTime, execTime time.Duration, res *Result, trace *telemetry.Span, runErr error, state string, memPeak, spillBytes int64) {
	rec := telemetry.QueryRecord{
		ID:         qid,
		SQL:        sqlText,
		Start:      start,
		End:        time.Now(),
		Queue:      queue,
		QueueWait:  queueWait,
		PlanTime:   planTime,
		ExecTime:   execTime,
		State:      state,
		Trace:      trace,
		MemPeak:    memPeak,
		SpillBytes: spillBytes,
	}
	if res != nil {
		rec.Rows = int64(len(res.Rows))
		rec.BlocksRead = res.Stats.BlocksRead
		rec.BlocksSkipped = res.Stats.BlocksSkipped
		rec.RowsScanned = res.Stats.RowsScanned
		rec.NetBytes = res.Stats.NetBytes
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	db.qlog.Append(rec)

	m := db.metrics
	m.Counter("query_total").Inc()
	m.Gauge("exec_mem_peak").Set(memPeak)
	if spillBytes > 0 {
		m.Counter("spill_bytes_total").Add(spillBytes)
		m.Counter("spilled_queries_total").Inc()
	}
	if runErr != nil {
		switch state {
		case "cancelled":
			m.Counter("query_cancelled_total").Inc()
		case "timeout":
			m.Counter("query_timeout_total").Inc()
		case "evicted":
			m.Counter("query_evicted_total").Inc()
		default:
			m.Counter("query_errors_total").Inc()
		}
		return
	}
	m.Counter("query_blocks_read_total").Add(rec.BlocksRead)
	m.Counter("query_blocks_skipped_total").Add(rec.BlocksSkipped)
	m.Counter("query_rows_scanned_total").Add(rec.RowsScanned)
	m.Histogram("query_seconds").Observe(time.Since(start).Seconds())
	m.Histogram("query_plan_seconds").Observe(planTime.Seconds())
	m.Histogram("query_queue_seconds").Observe(queueWait.Seconds())

	cs := db.cache.Stats()
	m.Gauge("block_cache_hits").Set(cs.Hits)
	m.Gauge("block_cache_misses").Set(cs.Misses)
	m.Gauge("block_cache_evictions").Set(cs.Evictions)
	m.Gauge("block_cache_bytes").Set(cs.Bytes)
	m.Gauge("block_cache_budget_bytes").Set(cs.Budget)

	pcs := db.planCache.Stats()
	m.Gauge("plan_cache_hits").Set(pcs.Hits)
	m.Gauge("plan_cache_misses").Set(pcs.Misses)
	m.Gauge("plan_cache_evictions").Set(pcs.Evictions)
	m.Gauge("plan_cache_invalidations").Set(pcs.Invalidations)
	m.Gauge("plan_cache_entries").Set(pcs.Entries)
	rcs := db.resultCache.Stats()
	m.Gauge("result_cache_hits").Set(rcs.Hits)
	m.Gauge("result_cache_misses").Set(rcs.Misses)
	m.Gauge("result_cache_evictions").Set(rcs.Evictions)
	m.Gauge("result_cache_invalidations").Set(rcs.Invalidations)
	m.Gauge("result_cache_entries").Set(rcs.Entries)
	m.Gauge("result_cache_bytes").Set(rcs.Used)
}

// runLeaderSelect evaluates a FROM-less SELECT entirely at the leader —
// the connection-test queries every driver sends (SELECT 1).
func (db *Database) runLeaderSelect(s *sql.Select) (*Result, error) {
	if s.Distinct || len(s.GroupBy) > 0 || s.Having != nil || len(s.Joins) > 0 {
		return nil, fmt.Errorf("core: clauses other than the select list need a FROM table")
	}
	res := &Result{}
	var row types.Row
	for _, item := range s.Items {
		if item.Star {
			return nil, fmt.Errorf("core: SELECT * needs a FROM table")
		}
		bound, err := plan.BindScalar(item.Expr)
		if err != nil {
			return nil, err
		}
		v, err := exec.EvalRow(bound, nil)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = strings.ToLower(item.Expr.String())
		}
		res.Schema.Columns = append(res.Schema.Columns, types.Column{Name: name, Type: bound.Type()})
		row = append(row, v)
	}
	if s.Limit != 0 {
		res.Rows = []types.Row{row}
	}
	return res, nil
}

// queryRun carries one SELECT's execution state.
type queryRun struct {
	db       *Database
	p        *plan.Plan
	mode     exec.Mode
	snapshot int64
	scans    *exec.ScanStats
	// qid is the stl_query id (0 for system-table queries); reqDOP is the
	// session's SET max_parallel_workers override (-1 = automatic).
	qid    int64
	reqDOP int64
	// trace is the query's span tree root; nil disables tracing (all span
	// methods are nil-safe).
	trace *telemetry.Span
	// sys, when set, resolves scans from materialized in-memory rows: the
	// system-table path, which runs leader-only on one "slice".
	sys map[*catalog.TableDef][]types.Row

	// Execution state, built by execute(). stats/scanInsts/exBytes are
	// indexed/keyed by physical node ID.
	ph        *plan.Physical
	flight    *exec.FlightTracker
	stats     []*exec.OpStats
	scanInsts [][]scanInstance
	exs       map[int]*exec.Exchange
	exBytes   map[int]*atomic.Int64
	prods     []producer
	aggTables []*exec.GroupTable
	aggGroups []int64 // per-slice group counts, snapshotted before the merge
	// gatherBytes totals the bytes shipped to the leader (merge span attr).
	gatherBytes atomic.Int64

	// dop is the chosen intra-slice parallelism; par carries its live
	// counters (nil when dop==1). chainMu guards the lazily built
	// nodeMem/nodeSpill/scanInsts state, which parallel slices touch from
	// their own goroutines (the serial path builds chains on the driving
	// goroutine and never contends).
	dop     int
	par     *parallelStats
	chainMu sync.Mutex

	// Memory governance (nil for system-table queries, which run
	// leader-only over already-materialized rows).
	mem       *exec.MemTracker
	spillDir  *exec.SpillDir
	leaderAgg *exec.GroupTable
	nodeMem   map[int]*exec.MemTracker
	nodeSpill map[int]*exec.SpillStats
}

// memCtx hands an operator instance its memory context: a fresh child of
// the physical node's tracker (so EXPLAIN ANALYZE gets per-node peaks and
// each instance's Close releases only its own charges), plus the query
// scratch dir and the node's spill stats. chainMu makes the lazy per-node
// map init safe from parallel slice goroutines.
func (q *queryRun) memCtx(n *plan.PhysNode) *exec.MemContext {
	if q.mem == nil || n == nil {
		return nil
	}
	q.chainMu.Lock()
	defer q.chainMu.Unlock()
	if q.nodeMem == nil {
		q.nodeMem = map[int]*exec.MemTracker{}
		q.nodeSpill = map[int]*exec.SpillStats{}
	}
	nt, ok := q.nodeMem[n.ID]
	if !ok {
		nt = q.mem.Child()
		q.nodeMem[n.ID] = nt
		q.nodeSpill[n.ID] = &exec.SpillStats{}
	}
	return &exec.MemContext{T: nt.Child(), Dir: q.spillDir, Stats: q.nodeSpill[n.ID]}
}

// scanInstance is one slice's instantiation of a physical scan node; its
// counters fold into the query totals and stv_slice_stats after the run.
type scanInstance struct {
	// slice is the slice whose storage this instance read (for a replicated
	// build table, the node's home slice — every slice of the node reads the
	// same local copy, as the old executor did).
	slice int
	stats *exec.ScanStats
}

// producer is one deferred Exchange.Produce call: src's sub-chain routed
// into an exchange. Producers launch after every chain is built. When par
// is set the producer runs morsel-parallel (ParallelProduce) instead of
// driving a serial operator chain.
type producer struct {
	ex    *exec.Exchange
	src   int
	op    exec.Operator
	route exec.RouteFn
	par   *parallelScanSrc
}

// parallelScanSrc is a morsel-parallel scan producer: dop scanners
// sharing one ScanStats pull from a block queue, and the sends are
// re-sequenced into serial order.
type parallelScanSrc struct {
	node     *plan.PhysNode
	queue    *exec.MorselQueue
	scanners []*exec.Scanner
}

// numSlices returns the execution width: every slice for data-plane
// queries, a single leader slice for system-table queries.
func (q *queryRun) numSlices() int {
	if q.sys != nil {
		return 1
	}
	return q.db.cl.NumSlices()
}

// execute lowers the plan to its physical operator tree and runs it as a
// streaming dataflow: ONE goroutine per slice drives that slice's fused
// operator chain batch-at-a-time (plus one goroutine per exchange
// producer), so intermediate results are never materialized between stages
// — peak live batches are O(slices × pipeline depth), bounded by the
// exchange buffers and one outstanding batch per operator.
func (q *queryRun) execute(ctx context.Context) (*exec.Batch, error) {
	nslices := q.numSlices()
	q.ph = plan.BuildPhysical(q.p)
	q.stats = make([]*exec.OpStats, len(q.ph.Nodes))
	for i := range q.stats {
		q.stats[i] = &exec.OpStats{}
	}
	q.scanInsts = make([][]scanInstance, len(q.ph.Nodes))
	q.exs = map[int]*exec.Exchange{}
	q.exBytes = map[int]*atomic.Int64{}
	m := q.db.metrics
	q.flight = exec.NewFlightTracker(m.Gauge("exec_batches_in_flight"))

	// Intra-slice parallelism: pick the query's DOP before any producer or
	// chain is built, and publish it for stv_exec_workers.
	q.dop = q.chooseDOP()
	if q.sys == nil {
		q.par = &parallelStats{dop: q.dop}
		if q.qid > 0 {
			q.db.attachQueryExec(q.qid, q.par)
		}
	}

	// perSlice accumulates the gather stream; every batch parked here is
	// counted in flight and released in the deferred cleanup below (the
	// final output batch is always a fresh leader-side materialization,
	// never a gathered batch, so releasing all of them is safe).
	perSlice := make([][]*exec.Batch, nslices)
	defer func() {
		// By the time any return runs, every producer and consumer has been
		// joined (or never launched), so draining the exchange buffers is
		// safe — it retires the batches an early stop (error, cancel,
		// timeout) parked in flight, keeping exec_batches_in_flight at zero
		// between queries. The gathered leader-side batches are returned to
		// the pool the same way.
		for _, ex := range q.exs {
			ex.Drain()
		}
		for _, bs := range perSlice {
			for _, b := range bs {
				q.flight.Dec()
				exec.PutBatch(b)
			}
		}
		q.foldScanStats()
		if q.par != nil {
			m.Counter("morsels_dispatched_total").Add(q.par.morsels.Load())
		}
		m.Gauge("exec_batches_in_flight_peak").Set(q.flight.HighWater())
		q.emitSpans()
	}()

	// Exchanges and their build-side producers are shared across consumer
	// slices, so they are created once, before the per-slice chains.
	for ji := range q.ph.Joins {
		pj := &q.ph.Joins[ji]
		step := &q.p.Joins[ji]
		if pj.ProbeEx != nil {
			q.newExchange(pj.ProbeEx, nslices)
		}
		if pj.BuildEx == nil {
			continue
		}
		ex := q.newExchange(pj.BuildEx, nslices)
		var route exec.RouteFn
		var err error
		if pj.BuildEx.ExKind == plan.ExchangeBroadcast {
			route = exec.BroadcastRoute(nslices)
		} else {
			route, err = exec.NewShuffleRouter(q.mode, step.RightKeys, nslices)
			if err != nil {
				return nil, err
			}
		}
		for src := 0; src < nslices; src++ {
			if q.dop > 1 {
				ps, err := q.parallelScanSrc(pj.BuildScan, src)
				if err != nil {
					return nil, err
				}
				q.prods = append(q.prods, producer{ex: ex, src: src, route: route, par: ps})
				continue
			}
			op, err := q.scanOp(pj.BuildScan, src)
			if err != nil {
				return nil, err
			}
			q.prods = append(q.prods, producer{ex: ex, src: src, op: op, route: route})
		}
	}

	if q.p.HasAgg {
		q.aggTables = make([]*exec.GroupTable, nslices)
		q.aggGroups = make([]int64, nslices)
	}
	chains := make([]exec.Operator, nslices)
	if q.dop <= 1 {
		for sl := 0; sl < nslices; sl++ {
			var err error
			chains[sl], err = q.buildChain(sl, nslices)
			if err != nil {
				return nil, err
			}
		}
	}

	var prodWG sync.WaitGroup
	for _, pr := range q.prods {
		prodWG.Add(1)
		go func(pr producer) {
			defer prodWG.Done()
			if pr.par != nil {
				exec.ParallelProduce(ctx, pr.ex, pr.src, pr.par.queue, pr.par.scanners, pr.route, q.stats[pr.par.node.ID], &q.par.morsels)
			} else {
				pr.ex.Produce(ctx, pr.src, pr.op, pr.route)
			}
		}(pr)
	}

	errs := make([]error, nslices)
	var wg sync.WaitGroup
	for sl := 0; sl < nslices; sl++ {
		wg.Add(1)
		go func(sl int) {
			defer wg.Done()
			var sink func(*exec.Batch) error
			if !q.p.HasAgg {
				// Collecting a batch at the leader is the gather transfer.
				// Parked batches are flight-tracked until the deferred
				// release; empties carry nothing and go straight back to
				// the pool (the leader phase skips them anyway).
				node := q.db.cl.Slice(sl).Node.ID
				sink = func(b *exec.Batch) error {
					if b.N == 0 {
						exec.PutBatch(b)
						return nil
					}
					sz := b.ByteSize()
					q.account(node, -1, sz, cluster.TransferGather)
					q.gatherBytes.Add(sz)
					q.flight.Inc()
					perSlice[sl] = append(perSlice[sl], b)
					return nil
				}
			}
			var err error
			if q.dop > 1 {
				err = q.runParallelSlice(ctx, sl, nslices, sink)
			} else {
				err = driveChain(ctx, chains[sl], sink)
			}
			if err != nil {
				errs[sl] = err
				// Unblock every producer and consumer parked on an exchange.
				q.abortExchanges(err)
			}
		}(sl)
	}
	wg.Wait()
	prodWG.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Leader phase: the final merge runs as one more instrumented chain.
	var root exec.Operator
	if q.p.HasAgg {
		for sl, gt := range q.aggTables {
			q.aggGroups[sl] = int64(gt.NumGroups())
		}
		ship := func(sl int, t *exec.GroupTable) {
			// Partial-state shipping accounts the real encoded state size.
			shipped := t.StateBytes()
			q.account(q.db.cl.Slice(sl).Node.ID, -1, shipped, cluster.TransferGather)
			q.gatherBytes.Add(shipped)
		}
		leaderGt, err := exec.NewGroupTable(q.mode, q.p.GroupBy, q.p.Aggs)
		if err != nil {
			return nil, err
		}
		leaderGt.SetMemory(q.memCtx(q.ph.LeaderAgg))
		q.leaderAgg = leaderGt
		root = q.wrap(exec.NewGroupMergeOp(leaderGt, q.aggTables, ship), q.ph.LeaderAgg)
		if q.ph.Having != nil {
			f, err := exec.NewFilterOp(q.mode, q.p.Having, root)
			if err != nil {
				return nil, err
			}
			root = q.wrap(f, q.ph.Having)
		}
		proj, err := exec.NewProjectOp(q.mode, q.p.Project, root)
		if err != nil {
			return nil, err
		}
		root = q.wrap(proj, q.ph.Project)
	} else {
		root = q.wrap(exec.NewLeaderMergeOp(perSlice, q.p.OrderBy, q.p.SliceTopN()), q.ph.Merge)
	}
	fin := exec.NewFinalizeOp(root, q.p.Distinct, q.p.OrderBy, q.p.Limit, len(q.p.Project))
	fin.SetMemory(q.memCtx(q.ph.Finalize))
	root = q.wrap(fin, q.ph.Finalize)

	var final *exec.Batch
	err := driveChain(ctx, root, func(b *exec.Batch) error {
		if final == nil {
			final = b
			return nil
		}
		return final.Concat(b)
	})
	if err != nil {
		return nil, err
	}
	if final == nil {
		final = exec.NewBatch(len(q.p.Project))
	}
	return final, nil
}

// buildChain assembles slice sl's fused operator chain from the physical
// plan: scan through (joins, filter) into either the slice's partial
// aggregation or its projection tail. Every operator is wrapped with the
// instrumentation that feeds per-operator stats and the in-flight gauge.
func (q *queryRun) buildChain(sl, nslices int) (exec.Operator, error) {
	ph := q.ph
	spn := q.db.cl.Config().SlicesPerNode

	cur, err := q.baseScanOp(sl)
	if err != nil {
		return nil, err
	}

	for ji := range ph.Joins {
		pj := &ph.Joins[ji]
		step := &q.p.Joins[ji]
		right := q.p.Tables[step.Right]
		if pj.ProbeEx != nil {
			// DS_DIST_BOTH: this slice's accumulated chain becomes a shuffle
			// producer, and the chain continues from the exchange's output.
			ex := q.exs[pj.ProbeEx.ID]
			route, err := exec.NewShuffleRouter(q.mode, step.LeftKeys, nslices)
			if err != nil {
				return nil, err
			}
			q.prods = append(q.prods, producer{ex: ex, src: sl, op: cur, route: route})
			cur = q.wrap(exec.NewRecvOp(ex, sl), pj.ProbeEx)
		}
		var build exec.Operator
		switch {
		case pj.BuildEx != nil:
			build = q.wrap(exec.NewRecvOp(q.exs[pj.BuildEx.ID], sl), pj.BuildEx)
		case step.Strategy == plan.StrategyBroadcast && right.Def.DistStyle == catalog.DistAll:
			// Already replicated: every slice reads its node's local copy.
			build, err = q.scanOp(pj.BuildScan, (sl/spn)*spn)
		default: // collocated
			build, err = q.scanOp(pj.BuildScan, sl)
		}
		if err != nil {
			return nil, err
		}
		join, err := exec.NewHashJoin(q.mode, *step, len(right.Def.Columns))
		if err != nil {
			return nil, err
		}
		join.SetMemory(q.memCtx(pj.Probe))
		join.SetSizeHint(ph.BuildDemand(ji, nslices))
		cur = q.wrap(exec.NewHashJoinOp(join, build, cur), pj.Probe)
	}

	if ph.Where != nil {
		f, err := exec.NewFilterOp(q.mode, q.p.Where, cur)
		if err != nil {
			return nil, err
		}
		cur = q.wrap(f, ph.Where)
	}
	return q.chainTail(cur, sl)
}

// chainTail finishes a slice chain past the filter stage: the slice's
// partial aggregation, or the projection with its optional distinct and
// top-N pushdowns. Shared by the serial chain builder and the parallel
// path's spilled-join fallback.
func (q *queryRun) chainTail(cur exec.Operator, sl int) (exec.Operator, error) {
	ph := q.ph
	if q.p.HasAgg {
		gt, err := exec.NewGroupTable(q.mode, q.p.GroupBy, q.p.Aggs)
		if err != nil {
			return nil, err
		}
		gt.SetMemory(q.memCtx(ph.PartialAgg))
		q.aggTables[sl] = gt
		return q.wrap(exec.NewPartialAggOp(gt, cur), ph.PartialAgg), nil
	}

	proj, err := exec.NewProjectOp(q.mode, q.p.Project, cur)
	if err != nil {
		return nil, err
	}
	cur = q.wrap(proj, ph.Project)
	if ph.Distinct != nil {
		cur = q.wrap(exec.NewStreamDistinctOp(cur), ph.Distinct)
	}
	if ph.TopN != nil {
		topn := exec.NewTopNOp(cur, q.p.OrderBy, q.p.Limit, len(q.p.Project))
		topn.SetMemory(q.memCtx(ph.TopN))
		cur = q.wrap(topn, ph.TopN)
	}
	return cur, nil
}

// scanOp builds one slice's scan of a physical scan node, reading
// statSlice's visible segments and registering the instance for post-run
// stats folding.
func (q *queryRun) scanOp(n *plan.PhysNode, statSlice int) (exec.Operator, error) {
	if q.sys != nil {
		op, err := q.sysScanOp(n)
		if err != nil {
			return nil, err
		}
		return q.wrap(op, n), nil
	}
	local := &exec.ScanStats{}
	q.addScanInst(n, statSlice, local)
	sc, err := exec.NewScanner(q.mode, n.Scan, q.db.cl.FetchBlockCtx, local)
	if err != nil {
		return nil, err
	}
	sc.SetCache(q.db.cache)
	sc.SetFaults(q.db.inj)
	segs := q.db.cl.VisibleSegments(statSlice, n.Scan.Def.ID, q.snapshot)
	return q.wrap(exec.NewScanOp(sc, segs), n), nil
}

// addScanInst registers one slice's scan instance for post-run stats
// folding; locked because parallel slices register from their own
// goroutines.
func (q *queryRun) addScanInst(n *plan.PhysNode, statSlice int, stats *exec.ScanStats) {
	q.chainMu.Lock()
	q.scanInsts[n.ID] = append(q.scanInsts[n.ID], scanInstance{slice: statSlice, stats: stats})
	q.chainMu.Unlock()
}

// sysScanOp materializes a system table's rows and applies the pushed-down
// filter; system queries run leader-only against in-memory rows.
func (q *queryRun) sysScanOp(n *plan.PhysNode) (exec.Operator, error) {
	scan := n.Scan
	schema := make([]types.Type, len(scan.Def.Columns))
	for i, c := range scan.Def.Columns {
		schema[i] = c.Type
	}
	b := exec.FromRows(schema, q.sys[scan.Def])
	f, err := exec.NewFilter(q.mode, scan.Filter)
	if err != nil {
		return nil, err
	}
	if b, err = f.Apply(b); err != nil {
		return nil, err
	}
	if b.N == 0 {
		return exec.NewBatchSource(nil), nil
	}
	return exec.NewBatchSource([]*exec.Batch{b}), nil
}

// newExchange creates the shared exchange behind one physical movement
// node, wiring transfer accounting and cross-node byte attribution in.
func (q *queryRun) newExchange(n *plan.PhysNode, nslices int) *exec.Exchange {
	bytes := &atomic.Int64{}
	q.exBytes[n.ID] = bytes
	kind := cluster.TransferShuffle
	if n.ExKind == plan.ExchangeBroadcast {
		kind = cluster.TransferBroadcast
	}
	account := func(src, dst int, b *exec.Batch) {
		srcNode := q.db.cl.Slice(src).Node.ID
		dstNode := q.db.cl.Slice(dst).Node.ID
		sz := b.ByteSize()
		q.account(srcNode, dstNode, sz, kind)
		if srcNode != dstNode {
			bytes.Add(sz)
		}
	}
	ex := exec.NewExchange(nslices, exchangeBuf, account, q.flight)
	ex.SetFaults(q.db.inj)
	q.exs[n.ID] = ex
	return ex
}

// wrap decorates op with the physical node's shared stats and the query's
// in-flight tracker.
func (q *queryRun) wrap(op exec.Operator, n *plan.PhysNode) exec.Operator {
	return exec.Instrument(op, q.stats[n.ID], q.flight)
}

// abortExchanges fails every exchange so no producer or consumer stays
// parked on a channel after an error elsewhere in the dataflow.
func (q *queryRun) abortExchanges(err error) {
	for _, ex := range q.exs {
		ex.Abort(err)
	}
}

// driveChain runs one operator chain to exhaustion, feeding each emitted
// batch to sink (which may be nil). Cancellation is checked once per
// batch, so an aborted query unwinds within one batch boundary even when
// no leaf operator blocks.
func driveChain(ctx context.Context, op exec.Operator, sink func(*exec.Batch) error) error {
	if err := op.Open(ctx); err != nil {
		op.Close()
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			op.Close()
			return err
		}
		b, err := op.Next(ctx)
		if err != nil {
			op.Close()
			return err
		}
		if b == nil {
			break
		}
		if sink != nil {
			if err := sink(b); err != nil {
				op.Close()
				return err
			}
		}
	}
	return op.Close()
}

// account records cross-node traffic for data-plane queries; system-table
// queries run leader-only, so their batch movement is not network traffic.
func (q *queryRun) account(fromNode, toNode int, bytes int64, kind cluster.TransferKind) {
	if q.sys == nil {
		q.db.cl.AccountTransfer(fromNode, toNode, bytes, kind)
	}
}

// foldScanStats merges every scan instance's counters into the query-wide
// totals and the owning slice's cumulative stv_slice_stats counters.
func (q *queryRun) foldScanStats() {
	if q.sys != nil {
		return
	}
	for _, insts := range q.scanInsts {
		for _, inst := range insts {
			br := inst.stats.BlocksRead.Load()
			bs := inst.stats.BlocksSkipped.Load()
			rr := inst.stats.RowsRead.Load()
			by := inst.stats.BytesRead.Load()
			q.scans.BlocksRead.Add(br)
			q.scans.BlocksSkipped.Add(bs)
			q.scans.RowsRead.Add(rr)
			q.scans.RowsEmitted.Add(inst.stats.RowsEmitted.Load())
			q.scans.PageFaults.Add(inst.stats.PageFaults.Load())
			q.scans.BytesRead.Add(by)
			q.scans.CacheHits.Add(inst.stats.CacheHits.Load())
			q.scans.CacheMisses.Add(inst.stats.CacheMisses.Load())
			q.scans.Retries.Add(inst.stats.Retries.Load())
			q.scans.FailoverReads.Add(inst.stats.FailoverReads.Load())

			st := &q.db.sliceStats[inst.slice]
			st.scans.Add(1)
			st.blocksRead.Add(br)
			st.blocksSkipped.Add(bs)
			st.rowsRead.Add(rr)
			st.bytesRead.Add(by)
		}
	}
}

// emitSpans reconstructs the query's trace tree from the per-operator
// stats the instrumenting wrappers collected: one span per physical node
// (duration = cumulative operator time across its slice instances), with
// per-slice children carrying scan block counters and partial-agg group
// counts.
func (q *queryRun) emitSpans() {
	if q.trace == nil {
		return
	}
	for _, n := range q.ph.Nodes {
		sp := q.trace.StartChild(n.SpanName())
		st := q.stats[n.ID]
		sp.Add("rows", st.Rows.Load())
		if n.EstRows >= 0 {
			sp.Add("est_rows", n.EstRows)
		}
		sp.Add("batches", st.Batches.Load())
		switch n.Kind {
		case plan.PhysScan:
			if n == q.ph.Base && q.sys == nil {
				sp.Add("dop", int64(q.dop))
			}
			// Parallel slices register their instances in completion order;
			// render in slice order so traces compare across runs.
			sort.Slice(q.scanInsts[n.ID], func(a, b int) bool {
				return q.scanInsts[n.ID][a].slice < q.scanInsts[n.ID][b].slice
			})
			for _, inst := range q.scanInsts[n.ID] {
				child := sp.StartChild(fmt.Sprintf("slice %d", inst.slice))
				child.Add("rows", inst.stats.RowsRead.Load())
				child.Add("blocks_read", inst.stats.BlocksRead.Load())
				child.Add("blocks_skipped", inst.stats.BlocksSkipped.Load())
				child.Add("bytes", inst.stats.BytesRead.Load())
				child.Add("cache_hits", inst.stats.CacheHits.Load())
				child.Add("cache_misses", inst.stats.CacheMisses.Load())
				if r := inst.stats.Retries.Load(); r > 0 {
					child.Add("retries", r)
				}
				if f := inst.stats.FailoverReads.Load(); f > 0 {
					child.Add("failover_reads", f)
				}
				child.SetDuration(0)
				sp.Add("blocks_read", inst.stats.BlocksRead.Load())
				sp.Add("blocks_skipped", inst.stats.BlocksSkipped.Load())
				sp.Add("bytes", inst.stats.BytesRead.Load())
				sp.Add("cache_hits", inst.stats.CacheHits.Load())
				sp.Add("cache_misses", inst.stats.CacheMisses.Load())
				if r := inst.stats.Retries.Load(); r > 0 {
					sp.Add("retries", r)
				}
				if f := inst.stats.FailoverReads.Load(); f > 0 {
					sp.Add("failover_reads", f)
				}
			}
		case plan.PhysPartialAgg:
			for sl := range q.aggGroups {
				child := sp.StartChild(fmt.Sprintf("slice %d", sl))
				child.Add("groups", q.aggGroups[sl])
				child.SetDuration(0)
			}
		case plan.PhysLeaderAgg:
			sp.Add("bytes", q.gatherBytes.Load())
			if q.leaderAgg != nil {
				sp.Add("groups", int64(q.leaderAgg.NumGroups()))
			} else if len(q.aggTables) > 0 && q.aggTables[0] != nil {
				sp.Add("groups", int64(q.aggTables[0].NumGroups()))
			}
		case plan.PhysLeaderMerge:
			sp.Add("bytes", q.gatherBytes.Load())
		case plan.PhysExchange:
			if c := q.exBytes[n.ID]; c != nil {
				sp.Add("bytes", c.Load())
			}
		}
		// Memory-governance attrs for the blocking operators that charge a
		// tracker: peak resident bytes, plus spill volume when they spilled.
		if nt := q.nodeMem[n.ID]; nt != nil {
			if p := nt.Peak(); p > 0 {
				sp.Add("mem_peak", p)
			}
			if ss := q.nodeSpill[n.ID]; ss != nil {
				if b := ss.Bytes.Load(); b > 0 {
					sp.Add("spill_bytes", b)
					sp.Add("spill_partitions", ss.Partitions.Load())
					if r := ss.Runs.Load(); r > 0 {
						sp.Add("spill_runs", r)
					}
				}
			}
		}
		sp.SetDuration(time.Duration(st.Nanos.Load()))
	}
}
