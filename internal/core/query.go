package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"redshift/internal/catalog"
	"redshift/internal/cluster"
	"redshift/internal/exec"
	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/telemetry"
	"redshift/internal/types"
)

// runSelect executes a SELECT: plan at the leader, per-slice parallel
// execution with strategy-appropriate data movement, final merge at the
// leader (§2.1's query processing flow).
func (db *Database) runSelect(s *sql.Select) (*Result, error) {
	if s.From == nil {
		return db.runLeaderSelect(s)
	}
	if isSystemTable(s.From.Table) {
		return db.runSystemSelect(s)
	}
	res, _, err := db.runSelectTraced(s)
	return res, err
}

// runSelectTraced executes a data-plane SELECT and returns the result with
// its span tree. Every run — including failed ones — is appended to the
// query log and counted in the metrics registry.
func (db *Database) runSelectTraced(s *sql.Select) (*Result, *telemetry.Span, error) {
	start := time.Now()
	trace := telemetry.StartSpan("query")
	queueWait := db.wlm.Acquire()
	defer db.wlm.Release()

	planSpan := trace.StartChild("plan")
	planStart := time.Now()
	p, err := plan.BuildWith(db.cat, s, db.cfg.Plan)
	planTime := time.Since(planStart)
	planSpan.End()
	if err != nil {
		trace.End()
		db.recordQuery(s, start, queueWait, planTime, 0, nil, trace, err)
		return nil, trace, err
	}

	q := &queryRun{
		db:       db,
		p:        p,
		mode:     db.cfg.Mode,
		snapshot: db.txm.CurrentXid(),
		scans:    &exec.ScanStats{},
		trace:    trace,
	}
	netBefore := db.cl.NetBytes()
	execStart := time.Now()
	final, err := q.execute()
	execTime := time.Since(execStart)
	trace.End()
	if err != nil {
		db.recordQuery(s, start, queueWait, planTime, execTime, nil, trace, err)
		return nil, trace, err
	}
	res := &Result{
		Schema: p.Schema(),
		Stats: ExecStats{
			BlocksRead:    q.scans.BlocksRead.Load(),
			BlocksSkipped: q.scans.BlocksSkipped.Load(),
			RowsScanned:   q.scans.RowsRead.Load(),
			NetBytes:      db.cl.NetBytes() - netBefore,
			PlanTime:      planTime,
			QueueWait:     queueWait,
			ExecTime:      execTime,
		},
	}
	for i := 0; i < final.N; i++ {
		res.Rows = append(res.Rows, final.Row(i))
	}
	db.recordQuery(s, start, queueWait, planTime, execTime, res, trace, nil)
	return res, trace, nil
}

// recordQuery appends one finished SELECT to the query log and emits its
// counters into the registry.
func (db *Database) recordQuery(s *sql.Select, start time.Time, queueWait, planTime, execTime time.Duration, res *Result, trace *telemetry.Span, runErr error) {
	rec := telemetry.QueryRecord{
		SQL:       s.String(),
		Start:     start,
		End:       time.Now(),
		QueueWait: queueWait,
		PlanTime:  planTime,
		ExecTime:  execTime,
		Trace:     trace,
	}
	if res != nil {
		rec.Rows = int64(len(res.Rows))
		rec.BlocksRead = res.Stats.BlocksRead
		rec.BlocksSkipped = res.Stats.BlocksSkipped
		rec.RowsScanned = res.Stats.RowsScanned
		rec.NetBytes = res.Stats.NetBytes
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	db.qlog.Append(rec)

	m := db.metrics
	m.Counter("query_total").Inc()
	if runErr != nil {
		m.Counter("query_errors_total").Inc()
		return
	}
	m.Counter("query_blocks_read_total").Add(rec.BlocksRead)
	m.Counter("query_blocks_skipped_total").Add(rec.BlocksSkipped)
	m.Counter("query_rows_scanned_total").Add(rec.RowsScanned)
	m.Histogram("query_seconds").Observe(time.Since(start).Seconds())
	m.Histogram("query_plan_seconds").Observe(planTime.Seconds())
	m.Histogram("query_queue_seconds").Observe(queueWait.Seconds())
}

// runLeaderSelect evaluates a FROM-less SELECT entirely at the leader —
// the connection-test queries every driver sends (SELECT 1).
func (db *Database) runLeaderSelect(s *sql.Select) (*Result, error) {
	if s.Distinct || len(s.GroupBy) > 0 || s.Having != nil || len(s.Joins) > 0 {
		return nil, fmt.Errorf("core: clauses other than the select list need a FROM table")
	}
	res := &Result{}
	var row types.Row
	for _, item := range s.Items {
		if item.Star {
			return nil, fmt.Errorf("core: SELECT * needs a FROM table")
		}
		bound, err := plan.BindScalar(item.Expr)
		if err != nil {
			return nil, err
		}
		v, err := exec.EvalRow(bound, nil)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = strings.ToLower(item.Expr.String())
		}
		res.Schema.Columns = append(res.Schema.Columns, types.Column{Name: name, Type: bound.Type()})
		row = append(row, v)
	}
	if s.Limit != 0 {
		res.Rows = []types.Row{row}
	}
	return res, nil
}

// queryRun carries one SELECT's execution state.
type queryRun struct {
	db       *Database
	p        *plan.Plan
	mode     exec.Mode
	snapshot int64
	scans    *exec.ScanStats
	// trace is the query's span tree root; nil disables tracing (all span
	// methods are nil-safe).
	trace *telemetry.Span
	// sys, when set, resolves scans from materialized in-memory rows: the
	// system-table path, which runs leader-only on one "slice".
	sys map[*catalog.TableDef][]types.Row
}

// numSlices returns the execution width: every slice for data-plane
// queries, a single leader slice for system-table queries.
func (q *queryRun) numSlices() int {
	if q.sys != nil {
		return 1
	}
	return q.db.cl.NumSlices()
}

// execute runs the distributed pipeline and returns the final batch.
func (q *queryRun) execute() (*exec.Batch, error) {
	nslices := q.numSlices()

	// Stage 1: scan the base table on every slice. A DISTSTYLE ALL base
	// table is duplicated per node, so only the first node's slices scan it
	// (reading every copy would multiply the rows).
	base := q.p.Tables[0]
	spn := q.db.cl.Config().SlicesPerNode
	scanSpan := q.trace.StartChild("scan " + base.Def.Name)
	left, err := q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
		if q.sys == nil && base.Def.DistStyle == catalog.DistAll && sl >= spn {
			return nil, nil
		}
		return q.scanTable(sl, base, scanSpan)
	})
	scanSpan.End()
	if err != nil {
		return nil, err
	}

	// Stage 2: apply joins left-to-right with planner-chosen movement.
	for _, step := range q.p.Joins {
		right := q.p.Tables[step.Right]
		joinSpan := q.trace.StartChild(fmt.Sprintf("join %s [%s]", right.Def.Name, step.Strategy))
		if step.Strategy == plan.StrategyShuffle {
			left, err = q.exchange(left, step.LeftKeys, joinSpan, "shuffle left")
			if err != nil {
				joinSpan.End()
				return nil, err
			}
		}
		builds, err := q.buildSides(step, joinSpan)
		if err != nil {
			joinSpan.End()
			return nil, err
		}
		rightWidth := len(right.Def.Columns)
		step := step
		left, err = q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
			join, err := exec.NewHashJoin(q.mode, step, rightWidth)
			if err != nil {
				return nil, err
			}
			for _, b := range builds[sl] {
				if err := join.Build(b); err != nil {
					return nil, err
				}
			}
			var out []*exec.Batch
			for _, b := range left[sl] {
				joined, err := join.Probe(b)
				if err != nil {
					return nil, err
				}
				if joined.N > 0 {
					out = append(out, joined)
				}
			}
			return out, nil
		})
		joinSpan.Add("rows", countRows(left))
		joinSpan.End()
		if err != nil {
			return nil, err
		}
	}

	// Stage 3: residual WHERE.
	if q.p.Where != nil {
		where := q.p.Where
		filterSpan := q.trace.StartChild("filter")
		var err error
		left, err = q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
			f, err := exec.NewFilter(q.mode, where)
			if err != nil {
				return nil, err
			}
			var out []*exec.Batch
			for _, b := range left[sl] {
				fb, err := f.Apply(b)
				if err != nil {
					return nil, err
				}
				if fb.N > 0 {
					out = append(out, fb)
				}
			}
			return out, nil
		})
		filterSpan.Add("rows", countRows(left))
		filterSpan.End()
		if err != nil {
			return nil, err
		}
	}

	if q.p.HasAgg {
		return q.aggregate(left)
	}
	return q.project(left)
}

// account records cross-node traffic for data-plane queries; system-table
// queries run leader-only, so their batch movement is not network traffic.
func (q *queryRun) account(fromNode, toNode int, bytes int64, kind cluster.TransferKind) {
	if q.sys == nil {
		q.db.cl.AccountTransfer(fromNode, toNode, bytes, kind)
	}
}

// countRows sums batch rows across all slices (for span attributes).
func countRows(parts [][]*exec.Batch) int64 {
	var n int64
	for _, bs := range parts {
		for _, b := range bs {
			n += int64(b.N)
		}
	}
	return n
}

// aggregate runs the two-phase aggregation: partial per slice, merge and
// finalize at the leader.
func (q *queryRun) aggregate(left [][]*exec.Batch) (*exec.Batch, error) {
	nslices := q.numSlices()
	aggSpan := q.trace.StartChild("partial-agg")
	tables := make([]*exec.GroupTable, nslices)
	var wg sync.WaitGroup
	errs := make([]error, nslices)
	for sl := 0; sl < nslices; sl++ {
		wg.Add(1)
		go func(sl int) {
			defer wg.Done()
			sliceSpan := aggSpan.StartChild(fmt.Sprintf("slice %d", sl))
			defer sliceSpan.End()
			gt, err := exec.NewGroupTable(q.mode, q.p.GroupBy, q.p.Aggs)
			if err != nil {
				errs[sl] = err
				return
			}
			for _, b := range left[sl] {
				if err := gt.Consume(b); err != nil {
					errs[sl] = err
					return
				}
			}
			tables[sl] = gt
			sliceSpan.Add("groups", int64(gt.NumGroups()))
		}(sl)
	}
	wg.Wait()
	aggSpan.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Leader merge. Partial-state shipping is accounted approximately:
	// each slice sends its group count × a state-size estimate.
	mergeSpan := q.trace.StartChild("leader-merge")
	leader := tables[0]
	for sl := 1; sl < nslices; sl++ {
		shipped := int64(tables[sl].NumGroups()) * 64
		q.account(q.db.cl.Slice(sl).Node.ID, -1, shipped, cluster.TransferGather)
		mergeSpan.Add("bytes", shipped)
		leader.Merge(tables[sl])
	}
	mergeSpan.Add("groups", int64(leader.NumGroups()))
	mergeSpan.End()
	aggBatch, err := leader.Result()
	if err != nil {
		return nil, err
	}
	if q.p.Having != nil {
		f, err := exec.NewFilter(q.mode, q.p.Having)
		if err != nil {
			return nil, err
		}
		if aggBatch, err = f.Apply(aggBatch); err != nil {
			return nil, err
		}
	}
	proj, err := exec.NewProjector(q.mode, q.p.Project)
	if err != nil {
		return nil, err
	}
	out, err := proj.Apply(aggBatch)
	if err != nil {
		return nil, err
	}
	return q.finalize(out)
}

// project handles the non-aggregating tail: slice-side projection (plus
// partial distinct / top-N when profitable), leader merge.
func (q *queryRun) project(left [][]*exec.Batch) (*exec.Batch, error) {
	nslices := q.numSlices()
	sliceTopN := len(q.p.OrderBy) > 0 && q.p.Limit >= 0 && !q.p.Distinct
	projSpan := q.trace.StartChild("project")
	projected, err := q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
		proj, err := exec.NewProjector(q.mode, q.p.Project)
		if err != nil {
			return nil, err
		}
		merged := exec.NewBatch(len(q.p.Project))
		for _, b := range left[sl] {
			pb, err := proj.Apply(b)
			if err != nil {
				return nil, err
			}
			if err := merged.Concat(pb); err != nil {
				return nil, err
			}
		}
		if q.p.Distinct {
			merged = exec.Distinct(merged) // partial dedup before transfer
		}
		if sliceTopN {
			merged = exec.SortBatch(merged, q.p.OrderBy)
			merged = exec.TopN(merged, q.p.Limit)
		}
		return []*exec.Batch{merged}, nil
	})
	projSpan.End()
	if err != nil {
		return nil, err
	}
	// Ship per-slice results to the leader.
	mergeSpan := q.trace.StartChild("leader-merge")
	var perSlice []*exec.Batch
	for sl, bs := range projected {
		b := bs[0]
		q.account(q.db.cl.Slice(sl).Node.ID, -1, b.ByteSize(), cluster.TransferGather)
		mergeSpan.Add("bytes", b.ByteSize())
		perSlice = append(perSlice, b)
	}
	var out *exec.Batch
	if sliceTopN {
		out, err = exec.MergeSorted(perSlice, q.p.OrderBy)
		if err != nil {
			mergeSpan.End()
			return nil, err
		}
	} else {
		out = exec.NewBatch(len(q.p.Project))
		for _, b := range perSlice {
			if b.N == 0 {
				continue
			}
			if err := out.Concat(b); err != nil {
				mergeSpan.End()
				return nil, err
			}
		}
	}
	mergeSpan.Add("rows", int64(out.N))
	mergeSpan.End()
	return q.finalize(out)
}

// finalize applies DISTINCT, ORDER BY and LIMIT at the leader.
func (q *queryRun) finalize(b *exec.Batch) (*exec.Batch, error) {
	span := q.trace.StartChild("finalize")
	defer span.End()
	if q.p.Distinct {
		b = exec.Distinct(b)
	}
	if len(q.p.OrderBy) > 0 {
		b = exec.SortBatch(b, q.p.OrderBy)
	}
	b = exec.TopN(b, q.p.Limit)
	span.Add("rows", int64(b.N))
	return b, nil
}

// scanTable reads one table's visible segments on one slice, applying the
// pushed filter and zone-map pruning. Each call gets a per-slice child span
// under parent and folds its counters into the query totals and the slice's
// cumulative stv_slice_stats counters.
func (q *queryRun) scanTable(sl int, scan *plan.TableScan, parent *telemetry.Span) ([]*exec.Batch, error) {
	if q.sys != nil {
		return q.scanSystem(sl, scan, parent)
	}
	span := parent.StartChild(fmt.Sprintf("slice %d", sl))
	defer span.End()
	local := &exec.ScanStats{}
	scanner, err := exec.NewScanner(q.mode, scan, q.db.cl.FetchBlock, local)
	if err != nil {
		return nil, err
	}
	var out []*exec.Batch
	for _, seg := range q.db.cl.VisibleSegments(sl, scan.Def.ID, q.snapshot) {
		err := scanner.ScanSegment(seg, func(b *exec.Batch) error {
			out = append(out, b)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	q.finishScan(sl, local, span, parent)
	return out, nil
}

// finishScan merges one scan call's local counters into the query-wide
// stats, the slice's cumulative counters, its span, and the parent span's
// rollup.
func (q *queryRun) finishScan(sl int, local *exec.ScanStats, span, parent *telemetry.Span) {
	br := local.BlocksRead.Load()
	bs := local.BlocksSkipped.Load()
	rr := local.RowsRead.Load()
	by := local.BytesRead.Load()
	q.scans.BlocksRead.Add(br)
	q.scans.BlocksSkipped.Add(bs)
	q.scans.RowsRead.Add(rr)
	q.scans.RowsEmitted.Add(local.RowsEmitted.Load())
	q.scans.PageFaults.Add(local.PageFaults.Load())
	q.scans.BytesRead.Add(by)

	st := &q.db.sliceStats[sl]
	st.scans.Add(1)
	st.blocksRead.Add(br)
	st.blocksSkipped.Add(bs)
	st.rowsRead.Add(rr)
	st.bytesRead.Add(by)

	span.Add("rows", rr)
	span.Add("blocks_read", br)
	span.Add("blocks_skipped", bs)
	span.Add("bytes", by)
	parent.Add("rows", rr)
	parent.Add("blocks_read", br)
	parent.Add("blocks_skipped", bs)
	parent.Add("bytes", by)
}

// scanSystem materializes a system table's rows (leader slice only) and
// applies the pushed-down filter.
func (q *queryRun) scanSystem(sl int, scan *plan.TableScan, parent *telemetry.Span) ([]*exec.Batch, error) {
	if sl != 0 {
		return nil, nil
	}
	span := parent.StartChild("leader")
	defer span.End()
	schema := make([]types.Type, len(scan.Def.Columns))
	for i, c := range scan.Def.Columns {
		schema[i] = c.Type
	}
	b := exec.FromRows(schema, q.sys[scan.Def])
	f, err := exec.NewFilter(q.mode, scan.Filter)
	if err != nil {
		return nil, err
	}
	if b, err = f.Apply(b); err != nil {
		return nil, err
	}
	span.Add("rows", int64(b.N))
	if b.N == 0 {
		return nil, nil
	}
	return []*exec.Batch{b}, nil
}

// buildSides materializes the join build input for every slice according
// to the strategy, recording movement under the join's span.
func (q *queryRun) buildSides(step plan.JoinStep, joinSpan *telemetry.Span) ([][]*exec.Batch, error) {
	nslices := q.numSlices()
	right := q.p.Tables[step.Right]

	switch step.Strategy {
	case plan.StrategyCollocated:
		// Each slice joins its local shard: zero movement.
		scanSpan := joinSpan.StartChild("scan " + right.Def.Name)
		defer scanSpan.End()
		return q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
			return q.scanTable(sl, right, scanSpan)
		})

	case plan.StrategyBroadcast:
		if right.Def.DistStyle == catalog.DistAll {
			// The table is already duplicated per node; every slice reads
			// its node's copy locally.
			scanSpan := joinSpan.StartChild("scan " + right.Def.Name)
			defer scanSpan.End()
			spn := q.db.cl.Config().SlicesPerNode
			return q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
				home := (sl / spn) * spn
				return q.scanTable(home, right, scanSpan)
			})
		}
		// Gather the full table at the leader, then broadcast to every
		// node — and account both movements.
		scanSpan := joinSpan.StartChild("scan " + right.Def.Name)
		var gathered []*exec.Batch
		var gatherBytes int64
		for sl := 0; sl < nslices; sl++ {
			batches, err := q.scanTable(sl, right, scanSpan)
			if err != nil {
				scanSpan.End()
				return nil, err
			}
			for _, b := range batches {
				q.account(q.db.cl.Slice(sl).Node.ID, -1, b.ByteSize(), cluster.TransferBroadcast)
				gatherBytes += b.ByteSize()
				gathered = append(gathered, b)
			}
		}
		scanSpan.End()
		bcastSpan := joinSpan.StartChild("broadcast")
		for n := 0; n < q.db.cl.NumNodes(); n++ {
			q.account(-1, n, gatherBytes, cluster.TransferBroadcast)
			bcastSpan.Add("bytes", gatherBytes)
		}
		bcastSpan.Add("rows", countRows([][]*exec.Batch{gathered}))
		bcastSpan.End()
		out := make([][]*exec.Batch, nslices)
		for sl := range out {
			out[sl] = gathered
		}
		return out, nil

	case plan.StrategyShuffle:
		// Scan the inner side everywhere and repartition it by join key.
		scanSpan := joinSpan.StartChild("scan " + right.Def.Name)
		scanned, err := q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
			return q.scanTable(sl, right, scanSpan)
		})
		scanSpan.End()
		if err != nil {
			return nil, err
		}
		return q.exchange(scanned, step.RightKeys, joinSpan, "shuffle "+right.Def.Name)

	default:
		return nil, fmt.Errorf("core: unknown join strategy %v", step.Strategy)
	}
}

// exchange repartitions per-slice batch streams by the hash of the key
// expressions — the redistribution step of a shuffle join — accounting
// every byte that crosses a node boundary under a child span of parent.
func (q *queryRun) exchange(in [][]*exec.Batch, keys []plan.Expr, parent *telemetry.Span, name string) ([][]*exec.Batch, error) {
	span := parent.StartChild(name)
	defer span.End()
	nslices := q.numSlices()
	// buckets[src][dst] accumulates rows moving src → dst.
	buckets := make([][]*exec.Batch, nslices)
	_, err := q.parallelSlices(nslices, func(src int) ([]*exec.Batch, error) {
		evs := make([]*exec.Evaluator, len(keys))
		for i, k := range keys {
			ev, err := exec.NewEvaluator(q.mode, k)
			if err != nil {
				return nil, err
			}
			evs[i] = ev
		}
		local := make([]*exec.Batch, nslices)
		for _, b := range in[src] {
			keyVecs := make([]*types.Vector, len(evs))
			for i, ev := range evs {
				v, err := ev.Eval(b)
				if err != nil {
					return nil, err
				}
				keyVecs[i] = v
			}
			sel := make([][]int, nslices)
			keyRow := make([]types.Value, len(keyVecs))
			for r := 0; r < b.N; r++ {
				for i, v := range keyVecs {
					keyRow[i] = v.Get(r)
				}
				dst := int(exec.HashValues(keyRow) % uint64(nslices))
				sel[dst] = append(sel[dst], r)
			}
			for dst, rows := range sel {
				if len(rows) == 0 {
					continue
				}
				part := b.Gather(rows)
				if local[dst] == nil {
					local[dst] = part
				} else if err := local[dst].Concat(part); err != nil {
					return nil, err
				}
			}
		}
		buckets[src] = local
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]*exec.Batch, nslices)
	for src := 0; src < nslices; src++ {
		for dst, b := range buckets[src] {
			if b == nil || b.N == 0 {
				continue
			}
			srcNode := q.db.cl.Slice(src).Node.ID
			dstNode := q.db.cl.Slice(dst).Node.ID
			q.account(srcNode, dstNode, b.ByteSize(), cluster.TransferShuffle)
			span.Add("rows", int64(b.N))
			if srcNode != dstNode {
				span.Add("bytes", b.ByteSize())
			}
			out[dst] = append(out[dst], b)
		}
	}
	return out, nil
}

// parallelSlices runs fn for every slice concurrently and collects the
// per-slice outputs. Slices on failed nodes cause an error unless their
// blocks can fail over (the scanner's fetch path handles that).
func (q *queryRun) parallelSlices(n int, fn func(sl int) ([]*exec.Batch, error)) ([][]*exec.Batch, error) {
	out := make([][]*exec.Batch, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for sl := 0; sl < n; sl++ {
		wg.Add(1)
		go func(sl int) {
			defer wg.Done()
			out[sl], errs[sl] = fn(sl)
		}(sl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
