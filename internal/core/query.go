package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"redshift/internal/catalog"
	"redshift/internal/exec"
	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// runSelect executes a SELECT: plan at the leader, per-slice parallel
// execution with strategy-appropriate data movement, final merge at the
// leader (§2.1's query processing flow).
func (db *Database) runSelect(s *sql.Select) (*Result, error) {
	if s.From == nil {
		return db.runLeaderSelect(s)
	}
	queueWait := db.wlm.Acquire()
	defer db.wlm.Release()
	planStart := time.Now()
	p, err := plan.BuildWith(db.cat, s, db.cfg.Plan)
	if err != nil {
		return nil, err
	}
	planTime := time.Since(planStart)

	q := &queryRun{
		db:       db,
		p:        p,
		mode:     db.cfg.Mode,
		snapshot: db.txm.CurrentXid(),
		scans:    &exec.ScanStats{},
	}
	netBefore := db.cl.NetBytes()
	execStart := time.Now()
	final, err := q.execute()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schema: p.Schema(),
		Stats: ExecStats{
			BlocksRead:    q.scans.BlocksRead.Load(),
			BlocksSkipped: q.scans.BlocksSkipped.Load(),
			RowsScanned:   q.scans.RowsRead.Load(),
			NetBytes:      db.cl.NetBytes() - netBefore,
			PlanTime:      planTime,
			QueueWait:     queueWait,
			ExecTime:      time.Since(execStart),
		},
	}
	for i := 0; i < final.N; i++ {
		res.Rows = append(res.Rows, final.Row(i))
	}
	return res, nil
}

// runLeaderSelect evaluates a FROM-less SELECT entirely at the leader —
// the connection-test queries every driver sends (SELECT 1).
func (db *Database) runLeaderSelect(s *sql.Select) (*Result, error) {
	if s.Distinct || len(s.GroupBy) > 0 || s.Having != nil || len(s.Joins) > 0 {
		return nil, fmt.Errorf("core: clauses other than the select list need a FROM table")
	}
	res := &Result{}
	var row types.Row
	for _, item := range s.Items {
		if item.Star {
			return nil, fmt.Errorf("core: SELECT * needs a FROM table")
		}
		bound, err := plan.BindScalar(item.Expr)
		if err != nil {
			return nil, err
		}
		v, err := exec.EvalRow(bound, nil)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = strings.ToLower(item.Expr.String())
		}
		res.Schema.Columns = append(res.Schema.Columns, types.Column{Name: name, Type: bound.Type()})
		row = append(row, v)
	}
	if s.Limit != 0 {
		res.Rows = []types.Row{row}
	}
	return res, nil
}

// queryRun carries one SELECT's execution state.
type queryRun struct {
	db       *Database
	p        *plan.Plan
	mode     exec.Mode
	snapshot int64
	scans    *exec.ScanStats
}

// execute runs the distributed pipeline and returns the final batch.
func (q *queryRun) execute() (*exec.Batch, error) {
	nslices := q.db.cl.NumSlices()

	// Stage 1: scan the base table on every slice. A DISTSTYLE ALL base
	// table is duplicated per node, so only the first node's slices scan it
	// (reading every copy would multiply the rows).
	base := q.p.Tables[0]
	spn := q.db.cl.Config().SlicesPerNode
	left, err := q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
		if base.Def.DistStyle == catalog.DistAll && sl >= spn {
			return nil, nil
		}
		return q.scanTable(sl, base)
	})
	if err != nil {
		return nil, err
	}

	// Stage 2: apply joins left-to-right with planner-chosen movement.
	for _, step := range q.p.Joins {
		if step.Strategy == plan.StrategyShuffle {
			left, err = q.exchange(left, step.LeftKeys)
			if err != nil {
				return nil, err
			}
		}
		builds, err := q.buildSides(step)
		if err != nil {
			return nil, err
		}
		rightWidth := len(q.p.Tables[step.Right].Def.Columns)
		step := step
		left, err = q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
			join, err := exec.NewHashJoin(q.mode, step, rightWidth)
			if err != nil {
				return nil, err
			}
			for _, b := range builds[sl] {
				if err := join.Build(b); err != nil {
					return nil, err
				}
			}
			var out []*exec.Batch
			for _, b := range left[sl] {
				joined, err := join.Probe(b)
				if err != nil {
					return nil, err
				}
				if joined.N > 0 {
					out = append(out, joined)
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Stage 3: residual WHERE.
	if q.p.Where != nil {
		where := q.p.Where
		var err error
		left, err = q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
			f, err := exec.NewFilter(q.mode, where)
			if err != nil {
				return nil, err
			}
			var out []*exec.Batch
			for _, b := range left[sl] {
				fb, err := f.Apply(b)
				if err != nil {
					return nil, err
				}
				if fb.N > 0 {
					out = append(out, fb)
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
	}

	if q.p.HasAgg {
		return q.aggregate(left)
	}
	return q.project(left)
}

// aggregate runs the two-phase aggregation: partial per slice, merge and
// finalize at the leader.
func (q *queryRun) aggregate(left [][]*exec.Batch) (*exec.Batch, error) {
	nslices := q.db.cl.NumSlices()
	tables := make([]*exec.GroupTable, nslices)
	var wg sync.WaitGroup
	errs := make([]error, nslices)
	for sl := 0; sl < nslices; sl++ {
		wg.Add(1)
		go func(sl int) {
			defer wg.Done()
			gt, err := exec.NewGroupTable(q.mode, q.p.GroupBy, q.p.Aggs)
			if err != nil {
				errs[sl] = err
				return
			}
			for _, b := range left[sl] {
				if err := gt.Consume(b); err != nil {
					errs[sl] = err
					return
				}
			}
			tables[sl] = gt
		}(sl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Leader merge. Partial-state shipping is accounted approximately:
	// each slice sends its group count × a state-size estimate.
	leader := tables[0]
	for sl := 1; sl < nslices; sl++ {
		q.db.cl.AccountTransfer(q.db.cl.Slice(sl).Node.ID, -1, int64(tables[sl].NumGroups())*64)
		leader.Merge(tables[sl])
	}
	aggBatch, err := leader.Result()
	if err != nil {
		return nil, err
	}
	if q.p.Having != nil {
		f, err := exec.NewFilter(q.mode, q.p.Having)
		if err != nil {
			return nil, err
		}
		if aggBatch, err = f.Apply(aggBatch); err != nil {
			return nil, err
		}
	}
	proj, err := exec.NewProjector(q.mode, q.p.Project)
	if err != nil {
		return nil, err
	}
	out, err := proj.Apply(aggBatch)
	if err != nil {
		return nil, err
	}
	return q.finalize(out)
}

// project handles the non-aggregating tail: slice-side projection (plus
// partial distinct / top-N when profitable), leader merge.
func (q *queryRun) project(left [][]*exec.Batch) (*exec.Batch, error) {
	nslices := q.db.cl.NumSlices()
	sliceTopN := len(q.p.OrderBy) > 0 && q.p.Limit >= 0 && !q.p.Distinct
	projected, err := q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
		proj, err := exec.NewProjector(q.mode, q.p.Project)
		if err != nil {
			return nil, err
		}
		merged := exec.NewBatch(len(q.p.Project))
		for _, b := range left[sl] {
			pb, err := proj.Apply(b)
			if err != nil {
				return nil, err
			}
			if err := merged.Concat(pb); err != nil {
				return nil, err
			}
		}
		if q.p.Distinct {
			merged = exec.Distinct(merged) // partial dedup before transfer
		}
		if sliceTopN {
			merged = exec.SortBatch(merged, q.p.OrderBy)
			merged = exec.TopN(merged, q.p.Limit)
		}
		return []*exec.Batch{merged}, nil
	})
	if err != nil {
		return nil, err
	}
	// Ship per-slice results to the leader.
	var perSlice []*exec.Batch
	for sl, bs := range projected {
		b := bs[0]
		q.db.cl.AccountTransfer(q.db.cl.Slice(sl).Node.ID, -1, b.ByteSize())
		perSlice = append(perSlice, b)
	}
	var out *exec.Batch
	if sliceTopN {
		out, err = exec.MergeSorted(perSlice, q.p.OrderBy)
		if err != nil {
			return nil, err
		}
	} else {
		out = exec.NewBatch(len(q.p.Project))
		for _, b := range perSlice {
			if b.N == 0 {
				continue
			}
			if err := out.Concat(b); err != nil {
				return nil, err
			}
		}
	}
	return q.finalize(out)
}

// finalize applies DISTINCT, ORDER BY and LIMIT at the leader.
func (q *queryRun) finalize(b *exec.Batch) (*exec.Batch, error) {
	if q.p.Distinct {
		b = exec.Distinct(b)
	}
	if len(q.p.OrderBy) > 0 {
		b = exec.SortBatch(b, q.p.OrderBy)
	}
	b = exec.TopN(b, q.p.Limit)
	return b, nil
}

// scanTable reads one table's visible segments on one slice, applying the
// pushed filter and zone-map pruning.
func (q *queryRun) scanTable(sl int, scan *plan.TableScan) ([]*exec.Batch, error) {
	scanner, err := exec.NewScanner(q.mode, scan, q.db.cl.FetchBlock, q.scans)
	if err != nil {
		return nil, err
	}
	var out []*exec.Batch
	for _, seg := range q.db.cl.VisibleSegments(sl, scan.Def.ID, q.snapshot) {
		err := scanner.ScanSegment(seg, func(b *exec.Batch) error {
			out = append(out, b)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildSides materializes the join build input for every slice according
// to the strategy.
func (q *queryRun) buildSides(step plan.JoinStep) ([][]*exec.Batch, error) {
	nslices := q.db.cl.NumSlices()
	right := q.p.Tables[step.Right]

	switch step.Strategy {
	case plan.StrategyCollocated:
		// Each slice joins its local shard: zero movement.
		return q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
			return q.scanTable(sl, right)
		})

	case plan.StrategyBroadcast:
		if right.Def.DistStyle == catalog.DistAll {
			// The table is already duplicated per node; every slice reads
			// its node's copy locally.
			spn := q.db.cl.Config().SlicesPerNode
			return q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
				home := (sl / spn) * spn
				return q.scanTable(home, right)
			})
		}
		// Gather the full table at the leader, then broadcast to every
		// node — and account both movements.
		var gathered []*exec.Batch
		var gatherBytes int64
		for sl := 0; sl < nslices; sl++ {
			batches, err := q.scanTable(sl, right)
			if err != nil {
				return nil, err
			}
			for _, b := range batches {
				q.db.cl.AccountTransfer(q.db.cl.Slice(sl).Node.ID, -1, b.ByteSize())
				gatherBytes += b.ByteSize()
				gathered = append(gathered, b)
			}
		}
		for n := 0; n < q.db.cl.NumNodes(); n++ {
			q.db.cl.AccountTransfer(-1, n, gatherBytes)
		}
		out := make([][]*exec.Batch, nslices)
		for sl := range out {
			out[sl] = gathered
		}
		return out, nil

	case plan.StrategyShuffle:
		// Scan the inner side everywhere and repartition it by join key.
		scanned, err := q.parallelSlices(nslices, func(sl int) ([]*exec.Batch, error) {
			return q.scanTable(sl, right)
		})
		if err != nil {
			return nil, err
		}
		return q.exchange(scanned, step.RightKeys)

	default:
		return nil, fmt.Errorf("core: unknown join strategy %v", step.Strategy)
	}
}

// exchange repartitions per-slice batch streams by the hash of the key
// expressions — the redistribution step of a shuffle join — accounting
// every byte that crosses a node boundary.
func (q *queryRun) exchange(in [][]*exec.Batch, keys []plan.Expr) ([][]*exec.Batch, error) {
	nslices := q.db.cl.NumSlices()
	// buckets[src][dst] accumulates rows moving src → dst.
	buckets := make([][]*exec.Batch, nslices)
	_, err := q.parallelSlices(nslices, func(src int) ([]*exec.Batch, error) {
		evs := make([]*exec.Evaluator, len(keys))
		for i, k := range keys {
			ev, err := exec.NewEvaluator(q.mode, k)
			if err != nil {
				return nil, err
			}
			evs[i] = ev
		}
		local := make([]*exec.Batch, nslices)
		for _, b := range in[src] {
			keyVecs := make([]*types.Vector, len(evs))
			for i, ev := range evs {
				v, err := ev.Eval(b)
				if err != nil {
					return nil, err
				}
				keyVecs[i] = v
			}
			sel := make([][]int, nslices)
			keyRow := make([]types.Value, len(keyVecs))
			for r := 0; r < b.N; r++ {
				for i, v := range keyVecs {
					keyRow[i] = v.Get(r)
				}
				dst := int(exec.HashValues(keyRow) % uint64(nslices))
				sel[dst] = append(sel[dst], r)
			}
			for dst, rows := range sel {
				if len(rows) == 0 {
					continue
				}
				part := b.Gather(rows)
				if local[dst] == nil {
					local[dst] = part
				} else if err := local[dst].Concat(part); err != nil {
					return nil, err
				}
			}
		}
		buckets[src] = local
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]*exec.Batch, nslices)
	for src := 0; src < nslices; src++ {
		for dst, b := range buckets[src] {
			if b == nil || b.N == 0 {
				continue
			}
			q.db.cl.AccountTransfer(q.db.cl.Slice(src).Node.ID, q.db.cl.Slice(dst).Node.ID, b.ByteSize())
			out[dst] = append(out[dst], b)
		}
	}
	return out, nil
}

// parallelSlices runs fn for every slice concurrently and collects the
// per-slice outputs. Slices on failed nodes cause an error unless their
// blocks can fail over (the scanner's fetch path handles that).
func (q *queryRun) parallelSlices(n int, fn func(sl int) ([]*exec.Batch, error)) ([][]*exec.Batch, error) {
	out := make([][]*exec.Batch, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for sl := 0; sl < n; sl++ {
		wg.Add(1)
		go func(sl int) {
			defer wg.Done()
			out[sl], errs[sl] = fn(sl)
		}(sl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
