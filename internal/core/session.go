package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"redshift/internal/sql"
)

// Session is one client connection's view of the database: its prepared
// statements and its SET overrides (statement_timeout, work_mem,
// result_cache). Every statement enters through a session — the staged
// lifecycle is parse → normalize → bind/plan → execute, with the session
// supplying stage-relevant state (prepared ASTs, cache opt-out) and the
// Database owning the shared artifacts (plan cache, result cache).
//
// Sessions are safe for concurrent use; the embedded Database handle keeps
// working after Close (Close only discards session-local state).
type Session struct {
	db *Database

	// stmtTimeout and workMem are this session's SET overrides.
	// stmtTimeout is nanoseconds (0 = disabled); workMem is bytes, -1
	// deferring to the WLM grant.
	stmtTimeout atomic.Int64
	workMem     atomic.Int64
	// maxParallel is the SET max_parallel_workers override: -1 defers to
	// the automatic DOP policy, n >= 1 forces every data-plane query in
	// this session to exactly n morsel workers per slice (bypassing the
	// EstRows threshold and the grant cap — the twin batteries use this to
	// pin the DOP on arbitrarily small tables).
	maxParallel atomic.Int64
	// resultCacheOff is the SET result_cache TO off escape hatch: a session
	// that turns any result-affecting knob off the beaten path gives up
	// result-cache hits and stores (but keeps plan-cache reuse, which is
	// settings-independent).
	resultCacheOff atomic.Bool
	// queryGroup is the SET query_group WLM routing tag: the named queue
	// this session's SELECTs are admitted through ("" = default queue; the
	// short-query fast lane overrides it for cheap queries either way).
	queryGroup atomic.Value // string

	// mu guards the prepared-statement registry.
	mu       sync.Mutex
	prepared map[string]*preparedStmt
}

// preparedStmt is one PREPARE'd statement: its parsed AST (parse stage,
// done once) and normalized text (the shared cache key, so EXECUTE hits
// the same plan/result entries as the equivalent ad-hoc statement).
type preparedStmt struct {
	stmt sql.Statement
	norm string
}

// NewSession opens a session; settings start from the database config.
func (db *Database) NewSession() *Session {
	s := &Session{db: db, prepared: map[string]*preparedStmt{}}
	s.stmtTimeout.Store(int64(db.cfg.StatementTimeout))
	s.workMem.Store(-1)
	s.maxParallel.Store(-1)
	return s
}

// Close discards the session's prepared statements. Idempotent.
func (s *Session) Close() {
	s.mu.Lock()
	s.prepared = map[string]*preparedStmt{}
	s.mu.Unlock()
}

// StatementTimeout returns the session's statement_timeout (0 = disabled).
func (s *Session) StatementTimeout() time.Duration {
	return time.Duration(s.stmtTimeout.Load())
}

// QueryGroup returns the session's SET query_group value ("" = unset).
func (s *Session) QueryGroup() string {
	if v, ok := s.queryGroup.Load().(string); ok {
		return v
	}
	return ""
}

// effectiveMemBudget resolves the session's per-query memory grant: the
// SET work_mem override when one is in effect, else the default WLM slot
// grant. 0 means ungoverned.
func (s *Session) effectiveMemBudget() int64 {
	return s.memBudgetFor(s.db.wlm.Grant())
}

// memBudgetFor resolves the grant for a query admitted with the given
// queue slot budget: the SET work_mem override wins, else the queue's.
func (s *Session) memBudgetFor(queueGrant int64) int64 {
	if wm := s.workMem.Load(); wm >= 0 {
		return wm
	}
	return queueGrant
}

// Execute parses and runs one SQL statement with auto-commit.
func (s *Session) Execute(query string) (*Result, error) {
	return s.ExecuteContext(context.Background(), query)
}

// ExecuteContext is the session entry point: stage 1 (parse, pooled) then
// the statement dispatch. ctx cancellation or deadline aborts the
// statement within one batch boundary.
func (s *Session) ExecuteContext(ctx context.Context, query string) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return s.ExecuteStmtContext(ctx, stmt)
}

// ExecuteStmt runs a parsed statement.
func (s *Session) ExecuteStmt(stmt sql.Statement) (*Result, error) {
	return s.ExecuteStmtContext(context.Background(), stmt)
}

// ExecuteStmtContext runs a parsed statement under ctx. Session-scoped
// statements (PREPARE/EXECUTE/DEALLOCATE/SET) resolve here; everything
// else dispatches into the shared engine with this session's state.
func (s *Session) ExecuteStmtContext(ctx context.Context, stmt sql.Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *sql.Prepare:
		return s.runPrepare(st)
	case *sql.Execute:
		ps, err := s.lookupPrepared(st.Name)
		if err != nil {
			return nil, err
		}
		return s.dispatch(ctx, ps.stmt)
	case *sql.Deallocate:
		return s.runDeallocate(st)
	default:
		return s.dispatch(ctx, stmt)
	}
}

// dispatch routes a parsed statement to the engine. It is the boundary
// between session-scoped control statements and the shared execution path.
func (s *Session) dispatch(ctx context.Context, stmt sql.Statement) (*Result, error) {
	db := s.db
	switch st := stmt.(type) {
	case *sql.Select:
		return db.runSelect(ctx, s, st)
	case *sql.Explain:
		return db.runExplain(ctx, s, st)
	case *sql.CreateTable:
		return db.runCreateTable(st)
	case *sql.DropTable:
		return db.runDropTable(st)
	case *sql.Truncate:
		return db.runTruncate(st)
	case *sql.Insert:
		return db.runInsert(ctx, st)
	case *sql.Copy:
		return db.runCopy(ctx, st)
	case *sql.Vacuum:
		return db.runVacuum(st)
	case *sql.Analyze:
		return db.runAnalyze(st)
	case *sql.Set:
		return s.runSet(st)
	case *sql.Cancel:
		return db.runCancel(st)
	default:
		return nil, fmt.Errorf("core: unsupported statement %T", stmt)
	}
}

// runPrepare registers a prepared statement. SELECTs are bound eagerly —
// a bad reference fails at PREPARE, Postgres-style, and the plan lands in
// the shared plan cache so the first EXECUTE starts warm.
func (s *Session) runPrepare(st *sql.Prepare) (*Result, error) {
	name := strings.ToLower(st.Name)
	norm := sql.Normalize(st.Stmt)
	if sel, ok := st.Stmt.(*sql.Select); ok && sel.From != nil && !isSystemTable(sel.From.Table) {
		if _, _, err := s.db.planFor(sel, norm); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.prepared[name]; dup {
		return nil, fmt.Errorf("core: prepared statement %q already exists", st.Name)
	}
	s.prepared[name] = &preparedStmt{stmt: st.Stmt, norm: norm}
	return &Result{Message: "PREPARE"}, nil
}

// lookupPrepared resolves an EXECUTE target.
func (s *Session) lookupPrepared(name string) (*preparedStmt, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps, ok := s.prepared[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("core: prepared statement %q does not exist", name)
	}
	return ps, nil
}

// runDeallocate drops one or all prepared statements.
func (s *Session) runDeallocate(st *sql.Deallocate) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.All {
		s.prepared = map[string]*preparedStmt{}
		return &Result{Message: "DEALLOCATE ALL"}, nil
	}
	name := strings.ToLower(st.Name)
	if _, ok := s.prepared[name]; !ok {
		return nil, fmt.Errorf("core: prepared statement %q does not exist", st.Name)
	}
	delete(s.prepared, name)
	return &Result{Message: "DEALLOCATE"}, nil
}

// PreparedCount reports how many statements the session holds (tests and
// stv introspection).
func (s *Session) PreparedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.prepared)
}

// runSet handles session options. statement_timeout takes milliseconds
// (Redshift's unit; 0 disables); work_mem and result_cache are
// session-scoped too, so two connections can never observe each other's
// settings; fault_injection toggles the shared injector (a cluster-wide
// test control, deliberately global).
func (s *Session) runSet(st *sql.Set) (*Result, error) {
	switch st.Name {
	case "statement_timeout":
		ms, err := strconv.ParseInt(st.Value, 10, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("core: statement_timeout wants milliseconds >= 0, got %q", st.Value)
		}
		s.stmtTimeout.Store(ms * int64(time.Millisecond))
		return &Result{Message: "SET"}, nil
	case "work_mem":
		n, err := sql.ParseByteSize(st.Value)
		if err != nil {
			return nil, fmt.Errorf("core: work_mem: %w", err)
		}
		s.workMem.Store(n)
		return &Result{Message: "SET"}, nil
	case "max_parallel_workers":
		if strings.EqualFold(st.Value, "default") {
			s.maxParallel.Store(-1)
			return &Result{Message: "SET"}, nil
		}
		n, err := strconv.ParseInt(st.Value, 10, 64)
		if err != nil || n < 1 || n > 64 {
			return nil, fmt.Errorf("core: max_parallel_workers wants 1..64 or default, got %q", st.Value)
		}
		s.maxParallel.Store(n)
		return &Result{Message: "SET"}, nil
	case "result_cache":
		switch strings.ToLower(st.Value) {
		case "on", "true", "1":
			s.resultCacheOff.Store(false)
		case "off", "false", "0":
			s.resultCacheOff.Store(true)
		default:
			return nil, fmt.Errorf("core: result_cache wants on or off, got %q", st.Value)
		}
		return &Result{Message: "SET"}, nil
	case "query_group":
		// Routes this session's SELECTs into a named WLM queue. Validated
		// eagerly so a typo fails at SET, not by silently running in the
		// default queue. "default"/"none" resets.
		v := strings.ToLower(strings.Trim(st.Value, "'\""))
		if v == "" || v == "none" || v == DefaultQueueName {
			s.queryGroup.Store("")
			return &Result{Message: "SET"}, nil
		}
		if !s.db.wlm.HasQueue(v) {
			return nil, fmt.Errorf("core: query_group %q: no such WLM queue (have %s)",
				st.Value, strings.Join(s.db.wlm.QueueNames(), ", "))
		}
		s.queryGroup.Store(v)
		return &Result{Message: "SET"}, nil
	case "fault_injection":
		if s.db.inj == nil {
			return nil, fmt.Errorf("core: no fault plan configured")
		}
		switch strings.ToLower(st.Value) {
		case "on", "true", "1":
			s.db.inj.SetEnabled(true)
		case "off", "false", "0":
			s.db.inj.SetEnabled(false)
		default:
			return nil, fmt.Errorf("core: fault_injection wants on or off, got %q", st.Value)
		}
		return &Result{Message: "SET"}, nil
	default:
		return nil, fmt.Errorf("core: unknown option %q", st.Name)
	}
}
