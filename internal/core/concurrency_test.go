package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"redshift/internal/cluster"
	"redshift/internal/s3sim"
)

// TestConcurrentReadersWritersVacuum hammers one table with parallel
// INSERTs, SELECTs and VACUUMs. Invariants under snapshot isolation:
//
//   - every SELECT COUNT(*) sees some prefix of the committed inserts
//     (monotonic per the snapshot it took, never a torn partial insert),
//   - no query errors,
//   - the final count equals exactly the inserts that reported success.
func TestConcurrentReadersWritersVacuum(t *testing.T) {
	db, err := Open(Config{
		Cluster:   cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 32},
		DataStore: s3sim.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE c (k BIGINT, v BIGINT) DISTSTYLE KEY DISTKEY(k) SORTKEY(k)`)
	// Each insert adds exactly 3 rows, so every consistent snapshot count
	// is a multiple of 3.
	const (
		writers        = 4
		insertsEach    = 15
		rowsPerInsert  = 3
		readers        = 4
		vacuumInterval = 10
	)
	var committed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < insertsEach; i++ {
				k := w*1000 + i
				q := fmt.Sprintf(`INSERT INTO c VALUES (%d, 1), (%d, 2), (%d, 3)`, k, k, k)
				if _, err := db.Execute(q); err != nil {
					errs <- err
					return
				}
				committed.Add(rowsPerInsert)
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Execute(`SELECT COUNT(*) FROM c`)
				if err != nil {
					errs <- err
					return
				}
				n := res.Rows[0][0].I
				if n%rowsPerInsert != 0 {
					errs <- fmt.Errorf("torn read: COUNT(*) = %d not a multiple of %d", n, rowsPerInsert)
					return
				}
				if n > committed.Load()+rowsPerInsert*writers {
					errs <- fmt.Errorf("count %d exceeds committed %d", n, committed.Load())
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < vacuumInterval; i++ {
			if _, err := db.Execute(`VACUUM c`); err != nil {
				// Write-lock conflicts with INSERT are legal serialization
				// failures; anything else is a bug.
				if !isSerializationFailure(err) {
					errs <- err
					return
				}
			}
		}
	}()

	// Wait for writers, stop readers, drain.
	waitWriters := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitWriters)
	}()
	// Close stop once writers are done by polling committed.
	go func() {
		for committed.Load() < int64(writers*insertsEach*rowsPerInsert) {
			select {
			case <-waitWriters:
				break
			default:
			}
		}
		close(stop)
	}()
	<-waitWriters
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	res := mustExec(t, db, `SELECT COUNT(*), COUNT(DISTINCT k) FROM c`)
	want := int64(writers * insertsEach * rowsPerInsert)
	if res.Rows[0][0].I != want {
		t.Fatalf("final count = %v, want %d", res.Rows[0][0], want)
	}
	if res.Rows[0][1].I != int64(writers*insertsEach) {
		t.Fatalf("distinct keys = %v", res.Rows[0][1])
	}
}

func isSerializationFailure(err error) bool {
	return err != nil && (contains(err.Error(), "serialization failure") || contains(err.Error(), "write-locked"))
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
