package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redshift/internal/cluster"
	"redshift/internal/exec"
	"redshift/internal/faults"
	"redshift/internal/s3sim"
)

// assertNoBatchLeaks checks that every pooled batch a query put in flight
// was retired — the invariant behind exchange draining and operator Close.
func assertNoBatchLeaks(t *testing.T, db *Database) {
	t.Helper()
	if n := db.metrics.Gauge("exec_batches_in_flight").Value(); n != 0 {
		t.Errorf("exec_batches_in_flight = %d after queries finished, want 0", n)
	}
}

// openSlowDB builds a database whose primary reads each sleep, so queries
// are slow enough to cancel deterministically. The block cache is disabled
// so every scan pays the injected latency.
func openSlowDB(t *testing.T, perRead time.Duration) *Database {
	t.Helper()
	inj := faults.NewInjector(&faults.Plan{Seed: 7, Sites: map[string]faults.Rule{
		faults.SitePrimaryRead: {Latency: perRead, LatencyProb: 1},
	}})
	inj.SetEnabled(true)
	db, err := Open(Config{
		Cluster:         cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 16},
		Mode:            exec.Compiled,
		DataStore:       s3sim.New(),
		BlockCacheBytes: -1,
		Faults:          inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestStatementTimeoutAbortsQuery(t *testing.T) {
	db := openSlowDB(t, 2*time.Millisecond)
	seedSales(t, db)

	mustExec(t, db, `SET statement_timeout TO 5`)
	_, err := db.Execute(`SELECT SUM(qty) FROM sales WHERE qty >= 0`)
	if err == nil {
		t.Fatal("slow query beat a 5ms statement_timeout")
	}
	if !strings.Contains(err.Error(), "statement timeout") {
		t.Errorf("error %q does not name the timeout", err)
	}
	mustExec(t, db, `SET statement_timeout TO 0`)
	if _, err := db.Execute(`SELECT SUM(qty) FROM sales WHERE qty >= 0`); err != nil {
		t.Fatalf("query failed with timeout disabled: %v", err)
	}

	recs := db.QueryLog().Records()
	var sawTimeout bool
	for _, r := range recs {
		if r.State == "timeout" {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Error("no stl_query record in state 'timeout'")
	}
	assertNoBatchLeaks(t, db)
}

func TestContextCancelAbortsQuery(t *testing.T) {
	db := openSlowDB(t, 2*time.Millisecond)
	seedSales(t, db)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := db.ExecuteContext(ctx, `SELECT SUM(qty) FROM sales WHERE qty >= 0`)
	if err == nil {
		t.Fatal("cancelled query returned a result")
	}
	assertNoBatchLeaks(t, db)
}

// The satellite scenario: N readers hammered by M cancellers under -race.
// Every query must either succeed or abort cleanly, cancelled runs must be
// logged in state 'cancelled', and nothing may leak.
func TestConcurrentCancellationStorm(t *testing.T) {
	db := openSlowDB(t, time.Millisecond)
	seedSales(t, db)

	const readers, queriesEach, cancellers = 4, 6, 2
	var cancelled atomic.Int64
	var readerWG, cancelWG sync.WaitGroup
	stop := make(chan struct{})

	for m := 0; m < cancellers; m++ {
		cancelWG.Add(1)
		go func() {
			defer cancelWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rq := range db.runningQueries() {
					if db.Cancel(rq.id) {
						cancelled.Add(1)
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	errs := make([][]error, readers)
	for n := 0; n < readers; n++ {
		readerWG.Add(1)
		go func(n int) {
			defer readerWG.Done()
			for i := 0; i < queriesEach; i++ {
				_, err := db.Execute(`SELECT region, SUM(qty) FROM sales WHERE qty >= 0 GROUP BY region`)
				errs[n] = append(errs[n], err)
			}
		}(n)
	}

	// Join the readers first (with a hang backstop), then stop the cancellers.
	done := make(chan struct{})
	go func() {
		readerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation storm did not drain in 30s (hang?)")
	}
	close(stop)
	cancelWG.Wait()

	var sawCancelled int
	for n := range errs {
		for _, err := range errs[n] {
			if err == nil {
				continue
			}
			if !strings.Contains(err.Error(), "cancelled on user request") {
				t.Errorf("unexpected query error: %v", err)
			}
			sawCancelled++
		}
	}
	if cancelled.Load() > 0 && sawCancelled == 0 {
		t.Error("cancels were delivered but no query reported a cancelled error")
	}

	var logged int
	for _, r := range db.QueryLog().Records() {
		if r.State == "cancelled" {
			logged++
		}
	}
	if sawCancelled > 0 && logged == 0 {
		t.Error("no stl_query record in state 'cancelled'")
	}
	// Clean unwinding: no leaked WLM slots, transactions or batches.
	if a := db.WLMStats().Active; a != 0 {
		t.Errorf("wlm active = %d after storm", a)
	}
	if n := db.Txns().ActiveCount(); n != 0 {
		t.Errorf("%d transactions still active after storm", n)
	}
	assertNoBatchLeaks(t, db)

	// The database is still healthy: a fault-free query runs to completion.
	res := mustExec(t, db, `SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].I != 1000 {
		t.Errorf("post-storm count = %d, want 1000", res.Rows[0][0].I)
	}
}

func TestCancelUnknownQuery(t *testing.T) {
	db := openDB(t, exec.Compiled)
	if db.Cancel(9999) {
		t.Error("Cancel(9999) reported success with nothing running")
	}
	if _, err := db.Execute(`CANCEL 9999`); err == nil {
		t.Error("CANCEL of unknown query id succeeded")
	}
}

func TestSetStatementOptions(t *testing.T) {
	db := openDB(t, exec.Compiled)
	mustExec(t, db, `SET statement_timeout TO 250`)
	if got := db.StatementTimeout(); got != 250*time.Millisecond {
		t.Errorf("statement_timeout = %v, want 250ms", got)
	}
	if _, err := db.Execute(`SET statement_timeout TO -1`); err == nil {
		t.Error("negative timeout accepted")
	}
	// No fault plan configured: the toggle must say so.
	if _, err := db.Execute(`SET fault_injection TO on`); err == nil {
		t.Error("fault_injection toggled without a configured plan")
	}
	if _, err := db.Execute(`SET bogus_option TO 1`); err == nil {
		t.Error("unknown option accepted")
	}

	inj := faults.NewInjector(&faults.Plan{Seed: 1})
	db2, err := Open(Config{
		Cluster:   cluster.Config{Nodes: 1, SlicesPerNode: 1},
		Mode:      exec.Compiled,
		DataStore: s3sim.New(),
		Faults:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db2, `SET fault_injection TO off`)
	if inj.Enabled() {
		t.Error("injector still enabled after SET ... off")
	}
	mustExec(t, db2, `SET fault_injection TO on`)
	if !inj.Enabled() {
		t.Error("injector not enabled after SET ... on")
	}
}

// stv_faults, stv_inflight and stv_node_health answer through plain SQL.
func TestFaultSystemTables(t *testing.T) {
	inj := faults.NewInjector(&faults.Plan{Seed: 9, Sites: map[string]faults.Rule{
		faults.SitePrimaryRead: {Prob: 0.5},
	}})
	db, err := Open(Config{
		Cluster:   cluster.Config{Nodes: 2, SlicesPerNode: 1, BlockCap: 16},
		Mode:      exec.Compiled,
		DataStore: s3sim.New(),
		Faults:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, `SELECT name, prob FROM stv_faults`)
	found := false
	for _, row := range res.Rows {
		if row[0].S == faults.SitePrimaryRead {
			found = true
			if row[1].F != 0.5 {
				t.Errorf("stv_faults prob = %v, want 0.5", row[1].F)
			}
		}
	}
	if !found {
		t.Errorf("stv_faults does not list %s", faults.SitePrimaryRead)
	}

	res = mustExec(t, db, `SELECT node, quarantined FROM stv_node_health ORDER BY node`)
	if len(res.Rows) != 2 {
		t.Fatalf("stv_node_health rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].I != 0 {
			t.Errorf("node %d unexpectedly quarantined", row[0].I)
		}
	}

	res = mustExec(t, db, `SELECT COUNT(*) FROM stv_inflight`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("stv_inflight = %d rows while idle, want 0", res.Rows[0][0].I)
	}
}

// stl_query's state column distinguishes success from error.
func TestQueryStateLogged(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	mustExec(t, db, `SELECT COUNT(*) FROM sales`)
	if _, err := db.Execute(`SELECT missing_col FROM sales`); err == nil {
		t.Fatal("bad query succeeded")
	}
	res := mustExec(t, db, `SELECT state, COUNT(*) FROM stl_query GROUP BY state ORDER BY state`)
	states := map[string]int64{}
	for _, row := range res.Rows {
		states[row[0].S] = row[1].I
	}
	if states["success"] == 0 {
		t.Error("no successful query logged")
	}
	if states["error"] == 0 {
		t.Error("failed query not logged in state 'error'")
	}
}
