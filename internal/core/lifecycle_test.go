package core

import (
	"fmt"
	"strings"
	"testing"

	"redshift/internal/cluster"
	"redshift/internal/exec"
	"redshift/internal/s3sim"
)

func TestPrepareExecuteDeallocate(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)

	mustExec(t, db, `PREPARE top_regions AS SELECT region, SUM(qty) FROM sales GROUP BY region ORDER BY region`)
	r1 := mustExec(t, db, `EXECUTE top_regions`)
	if len(r1.Rows) != 2 {
		t.Fatalf("EXECUTE rows = %v", r1.Rows)
	}
	r2 := mustExec(t, db, `EXECUTE top_regions`)
	if fmt.Sprint(r1.Rows) != fmt.Sprint(r2.Rows) {
		t.Fatalf("EXECUTE not stable: %v vs %v", r1.Rows, r2.Rows)
	}
	if !r2.Cached {
		t.Errorf("repeat EXECUTE should be a result-cache hit")
	}

	// Duplicate names are rejected; deallocate frees the name.
	if _, err := db.Execute(`PREPARE top_regions AS SELECT 1`); err == nil {
		t.Error("duplicate PREPARE succeeded")
	}
	mustExec(t, db, `DEALLOCATE top_regions`)
	if _, err := db.Execute(`EXECUTE top_regions`); err == nil {
		t.Error("EXECUTE after DEALLOCATE succeeded")
	}
	if _, err := db.Execute(`DEALLOCATE top_regions`); err == nil {
		t.Error("double DEALLOCATE succeeded")
	}

	// PREPARE binds eagerly: a missing table fails at PREPARE time.
	if _, err := db.Execute(`PREPARE bad AS SELECT x FROM no_such_table`); err == nil {
		t.Error("PREPARE against missing table succeeded")
	}

	mustExec(t, db, `PREPARE a AS SELECT COUNT(*) FROM sales`)
	mustExec(t, db, `PREPARE b AS SELECT COUNT(*) FROM products`)
	mustExec(t, db, `DEALLOCATE ALL`)
	if _, err := db.Execute(`EXECUTE a`); err == nil {
		t.Error("EXECUTE a after DEALLOCATE ALL succeeded")
	}
}

func TestResultCacheHitZeroExecution(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	const q = `SELECT region, SUM(qty) AS total FROM sales GROUP BY region ORDER BY region`

	cold := mustExec(t, db, q)
	if cold.Cached {
		t.Fatal("cold run claims to be cached")
	}
	wlmBefore := db.WLMStats().TotalQueries
	warm := mustExec(t, db, q)
	if !warm.Cached {
		t.Fatal("repeat run missed the result cache")
	}
	// The acceptance bar: zero operator execution. No blocks, no rows, no
	// WLM slot ever acquired.
	if warm.Stats.BlocksRead != 0 || warm.Stats.RowsScanned != 0 {
		t.Errorf("cache hit touched storage: %+v", warm.Stats)
	}
	if got := db.WLMStats().TotalQueries; got != wlmBefore {
		t.Errorf("cache hit acquired a WLM slot: %d -> %d", wlmBefore, got)
	}
	if fmt.Sprint(cold.Rows) != fmt.Sprint(warm.Rows) {
		t.Errorf("cached rows differ: %v vs %v", warm.Rows, cold.Rows)
	}

	// Lexical noise normalizes away: a differently-spelled equivalent
	// statement hits the same entry.
	noisy := mustExec(t, db, "select region, sum(qty) as total from sales -- dashboards\n group by region order by region")
	if !noisy.Cached {
		t.Error("normalized-equivalent statement missed the cache")
	}

	// stv_result_cache sees the traffic.
	rc := mustExec(t, db, `SELECT hits, entries FROM stv_result_cache`)
	if rc.Rows[0][0].I == 0 || rc.Rows[0][1].I == 0 {
		t.Errorf("stv_result_cache = %v", rc.Rows)
	}
	pc := mustExec(t, db, `SELECT entries FROM stv_plan_cache`)
	if pc.Rows[0][0].I == 0 {
		t.Errorf("stv_plan_cache = %v", pc.Rows)
	}
}

func TestResultCacheInvalidatedByMutation(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	const q = `SELECT COUNT(*) FROM sales WHERE qty >= 1`

	first := mustExec(t, db, q)
	if hit := mustExec(t, db, q); !hit.Cached {
		t.Fatal("repeat missed")
	}
	mustExec(t, db, `INSERT INTO sales (ts, product_id, qty, region) VALUES (99999, 1, 5, 'us')`)
	after := mustExec(t, db, q)
	if after.Cached {
		t.Fatal("stale result served after INSERT")
	}
	if after.Rows[0][0].I != first.Rows[0][0].I+1 {
		t.Fatalf("count = %v, want %v+1", after.Rows[0][0], first.Rows[0][0])
	}
	// And the refreshed entry serves again.
	if again := mustExec(t, db, q); !again.Cached || again.Rows[0][0].I != after.Rows[0][0].I {
		t.Fatalf("refreshed entry wrong: cached=%v rows=%v", again.Cached, again.Rows)
	}
}

func TestPlanCacheInvalidatedByDDLAndAnalyze(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	// Result-cache hits return before planning; turn the result cache off so
	// every run exercises the plan cache.
	mustExec(t, db, `SET result_cache TO off`)
	const q = `SELECT COUNT(*) FROM sales`

	mustExec(t, db, q)
	mustExec(t, db, q)
	pc := db.planCache.Stats()
	if pc.Hits == 0 {
		t.Fatalf("no plan reuse: %+v", pc)
	}

	// Unrelated DDL moves the global catalog version: next run rebuilds.
	mustExec(t, db, `CREATE TABLE scratch (x BIGINT)`)
	mustExec(t, db, q)
	pc2 := db.planCache.Stats()
	if pc2.Invalidations != pc.Invalidations+1 {
		t.Errorf("DDL did not invalidate the plan: %+v -> %+v", pc, pc2)
	}

	// ANALYZE bumps the table's data version: stale statistics must not
	// keep steering cached plans.
	mustExec(t, db, q)
	pc3 := db.planCache.Stats()
	mustExec(t, db, `ANALYZE sales`)
	mustExec(t, db, q)
	if got := db.planCache.Stats(); got.Invalidations != pc3.Invalidations+1 {
		t.Errorf("ANALYZE did not invalidate the plan: %+v -> %+v", pc3, got)
	}
}

func TestResultCacheBypasses(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)

	// System tables change without version bumps — never cached.
	mustExec(t, db, `SELECT COUNT(*) FROM stl_query`)
	if res := mustExec(t, db, `SELECT COUNT(*) FROM stl_query`); res.Cached {
		t.Error("system-table query served from result cache")
	}

	// SET result_cache TO off is the session escape hatch, and turning it
	// back on restores hits.
	mustExec(t, db, `SET result_cache TO off`)
	mustExec(t, db, `SELECT COUNT(*) FROM products`)
	if res := mustExec(t, db, `SELECT COUNT(*) FROM products`); res.Cached {
		t.Error("SET result_cache TO off ignored")
	}
	mustExec(t, db, `SET result_cache TO on`)
	mustExec(t, db, `SELECT COUNT(*) FROM products`)
	if res := mustExec(t, db, `SELECT COUNT(*) FROM products`); !res.Cached {
		t.Error("result cache did not resume after SET result_cache TO on")
	}
}

func TestExplainAnalyzeReportsCacheHit(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	const q = `EXPLAIN ANALYZE SELECT COUNT(*) FROM sales`

	cold := mustExec(t, db, q)
	if cold.Cached {
		t.Fatal("cold EXPLAIN ANALYZE claims cached")
	}
	warm := mustExec(t, db, q)
	if !warm.Cached {
		t.Fatal("warm EXPLAIN ANALYZE missed the cache")
	}
	if len(warm.Rows) != 1 || warm.Rows[0][0].S != "cache: result hit" {
		t.Errorf("EXPLAIN ANALYZE hit output = %v", warm.Rows)
	}
}

// TestSessionIsolation is the regression test for per-connection state
// leaking across sessions: prepared statements and SET variables belong to
// one session and must be invisible to every other.
func TestSessionIsolation(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	s1, s2 := db.NewSession(), db.NewSession()
	defer s1.Close()
	defer s2.Close()

	// Prepared statements are session-local.
	if _, err := s1.Execute(`PREPARE q AS SELECT COUNT(*) FROM sales`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Execute(`EXECUTE q`); err == nil {
		t.Error("session 2 sees session 1's prepared statement")
	}
	// Same name is free in the other session.
	if _, err := s2.Execute(`PREPARE q AS SELECT COUNT(*) FROM products`); err != nil {
		t.Errorf("session 2 blocked from reusing a name: %v", err)
	}
	r1, err := s1.Execute(`EXECUTE q`)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Execute(`EXECUTE q`)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0].I != 1000 || r2.Rows[0][0].I != 20 {
		t.Errorf("sessions crossed prepared statements: %v / %v", r1.Rows, r2.Rows)
	}

	// SET variables are session-local, interleaved writes don't bleed.
	if _, err := s1.Execute(`SET statement_timeout TO 250`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Execute(`SET result_cache TO off`); err != nil {
		t.Fatal(err)
	}
	if got := s2.StatementTimeout(); got != 0 {
		t.Errorf("session 2 inherited session 1's timeout: %v", got)
	}
	if s1.resultCacheOff.Load() {
		t.Error("session 1 inherited session 2's result_cache off")
	}
	if db.StatementTimeout() != 0 {
		t.Error("default session inherited a session's timeout")
	}
	// Session 1 still gets cache hits; session 2 opted out.
	s1.Execute(`SELECT COUNT(*) FROM sales`)
	hit, err := s1.Execute(`SELECT COUNT(*) FROM sales`)
	if err != nil || !hit.Cached {
		t.Errorf("opted-in session missed: cached=%v err=%v", hit != nil && hit.Cached, err)
	}
	miss, err := s2.Execute(`SELECT COUNT(*) FROM sales`)
	if err != nil || miss.Cached {
		t.Errorf("opted-out session hit the cache")
	}
}

// TestMutationInterleavedTwinBattery is the correctness battery the issue
// demands: a cached database and an uncached twin execute the same
// statement stream; every SELECT runs twice on the cached side (cold, then
// cache-eligible) and must stay bit-identical to the twin across
// COPY/INSERT/TRUNCATE/VACUUM/ANALYZE/DDL mutations. A stale hit is a hard
// failure.
func TestMutationInterleavedTwinBattery(t *testing.T) {
	open := func(resultCache int64, planCache int) *Database {
		db, err := Open(Config{
			Cluster:          cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 64},
			Mode:             exec.Compiled,
			DataStore:        s3sim.New(),
			ResultCacheBytes: resultCache,
			PlanCacheEntries: planCache,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	cached := open(0, 0)     // defaults: both caches on
	uncached := open(-1, -1) // twin: no caches at all
	seedSales(t, cached)
	seedSales(t, uncached)

	mutate := func(stmts ...string) {
		t.Helper()
		for _, q := range stmts {
			mustExec(t, cached, q)
			mustExec(t, uncached, q)
		}
	}
	selects := []string{
		`SELECT COUNT(*) FROM sales`,
		`SELECT region, SUM(qty) AS s, COUNT(*) FROM sales GROUP BY region ORDER BY region`,
		`SELECT ts, qty FROM sales WHERE ts BETWEEN 10000 AND 10010 ORDER BY ts, qty`,
		`SELECT p.category, SUM(s.qty) FROM sales s JOIN products p ON s.product_id = p.id GROUP BY p.category ORDER BY p.category`,
		`SELECT MIN(price), MAX(price) FROM products`,
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range selects {
			want := mustExec(t, uncached, q)
			cold := mustExec(t, cached, q)
			warm := mustExec(t, cached, q)
			wantR := fmt.Sprint(want.Rows)
			if got := fmt.Sprint(cold.Rows); got != wantR {
				t.Fatalf("%s: cold diverged for %q:\n got  %s\n want %s", stage, q, got, wantR)
			}
			if got := fmt.Sprint(warm.Rows); got != wantR {
				t.Fatalf("%s: cache-eligible repeat diverged for %q (stale hit):\n got  %s\n want %s", stage, q, got, wantR)
			}
			if len(warm.Schema.Columns) != len(want.Schema.Columns) {
				t.Fatalf("%s: schema diverged for %q", stage, q)
			}
			for i := range warm.Schema.Columns {
				if warm.Schema.Columns[i] != want.Schema.Columns[i] {
					t.Fatalf("%s: schema col %d diverged for %q", stage, i, q)
				}
			}
		}
	}

	check("seeded")

	// Data mutations.
	var extra strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&extra, "%d|%d|%d|%s\n", 20000+i, i%20, 1+i%7, []string{"us", "eu", "ap"}[i%3])
	}
	cached.cfg.DataStore.Put("lake/sales2/s.csv", []byte(extra.String()))
	uncached.cfg.DataStore.Put("lake/sales2/s.csv", []byte(extra.String()))
	mutate(`COPY sales FROM 's3://lake/sales2/'`)
	check("after COPY")

	mutate(`INSERT INTO sales (ts, product_id, qty, region) VALUES (30000, 3, 9, 'us'), (30001, 4, 2, 'eu')`)
	check("after INSERT")

	mutate(`ANALYZE`)
	check("after ANALYZE")

	mutate(`VACUUM sales`)
	check("after VACUUM")

	// The dialect's DELETE: truncate and reload a smaller products set.
	var prods strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&prods, "%d|%s|%g\n", i, []string{"books", "music"}[i%2], float64(5+i))
	}
	cached.cfg.DataStore.Put("lake/products2/p.csv", []byte(prods.String()))
	uncached.cfg.DataStore.Put("lake/products2/p.csv", []byte(prods.String()))
	mutate(`TRUNCATE products`, `COPY products FROM 's3://lake/products2/'`)
	check("after TRUNCATE+reload")

	// DDL: drop and recreate a queried table (fresh table id), plus
	// unrelated DDL that only moves the global catalog version.
	mutate(
		`DROP TABLE sales`,
		`CREATE TABLE sales (ts BIGINT NOT NULL, product_id BIGINT, qty BIGINT, region VARCHAR(16)) DISTSTYLE KEY DISTKEY(product_id) COMPOUND SORTKEY(ts)`,
		`COPY sales FROM 's3://lake/sales2/'`,
		`CREATE TABLE unrelated (x BIGINT)`,
		`DROP TABLE unrelated`,
	)
	check("after DDL cycle")

	// Nothing on the twin was ever served from a cache.
	if s := uncached.resultCache.Stats(); s.Hits != 0 || s.Entries != 0 {
		t.Fatalf("uncached twin has cache traffic: %+v", s)
	}
}

// TestResultCacheEviction pins the byte budget: results bigger than a
// quarter of the budget are never stored, and filling the cache evicts
// LRU-first without breaking correctness.
func TestResultCacheEviction(t *testing.T) {
	db, err := Open(Config{
		Cluster:          cluster.Config{Nodes: 1, SlicesPerNode: 2, BlockCap: 64},
		Mode:             exec.Compiled,
		DataStore:        s3sim.New(),
		ResultCacheBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	seedSales(t, db)

	// The full scan's result (1000 rows) exceeds budget/4: not stored.
	mustExec(t, db, `SELECT ts, qty, region FROM sales ORDER BY ts`)
	if res := mustExec(t, db, `SELECT ts, qty, region FROM sales ORDER BY ts`); res.Cached {
		t.Error("oversized result was cached")
	}

	// Many small distinct results overflow the budget and evict.
	for i := 0; i < 64; i++ {
		mustExec(t, db, fmt.Sprintf(`SELECT COUNT(*) FROM sales WHERE qty = %d`, i%8))
		mustExec(t, db, fmt.Sprintf(`SELECT SUM(qty) FROM sales WHERE ts < %d`, 10000+i))
	}
	s := db.resultCache.Stats()
	if s.Used > 4096 {
		t.Errorf("cache over budget: %+v", s)
	}
	if s.Evictions == 0 {
		t.Errorf("no evictions under pressure: %+v", s)
	}
	// Still correct after churn.
	r := mustExec(t, db, `SELECT COUNT(*) FROM sales WHERE qty = 1`)
	if r.Rows[0][0].I == 0 {
		t.Errorf("post-churn result wrong: %v", r.Rows)
	}
}
