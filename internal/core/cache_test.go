package core

import (
	"fmt"
	"sync"
	"testing"

	"redshift/internal/cluster"
	"redshift/internal/exec"
	"redshift/internal/s3sim"
)

// TestCountStarMetadataOnly is the regression test for the forced-decode
// bug: a bare COUNT(*) used to decode column 0 of every block; it is now
// answered from block metadata with zero blocks read.
func TestCountStarMetadataOnly(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `SELECT COUNT(*) FROM sales`)
		if res.Rows[0][0].I != 1000 {
			t.Fatalf("count = %v, want 1000", res.Rows[0][0])
		}
		if res.Stats.BlocksRead != 0 {
			t.Errorf("COUNT(*) read %d blocks, want 0", res.Stats.BlocksRead)
		}
		if res.Stats.RowsScanned != 1000 {
			t.Errorf("RowsScanned = %d, want 1000", res.Stats.RowsScanned)
		}
		// With a filter the scan is real again.
		res = mustExec(t, db, `SELECT COUNT(*) FROM sales WHERE qty >= 1`)
		if res.Rows[0][0].I != 1000 || res.Stats.BlocksRead == 0 {
			t.Errorf("filtered count = %v blocks = %d", res.Rows[0][0], res.Stats.BlocksRead)
		}
	})
}

func TestBlockCacheWarmsAcrossQueries(t *testing.T) {
	db := openDB(t, 0)
	seedSales(t, db)
	// The repeat run must actually scan (that's what warms the block
	// cache); keep the result cache out of the way.
	mustExec(t, db, `SET result_cache TO off`)
	const q = `SELECT SUM(qty) AS s, MAX(region) AS r FROM sales`

	cold := mustExec(t, db, q)
	cs := db.BlockCache().Stats()
	if cs.Misses == 0 || cs.Hits != 0 {
		t.Fatalf("cold stats = %+v", cs)
	}
	coldRows := fmt.Sprint(cold.Rows)

	warm := mustExec(t, db, q)
	ws := db.BlockCache().Stats()
	if ws.Hits == 0 {
		t.Errorf("warm run hit nothing: %+v", ws)
	}
	if ws.Misses != cs.Misses {
		t.Errorf("warm run missed: %d -> %d", cs.Misses, ws.Misses)
	}
	if got := fmt.Sprint(warm.Rows); got != coldRows {
		t.Errorf("cached result differs: %s vs %s", got, coldRows)
	}

	// The counters surface through the system table…
	res := mustExec(t, db, `SELECT hits, misses, bytes_cached, budget_bytes FROM stv_block_cache`)
	if len(res.Rows) != 1 {
		t.Fatalf("stv_block_cache rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].I != ws.Hits || res.Rows[0][1].I != ws.Misses {
		t.Errorf("stv_block_cache = %v, cache = %+v", res.Rows[0], ws)
	}
	if res.Rows[0][2].I == 0 || res.Rows[0][3].I != 64<<20 {
		t.Errorf("bytes/budget = %d/%d", res.Rows[0][2].I, res.Rows[0][3].I)
	}
	// …and through /metrics.
	if got := db.Telemetry().Gauge("block_cache_hits").Value(); got != ws.Hits {
		t.Errorf("block_cache_hits gauge = %d, want %d", got, ws.Hits)
	}
}

// TestBlockCacheCoherence covers the DDL paths that reuse block identities
// with new content: the cache must never serve stale decodes.
func TestBlockCacheCoherence(t *testing.T) {
	db := openDB(t, 0)
	load := func(vals string) {
		mustExec(t, db, `CREATE TABLE kv (k BIGINT, v BIGINT)`)
		mustExec(t, db, `INSERT INTO kv VALUES `+vals)
	}
	load(`(1, 10), (2, 20)`)
	if res := mustExec(t, db, `SELECT SUM(v) FROM kv`); res.Rows[0][0].I != 30 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}

	// DROP + recreate with different contents.
	mustExec(t, db, `DROP TABLE kv`)
	load(`(1, 100), (2, 200)`)
	if res := mustExec(t, db, `SELECT SUM(v) FROM kv`); res.Rows[0][0].I != 300 {
		t.Errorf("post-recreate sum = %v, want 300 (stale cache?)", res.Rows[0][0])
	}

	// TRUNCATE + refill.
	mustExec(t, db, `TRUNCATE kv`)
	mustExec(t, db, `INSERT INTO kv VALUES (1, 7)`)
	if res := mustExec(t, db, `SELECT SUM(v) FROM kv`); res.Rows[0][0].I != 7 {
		t.Errorf("post-truncate sum = %v, want 7", res.Rows[0][0])
	}

	// VACUUM rebuilds segments reusing block identities; cached decodes of
	// the pre-vacuum blocks must not leak into post-vacuum reads.
	mustExec(t, db, `INSERT INTO kv VALUES (2, 8), (3, 9)`)
	mustExec(t, db, `SELECT SUM(v) FROM kv`) // warm the cache
	mustExec(t, db, `VACUUM kv`)
	if res := mustExec(t, db, `SELECT SUM(v) FROM kv`); res.Rows[0][0].I != 24 {
		t.Errorf("post-vacuum sum = %v, want 24", res.Rows[0][0])
	}
}

// TestBlockCacheIdenticalResults asserts bit-identical output with the
// cache on and off, in both execution modes, warm and cold.
func TestBlockCacheIdenticalResults(t *testing.T) {
	queries := []string{
		`SELECT ts, qty, region FROM sales WHERE ts BETWEEN 10100 AND 10120 ORDER BY ts`,
		`SELECT region, SUM(qty) AS q FROM sales GROUP BY region ORDER BY region`,
		`SELECT COUNT(*) FROM sales WHERE qty = 3`,
	}
	var want []string
	for _, mode := range []exec.Mode{exec.Compiled, exec.Interpreted} {
		for _, budget := range []int64{-1, 1 << 20} {
			db, err := Open(Config{
				Cluster:         cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 64},
				Mode:            mode,
				DataStore:       s3sim.New(),
				BlockCacheBytes: budget,
			})
			if err != nil {
				t.Fatal(err)
			}
			seedSales(t, db)
			var got []string
			for _, q := range queries {
				for pass := 0; pass < 2; pass++ { // cold then warm
					got = append(got, fmt.Sprint(mustExec(t, db, q).Rows))
				}
			}
			if want == nil {
				want = got
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("mode=%v budget=%d result %d:\n got %s\nwant %s",
						mode, budget, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBlockCacheConcurrentQueries drives the same warm-up race the slice
// goroutines create in production; meaningful under -race.
func TestBlockCacheConcurrentQueries(t *testing.T) {
	db := openDB(t, 0)
	seedSales(t, db)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := db.Execute(`SELECT SUM(qty) AS s FROM sales WHERE ts >= 10000`)
				if err != nil {
					errs[g] = err
					return
				}
				if res.Rows[0][0].I != 3000 {
					errs[g] = fmt.Errorf("sum = %v", res.Rows[0][0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s := db.BlockCache().Stats(); s.Bytes > s.Budget {
		t.Errorf("cache over budget: %+v", s)
	}
}
