package core

import (
	"fmt"
	"strings"
	"testing"

	"redshift/internal/cluster"
	"redshift/internal/exec"
	"redshift/internal/s3sim"
	"redshift/internal/types"
)

// openDB builds a 2-node × 2-slice database with a small block size so
// zone-map pruning is exercised even on small tables.
func openDB(t *testing.T, mode exec.Mode) *Database {
	t.Helper()
	db, err := Open(Config{
		Cluster:   cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 64},
		Mode:      mode,
		DataStore: s3sim.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustExec(t *testing.T, db *Database, query string) *Result {
	t.Helper()
	res, err := db.Execute(query)
	if err != nil {
		t.Fatalf("Execute(%q): %v", query, err)
	}
	return res
}

// seedSales creates and populates the standard test schema.
func seedSales(t *testing.T, db *Database) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE products (
		id BIGINT NOT NULL, category VARCHAR(32), price DOUBLE PRECISION
	) DISTSTYLE KEY DISTKEY(id)`)
	mustExec(t, db, `CREATE TABLE sales (
		ts BIGINT NOT NULL, product_id BIGINT, qty BIGINT, region VARCHAR(16)
	) DISTSTYLE KEY DISTKEY(product_id) COMPOUND SORTKEY(ts)`)

	var prods, sales strings.Builder
	cats := []string{"books", "music", "toys"}
	regions := []string{"us", "eu"}
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&prods, "%d|%s|%g\n", i, cats[i%3], float64(10+i))
	}
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sales, "%d|%d|%d|%s\n", 10000+i, i%20, 1+i%5, regions[i%2])
	}
	store := db.cfg.DataStore
	store.Put("lake/products/p.csv", []byte(prods.String()))
	store.Put("lake/sales/s.csv", []byte(sales.String()))
	mustExec(t, db, `COPY products FROM 's3://lake/products/'`)
	mustExec(t, db, `COPY sales FROM 's3://lake/sales/'`)
}

// bothModes runs the subtest against both engines.
func bothModes(t *testing.T, fn func(t *testing.T, db *Database)) {
	for _, mode := range []exec.Mode{exec.Compiled, exec.Interpreted} {
		t.Run(mode.String(), func(t *testing.T) {
			db := openDB(t, mode)
			seedSales(t, db)
			fn(t, db)
		})
	}
}

func TestEndToEndScanFilterProject(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `SELECT ts, qty * 2 AS dbl FROM sales WHERE ts BETWEEN 10000 AND 10004 ORDER BY ts`)
		if len(res.Rows) != 5 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		if res.Rows[0][0].I != 10000 || res.Rows[0][1].I != 2 {
			t.Errorf("row0 = %v", res.Rows[0])
		}
		if res.Rows[4][0].I != 10004 {
			t.Errorf("row4 = %v", res.Rows[4])
		}
		if res.Schema.Columns[1].Name != "dbl" {
			t.Errorf("schema = %+v", res.Schema)
		}
	})
}

func TestEndToEndZoneMapPruning(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `SELECT COUNT(*) FROM sales WHERE ts < 10010`)
		if res.Rows[0][0].I != 10 {
			t.Fatalf("count = %v", res.Rows[0][0])
		}
		if res.Stats.BlocksSkipped == 0 {
			t.Errorf("no blocks skipped despite sorted data: %+v", res.Stats)
		}
	})
}

func TestEndToEndCollocatedJoin(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		before := db.Cluster().NetBytes()
		res := mustExec(t, db, `
			SELECT p.category, SUM(s.qty) AS total
			FROM sales s JOIN products p ON s.product_id = p.id
			GROUP BY p.category ORDER BY total DESC`)
		if len(res.Rows) != 3 {
			t.Fatalf("rows = %v", res.Rows)
		}
		// 1000 sales, qty cycle 1..5 → total qty = sum over i of 1+i%5 = 3000.
		var total int64
		for _, r := range res.Rows {
			total += r[1].I
		}
		if total != 3000 {
			t.Errorf("sum of qty = %d", total)
		}
		// Collocated join must move almost nothing (only final results and
		// partial agg states).
		moved := db.Cluster().NetBytes() - before
		if moved > 10_000 {
			t.Errorf("collocated join moved %d bytes", moved)
		}
	})
}

func TestEndToEndJoinCorrectness(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `
			SELECT s.ts, p.price FROM sales s JOIN products p ON s.product_id = p.id
			WHERE s.ts = 10007`)
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %v", res.Rows)
		}
		// sale 7 → product 7 → price 17.
		if res.Rows[0][1].F != 17 {
			t.Errorf("price = %v", res.Rows[0][1])
		}
	})
}

func TestEndToEndLeftJoin(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		mustExec(t, db, `INSERT INTO sales (ts, product_id, qty, region) VALUES (99999, 555, 1, 'us')`)
		res := mustExec(t, db, `
			SELECT s.ts, p.id FROM sales s LEFT JOIN products p ON s.product_id = p.id
			WHERE s.ts = 99999`)
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %v", res.Rows)
		}
		if !res.Rows[0][1].Null {
			t.Errorf("unmatched right side = %v, want NULL", res.Rows[0][1])
		}
	})
}

func TestEndToEndAggregates(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `
			SELECT region, COUNT(*) AS n, AVG(qty) AS avg_qty, MIN(ts), MAX(ts),
			       COUNT(DISTINCT product_id), APPROXIMATE COUNT(DISTINCT ts)
			FROM sales GROUP BY region ORDER BY region`)
		if len(res.Rows) != 2 {
			t.Fatalf("rows = %v", res.Rows)
		}
		eu, us := res.Rows[0], res.Rows[1]
		if eu[0].S != "eu" || us[0].S != "us" {
			t.Fatalf("regions = %v %v", eu[0], us[0])
		}
		if eu[1].I != 500 || us[1].I != 500 {
			t.Errorf("counts = %v %v", eu[1], us[1])
		}
		if eu[5].I != 10 || us[5].I != 10 { // product_id cycle 0..19 split by parity
			t.Errorf("distinct products = %v %v", eu[5], us[5])
		}
		// HLL estimate of 500 distinct ts within 8%.
		for _, r := range res.Rows {
			est := r[6].I
			if est < 460 || est > 540 {
				t.Errorf("approx distinct ts = %d, want ≈500", est)
			}
		}
	})
}

func TestEndToEndHavingAndLimit(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `
			SELECT product_id, SUM(qty) AS total FROM sales
			GROUP BY product_id HAVING SUM(qty) > 100
			ORDER BY total DESC, product_id LIMIT 3`)
		if len(res.Rows) != 3 {
			t.Fatalf("rows = %v", res.Rows)
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i][1].I > res.Rows[i-1][1].I {
				t.Errorf("not sorted desc: %v", res.Rows)
			}
		}
	})
}

func TestEndToEndScalarAggregate(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `SELECT COUNT(*), SUM(qty) FROM sales`)
		if len(res.Rows) != 1 || res.Rows[0][0].I != 1000 || res.Rows[0][1].I != 3000 {
			t.Fatalf("scalar agg = %v", res.Rows)
		}
		// Empty input still yields one row.
		res = mustExec(t, db, `SELECT COUNT(*), MAX(qty) FROM sales WHERE ts < 0`)
		if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || !res.Rows[0][1].Null {
			t.Fatalf("empty scalar agg = %v", res.Rows)
		}
	})
}

func TestEndToEndDistinct(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `SELECT DISTINCT region FROM sales ORDER BY region`)
		if len(res.Rows) != 2 || res.Rows[0][0].S != "eu" || res.Rows[1][0].S != "us" {
			t.Fatalf("distinct = %v", res.Rows)
		}
	})
}

func TestEndToEndInsertAndSnapshot(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		mustExec(t, db, `INSERT INTO products (id, category, price) VALUES (100, 'new', 1.5), (101, NULL, 2.5)`)
		res := mustExec(t, db, `SELECT category, price FROM products WHERE id = 101`)
		if len(res.Rows) != 1 || !res.Rows[0][0].Null || res.Rows[0][1].F != 2.5 {
			t.Fatalf("inserted row = %v", res.Rows)
		}
		res = mustExec(t, db, `SELECT COUNT(*) FROM products`)
		if res.Rows[0][0].I != 22 {
			t.Errorf("count = %v", res.Rows[0][0])
		}
	})
}

func TestEndToEndVacuumMergesRuns(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		// Add a second sorted run out of order.
		mustExec(t, db, `INSERT INTO sales (ts, product_id, qty, region) VALUES (5, 1, 1, 'us'), (6, 2, 1, 'eu')`)
		stats, _ := db.Catalog().Stats(mustTable(t, db, "sales"))
		if stats.UnsortedRows == 0 {
			t.Fatal("second run should count as unsorted")
		}
		mustExec(t, db, `VACUUM sales`)
		stats, _ = db.Catalog().Stats(mustTable(t, db, "sales"))
		if stats.UnsortedRows != 0 {
			t.Errorf("unsorted after vacuum = %d", stats.UnsortedRows)
		}
		// Data intact and one segment per slice.
		res := mustExec(t, db, `SELECT COUNT(*) FROM sales`)
		if res.Rows[0][0].I != 1002 {
			t.Errorf("count after vacuum = %v", res.Rows[0][0])
		}
		res = mustExec(t, db, `SELECT ts FROM sales ORDER BY ts LIMIT 1`)
		if res.Rows[0][0].I != 5 {
			t.Errorf("min ts = %v", res.Rows[0][0])
		}
	})
}

func mustTable(t *testing.T, db *Database, name string) int64 {
	t.Helper()
	def, err := db.Catalog().Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return def.ID
}

func TestEndToEndTruncateAndDrop(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		mustExec(t, db, `TRUNCATE sales`)
		res := mustExec(t, db, `SELECT COUNT(*) FROM sales`)
		if res.Rows[0][0].I != 0 {
			t.Errorf("count after truncate = %v", res.Rows[0][0])
		}
		mustExec(t, db, `DROP TABLE sales`)
		if _, err := db.Execute(`SELECT * FROM sales`); err == nil {
			t.Error("query after drop succeeded")
		}
		mustExec(t, db, `DROP TABLE IF EXISTS sales`)
	})
}

func TestEndToEndExplain(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `EXPLAIN SELECT p.category, COUNT(*) FROM sales s JOIN products p ON s.product_id = p.id GROUP BY p.category`)
		text := ""
		for _, r := range res.Rows {
			text += r[0].S + "\n"
		}
		if !strings.Contains(text, "DS_DIST_NONE") {
			t.Errorf("EXPLAIN missing collocated join:\n%s", text)
		}
	})
}

func TestEndToEndAnalyze(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		mustExec(t, db, `ANALYZE sales`)
		stats, _ := db.Catalog().Stats(mustTable(t, db, "sales"))
		if stats.Rows != 1000 || stats.Cols[0].Min.I != 10000 {
			t.Errorf("analyzed stats = %+v", stats)
		}
		res := mustExec(t, db, `ANALYZE COMPRESSION sales`)
		if len(res.Rows) == 0 {
			t.Error("ANALYZE COMPRESSION returned nothing")
		}
	})
}

func TestEndToEndCaseAndFunctions(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `
			SELECT UPPER(region) AS r,
			       CASE WHEN qty >= 4 THEN 'big' ELSE 'small' END AS size,
			       COUNT(*)
			FROM sales GROUP BY UPPER(region), CASE WHEN qty >= 4 THEN 'big' ELSE 'small' END
			ORDER BY r, size`)
		if len(res.Rows) != 4 {
			t.Fatalf("rows = %v", res.Rows)
		}
		if res.Rows[0][0].S != "EU" || res.Rows[0][1].S != "big" {
			t.Errorf("row0 = %v", res.Rows[0])
		}
	})
}

func TestQueryDuringNodeFailure(t *testing.T) {
	// "making media failures transparent": fail a node, queries keep
	// answering by failing over to secondary replicas.
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	// The post-failure run must re-execute (failover is what's under
	// test), not be served from the result cache.
	mustExec(t, db, `SET result_cache TO off`)
	before := mustExec(t, db, `SELECT COUNT(*), SUM(qty) FROM sales`)

	db.Cluster().FailNode(1)
	after := mustExec(t, db, `SELECT COUNT(*), SUM(qty) FROM sales`)
	if !types.Equal(before.Rows[0][0], after.Rows[0][0]) || !types.Equal(before.Rows[0][1], after.Rows[0][1]) {
		t.Fatalf("results changed after node failure: %v vs %v", before.Rows, after.Rows)
	}
	if after.Stats.NetBytes == 0 {
		t.Error("failover should have moved replica bytes")
	}
}

func TestShuffleJoinMatchesCollocated(t *testing.T) {
	// The same join computed under EVEN distribution (shuffle) must equal
	// the KEY-distributed (collocated) answer — the A5 correctness leg.
	run := func(diststyle string) []types.Row {
		db := openDB(t, exec.Compiled)
		mustExec(t, db, `CREATE TABLE l (k BIGINT, v BIGINT) `+diststyle)
		mustExec(t, db, `CREATE TABLE r (k BIGINT, w BIGINT) `+diststyle)
		var lb, rb strings.Builder
		for i := 0; i < 2000; i++ {
			fmt.Fprintf(&lb, "%d|%d\n", i%100, i)
		}
		for i := 0; i < 100; i++ {
			fmt.Fprintf(&rb, "%d|%d\n", i, i*10)
		}
		db.cfg.DataStore.Put("l/1.csv", []byte(lb.String()))
		db.cfg.DataStore.Put("r/1.csv", []byte(rb.String()))
		mustExec(t, db, `COPY l FROM 'l/'`)
		mustExec(t, db, `COPY r FROM 'r/'`)
		// Force r to look big so EVEN goes to shuffle, not broadcast.
		db.cfg.Plan.BroadcastRows = 1
		res := mustExec(t, db, `SELECT l.k, SUM(l.v + r.w) AS s FROM l JOIN r ON l.k = r.k GROUP BY l.k ORDER BY l.k`)
		return res.Rows
	}
	collocated := run("DISTSTYLE KEY DISTKEY(k)")
	shuffled := run("DISTSTYLE EVEN")
	if len(collocated) != len(shuffled) || len(collocated) != 100 {
		t.Fatalf("row counts: %d vs %d", len(collocated), len(shuffled))
	}
	for i := range collocated {
		for c := range collocated[i] {
			if !types.Equal(collocated[i][c], shuffled[i][c]) {
				t.Fatalf("row %d differs: %v vs %v", i, collocated[i], shuffled[i])
			}
		}
	}
}

func TestDistStyleAllBroadcastFree(t *testing.T) {
	db := openDB(t, exec.Compiled)
	mustExec(t, db, `CREATE TABLE f (k BIGINT, v BIGINT) DISTSTYLE EVEN`)
	mustExec(t, db, `CREATE TABLE d (k BIGINT, name VARCHAR(8)) DISTSTYLE ALL`)
	var fb, dbuf strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&fb, "%d|%d\n", i%10, i)
	}
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&dbuf, "%d|n%d\n", i, i)
	}
	db.cfg.DataStore.Put("f/1.csv", []byte(fb.String()))
	db.cfg.DataStore.Put("d/1.csv", []byte(dbuf.String()))
	mustExec(t, db, `COPY f FROM 'f/'`)
	mustExec(t, db, `COPY d FROM 'd/'`)

	before := db.Cluster().NetBytes()
	res := mustExec(t, db, `SELECT d.name, COUNT(*) FROM f JOIN d ON f.k = d.k GROUP BY d.name`)
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	moved := db.Cluster().NetBytes() - before
	if moved > 5_000 {
		t.Errorf("DISTSTYLE ALL join moved %d bytes; the copy is already local", moved)
	}
}

func TestInsertErrors(t *testing.T) {
	db := openDB(t, exec.Compiled)
	mustExec(t, db, `CREATE TABLE t (a BIGINT NOT NULL, b VARCHAR(8))`)
	cases := []string{
		`INSERT INTO t (a) VALUES (1, 2)`,
		`INSERT INTO t (nope) VALUES (1)`,
		`INSERT INTO t VALUES ('str', 'b')`,
		`INSERT INTO nosuch VALUES (1)`,
		`INSERT INTO t VALUES (NULL, 'b')`, // NOT NULL violated
	}
	for _, q := range cases {
		if _, err := db.Execute(q); err == nil {
			t.Errorf("%q accepted", q)
		}
	}
	// Date coercion from string literal.
	mustExec(t, db, `CREATE TABLE d (day DATE)`)
	mustExec(t, db, `INSERT INTO d VALUES ('2015-05-31')`)
	res := mustExec(t, db, `SELECT day FROM d`)
	if res.Rows[0][0].String() != "2015-05-31" {
		t.Errorf("date = %v", res.Rows[0][0])
	}
}

func TestCreateTableVariants(t *testing.T) {
	db := openDB(t, exec.Compiled)
	mustExec(t, db, `CREATE TABLE a (x BIGINT)`)
	mustExec(t, db, `CREATE TABLE IF NOT EXISTS a (x BIGINT)`)
	if _, err := db.Execute(`CREATE TABLE a (x BIGINT)`); err == nil {
		t.Error("duplicate CREATE accepted")
	}
	if _, err := db.Execute(`CREATE TABLE b (x BIGINT) DISTSTYLE KEY`); err == nil {
		t.Error("KEY without DISTKEY accepted")
	}
	if _, err := db.Execute(`CREATE TABLE b (x BIGINT) DISTKEY(nope)`); err == nil {
		t.Error("bad DISTKEY accepted")
	}
	if _, err := db.Execute(`CREATE TABLE b (x BIGINT) SORTKEY(nope)`); err == nil {
		t.Error("bad SORTKEY accepted")
	}
	mustExec(t, db, `CREATE TABLE c (x BIGINT, y BIGINT) INTERLEAVED SORTKEY(x, y)`)
}

func TestResultStatsPopulated(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	res := mustExec(t, db, `SELECT COUNT(*) FROM sales WHERE ts > 10500`)
	if res.Stats.RowsScanned == 0 || res.Stats.ExecTime == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestDistAllBaseTableNotDuplicated(t *testing.T) {
	// Scanning a DISTSTYLE ALL table directly must return logical rows
	// once, not once per node copy.
	db := openDB(t, exec.Compiled)
	mustExec(t, db, `CREATE TABLE dims (id BIGINT, name VARCHAR(8)) DISTSTYLE ALL`)
	mustExec(t, db, `INSERT INTO dims VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM dims`)
	if res.Rows[0][0].I != 3 {
		t.Errorf("COUNT over ALL table = %v, want 3", res.Rows[0][0])
	}
	res = mustExec(t, db, `SELECT id FROM dims ORDER BY id`)
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Joining FROM the ALL table also counts each row once.
	mustExec(t, db, `CREATE TABLE facts (id BIGINT, v BIGINT) DISTSTYLE EVEN`)
	mustExec(t, db, `INSERT INTO facts VALUES (1, 10), (1, 20), (2, 30)`)
	res = mustExec(t, db, `SELECT COUNT(*) FROM dims d JOIN facts f ON d.id = f.id`)
	if res.Rows[0][0].I != 3 {
		t.Errorf("join from ALL base = %v, want 3", res.Rows[0][0])
	}
}

func TestAutoMaintainVacuumsDegradedTables(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	// Create many small sorted runs: each INSERT is its own run.
	for i := 0; i < 6; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO sales VALUES (%d, 1, 1, 'us')`, 20000+i))
	}
	stats, _ := db.Catalog().Stats(mustTable(t, db, "sales"))
	if stats.UnsortedRows == 0 {
		t.Fatal("inserts should count as unsorted")
	}
	report, err := db.AutoMaintain(DefaultMaintenancePolicy())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range report.Vacuumed {
		if name == "sales" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sales not vacuumed: %+v", report)
	}
	stats, _ = db.Catalog().Stats(mustTable(t, db, "sales"))
	if stats.UnsortedRows != 0 {
		t.Errorf("unsorted after auto-vacuum = %d", stats.UnsortedRows)
	}
	res := mustExec(t, db, `SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].I != 1006 {
		t.Errorf("rows after auto-vacuum = %v", res.Rows[0][0])
	}
	// A second pass has nothing to do.
	report, err = db.AutoMaintain(DefaultMaintenancePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Vacuumed) != 0 {
		t.Errorf("idempotence broken: %+v", report)
	}
}

func TestAutoMaintainDefersUnderLoad(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	tx := db.Txns().Begin()
	report, err := db.AutoMaintain(DefaultMaintenancePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Deferred {
		t.Error("maintenance should defer while transactions are active")
	}
	db.Txns().Abort(tx)
	report, _ = db.AutoMaintain(DefaultMaintenancePolicy())
	if report.Deferred {
		t.Error("maintenance still deferred after load cleared")
	}
}

func TestAutoMaintainAnalyzesStatlessTables(t *testing.T) {
	db := openDB(t, exec.Compiled)
	mustExec(t, db, `CREATE TABLE t (a BIGINT)`)
	// Load with STATUPDATE OFF so stats stay empty.
	db.cfg.DataStore.Put("t/a.csv", []byte("1\n2\n3\n"))
	mustExec(t, db, `COPY t FROM 't/' STATUPDATE OFF`)
	stats, _ := db.Catalog().Stats(mustTable(t, db, "t"))
	if stats.Rows != 0 {
		t.Fatal("precondition: stats should be empty")
	}
	report, err := db.AutoMaintain(DefaultMaintenancePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Analyzed) != 1 || report.Analyzed[0] != "t" {
		t.Fatalf("report = %+v", report)
	}
	stats, _ = db.Catalog().Stats(mustTable(t, db, "t"))
	if stats.Rows != 3 {
		t.Errorf("analyzed rows = %d", stats.Rows)
	}
}

func TestVacuumDoesNotDisturbOlderSnapshots(t *testing.T) {
	// Hold a transaction (old snapshot) across a VACUUM: the superseded
	// segments must survive until the transaction finishes.
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	mustExec(t, db, `INSERT INTO sales VALUES (5, 1, 1, 'us')`)

	held := db.Txns().Begin()
	mustExec(t, db, `VACUUM sales`)
	// The old segments are retained for the held snapshot...
	tableID := mustTable(t, db, "sales")
	oldSegs := db.Cluster().VisibleSegments(0, tableID, held.Snapshot)
	newSegs := db.Cluster().VisibleSegments(0, tableID, db.Txns().CurrentXid())
	if len(oldSegs) == 0 {
		t.Fatal("held snapshot lost its segments during VACUUM")
	}
	if len(newSegs) > 1 {
		t.Fatalf("post-vacuum snapshot sees %d segments on slice 0", len(newSegs))
	}
	db.Txns().Abort(held)
	// After the holder finishes, the next vacuum pass may prune; data
	// remains correct either way.
	res := mustExec(t, db, `SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].I != 1001 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestLeaderLocalSelect(t *testing.T) {
	db := openDB(t, exec.Compiled)
	res := mustExec(t, db, `SELECT 1, 2 + 3 AS five, UPPER('hi') AS greeting`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[0].I != 1 || r[1].I != 5 || r[2].S != "HI" {
		t.Errorf("row = %v", r)
	}
	if res.Schema.Columns[1].Name != "five" {
		t.Errorf("schema = %+v", res.Schema)
	}
	if _, err := db.Execute(`SELECT x`); err == nil {
		t.Error("column ref without FROM accepted")
	}
	if _, err := db.Execute(`SELECT * `); err == nil {
		t.Error("star without FROM accepted")
	}
	res = mustExec(t, db, `SELECT 1 LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Errorf("LIMIT 0 returned rows")
	}
}

func TestEndToEndDateFunctions(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		mustExec(t, db, `CREATE TABLE ev (day DATE, at TIMESTAMP)`)
		mustExec(t, db, `INSERT INTO ev VALUES
			('2014-03-15', '2014-03-15 13:45:30'),
			('2014-03-20', '2014-03-20 08:00:00'),
			('2015-01-02', '2015-01-02 23:59:59')`)
		res := mustExec(t, db, `
			SELECT YEAR(day) AS y, MONTH(day) AS m, COUNT(*)
			FROM ev GROUP BY YEAR(day), MONTH(day) ORDER BY y, m`)
		if len(res.Rows) != 2 {
			t.Fatalf("rows = %v", res.Rows)
		}
		if res.Rows[0][0].I != 2014 || res.Rows[0][1].I != 3 || res.Rows[0][2].I != 2 {
			t.Errorf("group 2014-03 = %v", res.Rows[0])
		}
		res = mustExec(t, db, `SELECT DATE_TRUNC('month', at) FROM ev WHERE YEAR(at) = 2015`)
		if len(res.Rows) != 1 || !strings.HasPrefix(res.Rows[0][0].String(), "2015-01-01 00:00:00") {
			t.Errorf("date_trunc = %v", res.Rows)
		}
		res = mustExec(t, db, `SELECT COUNT(*) FROM ev WHERE day BETWEEN DATE '2014-01-01' AND DATE '2014-12-31'`)
		if res.Rows[0][0].I != 2 {
			t.Errorf("date range count = %v", res.Rows[0][0])
		}
		res = mustExec(t, db, `SELECT COALESCE(NULL, day) AS d FROM ev ORDER BY d LIMIT 1`)
		if res.Rows[0][0].String() != "2014-03-15" {
			t.Errorf("coalesce = %v", res.Rows[0][0])
		}
	})
}

func TestHavingBetweenAndScalarOverGroups(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `
			SELECT UPPER(region) AS r, COUNT(*) AS n
			FROM sales GROUP BY region
			HAVING COUNT(*) BETWEEN 1 AND 10000 AND UPPER(region) LIKE 'E%'
			ORDER BY r`)
		if len(res.Rows) != 1 || res.Rows[0][0].S != "EU" || res.Rows[0][1].I != 500 {
			t.Fatalf("rows = %v", res.Rows)
		}
		res = mustExec(t, db, `
			SELECT region FROM sales GROUP BY region
			HAVING COUNT(*) IN (500, 501) ORDER BY region`)
		if len(res.Rows) != 2 {
			t.Fatalf("IN over aggregate = %v", res.Rows)
		}
	})
}
