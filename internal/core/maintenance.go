package core

import (
	"fmt"

	"redshift/internal/sql"
)

// MaintenanceReport says what one auto-maintenance pass did.
type MaintenanceReport struct {
	// Vacuumed tables had their sorted runs merged (unsorted fraction or
	// run count over threshold).
	Vacuumed []string
	// Analyzed tables had statistics refreshed (no stats despite data).
	Analyzed []string
	// Deferred is non-empty when the pass backed off because the cluster
	// was busy — maintenance runs "when load is otherwise light" (§3.2).
	Deferred bool
}

// MaintenancePolicy tunes the self-correction thresholds.
type MaintenancePolicy struct {
	// UnsortedFraction triggers VACUUM when unsorted rows exceed this
	// share of the table (default 0.1).
	UnsortedFraction float64
	// MaxRunsPerSlice triggers VACUUM when any slice holds more sorted
	// runs than this (default 4) — many small runs degrade zone-map
	// pruning even when each is individually sorted.
	MaxRunsPerSlice int
	// OnlyWhenIdle defers the pass while transactions are in flight.
	OnlyWhenIdle bool
}

// DefaultMaintenancePolicy returns the paper-shaped defaults.
func DefaultMaintenancePolicy() MaintenancePolicy {
	return MaintenancePolicy{UnsortedFraction: 0.1, MaxRunsPerSlice: 4, OnlyWhenIdle: true}
}

// AutoMaintain is §3.2's future-work made real: it inspects every table's
// statistics and physical layout, VACUUMs tables whose access performance
// is degrading (unsorted fraction or run count over threshold), and
// refreshes missing statistics — no user-initiated administration.
func (db *Database) AutoMaintain(policy MaintenancePolicy) (MaintenanceReport, error) {
	var report MaintenanceReport
	if policy.OnlyWhenIdle && db.txm.ActiveCount() > 0 {
		report.Deferred = true
		return report, nil
	}
	if policy.UnsortedFraction <= 0 {
		policy.UnsortedFraction = 0.1
	}
	if policy.MaxRunsPerSlice <= 0 {
		policy.MaxRunsPerSlice = 4
	}
	for _, def := range db.cat.List() {
		stats, err := db.cat.Stats(def.ID)
		if err != nil {
			return report, err
		}
		needsVacuum := false
		if stats.Rows > 0 && float64(stats.UnsortedRows)/float64(stats.Rows) > policy.UnsortedFraction {
			needsVacuum = true
		}
		if !needsVacuum {
			snapshot := db.txm.CurrentXid()
			for sl := 0; sl < db.cl.NumSlices(); sl++ {
				if len(db.cl.VisibleSegments(sl, def.ID, snapshot)) > policy.MaxRunsPerSlice {
					needsVacuum = true
					break
				}
			}
		}
		if needsVacuum {
			if err := db.vacuumTable(def); err != nil {
				return report, fmt.Errorf("core: auto-vacuum %s: %w", def.Name, err)
			}
			report.Vacuumed = append(report.Vacuumed, def.Name)
		}
		// Missing statistics despite visible data → ANALYZE. (COPY keeps
		// stats fresh, so this catches tables populated with STATUPDATE
		// OFF or restored from old backups.)
		if stats.Rows == 0 && db.tableHasData(def.ID) {
			if _, err := db.runAnalyze(&sql.Analyze{Table: def.Name}); err != nil {
				return report, fmt.Errorf("core: auto-analyze %s: %w", def.Name, err)
			}
			report.Analyzed = append(report.Analyzed, def.Name)
		}
	}
	return report, nil
}

func (db *Database) tableHasData(id int64) bool {
	snapshot := db.txm.CurrentXid()
	for sl := 0; sl < db.cl.NumSlices(); sl++ {
		if len(db.cl.VisibleSegments(sl, id, snapshot)) > 0 {
			return true
		}
	}
	return false
}
