package core

import (
	"context"
	"strings"

	"redshift/internal/catalog"
	"redshift/internal/compress"
	"redshift/internal/exec"
	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// System tables are Redshift's stl_ (log) and stv_ (snapshot) views: they
// answer "what has this cluster been doing" with the same SQL surface as
// user tables, but execute entirely at the leader against materialized
// in-memory rows. They live in a transient per-query catalog, never in the
// user catalog, so ANALYZE/VACUUM/resize/backup sweeps don't see them.

// systemTable pairs a table definition with its row materializer.
type systemTable struct {
	name string
	cols []catalog.ColumnDef
	rows func(db *Database) []types.Row
}

var systemTables = []systemTable{
	{
		name: "stl_query",
		cols: []catalog.ColumnDef{
			{Name: "query", Type: types.Int64},
			{Name: "querytxt", Type: types.String},
			{Name: "starttime", Type: types.Timestamp},
			{Name: "endtime", Type: types.Timestamp},
			{Name: "queue_ms", Type: types.Float64},
			{Name: "plan_ms", Type: types.Float64},
			{Name: "exec_ms", Type: types.Float64},
			{Name: "rows", Type: types.Int64},
			{Name: "blocks_read", Type: types.Int64},
			{Name: "blocks_skipped", Type: types.Int64},
			{Name: "net_bytes", Type: types.Int64},
			{Name: "aborted", Type: types.Int64},
			{Name: "state", Type: types.String},
			{Name: "mem_peak", Type: types.Int64},
			{Name: "spill_bytes", Type: types.Int64},
			{Name: "queue", Type: types.String},
		},
		rows: func(db *Database) []types.Row {
			recs := db.qlog.Records()
			rows := make([]types.Row, 0, len(recs))
			for _, r := range recs {
				aborted := int64(0)
				if r.Error != "" {
					aborted = 1
				}
				state := r.State
				if state == "" {
					if aborted == 1 {
						state = "error"
					} else {
						state = "success"
					}
				}
				rows = append(rows, types.Row{
					types.NewInt(r.ID),
					types.NewString(r.SQL),
					types.NewTimestamp(r.Start.UnixMicro()),
					types.NewTimestamp(r.End.UnixMicro()),
					types.NewFloat(float64(r.QueueWait.Microseconds()) / 1e3),
					types.NewFloat(float64(r.PlanTime.Microseconds()) / 1e3),
					types.NewFloat(float64(r.ExecTime.Microseconds()) / 1e3),
					types.NewInt(r.Rows),
					types.NewInt(r.BlocksRead),
					types.NewInt(r.BlocksSkipped),
					types.NewInt(r.NetBytes),
					types.NewInt(aborted),
					types.NewString(state),
					types.NewInt(r.MemPeak),
					types.NewInt(r.SpillBytes),
					types.NewString(r.Queue),
				})
			}
			return rows
		},
	},
	{
		// Queue configuration plus cumulative service counters — the
		// "service class" view. Live occupancy is stv_wlm_queue_state.
		name: "stv_wlm_queues",
		cols: []catalog.ColumnDef{
			{Name: "queue", Type: types.String},
			{Name: "slots", Type: types.Int64},
			{Name: "priority", Type: types.Int64},
			{Name: "mem_per_slot", Type: types.Int64},
			{Name: "short_query_rows", Type: types.Int64},
			{Name: "timeout_ms", Type: types.Int64},
			{Name: "total_queries", Type: types.Int64},
			{Name: "total_wait_ms", Type: types.Float64},
			{Name: "timeouts", Type: types.Int64},
			{Name: "evictions", Type: types.Int64},
			{Name: "peak_active", Type: types.Int64},
			{Name: "peak_queued", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			var rows []types.Row
			for _, q := range db.wlm.QueueStats() {
				rows = append(rows, types.Row{
					types.NewString(q.Name),
					types.NewInt(int64(q.Slots)),
					types.NewInt(int64(q.Priority)),
					types.NewInt(q.MemPerSlot),
					types.NewInt(q.MaxEstRows),
					types.NewInt(q.Timeout.Milliseconds()),
					types.NewInt(q.TotalRun),
					types.NewFloat(float64(q.TotalWait.Microseconds()) / 1e3),
					types.NewInt(q.Timeouts),
					types.NewInt(q.Evictions),
					types.NewInt(int64(q.PeakActive)),
					types.NewInt(int64(q.PeakQueued)),
				})
			}
			return rows
		},
	},
	{
		// Live per-queue occupancy. System selects bypass WLM admission, so
		// this stays queryable while every queue is saturated — the whole
		// point of a queue-depth monitoring view.
		name: "stv_wlm_queue_state",
		cols: []catalog.ColumnDef{
			{Name: "queue", Type: types.String},
			{Name: "active", Type: types.Int64},
			{Name: "queued", Type: types.Int64},
			{Name: "oldest_wait_ms", Type: types.Float64},
		},
		rows: func(db *Database) []types.Row {
			var rows []types.Row
			for _, q := range db.wlm.QueueStats() {
				rows = append(rows, types.Row{
					types.NewString(q.Name),
					types.NewInt(int64(q.Active)),
					types.NewInt(int64(q.Queued)),
					types.NewFloat(float64(q.OldestWait.Microseconds()) / 1e3),
				})
			}
			return rows
		},
	},
	{
		name: "stv_slice_stats",
		cols: []catalog.ColumnDef{
			{Name: "slice", Type: types.Int64},
			{Name: "node", Type: types.Int64},
			{Name: "scans", Type: types.Int64},
			{Name: "blocks_read", Type: types.Int64},
			{Name: "blocks_skipped", Type: types.Int64},
			{Name: "rows_read", Type: types.Int64},
			{Name: "bytes_read", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			rows := make([]types.Row, 0, len(db.sliceStats))
			for sl := range db.sliceStats {
				st := &db.sliceStats[sl]
				rows = append(rows, types.Row{
					types.NewInt(int64(sl)),
					types.NewInt(int64(db.cl.Slice(sl).Node.ID)),
					types.NewInt(st.scans.Load()),
					types.NewInt(st.blocksRead.Load()),
					types.NewInt(st.blocksSkipped.Load()),
					types.NewInt(st.rowsRead.Load()),
					types.NewInt(st.bytesRead.Load()),
				})
			}
			return rows
		},
	},
	{
		name: "stv_exec_workers",
		cols: []catalog.ColumnDef{
			{Name: "query", Type: types.Int64},
			{Name: "dop", Type: types.Int64},
			{Name: "workers", Type: types.Int64},
			{Name: "morsels_dispatched", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			snap := db.queryExecSnapshot()
			rows := make([]types.Row, 0, len(snap))
			for _, q := range snap {
				rows = append(rows, types.Row{
					types.NewInt(q.id),
					types.NewInt(q.dop),
					types.NewInt(q.workers),
					types.NewInt(q.morsels),
				})
			}
			return rows
		},
	},
	{
		name: "stv_inflight",
		cols: []catalog.ColumnDef{
			{Name: "query", Type: types.Int64},
			{Name: "querytxt", Type: types.String},
			{Name: "starttime", Type: types.Timestamp},
		},
		rows: func(db *Database) []types.Row {
			rqs := db.runningQueries()
			rows := make([]types.Row, 0, len(rqs))
			for _, rq := range rqs {
				rows = append(rows, types.Row{
					types.NewInt(rq.id),
					types.NewString(rq.sql),
					types.NewTimestamp(rq.start.UnixMicro()),
				})
			}
			return rows
		},
	},
	{
		name: "stv_query_memory",
		cols: []catalog.ColumnDef{
			{Name: "query", Type: types.Int64},
			{Name: "grant_bytes", Type: types.Int64},
			{Name: "used_bytes", Type: types.Int64},
			{Name: "peak_bytes", Type: types.Int64},
			{Name: "spill_bytes", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			snap := db.queryMemSnapshot()
			rows := make([]types.Row, 0, len(snap))
			for _, q := range snap {
				rows = append(rows, types.Row{
					types.NewInt(q.id),
					types.NewInt(q.grant),
					types.NewInt(q.used),
					types.NewInt(q.peak),
					types.NewInt(q.spilled),
				})
			}
			return rows
		},
	},
	{
		name: "stv_faults",
		cols: []catalog.ColumnDef{
			{Name: "site", Type: types.Int64},
			{Name: "name", Type: types.String},
			{Name: "prob", Type: types.Float64},
			{Name: "hits", Type: types.Int64},
			{Name: "injected", Type: types.Int64},
			{Name: "delayed", Type: types.Int64},
			{Name: "enabled", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			if db.inj == nil {
				return nil
			}
			enabled := int64(0)
			if db.inj.Enabled() {
				enabled = 1
			}
			snap := db.inj.Snapshot()
			rows := make([]types.Row, 0, len(snap))
			for i, s := range snap {
				rows = append(rows, types.Row{
					types.NewInt(int64(i)),
					types.NewString(s.Site),
					types.NewFloat(s.Rule.Prob),
					types.NewInt(s.Hits),
					types.NewInt(s.Injected),
					types.NewInt(s.Delayed),
					types.NewInt(enabled),
				})
			}
			return rows
		},
	},
	{
		name: "stv_node_health",
		cols: []catalog.ColumnDef{
			{Name: "node", Type: types.Int64},
			{Name: "consecutive_failures", Type: types.Int64},
			{Name: "quarantined", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			snap := db.cl.Health().Snapshot(db.cl.NumNodes())
			rows := make([]types.Row, 0, len(snap))
			for _, nh := range snap {
				q := int64(0)
				if nh.Quarantined {
					q = 1
				}
				rows = append(rows, types.Row{
					types.NewInt(int64(nh.Node)),
					types.NewInt(int64(nh.Consecutive)),
					types.NewInt(q),
				})
			}
			return rows
		},
	},
	{
		name: "stv_block_cache",
		cols: []catalog.ColumnDef{
			{Name: "hits", Type: types.Int64},
			{Name: "misses", Type: types.Int64},
			{Name: "evictions", Type: types.Int64},
			{Name: "bytes_cached", Type: types.Int64},
			{Name: "budget_bytes", Type: types.Int64},
			{Name: "entries", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			cs := db.cache.Stats()
			return []types.Row{{
				types.NewInt(cs.Hits),
				types.NewInt(cs.Misses),
				types.NewInt(cs.Evictions),
				types.NewInt(cs.Bytes),
				types.NewInt(cs.Budget),
				types.NewInt(cs.Entries),
			}}
		},
	},
	{
		name: "stv_plan_cache",
		cols: []catalog.ColumnDef{
			{Name: "hits", Type: types.Int64},
			{Name: "misses", Type: types.Int64},
			{Name: "evictions", Type: types.Int64},
			{Name: "invalidations", Type: types.Int64},
			{Name: "entries", Type: types.Int64},
			{Name: "budget_entries", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			cs := db.planCache.Stats()
			return []types.Row{{
				types.NewInt(cs.Hits),
				types.NewInt(cs.Misses),
				types.NewInt(cs.Evictions),
				types.NewInt(cs.Invalidations),
				types.NewInt(cs.Entries),
				types.NewInt(cs.Budget),
			}}
		},
	},
	{
		name: "stv_result_cache",
		cols: []catalog.ColumnDef{
			{Name: "hits", Type: types.Int64},
			{Name: "misses", Type: types.Int64},
			{Name: "evictions", Type: types.Int64},
			{Name: "invalidations", Type: types.Int64},
			{Name: "entries", Type: types.Int64},
			{Name: "bytes_cached", Type: types.Int64},
			{Name: "budget_bytes", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			cs := db.resultCache.Stats()
			return []types.Row{{
				types.NewInt(cs.Hits),
				types.NewInt(cs.Misses),
				types.NewInt(cs.Evictions),
				types.NewInt(cs.Invalidations),
				types.NewInt(cs.Entries),
				types.NewInt(cs.Used),
				types.NewInt(cs.Budget),
			}}
		},
	},
	{
		name: "stv_resize",
		cols: []catalog.ColumnDef{
			{Name: "active", Type: types.Int64},
			{Name: "phase", Type: types.String},
			{Name: "from_nodes", Type: types.Int64},
			{Name: "to_nodes", Type: types.Int64},
			{Name: "tables_total", Type: types.Int64},
			{Name: "tables_copied", Type: types.Int64},
			{Name: "rows_copied", Type: types.Int64},
			{Name: "catchup_rounds", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			p := db.ResizeProgress()
			if p.Phase == "" {
				return nil
			}
			active := int64(0)
			if p.Active {
				active = 1
			}
			return []types.Row{{
				types.NewInt(active),
				types.NewString(p.Phase),
				types.NewInt(int64(p.FromNodes)),
				types.NewInt(int64(p.ToNodes)),
				types.NewInt(p.TablesTotal),
				types.NewInt(p.TablesCopied),
				types.NewInt(p.RowsCopied),
				types.NewInt(p.CatchupRounds),
			}}
		},
	},
	{
		name: "stv_burst_clusters",
		cols: []catalog.ColumnDef{
			{Name: "burst_cluster", Type: types.Int64},
			{Name: "state", Type: types.String},
			{Name: "backup_id", Type: types.String},
			{Name: "snapshot_xid", Type: types.Int64},
			{Name: "routed_queries", Type: types.Int64},
			{Name: "fallbacks", Type: types.Int64},
		},
		rows: func(db *Database) []types.Row {
			infos := db.burstInfoRows()
			rows := make([]types.Row, 0, len(infos))
			for _, b := range infos {
				rows = append(rows, types.Row{
					types.NewInt(b.ID),
					types.NewString(b.State),
					types.NewString(b.BackupID),
					types.NewInt(b.SnapshotXid),
					types.NewInt(b.RoutedQueries),
					types.NewInt(b.Fallbacks),
				})
			}
			return rows
		},
	},
}

// isSystemTable reports whether name is a leader-resolved system table.
func isSystemTable(name string) bool {
	n := strings.ToLower(name)
	for _, st := range systemTables {
		if st.name == n {
			return true
		}
	}
	return false
}

// sysCatalog builds the transient catalog the system tables live in, with
// each table's rows materialized. Both system SELECTs and system EXPLAINs
// must plan against this catalog — the persistent catalog has no stl_/stv_
// definitions.
func (db *Database) sysCatalog() (*catalog.Catalog, map[*catalog.TableDef][]types.Row, error) {
	cat := catalog.New()
	sys := map[*catalog.TableDef][]types.Row{}
	for _, st := range systemTables {
		def := &catalog.TableDef{Name: st.name, DistStyle: catalog.DistEven, DistKeyCol: -1}
		for _, c := range st.cols {
			c.Encoding = compress.Raw
			def.Columns = append(def.Columns, c)
		}
		if err := cat.Create(def); err != nil {
			return nil, nil, err
		}
		sys[def] = st.rows(db)
	}
	return cat, sys, nil
}

// runSystemSelect executes a SELECT over system tables: the full plan and
// execution pipeline runs, but against a transient catalog of materialized
// rows, on a single leader "slice". System queries are not themselves
// logged into stl_query (monitoring shouldn't fill the log it reads).
func (db *Database) runSystemSelect(ctx context.Context, s *sql.Select) (*Result, error) {
	cat, sys, err := db.sysCatalog()
	if err != nil {
		return nil, err
	}
	p, err := plan.BuildWith(cat, s, db.cfg.Plan)
	if err != nil {
		return nil, err
	}
	q := &queryRun{
		db:       db,
		p:        p,
		mode:     db.cfg.Mode,
		snapshot: db.txm.CurrentXid(),
		scans:    &exec.ScanStats{},
		sys:      sys,
	}
	final, err := q.execute(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{Schema: p.Schema()}
	for i := 0; i < final.N; i++ {
		res.Rows = append(res.Rows, final.Row(i))
	}
	return res, nil
}
