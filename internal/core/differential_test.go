package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"redshift/internal/cluster"
	"redshift/internal/exec"
	"redshift/internal/s3sim"
	"redshift/internal/types"
)

// diffRow is the oracle's view of the test table.
type diffRow struct {
	a, b  int64
	f     float64
	s     string
	bNull bool
	fNull bool
}

// diffFixture builds identical compiled and interpreted databases over the
// same generated data, plus the raw rows for the Go oracle.
func diffFixture(t *testing.T, seed int64, n int) (*Database, *Database, []diffRow) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([]diffRow, n)
	var csv strings.Builder
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := range rows {
		r := diffRow{
			a: rng.Int63n(200) - 100,
			b: rng.Int63n(50),
			f: float64(rng.Int63n(1000)) / 8,
			s: words[rng.Intn(len(words))],
		}
		r.bNull = rng.Intn(11) == 0
		r.fNull = rng.Intn(13) == 0
		rows[i] = r
		bs := fmt.Sprintf("%d", r.b)
		if r.bNull {
			bs = ""
		}
		fs := fmt.Sprintf("%g", r.f)
		if r.fNull {
			fs = ""
		}
		fmt.Fprintf(&csv, "%d|%s|%s|%s\n", r.a, bs, fs, r.s)
	}
	open := func(mode exec.Mode) *Database {
		db, err := Open(Config{
			Cluster:   cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 64},
			Mode:      mode,
			DataStore: s3sim.New(),
		})
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, db, `CREATE TABLE d (a BIGINT NOT NULL, b BIGINT, f DOUBLE PRECISION, s VARCHAR(16))
			DISTSTYLE KEY DISTKEY(a) COMPOUND SORTKEY(a)`)
		db.cfg.DataStore.Put("d/a.csv", []byte(csv.String()))
		mustExec(t, db, `COPY d FROM 'd/'`)
		return db
	}
	return open(exec.Compiled), open(exec.Interpreted), rows
}

// randPredicate builds a random boolean expression over the table.
func randPredicate(rng *rand.Rand, depth int) string {
	if depth > 0 && rng.Intn(2) == 0 {
		op := "AND"
		if rng.Intn(2) == 0 {
			op = "OR"
		}
		return fmt.Sprintf("(%s %s %s)", randPredicate(rng, depth-1), op, randPredicate(rng, depth-1))
	}
	switch rng.Intn(7) {
	case 0:
		return fmt.Sprintf("a %s %d", randCmp(rng), rng.Int63n(200)-100)
	case 1:
		return fmt.Sprintf("b %s %d", randCmp(rng), rng.Int63n(50))
	case 2:
		return fmt.Sprintf("f %s %g", randCmp(rng), float64(rng.Int63n(1000))/8)
	case 3:
		return fmt.Sprintf("s = '%s'", []string{"alpha", "beta", "gamma", "zzz"}[rng.Intn(4)])
	case 4:
		return fmt.Sprintf("b IN (%d, %d, %d)", rng.Int63n(50), rng.Int63n(50), rng.Int63n(50))
	case 5:
		lo := rng.Int63n(150) - 100
		return fmt.Sprintf("a BETWEEN %d AND %d", lo, lo+rng.Int63n(80))
	default:
		col := []string{"b", "f"}[rng.Intn(2)]
		neg := ""
		if rng.Intn(2) == 0 {
			neg = " NOT"
		}
		return fmt.Sprintf("%s IS%s NULL", col, neg)
	}
}

func randCmp(rng *rand.Rand) string {
	return []string{"=", "<>", "<", "<=", ">", ">="}[rng.Intn(6)]
}

// canonical renders a result set as a sorted multiset for comparison.
func canonical(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for c, v := range r {
			if !v.Null && v.T == types.Float64 {
				parts[c] = fmt.Sprintf("%.6f", v.F) // normalize float rendering
			} else {
				parts[c] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestRandomDifferentialEnginesAgree cross-checks the compiled and
// interpreted engines on generated queries: any disagreement is a bug in
// one of them.
func TestRandomDifferentialEnginesAgree(t *testing.T) {
	compiled, interpreted, _ := diffFixture(t, 20150531, 3000)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		pred := randPredicate(rng, 2)
		var q string
		switch rng.Intn(3) {
		case 0:
			q = fmt.Sprintf(`SELECT a, b, f, s FROM d WHERE %s`, pred)
		case 1:
			q = fmt.Sprintf(`SELECT s, COUNT(*), SUM(b), AVG(f), MIN(a), MAX(a) FROM d WHERE %s GROUP BY s`, pred)
		default:
			q = fmt.Sprintf(`SELECT a + b AS x, f * 2 AS y FROM d WHERE %s`, pred)
		}
		rc, err1 := compiled.Execute(q)
		ri, err2 := interpreted.Execute(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %d error disagreement:\n%s\ncompiled: %v\ninterpreted: %v", i, q, err1, err2)
		}
		if err1 != nil {
			continue // both failed identically (e.g. type error) — fine
		}
		a, b := canonical(rc), canonical(ri)
		if len(a) != len(b) {
			t.Fatalf("query %d row count disagreement (%d vs %d):\n%s", i, len(a), len(b), q)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d row %d disagreement:\n%s\ncompiled:    %s\ninterpreted: %s", i, j, q, a[j], b[j])
			}
		}
	}
}

// TestRandomDifferentialOracle checks filtered aggregates against a direct
// Go computation over the generated rows — an engine-independent oracle.
func TestRandomDifferentialOracle(t *testing.T) {
	db, _, rows := diffFixture(t, 424242, 2500)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		lo := rng.Int63n(150) - 100
		hi := lo + rng.Int63n(100)
		word := []string{"alpha", "beta", "gamma"}[rng.Intn(3)]

		q := fmt.Sprintf(`SELECT COUNT(*), COUNT(b), SUM(b), MIN(f), MAX(f)
			FROM d WHERE a BETWEEN %d AND %d AND s <> '%s'`, lo, hi, word)
		res := mustExec(t, db, q)

		var count, countB, sumB int64
		var minF, maxF float64
		var seenF, seenB bool
		for _, r := range rows {
			if r.a < lo || r.a > hi || r.s == word {
				continue
			}
			count++
			if !r.bNull {
				countB++
				sumB += r.b
				seenB = true
			}
			if !r.fNull {
				if !seenF || r.f < minF {
					minF = r.f
				}
				if !seenF || r.f > maxF {
					maxF = r.f
				}
				seenF = true
			}
		}
		got := res.Rows[0]
		if got[0].I != count {
			t.Fatalf("query %d COUNT(*): engine %d, oracle %d\n%s", i, got[0].I, count, q)
		}
		if got[1].I != countB {
			t.Fatalf("query %d COUNT(b): engine %d, oracle %d", i, got[1].I, countB)
		}
		if seenB && got[2].I != sumB {
			t.Fatalf("query %d SUM(b): engine %d, oracle %d", i, got[2].I, sumB)
		}
		if !seenB && !got[2].Null {
			t.Fatalf("query %d SUM(b) should be NULL", i)
		}
		if seenF {
			if got[3].F != minF || got[4].F != maxF {
				t.Fatalf("query %d MIN/MAX(f): engine %v/%v, oracle %v/%v", i, got[3].F, got[4].F, minF, maxF)
			}
		} else if !got[3].Null || !got[4].Null {
			t.Fatalf("query %d MIN/MAX(f) should be NULL", i)
		}
	}
}
