// Package core is the data plane of §2: the leader node's SQL surface over
// a cluster of compute nodes. It glues the substrates together — parser and
// planner at the leader, per-slice compiled execution at the compute nodes,
// distribution-aware joins, two-phase aggregation, COPY loading,
// snapshot-isolated commits, VACUUM and ANALYZE — behind one Database type
// with a single Execute(sql) entry point.
package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"redshift/internal/catalog"
	"redshift/internal/cluster"
	"redshift/internal/compress"
	"redshift/internal/exec"
	"redshift/internal/faults"
	"redshift/internal/load"
	"redshift/internal/plan"
	"redshift/internal/s3sim"
	"redshift/internal/sql"
	"redshift/internal/storage"
	"redshift/internal/telemetry"
	"redshift/internal/txn"
	"redshift/internal/types"
)

// Config sizes and tunes a database.
type Config struct {
	// Cluster is the data plane topology.
	Cluster cluster.Config
	// Mode selects the execution engine; Compiled unless overridden.
	Mode exec.Mode
	// Plan tunes the optimizer; zero value uses defaults.
	Plan plan.Options
	// DataStore is the object store COPY reads from (the "data lake").
	// Optional; COPY fails without it.
	DataStore *s3sim.Store
	// QuerySlots bounds concurrent SELECTs (the WLM queue); 0 means
	// unlimited. Ignored when WLMQueues is set.
	QuerySlots int
	// WLMQueues configures named WLM queues (slots, memory shares,
	// priorities, a short-query fast lane, wait timeouts). Empty means one
	// default queue of QuerySlots.
	WLMQueues []QueueSpec
	// Metrics is the shared telemetry registry; a private one is created
	// when nil, so emission code never nil-checks. Passing one in lets the
	// warehouse layer keep fleet counters across resize and restore.
	Metrics *telemetry.Registry
	// QueryLogSize caps the stl_query ring buffer (default 1024).
	QueryLogSize int
	// BlockCacheBytes budgets the node-level decoded-block buffer cache.
	// 0 means the default (64 MiB); negative disables the cache.
	BlockCacheBytes int64
	// Faults is the fault injector threaded through the storage, cluster
	// and exchange paths; nil leaves every site inert.
	Faults *faults.Injector
	// StatementTimeout bounds every SELECT's wall-clock time; 0 disables.
	// SET statement_timeout overrides it at runtime.
	StatementTimeout time.Duration
	// WLMSlotMemBytes is the execution-memory pool divided evenly across
	// WLM slots; each SELECT gets pool/slots as its grant and spills to
	// disk beyond it. 0 disables memory governance. SET work_mem overrides
	// the per-query grant at runtime.
	WLMSlotMemBytes int64
	// SpillDir is where queries create per-query scratch directories when
	// they exceed their grant; empty uses the OS temp dir.
	SpillDir string
	// PlanCacheEntries bounds the shared plan cache (entries, not bytes —
	// plans are small and uniform). 0 means the default (256); negative
	// disables plan caching.
	PlanCacheEntries int
	// ResultCacheBytes budgets the shared result cache. 0 means the
	// default (32 MiB); negative disables result caching.
	ResultCacheBytes int64
	// MaxParallelWorkers caps the intra-slice morsel parallelism of a
	// single query. 0 means runtime.GOMAXPROCS(0); negative forces serial
	// execution (dop=1). SET max_parallel_workers overrides per session.
	MaxParallelWorkers int
}

// Database is one warehouse cluster's SQL engine.
type Database struct {
	cfg Config
	cat *catalog.Catalog
	cl  *cluster.Cluster
	txm *txn.Manager
	wlm *WLM

	// metrics is the telemetry registry every layer emits into; qlog is
	// the ring buffer behind stl_query; sliceStats (one per slice) backs
	// stv_slice_stats.
	metrics    *telemetry.Registry
	qlog       *telemetry.QueryLog
	sliceStats []sliceStat

	// cache holds decoded column vectors across queries; nil when the
	// cache is disabled (every method on it is nil-receiver safe).
	cache *storage.BlockCache

	// ddlMu serializes DDL and utility statements.
	ddlMu sync.Mutex

	// writeState rejects writes (see elasticity.go): writable, read-only
	// during a resize cutover (retryable rejection), or decommissioned after
	// the endpoint moved (fatal rejection). writeGate drains in-flight write
	// statements when QuiesceWrites opens the cutover window.
	writeState atomic.Int32
	writeGate  sync.RWMutex

	// resizeProgress and burstInfo back stv_resize / stv_burst_clusters;
	// both are published by the control plane (see elasticity.go).
	resizeProgress atomic.Pointer[ResizeProgress]
	burstInfo      atomic.Pointer[func() []BurstClusterInfo]

	// inj is the shared fault injector (nil-receiver safe, may be nil).
	inj *faults.Injector

	// planCache and resultCache are the serving-path caches, shared across
	// sessions and keyed on normalized SQL; entries carry catalog/table
	// versions for lazy invalidation. Either may be nil (disabled).
	planCache   *lruCache
	resultCache *lruCache

	// defaultSession backs the Database-level Execute entry points, so
	// embedded users and tests that SET options through db.Execute keep
	// the pre-session semantics. Wire connections get their own sessions.
	defaultSession *Session

	// qmu guards the running-query registry; nextQID hands out stl_query
	// ids before execution so CANCEL <id> can find in-flight queries.
	qmu     sync.Mutex
	nextQID int64
	running map[int64]*runningQuery
}

// runningQuery is one in-flight SELECT, registered for CANCEL and
// stv_inflight.
type runningQuery struct {
	id     int64
	sql    string
	start  time.Time
	cancel context.CancelCauseFunc

	// Memory governance, attached once the query's grant is issued (nil
	// for queries that never reach execution). Read by stv_query_memory.
	mem   *exec.MemTracker
	spill *exec.SpillDir
	grant int64

	// par is the query's live intra-slice parallelism state, attached once
	// the DOP is chosen (nil before then and for serial-only paths). Read
	// by stv_exec_workers.
	par *parallelStats
}

// parallelStats tracks one query's morsel-driven execution for the
// stv_exec_workers system table and the parallelism telemetry.
type parallelStats struct {
	dop     int
	workers atomic.Int64 // live morsel worker goroutines
	morsels atomic.Int64 // morsels dispatched so far
}

// ExecStats reports what one statement cost.
type ExecStats struct {
	BlocksRead    int64
	BlocksSkipped int64
	RowsScanned   int64
	NetBytes      int64
	PlanTime      time.Duration
	// QueueWait is time spent waiting for a WLM slot; Queue names the WLM
	// queue that admitted the query ("" for statements that bypass WLM).
	QueueWait time.Duration
	ExecTime  time.Duration
	Queue     string
}

// Result is one statement's outcome.
type Result struct {
	// Schema and Rows are set for row-returning statements.
	Schema types.Schema
	Rows   []types.Row
	// Message summarizes non-row statements ("CREATE TABLE", "COPY 500").
	Message string
	Stats   ExecStats
	// Cached marks a result served from the result cache: no plan, no WLM
	// slot, no operator execution, Stats all zero.
	Cached bool
}

// sliceStat is one slice's cumulative scan accounting, updated by every
// query's scan phase and surfaced through stv_slice_stats.
type sliceStat struct {
	scans         atomic.Int64
	blocksRead    atomic.Int64
	blocksSkipped atomic.Int64
	rowsRead      atomic.Int64
	bytesRead     atomic.Int64
}

// Open builds an empty database on a fresh cluster.
func Open(cfg Config) (*Database, error) {
	if cfg.Plan.BroadcastRows == 0 {
		cfg.Plan.BroadcastRows = plan.DefaultOptions().BroadcastRows
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.QueryLogSize <= 0 {
		cfg.QueryLogSize = 1024
	}
	if cfg.BlockCacheBytes == 0 {
		cfg.BlockCacheBytes = 64 << 20
	}
	if cfg.PlanCacheEntries == 0 {
		cfg.PlanCacheEntries = 256
	}
	if cfg.ResultCacheBytes == 0 {
		cfg.ResultCacheBytes = 32 << 20
	}
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	cl.SetMetrics(cfg.Metrics)
	cl.SetFaults(cfg.Faults)
	cfg.Faults.SetMetrics(cfg.Metrics)
	wlm := NewWLM(cfg.QuerySlots, cfg.WLMSlotMemBytes, cfg.Metrics)
	if len(cfg.WLMQueues) > 0 {
		if wlm, err = NewWLMQueues(cfg.WLMQueues, cfg.WLMSlotMemBytes, cfg.Metrics); err != nil {
			return nil, err
		}
	}
	db := &Database{
		cfg:        cfg,
		cat:        catalog.New(),
		cl:         cl,
		txm:        txn.NewManager(),
		wlm:        wlm,
		metrics:    cfg.Metrics,
		qlog:       telemetry.NewQueryLog(cfg.QueryLogSize),
		sliceStats: make([]sliceStat, cl.NumSlices()),
		cache:      storage.NewBlockCache(cfg.BlockCacheBytes),
		inj:        cfg.Faults,
		running:    map[int64]*runningQuery{},
	}
	db.planCache = newLRUCache(int64(cfg.PlanCacheEntries))
	db.resultCache = newLRUCache(cfg.ResultCacheBytes)
	db.defaultSession = db.NewSession()
	// Give the planner the cluster's shape and a storage-level row-count
	// fallback so never-ANALYZEd tables still get cardinality estimates.
	db.cfg.Plan.NumNodes = cfg.Cluster.Nodes
	db.cfg.Plan.TableRows = db.visibleRowCount
	return db, nil
}

// visibleRowCount sums a table's currently visible segment rows straight
// from the storage layer — the planner's statistics fallback for tables
// that were never ANALYZEd. DISTSTYLE ALL counts one replica only.
func (db *Database) visibleRowCount(tableID int64) int64 {
	def, err := db.cat.GetByID(tableID)
	if err != nil {
		return -1
	}
	snapshot := db.txm.CurrentXid()
	slices := db.cl.NumSlices()
	if def.DistStyle == catalog.DistAll {
		slices = db.cl.Config().SlicesPerNode
	}
	var total int64
	for sl := 0; sl < slices; sl++ {
		for _, seg := range db.cl.VisibleSegments(sl, tableID, snapshot) {
			total += int64(seg.Rows)
		}
	}
	return total
}

// spillBase is the directory under which per-query scratch dirs are
// created (lazily, on first spill).
func (db *Database) spillBase() string {
	if db.cfg.SpillDir != "" {
		return db.cfg.SpillDir
	}
	return filepath.Join(os.TempDir(), "redshift-spill")
}

// attachQueryMem publishes a query's memory tracker and scratch dir on
// its running-query entry so stv_query_memory can observe it in flight.
func (db *Database) attachQueryMem(id int64, mem *exec.MemTracker, spill *exec.SpillDir, grant int64) {
	db.qmu.Lock()
	if rq := db.running[id]; rq != nil {
		rq.mem, rq.spill, rq.grant = mem, spill, grant
	}
	db.qmu.Unlock()
}

// attachQueryExec publishes a query's chosen DOP and live worker counters
// on its running-query entry so stv_exec_workers can observe it in flight.
func (db *Database) attachQueryExec(id int64, par *parallelStats) {
	db.qmu.Lock()
	if rq := db.running[id]; rq != nil {
		rq.par = par
	}
	db.qmu.Unlock()
}

// maxParallelWorkers resolves the configured intra-slice DOP cap: 0 means
// every available core, negative means serial.
func (db *Database) maxParallelWorkers() int {
	n := db.cfg.MaxParallelWorkers
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// BlockCache exposes the decoded-block buffer cache (nil when disabled).
func (db *Database) BlockCache() *storage.BlockCache { return db.cache }

// Telemetry exposes the database's metrics registry.
func (db *Database) Telemetry() *telemetry.Registry { return db.metrics }

// QueryLog exposes the completed-query ring buffer behind stl_query.
func (db *Database) QueryLog() *telemetry.QueryLog { return db.qlog }

// Catalog exposes the system catalog (admin tooling, backup).
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Cluster exposes the data plane (control plane workflows, backup).
func (db *Database) Cluster() *cluster.Cluster { return db.cl }

// Txns exposes the transaction manager (restore fast-forwards it).
func (db *Database) Txns() *txn.Manager { return db.txm }

// Mode returns the configured execution engine.
func (db *Database) Mode() exec.Mode { return db.cfg.Mode }

// DataStore returns the object store COPY reads from (nil when unset).
func (db *Database) DataStore() *s3sim.Store { return db.cfg.DataStore }

// WLMStats snapshots the workload manager's aggregate counters.
func (db *Database) WLMStats() WLMStats { return db.wlm.Stats() }

// WLMQueueStats snapshots every WLM queue's configuration and counters.
func (db *Database) WLMQueueStats() []WLMQueueStats { return db.wlm.QueueStats() }

// AdoptCatalog replaces the database's catalog — the final step of
// restoring a backup into a fresh cluster, after RestoreMetadata has
// registered the segment skeletons.
func (db *Database) AdoptCatalog(cat *catalog.Catalog) {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	db.cat = cat
	// Whatever was cached belonged to the pre-restore world. The plan and
	// result caches must go too: the adopted catalog restarts its version
	// counters, so stale entries could otherwise version-match by accident.
	db.cache.Clear()
	db.planCache.Clear()
	db.resultCache.Clear()
}

// Execute parses and runs one SQL statement with auto-commit, against the
// database's default session.
func (db *Database) Execute(query string) (*Result, error) {
	return db.defaultSession.Execute(query)
}

// ExecuteContext parses and runs one SQL statement; ctx cancellation or
// deadline aborts the statement within one batch boundary.
func (db *Database) ExecuteContext(ctx context.Context, query string) (*Result, error) {
	return db.defaultSession.ExecuteContext(ctx, query)
}

// ExecuteStmt runs a parsed statement.
func (db *Database) ExecuteStmt(stmt sql.Statement) (*Result, error) {
	return db.defaultSession.ExecuteStmt(stmt)
}

// ExecuteStmtContext runs a parsed statement under ctx.
func (db *Database) ExecuteStmtContext(ctx context.Context, stmt sql.Statement) (*Result, error) {
	return db.defaultSession.ExecuteStmtContext(ctx, stmt)
}

// runCancel aborts a running query by id (the wire-level CANCEL verb).
func (db *Database) runCancel(s *sql.Cancel) (*Result, error) {
	if !db.Cancel(s.ID) {
		return nil, fmt.Errorf("core: query %d is not running", s.ID)
	}
	return &Result{Message: fmt.Sprintf("CANCEL %d", s.ID)}, nil
}

// errQueryCancelled is the cancellation cause a user CANCEL plants; it
// distinguishes "cancelled on request" from a caller's own ctx expiring.
var errQueryCancelled = fmt.Errorf("cancelled on user request")

// Cancel aborts the running query with the given stl_query id, reporting
// whether such a query was found. The query unwinds within one batch
// boundary, releasing its pooled batches and WLM slot.
func (db *Database) Cancel(id int64) bool {
	db.qmu.Lock()
	rq := db.running[id]
	db.qmu.Unlock()
	if rq == nil {
		return false
	}
	rq.cancel(errQueryCancelled)
	return true
}

// StatementTimeout returns the default session's statement_timeout
// (0 = disabled).
func (db *Database) StatementTimeout() time.Duration {
	return db.defaultSession.StatementTimeout()
}

// Faults exposes the shared fault injector (nil when unconfigured).
func (db *Database) Faults() *faults.Injector { return db.inj }

// registerQuery assigns the query's stl_query id up front and installs
// its cancel hook; the returned context is cancelled by Database.Cancel.
func (db *Database) registerQuery(ctx context.Context, sqlText string) (int64, context.Context, context.CancelCauseFunc) {
	ctx, cancel := context.WithCancelCause(ctx)
	db.qmu.Lock()
	db.nextQID++
	id := db.nextQID
	db.running[id] = &runningQuery{id: id, sql: sqlText, start: time.Now(), cancel: cancel}
	db.qmu.Unlock()
	return id, ctx, cancel
}

// unregisterQuery removes a finished query from the running set.
func (db *Database) unregisterQuery(id int64) {
	db.qmu.Lock()
	delete(db.running, id)
	db.qmu.Unlock()
}

// queryMemRow is one governed in-flight query's memory snapshot.
type queryMemRow struct {
	id, grant, used, peak, spilled int64
}

// queryMemSnapshot reads the running queries' memory state under qmu —
// attachQueryMem writes rq.mem concurrently, so stv_query_memory must not
// touch the fields outside the lock.
func (db *Database) queryMemSnapshot() []queryMemRow {
	db.qmu.Lock()
	defer db.qmu.Unlock()
	out := make([]queryMemRow, 0, len(db.running))
	for _, rq := range db.running {
		if rq.mem == nil {
			continue
		}
		var spilled int64
		if rq.spill != nil {
			spilled = rq.spill.Bytes()
		}
		out = append(out, queryMemRow{rq.id, rq.grant, rq.mem.Used(), rq.mem.Peak(), spilled})
	}
	return out
}

// queryExecRow is one stv_exec_workers row.
type queryExecRow struct {
	id      int64
	dop     int64
	workers int64
	morsels int64
}

// queryExecSnapshot copies the in-flight parallelism counters under the
// registry lock (rq.par is attached under it).
func (db *Database) queryExecSnapshot() []queryExecRow {
	db.qmu.Lock()
	defer db.qmu.Unlock()
	out := make([]queryExecRow, 0, len(db.running))
	for _, rq := range db.running {
		if rq.par == nil {
			continue
		}
		out = append(out, queryExecRow{rq.id, int64(rq.par.dop), rq.par.workers.Load(), rq.par.morsels.Load()})
	}
	return out
}

// runningQueries snapshots the in-flight set for stv_inflight.
func (db *Database) runningQueries() []*runningQuery {
	db.qmu.Lock()
	defer db.qmu.Unlock()
	out := make([]*runningQuery, 0, len(db.running))
	for _, rq := range db.running {
		out = append(out, rq)
	}
	return out
}

func (db *Database) runCreateTable(s *sql.CreateTable) (*Result, error) {
	endWrite, err := db.beginWrite()
	if err != nil {
		return nil, err
	}
	defer endWrite()
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if s.IfNotExists {
		if _, err := db.cat.Get(s.Name); err == nil {
			return &Result{Message: "CREATE TABLE (exists, skipped)"}, nil
		}
	}
	def := &catalog.TableDef{Name: s.Name, DistKeyCol: -1}
	for _, col := range s.Columns {
		cd := catalog.ColumnDef{
			Name:    col.Name,
			Type:    col.Type,
			NotNull: col.NotNull,
		}
		if col.HasEncoding {
			cd.Encoding = col.Encoding
		} else {
			// The dusty knob: default RAW now, chosen by sampling at first
			// COPY (§1 design goal 5).
			cd.Encoding = compress.Raw
			cd.AutoEncoding = true
		}
		def.Columns = append(def.Columns, cd)
	}
	switch strings.ToUpper(s.DistStyle) {
	case "ALL":
		def.DistStyle = catalog.DistAll
	case "KEY":
		def.DistStyle = catalog.DistKey
	case "EVEN":
		def.DistStyle = catalog.DistEven
	case "":
		if s.DistKey != "" {
			def.DistStyle = catalog.DistKey
		}
	default:
		return nil, fmt.Errorf("core: bad DISTSTYLE %q", s.DistStyle)
	}
	if def.DistStyle == catalog.DistKey {
		if s.DistKey == "" {
			return nil, fmt.Errorf("core: DISTSTYLE KEY requires DISTKEY(col)")
		}
		ord := def.Ordinal(s.DistKey)
		if ord < 0 {
			return nil, fmt.Errorf("core: DISTKEY column %q does not exist", s.DistKey)
		}
		def.DistKeyCol = ord
	} else if s.DistKey != "" {
		return nil, fmt.Errorf("core: DISTKEY requires DISTSTYLE KEY")
	}
	if len(s.SortKeys) > 0 {
		def.SortStyle = catalog.SortCompound
		if strings.EqualFold(s.SortStyle, "INTERLEAVED") {
			def.SortStyle = catalog.SortInterleaved
		}
		for _, name := range s.SortKeys {
			ord := def.Ordinal(name)
			if ord < 0 {
				return nil, fmt.Errorf("core: SORTKEY column %q does not exist", name)
			}
			def.SortKeyCols = append(def.SortKeyCols, ord)
		}
	}
	if err := db.cat.Create(def); err != nil {
		return nil, err
	}
	return &Result{Message: "CREATE TABLE"}, nil
}

func (db *Database) runDropTable(s *sql.DropTable) (*Result, error) {
	endWrite, err := db.beginWrite()
	if err != nil {
		return nil, err
	}
	defer endWrite()
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	def, err := db.cat.Get(s.Name)
	if err != nil {
		if s.IfExists {
			return &Result{Message: "DROP TABLE (missing, skipped)"}, nil
		}
		return nil, err
	}
	if err := db.cat.Drop(s.Name); err != nil {
		return nil, err
	}
	db.cl.DropTable(def.ID)
	db.cache.InvalidateTable(def.ID)
	return &Result{Message: "DROP TABLE"}, nil
}

func (db *Database) runTruncate(s *sql.Truncate) (*Result, error) {
	endWrite, err := db.beginWrite()
	if err != nil {
		return nil, err
	}
	defer endWrite()
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	def, err := db.cat.Get(s.Table)
	if err != nil {
		return nil, err
	}
	t := db.txm.Begin()
	if err := db.txm.LockTable(t, def.ID); err != nil {
		return nil, err
	}
	xid, err := db.txm.Reserve(t)
	if err != nil {
		db.txm.Abort(t)
		return nil, err
	}
	for sl := 0; sl < db.cl.NumSlices(); sl++ {
		db.cl.ReplaceSegments(sl, def.ID, nil, xid)
	}
	if err := db.txm.Publish(t); err != nil {
		return nil, err
	}
	db.cl.PruneDropped(db.txm.OldestActiveSnapshot())
	db.cache.InvalidateTable(def.ID)
	if err := db.cat.ReplaceStats(def.ID, catalog.TableStats{Cols: make([]catalog.ColumnStats, len(def.Columns))}); err != nil {
		return nil, err
	}
	db.cat.BumpDataVersion(def.ID)
	return &Result{Message: "TRUNCATE"}, nil
}

func (db *Database) runInsert(ctx context.Context, s *sql.Insert) (*Result, error) {
	endWrite, err := db.beginWrite()
	if err != nil {
		return nil, err
	}
	defer endWrite()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	def, err := db.cat.Get(s.Table)
	if err != nil {
		return nil, err
	}
	// Resolve the column list to ordinals (positional when absent).
	ords := make([]int, 0, len(def.Columns))
	if len(s.Columns) == 0 {
		for i := range def.Columns {
			ords = append(ords, i)
		}
	} else {
		for _, name := range s.Columns {
			ord := def.Ordinal(name)
			if ord < 0 {
				return nil, fmt.Errorf("core: column %q does not exist", name)
			}
			ords = append(ords, ord)
		}
	}
	rows := make([]types.Row, 0, len(s.Rows))
	for ri, exprRow := range s.Rows {
		if len(exprRow) != len(ords) {
			return nil, fmt.Errorf("core: VALUES row %d has %d values, expected %d", ri+1, len(exprRow), len(ords))
		}
		row := make(types.Row, len(def.Columns))
		for i := range row {
			row[i] = types.NewNull(def.Columns[i].Type)
		}
		for i, e := range exprRow {
			v, err := evalConstExpr(e)
			if err != nil {
				return nil, fmt.Errorf("core: VALUES row %d: %w", ri+1, err)
			}
			cv, err := coerceInsertValue(v, def.Columns[ords[i]].Type)
			if err != nil {
				return nil, fmt.Errorf("core: VALUES row %d column %s: %w", ri+1, def.Columns[ords[i]].Name, err)
			}
			row[ords[i]] = cv
		}
		rows = append(rows, row)
	}

	t := db.txm.Begin()
	if err := db.txm.LockTable(t, def.ID); err != nil {
		return nil, err
	}
	xid, err := db.txm.Reserve(t)
	if err != nil {
		db.txm.Abort(t)
		return nil, err
	}
	if _, err := load.AppendRows(db.cl, db.cat, def, rows, load.Options{}, xid); err != nil {
		db.cl.DiscardXid(def.ID, xid)
		db.txm.Abort(t)
		return nil, err
	}
	if err := db.txm.Publish(t); err != nil {
		return nil, err
	}
	// Bump after Publish: readers capture versions before snapshotting, so
	// a result stored under the pre-bump version never includes this write.
	db.cat.BumpDataVersion(def.ID)
	return &Result{Message: fmt.Sprintf("INSERT %d", len(rows))}, nil
}

// evalConstExpr binds and evaluates a VALUES expression, which may use
// literals and arithmetic but no column references.
func evalConstExpr(e sql.Expr) (types.Value, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return x.Value, nil
	case *sql.Unary:
		if x.Op == "-" {
			v, err := evalConstExpr(x.Expr)
			if err != nil {
				return types.Value{}, err
			}
			if v.T == types.Float64 {
				return types.NewFloat(-v.F), nil
			}
			return types.NewInt(-v.I), nil
		}
	}
	return types.Value{}, fmt.Errorf("VALUES must be literals, got %s", e)
}

// coerceInsertValue adapts a literal to the column type.
func coerceInsertValue(v types.Value, t types.Type) (types.Value, error) {
	if v.Null {
		return types.NewNull(t), nil
	}
	if v.T == t {
		return v, nil
	}
	switch {
	case v.T == types.Int64 && t == types.Float64:
		return types.NewFloat(float64(v.I)), nil
	case v.T == types.Float64 && t == types.Int64 && v.F == float64(int64(v.F)):
		return types.NewInt(int64(v.F)), nil
	case v.T == types.String && t == types.Date:
		return types.ParseDate(v.S)
	case v.T == types.String && t == types.Timestamp:
		return types.ParseTimestamp(v.S)
	case v.T == types.Int64 && (t == types.Date || t == types.Timestamp):
		return types.Value{T: t, I: v.I}, nil
	}
	return types.Value{}, fmt.Errorf("cannot store %s value %s in %s column", v.T, v, t)
}

func (db *Database) runCopy(ctx context.Context, s *sql.Copy) (*Result, error) {
	endWrite, err := db.beginWrite()
	if err != nil {
		return nil, err
	}
	defer endWrite()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if db.cfg.DataStore == nil {
		return nil, fmt.Errorf("core: no data store configured for COPY")
	}
	def, err := db.cat.Get(s.Table)
	if err != nil {
		return nil, err
	}
	t := db.txm.Begin()
	if err := db.txm.LockTable(t, def.ID); err != nil {
		return nil, err
	}
	xid, err := db.txm.Reserve(t)
	if err != nil {
		db.txm.Abort(t)
		return nil, err
	}
	opts := load.Options{
		Format:     s.Format,
		Delimiter:  s.Delimiter,
		CompUpdate: s.CompUpdate,
		StatUpdate: s.StatUpdate,
		GZip:       s.GZip,
	}
	from := strings.TrimPrefix(s.From, "s3://")
	start := time.Now()
	stats, err := load.Run(db.cl, db.cat, def, db.cfg.DataStore, from, opts, xid)
	if err != nil {
		db.cl.DiscardXid(def.ID, xid)
		db.txm.Abort(t)
		return nil, err
	}
	if err := db.txm.Publish(t); err != nil {
		return nil, err
	}
	db.cat.BumpDataVersion(def.ID)
	return &Result{
		Message: fmt.Sprintf("COPY %d", stats.Rows),
		Stats:   ExecStats{ExecTime: time.Since(start), RowsScanned: stats.Rows},
	}, nil
}

func (db *Database) runVacuum(s *sql.Vacuum) (*Result, error) {
	endWrite, err := db.beginWrite()
	if err != nil {
		return nil, err
	}
	defer endWrite()
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	var defs []*catalog.TableDef
	if s.Table != "" {
		def, err := db.cat.Get(s.Table)
		if err != nil {
			return nil, err
		}
		defs = append(defs, def)
	} else {
		defs = db.cat.List()
	}
	for _, def := range defs {
		if err := db.vacuumTable(def); err != nil {
			return nil, err
		}
	}
	return &Result{Message: fmt.Sprintf("VACUUM %d table(s)", len(defs))}, nil
}

// vacuumTable merges each slice's sorted runs into one fully sorted
// segment and clears the unsorted-rows counter.
func (db *Database) vacuumTable(def *catalog.TableDef) error {
	t := db.txm.Begin()
	if err := db.txm.LockTable(t, def.ID); err != nil {
		return err
	}
	xid, err := db.txm.Reserve(t)
	if err != nil {
		db.txm.Abort(t)
		return err
	}
	// The table write lock is held: nothing can commit new segments, so
	// everything visible right now is exactly what the merge must cover.
	snapshot := db.txm.CurrentXid()
	var wg sync.WaitGroup
	errs := make([]error, db.cl.NumSlices())
	for sl := 0; sl < db.cl.NumSlices(); sl++ {
		wg.Add(1)
		go func(sl int) {
			defer wg.Done()
			errs[sl] = db.vacuumSlice(def, sl, snapshot, xid)
		}(sl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			db.cl.DiscardXid(def.ID, xid)
			db.txm.Abort(t)
			return err
		}
	}
	if err := db.txm.Publish(t); err != nil {
		return err
	}
	db.cl.PruneDropped(db.txm.OldestActiveSnapshot())
	// VACUUM rebuilds each slice as a fresh Seq-0 segment, reusing block
	// identities with new content — the cached decodes are stale.
	db.cache.InvalidateTable(def.ID)
	stats, err := db.cat.Stats(def.ID)
	if err != nil {
		return err
	}
	stats.UnsortedRows = 0
	if err := db.cat.ReplaceStats(def.ID, stats); err != nil {
		return err
	}
	db.cat.BumpDataVersion(def.ID)
	return nil
}

func (db *Database) vacuumSlice(def *catalog.TableDef, sl int, snapshot, xid int64) error {
	segs := db.cl.VisibleSegments(sl, def.ID, snapshot)
	if len(segs) <= 1 && (len(segs) == 0 || segs[0].Sorted) {
		return nil // already a single sorted run
	}
	var rows []types.Row
	for _, seg := range segs {
		segRows, err := readSegmentRows(seg, db.cl)
		if err != nil {
			return err
		}
		rows = append(rows, segRows...)
	}
	sorted, err := load.SortRows(def, rows)
	if err != nil {
		return err
	}
	encs, err := db.cat.Encodings(def.ID)
	if err != nil {
		return err
	}
	b, err := storage.NewBuilder(def.ID, int32(sl), 0, def.Schema(), encs, db.cl.Config().BlockCap)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := b.Append(r); err != nil {
			return err
		}
	}
	seg, err := b.Finish(sorted || def.SortStyle == catalog.SortNone)
	if err != nil {
		return err
	}
	db.cl.ReplaceSegments(sl, def.ID, []*storage.Segment{seg}, xid)
	return nil
}

// readSegmentRows decodes every row of a segment, page-faulting evicted
// blocks through the cluster.
func readSegmentRows(seg *storage.Segment, cl *cluster.Cluster) ([]types.Row, error) {
	cols := make([]*types.Vector, seg.Schema.Len())
	for c := range cols {
		out := types.NewVector(seg.Schema.Columns[c].Type, seg.Rows)
		for _, blk := range seg.Cols[c] {
			v, err := blk.Decode()
			if err != nil {
				if ferr := cl.FetchBlock(blk); ferr != nil {
					return nil, ferr
				}
				if v, err = blk.Decode(); err != nil {
					return nil, err
				}
			}
			for i := 0; i < v.Len(); i++ {
				out.Append(v.Get(i))
			}
		}
		cols[c] = out
	}
	rows := make([]types.Row, seg.Rows)
	for i := range rows {
		row := make(types.Row, len(cols))
		for c, v := range cols {
			row[c] = v.Get(i)
		}
		rows[i] = row
	}
	return rows, nil
}

// ReadTable returns every logical row of a table visible right now —
// resize's node-to-node copy and the admin tools use it. DISTSTYLE ALL
// tables are read from one node only, so duplicated copies count once.
func (db *Database) ReadTable(name string) ([]types.Row, error) {
	def, err := db.cat.Get(name)
	if err != nil {
		return nil, err
	}
	snapshot := db.txm.CurrentXid()
	slices := db.cl.NumSlices()
	if def.DistStyle == catalog.DistAll {
		slices = db.cl.Config().SlicesPerNode // first node's copy only
	}
	var rows []types.Row
	for sl := 0; sl < slices; sl++ {
		for _, seg := range db.cl.VisibleSegments(sl, def.ID, snapshot) {
			segRows, err := readSegmentRows(seg, db.cl)
			if err != nil {
				return nil, err
			}
			rows = append(rows, segRows...)
		}
	}
	return rows, nil
}

func (db *Database) runAnalyze(s *sql.Analyze) (*Result, error) {
	var defs []*catalog.TableDef
	if s.Table != "" {
		def, err := db.cat.Get(s.Table)
		if err != nil {
			return nil, err
		}
		defs = append(defs, def)
	} else {
		defs = db.cat.List()
	}
	if s.Compression {
		return db.analyzeCompression(defs)
	}
	snapshot := db.txm.CurrentXid()
	for _, def := range defs {
		// Per-segment streaming: compute each segment's stats in isolation
		// and Merge into the running total, so ANALYZE's memory is bounded
		// by one segment regardless of table size. The merge is lossless
		// because ColumnStats carries the HLL sketch bytes.
		slices := db.cl.NumSlices()
		if def.DistStyle == catalog.DistAll {
			// A replicated table is duplicated per node; scanning one node's
			// copy yields logical counters directly (Rows, NullCount,
			// UnsortedRows), instead of replica-multiplied ones that then
			// need dividing.
			slices = db.cl.Config().SlicesPerNode
		}
		stats := catalog.TableStats{Cols: make([]catalog.ColumnStats, len(def.Columns))}
		for sl := 0; sl < slices; sl++ {
			for si, seg := range db.cl.VisibleSegments(sl, def.ID, snapshot) {
				segRows, err := readSegmentRows(seg, db.cl)
				if err != nil {
					return nil, err
				}
				delta := load.ComputeStats(def, segRows)
				if si > 0 || !seg.Sorted {
					// Everything beyond the slice's first sorted run is
					// unsorted work for VACUUM, same bookkeeping the
					// incremental COPY path maintains.
					delta.UnsortedRows = int64(seg.Rows)
				}
				stats.Merge(delta)
			}
		}
		if err := db.cat.ReplaceStats(def.ID, stats); err != nil {
			return nil, err
		}
		// ANALYZE changes no data but does change the statistics baked into
		// cached plans, so it moves the data version too; the result cache
		// takes a harmless spurious miss.
		db.cat.BumpDataVersion(def.ID)
	}
	return &Result{Message: fmt.Sprintf("ANALYZE %d table(s)", len(defs))}, nil
}

// analyzeCompression reports per-encoding sizes on a sample of each column,
// like ANALYZE COMPRESSION.
func (db *Database) analyzeCompression(defs []*catalog.TableDef) (*Result, error) {
	res := &Result{
		Schema: types.NewSchema(
			types.Column{Name: "table", Type: types.String},
			types.Column{Name: "column", Type: types.String},
			types.Column{Name: "encoding", Type: types.String},
			types.Column{Name: "est_reduction_pct", Type: types.Float64},
		),
	}
	snapshot := db.txm.CurrentXid()
	for _, def := range defs {
		for ci, col := range def.Columns {
			sample := types.NewVector(col.Type, 0)
			for sl := 0; sl < db.cl.NumSlices() && sample.Len() < 4096; sl++ {
				for _, seg := range db.cl.VisibleSegments(sl, def.ID, snapshot) {
					if seg.NumBlocks() == 0 {
						continue
					}
					v, err := seg.Block(ci, 0).Decode()
					if err != nil {
						continue
					}
					for i := 0; i < v.Len() && sample.Len() < 4096; i++ {
						sample.Append(v.Get(i))
					}
				}
			}
			if sample.Len() == 0 {
				continue
			}
			results := compress.Analyze(sample)
			for _, r := range results {
				if !r.Applicable {
					continue
				}
				reduction := (1 - 1/r.Ratio) * 100
				res.Rows = append(res.Rows, types.Row{
					types.NewString(def.Name),
					types.NewString(col.Name),
					types.NewString(r.Encoding.String()),
					types.NewFloat(reduction),
				})
			}
		}
	}
	return res, nil
}

func (db *Database) runExplain(ctx context.Context, sess *Session, s *sql.Explain) (*Result, error) {
	sel, ok := s.Stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("core: EXPLAIN supports SELECT only")
	}
	if s.Analyze {
		return db.runExplainAnalyze(ctx, sess, sel)
	}
	// System tables live in a transient catalog, not db.cat; bind EXPLAIN
	// against the same catalog the query itself would run against. User
	// tables go through the plan cache, same as execution would.
	var p *plan.Plan
	var err error
	if sel.From != nil && isSystemTable(sel.From.Table) {
		sysCat, _, err := db.sysCatalog()
		if err != nil {
			return nil, err
		}
		p, err = plan.BuildWith(sysCat, sel, db.cfg.Plan)
		if err != nil {
			return nil, err
		}
	} else {
		p, _, err = db.planFor(sel, sql.Normalize(sel))
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Schema: types.NewSchema(types.Column{Name: "QUERY PLAN", Type: types.String})}
	text := p.ExplainWithMemory(sess.effectiveMemBudget())
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, types.Row{types.NewString(line)})
	}
	return res, nil
}

// runExplainAnalyze executes the query and renders its span tree with
// actual times, rows, bytes and block counts. A result-cache hit has no
// span tree — no operator ran — so it renders as the single line
// production Redshift prints: "cache: result hit".
func (db *Database) runExplainAnalyze(ctx context.Context, sess *Session, sel *sql.Select) (*Result, error) {
	if sel.From == nil {
		return nil, fmt.Errorf("core: EXPLAIN ANALYZE needs a FROM table")
	}
	if isSystemTable(sel.From.Table) {
		return nil, fmt.Errorf("core: EXPLAIN ANALYZE does not cover system tables")
	}
	run, trace, err := db.runSelectTraced(ctx, sess, sel)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schema: types.NewSchema(types.Column{Name: "QUERY PLAN", Type: types.String}),
		Stats:  run.Stats,
		Cached: run.Cached,
	}
	if run.Cached {
		res.Rows = append(res.Rows, types.Row{types.NewString("cache: result hit")})
		return res, nil
	}
	for _, line := range strings.Split(strings.TrimRight(trace.Render(), "\n"), "\n") {
		res.Rows = append(res.Rows, types.Row{types.NewString(line)})
	}
	return res, nil
}
