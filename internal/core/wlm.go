package core

import (
	"context"
	"sync"
	"time"

	"redshift/internal/telemetry"
)

// WLM is the workload manager: a fixed number of query slots with a FIFO
// queue, the §4 mechanism by which "resources [are] distributed across many
// concurrent queries". Admin statements bypass it; only SELECT competes for
// slots.
type WLM struct {
	slots chan struct{}
	// memPool is the total execution-memory budget divided evenly across
	// slots (§4: "memory ... distributed across many concurrent queries");
	// 0 means ungoverned.
	memPool int64

	mu         sync.Mutex
	active     int
	peakActive int
	queued     int
	peakQueued int
	totalRun   int64
	totalWait  time.Duration
	// waiters tracks each queued query's arrival time (keyed by a local
	// token) so QueuePressure can report the longest current wait — the
	// concurrency-scaling policy's signal.
	waiters    map[int64]time.Time
	nextWaiter int64

	// Registry mirrors of the counters above (pre-resolved at construction).
	mActive  *telemetry.Gauge
	mQueued  *telemetry.Gauge
	mWait    *telemetry.Histogram
	mQueries *telemetry.Counter
}

// NewWLM builds a manager with the given concurrency (Redshift's default
// queue has 5 slots). n <= 0 disables queuing. When reg is non-nil the
// manager emits wlm_active / wlm_queued gauges, a wlm_queue_wait_seconds
// histogram and a wlm_queries_total counter into it.
func NewWLM(n int, memPool int64, reg *telemetry.Registry) *WLM {
	w := &WLM{memPool: memPool, waiters: map[int64]time.Time{}}
	if n > 0 {
		w.slots = make(chan struct{}, n)
	}
	if reg != nil {
		w.mActive = reg.Gauge("wlm_active")
		w.mQueued = reg.Gauge("wlm_queued")
		w.mWait = reg.Histogram("wlm_queue_wait_seconds")
		w.mQueries = reg.Counter("wlm_queries_total")
	}
	return w
}

// Grant returns the per-slot memory budget: the pool divided evenly
// across slots (the whole pool when queuing is disabled). 0 means the
// query runs ungoverned.
func (w *WLM) Grant() int64 {
	if w.memPool <= 0 {
		return 0
	}
	if w.slots == nil {
		return w.memPool
	}
	return w.memPool / int64(cap(w.slots))
}

// Acquire blocks until a slot is free and returns the time spent queued.
func (w *WLM) Acquire() time.Duration {
	// Background has a nil Done channel, so the select below can only
	// resolve on the slot — the pre-cancellation behavior.
	wait, _ := w.AcquireCtx(context.Background())
	return wait
}

// AcquireCtx blocks until a slot is free or ctx is cancelled. On
// cancellation the query leaves the queue without ever occupying a slot
// and the caller must NOT Release.
func (w *WLM) AcquireCtx(ctx context.Context) (time.Duration, error) {
	if w.slots == nil {
		w.mu.Lock()
		w.admitLocked()
		w.mu.Unlock()
		return 0, nil
	}
	start := time.Now()
	w.mu.Lock()
	w.queued++
	if w.queued > w.peakQueued {
		w.peakQueued = w.queued
	}
	w.nextWaiter++
	token := w.nextWaiter
	w.waiters[token] = start
	if w.mQueued != nil {
		w.mQueued.Set(int64(w.queued))
	}
	w.mu.Unlock()

	select {
	case w.slots <- struct{}{}:
	case <-ctx.Done():
		w.mu.Lock()
		w.queued--
		delete(w.waiters, token)
		if w.mQueued != nil {
			w.mQueued.Set(int64(w.queued))
		}
		w.mu.Unlock()
		return time.Since(start), ctx.Err()
	}
	wait := time.Since(start)

	w.mu.Lock()
	w.queued--
	delete(w.waiters, token)
	w.totalWait += wait
	if w.mQueued != nil {
		w.mQueued.Set(int64(w.queued))
	}
	if w.mWait != nil {
		w.mWait.Observe(wait.Seconds())
	}
	w.admitLocked()
	w.mu.Unlock()
	return wait, nil
}

func (w *WLM) admitLocked() {
	w.active++
	w.totalRun++
	if w.active > w.peakActive {
		w.peakActive = w.active
	}
	if w.mActive != nil {
		w.mActive.Set(int64(w.active))
	}
	if w.mQueries != nil {
		w.mQueries.Inc()
	}
}

// Release frees the slot.
func (w *WLM) Release() {
	w.mu.Lock()
	w.active--
	if w.mActive != nil {
		w.mActive.Set(int64(w.active))
	}
	w.mu.Unlock()
	if w.slots != nil {
		<-w.slots
	}
}

// QueuePressure reports the current queue depth and how long the
// longest-waiting queued query has been waiting. The concurrency-scaling
// policy prices this wait (depth × wait × slot cost) against the cost of
// hydrating a burst cluster.
func (w *WLM) QueuePressure() (depth int, oldestWait time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var oldest time.Time
	for _, t := range w.waiters {
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	if !oldest.IsZero() {
		oldestWait = time.Since(oldest)
	}
	return w.queued, oldestWait
}

// WLMStats is a snapshot of the manager's counters.
type WLMStats struct {
	Active        int
	PeakActive    int
	Queued        int
	PeakQueued    int
	TotalQueries  int64
	TotalWaitTime time.Duration
}

// Stats snapshots the counters.
func (w *WLM) Stats() WLMStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WLMStats{
		Active:        w.active,
		PeakActive:    w.peakActive,
		Queued:        w.queued,
		PeakQueued:    w.peakQueued,
		TotalQueries:  w.totalRun,
		TotalWaitTime: w.totalWait,
	}
}
