package core

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"redshift/internal/faults"
	"redshift/internal/telemetry"
)

// The WLM is the workload manager of §4: the mechanism by which "resources
// [are] distributed across many concurrent queries". It grew from a single
// slot pool into named queues so tenants with different shapes — dashboard
// refreshers firing short repeated SELECTs, ETL batches running heavy
// transforms — stop competing for the same slots: each queue has its own
// slot count, its own share of the execution-memory pool, and optionally a
// wait timeout, and a short-query fast lane admits cheap queries (by
// planner cost estimate) into reserved express slots regardless of tenant.
// Admin statements bypass the WLM entirely; only SELECT competes for slots.

// QueueSpec configures one named WLM queue.
type QueueSpec struct {
	// Name identifies the queue for SET query_group routing and the
	// stv_wlm_* tables. Compared case-insensitively; stored lowercase.
	Name string
	// Slots is the queue's concurrency: how many SELECTs run at once.
	// <= 0 means unlimited (no queuing in this queue).
	Slots int
	// MemFraction is the queue's share of the WLM memory pool (0..1). The
	// per-query grant is pool×MemFraction/Slots. Queues with fraction 0
	// split whatever fraction the explicit queues left over, proportionally
	// to their slot counts — so the splits always sum to the whole pool.
	MemFraction float64
	// Priority orders queues for display and for the pressure signal
	// (higher = more urgent). Slots are never shared across queues, so a
	// high-priority queue structurally cannot starve behind a low-priority
	// one — priority is reporting order, not a scheduling weight.
	Priority int
	// MaxEstRows > 0 marks this queue as the short-query fast lane: any
	// query whose planner cost estimate (estimated rows flowing through
	// the whole physical plan) is known and at most this value is admitted
	// here, regardless of the session's query_group. At most one queue
	// should set it; the first one wins.
	MaxEstRows int64
	// Timeout bounds how long a query may wait in this queue. A waiter
	// past it is evicted with a retryable admission-timeout error (it
	// never held a slot, so resending is always safe). 0 = wait forever.
	Timeout time.Duration
}

// WLMTicket is one admitted query's claim on a queue slot: Release it
// exactly once. Grant is the queue's per-slot memory budget (0 =
// ungoverned) and Wait is the time spent queued before admission.
type WLMTicket struct {
	Queue string
	Grant int64
	Wait  time.Duration
	q     *wlmQueue
}

// wlmWaiter is one queued query. It is either on its queue's waiter list
// (still waiting) or admitted — the transition happens atomically under
// the WLM lock, so the pressure signal can never see an admitted query as
// still queued (the race the old channel-based design had: a waiter held
// its slot before leaving the books, and even uncontended acquires
// appeared queued for an instant, feeding spurious oldest-wait readings
// into the burst-cluster policy).
type wlmWaiter struct {
	ready    chan struct{} // closed on admission, under the lock
	enq      time.Time
	el       *list.Element
	admitted bool
	wait     time.Duration
}

// wlmQueue is one named queue's slots, waiter list and counters. All
// fields are guarded by the owning WLM's mutex.
type wlmQueue struct {
	spec  QueueSpec
	grant int64 // per-slot memory budget

	active     int
	peakActive int
	queued     int
	peakQueued int
	totalRun   int64
	totalWait  time.Duration
	timeouts   int64
	evictions  int64 // waiters removed without admission (cancel + timeout)
	waiters    list.List

	mActive   *telemetry.Gauge
	mQueued   *telemetry.Gauge
	mWait     *telemetry.Histogram
	mQueries  *telemetry.Counter
	mTimeouts *telemetry.Counter
}

// WLM is the workload manager: named queues of query slots, a FIFO waiter
// list per queue, and one mutex under which every admission decision and
// every pressure reading happens.
type WLM struct {
	mu      *lockedWLM
	memPool int64
}

// lockedWLM is the mutex-guarded state. (Split from WLM so the zero-value
// misuse of copying a WLM is caught by vet's lock analysis.)
type lockedWLM struct {
	sync  chan struct{} // 1-slot semaphore used as the mutex (select-free)
	state wlmState
}

type wlmState struct {
	queues  []*wlmQueue
	byName  map[string]*wlmQueue
	def     *wlmQueue // routing fallback
	express *wlmQueue // fast lane, nil when none configured

	// Aggregate mirrors of the legacy single-queue counters/gauges.
	activeTotal int
	queuedTotal int
	mActive     *telemetry.Gauge
	mQueued     *telemetry.Gauge
	mWait       *telemetry.Histogram
	mQueries    *telemetry.Counter
}

func (l *lockedWLM) lock()   { l.sync <- struct{}{} }
func (l *lockedWLM) unlock() { <-l.sync }

// DefaultQueueName is the queue unrouted queries land in.
const DefaultQueueName = "default"

// NewWLM builds a single-queue manager with the given concurrency
// (Redshift's default queue has 5 slots). n <= 0 disables queuing. memPool
// is the execution-memory budget split across slots (0 = ungoverned).
func NewWLM(n int, memPool int64, reg *telemetry.Registry) *WLM {
	w, err := NewWLMQueues([]QueueSpec{{Name: DefaultQueueName, Slots: n}}, memPool, reg)
	if err != nil { // a single default spec cannot fail validation
		panic(err)
	}
	return w
}

// NewWLMQueues builds a manager with named queues. Queue names must be
// unique and non-empty after normalization; the queue named "default" (or
// the first queue, if none is) receives unrouted queries. When reg is
// non-nil the manager emits the legacy wlm_active/wlm_queued gauges and
// wlm_queue_wait_seconds/wlm_queries_total aggregates plus per-queue
// wlm_queue_<name>_* series.
func NewWLMQueues(specs []QueueSpec, memPool int64, reg *telemetry.Registry) (*WLM, error) {
	if len(specs) == 0 {
		specs = []QueueSpec{{Name: DefaultQueueName}}
	}
	w := &WLM{
		mu:      &lockedWLM{sync: make(chan struct{}, 1)},
		memPool: memPool,
	}
	st := &w.mu.state
	st.byName = map[string]*wlmQueue{}
	for _, spec := range specs {
		spec.Name = strings.ToLower(strings.TrimSpace(spec.Name))
		if spec.Name == "" {
			return nil, fmt.Errorf("core: WLM queue with empty name")
		}
		if _, dup := st.byName[spec.Name]; dup {
			return nil, fmt.Errorf("core: duplicate WLM queue %q", spec.Name)
		}
		if spec.MemFraction < 0 || spec.MemFraction > 1 {
			return nil, fmt.Errorf("core: WLM queue %q: MemFraction %v outside [0,1]", spec.Name, spec.MemFraction)
		}
		q := &wlmQueue{spec: spec}
		st.queues = append(st.queues, q)
		st.byName[spec.Name] = q
		if spec.MaxEstRows > 0 && st.express == nil {
			st.express = q
		}
	}
	if st.def = st.byName[DefaultQueueName]; st.def == nil {
		st.def = st.queues[0]
	}
	if err := splitMemPool(st.queues, memPool); err != nil {
		return nil, err
	}
	if reg != nil {
		st.mActive = reg.Gauge("wlm_active")
		st.mQueued = reg.Gauge("wlm_queued")
		st.mWait = reg.Histogram("wlm_queue_wait_seconds")
		st.mQueries = reg.Counter("wlm_queries_total")
		for _, q := range st.queues {
			q.mActive = reg.Gauge("wlm_queue_" + q.spec.Name + "_active")
			q.mQueued = reg.Gauge("wlm_queue_" + q.spec.Name + "_queued")
			q.mWait = reg.Histogram("wlm_queue_" + q.spec.Name + "_wait_seconds")
			q.mQueries = reg.Counter("wlm_queue_" + q.spec.Name + "_queries_total")
			q.mTimeouts = reg.Counter("wlm_queue_" + q.spec.Name + "_timeouts_total")
		}
	}
	return w, nil
}

// splitMemPool assigns each queue's per-slot grant so the per-queue
// budgets (grant × slots) sum to the whole pool: explicit fractions are
// honored, and queues without one share the leftover fraction
// proportionally to their slot counts.
func splitMemPool(queues []*wlmQueue, pool int64) error {
	if pool <= 0 {
		return nil
	}
	var explicit float64
	var implicitSlots int
	for _, q := range queues {
		if q.spec.MemFraction > 0 {
			explicit += q.spec.MemFraction
		} else {
			implicitSlots += max(q.spec.Slots, 1)
		}
	}
	if explicit > 1.0000001 {
		return fmt.Errorf("core: WLM queue memory fractions sum to %.3f > 1", explicit)
	}
	leftover := 1 - explicit
	for _, q := range queues {
		frac := q.spec.MemFraction
		if frac == 0 {
			if implicitSlots == 0 {
				continue
			}
			frac = leftover * float64(max(q.spec.Slots, 1)) / float64(implicitSlots)
		}
		budget := int64(float64(pool) * frac)
		if q.spec.Slots > 0 {
			q.grant = budget / int64(q.spec.Slots)
		} else {
			q.grant = budget
		}
	}
	return nil
}

// Grant returns the default queue's per-slot memory budget — the grant a
// query gets when no admission ticket is in play (EXPLAIN's memory line,
// the session fallback). 0 means ungoverned.
func (w *WLM) Grant() int64 {
	w.mu.lock()
	defer w.mu.unlock()
	return w.mu.state.def.grant
}

// HasQueue reports whether a queue with the given name exists (SET
// query_group validates against it).
func (w *WLM) HasQueue(name string) bool {
	w.mu.lock()
	defer w.mu.unlock()
	_, ok := w.mu.state.byName[strings.ToLower(name)]
	return ok
}

// QueueNames lists the configured queues in configuration order.
func (w *WLM) QueueNames() []string {
	w.mu.lock()
	defer w.mu.unlock()
	out := make([]string, len(w.mu.state.queues))
	for i, q := range w.mu.state.queues {
		out[i] = q.spec.Name
	}
	return out
}

// Route classifies a query: the short-query fast lane captures any query
// whose cost estimate is known and under the express threshold; otherwise
// the session's query_group picks its named queue; otherwise the default
// queue. estCost < 0 means unknown (never express).
func (w *WLM) Route(queryGroup string, estCost int64) string {
	w.mu.lock()
	defer w.mu.unlock()
	st := &w.mu.state
	if st.express != nil && estCost >= 0 && estCost <= st.express.spec.MaxEstRows {
		return st.express.spec.Name
	}
	if queryGroup != "" {
		if q, ok := st.byName[strings.ToLower(queryGroup)]; ok {
			return q.spec.Name
		}
	}
	return st.def.spec.Name
}

// errQueueTimeout marks queue-wait evictions; MarkRetryable wraps it so the
// wire layer reports the failure as safely resendable (the query never held
// a slot, so nothing ran).
type queueTimeoutError struct {
	queue string
	limit time.Duration
}

func (e *queueTimeoutError) Error() string {
	return fmt.Sprintf("core: query evicted from WLM queue %q after waiting %v", e.queue, e.limit)
}

// IsQueueTimeout reports whether err is a WLM queue-wait eviction.
func IsQueueTimeout(err error) bool {
	for err != nil {
		if _, ok := err.(*queueTimeoutError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Acquire blocks until a default-queue slot is free and returns the time
// spent queued (legacy single-queue entry point).
func (w *WLM) Acquire() time.Duration {
	wait, _ := w.AcquireCtx(context.Background())
	return wait
}

// AcquireCtx acquires a default-queue slot (legacy entry point; pair with
// Release).
func (w *WLM) AcquireCtx(ctx context.Context) (time.Duration, error) {
	t, err := w.AcquireQueueCtx(ctx, "")
	if err != nil {
		return 0, err
	}
	return t.Wait, nil
}

// Release frees a default-queue slot taken through Acquire/AcquireCtx.
func (w *WLM) Release() {
	w.mu.lock()
	w.releaseLocked(w.mu.state.def)
	w.mu.unlock()
}

// AcquireQueueCtx blocks until the named queue (default when empty) admits
// the query, ctx is cancelled, or the queue's wait timeout evicts it. On
// error the query never occupies a slot and the caller must NOT release.
func (w *WLM) AcquireQueueCtx(ctx context.Context, name string) (*WLMTicket, error) {
	w.mu.lock()
	st := &w.mu.state
	q := st.def
	if name != "" {
		if named, ok := st.byName[strings.ToLower(name)]; ok {
			q = named
		}
	}
	if q.spec.Slots <= 0 || q.active < q.spec.Slots {
		// A free slot: admit immediately, under the same lock every
		// pressure reading takes — an uncontended query is never visible
		// as queued.
		w.admitLocked(q)
		w.mu.unlock()
		return &WLMTicket{Queue: q.spec.Name, Grant: q.grant, q: q}, nil
	}
	wt := &wlmWaiter{ready: make(chan struct{}), enq: time.Now()}
	wt.el = q.waiters.PushBack(wt)
	q.queued++
	st.queuedTotal++
	if q.queued > q.peakQueued {
		q.peakQueued = q.queued
	}
	w.setQueuedGauges(q)
	w.mu.unlock()

	var timeoutC <-chan time.Time
	if q.spec.Timeout > 0 {
		timer := time.NewTimer(q.spec.Timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}

	select {
	case <-wt.ready:
		return &WLMTicket{Queue: q.spec.Name, Grant: q.grant, Wait: wt.wait, q: q}, nil
	case <-ctx.Done():
		if w.abandonWait(q, wt, false) {
			return nil, ctx.Err()
		}
		// Lost the race: a releaser admitted us before we left the queue.
		// Take the slot and hand it straight back so accounting balances.
		<-wt.ready
		w.mu.lock()
		w.releaseLocked(q)
		w.mu.unlock()
		return nil, ctx.Err()
	case <-timeoutC:
		if w.abandonWait(q, wt, true) {
			return nil, faults.MarkRetryable(&queueTimeoutError{queue: q.spec.Name, limit: q.spec.Timeout})
		}
		<-wt.ready
		// Admitted at the same instant the timer fired: run, don't evict.
		return &WLMTicket{Queue: q.spec.Name, Grant: q.grant, Wait: wt.wait, q: q}, nil
	}
}

// abandonWait removes a still-queued waiter from its queue's books,
// reporting false when the waiter was already admitted (the caller then
// owns a slot). timeout distinguishes eviction accounting from
// cancellation.
func (w *WLM) abandonWait(q *wlmQueue, wt *wlmWaiter, timeout bool) bool {
	w.mu.lock()
	defer w.mu.unlock()
	if wt.admitted {
		return false
	}
	q.waiters.Remove(wt.el)
	q.queued--
	w.mu.state.queuedTotal--
	q.evictions++
	if timeout {
		q.timeouts++
		if q.mTimeouts != nil {
			q.mTimeouts.Inc()
		}
	}
	w.setQueuedGauges(q)
	return true
}

// Release frees the ticket's slot, admitting the queue's oldest waiter if
// one is queued. Release a ticket exactly once.
func (w *WLM) ReleaseTicket(t *WLMTicket) {
	w.mu.lock()
	w.releaseLocked(t.q)
	w.mu.unlock()
}

// admitLocked books one admission into q.
func (w *WLM) admitLocked(q *wlmQueue) {
	st := &w.mu.state
	q.active++
	q.totalRun++
	st.activeTotal++
	if q.active > q.peakActive {
		q.peakActive = q.active
	}
	if q.mActive != nil {
		q.mActive.Set(int64(q.active))
	}
	if q.mQueries != nil {
		q.mQueries.Inc()
	}
	if st.mActive != nil {
		st.mActive.Set(int64(st.activeTotal))
	}
	if st.mQueries != nil {
		st.mQueries.Inc()
	}
}

// releaseLocked frees one slot of q and, atomically under the same lock,
// admits the oldest waiter — a waiter is never both admitted and visible
// as queued.
func (w *WLM) releaseLocked(q *wlmQueue) {
	st := &w.mu.state
	q.active--
	st.activeTotal--
	if q.mActive != nil {
		q.mActive.Set(int64(q.active))
	}
	if st.mActive != nil {
		st.mActive.Set(int64(st.activeTotal))
	}
	if q.spec.Slots <= 0 || q.active >= q.spec.Slots {
		return
	}
	el := q.waiters.Front()
	if el == nil {
		return
	}
	wt := el.Value.(*wlmWaiter)
	q.waiters.Remove(el)
	wt.admitted = true
	wt.wait = time.Since(wt.enq)
	q.queued--
	st.queuedTotal--
	q.totalWait += wt.wait
	if q.mWait != nil {
		q.mWait.Observe(wt.wait.Seconds())
	}
	if st.mWait != nil {
		st.mWait.Observe(wt.wait.Seconds())
	}
	w.setQueuedGauges(q)
	w.admitLocked(q)
	close(wt.ready)
}

func (w *WLM) setQueuedGauges(q *wlmQueue) {
	if q.mQueued != nil {
		q.mQueued.Set(int64(q.queued))
	}
	if st := &w.mu.state; st.mQueued != nil {
		st.mQueued.Set(int64(st.queuedTotal))
	}
}

// QueuePressure reports the total queue depth across every queue and how
// long the longest-waiting queued query has been waiting. Depth and
// oldest-wait come from one consistent snapshot under the admission lock:
// a query is counted (and its wait measured) only while it is actually
// blocked, never in a post-admission window — the concurrency-scaling
// policy prices this signal (depth × wait × slot cost) against hydrating
// a burst cluster, so a stale oldest-wait would hydrate clusters for
// queues that already drained.
func (w *WLM) QueuePressure() (depth int, oldestWait time.Duration) {
	w.mu.lock()
	defer w.mu.unlock()
	now := time.Now()
	for _, q := range w.mu.state.queues {
		depth += q.queued
		if el := q.waiters.Front(); el != nil {
			if wait := now.Sub(el.Value.(*wlmWaiter).enq); wait > oldestWait {
				oldestWait = wait
			}
		}
	}
	return depth, oldestWait
}

// WLMStats is an aggregate snapshot across every queue (the legacy
// single-queue shape).
type WLMStats struct {
	Active        int
	PeakActive    int
	Queued        int
	PeakQueued    int
	TotalQueries  int64
	TotalWaitTime time.Duration
}

// Stats snapshots the aggregate counters. PeakActive/PeakQueued are sums
// of per-queue peaks (an upper bound on the true concurrent peak).
func (w *WLM) Stats() WLMStats {
	w.mu.lock()
	defer w.mu.unlock()
	var s WLMStats
	st := &w.mu.state
	s.Active = st.activeTotal
	s.Queued = st.queuedTotal
	for _, q := range st.queues {
		s.PeakActive += q.peakActive
		s.PeakQueued += q.peakQueued
		s.TotalQueries += q.totalRun
		s.TotalWaitTime += q.totalWait
	}
	return s
}

// WLMQueueStats is one queue's configuration and counters.
type WLMQueueStats struct {
	Name        string
	Slots       int
	Priority    int
	MemPerSlot  int64
	MaxEstRows  int64
	Timeout     time.Duration
	Active      int
	PeakActive  int
	Queued      int
	PeakQueued  int
	TotalRun    int64
	TotalWait   time.Duration
	Timeouts    int64
	Evictions   int64
	OldestWait  time.Duration
}

// QueueStats snapshots every queue, ordered by descending priority then
// configuration order.
func (w *WLM) QueueStats() []WLMQueueStats {
	w.mu.lock()
	defer w.mu.unlock()
	now := time.Now()
	out := make([]WLMQueueStats, 0, len(w.mu.state.queues))
	for _, q := range w.mu.state.queues {
		s := WLMQueueStats{
			Name:       q.spec.Name,
			Slots:      q.spec.Slots,
			Priority:   q.spec.Priority,
			MemPerSlot: q.grant,
			MaxEstRows: q.spec.MaxEstRows,
			Timeout:    q.spec.Timeout,
			Active:     q.active,
			PeakActive: q.peakActive,
			Queued:     q.queued,
			PeakQueued: q.peakQueued,
			TotalRun:   q.totalRun,
			TotalWait:  q.totalWait,
			Timeouts:   q.timeouts,
			Evictions:  q.evictions,
		}
		if el := q.waiters.Front(); el != nil {
			s.OldestWait = now.Sub(el.Value.(*wlmWaiter).enq)
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	return out
}

// ParseQueueSpecs parses the server's -wlm-queues flag syntax: queues
// separated by ';', each "name=slots" followed by comma-separated
// attributes "mem=25%", "prio=2", "short=5000" (fast-lane row threshold)
// and "timeout=30s".
//
//	"express=2,mem=20%,short=20000;dash=4,prio=5;etl=2,mem=50%,timeout=60s"
func ParseQueueSpecs(s string) ([]QueueSpec, error) {
	var specs []QueueSpec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var spec QueueSpec
		for i, attr := range strings.Split(part, ",") {
			attr = strings.TrimSpace(attr)
			k, v, ok := strings.Cut(attr, "=")
			if !ok {
				return nil, fmt.Errorf("core: bad WLM queue attribute %q (want key=value)", attr)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if i == 0 {
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("core: queue %q: bad slot count %q", k, v)
				}
				spec.Name, spec.Slots = k, n
				continue
			}
			switch strings.ToLower(k) {
			case "mem":
				pct, err := strconv.ParseFloat(strings.TrimSuffix(v, "%"), 64)
				if err != nil || pct < 0 || pct > 100 {
					return nil, fmt.Errorf("core: queue %q: bad mem share %q", spec.Name, v)
				}
				spec.MemFraction = pct / 100
			case "prio":
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("core: queue %q: bad priority %q", spec.Name, v)
				}
				spec.Priority = n
			case "short":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("core: queue %q: bad short-query threshold %q", spec.Name, v)
				}
				spec.MaxEstRows = n
			case "timeout":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("core: queue %q: bad timeout %q", spec.Name, v)
				}
				spec.Timeout = d
			default:
				return nil, fmt.Errorf("core: queue %q: unknown attribute %q", spec.Name, k)
			}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
