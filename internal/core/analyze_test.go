package core

import (
	"fmt"
	"strings"
	"testing"

	"redshift/internal/catalog"
	"redshift/internal/exec"
)

// catalogStatsZero builds the zeroed statistics a freshly created table
// carries (Rows == 0 means "never analyzed" to the planner).
func catalogStatsZero(db *Database, id int64) catalog.TableStats {
	def, _ := db.Catalog().GetByID(id)
	return catalog.TableStats{Cols: make([]catalog.ColumnStats, len(def.Columns))}
}

// Regression for the NDV merge bug: sales is hash-distributed by
// product_id, so each of the 4 slices sees only ~5 of the 20 distinct
// products. The old max-of-NDV merge reported ~5; the HLL sketch union
// must report the true 20 (and ~1000 for ts, whose values are spread
// across every slice).
func TestAnalyzeUnionsNDVAcrossSlices(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	mustExec(t, db, `ANALYZE sales`)
	stats, err := db.Catalog().Stats(mustTable(t, db, "sales"))
	if err != nil {
		t.Fatal(err)
	}
	if ndv := stats.Cols[1].NDV; ndv < 19 || ndv > 21 {
		t.Errorf("product_id NDV = %d, want within 5%% of 20 (max-of-slices would be ~5)", ndv)
	}
	if ndv := stats.Cols[0].NDV; ndv < 950 || ndv > 1050 {
		t.Errorf("ts NDV = %d, want within 5%% of 1000", ndv)
	}
	if stats.Rows != 1000 {
		t.Errorf("Rows = %d", stats.Rows)
	}
}

// ANALYZE over a DISTSTYLE ALL table must count one replica, not every
// node's copy: row counts, null counts and unsorted-row counts are logical
// properties of the table.
func TestAnalyzeDistAllNotReplicaMultiplied(t *testing.T) {
	db := openDB(t, exec.Compiled) // 2 nodes: replicated twice
	mustExec(t, db, `CREATE TABLE dall (k BIGINT, v BIGINT) DISTSTYLE ALL`)
	var buf strings.Builder
	for i := 0; i < 100; i++ {
		if i%4 == 0 {
			fmt.Fprintf(&buf, "%d|\n", i) // empty field parses as NULL
		} else {
			fmt.Fprintf(&buf, "%d|%d\n", i, i*2)
		}
	}
	db.cfg.DataStore.Put("dall/1.csv", []byte(buf.String()))
	mustExec(t, db, `COPY dall FROM 'dall/'`)
	mustExec(t, db, `ANALYZE dall`)

	stats, err := db.Catalog().Stats(mustTable(t, db, "dall"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 100 {
		t.Errorf("Rows = %d, want 100 (2-node replica must not double it)", stats.Rows)
	}
	if nc := stats.Cols[1].NullCount; nc != 25 {
		t.Errorf("NullCount = %d, want 25", nc)
	}
	if ndv := stats.Cols[0].NDV; ndv < 95 || ndv > 105 {
		t.Errorf("k NDV = %d, want ~100", ndv)
	}
	if stats.UnsortedRows > 100 {
		t.Errorf("UnsortedRows = %d, exceeds the table's logical rows", stats.UnsortedRows)
	}
}

// ANALYZE's streaming per-segment merge must agree with the load path's
// whole-table computation: COPY's stats (computed over the full logical
// row set at once) and a later ANALYZE (one segment at a time) describe
// the same table.
func TestAnalyzeStreamingMatchesLoadStats(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	id := mustTable(t, db, "sales")
	fromLoad, err := db.Catalog().Stats(id)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `ANALYZE sales`)
	fromAnalyze, err := db.Catalog().Stats(id)
	if err != nil {
		t.Fatal(err)
	}
	if fromAnalyze.Rows != fromLoad.Rows {
		t.Errorf("Rows: analyze %d vs load %d", fromAnalyze.Rows, fromLoad.Rows)
	}
	for ci := range fromLoad.Cols {
		l, a := fromLoad.Cols[ci], fromAnalyze.Cols[ci]
		if a.Min != l.Min || a.Max != l.Max {
			t.Errorf("col %d bounds: analyze [%v,%v] vs load [%v,%v]", ci, a.Min, a.Max, l.Min, l.Max)
		}
		if a.NullCount != l.NullCount || a.WidthSum != l.WidthSum {
			t.Errorf("col %d counters: analyze (%d,%d) vs load (%d,%d)",
				ci, a.NullCount, a.WidthSum, l.NullCount, l.WidthSum)
		}
		if l.NDV > 0 {
			lo, hi := l.NDV*95/100, l.NDV*105/100
			if a.NDV < lo || a.NDV > hi {
				t.Errorf("col %d NDV: analyze %d vs load %d", ci, a.NDV, l.NDV)
			}
		}
	}
}

// Never-ANALYZEd tables plan from the storage layer's visible row counts:
// a tiny fresh inner table broadcasts instead of shuffling.
func TestPlannerFallsBackToSegmentCounts(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	// Erase the load-time statistics to simulate a stats-less catalog
	// (pre-STATUPDATE loads, restored snapshots).
	for _, name := range []string{"sales", "products"} {
		id := mustTable(t, db, name)
		if err := db.Catalog().ReplaceStats(id, catalogStatsZero(db, id)); err != nil {
			t.Fatal(err)
		}
	}
	out := explainText(t, db, `EXPLAIN SELECT s.ts FROM sales s JOIN products p ON s.qty = p.id`)
	if !strings.Contains(out, "DS_BCAST_INNER") {
		t.Errorf("fresh small inner table should broadcast via segment-count fallback:\n%s", out)
	}
	// The fallback also annotates the scan with its visible row count.
	if !strings.Contains(out, "rows=1000") {
		t.Errorf("EXPLAIN missing fallback cardinality:\n%s", out)
	}
}
