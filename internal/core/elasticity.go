package core

import (
	"errors"
	"fmt"
	"time"

	"redshift/internal/faults"
	"redshift/internal/sql"
)

// This file is the data plane's side of online elasticity (§3.1): the
// write-state machine an online resize drives on the source cluster, the
// observability hooks behind stv_resize / stv_burst_clusters, and the read
// classification the concurrency-scaling router uses.

// Write-state values. A database accepts writes, rejects them transiently
// (the resize cutover window — the client should back off and resend), or
// rejects them permanently (a decommissioned source after the endpoint
// moved — stale handles must never write data the new cluster won't have).
const (
	stateWritable int32 = iota
	stateReadOnly
	stateDecommissioned
)

// SetReadOnly toggles transient write rejection ("we ... put the original
// cluster in read-only mode", §3.1). Rejections in this state are
// classified retryable.
func (db *Database) SetReadOnly(ro bool) {
	if ro {
		db.writeState.Store(stateReadOnly)
	} else {
		db.writeState.Store(stateWritable)
	}
}

// ReadOnly reports whether writes are currently rejected.
func (db *Database) ReadOnly() bool { return db.writeState.Load() != stateWritable }

// Decommission marks the database permanently write-dead: the endpoint has
// moved to a resize target, so a write accepted here would be silently
// lost. Unlike the cutover window this rejection is NOT retryable — the
// caller must reconnect to the endpoint.
func (db *Database) Decommission() { db.writeState.Store(stateDecommissioned) }

// Decommissioned reports whether the endpoint has moved away for good.
func (db *Database) Decommissioned() bool { return db.writeState.Load() == stateDecommissioned }

// errDecommissioned is the fatal write rejection of a decommissioned
// source. It is rejected before any mutation, so an endpoint that
// re-resolves the current database may safely replay the statement there.
var errDecommissioned = errors.New("core: cluster is decommissioned (resize complete; reconnect to the endpoint)")

// IsDecommissioned reports whether err is the decommissioned-cluster write
// rejection (the endpoint uses this to replay a statement that raced the
// final swap onto the new primary).
func IsDecommissioned(err error) bool { return errors.Is(err, errDecommissioned) }

// errIfReadOnly guards write statements, classifying the rejection per the
// retryable-error taxonomy.
func (db *Database) errIfReadOnly() error {
	switch db.writeState.Load() {
	case stateReadOnly:
		return faults.MarkRetryable(fmt.Errorf("core: cluster is in read-only mode (resize in progress)"))
	case stateDecommissioned:
		return errDecommissioned
	}
	return nil
}

// beginWrite admits one write statement: it fails fast when writes are
// rejected and otherwise registers the statement with the quiesce gate so
// QuiesceWrites can wait for it to finish publishing. The returned release
// MUST run on every exit path.
func (db *Database) beginWrite() (release func(), err error) {
	if err := db.errIfReadOnly(); err != nil {
		return nil, err
	}
	db.writeGate.RLock()
	// Re-check under the gate: a quiesce that won the race flipped the
	// state before blocking on the gate, so this write must not slip in.
	if err := db.errIfReadOnly(); err != nil {
		db.writeGate.RUnlock()
		return nil, err
	}
	return db.writeGate.RUnlock, nil
}

// QuiesceWrites opens the resize cutover window: new writes fail
// immediately with a retryable error, and the call returns only once every
// in-flight write statement has finished publishing — after it returns the
// table set is frozen, so the final delta copy misses nothing that was
// acknowledged to a client.
func (db *Database) QuiesceWrites() {
	db.writeState.Store(stateReadOnly)
	db.writeGate.Lock()
	//lint:ignore SA2001 the empty critical section is the drain barrier
	db.writeGate.Unlock()
}

// ResumeWrites closes the cutover window after a failed resize rolls back:
// the source is authoritative again.
func (db *Database) ResumeWrites() { db.writeState.Store(stateWritable) }

// ResizeProgress is the live state of an online resize, published on the
// source (and, once done, the target) database by the control-plane
// workflow and surfaced through stv_resize.
type ResizeProgress struct {
	Active        bool
	Phase         string // provision|schema|snapshot-copy|catch-up|cutover|done|failed: <phase>
	FromNodes     int
	ToNodes       int
	TablesTotal   int64
	TablesCopied  int64
	RowsCopied    int64
	CatchupRounds int64
	Started       time.Time
}

// SetResizeProgress publishes the current resize state.
func (db *Database) SetResizeProgress(p ResizeProgress) { db.resizeProgress.Store(&p) }

// ResizeProgress returns the last published resize state (zero value when
// no resize ever touched this database).
func (db *Database) ResizeProgress() ResizeProgress {
	if p := db.resizeProgress.Load(); p != nil {
		return *p
	}
	return ResizeProgress{}
}

// BurstClusterInfo is one concurrency-scaling cluster's row in
// stv_burst_clusters.
type BurstClusterInfo struct {
	ID            int64
	State         string // hydrating | serving | retired | failed
	BackupID      string
	SnapshotXid   int64
	RoutedQueries int64
	Fallbacks     int64
	Started       time.Time
}

// SetBurstInfoSource installs the provider behind stv_burst_clusters (the
// control plane's burst manager). A nil source yields an empty table.
func (db *Database) SetBurstInfoSource(fn func() []BurstClusterInfo) {
	db.burstInfo.Store(&fn)
}

func (db *Database) burstInfoRows() []BurstClusterInfo {
	if fn := db.burstInfo.Load(); fn != nil && *fn != nil {
		return (*fn)()
	}
	return nil
}

// QueuePressure reports the WLM queue depth and the longest current queue
// wait — the burst scale-out policy's signal.
func (db *Database) QueuePressure() (depth int, oldestWait time.Duration) {
	return db.wlm.QueuePressure()
}

// RoutableSelect reports whether stmt is a data-plane SELECT the
// concurrency-scaling tier may serve — it has a FROM and references no
// system tables (those describe the cluster answering them, so they must
// not leave the primary). It returns the normalized text for result-cache
// probing and the referenced table names for the router's staleness check.
func RoutableSelect(stmt sql.Statement) (norm string, tables []string, ok bool) {
	sel, isSel := stmt.(*sql.Select)
	if !isSel || sel.From == nil || isSystemTable(sel.From.Table) {
		return "", nil, false
	}
	tables = append(tables, sel.From.Table)
	for _, j := range sel.Joins {
		if isSystemTable(j.Table.Table) {
			return "", nil, false
		}
		tables = append(tables, j.Table.Table)
	}
	return sql.Normalize(sel), tables, true
}

// HasFreshResult reports whether the normalized statement currently has a
// version-valid result-cache entry. The probe is a peek: it touches
// neither the LRU order nor the hit/miss counters, so routing decisions
// don't distort stv_result_cache.
func (db *Database) HasFreshResult(norm string) bool {
	v, ok := db.resultCache.Peek(norm)
	if !ok {
		return false
	}
	return db.versionsMatch(v.(*resultEntry).tables)
}
