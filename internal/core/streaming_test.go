package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"redshift/internal/exec"
)

// explainText flattens an EXPLAIN result to one string.
func explainText(t *testing.T, db *Database, query string) string {
	t.Helper()
	res := mustExec(t, db, query)
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].S)
		b.WriteByte('\n')
	}
	return b.String()
}

// Regression: EXPLAIN over a system table must bind against the transient
// system catalog, exactly like the SELECT it describes (the persistent
// catalog has no stl_/stv_ definitions).
func TestExplainSystemTable(t *testing.T) {
	db := openDB(t, exec.Compiled)
	out := explainText(t, db, `EXPLAIN SELECT * FROM stl_query`)
	if !strings.Contains(out, "Seq Scan on stl_query") {
		t.Fatalf("EXPLAIN stl_query missing scan node:\n%s", out)
	}
	out = explainText(t, db, `EXPLAIN SELECT slice, blocks_read FROM stv_slice_stats WHERE slice = 0`)
	if !strings.Contains(out, "Seq Scan on stv_slice_stats") {
		t.Fatalf("EXPLAIN stv_slice_stats missing scan node:\n%s", out)
	}
}

// EXPLAIN renders the lowered physical dataflow: partial/final operator
// split, data-movement (network) nodes, and cardinality annotations.
func TestExplainPhysicalTree(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	mustExec(t, db, `ANALYZE sales`)

	out := explainText(t, db, `
		EXPLAIN SELECT p.category, SUM(s.qty) AS total
		FROM sales s JOIN products p ON s.product_id = p.id
		GROUP BY p.category ORDER BY total DESC LIMIT 2`)
	for _, want := range []string{
		"XN Limit (rows=2)",
		"XN Merge (order by: total desc)",
		"XN HashAggregate",
		"XN Partial HashAggregate",
		"Hash Join DS_DIST_NONE",
		"Seq Scan on sales",
		"Seq Scan on products",
		"(rows=1000 width=4)", // ANALYZEd base-scan cardinality annotation
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}

	// Force the misaligned join to shuffle both sides.
	db.cfg.Plan.BroadcastRows = 1
	const misaligned = `SELECT s.ts FROM sales s JOIN products p ON s.qty = p.id
		ORDER BY s.ts LIMIT 3`
	out = explainText(t, db, `EXPLAIN `+misaligned)
	if n := strings.Count(out, "XN Network (Shuffle: "); n != 2 {
		t.Errorf("want 2 shuffle network nodes, got %d:\n%s", n, out)
	}
	for _, want := range []string{
		"Hash Join DS_DIST_BOTH",
		"XN SliceTopN (order by: ts asc; limit 3)",
		"XN Network (Gather: merge-sorted)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
	// And run it: the probe side re-sources itself through the exchange.
	res := mustExec(t, db, misaligned)
	if len(res.Rows) != 3 || res.Rows[0][0].I != 10000 || res.Rows[2][0].I != 10002 {
		t.Errorf("shuffled join rows = %v", res.Rows)
	}
	if res.Stats.NetBytes == 0 {
		t.Error("shuffle moved zero bytes")
	}
}

// seedWide loads a table big enough that each slice scans many blocks.
func seedWide(t *testing.T, db *Database, rows int) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE wide (
		id BIGINT NOT NULL, grp BIGINT, val BIGINT
	) DISTSTYLE KEY DISTKEY(id)`)
	var data strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&data, "%d|%d|%d\n", i, i%7, i%100)
	}
	db.cfg.DataStore.Put("lake/wide/w.csv", []byte(data.String()))
	mustExec(t, db, `COPY wide FROM 's3://lake/wide/'`)
}

// The streaming executor's peak live-batch count must be bounded by
// O(slices × pipeline depth), not by the number of batches the scan
// produces — the whole point of the fused per-slice dataflow.
func TestBatchesInFlightHighWater(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedWide(t, db, 20000) // BlockCap 64 → ≈312 scan batches across 4 slices

	res := mustExec(t, db, `SELECT grp, SUM(val) AS total FROM wide GROUP BY grp ORDER BY grp`)
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	scanBatches := int64(20000 / 64) // lower bound on batches the scan emitted
	peak := db.metrics.Gauge("exec_batches_in_flight_peak").Value()
	if peak < 1 {
		t.Fatalf("peak in-flight batches = %d, want >= 1", peak)
	}
	// 4 slices × a pipeline a few operators deep, each holding at most one
	// outstanding batch: far below the ~312 batches a materializing
	// executor would hold live at the stage barrier.
	const bound = 48
	if peak > bound {
		t.Errorf("peak in-flight batches = %d, want <= %d (slices × depth)", peak, bound)
	}
	if peak >= scanBatches/2 {
		t.Errorf("peak %d not clearly below scan batch count %d: intermediates look materialized", peak, scanBatches)
	}
	if live := db.metrics.Gauge("exec_batches_in_flight").Value(); live != 0 {
		t.Errorf("live in-flight gauge = %d after query, want 0", live)
	}
}

// Concurrent SELECTs drive many per-slice pipelines (and their exchange
// goroutines) at once; run under -race via `make race`.
func TestConcurrentStreamingSelects(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)

	queries := []struct {
		sql  string
		rows int
	}{
		{`SELECT p.category, SUM(s.qty) AS total FROM sales s JOIN products p ON s.product_id = p.id GROUP BY p.category ORDER BY total DESC`, 3},
		{`SELECT ts FROM sales ORDER BY ts LIMIT 10`, 10},
		{`SELECT DISTINCT region FROM sales ORDER BY region`, 2},
		{`SELECT s.ts FROM sales s JOIN products p ON s.qty = p.id ORDER BY s.ts LIMIT 5`, 5},
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				q := queries[(w+rep)%len(queries)]
				res, err := db.Execute(q.sql)
				if err != nil {
					errs[w] = err
					return
				}
				if len(res.Rows) != q.rows {
					errs[w] = fmt.Errorf("%s: got %d rows, want %d", q.sql, len(res.Rows), q.rows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
