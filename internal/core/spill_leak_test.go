package core

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"redshift/internal/cluster"
	"redshift/internal/exec"
	"redshift/internal/faults"
	"redshift/internal/s3sim"
)

// openSpillDB builds a memory-governed database whose every query runs
// under grant bytes and spills into dir. perRead > 0 adds latency to each
// primary block read so in-flight queries are slow enough to abort
// mid-spill deterministically.
func openSpillDB(t *testing.T, grant int64, dir string, perRead time.Duration) *Database {
	t.Helper()
	cfg := Config{
		Cluster:         cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 16},
		Mode:            exec.Compiled,
		DataStore:       s3sim.New(),
		BlockCacheBytes: -1,
		QuerySlots:      1,
		WLMSlotMemBytes: grant,
		SpillDir:        dir,
	}
	if perRead > 0 {
		inj := faults.NewInjector(&faults.Plan{Seed: 7, Sites: map[string]faults.Rule{
			faults.SitePrimaryRead: {Latency: perRead, LatencyProb: 1},
		}})
		inj.SetEnabled(true)
		cfg.Faults = inj
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// seedSpillWide loads a table whose GROUP BY id has one group per row, so
// hash aggregation outgrows a KiB-scale grant almost immediately.
func seedSpillWide(t *testing.T, db *Database, rows int) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE wide (
		id BIGINT NOT NULL, grp BIGINT, val BIGINT
	) DISTSTYLE KEY DISTKEY(id)`)
	var data strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&data, "%d|%d|%d\n", i, i%7, i%100)
	}
	db.cfg.DataStore.Put("lake/wide/w.csv", []byte(data.String()))
	mustExec(t, db, `COPY wide FROM 's3://lake/wide/'`)
}

// assertSpillHygiene checks the invariants every query exit path must
// restore: tracked memory back to zero, no pooled batch in flight, and no
// per-query scratch directory left on disk.
func assertSpillHygiene(t *testing.T, db *Database, dir string) {
	t.Helper()
	if n := db.metrics.Gauge("exec_mem_bytes").Value(); n != 0 {
		t.Errorf("exec_mem_bytes = %d after queries finished, want 0", n)
	}
	assertNoBatchLeaks(t, db)
	ents, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("leftover scratch entry %s in %s", e.Name(), dir)
	}
}

// TestSpillSuccessReleasesEverything: governed queries that spill on every
// blocking operator still drain clean — memory, batches and scratch files.
func TestSpillSuccessReleasesEverything(t *testing.T) {
	dir := t.TempDir()
	db := openSpillDB(t, 16<<10, dir, 0)
	seedSpillWide(t, db, 6000)

	for _, q := range []string{
		`SELECT id, SUM(val) AS total FROM wide GROUP BY id ORDER BY id`,
		`SELECT a.id, b.val FROM wide a JOIN wide b ON a.id = b.id ORDER BY a.id`,
		`SELECT id, grp, val FROM wide ORDER BY val, id`,
	} {
		res := mustExec(t, db, q)
		if len(res.Rows) != 6000 {
			t.Fatalf("%s: rows = %d, want 6000", q, len(res.Rows))
		}
	}
	if n := db.metrics.Counter("spill_bytes_total").Value(); n == 0 {
		t.Fatal("battery never spilled — grant too generous for the test to mean anything")
	}
	if n := db.metrics.Counter("spilled_queries_total").Value(); n < 3 {
		t.Errorf("spilled_queries_total = %d, want >= 3", n)
	}
	assertSpillHygiene(t, db, dir)
}

// abortMidSpill starts a slow spilling query, waits until spill bytes have
// actually hit disk, then aborts it via abort(). Returns the query error.
func abortMidSpill(t *testing.T, db *Database, abort func(qid int64)) error {
	t.Helper()
	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := db.Execute(`SELECT id, SUM(val) AS total FROM wide GROUP BY id ORDER BY id`)
		done <- outcome{err}
	}()

	// Wait for the query to demonstrably spill (live scratch-dir bytes via
	// the stv_query_memory snapshot), then pull the plug while its
	// operators still hold scratch files open.
	deadline := time.Now().Add(10 * time.Second)
	var target int64
	for target == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never spilled")
		}
		for _, q := range db.queryMemSnapshot() {
			if q.spilled > 0 {
				target = q.id
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	abort(target)
	select {
	case o := <-done:
		return o.err
	case <-time.After(30 * time.Second):
		t.Fatal("aborted query never returned")
		return nil
	}
}

// TestSpillCancelMidSpillCleansUp: CANCEL lands while spill files are
// open and partially written; the query unwinds, deletes its scratch dir,
// returns its memory and frees its WLM slot.
func TestSpillCancelMidSpillCleansUp(t *testing.T) {
	dir := t.TempDir()
	db := openSpillDB(t, 8<<10, dir, 200*time.Microsecond)
	seedSpillWide(t, db, 8000)

	err := abortMidSpill(t, db, func(qid int64) { db.Cancel(qid) })
	if err == nil {
		t.Fatal("cancelled mid-spill query returned a result")
	}
	var sawCancelled bool
	for _, r := range db.QueryLog().Records() {
		if r.State == "cancelled" {
			sawCancelled = true
		}
	}
	if !sawCancelled {
		t.Error("no stl_query record in state 'cancelled'")
	}

	// The slot and scratch space are free for the next statement.
	db.inj.SetEnabled(false)
	res := mustExec(t, db, `SELECT COUNT(*) FROM wide`)
	if res.Rows[0][0].I != 8000 {
		t.Errorf("post-cancel count = %d, want 8000", res.Rows[0][0].I)
	}
	assertSpillHygiene(t, db, dir)
}

// TestSpillTimeoutMidSpillCleansUp: same invariants when the abort comes
// from statement_timeout expiring rather than an explicit CANCEL.
func TestSpillTimeoutMidSpillCleansUp(t *testing.T) {
	dir := t.TempDir()
	db := openSpillDB(t, 8<<10, dir, 500*time.Microsecond)
	seedSpillWide(t, db, 8000)

	mustExec(t, db, `SET statement_timeout TO 40`)
	_, err := db.Execute(`SELECT id, SUM(val) AS total FROM wide GROUP BY id ORDER BY id`)
	if err == nil {
		t.Fatal("slow spilling query beat a 40ms statement_timeout")
	}
	if !strings.Contains(err.Error(), "statement timeout") {
		t.Errorf("error %q does not name the timeout", err)
	}
	if db.metrics.Counter("spill_bytes_total").Value() == 0 {
		t.Error("query timed out before spilling — shrink the grant or slow the reads")
	}

	mustExec(t, db, `SET statement_timeout TO 0`)
	db.inj.SetEnabled(false)
	res := mustExec(t, db, `SELECT COUNT(*) FROM wide`)
	if res.Rows[0][0].I != 8000 {
		t.Errorf("post-timeout count = %d, want 8000", res.Rows[0][0].I)
	}
	assertSpillHygiene(t, db, dir)
}

// TestStvQueryMemoryVisibility: an in-flight governed query is observable
// through stv_query_memory with its grant, and the row disappears once it
// finishes.
func TestStvQueryMemoryVisibility(t *testing.T) {
	dir := t.TempDir()
	db := openSpillDB(t, 32<<10, dir, 200*time.Microsecond)
	seedSpillWide(t, db, 8000)

	done := make(chan struct{})
	go func() {
		defer close(done)
		db.Execute(`SELECT id, SUM(val) AS total FROM wide GROUP BY id ORDER BY id`)
	}()

	deadline := time.Now().Add(10 * time.Second)
	var saw bool
	for !saw && time.Now().Before(deadline) {
		res, err := db.Execute(`SELECT query, grant_bytes, used_bytes, spill_bytes FROM stv_query_memory`)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Rows {
			if r[1].I != 32<<10 {
				t.Errorf("grant_bytes = %d, want %d", r[1].I, 32<<10)
			}
			saw = true
		}
		time.Sleep(time.Millisecond)
	}
	if !saw {
		t.Error("running governed query never appeared in stv_query_memory")
	}
	<-done

	res := mustExec(t, db, `SELECT COUNT(*) FROM stv_query_memory`)
	if n := res.Rows[0][0].I; n != 0 {
		t.Errorf("stv_query_memory rows after completion = %d, want 0", n)
	}
	assertSpillHygiene(t, db, dir)
}
