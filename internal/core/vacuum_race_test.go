package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"redshift/internal/cluster"
	"redshift/internal/s3sim"
)

// TestVacuumConcurrentScanCacheCoherence is the regression for the block
// cache poisoning race the workload replayer exposed: VACUUM rebuilds a
// table's slices into fresh segments that REUSE block identities, and a
// scan that resolved its visible segments before the rewrite could
// re-insert a stale decode into the cache after InvalidateTable had
// already run — every later scan of the rewritten block then read a
// wrong-length (wrong-content) vector and the vectorized filter panicked
// with an index out of range. The cache's per-table epoch fence kills
// both directions (stale hits and stale puts); this test hammers the
// exact interleaving.
func TestVacuumConcurrentScanCacheCoherence(t *testing.T) {
	db, err := Open(Config{
		Cluster:   cluster.Config{Nodes: 1, SlicesPerNode: 2, BlockCap: 32},
		DataStore: s3sim.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE churn (id BIGINT NOT NULL, v BIGINT) DISTSTYLE KEY DISTKEY(id)`)
	insert := func(base, n int) {
		var b strings.Builder
		b.WriteString(`INSERT INTO churn VALUES `)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "(%d, %d)", base+i, i%7)
		}
		mustExec(t, db, b.String())
	}
	// Several differently-sized batches: multiple segments whose block row
	// counts change when VACUUM merges them — the shape mismatch that made
	// poisoned cache entries panic rather than silently corrupt.
	for i := 0; i < 4; i++ {
		insert(i*1000, 40+i*17)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				// Distinct predicates defeat the result cache: every scan
				// really decodes (or cache-hits) blocks.
				q := fmt.Sprintf(`SELECT COUNT(*), SUM(v) FROM churn WHERE v <> %d`, (g*31+i)%100+10)
				if _, err := db.Execute(q); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for i := 0; i < 12; i++ {
		insert(10000+i*1000, 30+i*11)
		if _, err := db.Execute(`VACUUM churn`); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent scan failed during VACUUM churn: %v", err)
	}

	// The final state answers correctly from a coherent cache.
	res := mustExec(t, db, `SELECT COUNT(*) FROM churn`)
	var want int64
	for i := 0; i < 4; i++ {
		want += int64(40 + i*17)
	}
	for i := 0; i < 12; i++ {
		want += int64(30 + i*11)
	}
	if got := res.Rows[0][0].I; got != want {
		t.Errorf("post-churn COUNT(*) = %d, want %d", got, want)
	}
}
