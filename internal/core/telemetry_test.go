package core

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// sliceSpanSum parses an EXPLAIN ANALYZE rendering and returns how many
// per-slice spans carry one numeric attribute and the attribute's sum
// across them (scan slices carry blocks_read; agg slices carry groups).
func sliceSpanSum(t *testing.T, res *Result, attr string) (count int, sum int64) {
	t.Helper()
	for _, row := range res.Rows {
		line := strings.TrimLeft(row[0].S, " ")
		if !strings.HasPrefix(line, "slice ") {
			continue
		}
		for _, field := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(field, attr+"="); ok {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					t.Fatalf("bad attr in %q: %v", line, err)
				}
				count++
				sum += n
			}
		}
	}
	return count, sum
}

func TestExplainAnalyzeSpanTree(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		res := mustExec(t, db, `EXPLAIN ANALYZE SELECT p.category, sum(s.qty) AS total
			FROM sales s JOIN products p ON s.product_id = p.id
			GROUP BY p.category ORDER BY total DESC`)
		if res.Stats.BlocksRead == 0 {
			t.Fatal("query read no blocks")
		}
		text := make([]string, 0, len(res.Rows))
		for _, row := range res.Rows {
			text = append(text, row[0].S)
		}
		rendered := strings.Join(text, "\n")
		for _, want := range []string{"query (", "plan (", "scan sales", "join products", "partial-agg", "leader-merge", "finalize"} {
			if !strings.Contains(rendered, want) {
				t.Errorf("rendering missing %q:\n%s", want, rendered)
			}
		}
		// Both scans (base + collocated build side) run on every slice.
		nslices := db.Cluster().NumSlices()
		count, blocks := sliceSpanSum(t, res, "blocks_read")
		if count != 2*nslices {
			t.Errorf("scan slice spans = %d, want %d:\n%s", count, 2*nslices, rendered)
		}
		// The per-slice scan spans account every block the query read.
		if blocks != res.Stats.BlocksRead {
			t.Errorf("slice spans sum to %d blocks, stats say %d:\n%s", blocks, res.Stats.BlocksRead, rendered)
		}
	})
}

func TestExplainAnalyzeRejects(t *testing.T) {
	db := openDB(t, 0)
	seedSales(t, db)
	for _, q := range []string{
		`EXPLAIN ANALYZE SELECT 1`,                    // no FROM: nothing to trace
		`SELECT querytxt FROM missing_sys`,            // unknown table still errors
		`EXPLAIN ANALYZE SELECT query FROM stl_query`, // system tables are leader-only
	} {
		if _, err := db.Execute(q); err == nil {
			t.Errorf("%s: expected error", q)
		}
	}
}

func TestStlQuery(t *testing.T) {
	db := openDB(t, 0)
	seedSales(t, db)
	// The filter keeps this a real scan: a bare COUNT(*) is now answered
	// from block metadata and would log blocks_read = 0.
	mustExec(t, db, `SELECT count(*) AS n FROM sales WHERE qty >= 0`)
	mustExec(t, db, `SELECT sum(qty) AS q FROM sales WHERE region = 'us'`)
	if _, err := db.Execute(`SELECT missing_col FROM sales`); err == nil {
		t.Fatal("bad query accepted")
	}

	res := mustExec(t, db, `SELECT query, querytxt, queue_ms, plan_ms, exec_ms, rows, blocks_read, aborted
		FROM stl_query ORDER BY query`)
	if len(res.Rows) != 3 {
		t.Fatalf("stl_query rows = %d, want 3 (2 ok + 1 aborted)", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].I != int64(i+1) {
			t.Errorf("row %d id = %d", i, row[0].I)
		}
		if row[2].F < 0 || row[3].F < 0 || row[4].F < 0 {
			t.Errorf("row %d has negative times: %v", i, row)
		}
	}
	first := res.Rows[0]
	if !strings.Contains(first[1].S, "COUNT") && !strings.Contains(strings.ToUpper(first[1].S), "COUNT") {
		t.Errorf("querytxt = %q", first[1].S)
	}
	if first[3].F <= 0 && first[4].F <= 0 {
		t.Errorf("first query has zero plan and exec time: plan=%g exec=%g", first[3].F, first[4].F)
	}
	if first[5].I != 1 {
		t.Errorf("count(*) result rows = %d", first[5].I)
	}
	if first[6].I == 0 {
		t.Error("count(*) read no blocks")
	}
	aborted := res.Rows[2]
	if aborted[7].I != 1 {
		t.Errorf("failed query not marked aborted: %v", aborted)
	}
	if res.Rows[0][7].I != 0 || res.Rows[1][7].I != 0 {
		t.Error("successful query marked aborted")
	}

	// Filters and aggregates work on system tables.
	agg := mustExec(t, db, `SELECT count(*) AS n FROM stl_query WHERE aborted = 0`)
	if agg.Rows[0][0].I != 2 {
		t.Errorf("aborted=0 count = %d", agg.Rows[0][0].I)
	}

	// System queries are not themselves logged, and no network traffic is
	// attributed to them.
	netBefore := db.Cluster().NetBytes()
	again := mustExec(t, db, `SELECT count(*) AS n FROM stl_query`)
	if again.Rows[0][0].I != 3 {
		t.Errorf("stl_query grew from reading it: %d", again.Rows[0][0].I)
	}
	if db.Cluster().NetBytes() != netBefore {
		t.Error("system query accounted network traffic")
	}
}

func TestStvSliceStats(t *testing.T) {
	db := openDB(t, 0)
	seedSales(t, db)
	mustExec(t, db, `SELECT sum(qty) AS n FROM sales`)
	res := mustExec(t, db, `SELECT slice, node, scans, blocks_read, rows_read FROM stv_slice_stats ORDER BY slice`)
	if len(res.Rows) != db.Cluster().NumSlices() {
		t.Fatalf("rows = %d, want one per slice", len(res.Rows))
	}
	var totalBlocks, totalRows int64
	for i, row := range res.Rows {
		if row[0].I != int64(i) {
			t.Errorf("row %d slice = %d", i, row[0].I)
		}
		wantNode := int64(i) / int64(db.Cluster().Config().SlicesPerNode)
		if row[1].I != wantNode {
			t.Errorf("slice %d node = %d, want %d", i, row[1].I, wantNode)
		}
		if row[2].I == 0 {
			t.Errorf("slice %d never scanned", i)
		}
		totalBlocks += row[3].I
		totalRows += row[4].I
	}
	if totalBlocks == 0 || totalRows < 1000 {
		t.Errorf("totals: blocks=%d rows=%d", totalBlocks, totalRows)
	}
}

func TestQueryMetricsRegistry(t *testing.T) {
	db := openDB(t, 0)
	seedSales(t, db)
	mustExec(t, db, `SELECT sum(qty) AS n FROM sales`)
	db.Execute(`SELECT nope FROM sales`)

	m := db.Telemetry()
	if got := m.Counter("query_total").Value(); got != 2 {
		t.Errorf("query_total = %d", got)
	}
	if got := m.Counter("query_errors_total").Value(); got != 1 {
		t.Errorf("query_errors_total = %d", got)
	}
	if m.Counter("query_blocks_read_total").Value() == 0 {
		t.Error("no blocks counted")
	}
	if m.Counter("net_replication_bytes_total").Value() == 0 {
		t.Error("COPY replication not counted by kind")
	}
	if m.Histogram("query_seconds").Count() != 1 {
		t.Errorf("query_seconds count = %d", m.Histogram("query_seconds").Count())
	}
	out := m.Render()
	for _, want := range []string{"query_total 2", "wlm_queries_total", "query_seconds_count 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

func TestQueryLogRecordsTrace(t *testing.T) {
	db := openDB(t, 0)
	seedSales(t, db)
	start := time.Now()
	mustExec(t, db, `SELECT sum(qty) AS n FROM sales`)
	recs := db.QueryLog().Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Trace == nil || r.Trace.Name() != "query" {
		t.Fatal("trace missing from query record")
	}
	if r.Start.Before(start.Add(-time.Second)) || r.End.Before(r.Start) {
		t.Errorf("bad times: start=%v end=%v", r.Start, r.End)
	}
	if r.BlocksRead == 0 || r.Rows != 1 {
		t.Errorf("record = %+v", r)
	}
}

func TestDateTruncWeekQuarterEndToEnd(t *testing.T) {
	bothModes(t, func(t *testing.T, db *Database) {
		mustExec(t, db, `CREATE TABLE events (id BIGINT, at TIMESTAMP)`)
		mustExec(t, db, `INSERT INTO events VALUES (1, '2026-01-01 13:45:07'), (2, '2025-11-15 00:00:00')`)
		res := mustExec(t, db, `SELECT id, date_trunc('week', at) AS w, date_trunc('quarter', at) AS q FROM events ORDER BY id`)
		if len(res.Rows) != 2 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		wantW := time.Date(2025, 12, 29, 0, 0, 0, 0, time.UTC).UnixMicro()
		wantQ := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixMicro()
		if res.Rows[0][1].I != wantW || res.Rows[0][2].I != wantQ {
			t.Errorf("row 1: week=%d quarter=%d", res.Rows[0][1].I, res.Rows[0][2].I)
		}
		wantQ2 := time.Date(2025, 10, 1, 0, 0, 0, 0, time.UTC).UnixMicro()
		if res.Rows[1][2].I != wantQ2 {
			t.Errorf("row 2 quarter = %d, want %d", res.Rows[1][2].I, wantQ2)
		}
	})
}
