package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"redshift/internal/cluster"
	"redshift/internal/faults"
	"redshift/internal/s3sim"
)

// openQueuedDB builds a database with named WLM queues.
func openQueuedDB(t *testing.T, pool int64, specs ...QueueSpec) *Database {
	t.Helper()
	db, err := Open(Config{
		Cluster:         cluster.Config{Nodes: 1, SlicesPerNode: 2, BlockCap: 64},
		DataStore:       s3sim.New(),
		WLMQueues:       specs,
		WLMSlotMemBytes: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestWLMRoute(t *testing.T) {
	db := openQueuedDB(t, 0,
		QueueSpec{Name: "express", Slots: 1, MaxEstRows: 100},
		QueueSpec{Name: "etl", Slots: 1},
		QueueSpec{Name: "default", Slots: 1},
	)
	cases := []struct {
		group string
		cost  int64
		want  string
	}{
		{"", 50, "express"},     // cheap and sized ⇒ fast lane
		{"etl", 50, "express"},  // fast lane wins over query_group
		{"", 101, "default"},    // over the threshold
		{"etl", 101, "etl"},     // routed by group
		{"ETL", 101, "etl"},     // case-insensitive
		{"nosuch", 101, "default"},
		{"", -1, "default"},     // unknown cost must never ride the fast lane
		{"etl", -1, "etl"},
	}
	for _, c := range cases {
		if got := db.wlm.Route(c.group, c.cost); got != c.want {
			t.Errorf("Route(%q, %d) = %q, want %q", c.group, c.cost, got, c.want)
		}
	}
}

// TestWLMNoCrossQueueLeakage saturates one queue and proves admission in
// every other queue is untouched — slots are physically partitioned, so a
// busy ETL queue cannot starve the dashboard queue (the structural QoS
// guarantee; in a single shared queue the same load head-of-line blocks
// everything).
func TestWLMNoCrossQueueLeakage(t *testing.T) {
	db := openQueuedDB(t, 0,
		QueueSpec{Name: "dash", Slots: 2},
		QueueSpec{Name: "etl", Slots: 2},
		QueueSpec{Name: "default", Slots: 1},
	)
	ctx := context.Background()

	// Fill every etl slot and park two more waiters behind them.
	var etlTickets []*WLMTicket
	for i := 0; i < 2; i++ {
		tk, err := db.wlm.AcquireQueueCtx(ctx, "etl")
		if err != nil {
			t.Fatal(err)
		}
		etlTickets = append(etlTickets, tk)
	}
	waitCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tk, err := db.wlm.AcquireQueueCtx(waitCtx, "etl"); err == nil {
				db.wlm.ReleaseTicket(tk)
			}
		}()
	}
	waitForDepth := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if depth, _ := db.wlm.QueuePressure(); depth == want {
				return
			}
			if time.Now().After(deadline) {
				depth, _ := db.wlm.QueuePressure()
				t.Fatalf("queue depth = %d, want %d", depth, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitForDepth(2)

	// dash admissions must be immediate: bounded wall time, zero queue wait.
	for i := 0; i < 4; i++ {
		admitCtx, acancel := context.WithTimeout(ctx, 2*time.Second)
		tk, err := db.wlm.AcquireQueueCtx(admitCtx, "dash")
		acancel()
		if err != nil {
			t.Fatalf("dash acquire %d blocked behind saturated etl: %v", i, err)
		}
		if tk.Queue != "dash" || tk.Wait != 0 {
			t.Fatalf("dash ticket = %+v, want immediate dash admission", tk)
		}
		db.wlm.ReleaseTicket(tk)
	}

	// No dash admission consumed an etl slot: etl is still saturated.
	for _, qs := range db.wlm.QueueStats() {
		switch qs.Name {
		case "etl":
			if qs.Active != 2 || qs.Queued != 2 {
				t.Errorf("etl = active %d queued %d, want 2/2", qs.Active, qs.Queued)
			}
		case "dash":
			if qs.PeakActive > 2 {
				t.Errorf("dash peak active %d > its 2 slots", qs.PeakActive)
			}
			if qs.TotalRun != 4 {
				t.Errorf("dash ran %d, want 4", qs.TotalRun)
			}
		}
	}

	cancel()
	for _, tk := range etlTickets {
		db.wlm.ReleaseTicket(tk)
	}
	wg.Wait()
	if s := db.WLMStats(); s.Active != 0 || s.Queued != 0 {
		t.Errorf("counters not drained: %+v", s)
	}
}

// TestWLMMemorySplit proves the per-queue memory grants partition the whole
// pool: explicit fractions are honored exactly, the rest is shared by slot
// count, and the per-queue budgets sum to (almost exactly) the pool.
func TestWLMMemorySplit(t *testing.T) {
	const pool = 1 << 30
	w, err := NewWLMQueues([]QueueSpec{
		{Name: "etl", Slots: 2, MemFraction: 0.5},
		{Name: "dash", Slots: 6},
		{Name: "default", Slots: 2},
	}, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, qs := range w.QueueStats() {
		budget := qs.MemPerSlot * int64(qs.Slots)
		total += budget
		switch qs.Name {
		case "etl":
			if want := int64(pool/2) / 2; qs.MemPerSlot != want {
				t.Errorf("etl grant = %d, want %d (50%% of pool over 2 slots)", qs.MemPerSlot, want)
			}
		case "dash":
			// dash holds 6 of the 8 implicit slots ⇒ 6/8 of the leftover half.
			if want := int64(float64(pool)*0.5*6/8) / 6; qs.MemPerSlot != want {
				t.Errorf("dash grant = %d, want %d", qs.MemPerSlot, want)
			}
		}
	}
	if total > pool || total < pool-pool/100 {
		t.Errorf("per-queue budgets sum to %d, want ≈ pool %d", total, pool)
	}

	// Fractions over 1 are a configuration error, not a silent over-commit.
	if _, err := NewWLMQueues([]QueueSpec{
		{Name: "a", Slots: 1, MemFraction: 0.7},
		{Name: "b", Slots: 1, MemFraction: 0.6},
	}, pool, nil); err == nil {
		t.Error("over-committed memory fractions were accepted")
	}
}

// TestWLMQueueTimeoutEviction proves a timed-out waiter is evicted with a
// retryable error, never holds a slot, and leaves the books balanced.
func TestWLMQueueTimeoutEviction(t *testing.T) {
	db := openQueuedDB(t, 0,
		QueueSpec{Name: "default", Slots: 1, Timeout: 30 * time.Millisecond},
	)
	ctx := context.Background()
	hold, err := db.wlm.AcquireQueueCtx(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.wlm.AcquireQueueCtx(ctx, "")
	if err == nil {
		t.Fatal("second acquire on a held 1-slot queue did not time out")
	}
	if !IsQueueTimeout(err) {
		t.Errorf("error %v is not a queue timeout", err)
	}
	if !faults.Retryable(err) {
		t.Errorf("queue eviction %v not marked retryable — it never ran, resend is safe", err)
	}
	db.wlm.ReleaseTicket(hold)

	// The slot freed cleanly: the next acquire is immediate.
	tk, err := db.wlm.AcquireQueueCtx(ctx, "")
	if err != nil || tk.Wait != 0 {
		t.Fatalf("post-eviction acquire = %+v, %v; want immediate", tk, err)
	}
	db.wlm.ReleaseTicket(tk)

	qs := db.wlm.QueueStats()[0]
	if qs.Timeouts != 1 || qs.Evictions != 1 {
		t.Errorf("timeouts/evictions = %d/%d, want 1/1", qs.Timeouts, qs.Evictions)
	}
	if qs.Active != 0 || qs.Queued != 0 {
		t.Errorf("books not balanced after eviction: %+v", qs)
	}
}

// TestWLMQueryEviction drives eviction through the SQL path: a query stuck
// behind a saturated, short-timeout queue fails retryably, is logged with
// state "evicted", and bumps query_evicted_total.
func TestWLMQueryEviction(t *testing.T) {
	db := openQueuedDB(t, 0,
		QueueSpec{Name: "default", Slots: 1, Timeout: 20 * time.Millisecond},
	)
	seedSales(t, db)
	hold, err := db.wlm.AcquireQueueCtx(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Execute(`SELECT COUNT(*) FROM sales WHERE qty > 2`)
	db.wlm.ReleaseTicket(hold)
	if err == nil {
		t.Fatal("query admitted into a held 1-slot queue")
	}
	if !faults.Retryable(err) {
		t.Errorf("evicted query error %v not retryable", err)
	}
	if n := db.Telemetry().Counter("query_evicted_total").Value(); n != 1 {
		t.Errorf("query_evicted_total = %d, want 1", n)
	}
	res := mustExec(t, db, `SELECT state, queue FROM stl_query WHERE state = 'evicted'`)
	if len(res.Rows) != 1 {
		t.Fatalf("stl_query evicted rows = %d, want 1", len(res.Rows))
	}
	if q := res.Rows[0][1].S; q != "default" {
		t.Errorf("evicted query logged queue %q", q)
	}

	// The freed queue admits the retry.
	if _, err := db.Execute(`SELECT COUNT(*) FROM sales WHERE qty > 2`); err != nil {
		t.Fatalf("retry after eviction: %v", err)
	}
}

// TestWLMQueryGroupIsolation proves SET query_group is session-scoped
// routing: sessions land in their own queues, RESET restores the default,
// and unknown groups are rejected at SET time.
func TestWLMQueryGroupIsolation(t *testing.T) {
	db := openQueuedDB(t, 0,
		QueueSpec{Name: "dash", Slots: 2},
		QueueSpec{Name: "etl", Slots: 2},
		QueueSpec{Name: "default", Slots: 2},
	)
	seedSales(t, db)

	etl := db.NewSession()
	defer etl.Close()
	plain := db.NewSession()
	defer plain.Close()

	if _, err := etl.Execute(`SET query_group TO etl`); err != nil {
		t.Fatal(err)
	}
	if _, err := etl.Execute(`SET query_group TO nosuch`); err == nil ||
		!strings.Contains(err.Error(), "dash") {
		t.Errorf("SET to unknown group: err = %v, want list of queues", err)
	}

	r1, err := etl.Execute(`SELECT SUM(qty) FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Queue != "etl" {
		t.Errorf("etl session query ran in queue %q", r1.Stats.Queue)
	}
	r2, err := plain.Execute(`SELECT SUM(qty) FROM sales WHERE qty > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Queue != "default" {
		t.Errorf("plain session query ran in queue %q", r2.Stats.Queue)
	}

	// RESET (SET ... TO default) restores default routing.
	if _, err := etl.Execute(`SET query_group TO none`); err != nil {
		t.Fatal(err)
	}
	r3, err := etl.Execute(`SELECT SUM(qty) FROM sales WHERE qty > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.Queue != "default" {
		t.Errorf("after reset, query ran in queue %q", r3.Stats.Queue)
	}
}

// TestWLMQueuePressureNoStaleWaiter is the regression for the stale
// oldest-wait race: pressure readings taken after a release must not count
// the just-admitted waiter as still queued — the burst policy prices
// depth × oldest-wait, and a phantom waiter with an ever-growing wait
// hydrates burst clusters for a queue that already drained.
func TestWLMQueuePressureNoStaleWaiter(t *testing.T) {
	db := openQueuedDB(t, 0, QueueSpec{Name: "default", Slots: 1})
	ctx := context.Background()
	hold, err := db.wlm.AcquireQueueCtx(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *WLMTicket, 1)
	go func() {
		tk, err := db.wlm.AcquireQueueCtx(ctx, "")
		if err != nil {
			panic(err)
		}
		admitted <- tk
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if depth, wait := db.wlm.QueuePressure(); depth == 1 && wait > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never became visible to QueuePressure")
		}
		time.Sleep(time.Millisecond)
	}
	db.wlm.ReleaseTicket(hold)
	tk := <-admitted
	// The waiter is admitted and still "running" (ticket held). Pressure
	// must read zero NOW — not after the ticket is released.
	if depth, wait := db.wlm.QueuePressure(); depth != 0 || wait != 0 {
		t.Errorf("pressure after admission = depth %d, oldest %v; want 0, 0", depth, wait)
	}
	if tk.Wait <= 0 {
		t.Errorf("admitted waiter's recorded wait = %v, want > 0", tk.Wait)
	}
	db.wlm.ReleaseTicket(tk)

	// Uncontended acquires must never flicker through the queued state
	// either (the old design's instant of phantom depth).
	stop := make(chan struct{})
	var maxDepth int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d, _ := db.wlm.QueuePressure(); d > maxDepth {
				maxDepth = d
			}
		}
	}()
	for i := 0; i < 200; i++ {
		tk, err := db.wlm.AcquireQueueCtx(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		db.wlm.ReleaseTicket(tk)
	}
	close(stop)
	wg.Wait()
	if maxDepth != 0 {
		t.Errorf("uncontended acquires showed phantom queue depth %d", maxDepth)
	}
}

// TestWLMPressureDrivesBurstThreshold exercises the pressure signal the
// way controlplane.BurstManager prices it (depth × oldest-wait × slot
// cost ≥ threshold): pain accumulates only while a waiter is actually
// blocked and collapses to zero the moment the queue drains.
func TestWLMPressureDrivesBurstThreshold(t *testing.T) {
	db := openQueuedDB(t, 0, QueueSpec{Name: "default", Slots: 1})
	ctx := context.Background()
	const slotCost, threshold = 1.0, 0.010 // 1 waiter × 10ms
	pain := func() float64 {
		depth, oldest := db.wlm.QueuePressure()
		return float64(depth) * oldest.Seconds() * slotCost
	}
	if pain() >= threshold {
		t.Fatal("idle WLM already over the burst threshold")
	}
	hold, err := db.wlm.AcquireQueueCtx(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *WLMTicket, 1)
	go func() {
		tk, _ := db.wlm.AcquireQueueCtx(ctx, "")
		admitted <- tk
	}()
	deadline := time.Now().Add(2 * time.Second)
	for pain() < threshold {
		if time.Now().After(deadline) {
			t.Fatal("queue pain never crossed the burst threshold")
		}
		time.Sleep(time.Millisecond)
	}
	db.wlm.ReleaseTicket(hold)
	tk := <-admitted
	if tk == nil {
		t.Fatal("waiter not admitted")
	}
	if p := pain(); p != 0 {
		t.Errorf("pain after drain = %v, want 0 — a stale reading here hydrates a burst cluster for nothing", p)
	}
	db.wlm.ReleaseTicket(tk)
}

// TestWLMParseQueueSpecs covers the server flag syntax round trip.
func TestWLMParseQueueSpecs(t *testing.T) {
	specs, err := ParseQueueSpecs("express=2,mem=20%,short=20000;dash=4,prio=5;etl=2,mem=50%,timeout=60s")
	if err != nil {
		t.Fatal(err)
	}
	want := []QueueSpec{
		{Name: "express", Slots: 2, MemFraction: 0.2, MaxEstRows: 20000},
		{Name: "dash", Slots: 4, Priority: 5},
		{Name: "etl", Slots: 2, MemFraction: 0.5, Timeout: time.Minute},
	}
	if len(specs) != len(want) {
		t.Fatalf("parsed %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec[%d] = %+v, want %+v", i, specs[i], want[i])
		}
	}
	for _, bad := range []string{"q", "q=x", "q=1,mem=150%", "q=1,short=-5", "q=1,weird=2"} {
		if _, err := ParseQueueSpecs(bad); err == nil {
			t.Errorf("ParseQueueSpecs(%q) accepted", bad)
		}
	}
}

// TestWLMQueueSystemTables proves stv_wlm_queues / stv_wlm_queue_state
// reflect live queue state — and, being system tables, stay queryable while
// every user queue is saturated.
func TestWLMQueueSystemTables(t *testing.T) {
	db := openQueuedDB(t, 1<<20,
		QueueSpec{Name: "dash", Slots: 1, Priority: 5},
		QueueSpec{Name: "default", Slots: 1},
	)
	hold, err := db.wlm.AcquireQueueCtx(context.Background(), "dash")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan struct{})
	go func() {
		close(queued)
		db.wlm.AcquireQueueCtx(ctx, "dash")
	}()
	<-queued
	deadline := time.Now().Add(2 * time.Second)
	for {
		if d, _ := db.wlm.QueuePressure(); d == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	res := mustExec(t, db, `SELECT queue, active, queued, oldest_wait_ms FROM stv_wlm_queue_state`)
	state := map[string][3]int64{}
	for _, r := range res.Rows {
		state[r[0].S] = [3]int64{r[1].I, r[2].I, r[3].I}
	}
	if s := state["dash"]; s[0] != 1 || s[1] != 1 {
		t.Errorf("stv_wlm_queue_state dash = %v, want active 1 queued 1", s)
	}
	if s := state["default"]; s[0] != 0 || s[1] != 0 {
		t.Errorf("stv_wlm_queue_state default = %v, want idle", s)
	}

	res = mustExec(t, db, `SELECT queue, slots, priority, mem_per_slot FROM stv_wlm_queues`)
	if len(res.Rows) != 2 {
		t.Fatalf("stv_wlm_queues rows = %d, want 2", len(res.Rows))
	}
	// Ordered by descending priority: dash first.
	if res.Rows[0][0].S != "dash" || res.Rows[0][2].I != 5 {
		t.Errorf("stv_wlm_queues[0] = %v, want dash prio 5", res.Rows[0])
	}
	for _, r := range res.Rows {
		if r[3].I <= 0 {
			t.Errorf("queue %s has no memory grant", r[0].S)
		}
	}
	db.wlm.ReleaseTicket(hold)
}
