package core

import (
	"container/list"
	"sort"
	"sync"

	"redshift/internal/plan"
	"redshift/internal/sql"
)

// lruCache is the bounded LRU behind both serving-path caches: the plan
// cache (cost 1 per entry, budget = entry count) and the result cache
// (cost = approximate result bytes, budget = Config.ResultCacheBytes).
// Entries carry their own version keys; staleness is detected lazily at
// lookup by the caller (version mismatch → Invalidate), never by scanning
// the cache on writes — a mutation costs nothing until the query repeats.
//
// A nil *lruCache is a disabled cache: every method is nil-receiver safe
// and Get always misses.
type lruCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element

	hits, misses, evictions, invalidations int64
}

// lruEntry is one cached artifact.
type lruEntry struct {
	key  string
	val  any
	cost int64
}

// cacheStats is a point-in-time snapshot for system tables and metrics.
type cacheStats struct {
	Hits, Misses, Evictions, Invalidations int64
	Entries, Used, Budget                  int64
}

// newLRUCache builds a cache with the given budget; budget <= 0 returns
// nil (disabled).
func newLRUCache(budget int64) *lruCache {
	if budget <= 0 {
		return nil
	}
	return &lruCache{budget: budget, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the entry under key, promoting it to most recently used.
func (c *lruCache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Peek returns the entry under key without promoting it or counting a
// hit/miss — a side-effect-free probe for routing decisions.
func (c *lruCache) Peek(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*lruEntry).val, true
}

// Put inserts or replaces the entry under key, evicting from the LRU tail
// until the budget holds. An entry costing more than the whole budget is
// silently not cached.
func (c *lruCache) Put(key string, val any, cost int64) {
	if c == nil || cost > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*lruEntry)
		c.used += cost - ent.cost
		ent.val, ent.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, cost: cost})
		c.used += cost
	}
	for c.used > c.budget {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
		c.evictions++
	}
}

// Invalidate removes the entry under key (a version-mismatch discard, not
// an eviction — counted separately so stv_*_cache distinguishes pressure
// from staleness).
func (c *lruCache) Invalidate(key string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
		c.invalidations++
	}
}

// Clear drops everything — catalog adoption (restore) replaces the version
// space wholesale, so every key is suspect.
func (c *lruCache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := int64(len(c.items))
	c.ll.Init()
	c.items = map[string]*list.Element{}
	c.used = 0
	c.invalidations += n
}

func (c *lruCache) removeLocked(el *list.Element) {
	ent := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.used -= ent.cost
}

// Stats snapshots the counters; the zero value is returned for a disabled
// cache.
func (c *lruCache) Stats() cacheStats {
	if c == nil {
		return cacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Entries: int64(len(c.items)), Used: c.used, Budget: c.budget,
	}
}

// tableVersion pins one referenced table's data version at artifact-build
// time; an artifact is valid only while every pinned version still matches
// the catalog.
type tableVersion struct {
	id  int64
	ver int64
}

// planEntry is a cached bound plan plus its invalidation key: the global
// catalog version (any DDL moves it) and the referenced tables' data
// versions (COPY/INSERT/DELETE/VACUUM/ANALYZE move those — ANALYZE matters
// because the plan embeds cardinality estimates from the stats it saw).
type planEntry struct {
	p          *plan.Plan
	catVersion int64
	tables     []tableVersion
}

// resultEntry is a cached query result plus the data versions of every
// table it read, captured before the executing query took its snapshot —
// so a version-matched hit can never be staler than executing again.
type resultEntry struct {
	res    *Result
	tables []tableVersion
}

// Budget returns the cache's byte (or entry) budget; 0 when disabled.
func (c *lruCache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}

// versionsMatch reports whether every pinned table data version still
// matches the live catalog — the lazy invalidation check both caches share.
func (db *Database) versionsMatch(tvs []tableVersion) bool {
	for _, tv := range tvs {
		if db.cat.DataVersion(tv.id) != tv.ver {
			return false
		}
	}
	return true
}

// captureTableVersions pins the current data version of every table a plan
// references, sorted by table id (deterministic, deduplicated — a
// self-join references one version, not two).
func (db *Database) captureTableVersions(p *plan.Plan) []tableVersion {
	out := make([]tableVersion, 0, len(p.Tables))
	for _, t := range p.Tables {
		id := t.Def.ID
		dup := false
		for _, tv := range out {
			if tv.id == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, tableVersion{id: id, ver: db.cat.DataVersion(id)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// planFor is stage 3 of the lifecycle: bind/plan with reuse. A cached plan
// is returned only while the global catalog version AND every referenced
// table's data version match what it was built under — DDL moves the
// former, data mutations and ANALYZE move the latter (a plan embeds
// cardinality estimates from the statistics it saw, so stale stats must
// invalidate it). The returned plan is immutable after build and shared
// across concurrent queries; per-run state (physical tree, snapshot,
// visible segments) is derived fresh each execution.
func (db *Database) planFor(sel *sql.Select, norm string) (*plan.Plan, bool, error) {
	catVer := db.cat.Version()
	if v, ok := db.planCache.Get(norm); ok {
		ent := v.(*planEntry)
		if ent.catVersion == catVer && db.versionsMatch(ent.tables) {
			return ent.p, true, nil
		}
		db.planCache.Invalidate(norm)
	}
	p, err := plan.BuildWith(db.cat, sel, db.cfg.Plan)
	if err != nil {
		return nil, false, err
	}
	db.planCache.Put(norm, &planEntry{p: p, catVersion: catVer, tables: db.captureTableVersions(p)}, 1)
	return p, false, nil
}

// resultCacheable gates the result cache: it needs the cache enabled, the
// session opted in, a data-plane query (leader-only SELECTs are cheaper
// than a lookup; system tables change without version bumps), and only
// deterministic functions.
func (db *Database) resultCacheable(sess *Session, sel *sql.Select) bool {
	if db.resultCache == nil || sess.resultCacheOff.Load() {
		return false
	}
	if sel.From == nil || isSystemTable(sel.From.Table) {
		return false
	}
	for _, j := range sel.Joins {
		if isSystemTable(j.Table.Table) {
			return false
		}
	}
	return deterministicSelect(sel)
}

// deterministicSelect walks every expression position of a SELECT and
// rejects the statement if any function is non-deterministic.
func deterministicSelect(s *sql.Select) bool {
	exprs := make([]sql.Expr, 0, len(s.Items)+len(s.Joins)+len(s.GroupBy)+len(s.OrderBy)+2)
	for _, it := range s.Items {
		exprs = append(exprs, it.Expr) // nil for *
	}
	for _, j := range s.Joins {
		exprs = append(exprs, j.On)
	}
	exprs = append(exprs, s.Where, s.Having)
	exprs = append(exprs, s.GroupBy...)
	for _, o := range s.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		if !deterministicExpr(e) {
			return false
		}
	}
	return true
}

func deterministicExpr(e sql.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *sql.FuncCall:
		if !x.Name.Deterministic() {
			return false
		}
		for _, a := range x.Args {
			if !deterministicExpr(a) {
				return false
			}
		}
		return true
	case *sql.Binary:
		return deterministicExpr(x.Left) && deterministicExpr(x.Right)
	case *sql.Unary:
		return deterministicExpr(x.Expr)
	case *sql.IsNull:
		return deterministicExpr(x.Expr)
	case *sql.Between:
		return deterministicExpr(x.Expr) && deterministicExpr(x.Lo) && deterministicExpr(x.Hi)
	case *sql.In:
		if !deterministicExpr(x.Expr) {
			return false
		}
		for _, it := range x.List {
			if !deterministicExpr(it) {
				return false
			}
		}
		return true
	case *sql.Like:
		return deterministicExpr(x.Expr)
	case *sql.Case:
		for _, w := range x.Whens {
			if !deterministicExpr(w.Cond) || !deterministicExpr(w.Then) {
				return false
			}
		}
		return deterministicExpr(x.Else)
	default:
		return true // Literal, ColumnRef
	}
}

// resultLookup serves a stored result if its version key still matches; a
// mismatch deletes the entry (lazy invalidation — mutations never scan the
// cache). The hit shares the stored schema and rows (callers treat results
// as read-only) under a fresh header with zeroed stats and Cached set.
func (db *Database) resultLookup(norm string) (*Result, bool) {
	v, ok := db.resultCache.Get(norm)
	if !ok {
		return nil, false
	}
	ent := v.(*resultEntry)
	if !db.versionsMatch(ent.tables) {
		db.resultCache.Invalidate(norm)
		return nil, false
	}
	return &Result{Schema: ent.res.Schema, Rows: ent.res.Rows, Cached: true}, true
}

// resultStore caches a completed result under the version key captured
// before the query took its snapshot. Oversized results (more than a
// quarter of the budget) are not stored — one giant result must not wipe
// the working set.
func (db *Database) resultStore(norm string, res *Result, tables []tableVersion) {
	cost := estimateResultBytes(res)
	if budget := db.resultCache.Budget(); budget == 0 || cost > budget/4 {
		return
	}
	stored := &Result{Schema: res.Schema, Rows: res.Rows}
	db.resultCache.Put(norm, &resultEntry{res: stored, tables: tables}, cost)
}

// estimateResultBytes approximates a result's resident size for the
// cache's byte accounting.
func estimateResultBytes(res *Result) int64 {
	var n int64 = 128 // header + schema
	for _, row := range res.Rows {
		n += 24 * int64(len(row))
		for _, v := range row {
			n += int64(len(v.S))
		}
	}
	return n
}
