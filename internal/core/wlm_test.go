package core

import (
	"sync"
	"testing"
	"time"

	"redshift/internal/cluster"
	"redshift/internal/exec"
	"redshift/internal/s3sim"
)

func TestWLMLimitsConcurrency(t *testing.T) {
	db, err := Open(Config{
		Cluster:    cluster.Config{Nodes: 1, SlicesPerNode: 2, BlockCap: 64},
		DataStore:  s3sim.New(),
		QuerySlots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	seedSales(t, db)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Execute(`SELECT product_id, SUM(qty) FROM sales GROUP BY product_id`); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	stats := db.WLMStats()
	if stats.PeakActive > 2 {
		t.Errorf("peak concurrent queries = %d, slots = 2", stats.PeakActive)
	}
	if stats.TotalQueries < 16 {
		t.Errorf("total queries = %d", stats.TotalQueries)
	}
	if stats.Active != 0 || stats.Queued != 0 {
		t.Errorf("counters not drained: %+v", stats)
	}
}

func TestWLMQueueWaitReported(t *testing.T) {
	db, err := Open(Config{
		Cluster:    cluster.Config{Nodes: 1, SlicesPerNode: 1, BlockCap: 64},
		DataStore:  s3sim.New(),
		QuerySlots: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seedSales(t, db)
	// Occupy the only slot so the query below must queue. (Since planning
	// moved ahead of admission, a query racing other fast queries may never
	// actually wait — holding the slot makes the contention deterministic.)
	db.wlm.Acquire()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := db.Execute(`SELECT COUNT(*) FROM sales WHERE qty > 1`)
		done <- outcome{res, err}
	}()
	time.Sleep(30 * time.Millisecond)
	db.wlm.Release()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Stats.QueueWait <= 0 {
		t.Errorf("query queued behind a held slot reported QueueWait = %v", out.res.Stats.QueueWait)
	}
	if out.res.Stats.Queue != DefaultQueueName {
		t.Errorf("queue = %q, want %q", out.res.Stats.Queue, DefaultQueueName)
	}
}

func TestWLMUnlimitedByDefault(t *testing.T) {
	db := openDB(t, exec.Compiled)
	seedSales(t, db)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			db.Execute(`SELECT COUNT(*) FROM sales`)
		}()
	}
	wg.Wait()
	stats := db.WLMStats()
	if stats.TotalQueries != 8 {
		t.Errorf("total = %d", stats.TotalQueries)
	}
	if stats.TotalWaitTime != 0 {
		t.Errorf("unlimited WLM accumulated wait %v", stats.TotalWaitTime)
	}
}

func TestWLMAdminStatementsBypassQueue(t *testing.T) {
	db, err := Open(Config{
		Cluster:    cluster.Config{Nodes: 1, SlicesPerNode: 1, BlockCap: 64},
		DataStore:  s3sim.New(),
		QuerySlots: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the only slot with a held acquire, then run DDL + INSERT:
	// they must not block behind the queue.
	db.wlm.Acquire()
	defer db.wlm.Release()
	done := make(chan struct{})
	go func() {
		defer close(done)
		mustExec(t, db, `CREATE TABLE free (a BIGINT)`)
		mustExec(t, db, `INSERT INTO free VALUES (1)`)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("admin statements blocked behind the WLM queue")
	}
}
