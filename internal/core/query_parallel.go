package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"redshift/internal/catalog"
	"redshift/internal/exec"
	"redshift/internal/plan"
)

// DOP policy constants.
const (
	// parallelRowsThreshold is the estimated base-scan cardinality below
	// which a query stays serial: short queries (the serving fast path)
	// must not pay goroutine fan-out and partial-state merge overhead.
	// Unknown estimates (-1) also stay serial — parallelism is an
	// optimization, never a guess.
	parallelRowsThreshold = 32768
	// parallelWorkerMinBytes is the minimum share of the query's memory
	// grant one morsel worker must have before it is worth spinning up:
	// workers carry their own partial agg/sort state, and slicing a tiny
	// grant across many workers would just trigger earlier spills.
	parallelWorkerMinBytes = 64 << 10
)

// chooseDOP picks the query's intra-slice degree of parallelism from the
// cost estimates, the configured cap and the memory grant. A session's
// SET max_parallel_workers override forces the DOP outright (the twin
// batteries pin it on arbitrarily small tables); DS_DIST_BOTH plans stay
// serial — their probe-side re-shuffle threads the whole slice chain
// through an exchange, which has no morsel decomposition.
func (q *queryRun) chooseDOP() int {
	if q.sys != nil {
		return 1
	}
	for ji := range q.ph.Joins {
		if q.ph.Joins[ji].ProbeEx != nil {
			return 1
		}
	}
	if q.reqDOP >= 1 {
		return int(q.reqDOP)
	}
	max := q.db.maxParallelWorkers()
	if max <= 1 {
		return 1
	}
	if q.ph.Base.EstRows < parallelRowsThreshold {
		return 1
	}
	dop := max
	if q.mem != nil {
		if grant := q.mem.Limit(); grant > 0 {
			if byMem := int(grant / parallelWorkerMinBytes); byMem < dop {
				dop = byMem
			}
			if dop < 1 {
				dop = 1
			}
		}
	}
	return dop
}

// parallelScanSrc prepares one build-side exchange producer's morsel-
// parallel scan: dop scanners sharing a single ScanStats (so the folded
// counters match a serial run) over a shared block queue.
func (q *queryRun) parallelScanSrc(n *plan.PhysNode, src int) (*parallelScanSrc, error) {
	local := &exec.ScanStats{}
	q.addScanInst(n, src, local)
	ps := &parallelScanSrc{node: n}
	for w := 0; w < q.dop; w++ {
		sc, err := exec.NewScanner(q.mode, n.Scan, q.db.cl.FetchBlockCtx, local)
		if err != nil {
			return nil, err
		}
		sc.SetCache(q.db.cache)
		sc.SetFaults(q.db.inj)
		ps.scanners = append(ps.scanners, sc)
	}
	ps.queue = exec.NewMorselQueue(q.db.cl.VisibleSegments(src, n.Scan.Def.ID, q.snapshot))
	return ps, nil
}

// baseScanOp builds the serial scan operator for the base table on slice
// sl, honoring the DISTSTYLE ALL single-copy rule.
func (q *queryRun) baseScanOp(sl int) (exec.Operator, error) {
	base := q.ph.Base
	if q.sys == nil && base.Scan.Def.DistStyle == catalog.DistAll && sl >= q.db.cl.Config().SlicesPerNode {
		// A replicated base table is duplicated per node; only the first
		// node's slices scan it (reading every copy would multiply rows).
		return q.wrap(exec.NewBatchSource(nil), base), nil
	}
	return q.scanOp(base, sl)
}

// morselWorkerState is one worker goroutine's private sub-chain state:
// its own filter/projector (evaluators keep scratch buffers), and exactly
// one of the partial-state accumulators depending on the query shape.
type morselWorkerState struct {
	filter *exec.Filter
	proj   *exec.Projector
	agg    *exec.WorkerAgg
	sieve  *exec.DistinctSieve
	topn   *exec.TopNPartial
}

// newMorselWorker builds one worker's private operator state. Partial
// agg tables and top-N sorters get their own MemContext children, so
// per-worker charges keep the query-level spill guarantees.
func (q *queryRun) newMorselWorker() (*morselWorkerState, error) {
	ph := q.ph
	ws := &morselWorkerState{}
	var err error
	if ph.Where != nil {
		ws.filter, err = exec.NewFilter(q.mode, q.p.Where)
		if err != nil {
			return nil, err
		}
	}
	if q.p.HasAgg {
		gt, err := exec.NewGroupTable(q.mode, q.p.GroupBy, q.p.Aggs)
		if err != nil {
			return nil, err
		}
		gt.SetMemory(q.memCtx(ph.PartialAgg))
		ws.agg = exec.NewWorkerAgg(gt)
		return ws, nil
	}
	ws.proj, err = exec.NewProjector(q.mode, q.p.Project)
	if err != nil {
		return nil, err
	}
	if ph.Distinct != nil {
		ws.sieve = exec.NewDistinctSieve()
	}
	if ph.TopN != nil {
		ws.topn = exec.NewTopNPartial(q.p.OrderBy, q.p.Limit, len(q.p.Project), q.memCtx(ph.TopN))
	}
	return ws, nil
}

// release returns a worker's partial-state memory (safe on every path:
// both releases are idempotent).
func (ws *morselWorkerState) release() {
	if ws == nil {
		return
	}
	if ws.agg != nil {
		ws.agg.Table().ReleaseMem()
	}
	if ws.topn != nil {
		ws.topn.Release()
	}
}

// runParallelSlice executes slice sl with q.dop morsel workers instead of
// one serial fused chain. Three phases:
//
//  1. Join builds: each join's build input is collected (exchange receive
//     or local scan) and inserted morsel-parallel via ParallelBuild. If
//     any build overflowed its grant, the whole slice falls back to the
//     serial chain (grace-joins thread probe sequence numbers through the
//     chain, which has no morsel decomposition) — bit-identical output,
//     just without the speedup.
//  2. Morsel loop: workers pull blocks from the shared queue, each running
//     scan→probe→filter→{partial-agg | project→(distinct-sieve | top-N)}
//     on its own private state. Per-morsel outputs are parked in dispatch
//     order, which reproduces the serial batch stream exactly.
//  3. Slice merge: worker partials fold into the one per-slice result the
//     leader expects — a merged GroupTable, the distinct survivor stream,
//     the slice top-N, or the ordered gather stream.
func (q *queryRun) runParallelSlice(ctx context.Context, sl, nslices int, sink func(*exec.Batch) error) error {
	ph := q.ph
	spn := q.db.cl.Config().SlicesPerNode
	dop := q.dop

	// Phase 1: build every join's hash table.
	joins := make([]*exec.HashJoin, len(ph.Joins))
	defer func() {
		for _, j := range joins {
			if j != nil {
				j.ReleaseMem()
			}
		}
	}()
	for ji := range ph.Joins {
		pj := &ph.Joins[ji]
		step := &q.p.Joins[ji]
		right := q.p.Tables[step.Right]
		var build exec.Operator
		var err error
		switch {
		case pj.BuildEx != nil:
			build = q.wrap(exec.NewRecvOp(q.exs[pj.BuildEx.ID], sl), pj.BuildEx)
		case step.Strategy == plan.StrategyBroadcast && right.Def.DistStyle == catalog.DistAll:
			// Already replicated: every slice reads its node's local copy.
			build, err = q.scanOp(pj.BuildScan, (sl/spn)*spn)
		default: // collocated
			build, err = q.scanOp(pj.BuildScan, sl)
		}
		if err != nil {
			return err
		}
		var input []*exec.Batch
		if err := driveChain(ctx, build, func(b *exec.Batch) error {
			// Build-side batches are never released (a broadcast exchange
			// shares one batch across every consumer slice), matching the
			// serial HashJoinOp.
			input = append(input, b)
			return nil
		}); err != nil {
			return err
		}
		join, err := exec.NewHashJoin(q.mode, *step, len(right.Def.Columns))
		if err != nil {
			return err
		}
		join.SetMemory(q.memCtx(pj.Probe))
		join.SetSizeHint(ph.BuildDemand(ji, nslices))
		start := time.Now()
		err = join.ParallelBuild(ctx, input, dop)
		q.stats[pj.Probe.ID].Nanos.Add(int64(time.Since(start)))
		if err != nil {
			return err
		}
		joins[ji] = join
	}
	for _, j := range joins {
		if j.Spilled() {
			return q.runSerialTail(ctx, sl, joins, sink)
		}
	}

	// Phase 2: the morsel loop over the base scan.
	base := ph.Base
	var queue *exec.MorselQueue
	scanners := make([]*exec.Scanner, dop)
	if base.Scan.Def.DistStyle == catalog.DistAll && sl >= spn {
		// Replicated base table: this slice contributes no rows (see
		// baseScanOp); an empty queue keeps the tail merge uniform.
		queue = exec.NewMorselQueue(nil)
	} else {
		local := &exec.ScanStats{}
		q.addScanInst(base, sl, local)
		for w := 0; w < dop; w++ {
			sc, err := exec.NewScanner(q.mode, base.Scan, q.db.cl.FetchBlockCtx, local)
			if err != nil {
				return err
			}
			sc.SetCache(q.db.cache)
			sc.SetFaults(q.db.inj)
			scanners[w] = sc
		}
		queue = exec.NewMorselQueue(q.db.cl.VisibleSegments(sl, base.Scan.Def.ID, q.snapshot))
	}

	out := make([]*exec.Batch, queue.Len())
	defer func() {
		// Any batch still parked (error, cancel) goes back to the pool;
		// consumed entries were nil'd as they were handed off.
		for i, b := range out {
			if b != nil {
				exec.PutBatch(b)
				out[i] = nil
			}
		}
	}()

	states := make([]*morselWorkerState, dop)
	defer func() {
		for _, ws := range states {
			ws.release()
		}
	}()
	for w := 0; w < dop; w++ {
		ws, err := q.newMorselWorker()
		if err != nil {
			return err
		}
		states[w] = ws
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	gauge := q.db.metrics.Gauge("exec_parallel_workers")
	werrs := make([]error, dop)
	var wg sync.WaitGroup
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gauge.Add(1)
			q.par.workers.Add(1)
			defer func() {
				gauge.Add(-1)
				q.par.workers.Add(-1)
			}()
			werrs[w] = q.morselWorker(wctx, states[w], queue, scanners[w], joins, out)
			if werrs[w] != nil {
				cancel()
			}
		}(w)
	}
	wg.Wait()
	// Prefer the first real failure over the context.Canceled the other
	// workers observed after the shared cancel fired.
	var werr error
	for _, e := range werrs {
		if e != nil && !errors.Is(e, context.Canceled) {
			werr = e
			break
		}
	}
	if werr == nil {
		for _, e := range werrs {
			if e != nil {
				werr = e
				break
			}
		}
	}
	if werr != nil {
		return werr
	}

	// Phase 3: fold worker partials into the slice result.
	switch {
	case q.p.HasAgg:
		gt, err := exec.NewGroupTable(q.mode, q.p.GroupBy, q.p.Aggs)
		if err != nil {
			return err
		}
		gt.SetMemory(q.memCtx(ph.PartialAgg))
		q.aggTables[sl] = gt
		workers := make([]*exec.WorkerAgg, dop)
		for w, ws := range states {
			workers[w] = ws.agg
		}
		start := time.Now()
		err = exec.MergeWorkerAggs(ctx, gt, workers)
		q.stats[ph.PartialAgg.ID].Nanos.Add(int64(time.Since(start)))
		return err
	case ph.Distinct != nil:
		// The sieves kept every globally-first occurrence; a final serial
		// pass in morsel order drops the cross-worker duplicates and
		// reproduces the exact serial survivor stream (and node counters).
		op := q.wrap(exec.NewStreamDistinctOp(&drainSource{out: out}), ph.Distinct)
		return driveChain(ctx, op, sink)
	case ph.TopN != nil:
		parts := make([]*exec.Batch, dop)
		start := time.Now()
		for w, ws := range states {
			p, err := ws.topn.Collect(ctx)
			if err != nil {
				for _, b := range parts {
					if b != nil {
						exec.PutBatch(b)
					}
				}
				return err
			}
			parts[w] = p
		}
		merged, err := exec.MergeTopNPartials(parts, q.p.OrderBy, q.p.Limit, len(q.p.Project))
		st := q.stats[ph.TopN.ID]
		st.Nanos.Add(int64(time.Since(start)))
		if err != nil {
			return err
		}
		// The serial TopNOp emits exactly one (possibly empty) batch.
		st.Batches.Add(1)
		st.Rows.Add(int64(merged.N))
		if sink != nil {
			return sink(merged)
		}
		exec.PutBatch(merged)
		return nil
	default:
		for i, b := range out {
			if b == nil {
				continue
			}
			out[i] = nil
			if b.N == 0 || sink == nil {
				exec.PutBatch(b)
				continue
			}
			if err := sink(b); err != nil {
				return err
			}
		}
		return nil
	}
}

// morselWorker is one worker goroutine's loop: pull a morsel, scan its
// block, push the batch through this worker's private sub-chain, park the
// result under the morsel's sequence. Shared OpStats get the same
// skip-empty counting the serial instrumented chain produces (so
// EXPLAIN ANALYZE rows= match a serial run exactly); per-stage time is
// accumulated locally and flushed once to keep the hot loop atomic-free.
func (q *queryRun) morselWorker(ctx context.Context, ws *morselWorkerState, queue *exec.MorselQueue, sc *exec.Scanner, joins []*exec.HashJoin, out []*exec.Batch) error {
	ph := q.ph
	var scanNs, whereNs, projNs, aggNs, distNs, topnNs int64
	probeNs := make([]int64, len(joins))
	defer func() {
		q.stats[ph.Base.ID].Nanos.Add(scanNs)
		for ji := range joins {
			q.stats[ph.Joins[ji].Probe.ID].Nanos.Add(probeNs[ji])
		}
		if ph.Where != nil {
			q.stats[ph.Where.ID].Nanos.Add(whereNs)
		}
		if ph.PartialAgg != nil {
			q.stats[ph.PartialAgg.ID].Nanos.Add(aggNs)
		}
		if ph.Project != nil && !q.p.HasAgg {
			q.stats[ph.Project.ID].Nanos.Add(projNs)
		}
		if ph.Distinct != nil {
			q.stats[ph.Distinct.ID].Nanos.Add(distNs)
		}
		if ph.TopN != nil {
			q.stats[ph.TopN.ID].Nanos.Add(topnNs)
		}
	}()

morsels:
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		m, ok := queue.Next()
		if !ok {
			return nil
		}
		q.par.morsels.Add(1)
		if m.Seg.Schema.Len() != sc.Width() {
			return fmt.Errorf("exec: segment width %d, scanner width %d", m.Seg.Schema.Len(), sc.Width())
		}
		start := time.Now()
		b, err := sc.ScanBlock(ctx, m.Seg, m.Block)
		scanNs += int64(time.Since(start))
		if err != nil {
			return err
		}
		if b == nil {
			continue // pruned, or no row survived the pushed-down filter
		}
		st := q.stats[ph.Base.ID]
		st.Batches.Add(1)
		st.Rows.Add(int64(b.N))

		for ji, j := range joins {
			start = time.Now()
			joined, err := j.Probe(b)
			probeNs[ji] += int64(time.Since(start))
			if err != nil {
				exec.PutBatch(b)
				return err
			}
			exec.PutBatch(b)
			if joined.N == 0 {
				exec.PutBatch(joined)
				continue morsels
			}
			st := q.stats[ph.Joins[ji].Probe.ID]
			st.Batches.Add(1)
			st.Rows.Add(int64(joined.N))
			b = joined
		}

		if ws.filter != nil {
			start = time.Now()
			fb, err := ws.filter.Apply(b)
			whereNs += int64(time.Since(start))
			if err != nil {
				exec.PutBatch(b)
				return err
			}
			if fb != b {
				exec.PutBatch(b)
			}
			if fb.N == 0 {
				exec.PutBatch(fb)
				continue
			}
			b = fb
			st := q.stats[ph.Where.ID]
			st.Batches.Add(1)
			st.Rows.Add(int64(b.N))
		}

		if ws.agg != nil {
			start = time.Now()
			err := ws.agg.Consume(b, m.Seq)
			aggNs += int64(time.Since(start))
			exec.PutBatch(b)
			if err != nil {
				return err
			}
			continue
		}

		start = time.Now()
		pb, err := ws.proj.Apply(b)
		projNs += int64(time.Since(start))
		if err != nil {
			exec.PutBatch(b)
			return err
		}
		exec.PutBatch(b)
		st = q.stats[ph.Project.ID]
		st.Batches.Add(1)
		st.Rows.Add(int64(pb.N))

		switch {
		case ws.sieve != nil:
			start = time.Now()
			sb := ws.sieve.Apply(pb)
			distNs += int64(time.Since(start))
			if sb != nil {
				out[m.Seq] = sb
			}
		case ws.topn != nil:
			start = time.Now()
			err := ws.topn.Add(pb, m.Seq)
			topnNs += int64(time.Since(start))
			if err != nil {
				return err
			}
		default:
			out[m.Seq] = pb
		}
	}
}

// runSerialTail is the spilled-build fallback: the slice runs the classic
// fused serial chain, reusing the already-built (and possibly grace-
// spilled) join tables via empty build children. Output is identical to
// the morsel path — the grace join replays probe rows in sequence order.
func (q *queryRun) runSerialTail(ctx context.Context, sl int, joins []*exec.HashJoin, sink func(*exec.Batch) error) error {
	ph := q.ph
	cur, err := q.baseScanOp(sl)
	if err != nil {
		return err
	}
	for ji, j := range joins {
		cur = q.wrap(exec.NewHashJoinOp(j, exec.NewBatchSource(nil), cur), ph.Joins[ji].Probe)
	}
	if ph.Where != nil {
		f, err := exec.NewFilterOp(q.mode, q.p.Where, cur)
		if err != nil {
			return err
		}
		cur = q.wrap(f, ph.Where)
	}
	tail, err := q.chainTail(cur, sl)
	if err != nil {
		return err
	}
	return driveChain(ctx, tail, sink)
}

// drainSource replays morsel-ordered worker outputs as an Operator,
// removing each batch from the backing slice as it is handed off so the
// caller's deferred cleanup never double-releases a consumed batch.
type drainSource struct {
	out []*exec.Batch
	i   int
}

func (s *drainSource) Open(ctx context.Context) error { return nil }

func (s *drainSource) Next(ctx context.Context) (*exec.Batch, error) {
	for s.i < len(s.out) {
		b := s.out[s.i]
		s.out[s.i] = nil
		s.i++
		if b == nil {
			continue
		}
		if b.N > 0 {
			return b, nil
		}
		exec.PutBatch(b)
	}
	return nil, nil
}

func (s *drainSource) Close() error { return nil }
