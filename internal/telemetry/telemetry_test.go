package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("queries_total") != c {
		t.Error("Counter not idempotent")
	}
	g := r.Gauge("active")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Errorf("sum = %g", h.Sum())
	}
	// Exponential buckets guarantee ~±10% relative error.
	cases := map[float64]float64{0.5: 500, 0.95: 950, 0.99: 990}
	for q, want := range cases {
		got := h.Quantile(q)
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("p%g = %g, want ~%g", q*100, got, want)
		}
	}
	if h.Quantile(0) != 1 {
		t.Errorf("p0 = %g, want exact min 1", h.Quantile(0))
	}
	if h.Quantile(1) != 1000 {
		t.Errorf("p100 = %g, want exact max 1000", h.Quantile(1))
	}
}

func TestHistogramSingleValueIsExact(t *testing.T) {
	var h Histogram
	h.Observe(42)
	// Clamping to [min, max] makes every quantile of one value exact.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%g) = %g, want 42", q, got)
		}
	}
}

func TestHistogramNonPositiveValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(10)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got < -5 || got > 10 {
		t.Errorf("median %g outside observed range", got)
	}
	if h.Quantile(0) != -5 {
		t.Errorf("min = %g", h.Quantile(0))
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	r.Gauge("b").Set(-2)
	r.Histogram("c_seconds").Observe(1.5)
	out := r.Render()
	for _, want := range []string{"a_total 7", "b -2", "c_seconds_count 1", "c_seconds_sum 1.5", `c_seconds{quantile="0.5"} 1.5`} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestQueryLogRingBuffer(t *testing.T) {
	l := NewQueryLog(3)
	for i := 0; i < 5; i++ {
		id := l.Append(QueryRecord{SQL: "q"})
		if id != int64(i+1) {
			t.Errorf("Append #%d returned id %d", i+1, id)
		}
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3 (capacity)", l.Len())
	}
	if l.Total() != 5 {
		t.Errorf("Total = %d, want 5", l.Total())
	}
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("Records = %d", len(recs))
	}
	// Oldest-first: ids 3, 4, 5 survive the wrap.
	for i, want := range []int64{3, 4, 5} {
		if recs[i].ID != want {
			t.Errorf("record %d has id %d, want %d", i, recs[i].ID, want)
		}
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("query")
	scan := root.StartChild("scan t")
	s0 := scan.StartChild("slice 0")
	s0.Add("rows", 10)
	s0.Add("rows", 5)
	s0.End()
	scan.End()
	root.End()

	if s0.Attr("rows") != 15 {
		t.Errorf("rows = %d, want 15 (accumulated)", s0.Attr("rows"))
	}
	if s0.Attr("missing") != 0 {
		t.Error("absent attr should be 0")
	}
	var names []string
	depths := map[string]int{}
	root.Walk(func(depth int, sp *Span) {
		names = append(names, sp.Name())
		depths[sp.Name()] = depth
	})
	if len(names) != 3 || names[0] != "query" || names[1] != "scan t" || names[2] != "slice 0" {
		t.Errorf("walk order = %v", names)
	}
	if depths["slice 0"] != 2 {
		t.Errorf("slice depth = %d", depths["slice 0"])
	}
	out := root.Render()
	if !strings.Contains(out, "    slice 0 (") || !strings.Contains(out, "rows=15") {
		t.Errorf("render:\n%s", out)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	child := s.StartChild("x")
	if child != nil {
		t.Fatal("nil span produced a child")
	}
	child.End()
	child.Add("rows", 1)
	if child.Render() != "" || child.Name() != "" || child.Duration() != 0 {
		t.Error("nil span accessors should be zero-valued")
	}
	child.Walk(func(int, *Span) { t.Error("nil span walked") })
}

func TestSpanEndIdempotent(t *testing.T) {
	s := StartSpan("x")
	time.Sleep(time.Millisecond)
	s.End()
	d := s.Duration()
	if d <= 0 {
		t.Fatal("duration not recorded")
	}
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Error("second End changed the duration")
	}
}
