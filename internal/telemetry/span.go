package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one named measurement on a span (rows, bytes, blocks_read...).
// Attrs keep insertion order so rendered spans read consistently.
type Attr struct {
	Key   string
	Value int64
}

// Span is one timed node of a query's trace tree: plan, per-slice scan,
// shuffle, partial aggregation, leader merge, finalize. Spans are safe for
// concurrent child creation and attribute updates (per-slice work runs in
// parallel goroutines), and every method is nil-receiver safe so untraced
// code paths pay nothing.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// StartSpan begins a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild begins a child span under s. Returns nil when s is nil, so
// call sites need no tracing checks.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End fixes the span's duration; subsequent Ends are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetDuration fixes the span's duration explicitly — used when a span is
// reconstructed from operator-collected timings rather than timed live.
func (s *Span) SetDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dur = d
	s.ended = true
	s.mu.Unlock()
}

// Add accumulates delta into the named attribute, creating it at zero.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value += delta
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: delta})
}

// Name returns the span's label.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the measured wall time (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Attr returns the named attribute's value (0 when absent).
func (s *Span) Attr(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return 0
}

// Attrs returns a copy of the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span tree depth-first, parents before children.
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	s.walk(0, fn)
}

func (s *Span) walk(depth int, fn func(int, *Span)) {
	fn(depth, s)
	for _, c := range s.Children() {
		c.walk(depth+1, fn)
	}
}

// Render returns the span tree as an indented text block, one span per
// line: `name (duration) key=value ...` — the body of EXPLAIN ANALYZE.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(depth int, sp *Span) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s (%s)", sp.Name(), fmtDur(sp.Duration()))
		for _, a := range sp.Attrs() {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Value)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// fmtDur formats a duration at microsecond granularity so trace lines stay
// compact and stable-width.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
