package telemetry

import (
	"sync"
	"time"
)

// QueryRecord is one completed query's accounting — the row shape behind
// the stl_query system table and the input a trace-replay harness needs.
type QueryRecord struct {
	// ID is the query's sequence number, assigned at completion.
	ID int64
	// SQL is the statement text (reconstructed from the AST).
	SQL        string
	Start, End time.Time
	// Queue is the WLM queue that admitted (or evicted) the query; "" for
	// cache hits and statements that bypass WLM.
	Queue     string
	QueueWait time.Duration
	PlanTime   time.Duration
	ExecTime   time.Duration
	// Rows is the result row count.
	Rows          int64
	BlocksRead    int64
	BlocksSkipped int64
	RowsScanned   int64
	NetBytes      int64
	// Error is non-empty for aborted statements.
	Error string
	// State is the query's terminal state: "success", "error",
	// "cancelled" (user CANCEL / context cancellation) or "timeout"
	// (statement_timeout). Empty means success for old producers.
	State string
	// MemPeak is the high-water mark of execution memory tracked against
	// the query's grant; SpillBytes is what its operators wrote to scratch
	// files (0 when the query stayed in memory).
	MemPeak    int64
	SpillBytes int64
	// Trace is the query's span tree (may be nil for aborted plans).
	Trace *Span
}

// QueryLog is a fixed-capacity ring buffer of completed queries: the
// in-memory stand-in for Redshift's STL system log tables, bounded so a
// long-lived endpoint never grows without limit.
type QueryLog struct {
	mu     sync.Mutex
	buf    []QueryRecord
	next   int // ring write position
	filled bool
	lastID int64
}

// NewQueryLog returns a log holding the most recent capacity queries
// (minimum 1).
func NewQueryLog(capacity int) *QueryLog {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryLog{buf: make([]QueryRecord, capacity)}
}

// Append records a completed query and returns its ID. Records arriving
// with a pre-assigned ID (queries registered for cancellation before they
// ran) keep it; otherwise the log assigns the next sequence number.
func (l *QueryLog) Append(r QueryRecord) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.ID == 0 {
		l.lastID++
		r.ID = l.lastID
	} else if r.ID > l.lastID {
		l.lastID = r.ID
	}
	l.buf[l.next] = r
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.filled = true
	}
	return r.ID
}

// Records returns the retained queries, oldest first.
func (l *QueryLog) Records() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.filled {
		return append([]QueryRecord(nil), l.buf[:l.next]...)
	}
	out := make([]QueryRecord, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Len reports how many records are retained.
func (l *QueryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filled {
		return len(l.buf)
	}
	return l.next
}

// Total reports how many queries have ever been appended.
func (l *QueryLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastID
}
