// Package telemetry is the CloudWatch substitute of §3: a stdlib-only
// metrics registry (counters, gauges, histograms with quantile estimates)
// plus per-query trace spans and a ring-buffer query log. The paper's
// control plane is built on continuous instrumentation — health metrics
// drive patch rollback, replacement workflows and the ticket Pareto of §5 —
// so the reproduction measures itself the same way: every layer (core,
// cluster, WLM, control plane) emits into one registry that a `/metrics`
// endpoint and the stl_/stv_ system tables expose.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 metric (queue depth, active slots).
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBase is the histogram bucket growth factor: ~9.5% wide buckets keep
// quantile estimates within ~5% relative error while the whole range
// 1e-9..1e12 fits in a small sparse map.
const histBase = 1.095

// Histogram accumulates float64 observations into exponentially sized
// buckets and reports approximate quantiles (p50/p95/p99). Exact min and
// max are kept so estimates never leave the observed range.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int]int64 // bucket index -> count; index math.MinInt for v <= 0
	count   int64
	sum     float64
	min     float64
	max     float64
}

// underflowBucket collects non-positive observations.
const underflowBucket = math.MinInt32

// bucketOf maps a positive value to its exponential bucket index.
func bucketOf(v float64) int {
	if v <= 0 {
		return underflowBucket
	}
	return int(math.Floor(math.Log(v) / math.Log(histBase)))
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.buckets == nil {
		h.buckets = map[int]int64{}
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed values:
// the geometric midpoint of the bucket where the cumulative count crosses
// q·N, clamped to the exact observed [min, max].
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	idxs := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	rank := q * float64(h.count)
	var cum float64
	for _, i := range idxs {
		cum += float64(h.buckets[i])
		if cum >= rank {
			var v float64
			if i == underflowBucket {
				v = h.min
			} else {
				// Geometric midpoint of [base^i, base^(i+1)).
				v = math.Pow(histBase, float64(i)+0.5)
			}
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Registry holds named metrics. All accessors get-or-create, so emitting
// code never checks registration; names are conventionally
// snake_case with a _total/_seconds/_bytes suffix.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Render writes every metric in a Prometheus-flavored text format, sorted
// by name: counters and gauges as `name value`, histograms as
// `name_count`, `name_sum` and `name{quantile="..."}` lines.
func (r *Registry) Render() string {
	r.mu.Lock()
	type hline struct {
		name string
		h    *Histogram
	}
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	var hs []hline
	for name, h := range r.hists {
		hs = append(hs, hline{name, h})
	}
	r.mu.Unlock()
	for _, hl := range hs {
		lines = append(lines, fmt.Sprintf("%s_count %d", hl.name, hl.h.Count()))
		lines = append(lines, fmt.Sprintf("%s_sum %g", hl.name, hl.h.Sum()))
		for _, q := range []float64{0.5, 0.95, 0.99} {
			lines = append(lines, fmt.Sprintf("%s{quantile=%q} %g", hl.name, fmt.Sprintf("%g", q), hl.h.Quantile(q)))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
