package cluster

import "sync"

// HealthTracker is the node-level failure accountant behind read
// re-routing: every page-fault read reports its per-node outcome, and a
// node that fails too many consecutive reads is quarantined — subsequent
// fail-over reads skip it and go straight to the next replica tier
// (typically S3) instead of burning retries against a sick node. §2.1's
// failure masking plus the fail-fast half of it.
//
// Quarantine is sticky: it clears when the node is recovered/replaced
// (RecoverNode) or explicitly via Reset. A single successful read clears
// the consecutive-failure count but not an existing quarantine.
type HealthTracker struct {
	mu        sync.Mutex
	threshold int
	consec    map[int]int
	quar      map[int]bool
	// onQuarantine observes each new quarantine (metrics); may be nil.
	onQuarantine func(node int)
}

// defaultQuarantineThreshold is how many consecutive failed reads demote
// a node.
const defaultQuarantineThreshold = 3

// NewHealthTracker builds a tracker; threshold <= 0 uses the default.
func NewHealthTracker(threshold int) *HealthTracker {
	if threshold <= 0 {
		threshold = defaultQuarantineThreshold
	}
	return &HealthTracker{
		threshold: threshold,
		consec:    map[int]int{},
		quar:      map[int]bool{},
	}
}

// ReportFailure counts one failed read against node and reports whether
// this report crossed the quarantine threshold.
func (h *HealthTracker) ReportFailure(node int) (quarantinedNow bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec[node]++
	if h.consec[node] >= h.threshold && !h.quar[node] {
		h.quar[node] = true
		if h.onQuarantine != nil {
			h.onQuarantine(node)
		}
		return true
	}
	return false
}

// ReportSuccess clears node's consecutive-failure count.
func (h *HealthTracker) ReportSuccess(node int) {
	h.mu.Lock()
	delete(h.consec, node)
	h.mu.Unlock()
}

// Quarantined reports whether node is currently skipped by fail-over
// reads.
func (h *HealthTracker) Quarantined(node int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quar[node]
}

// Reset clears node's quarantine and failure count — the node was
// recovered or replaced.
func (h *HealthTracker) Reset(node int) {
	h.mu.Lock()
	delete(h.consec, node)
	delete(h.quar, node)
	h.mu.Unlock()
}

// NodeHealth is one stv_node_health row.
type NodeHealth struct {
	Node        int
	Consecutive int
	Quarantined bool
}

// Snapshot returns per-node health for the given node count (all nodes
// reported, healthy ones included).
func (h *HealthTracker) Snapshot(nodes int) []NodeHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]NodeHealth, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = NodeHealth{Node: n, Consecutive: h.consec[n], Quarantined: h.quar[n]}
	}
	return out
}
