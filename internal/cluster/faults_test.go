package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"redshift/internal/catalog"
	"redshift/internal/faults"
	"redshift/internal/storage"
)

// snapshotPayloads captures every resident block's payload, simulating the
// backup tier's content-addressed copies.
func snapshotPayloads(c *Cluster) map[storage.BlockID][]byte {
	payloads := map[storage.BlockID][]byte{}
	c.AllBlocks(func(b *storage.Block) {
		if b.Resident() {
			payloads[b.ID] = append([]byte(nil), b.Payload()...)
		}
	})
	return payloads
}

func payloadFetcher(payloads map[storage.BlockID][]byte) func(*storage.Block) ([]byte, error) {
	return func(b *storage.Block) ([]byte, error) {
		p, ok := payloads[b.ID]
		if !ok {
			return nil, fmt.Errorf("backup has no copy of %s", b.ID)
		}
		return p, nil
	}
}

func loadEvenTable(t *testing.T, c *Cluster, rows int) {
	t.Helper()
	def := intTable(catalog.DistEven)
	parts := c.DistributeRows(def, mkRows(rows))
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := c.AppendSegment(s, mkSegment(t, 7, int32(s), part), 1); err != nil {
			t.Fatal(err)
		}
	}
}

// The replacement workflow must survive the worst §2.1 case: the node being
// rebuilt AND its cohort secondary are both gone, so every block comes from
// the S3 backup tier.
func TestRecoverNodeBothReplicasGoneFallsBackToS3(t *testing.T) {
	c := testCluster(t, 2, 2)
	loadEvenTable(t, c, 64)
	c.SetBackupFetcher(payloadFetcher(snapshotPayloads(c)))

	c.FailNode(0)
	c.FailNode(1)

	blocks, bytes, err := c.RecoverNode(1)
	if err != nil {
		t.Fatalf("RecoverNode with both replicas down: %v", err)
	}
	if blocks == 0 || bytes == 0 {
		t.Errorf("recovered %d blocks, %d bytes from backup", blocks, bytes)
	}
	if c.Node(1).Failed() {
		t.Error("node 1 still marked failed")
	}
	if _, _, err := c.RecoverNode(0); err != nil {
		t.Fatalf("recovering node 0 afterwards: %v", err)
	}
	c.AllBlocks(func(b *storage.Block) {
		if !b.Resident() {
			t.Errorf("block %s still evicted after full recovery", b.ID)
		}
	})
}

// Without a backup fetcher the same double failure must produce a clean,
// descriptive error — never a hang or panic.
func TestRecoverNodeBothReplicasGoneNoBackup(t *testing.T) {
	c := testCluster(t, 2, 2)
	loadEvenTable(t, c, 64)
	c.FailNode(0)
	c.FailNode(1)
	_, _, err := c.RecoverNode(1)
	if err == nil {
		t.Fatal("recovery succeeded with no replica anywhere")
	}
	if !strings.Contains(err.Error(), "no replica available") {
		t.Errorf("error %q does not name the failure", err)
	}
}

// Transient injected faults on the secondary-fetch path are retried with
// backoff and reported through the retries counter.
func TestFetchBlockRetriesTransientSecondaryFaults(t *testing.T) {
	c := testCluster(t, 2, 1)
	seg := mkSegment(t, 7, 0, mkRows(8))
	if err := c.AppendSegment(0, seg, 1); err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(&faults.Plan{Seed: 42, Sites: map[string]faults.Rule{
		faults.SiteSecondaryFetch: {Prob: 1, Count: 2, Err: "transient link error"},
	}})
	inj.SetEnabled(true)
	c.SetFaults(inj)

	c.FailNode(0)
	var blk *storage.Block
	seg.Blocks(func(b *storage.Block) {
		if blk == nil {
			blk = b
		}
	})
	retries, err := c.FetchBlockCtx(context.Background(), blk)
	if err != nil {
		t.Fatalf("fetch with transient faults: %v", err)
	}
	if retries != 2 {
		t.Errorf("retries = %d, want 2 (two injected failures before success)", retries)
	}
	if !blk.Resident() {
		t.Error("block not refilled")
	}
}

// A persistently failing secondary is quarantined after the threshold and
// subsequent reads go straight to S3 without burning retries against it.
func TestHealthQuarantineRoutesAroundSickNode(t *testing.T) {
	c := testCluster(t, 2, 1)
	seg := mkSegment(t, 7, 0, mkRows(32))
	if err := c.AppendSegment(0, seg, 1); err != nil {
		t.Fatal(err)
	}
	c.SetBackupFetcher(payloadFetcher(snapshotPayloads(c)))
	inj := faults.NewInjector(&faults.Plan{Seed: 1, Sites: map[string]faults.Rule{
		faults.SiteSecondaryFetch: {Prob: 1, Err: "secondary is sick"},
	}})
	inj.SetEnabled(true)
	c.SetFaults(inj)

	c.FailNode(0)
	var blks []*storage.Block
	seg.Blocks(func(b *storage.Block) { blks = append(blks, b) })
	if len(blks) < defaultQuarantineThreshold+1 {
		t.Fatalf("need more blocks than the quarantine threshold, have %d", len(blks))
	}
	for i, b := range blks {
		if _, err := c.FetchBlockCtx(context.Background(), b); err != nil {
			t.Fatalf("block %d: %v (S3 tier should have masked the sick secondary)", i, err)
		}
	}
	if !c.Health().Quarantined(1) {
		t.Error("persistently failing secondary not quarantined")
	}
	// Once quarantined, the secondary site stops being exercised: injected
	// error count stays flat while remaining blocks still resolve via S3.
	var secInjected int64
	for _, s := range inj.Snapshot() {
		if s.Site == faults.SiteSecondaryFetch {
			secInjected = s.Injected
		}
	}
	// Each pre-quarantine fetch burns MaxAttempts injections; after the
	// threshold crossing the tier is skipped entirely.
	maxExpected := int64(defaultQuarantineThreshold * faults.DefaultPolicy.MaxAttempts)
	if secInjected > maxExpected {
		t.Errorf("secondary site injected %d times, want <= %d (quarantine should stop the bleeding)",
			secInjected, maxExpected)
	}
	// RecoverNode clears the quarantine.
	if _, _, err := c.RecoverNode(1); err != nil {
		t.Fatal(err)
	}
	if c.Health().Quarantined(1) {
		t.Error("quarantine survived node recovery")
	}
}

// Synchronous replication that keeps failing must fail the append — a
// committed block may never silently hold fewer copies than promised.
func TestReplicationFaultFailsAppend(t *testing.T) {
	c := testCluster(t, 2, 1)
	inj := faults.NewInjector(&faults.Plan{Seed: 3, Sites: map[string]faults.Rule{
		faults.SiteReplicate: {Prob: 1, Err: "replication link down"},
	}})
	inj.SetEnabled(true)
	c.SetFaults(inj)
	err := c.AppendSegment(0, mkSegment(t, 7, 0, mkRows(8)), 1)
	if err == nil {
		t.Fatal("append committed without its secondary copy")
	}
	if !strings.Contains(err.Error(), "replicating") {
		t.Errorf("error %q does not name replication", err)
	}

	// A bounded glitch, by contrast, is retried through.
	inj.SetRule(faults.SiteReplicate, faults.Rule{Prob: 1, Count: 1, Err: "brief glitch"})
	if err := c.AppendSegment(0, mkSegment(t, 7, 0, mkRows(8)), 2); err != nil {
		t.Fatalf("append with one transient replication failure: %v", err)
	}
}
