package cluster

import (
	"testing"

	"redshift/internal/catalog"
	"redshift/internal/compress"
	"redshift/internal/storage"
	"redshift/internal/types"
)

func testCluster(t *testing.T, nodes, slicesPerNode int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes, SlicesPerNode: slicesPerNode, BlockCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func intTable(style catalog.DistStyle) *catalog.TableDef {
	def := &catalog.TableDef{
		ID:   7,
		Name: "t",
		Columns: []catalog.ColumnDef{
			{Name: "k", Type: types.Int64, Encoding: compress.Raw},
			{Name: "v", Type: types.Int64, Encoding: compress.Raw},
		},
		DistStyle:  style,
		DistKeyCol: -1,
	}
	if style == catalog.DistKey {
		def.DistKeyCol = 0
	}
	return def
}

func mkRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewInt(int64(i * 10))}
	}
	return rows
}

func mkSegment(t *testing.T, table int64, slice int32, rows []types.Row) *storage.Segment {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "k", Type: types.Int64},
		types.Column{Name: "v", Type: types.Int64},
	)
	b, err := storage.NewBuilder(table, slice, 0, schema, []compress.Encoding{compress.Raw, compress.Raw}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Finish(false)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestTopology(t *testing.T) {
	c := testCluster(t, 4, 2)
	if c.NumNodes() != 4 || c.NumSlices() != 8 {
		t.Fatalf("nodes=%d slices=%d", c.NumNodes(), c.NumSlices())
	}
	if c.Slice(5).Node.ID != 2 {
		t.Errorf("slice 5 on node %d", c.Slice(5).Node.ID)
	}
	if _, err := New(Config{Nodes: 0, SlicesPerNode: 1}); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestCohorts(t *testing.T) {
	c, _ := New(Config{Nodes: 6, SlicesPerNode: 1, CohortSize: 2})
	// Pairs: (0,1) (2,3) (4,5).
	cases := map[int]int{0: 1, 1: 0, 2: 3, 3: 2, 4: 5, 5: 4}
	for p, want := range cases {
		if got := c.SecondaryNode(p); got != want {
			t.Errorf("SecondaryNode(%d) = %d, want %d", p, got, want)
		}
	}
	// Odd tail cohort: 7 nodes with cohort 4 → cohort {4,5,6}.
	c2, _ := New(Config{Nodes: 7, SlicesPerNode: 1, CohortSize: 4})
	if got := c2.SecondaryNode(6); got != 4 {
		t.Errorf("wraparound secondary = %d", got)
	}
	single, _ := New(Config{Nodes: 1, SlicesPerNode: 2})
	if single.SecondaryNode(0) != -1 {
		t.Error("single-node cluster cannot have a secondary")
	}
}

func TestDistributeRowsEven(t *testing.T) {
	c := testCluster(t, 2, 2)
	def := intTable(catalog.DistEven)
	parts := c.DistributeRows(def, mkRows(40))
	total := 0
	for s, rows := range parts {
		if len(rows) != 10 {
			t.Errorf("slice %d got %d rows, want 10", s, len(rows))
		}
		total += len(rows)
	}
	if total != 40 {
		t.Errorf("total = %d", total)
	}
	// Round robin continues across calls.
	parts2 := c.DistributeRows(def, mkRows(2))
	n := 0
	for _, rows := range parts2 {
		n += len(rows)
	}
	if n != 2 {
		t.Error("second distribution lost rows")
	}
}

func TestDistributeRowsKeyDeterministic(t *testing.T) {
	c := testCluster(t, 4, 2)
	def := intTable(catalog.DistKey)
	rows := mkRows(1000)
	a := c.DistributeRows(def, rows)
	b := c.DistributeRows(def, rows)
	for s := range a {
		if len(a[s]) != len(b[s]) {
			t.Fatal("KEY distribution not deterministic")
		}
	}
	// Same key always lands on the same slice.
	seen := map[int64]int{}
	for s, part := range a {
		for _, r := range part {
			if prev, ok := seen[r[0].I]; ok && prev != s {
				t.Fatalf("key %d on two slices", r[0].I)
			}
			seen[r[0].I] = s
		}
	}
	// Distribution is roughly balanced (within 3x of ideal).
	ideal := 1000 / c.NumSlices()
	for s, part := range a {
		if len(part) > 3*ideal {
			t.Errorf("slice %d has %d rows (ideal %d)", s, len(part), ideal)
		}
	}
}

func TestDistributeRowsAll(t *testing.T) {
	c := testCluster(t, 3, 2)
	def := intTable(catalog.DistAll)
	parts := c.DistributeRows(def, mkRows(5))
	for n := 0; n < 3; n++ {
		if got := len(parts[n*2]); got != 5 {
			t.Errorf("node %d copy has %d rows", n, got)
		}
		if got := len(parts[n*2+1]); got != 0 {
			t.Errorf("node %d second slice has %d rows", n, got)
		}
	}
}

func TestAppendAndVisibility(t *testing.T) {
	c := testCluster(t, 2, 1)
	seg := mkSegment(t, 7, 0, mkRows(20))
	if err := c.AppendSegment(0, seg, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.VisibleSegments(0, 7, 4); len(got) != 0 {
		t.Errorf("xid 4 sees %d segments", len(got))
	}
	if got := c.VisibleSegments(0, 7, 5); len(got) != 1 {
		t.Errorf("xid 5 sees %d segments", len(got))
	}
	if c.TableBytes(7) <= 0 {
		t.Error("TableBytes zero")
	}
	if ids := c.Tables(); len(ids) != 1 || ids[0] != 7 {
		t.Errorf("Tables = %v", ids)
	}
}

func TestReplicationAndFailover(t *testing.T) {
	c := testCluster(t, 2, 1)
	seg := mkSegment(t, 7, 0, mkRows(20))
	if err := c.AppendSegment(0, seg, 1); err != nil {
		t.Fatal(err)
	}
	if c.NetBytes() <= 0 {
		t.Fatal("replication produced no network traffic")
	}

	// Fail node 0; payloads are gone.
	c.FailNode(0)
	var someBlock *storage.Block
	seg.Blocks(func(b *storage.Block) {
		if someBlock == nil {
			someBlock = b
		}
	})
	if someBlock.Resident() {
		t.Fatal("payload survived node failure")
	}
	// Fail over to the secondary.
	if err := c.FetchBlock(someBlock); err != nil {
		t.Fatal(err)
	}
	v, err := someBlock.Decode()
	if err != nil || v.Len() == 0 {
		t.Fatalf("decode after failover: %v", err)
	}
}

func TestRecoverNode(t *testing.T) {
	c := testCluster(t, 2, 2)
	def := intTable(catalog.DistEven)
	parts := c.DistributeRows(def, mkRows(64))
	for s, rows := range parts {
		if len(rows) == 0 {
			continue
		}
		if err := c.AppendSegment(s, mkSegment(t, 7, int32(s), rows), 1); err != nil {
			t.Fatal(err)
		}
	}
	c.FailNode(1)
	blocks, bytes, err := c.RecoverNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if blocks == 0 || bytes == 0 {
		t.Errorf("recovered %d blocks, %d bytes", blocks, bytes)
	}
	if c.Node(1).Failed() {
		t.Error("node still marked failed")
	}
	// All blocks resident again.
	c.AllBlocks(func(b *storage.Block) {
		if !b.Resident() {
			t.Errorf("block %s still evicted", b.ID)
		}
	})
	// Secondary copies re-established on node 1 for node 0's blocks.
	if len(c.Node(1).secondary) == 0 {
		t.Error("re-replication to recovered node missing")
	}
}

func TestFetchBlockFromBackup(t *testing.T) {
	c := testCluster(t, 1, 1) // single node: no secondary
	seg := mkSegment(t, 7, 0, mkRows(8))
	if err := c.AppendSegment(0, seg, 1); err != nil {
		t.Fatal(err)
	}
	payloads := map[storage.BlockID][]byte{}
	seg.Blocks(func(b *storage.Block) {
		payloads[b.ID] = append([]byte(nil), b.Payload()...)
	})
	c.SetBackupFetcher(func(b *storage.Block) ([]byte, error) {
		return payloads[b.ID], nil
	})
	c.EvictAll()
	var blk *storage.Block
	seg.Blocks(func(b *storage.Block) { blk = b })
	if err := c.FetchBlock(blk); err != nil {
		t.Fatal(err)
	}
	if !blk.Resident() {
		t.Error("block not refilled from backup")
	}
}

func TestFetchBlockNoReplica(t *testing.T) {
	c := testCluster(t, 1, 1)
	seg := mkSegment(t, 7, 0, mkRows(8))
	c.AppendSegment(0, seg, 1)
	c.EvictAll()
	var blk *storage.Block
	seg.Blocks(func(b *storage.Block) { blk = b })
	if err := c.FetchBlock(blk); err == nil {
		t.Error("fetch with no replica should fail")
	}
}

func TestAppendToFailedNodeRejected(t *testing.T) {
	c := testCluster(t, 2, 1)
	c.FailNode(0)
	if err := c.AppendSegment(0, mkSegment(t, 7, 0, mkRows(4)), 1); err == nil {
		t.Error("append to failed node accepted")
	}
	if err := c.AppendSegment(99, mkSegment(t, 7, 0, mkRows(4)), 1); err == nil {
		t.Error("append to bogus slice accepted")
	}
}

func TestReplaceAndDrop(t *testing.T) {
	c := testCluster(t, 1, 2)
	c.AppendSegment(0, mkSegment(t, 7, 0, mkRows(8)), 1)
	c.AppendSegment(0, mkSegment(t, 7, 0, mkRows(8)), 2)
	if got := len(c.VisibleSegments(0, 7, 10)); got != 2 {
		t.Fatalf("segments = %d", got)
	}
	merged := mkSegment(t, 7, 0, mkRows(16))
	c.ReplaceSegments(0, 7, []*storage.Segment{merged}, 3)
	if got := len(c.VisibleSegments(0, 7, 10)); got != 1 {
		t.Errorf("after replace = %d", got)
	}
	c.DropTable(7)
	if got := len(c.Tables()); got != 0 {
		t.Errorf("tables after drop = %d", got)
	}
}

func TestCollocatedVsShuffleTrafficShape(t *testing.T) {
	// The A5 invariant at unit scale: loading a KEY-distributed table sends
	// only replication traffic; the cross-node volume for EVEN + shuffle
	// queries is accounted by the engine (exercised in core tests). Here we
	// just verify accounting: same-node is free, cross-node is counted.
	c := testCluster(t, 2, 1)
	c.AccountTransfer(0, 0, 1000, TransferShuffle)
	if c.NetBytes() != 0 {
		t.Error("same-node transfer should be free")
	}
	c.AccountTransfer(0, 1, 1000, TransferShuffle)
	if c.NetBytes() != 1000 {
		t.Error("cross-node transfer not counted")
	}
	if c.NetBytesByKind(TransferShuffle) != 1000 {
		t.Error("shuffle bytes not attributed")
	}
	if c.NetBytesByKind(TransferBroadcast) != 0 {
		t.Error("broadcast bytes misattributed")
	}
	c.ResetNetBytes()
	if c.NetBytes() != 0 || c.NetBytesByKind(TransferShuffle) != 0 {
		t.Error("reset failed")
	}
}

func TestDropTableReclaimsRoundRobinCursor(t *testing.T) {
	// Regression: DropTable left the EVEN round-robin cursor in c.rr, so
	// create/drop churn grew the map without bound.
	c := testCluster(t, 2, 2)
	for i := 0; i < 100; i++ {
		def := intTable(catalog.DistEven)
		def.ID = int64(100 + i)
		c.DistributeRows(def, mkRows(8))
		c.DropTable(def.ID)
	}
	c.rrMu.Lock()
	n := len(c.rr)
	c.rrMu.Unlock()
	if n != 0 {
		t.Errorf("rr cursors leaked: %d entries after drop churn", n)
	}
}

func TestDiscardXidReclaimsRoundRobinCursor(t *testing.T) {
	// A table created by an aborted transaction has its only segments
	// registered under the aborted xid; discarding them must also reclaim
	// the round-robin cursor.
	c := testCluster(t, 2, 2)
	def := intTable(catalog.DistEven)
	def.ID = 42
	parts := c.DistributeRows(def, mkRows(16))
	for s, rows := range parts {
		if len(rows) == 0 {
			continue
		}
		if err := c.AppendSegment(s, mkSegment(t, def.ID, int32(s), rows), 9); err != nil {
			t.Fatal(err)
		}
	}
	c.DiscardXid(def.ID, 9)
	c.rrMu.Lock()
	_, leaked := c.rr[def.ID]
	c.rrMu.Unlock()
	if leaked {
		t.Error("rr cursor survived DiscardXid of a table with no other segments")
	}

	// But a pre-existing table keeps its cursor when only one xid's
	// segments are discarded.
	pre := intTable(catalog.DistEven)
	pre.ID = 43
	parts = c.DistributeRows(pre, mkRows(16))
	for s, rows := range parts {
		if len(rows) == 0 {
			continue
		}
		if err := c.AppendSegment(s, mkSegment(t, pre.ID, int32(s), rows), 1); err != nil {
			t.Fatal(err)
		}
	}
	c.DiscardXid(pre.ID, 9) // no segments under xid 9
	c.rrMu.Lock()
	_, kept := c.rr[pre.ID]
	c.rrMu.Unlock()
	if !kept {
		t.Error("rr cursor dropped for a table that still has segments")
	}
}

func TestRecoverNodeBytesIsolatedFromConcurrentTraffic(t *testing.T) {
	// Regression: RecoverNode reported netBytes.Load()-start, so any
	// transfer concurrent with the recovery was misattributed to it. The
	// backup fetcher runs once per recovered block, so injecting unrelated
	// traffic there lands mid-recovery deterministically — no scheduler
	// luck needed.
	c := testCluster(t, 1, 2) // single node: every recovery fetch hits backup
	def := intTable(catalog.DistEven)
	parts := c.DistributeRows(def, mkRows(256))
	for s, rows := range parts {
		if len(rows) == 0 {
			continue
		}
		if err := c.AppendSegment(s, mkSegment(t, 7, int32(s), rows), 1); err != nil {
			t.Fatal(err)
		}
	}
	payloads := map[storage.BlockID][]byte{}
	c.AllBlocks(func(b *storage.Block) {
		payloads[b.ID] = append([]byte(nil), b.Payload()...)
	})
	noise := false
	c.SetBackupFetcher(func(b *storage.Block) ([]byte, error) {
		if noise {
			c.AccountTransfer(0, -1, 1<<20, TransferShuffle)
		}
		return payloads[b.ID], nil
	})

	c.FailNode(0)
	_, quiet, err := c.RecoverNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if quiet == 0 {
		t.Fatal("quiet recovery moved no bytes")
	}

	c.FailNode(0)
	noise = true
	_, noisy, err := c.RecoverNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if noisy != quiet {
		t.Errorf("recovery bytes polluted by concurrent traffic: quiet=%d noisy=%d", quiet, noisy)
	}
}

func TestReplaceKeepsOldSnapshotsReadable(t *testing.T) {
	// The MVCC contract behind VACUUM/TRUNCATE: a reader holding snapshot S
	// must keep seeing the pre-replacement segments even after the
	// replacement commits at S+1.
	c := testCluster(t, 1, 1)
	old := mkSegment(t, 7, 0, mkRows(8))
	c.AppendSegment(0, old, 1)

	merged := mkSegment(t, 7, 0, mkRows(8))
	c.ReplaceSegments(0, 7, []*storage.Segment{merged}, 2)

	// Snapshot 1 (taken before the replacement) sees only the old segment.
	got := c.VisibleSegments(0, 7, 1)
	if len(got) != 1 || got[0] != old {
		t.Fatalf("snapshot 1 sees %d segments", len(got))
	}
	// Snapshot 2 sees only the replacement.
	got = c.VisibleSegments(0, 7, 2)
	if len(got) != 1 || got[0] != merged {
		t.Fatalf("snapshot 2 sees wrong segments")
	}

	// Pruning below the oldest active snapshot keeps the old segment...
	if n := c.PruneDropped(1); n != 0 {
		t.Fatalf("pruned %d entries still visible to snapshot 1", n)
	}
	if got := c.VisibleSegments(0, 7, 1); len(got) != 1 {
		t.Fatal("old segment reclaimed while a snapshot needed it")
	}
	// ...and pruning once every snapshot has advanced reclaims it.
	if n := c.PruneDropped(2); n != 1 {
		t.Fatalf("pruned %d, want 1", n)
	}
	if got := c.VisibleSegments(0, 7, 2); len(got) != 1 {
		t.Fatal("live segment pruned")
	}
}

func TestTruncateVisibilityWindow(t *testing.T) {
	c := testCluster(t, 1, 1)
	c.AppendSegment(0, mkSegment(t, 7, 0, mkRows(8)), 1)
	c.ReplaceSegments(0, 7, nil, 2) // TRUNCATE
	if got := c.VisibleSegments(0, 7, 1); len(got) != 1 {
		t.Fatal("pre-truncate snapshot lost its data")
	}
	if got := c.VisibleSegments(0, 7, 5); len(got) != 0 {
		t.Fatal("post-truncate snapshot still sees data")
	}
}
