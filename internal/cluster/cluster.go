// Package cluster implements the data plane topology of §2.1: a cluster of
// compute nodes partitioned into slices (one per core), table shards
// distributed across slices (EVEN round-robin, KEY hash, or ALL
// duplication), synchronous block replication to a secondary node chosen by
// cohort, and transparent read fail-over primary → secondary → S3.
//
// The "network" between nodes is in-process, but every byte that would
// cross a node boundary is accounted, so the co-location and shuffle
// numbers the paper reasons about are measured rather than asserted.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"redshift/internal/catalog"
	"redshift/internal/exec"
	"redshift/internal/faults"
	"redshift/internal/storage"
	"redshift/internal/telemetry"
	"redshift/internal/types"
)

// TransferKind tags why bytes crossed a node boundary, so telemetry can
// split "the network is busy" into shuffle vs. broadcast vs. replication
// vs. recovery traffic — the attribution §3's monitoring depends on.
type TransferKind uint8

const (
	// TransferShuffle is join/aggregate repartitioning between slices.
	TransferShuffle TransferKind = iota
	// TransferBroadcast is an inner join side replicated to every node.
	TransferBroadcast
	// TransferGather is per-slice results shipped to the leader.
	TransferGather
	// TransferReplication is synchronous secondary block replication.
	TransferReplication
	// TransferRecovery is failure masking: page-fault fail-over reads and
	// node-rebuild traffic.
	TransferRecovery
	numTransferKinds
)

// String names the kind as metrics report it.
func (k TransferKind) String() string {
	switch k {
	case TransferShuffle:
		return "shuffle"
	case TransferBroadcast:
		return "broadcast"
	case TransferGather:
		return "gather"
	case TransferReplication:
		return "replication"
	case TransferRecovery:
		return "recovery"
	default:
		return "unknown"
	}
}

// Config sizes a cluster.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// SlicesPerNode is the number of slices (cores) per node.
	SlicesPerNode int
	// CohortSize groups nodes for replication: a block's secondary copy
	// lives on the next node of the same cohort, bounding how many nodes a
	// failure forces re-replication traffic onto (§2.1 "Cohorting is used
	// to limit the number of slices impacted by an individual disk or node
	// failure").
	CohortSize int
	// BlockCap is rows per block (storage.BlockCap when zero).
	BlockCap int
}

// Validate applies defaults and checks bounds.
func (c *Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("cluster: need at least one node")
	}
	if c.SlicesPerNode < 1 {
		return fmt.Errorf("cluster: need at least one slice per node")
	}
	if c.CohortSize <= 0 {
		c.CohortSize = 2
	}
	if c.BlockCap <= 0 {
		c.BlockCap = storage.BlockCap
	}
	return nil
}

// Node is one compute node.
type Node struct {
	ID     int
	failed atomic.Bool
	mu     sync.RWMutex
	// secondary holds replica payloads for blocks whose primary lives on a
	// cohort peer.
	secondary map[storage.BlockID][]byte
}

// Failed reports whether the node is down.
func (n *Node) Failed() bool { return n.failed.Load() }

// Slice is one unit of parallelism: a share of a node's CPU, memory and
// disk, owning a shard of every table.
type Slice struct {
	ID   int
	Node *Node
	mu   sync.RWMutex
	// shards maps table ID → the slice's segments with commit visibility.
	shards map[int64][]SegmentEntry
	// rrNext is the round-robin cursor for EVEN distribution.
}

// SegmentEntry is a segment plus its visibility window: created at Xid,
// superseded at DroppedXid (0 = still live). VACUUM and TRUNCATE install
// replacements without breaking readers that hold older snapshots.
type SegmentEntry struct {
	Seg        *storage.Segment
	Xid        int64
	DroppedXid int64
}

// Cluster is the in-process data plane.
type Cluster struct {
	cfg    Config
	nodes  []*Node
	slices []*Slice

	// netBytes counts bytes that crossed a node boundary (shuffles,
	// broadcasts, replication, node rebuilds); kindBytes splits the same
	// total by TransferKind for attribution.
	netBytes  atomic.Int64
	kindBytes [numTransferKinds]atomic.Int64

	// metricBytes, when wired via SetMetrics, mirrors kindBytes into the
	// shared registry as net_<kind>_bytes_total counters (pre-resolved so
	// the hot path never takes the registry lock).
	metricBytes [numTransferKinds]*telemetry.Counter

	// rrMu guards per-table round-robin cursors for EVEN distribution.
	rrMu sync.Mutex
	rr   map[int64]int

	// fetchBackup, when set by the backup layer, resolves a block payload
	// from S3 (by content hash) — the third read replica of §2.1.
	fetchBackup func(b *storage.Block) ([]byte, error)

	// inj injects faults at the secondary-fetch, S3-fetch and replication
	// sites (nil-safe); retry is the backoff policy fail-over reads use.
	inj   *faults.Injector
	retry faults.Policy

	// health quarantines nodes after repeated read failures so fail-over
	// goes straight to the next replica tier.
	health *HealthTracker

	// mQuarantine counts quarantine transitions (node_quarantine_total).
	mQuarantine *telemetry.Counter
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, rr: map[int64]int{}, health: NewHealthTracker(0)}
	for n := 0; n < cfg.Nodes; n++ {
		node := &Node{ID: n, secondary: map[storage.BlockID][]byte{}}
		c.nodes = append(c.nodes, node)
		for s := 0; s < cfg.SlicesPerNode; s++ {
			c.slices = append(c.slices, &Slice{
				ID:     n*cfg.SlicesPerNode + s,
				Node:   node,
				shards: map[int64][]SegmentEntry{},
			})
		}
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumSlices returns the total slice count.
func (c *Cluster) NumSlices() int { return len(c.slices) }

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Slice returns slice i.
func (c *Cluster) Slice(i int) *Slice { return c.slices[i] }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// NetBytes returns the cross-node traffic counter.
func (c *Cluster) NetBytes() int64 { return c.netBytes.Load() }

// NetBytesByKind returns the cross-node traffic attributed to one kind.
func (c *Cluster) NetBytesByKind(kind TransferKind) int64 {
	return c.kindBytes[kind].Load()
}

// ResetNetBytes zeroes the traffic counters (between benchmark phases).
func (c *Cluster) ResetNetBytes() {
	c.netBytes.Store(0)
	for i := range c.kindBytes {
		c.kindBytes[i].Store(0)
	}
}

// SetMetrics mirrors per-kind transfer bytes into a shared registry.
func (c *Cluster) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for k := TransferKind(0); k < numTransferKinds; k++ {
		c.metricBytes[k] = reg.Counter("net_" + k.String() + "_bytes_total")
	}
	c.mQuarantine = reg.Counter("node_quarantine_total")
	c.health.onQuarantine = func(int) { c.mQuarantine.Inc() }
}

// SetFaults attaches the fault injector consulted at the cluster's
// injection sites (nil detaches).
func (c *Cluster) SetFaults(inj *faults.Injector) { c.inj = inj }

// SetRetryPolicy overrides the fail-over read backoff policy (the zero
// value restores defaults).
func (c *Cluster) SetRetryPolicy(p faults.Policy) { c.retry = p }

// Health exposes the node health tracker.
func (c *Cluster) Health() *HealthTracker { return c.health }

// AccountTransfer records bytes moving between two nodes, attributed to a
// transfer direction; same-node moves are free, like slice-to-slice traffic
// inside a box.
func (c *Cluster) AccountTransfer(fromNode, toNode int, bytes int64, kind TransferKind) {
	if fromNode == toNode {
		return
	}
	c.netBytes.Add(bytes)
	c.kindBytes[kind].Add(bytes)
	if m := c.metricBytes[kind]; m != nil {
		m.Add(bytes)
	}
}

// SetBackupFetcher installs the S3 read path for the third replica.
func (c *Cluster) SetBackupFetcher(f func(b *storage.Block) ([]byte, error)) {
	c.fetchBackup = f
}

// cohortOf returns the replication cohort members of a node.
func (c *Cluster) cohortOf(node int) (lo, hi int) {
	lo = node / c.cfg.CohortSize * c.cfg.CohortSize
	hi = lo + c.cfg.CohortSize
	if hi > len(c.nodes) {
		hi = len(c.nodes)
	}
	return lo, hi
}

// SecondaryNode returns where a primary node's blocks are replicated, or -1
// for a single-node cohort (no replication possible).
func (c *Cluster) SecondaryNode(primary int) int {
	lo, hi := c.cohortOf(primary)
	if hi-lo <= 1 {
		return -1
	}
	next := primary + 1
	if next >= hi {
		next = lo
	}
	return next
}

// TargetSliceKey returns the slice that owns a KEY-distributed row.
func (c *Cluster) TargetSliceKey(distValue types.Value) int {
	h := exec.HashValues([]types.Value{distValue})
	return int(h % uint64(len(c.slices)))
}

// nextRoundRobin returns the next EVEN-distribution slice for a table.
func (c *Cluster) nextRoundRobin(tableID int64) int {
	c.rrMu.Lock()
	defer c.rrMu.Unlock()
	s := c.rr[tableID]
	c.rr[tableID] = (s + 1) % len(c.slices)
	return s
}

// DistributeRows partitions rows to slices per the table's DISTSTYLE.
// For DistAll every node receives the full row set (on its first slice).
func (c *Cluster) DistributeRows(def *catalog.TableDef, rows []types.Row) [][]types.Row {
	out := make([][]types.Row, len(c.slices))
	switch def.DistStyle {
	case catalog.DistAll:
		for n := range c.nodes {
			s := n * c.cfg.SlicesPerNode
			out[s] = append(out[s], rows...)
		}
	case catalog.DistKey:
		for _, row := range rows {
			s := c.TargetSliceKey(row[def.DistKeyCol])
			out[s] = append(out[s], row)
		}
	default: // EVEN
		for _, row := range rows {
			s := c.nextRoundRobin(def.ID)
			out[s] = append(out[s], row)
		}
	}
	return out
}

// AppendSegment registers a segment on a slice with synchronous secondary
// replication (§2.1: "Each data block is synchronously written to both its
// primary slice as well as to at least one secondary on a separate node").
func (c *Cluster) AppendSegment(sliceID int, seg *storage.Segment, xid int64) error {
	if sliceID < 0 || sliceID >= len(c.slices) {
		return fmt.Errorf("cluster: slice %d out of range", sliceID)
	}
	sl := c.slices[sliceID]
	if sl.Node.Failed() {
		return fmt.Errorf("cluster: slice %d is on failed node %d", sliceID, sl.Node.ID)
	}
	sec := c.SecondaryNode(sl.Node.ID)
	if sec >= 0 {
		// The synchronous replica write is itself a fault site: a failed
		// write is retried with backoff, and exhaustion fails the append —
		// the block must not commit with fewer copies than promised.
		if _, err := c.retry.Do(context.Background(), func() error {
			return c.inj.Hit(faults.SiteReplicate)
		}); err != nil {
			return fmt.Errorf("cluster: replicating slice %d segment to node %d: %w", sliceID, sec, err)
		}
		secNode := c.nodes[sec]
		secNode.mu.Lock()
		seg.Blocks(func(b *storage.Block) {
			payload := append([]byte(nil), b.Payload()...)
			secNode.secondary[b.ID] = payload
			c.AccountTransfer(sl.Node.ID, sec, int64(len(payload)), TransferReplication)
		})
		secNode.mu.Unlock()
	}
	sl.mu.Lock()
	sl.shards[seg.Table] = append(sl.shards[seg.Table], SegmentEntry{Seg: seg, Xid: xid})
	sl.mu.Unlock()
	return nil
}

// RestoreSegment registers a segment without replication — the metadata
// phase of streaming restore, where payloads are still in S3 and will be
// page-faulted or background-fetched later.
func (c *Cluster) RestoreSegment(sliceID int, seg *storage.Segment, xid int64) error {
	if sliceID < 0 || sliceID >= len(c.slices) {
		return fmt.Errorf("cluster: slice %d out of range", sliceID)
	}
	sl := c.slices[sliceID]
	sl.mu.Lock()
	sl.shards[seg.Table] = append(sl.shards[seg.Table], SegmentEntry{Seg: seg, Xid: xid})
	sl.mu.Unlock()
	return nil
}

// ReplicateAll re-establishes secondary copies for every resident primary
// block — the final step of a full restore or a cohort rebuild.
func (c *Cluster) ReplicateAll() {
	for _, sl := range c.slices {
		sec := c.SecondaryNode(sl.Node.ID)
		if sec < 0 {
			continue
		}
		secNode := c.nodes[sec]
		sl.mu.RLock()
		secNode.mu.Lock()
		for _, entries := range sl.shards {
			for _, e := range entries {
				e.Seg.Blocks(func(b *storage.Block) {
					if b.Resident() {
						if _, ok := secNode.secondary[b.ID]; !ok {
							secNode.secondary[b.ID] = append([]byte(nil), b.Payload()...)
							c.AccountTransfer(sl.Node.ID, sec, b.ByteSize(), TransferReplication)
						}
					}
				})
			}
		}
		secNode.mu.Unlock()
		sl.mu.RUnlock()
	}
}

// VisibleSegments returns the slice's segments of a table committed at or
// before the snapshot xid.
func (c *Cluster) VisibleSegments(sliceID int, tableID, snapshotXid int64) []*storage.Segment {
	sl := c.slices[sliceID]
	sl.mu.RLock()
	defer sl.mu.RUnlock()
	var out []*storage.Segment
	for _, e := range sl.shards[tableID] {
		if e.Xid <= snapshotXid && (e.DroppedXid == 0 || e.DroppedXid > snapshotXid) {
			out = append(out, e.Seg)
		}
	}
	return out
}

// ReplaceSegments atomically replaces a table's shard on a slice
// (VACUUM/TRUNCATE install the rewritten shard). The superseded segments
// are kept with DroppedXid = xid so snapshots older than the replacement
// keep reading them; PruneDropped reclaims them once no snapshot needs
// them.
func (c *Cluster) ReplaceSegments(sliceID int, tableID int64, segs []*storage.Segment, xid int64) {
	sl := c.slices[sliceID]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	entries := sl.shards[tableID]
	for i := range entries {
		if entries[i].DroppedXid == 0 {
			entries[i].DroppedXid = xid
		}
	}
	for _, s := range segs {
		entries = append(entries, SegmentEntry{Seg: s, Xid: xid})
	}
	sl.shards[tableID] = entries
}

// PruneDropped removes superseded segments no live snapshot can still see
// (oldestActive is the smallest snapshot xid any active transaction or
// query holds). It returns how many entries were reclaimed.
func (c *Cluster) PruneDropped(oldestActive int64) int {
	pruned := 0
	for _, sl := range c.slices {
		sl.mu.Lock()
		for tableID, entries := range sl.shards {
			kept := entries[:0]
			for _, e := range entries {
				if e.DroppedXid != 0 && e.DroppedXid <= oldestActive {
					pruned++
					continue
				}
				kept = append(kept, e)
			}
			sl.shards[tableID] = kept
		}
		sl.mu.Unlock()
	}
	return pruned
}

// DiscardXid removes a table's segments registered under an unpublished
// xid — the rollback path when a write statement fails after registering
// some slices' segments.
func (c *Cluster) DiscardXid(tableID, xid int64) {
	remaining := 0
	for _, sl := range c.slices {
		sl.mu.Lock()
		entries := sl.shards[tableID]
		kept := entries[:0]
		for _, e := range entries {
			if e.Xid == xid {
				continue
			}
			if e.DroppedXid == xid {
				e.DroppedXid = 0 // un-drop what the aborted writer superseded
			}
			kept = append(kept, e)
		}
		sl.shards[tableID] = kept
		remaining += len(kept)
		sl.mu.Unlock()
	}
	// A table created by the aborted transaction leaves no segments behind;
	// reclaim its round-robin cursor too.
	if remaining == 0 {
		c.rrMu.Lock()
		delete(c.rr, tableID)
		c.rrMu.Unlock()
	}
}

// DropTable removes a table's shards everywhere, including its EVEN
// round-robin cursor — without that, create/drop churn grows c.rr forever.
func (c *Cluster) DropTable(tableID int64) {
	c.rrMu.Lock()
	delete(c.rr, tableID)
	c.rrMu.Unlock()
	for _, sl := range c.slices {
		sl.mu.Lock()
		delete(sl.shards, tableID)
		sl.mu.Unlock()
	}
	for _, n := range c.nodes {
		n.mu.Lock()
		for id := range n.secondary {
			if id.Table == tableID {
				delete(n.secondary, id)
			}
		}
		n.mu.Unlock()
	}
}

// TableBytes returns the total primary storage a table occupies.
func (c *Cluster) TableBytes(tableID int64) int64 {
	var total int64
	for _, sl := range c.slices {
		sl.mu.RLock()
		for _, e := range sl.shards[tableID] {
			total += e.Seg.ByteSize()
		}
		sl.mu.RUnlock()
	}
	return total
}

// Tables returns the IDs of all tables with data on the cluster.
func (c *Cluster) Tables() []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, sl := range c.slices {
		sl.mu.RLock()
		for id := range sl.shards {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		sl.mu.RUnlock()
	}
	return out
}

// FailNode simulates a node loss: its disks' payloads are gone. Metadata
// (zone maps, hashes, shard lists) survives at the leader, which is what
// lets reads fail over and the replacement workflow rebuild the node.
func (c *Cluster) FailNode(nodeID int) {
	node := c.nodes[nodeID]
	node.failed.Store(true)
	for _, sl := range c.slices {
		if sl.Node != node {
			continue
		}
		sl.mu.Lock()
		for _, entries := range sl.shards {
			for _, e := range entries {
				e.Seg.Blocks(func(b *storage.Block) { b.Evict() })
			}
		}
		sl.mu.Unlock()
	}
	node.mu.Lock()
	node.secondary = map[storage.BlockID][]byte{}
	node.mu.Unlock()
}

// errNoSecondaryCopy marks a fail-over miss that says nothing about the
// secondary node's health.
var errNoSecondaryCopy = errors.New("holds no secondary copy of the block")

// FetchBlock resolves a block payload for a page fault: secondary replica
// first, then the S3 backup ("The primary, secondary and Amazon S3 copies
// of the data block are each available for read, making media failures
// transparent").
func (c *Cluster) FetchBlock(b *storage.Block) error {
	_, _, err := c.fetchBlock(context.Background(), b)
	return err
}

// FetchBlockCtx is the scan path's fetcher: cancellable, and it reports
// how many backoff retries the fail-over needed (EXPLAIN ANALYZE's
// per-scan `retries`).
func (c *Cluster) FetchBlockCtx(ctx context.Context, b *storage.Block) (retries int, err error) {
	_, retries, err = c.fetchBlock(ctx, b)
	return retries, err
}

// fetchBlock resolves a block from the secondary replica, then the S3
// backup, retrying transient failures at each tier with backoff and
// reporting per-node outcomes to the health tracker. It returns the
// bytes moved (so recovery can account its own traffic) and the number
// of retries spent.
func (c *Cluster) fetchBlock(ctx context.Context, b *storage.Block) (int64, int, error) {
	primaryNode := int(b.ID.Slice) / c.cfg.SlicesPerNode
	retries := 0
	var tierErrs []error
	quarantined := false
	if sec := c.SecondaryNode(primaryNode); sec >= 0 {
		secNode := c.nodes[sec]
		switch {
		case secNode.Failed():
			tierErrs = append(tierErrs, fmt.Errorf("secondary node %d is down", sec))
		case c.health.Quarantined(sec):
			quarantined = true
			tierErrs = append(tierErrs, fmt.Errorf("secondary node %d is quarantined", sec))
		default:
			var payload []byte
			attempts, err := c.retry.Do(ctx, func() error {
				if ferr := c.inj.Hit(faults.SiteSecondaryFetch); ferr != nil {
					return ferr
				}
				secNode.mu.RLock()
				p, ok := secNode.secondary[b.ID]
				secNode.mu.RUnlock()
				if !ok {
					// Missing copy: deterministic, retrying cannot help.
					return faults.Permanent(fmt.Errorf("node %d: %w", sec, errNoSecondaryCopy))
				}
				payload = p
				return nil
			})
			retries += attempts - 1
			if err == nil {
				c.health.ReportSuccess(sec)
				c.AccountTransfer(sec, primaryNode, int64(len(payload)), TransferRecovery)
				return int64(len(payload)), retries, b.Fill(payload)
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return 0, retries, err
			}
			tierErrs = append(tierErrs, fmt.Errorf("secondary node %d: %w", sec, err))
			// Only transient exhaustion (a sick node) counts toward
			// quarantine; a missing copy is bookkeeping, not node health.
			if !errors.Is(err, errNoSecondaryCopy) {
				c.health.ReportFailure(sec)
			}
		}
	}
	if c.fetchBackup != nil {
		var payload []byte
		attempts, err := c.retry.Do(ctx, func() error {
			if ferr := c.inj.Hit(faults.SiteS3Fetch); ferr != nil {
				return ferr
			}
			p, ferr := c.fetchBackup(b)
			if ferr != nil {
				return ferr
			}
			payload = p
			return nil
		})
		retries += attempts - 1
		if err == nil {
			c.AccountTransfer(-1, primaryNode, int64(len(payload)), TransferRecovery)
			return int64(len(payload)), retries, b.Fill(payload)
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, retries, err
		}
		tierErrs = append(tierErrs, fmt.Errorf("s3 backup: %w", err))
	} else {
		tierErrs = append(tierErrs, errors.New("no s3 backup fetcher installed"))
	}
	err := fmt.Errorf("cluster: block %s: no replica available: %w", b.ID, errors.Join(tierErrs...))
	if quarantined {
		// A quarantine clears on its own (cooldown or node recovery), so the
		// exhausted chain is transient from the client's point of view.
		err = faults.MarkRetryable(err)
	}
	return 0, retries, err
}

// RecoverNode rebuilds a failed node from secondaries and S3 — the
// replacement workflow's data phase. Each block independently fails over
// secondary → S3 (a down or partial cohort secondary does not fail the
// rebuild as long as the backup tier can serve the block). It returns
// the number of blocks restored and the bytes moved.
func (c *Cluster) RecoverNode(nodeID int) (blocks int, bytes int64, err error) {
	node := c.nodes[nodeID]
	for _, sl := range c.slices {
		if sl.Node != node {
			continue
		}
		sl.mu.RLock()
		var all []*storage.Block
		for _, entries := range sl.shards {
			for _, e := range entries {
				e.Seg.Blocks(func(b *storage.Block) {
					if !b.Resident() {
						all = append(all, b)
					}
				})
			}
		}
		sl.mu.RUnlock()
		for _, b := range all {
			n, _, ferr := c.fetchBlock(context.Background(), b)
			bytes += n
			if ferr != nil {
				return blocks, bytes, fmt.Errorf("cluster: rebuilding node %d: %w", nodeID, ferr)
			}
			blocks++
		}
	}
	// Re-establish the node's own secondary copies for its cohort peers.
	bytes += c.reReplicateTo(nodeID)
	node.failed.Store(false)
	// A rebuilt node starts with a clean health record.
	c.health.Reset(nodeID)
	return blocks, bytes, nil
}

// reReplicateTo repopulates nodeID's secondary map from its cohort peers'
// primary blocks, returning the bytes transferred.
func (c *Cluster) reReplicateTo(nodeID int) int64 {
	node := c.nodes[nodeID]
	var bytes int64
	for _, sl := range c.slices {
		if c.SecondaryNode(sl.Node.ID) != nodeID || sl.Node.Failed() {
			continue
		}
		sl.mu.RLock()
		node.mu.Lock()
		for _, entries := range sl.shards {
			for _, e := range entries {
				e.Seg.Blocks(func(b *storage.Block) {
					if b.Resident() {
						node.secondary[b.ID] = append([]byte(nil), b.Payload()...)
						c.AccountTransfer(sl.Node.ID, nodeID, b.ByteSize(), TransferRecovery)
						bytes += b.ByteSize()
					}
				})
			}
		}
		node.mu.Unlock()
		sl.mu.RUnlock()
	}
	return bytes
}

// EvictAll drops every payload on the cluster while keeping metadata — the
// state right after a streaming restore's catalog phase (§2.3).
func (c *Cluster) EvictAll() {
	for _, sl := range c.slices {
		sl.mu.Lock()
		for _, entries := range sl.shards {
			for _, e := range entries {
				e.Seg.Blocks(func(b *storage.Block) { b.Evict() })
			}
		}
		sl.mu.Unlock()
	}
}

// SlicesOfNode returns the slices hosted on one node.
func (c *Cluster) SlicesOfNode(nodeID int) []*Slice {
	var out []*Slice
	for _, sl := range c.slices {
		if sl.Node.ID == nodeID {
			out = append(out, sl)
		}
	}
	return out
}

// AllBlocks visits every primary block on live nodes.
func (c *Cluster) AllBlocks(fn func(*storage.Block)) {
	for _, sl := range c.slices {
		sl.mu.RLock()
		for _, entries := range sl.shards {
			for _, e := range entries {
				e.Seg.Blocks(fn)
			}
		}
		sl.mu.RUnlock()
	}
}
