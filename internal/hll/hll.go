// Package hll implements HyperLogLog cardinality estimation, the building
// block for the paper's "approximate functions" direction (§4: "we would
// like to build distributed approximate equivalents for all non-linear exact
// operations") and for table statistics (distinct-value estimates feed the
// join planner).
//
// Sketches merge losslessly, which is what makes the aggregate distributed:
// each slice builds a sketch over local data and the leader merges them.
package hll

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Precision is the number of index bits; 2^Precision registers.
// 12 gives ~1.6% standard error in 4 KiB, Redshift-like accuracy.
const Precision = 12

const m = 1 << Precision

// Sketch is a HyperLogLog cardinality estimator. The zero value is NOT
// ready; use New.
type Sketch struct {
	reg [m]uint8
}

// New returns an empty sketch.
func New() *Sketch { return &Sketch{} }

// fmix64 is the murmur3 finalizer. FNV's high-order bits are weakly mixed
// for short inputs, and HLL takes its register index from the top bits, so
// every hash is finalized before use.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// AddHash folds a precomputed 64-bit hash into the sketch.
func (s *Sketch) AddHash(h uint64) {
	h = fmix64(h)
	idx := h >> (64 - Precision)
	rest := h<<Precision | 1<<(Precision-1) // guarantee a set bit
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > s.reg[idx] {
		s.reg[idx] = rank
	}
}

// AddBytes hashes and folds a byte string.
func (s *Sketch) AddBytes(b []byte) {
	h := fnv.New64a()
	h.Write(b)
	s.AddHash(h.Sum64())
}

// AddString hashes and folds a string.
func (s *Sketch) AddString(v string) { s.AddBytes([]byte(v)) }

// AddInt64 hashes and folds an integer.
func (s *Sketch) AddInt64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	s.AddBytes(b[:])
}

// Merge folds other into s (register-wise max). Sketches must have been
// built with the same Precision, which the type guarantees.
func (s *Sketch) Merge(other *Sketch) {
	for i, r := range other.reg {
		if r > s.reg[i] {
			s.reg[i] = r
		}
	}
}

// Estimate returns the estimated number of distinct values added.
func (s *Sketch) Estimate() int64 {
	// Standard HLL estimator with the small-range (linear counting)
	// correction from Flajolet et al.
	alpha := 0.7213 / (1 + 1.079/float64(m))
	var sum float64
	zeros := 0
	for _, r := range s.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = float64(m) * math.Log(float64(m)/float64(zeros))
	}
	return int64(est + 0.5)
}

// ByteSize is the sketch's serialized size: constant regardless of
// cardinality, which is the whole point of approximate distinct (§4).
func (s *Sketch) ByteSize() int64 { return m }

// Marshal serializes the sketch for shipment from slices to the leader.
func (s *Sketch) Marshal() []byte {
	out := make([]byte, m)
	copy(out, s.reg[:])
	return out
}

// Unmarshal reconstructs a sketch serialized with Marshal.
func Unmarshal(b []byte) (*Sketch, error) {
	if len(b) != m {
		return nil, fmt.Errorf("hll: sketch must be %d bytes, got %d", m, len(b))
	}
	s := New()
	copy(s.reg[:], b)
	return s, nil
}
