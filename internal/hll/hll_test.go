package hll

import (
	"fmt"
	"math"
	"testing"
)

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int64{0, 1, 10, 100, 1000, 10_000, 100_000, 1_000_000} {
		s := New()
		for i := int64(0); i < n; i++ {
			s.AddInt64(i)
		}
		got := s.Estimate()
		if n == 0 {
			if got != 0 {
				t.Errorf("empty sketch estimates %d", got)
			}
			continue
		}
		err := math.Abs(float64(got)-float64(n)) / float64(n)
		// 12-bit precision: ~1.6% standard error; allow 5x that.
		if err > 0.08 {
			t.Errorf("n=%d estimate=%d relative error %.3f", n, got, err)
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := New()
	for i := 0; i < 100_000; i++ {
		s.AddInt64(int64(i % 50))
	}
	got := s.Estimate()
	if got < 40 || got > 60 {
		t.Errorf("50 distinct values estimated as %d", got)
	}
}

func TestStringsAndBytes(t *testing.T) {
	s := New()
	for i := 0; i < 5000; i++ {
		s.AddString(fmt.Sprintf("user-%d", i))
	}
	got := s.Estimate()
	if math.Abs(float64(got)-5000)/5000 > 0.08 {
		t.Errorf("estimate = %d, want ≈5000", got)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, both := New(), New(), New()
	for i := 0; i < 60_000; i++ {
		a.AddInt64(int64(i))
		both.AddInt64(int64(i))
	}
	for i := 30_000; i < 90_000; i++ {
		b.AddInt64(int64(i))
		both.AddInt64(int64(i))
	}
	a.Merge(b)
	if a.Estimate() != both.Estimate() {
		t.Errorf("merged estimate %d != union estimate %d", a.Estimate(), both.Estimate())
	}
	relErr := math.Abs(float64(a.Estimate())-90_000) / 90_000
	if relErr > 0.08 {
		t.Errorf("union estimate %d off by %.3f", a.Estimate(), relErr)
	}
}

func TestMergeCommutative(t *testing.T) {
	a1, b1 := New(), New()
	a2, b2 := New(), New()
	for i := 0; i < 10_000; i++ {
		a1.AddInt64(int64(i))
		a2.AddInt64(int64(i))
	}
	for i := 5000; i < 20_000; i++ {
		b1.AddInt64(int64(i))
		b2.AddInt64(int64(i))
	}
	a1.Merge(b1) // a ∪ b
	b2.Merge(a2) // b ∪ a
	if a1.Estimate() != b2.Estimate() {
		t.Error("merge is not commutative")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 12345; i++ {
		s.AddInt64(int64(i))
	}
	got, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() {
		t.Errorf("round trip changed estimate: %d vs %d", got.Estimate(), s.Estimate())
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("Unmarshal accepted short buffer")
	}
}

func BenchmarkAddInt64(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.AddInt64(int64(i))
	}
}
