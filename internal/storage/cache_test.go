package storage

import (
	"fmt"
	"sync"
	"testing"

	"redshift/internal/types"
)

func cacheVec(n int) *types.Vector {
	v := types.NewVector(types.Int64, n)
	for i := 0; i < n; i++ {
		v.Append(types.NewInt(int64(i)))
	}
	return v
}

func cacheID(table int64, idx int32) BlockID {
	return BlockID{Table: table, Slice: 0, Segment: 0, Column: 0, Index: idx}
}

func TestBlockCacheGetPut(t *testing.T) {
	c := NewBlockCache(1 << 20)
	id := cacheID(1, 0)
	if _, ok := c.Get(id, c.Epoch(1)); ok {
		t.Fatal("hit on empty cache")
	}
	v := cacheVec(8)
	c.Put(id, v, c.Epoch(1))
	got, ok := c.Get(id, c.Epoch(1))
	if !ok || got != v {
		t.Fatalf("Get = %v, %v; want the cached vector", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != v.ByteSize() {
		t.Errorf("stats = %+v", s)
	}
	// A duplicate Put of the same immutable block is a no-op.
	c.Put(id, cacheVec(8), c.Epoch(1))
	if s2 := c.Stats(); s2.Entries != 1 || s2.Bytes != v.ByteSize() {
		t.Errorf("duplicate Put changed residency: %+v", s2)
	}
}

func TestBlockCacheLRUEviction(t *testing.T) {
	one := cacheVec(16).ByteSize()
	c := NewBlockCache(3 * one)
	for i := int32(0); i < 3; i++ {
		c.Put(cacheID(1, i), cacheVec(16), 0)
	}
	// Touch block 0 so block 1 becomes the LRU victim.
	if _, ok := c.Get(cacheID(1, 0), 0); !ok {
		t.Fatal("block 0 missing before eviction")
	}
	c.Put(cacheID(1, 3), cacheVec(16), 0)
	if _, ok := c.Get(cacheID(1, 1), 0); ok {
		t.Error("LRU entry survived over-budget Put")
	}
	for _, idx := range []int32{0, 2, 3} {
		if _, ok := c.Get(cacheID(1, idx), 0); !ok {
			t.Errorf("block %d evicted out of LRU order", idx)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Bytes != 3*one || s.Bytes > s.Budget {
		t.Errorf("stats = %+v", s)
	}
	// A vector larger than the whole budget is never cached.
	big := cacheVec(1024)
	if big.ByteSize() <= c.Stats().Budget {
		t.Fatal("test vector not oversized")
	}
	c.Put(cacheID(1, 9), big, 0)
	if _, ok := c.Get(cacheID(1, 9), 0); ok {
		t.Error("oversized vector was cached")
	}
}

func TestBlockCacheInvalidateTable(t *testing.T) {
	c := NewBlockCache(1 << 20)
	c.Put(cacheID(1, 0), cacheVec(8), 0)
	c.Put(cacheID(1, 1), cacheVec(8), 0)
	c.Put(cacheID(2, 0), cacheVec(8), 0)
	c.InvalidateTable(1)
	if _, ok := c.Get(cacheID(1, 0), c.Epoch(1)); ok {
		t.Error("table 1 block survived invalidation")
	}
	if _, ok := c.Get(cacheID(2, 0), c.Epoch(2)); !ok {
		t.Error("table 2 block lost to table 1 invalidation")
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Errorf("entries = %d, want 1", s.Entries)
	}
	c.Clear()
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("Clear left %+v", s)
	}
}

// TestBlockCacheEpochFence proves the stale-reader fence: a reader that
// sampled its epoch before an invalidation can neither hit nor poison
// block identities the rewrite reused.
func TestBlockCacheEpochFence(t *testing.T) {
	c := NewBlockCache(1 << 20)
	staleEpoch := c.Epoch(1)
	c.InvalidateTable(1) // the VACUUM rewrite, concurrent with the reader

	// The stale reader's Put of an old decode under the reused identity is
	// dropped...
	c.Put(cacheID(1, 0), cacheVec(8), staleEpoch)
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("stale Put was cached: %+v", s)
	}

	// ...so a fresh reader decodes the new content and caches it,
	fresh := c.Epoch(1)
	newVec := cacheVec(16)
	c.Put(cacheID(1, 0), newVec, fresh)
	if got, ok := c.Get(cacheID(1, 0), fresh); !ok || got != newVec {
		t.Fatalf("fresh Get = %v, %v; want the new vector", got, ok)
	}

	// ...and the stale reader misses rather than seeing the new identity's
	// content for its old snapshot.
	if _, ok := c.Get(cacheID(1, 0), staleEpoch); ok {
		t.Error("stale reader was served a post-rewrite vector")
	}
}

func TestBlockCacheNilDisabled(t *testing.T) {
	c := NewBlockCache(-1)
	if c != nil {
		t.Fatal("negative budget should disable the cache")
	}
	// Every method must be a safe no-op on the nil receiver.
	c.Put(cacheID(1, 0), cacheVec(4), 0)
	if _, ok := c.Get(cacheID(1, 0), 0); ok {
		t.Error("nil cache returned a hit")
	}
	if c.Epoch(1) != 0 {
		t.Error("nil cache epoch != 0")
	}
	c.InvalidateTable(1)
	c.Clear()
	if s := c.Stats(); s != (CacheStats{}) {
		t.Errorf("nil stats = %+v", s)
	}
}

// TestBlockCacheConcurrent hammers the cache from many goroutines the way
// concurrent slice scans do; run under -race it proves the locking.
func TestBlockCacheConcurrent(t *testing.T) {
	one := cacheVec(16).ByteSize()
	c := NewBlockCache(8 * one) // small budget forces constant eviction
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				table := int64(1 + i%3)
				id := cacheID(table, int32(i%32))
				epoch := c.Epoch(table)
				if v, ok := c.Get(id, epoch); ok {
					if v.Len() != 16 {
						panic(fmt.Sprintf("corrupt cached vector: len %d", v.Len()))
					}
					continue
				}
				c.Put(id, cacheVec(16), epoch)
				if i%64 == 0 {
					c.InvalidateTable(table)
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes > s.Budget {
		t.Errorf("cache over budget: %d > %d", s.Bytes, s.Budget)
	}
	if s.Hits+s.Misses == 0 {
		t.Error("no traffic recorded")
	}
}
