package storage

import (
	"fmt"

	"redshift/internal/compress"
	"redshift/internal/types"
)

// Segment is one sorted run of a table shard on one slice: an aligned set
// of column chains. Block i of every chain covers rows
// [i*cap, min((i+1)*cap, Rows)), so a row's values are found by logical
// offset alone — the linkage §2.1 describes as "stored as meta-data".
type Segment struct {
	Table  int64
	Slice  int32
	Seq    int32 // segment number within the shard
	Rows   int
	Cap    int // rows per block
	Schema types.Schema
	Cols   [][]*Block // [column][chain index]
	Sorted bool       // produced by a sorting writer (COPY, VACUUM)
}

// NumBlocks returns the chain length (identical for every column).
func (s *Segment) NumBlocks() int {
	if len(s.Cols) == 0 {
		return 0
	}
	return len(s.Cols[0])
}

// Block returns block i of column c.
func (s *Segment) Block(c, i int) *Block { return s.Cols[c][i] }

// ByteSize returns the total encoded size of the segment.
func (s *Segment) ByteSize() int64 {
	var n int64
	for _, chain := range s.Cols {
		for _, b := range chain {
			n += b.ByteSize()
		}
	}
	return n
}

// Blocks calls fn for every block in the segment.
func (s *Segment) Blocks(fn func(*Block)) {
	for _, chain := range s.Cols {
		for _, b := range chain {
			fn(b)
		}
	}
}

// ReadColumn decodes the full chain of one column, for tests and VACUUM.
func (s *Segment) ReadColumn(c int) (*types.Vector, error) {
	out := types.NewVector(s.Schema.Columns[c].Type, s.Rows)
	for _, b := range s.Cols[c] {
		v, err := b.Decode()
		if err != nil {
			return nil, err
		}
		for i := 0; i < v.Len(); i++ {
			out.Append(v.Get(i))
		}
	}
	return out, nil
}

// Builder accumulates rows into a segment, sealing aligned blocks as each
// fills. Encodings are fixed per column before the first row.
type Builder struct {
	seg      *Segment
	encs     []compress.Encoding
	pending  []*types.Vector // per-column buffer of the current block
	blockIdx int32
}

// NewBuilder starts a segment for (table, slice, seq) with the given
// per-column encodings. cap<=0 selects BlockCap.
func NewBuilder(table int64, slice, seq int32, schema types.Schema, encs []compress.Encoding, cap int) (*Builder, error) {
	if len(encs) != schema.Len() {
		return nil, fmt.Errorf("storage: %d encodings for %d columns", len(encs), schema.Len())
	}
	if cap <= 0 {
		cap = BlockCap
	}
	for i, e := range encs {
		if !compress.Applicable(e, schema.Columns[i].Type) {
			return nil, fmt.Errorf("storage: encoding %s not applicable to column %s %s",
				e, schema.Columns[i].Name, schema.Columns[i].Type)
		}
	}
	b := &Builder{
		seg: &Segment{
			Table:  table,
			Slice:  slice,
			Seq:    seq,
			Cap:    cap,
			Schema: schema,
			Cols:   make([][]*Block, schema.Len()),
		},
		encs:    encs,
		pending: make([]*types.Vector, schema.Len()),
	}
	b.resetPending()
	return b, nil
}

func (b *Builder) resetPending() {
	for i, col := range b.seg.Schema.Columns {
		b.pending[i] = types.NewVector(col.Type, b.seg.Cap)
	}
}

// Append adds one row. The row must match the schema.
func (b *Builder) Append(row types.Row) error {
	if len(row) != b.seg.Schema.Len() {
		return fmt.Errorf("storage: row has %d values, schema has %d", len(row), b.seg.Schema.Len())
	}
	for i, v := range row {
		if !v.Null && v.T != b.seg.Schema.Columns[i].Type {
			return fmt.Errorf("storage: column %d: value type %s != schema type %s",
				i, v.T, b.seg.Schema.Columns[i].Type)
		}
		b.pending[i].Append(v)
	}
	b.seg.Rows++
	if b.pending[0].Len() == b.seg.Cap {
		return b.flush()
	}
	return nil
}

// flush seals the pending vectors into one aligned block per column.
func (b *Builder) flush() error {
	if b.pending[0].Len() == 0 {
		return nil
	}
	for c := range b.pending {
		id := BlockID{
			Table:   b.seg.Table,
			Slice:   b.seg.Slice,
			Segment: b.seg.Seq,
			Column:  int32(c),
			Index:   b.blockIdx,
		}
		blk, err := Seal(id, b.pending[c], b.encs[c])
		if err != nil {
			return err
		}
		b.seg.Cols[c] = append(b.seg.Cols[c], blk)
	}
	b.blockIdx++
	b.resetPending()
	return nil
}

// Finish seals any partial block and returns the segment. The builder must
// not be used afterwards.
func (b *Builder) Finish(sorted bool) (*Segment, error) {
	if err := b.flush(); err != nil {
		return nil, err
	}
	b.seg.Sorted = sorted
	return b.seg, nil
}

// Rows returns how many rows have been appended so far.
func (b *Builder) Rows() int { return b.seg.Rows }
