package storage

import (
	"container/list"
	"sync"
	"sync/atomic"

	"redshift/internal/types"
)

// BlockCache is a node-level, byte-budgeted cache of decoded column
// vectors, keyed by BlockID. Blocks are immutable values once sealed
// (content-hash pinned), so a decoded vector stays valid across
// Evict/Fill page-fault cycles — the only coherence events are DDL that
// reuses block identities (DROP TABLE, TRUNCATE, VACUUM's segment
// rewrite), handled by InvalidateTable.
//
// Invalidation is epoch-fenced: InvalidateTable bumps the table's epoch
// as well as dropping its entries, and readers carry the epoch they
// sampled BEFORE resolving their visible segments. A reader whose scan
// started against pre-invalidation segments then fails the epoch check on
// both Get and Put — it can neither be served a new-identity vector for
// its old blocks nor re-insert an old decode under an identity the
// rewrite reused (the stale-reader poisoning race: without the fence, a
// scan concurrent with VACUUM could cache an old block's vector after the
// invalidation ran, and every later reader of the rewritten block would
// hit it).
//
// Eviction is LRU over a byte budget. All methods are safe for
// concurrent use by slice goroutines, and nil-receiver safe so a
// disabled cache is simply a nil pointer.
type BlockCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[BlockID]*list.Element
	lru     *list.List // front = most recently used
	// epochs counts invalidations per table; missing = 0.
	epochs map[int64]uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// cacheEntry is one cached decoded block.
type cacheEntry struct {
	id    BlockID
	v     *types.Vector
	size  int64
	epoch uint64
}

// NewBlockCache returns a cache bounded to budget bytes of decoded
// vector payload. A non-positive budget returns nil (disabled).
func NewBlockCache(budget int64) *BlockCache {
	if budget <= 0 {
		return nil
	}
	return &BlockCache{
		budget:  budget,
		entries: map[BlockID]*list.Element{},
		lru:     list.New(),
		epochs:  map[int64]uint64{},
	}
}

// Epoch returns the table's current invalidation epoch. Readers sample it
// BEFORE resolving their visible segments and pass it to Get/Put — the
// ordering guarantees a reader holding pre-invalidation segments also
// holds a pre-invalidation epoch.
func (c *BlockCache) Epoch(tableID int64) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	e := c.epochs[tableID]
	c.mu.Unlock()
	return e
}

// Get returns the cached decoded vector for id, provided the caller's
// sampled epoch is still the block identity's current one. Callers must
// treat the vector as immutable.
func (c *BlockCache) Get(id BlockID, epoch uint64) (*types.Vector, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[id]
	if !ok || el.Value.(*cacheEntry).epoch != epoch {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	v := el.Value.(*cacheEntry).v
	c.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put caches a decoded vector, evicting least-recently-used entries
// until the byte budget holds. Vectors larger than the whole budget are
// not cached, and a Put whose sampled epoch is no longer the table's
// current one is dropped — its content belongs to a block identity that
// has since been rewritten. The caller must not mutate v after Put.
func (c *BlockCache) Put(id BlockID, v *types.Vector, epoch uint64) {
	if c == nil || v == nil {
		return
	}
	size := v.ByteSize()
	if size > c.budget {
		return
	}
	c.mu.Lock()
	if epoch != c.epochs[id.Table] {
		c.mu.Unlock()
		return
	}
	if el, ok := c.entries[id]; ok {
		// Same ID and epoch ⇒ same immutable content; refresh recency.
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[id] = c.lru.PushFront(&cacheEntry{id: id, v: v, size: size, epoch: epoch})
	c.bytes += size
	for c.bytes > c.budget {
		c.evictOldestLocked()
	}
	c.mu.Unlock()
}

// evictOldestLocked drops the LRU entry; c.mu must be held.
func (c *BlockCache) evictOldestLocked() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.id)
	c.bytes -= e.size
	c.evictions.Add(1)
}

// InvalidateTable drops every cached block of one table and bumps its
// epoch — DROP TABLE, TRUNCATE and VACUUM can reuse that table's block
// identities with new content, and the epoch bump fences out readers
// whose scans started before the rewrite (their Gets and Puts no longer
// match).
func (c *BlockCache) InvalidateTable(tableID int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.epochs[tableID]++
	for id, el := range c.entries {
		if id.Table != tableID {
			continue
		}
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, id)
		c.bytes -= e.size
	}
	c.mu.Unlock()
}

// Clear empties the cache (benchmarks use it to measure cold scans).
// Counters are kept: clearing changes residency, not history.
func (c *BlockCache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = map[BlockID]*list.Element{}
	c.lru.Init()
	c.bytes = 0
	c.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64
	Budget    int64
	Entries   int64
}

// Stats snapshots the counters. A nil cache reports zeros.
func (c *BlockCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes,
		Budget:    c.budget,
		Entries:   int64(c.lru.Len()),
	}
	c.mu.Unlock()
	return s
}
