package storage

import (
	"errors"
	"testing"
	"testing/quick"

	"redshift/internal/compress"
	"redshift/internal/types"
)

func intVec(vals ...int64) *types.Vector {
	v := types.NewVector(types.Int64, len(vals))
	for _, x := range vals {
		v.Append(types.NewInt(x))
	}
	return v
}

func TestSealDecodeRoundTrip(t *testing.T) {
	v := intVec(3, 1, 4, 1, 5, 9, 2, 6)
	blk, err := Seal(BlockID{Table: 1}, v, compress.Delta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := blk.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Errorf("round trip mismatch")
	}
	if blk.Rows != 8 {
		t.Errorf("Rows = %d", blk.Rows)
	}
	if blk.Zone.Min.I != 1 || blk.Zone.Max.I != 9 {
		t.Errorf("zone = %+v", blk.Zone)
	}
	if blk.Encoding() != compress.Delta {
		t.Errorf("Encoding = %v", blk.Encoding())
	}
}

func TestSealByteDictOverflowFallsBackToRaw(t *testing.T) {
	v := types.NewVector(types.Int64, 0)
	for i := int64(0); i < 400; i++ {
		v.Append(types.NewInt(i))
	}
	blk, err := Seal(BlockID{}, v, compress.ByteDict)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Encoding() != compress.Raw {
		t.Errorf("overflowing BYTEDICT block sealed as %v, want RAW", blk.Encoding())
	}
	got, err := blk.Decode()
	if err != nil || !got.Equal(v) {
		t.Error("fallback block does not round trip")
	}
}

func TestZoneMapMayContainRange(t *testing.T) {
	z := ZoneMap{Min: types.NewInt(10), Max: types.NewInt(20)}
	iv := types.NewInt
	cases := []struct {
		lo, hi types.Value
		hasLo  bool
		hasHi  bool
		want   bool
	}{
		{iv(15), iv(15), true, true, true},          // inside
		{iv(0), iv(5), true, true, false},           // below
		{iv(25), iv(30), true, true, false},         // above
		{iv(20), iv(99), true, true, true},          // touches max
		{iv(0), iv(10), true, true, true},           // touches min
		{iv(0), types.Value{}, true, false, true},   // x >= 0
		{iv(21), types.Value{}, true, false, false}, // x >= 21
		{types.Value{}, iv(9), false, true, false},  // x <= 9
		{types.Value{}, types.Value{}, false, false, true},
	}
	for i, c := range cases {
		if got := z.MayContainRange(c.lo, c.hasLo, c.hi, c.hasHi); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
	if (ZoneMap{AllNull: true}).MayContainRange(iv(0), true, iv(1), true) {
		t.Error("all-null block should never match a range")
	}
}

func TestZoneMapNeverPrunesQualifyingBlock(t *testing.T) {
	// Property: for any block contents and any [lo,hi] range, if some value
	// in the block qualifies, MayContainRange must be true.
	f := func(vals []int64, lo, hi int64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		v := intVec(vals...)
		blk, err := Seal(BlockID{}, v, compress.Raw)
		if err != nil {
			return false
		}
		qualifies := false
		for _, x := range vals {
			if x >= lo && x <= hi {
				qualifies = true
				break
			}
		}
		may := blk.Zone.MayContainRange(types.NewInt(lo), true, types.NewInt(hi), true)
		return !qualifies || may
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvictFillPageFault(t *testing.T) {
	v := intVec(1, 2, 3)
	blk, _ := Seal(BlockID{Table: 9}, v, compress.Raw)
	payload := append([]byte(nil), blk.Payload()...)
	blk.Evict()
	if blk.Resident() {
		t.Fatal("evicted block still resident")
	}
	if _, err := blk.Decode(); !errors.Is(err, ErrNotResident) {
		t.Fatalf("Decode after evict: %v", err)
	}
	// Zone map must survive eviction — that is what streaming restore uses.
	if blk.Zone.Min.I != 1 || blk.Zone.Max.I != 3 {
		t.Error("zone map lost on eviction")
	}
	if err := blk.Fill([]byte("corrupt")); err == nil {
		t.Error("Fill accepted corrupt payload")
	}
	if err := blk.Fill(payload); err != nil {
		t.Fatal(err)
	}
	got, err := blk.Decode()
	if err != nil || !got.Equal(v) {
		t.Error("block wrong after refill")
	}
}

func TestBlockIDString(t *testing.T) {
	id := BlockID{Table: 3, Slice: 1, Segment: 2, Column: 4, Index: 7}
	if got := id.String(); got != "t3/sl1/seg2/c4/b7" {
		t.Errorf("String = %q", got)
	}
}

func testSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "name", Type: types.String},
		types.Column{Name: "score", Type: types.Float64},
	)
}

func TestBuilderAlignedChains(t *testing.T) {
	schema := testSchema()
	encs := []compress.Encoding{compress.Delta, compress.LZ, compress.Raw}
	b, err := NewBuilder(1, 0, 0, schema, encs, 10)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 35
	for i := 0; i < rows; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewString("n"),
			types.NewFloat(float64(i) / 2),
		}
		if err := b.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Rows != rows {
		t.Errorf("Rows = %d", seg.Rows)
	}
	if seg.NumBlocks() != 4 { // 10+10+10+5
		t.Errorf("NumBlocks = %d", seg.NumBlocks())
	}
	for c := 0; c < schema.Len(); c++ {
		if len(seg.Cols[c]) != 4 {
			t.Errorf("column %d chain length %d", c, len(seg.Cols[c]))
		}
	}
	if seg.Block(0, 3).Rows != 5 {
		t.Errorf("tail block rows = %d", seg.Block(0, 3).Rows)
	}
	// Row linkage by logical offset: row 17 is block 1, offset 7.
	v, err := seg.Block(0, 1).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if v.Ints[7] != 17 {
		t.Errorf("row 17 id = %d", v.Ints[7])
	}
	col, err := seg.ReadColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != rows || col.Ints[34] != 34 {
		t.Error("ReadColumn wrong")
	}
	if !seg.Sorted {
		t.Error("Sorted flag lost")
	}
	if seg.ByteSize() <= 0 {
		t.Error("ByteSize must be positive")
	}
	count := 0
	seg.Blocks(func(*Block) { count++ })
	if count != 12 {
		t.Errorf("Blocks visited %d, want 12", count)
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	schema := testSchema()
	if _, err := NewBuilder(1, 0, 0, schema, []compress.Encoding{compress.Raw}, 0); err == nil {
		t.Error("wrong encoding count accepted")
	}
	bad := []compress.Encoding{compress.Text, compress.Raw, compress.Raw}
	if _, err := NewBuilder(1, 0, 0, schema, bad, 0); err == nil {
		t.Error("TEXT on int column accepted")
	}
	encs := []compress.Encoding{compress.Raw, compress.Raw, compress.Raw}
	b, _ := NewBuilder(1, 0, 0, schema, encs, 0)
	if err := b.Append(types.Row{types.NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := b.Append(types.Row{types.NewString("x"), types.NewString("y"), types.NewFloat(1)}); err == nil {
		t.Error("wrong-typed row accepted")
	}
	if err := b.Append(types.Row{types.NewNull(types.Int64), types.NewString("y"), types.NewFloat(1)}); err != nil {
		t.Errorf("null row rejected: %v", err)
	}
}

func TestBuilderEmptySegment(t *testing.T) {
	encs := []compress.Encoding{compress.Raw, compress.Raw, compress.Raw}
	b, _ := NewBuilder(1, 0, 0, testSchema(), encs, 0)
	seg, err := b.Finish(false)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Rows != 0 || seg.NumBlocks() != 0 {
		t.Errorf("empty segment: rows=%d blocks=%d", seg.Rows, seg.NumBlocks())
	}
}

func TestBuilderDefaultCap(t *testing.T) {
	encs := []compress.Encoding{compress.Raw, compress.Raw, compress.Raw}
	b, _ := NewBuilder(1, 0, 0, testSchema(), encs, -1)
	if b.seg.Cap != BlockCap {
		t.Errorf("Cap = %d", b.seg.Cap)
	}
}
