// Package storage implements the columnar block layer of §2.1: each column
// of each slice is "encoded in a chain of one or more fixed size data
// blocks", row identity across columns is the logical offset within each
// chain, and every block carries the in-memory value-range metadata (zone
// map) that replaces indexes for block skipping (§6).
//
// Blocks are immutable once sealed, which is what makes synchronous
// replication, S3 backup and page-fault restore simple: a block is a value.
package storage

import (
	"crypto/sha256"
	"fmt"
	"sync/atomic"

	"redshift/internal/compress"
	"redshift/internal/types"
)

// BlockCap is the default number of values per block. The paper's engine
// uses fixed 1 MB byte-sized blocks; fixed row capacity keeps the column
// chains of one segment aligned (block i of every column covers the same
// rows), which is how logical-offset row linkage stays O(1).
const BlockCap = 4096

// BlockID names a block within a cluster. It doubles as the S3 object key
// for backup (see ObjectKey).
type BlockID struct {
	Table   int64 // table id from the catalog
	Slice   int32 // owning slice
	Segment int32 // sorted run within the slice's shard
	Column  int32 // column ordinal
	Index   int32 // position in the column chain
}

// ObjectKey renders the ID as a stable, S3-style key.
func (id BlockID) String() string {
	return fmt.Sprintf("t%d/sl%d/seg%d/c%d/b%d", id.Table, id.Slice, id.Segment, id.Column, id.Index)
}

// ZoneMap is the per-block value-range metadata kept in memory for block
// skipping: "column-block skipping based on value-ranges stored in memory"
// (§6). Min and Max cover non-null values only.
type ZoneMap struct {
	Min, Max types.Value
	// AllNull is set when the block holds no non-null values; Min/Max are
	// then meaningless.
	AllNull bool
	// HasNulls is set when at least one value is null.
	HasNulls bool
}

// MayContainRange reports whether any value in [lo, hi] could be present.
// Unbounded ends are expressed with ok=false flags.
func (z ZoneMap) MayContainRange(lo types.Value, hasLo bool, hi types.Value, hasHi bool) bool {
	if z.AllNull {
		return false
	}
	if hasLo && types.Compare(z.Max, lo) < 0 {
		return false
	}
	if hasHi && types.Compare(z.Min, hi) > 0 {
		return false
	}
	return true
}

// Block is one sealed, encoded column block plus its metadata. The payload
// is held behind an atomic pointer so page-fault fills and concurrent reads
// (streaming restore under live queries) need no locking.
type Block struct {
	ID   BlockID
	Rows int
	Zone ZoneMap
	// Hash is the content hash used for incremental backup deduplication.
	Hash [32]byte

	enc atomic.Pointer[[]byte]
}

// Payload returns the encoded payload, or nil when evicted.
func (b *Block) Payload() []byte {
	p := b.enc.Load()
	if p == nil {
		return nil
	}
	return *p
}

// setPayload installs a payload.
func (b *Block) setPayload(data []byte) { b.enc.Store(&data) }

// Seal encodes a vector into a block. The chosen encoding must be
// applicable to the vector's type.
func Seal(id BlockID, v *types.Vector, enc compress.Encoding) (*Block, error) {
	payload, err := compress.Encode(enc, v)
	if err == compress.ErrDictOverflow {
		// BYTEDICT is chosen from a sample; a later block can overflow the
		// dictionary. Fall back to raw for that block, as Redshift does.
		payload, err = compress.Encode(compress.Raw, v)
	}
	if err != nil {
		return nil, err
	}
	b := &Block{ID: id, Rows: v.Len(), Hash: sha256.Sum256(payload)}
	b.setPayload(payload)
	min, max, ok := v.MinMax()
	// !ok covers both the all-null and the empty block: neither can ever
	// satisfy a range predicate, so both prune unconditionally.
	b.Zone = ZoneMap{Min: min, Max: max, AllNull: !ok, HasNulls: v.HasNulls()}
	return b, nil
}

// ErrNotResident reports that a block's payload is not on local storage —
// the streaming-restore state where metadata is back but data must be
// page-faulted from S3 (§2.3).
var ErrNotResident = fmt.Errorf("storage: block not resident")

// Resident reports whether the payload is on local storage.
func (b *Block) Resident() bool { return b.enc.Load() != nil }

// Evict drops the payload, keeping metadata (zone map, hash, row count).
// Used to model a restored-but-not-yet-fetched block.
func (b *Block) Evict() { b.enc.Store(nil) }

// Fill restores an evicted payload, verifying the content hash.
func (b *Block) Fill(payload []byte) error {
	if sha256.Sum256(payload) != b.Hash {
		return fmt.Errorf("storage: block %s: payload hash mismatch", b.ID)
	}
	b.setPayload(payload)
	return nil
}

// Decode reconstructs the block's vector.
func (b *Block) Decode() (*types.Vector, error) {
	payload := b.Payload()
	if payload == nil {
		return nil, fmt.Errorf("storage: block %s: %w", b.ID, ErrNotResident)
	}
	v, err := compress.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("storage: block %s: %w", b.ID, err)
	}
	if v.Len() != b.Rows {
		return nil, fmt.Errorf("storage: block %s decoded %d rows, expected %d", b.ID, v.Len(), b.Rows)
	}
	return v, nil
}

// ByteSize returns the encoded size of the block (0 when evicted).
func (b *Block) ByteSize() int64 { return int64(len(b.Payload())) }

// Encoding returns the codec the block was sealed with.
func (b *Block) Encoding() compress.Encoding {
	e, err := compress.BlockEncoding(b.Payload())
	if err != nil {
		return compress.Raw
	}
	return e
}
