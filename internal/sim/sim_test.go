package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestVClockSequentialSleeps(t *testing.T) {
	d := Elapse(func(c *VClock) {
		c.Sleep(3 * time.Minute)
		c.Sleep(2 * time.Minute)
	})
	if d != 5*time.Minute {
		t.Errorf("elapsed = %v, want 5m", d)
	}
}

func TestVClockParallelSleepsTakeMax(t *testing.T) {
	d := Elapse(func(c *VClock) {
		g := c.NewGroup()
		for i := 1; i <= 4; i++ {
			dur := time.Duration(i) * time.Minute
			g.Go(func() { c.Sleep(dur) })
		}
		g.Wait()
	})
	if d != 4*time.Minute {
		t.Errorf("elapsed = %v, want 4m (max of parallel)", d)
	}
}

func TestVClockNestedGroups(t *testing.T) {
	d := Elapse(func(c *VClock) {
		outer := c.NewGroup()
		outer.Go(func() {
			inner := c.NewGroup()
			inner.Go(func() { c.Sleep(10 * time.Second) })
			inner.Go(func() { c.Sleep(20 * time.Second) })
			inner.Wait()
			c.Sleep(5 * time.Second) // after both children: 25s total
		})
		outer.Go(func() { c.Sleep(7 * time.Second) })
		outer.Wait()
	})
	if d != 25*time.Second {
		t.Errorf("elapsed = %v, want 25s", d)
	}
}

func TestVClockOrderingDeterministic(t *testing.T) {
	var order []int
	Elapse(func(c *VClock) {
		g := c.NewGroup()
		for i := 0; i < 3; i++ {
			i := i
			g.Go(func() {
				c.Sleep(time.Duration(3-i) * time.Second)
				// Sleeps end at 3s, 2s, 1s → wake order 2, 1, 0.
				order = append(order, i)
			})
		}
		g.Wait()
	})
	want := []int{2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestVClockZeroSleep(t *testing.T) {
	d := Elapse(func(c *VClock) {
		c.Sleep(0)
		c.Sleep(-time.Second)
	})
	if d != 0 {
		t.Errorf("elapsed = %v, want 0", d)
	}
}

func TestVClockManyProcesses(t *testing.T) {
	var n atomic.Int64
	d := Elapse(func(c *VClock) {
		g := c.NewGroup()
		for i := 0; i < 200; i++ {
			g.Go(func() {
				c.Sleep(time.Second)
				n.Add(1)
				c.Sleep(time.Second)
			})
		}
		g.Wait()
	})
	if n.Load() != 200 {
		t.Errorf("ran %d processes, want 200", n.Load())
	}
	if d != 2*time.Second {
		t.Errorf("elapsed = %v, want 2s", d)
	}
}

func TestWallClockScale(t *testing.T) {
	w := Wall{Scale: 1000}
	start := time.Now()
	w.Sleep(time.Second)
	if real := time.Since(start); real > 500*time.Millisecond {
		t.Errorf("scaled sleep took %v", real)
	}
}

func TestCostModelTransfers(t *testing.T) {
	m := Default2013()
	if got := m.NetTransfer(1e9); got != time.Second {
		t.Errorf("1GB over 1000MB/s = %v, want 1s", got)
	}
	if got := m.DiskRead(800e6); got != time.Second {
		t.Errorf("800MB at 800MB/s = %v, want 1s", got)
	}
	if m.DiskRead(0) != 0 || m.NetTransfer(-5) != 0 {
		t.Error("non-positive bytes should cost zero")
	}
	if m.S3Upload(0) != m.S3GetLatency {
		t.Error("empty upload should cost one latency")
	}
	if m.S3CrossRegion(1e9) <= m.S3Upload(1e9) {
		t.Error("cross-region must cost more than local")
	}
}

func TestParSeq(t *testing.T) {
	if Par(time.Second, 3*time.Second, 2*time.Second) != 3*time.Second {
		t.Error("Par is not max")
	}
	if Seq(time.Second, 3*time.Second) != 4*time.Second {
		t.Error("Seq is not sum")
	}
	if Par() != 0 || Seq() != 0 {
		t.Error("empty Par/Seq should be zero")
	}
}

func TestRowsDuration(t *testing.T) {
	if got := RowsDuration(1_000_000, 500_000); got != 2*time.Second {
		t.Errorf("RowsDuration = %v, want 2s", got)
	}
	if RowsDuration(0, 100) != 0 || RowsDuration(100, 0) != 0 {
		t.Error("degenerate RowsDuration should be zero")
	}
}

func TestFigure2ShapeBackupProportionalToPerNodeData(t *testing.T) {
	// §3.2: "the time required to backup an entire cluster is proportional
	// to the data changed on a single node." Doubling nodes at fixed total
	// data should halve backup time in the model.
	m := Default2013()
	total := int64(4e12) // 4 TB changed
	d16 := m.S3Upload(total / 16)
	d128 := m.S3Upload(total / 128)
	if d128 >= d16 {
		t.Errorf("backup time should fall with node count: 16=%v 128=%v", d16, d128)
	}
}
