// Package sim provides the discrete-event simulation substrate used to
// reproduce the paper's fleet- and petabyte-scale operational numbers
// (Figure 2, the §1 EDW case, provisioning and patching timings) on a laptop.
//
// It contains a virtual clock that runs goroutine-structured "processes" in
// simulated time, and a calibrated cost model translating bytes and
// operations into durations for 2013-era warehouse hardware.
package sim

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time so the control plane can run identically on the wall
// clock (in production-style integration tests) and on simulated time (in
// the scale benchmarks).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the calling process for d.
	Sleep(d time.Duration)
}

// Wall is the real clock.
type Wall struct {
	// Scale divides every Sleep, letting integration tests run control-plane
	// workflows quickly while preserving ordering. Zero means 1 (no scaling).
	Scale int
}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (w Wall) Sleep(d time.Duration) {
	if w.Scale > 1 {
		d /= time.Duration(w.Scale)
	}
	time.Sleep(d)
}

// VClock is a deterministic virtual clock. Processes are spawned with Go (or
// through a Group); when every live process is blocked in Sleep or Wait, the
// clock jumps to the earliest wakeup. Run drives the simulation to
// completion and returns the final time.
//
// Processes must only block through VClock primitives (Sleep, Group.Wait);
// blocking on plain channels or mutexes held across Sleep would deadlock the
// advancer by keeping the process counted as runnable.
type VClock struct {
	mu       sync.Mutex
	cond     *sync.Cond
	now      time.Time
	runnable int // processes currently executing (not blocked in Sleep/Wait)
	live     int // processes spawned and not yet finished
	waiters  waiterHeap
	seq      int64 // tiebreak so equal wakeups fire in spawn order
}

type waiter struct {
	at  time.Time
	seq int64
	ch  chan struct{}
}

type waiterHeap []waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewVClock returns a virtual clock starting at start.
func NewVClock(start time.Time) *VClock {
	c := &VClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now implements Clock.
func (c *VClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock. Negative or zero durations yield but do not
// advance time.
func (c *VClock) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ch := make(chan struct{})
	c.mu.Lock()
	c.seq++
	heap.Push(&c.waiters, waiter{at: c.now.Add(d), seq: c.seq, ch: ch})
	c.runnable--
	c.cond.Broadcast()
	c.mu.Unlock()
	<-ch
}

// Go spawns a simulation process. It may be called before Run or from
// within another process.
func (c *VClock) Go(fn func()) {
	c.mu.Lock()
	c.runnable++
	c.live++
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.runnable--
			c.live--
			c.cond.Broadcast()
			c.mu.Unlock()
		}()
		fn()
	}()
}

// Run advances the clock until every spawned process has finished, then
// returns the final simulated time. It must be called from outside any
// simulation process.
func (c *VClock) Run() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		// Wait until nothing is runnable.
		for c.runnable > 0 {
			c.cond.Wait()
		}
		if len(c.waiters) == 0 {
			if c.live == 0 {
				return c.now
			}
			// Live processes with no waiters and none runnable: they are
			// blocked inside a Group.Wait whose children are all finished
			// being scheduled, or this is a deadlock. Either way another
			// broadcast round resolves Group wakeups; wait for state change.
			c.cond.Wait()
			continue
		}
		w := heap.Pop(&c.waiters).(waiter)
		if w.at.After(c.now) {
			c.now = w.at
		}
		c.runnable++
		close(w.ch)
	}
}

// Group is a clock-aware WaitGroup: Wait blocks the calling process without
// counting it as runnable, so the clock can keep advancing children.
type Group struct {
	c       *VClock
	mu      sync.Mutex
	pending int
	done    chan struct{}
}

// NewGroup returns an empty group bound to the clock.
func (c *VClock) NewGroup() *Group {
	return &Group{c: c, done: make(chan struct{})}
}

// Go runs fn as a child process of the group.
func (g *Group) Go(fn func()) {
	g.mu.Lock()
	g.pending++
	g.mu.Unlock()
	g.c.Go(func() {
		defer func() {
			g.mu.Lock()
			g.pending--
			if g.pending == 0 {
				close(g.done)
				g.done = make(chan struct{})
			}
			g.mu.Unlock()
		}()
		fn()
	})
}

// Wait blocks the calling process until every child spawned so far is done.
// It must be called from within a simulation process.
func (g *Group) Wait() {
	g.mu.Lock()
	if g.pending == 0 {
		g.mu.Unlock()
		return
	}
	ch := g.done
	g.mu.Unlock()

	g.c.mu.Lock()
	g.c.runnable--
	g.c.cond.Broadcast()
	g.c.mu.Unlock()

	<-ch

	g.c.mu.Lock()
	g.c.runnable++
	g.c.mu.Unlock()
}

// Parallel runs the functions concurrently under the clock and waits for
// all of them — the data-parallel shape of every admin operation in §3.2.
// On a VClock the caller must itself be a simulation process.
func Parallel(c Clock, fns ...func()) {
	if vc, ok := c.(*VClock); ok {
		g := vc.NewGroup()
		for _, fn := range fns {
			g.Go(fn)
		}
		g.Wait()
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}

// Elapse is a convenience that runs fn as the sole root process on a fresh
// virtual clock and returns how much simulated time it consumed.
func Elapse(fn func(c *VClock)) time.Duration {
	start := time.Date(2015, 5, 31, 0, 0, 0, 0, time.UTC) // SIGMOD'15 day one
	c := NewVClock(start)
	c.Go(func() { fn(c) })
	end := c.Run()
	return end.Sub(start)
}
