package sim

import "time"

// CostModel translates bytes, rows and operations into durations for a
// 2013-era warehouse node (the paper's dw1/dw2 generation: local HDD/SSD
// arrays, 10 GbE networking, S3 object storage). The scale benchmarks use it
// to extrapolate measured per-slice engine rates to the cluster sizes the
// paper reports.
//
// All rates are deliberately conservative, round numbers; EXPERIMENTS.md
// documents the calibration next to each reproduced figure.
type CostModel struct {
	// DiskReadMBps is the sequential scan bandwidth of one node's disk array.
	DiskReadMBps float64
	// DiskWriteMBps is the sequential write bandwidth of one node's array.
	DiskWriteMBps float64
	// NetMBps is node-to-node bandwidth (10 GbE with protocol overhead).
	NetMBps float64
	// S3StreamMBps is the bandwidth of one S3 transfer stream.
	S3StreamMBps float64
	// S3Streams is how many parallel S3 streams a node drives.
	S3Streams int
	// S3GetLatency is the first-byte latency of one S3 GET.
	S3GetLatency time.Duration
	// S3CrossRegionFactor multiplies S3 transfer time for a second region.
	S3CrossRegionFactor float64

	// NodeBootCold is EC2 instance acquisition + AMI boot + engine start.
	NodeBootCold time.Duration
	// NodeBootWarm is attach time for a preconfigured (warm pool) node.
	NodeBootWarm time.Duration
	// ControlPlaneStep is the fixed overhead of one workflow step
	// (SWF-style dispatch, telemetry, leader coordination).
	ControlPlaneStep time.Duration
	// DNSPropagation is endpoint cutover time (Route53-style flip).
	DNSPropagation time.Duration

	// SlicesPerNode is how many slices (cores) each compute node runs.
	SlicesPerNode int
	// SliceLoadRowsPerSec is sustained COPY ingest per slice, including
	// parse, distribute, compress and local sort.
	SliceLoadRowsPerSec float64
	// SliceScanRowsPerSec is compiled-scan throughput per slice for the
	// wide click-log rows of the §1 case study.
	SliceScanRowsPerSec float64
	// SliceJoinRowsPerSec is probe-side hash-join throughput per slice.
	SliceJoinRowsPerSec float64
	// CompressionRatio is the assumed average compression factor.
	CompressionRatio float64
}

// Default2013 returns the calibrated model used throughout EXPERIMENTS.md.
func Default2013() CostModel {
	return CostModel{
		DiskReadMBps:        800, // striped local array
		DiskWriteMBps:       500,
		NetMBps:             1000, // 10 GbE minus overhead
		S3StreamMBps:        40,
		S3Streams:           10,
		S3GetLatency:        30 * time.Millisecond,
		S3CrossRegionFactor: 2.5,
		NodeBootCold:        12 * time.Minute, // EC2 acquire + AMI boot + engine install (§3.1: ~15 min at launch)
		NodeBootWarm:        90 * time.Second, // preconfigured standby attach (§3.1: ~3 min)
		ControlPlaneStep:    5 * time.Second,
		DNSPropagation:      30 * time.Second,
		SlicesPerNode:       8,
		SliceLoadRowsPerSec: 550_000,
		SliceScanRowsPerSec: 6_000_000,
		SliceJoinRowsPerSec: 2_500_000,
		CompressionRatio:    3.0,
	}
}

// mbDuration converts a byte count and a MB/s rate into a duration.
func mbDuration(bytes int64, mbps float64) time.Duration {
	if mbps <= 0 || bytes <= 0 {
		return 0
	}
	sec := float64(bytes) / (mbps * 1e6)
	return time.Duration(sec * float64(time.Second))
}

// DiskRead returns the time one node needs to read bytes sequentially.
func (m CostModel) DiskRead(bytes int64) time.Duration {
	return mbDuration(bytes, m.DiskReadMBps)
}

// DiskWrite returns the time one node needs to write bytes sequentially.
func (m CostModel) DiskWrite(bytes int64) time.Duration {
	return mbDuration(bytes, m.DiskWriteMBps)
}

// NetTransfer returns the time to move bytes across one node-to-node link.
func (m CostModel) NetTransfer(bytes int64) time.Duration {
	return mbDuration(bytes, m.NetMBps)
}

// S3NodeBandwidthMBps is the aggregate S3 bandwidth one node can drive.
func (m CostModel) S3NodeBandwidthMBps() float64 {
	return m.S3StreamMBps * float64(m.S3Streams)
}

// S3Upload returns the time one node needs to push bytes to S3 using all of
// its parallel streams.
func (m CostModel) S3Upload(bytes int64) time.Duration {
	return m.S3GetLatency + mbDuration(bytes, m.S3NodeBandwidthMBps())
}

// S3Download returns the time one node needs to pull bytes from S3.
func (m CostModel) S3Download(bytes int64) time.Duration {
	return m.S3GetLatency + mbDuration(bytes, m.S3NodeBandwidthMBps())
}

// S3CrossRegion returns the time to copy bytes to a second region.
func (m CostModel) S3CrossRegion(bytes int64) time.Duration {
	d := m.S3Upload(bytes)
	return time.Duration(float64(d) * m.S3CrossRegionFactor)
}

// RowsDuration converts a row count and per-second rate into a duration.
func RowsDuration(rows int64, rowsPerSec float64) time.Duration {
	if rowsPerSec <= 0 || rows <= 0 {
		return 0
	}
	return time.Duration(float64(rows) / rowsPerSec * float64(time.Second))
}

// Par returns the duration of steps executed in parallel (their maximum),
// the shape of every data-parallel admin operation in §3.2.
func Par(ds ...time.Duration) time.Duration {
	var max time.Duration
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	return max
}

// Seq returns the duration of steps executed one after another.
func Seq(ds ...time.Duration) time.Duration {
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum
}
