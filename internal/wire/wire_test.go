package wire

import (
	"fmt"
	"sync"
	"testing"

	"redshift/internal/core"
	"redshift/internal/types"
)

// fakeExec is a canned executor.
type fakeExec struct{}

func (fakeExec) Execute(q string) (*core.Result, error) {
	switch q {
	case "SELECT":
		return &core.Result{
			Schema: types.NewSchema(
				types.Column{Name: "a", Type: types.Int64},
				types.Column{Name: "b", Type: types.String},
			),
			Rows: []types.Row{
				{types.NewInt(1), types.NewString("x")},
				{types.NewNull(types.Int64), types.NewString("y")},
			},
			Stats: core.ExecStats{BlocksRead: 3, RowsScanned: 2},
		}, nil
	case "DDL":
		return &core.Result{Message: "CREATE TABLE"}, nil
	default:
		return nil, fmt.Errorf("boom: %s", q)
	}
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(fakeExec{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestQueryRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Query("SELECT")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("error = %q", resp.Error)
	}
	if len(resp.Columns) != 2 || resp.Columns[0] != "a" || resp.Types[1] != "VARCHAR" {
		t.Errorf("columns = %v %v", resp.Columns, resp.Types)
	}
	if len(resp.Rows) != 2 || resp.Rows[0][0] != "1" || resp.Rows[1][0] != "NULL" {
		t.Errorf("rows = %v", resp.Rows)
	}
	if resp.Stats == nil || resp.Stats.BlocksRead != 3 {
		t.Errorf("stats = %+v", resp.Stats)
	}

	ddl, err := c.Query("DDL")
	if err != nil || ddl.Message != "CREATE TABLE" {
		t.Errorf("ddl = %+v, %v", ddl, err)
	}
	bad, err := c.Query("nope")
	if err != nil {
		t.Fatal(err)
	}
	if bad.Error == "" {
		t.Error("expected error response")
	}
	if srv.Handled() != 3 {
		t.Errorf("handled = %d", srv.Handled())
	}
}

func TestMultipleSequentialQueriesOneConnection(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		resp, err := c.Query("SELECT")
		if err != nil || resp.Error != "" {
			t.Fatalf("iteration %d: %v %q", i, err, resp.Error)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if _, err := c.Query("SELECT"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerCloseDropsClients(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Query("SELECT")
	srv.Close()
	if _, err := c.Query("SELECT"); err == nil {
		t.Error("query succeeded after server close")
	}
	if _, err := Dial(addr); err == nil {
		t.Error("dial succeeded after close")
	}
}
