package wire

import (
	"strings"
	"sync"
	"testing"

	"redshift/internal/cluster"
	"redshift/internal/core"
	"redshift/internal/s3sim"
)

// startRealServer serves an actual multi-node database over TCP — the full
// §2.1 path: client connection → leader parse/plan → slice execution →
// leader merge → wire response.
func startRealServer(t *testing.T) string {
	t.Helper()
	db, err := core.Open(core.Config{
		Cluster:   cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 128},
		DataStore: s3sim.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewSessionServer(func() SessionExecutor { return db.NewSession() })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestEndToEndSQLOverTCP(t *testing.T) {
	addr := startRealServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	steps := []struct {
		q       string
		message string
	}{
		{`CREATE TABLE kv (k BIGINT NOT NULL, v VARCHAR(16)) DISTSTYLE KEY DISTKEY(k) SORTKEY(k)`, "CREATE TABLE"},
		{`INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')`, "INSERT 3"},
	}
	for _, s := range steps {
		resp, err := c.Query(s.q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Error != "" || resp.Message != s.message {
			t.Fatalf("%q → %+v", s.q, resp)
		}
	}
	resp, err := c.Query(`SELECT k, v FROM kv ORDER BY k DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 3 || resp.Rows[0][0] != "3" || resp.Rows[0][1] != "three" {
		t.Fatalf("rows = %v", resp.Rows)
	}
	if resp.Columns[0] != "k" || resp.Types[1] != "VARCHAR" {
		t.Fatalf("schema = %v %v", resp.Columns, resp.Types)
	}
	// Errors surface in-band, session survives.
	bad, err := c.Query(`SELECT nope FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bad.Error, "nope") {
		t.Fatalf("error = %q", bad.Error)
	}
	again, err := c.Query(`SELECT COUNT(*) FROM kv`)
	if err != nil || again.Rows[0][0] != "3" {
		t.Fatalf("session broken after error: %+v %v", again, err)
	}
	// EXPLAIN travels the wire too.
	plan, err := c.Query(`EXPLAIN SELECT COUNT(*) FROM kv`)
	if err != nil || len(plan.Rows) == 0 {
		t.Fatalf("explain = %+v %v", plan, err)
	}
}

func TestConcurrentClientsRealDatabase(t *testing.T) {
	addr := startRealServer(t)
	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	setup.Query(`CREATE TABLE n (x BIGINT)`)
	setup.Query(`INSERT INTO n VALUES (1), (2), (3), (4), (5)`)
	setup.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				resp, err := c.Query(`SELECT SUM(x) FROM n`)
				if err != nil || resp.Error != "" || resp.Rows[0][0] != "15" {
					t.Errorf("resp = %+v err = %v", resp, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
