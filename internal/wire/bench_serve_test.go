// Serving-path benchmark: ≥1k concurrent wire sessions replay a
// repeat-heavy dashboard mix (point lookups + aggregates) against the
// session server, with the result cache on (default) and off. qps, p50-ms
// and p99-ms quantify what the leader's result cache buys on the §2.1
// serving path; BENCH_serve.json records real runs.
package wire

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redshift/internal/cluster"
	"redshift/internal/core"
	"redshift/internal/s3sim"
)

const serveSessions = 1024

// serveBenchQueries is the dashboard mix: many clients refreshing the same
// handful of reports. 32 distinct point lookups and 4 aggregates, weighted
// so roughly half the traffic is aggregate refreshes.
func serveBenchQueries() []string {
	var qs []string
	for k := 0; k < 32; k++ {
		qs = append(qs, fmt.Sprintf(`SELECT v FROM points WHERE k = %d`, k*7))
		if k%2 == 0 {
			qs = append(qs,
				`SELECT region, SUM(qty) AS total, COUNT(*) AS n FROM sales GROUP BY region ORDER BY region`,
				`SELECT product_id, SUM(qty) AS total FROM sales GROUP BY product_id ORDER BY total DESC LIMIT 5`,
			)
		}
	}
	return qs
}

func serveBenchDB(b *testing.B, resultCache int64) *core.Database {
	b.Helper()
	db, err := core.Open(core.Config{
		Cluster:          cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 512},
		DataStore:        s3sim.New(),
		ResultCacheBytes: resultCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	exec := func(q string) {
		if _, err := db.Execute(q); err != nil {
			b.Fatalf("%s: %v", q, err)
		}
	}
	exec(`CREATE TABLE points (k BIGINT NOT NULL, v BIGINT) DISTSTYLE KEY DISTKEY(k) SORTKEY(k)`)
	exec(`CREATE TABLE sales (ts BIGINT NOT NULL, product_id BIGINT, qty BIGINT, region VARCHAR(16)) DISTSTYLE KEY DISTKEY(product_id) COMPOUND SORTKEY(ts)`)
	var pts, sales strings.Builder
	for i := 0; i < 8192; i++ {
		fmt.Fprintf(&pts, "%d|%d\n", i, i*3)
	}
	regions := []string{"us", "eu", "ap", "sa"}
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&sales, "%d|%d|%d|%s\n", 10000+i, i%50, 1+i%9, regions[i%4])
	}
	db.DataStore().Put("lake/points/p.csv", []byte(pts.String()))
	db.DataStore().Put("lake/sales/s.csv", []byte(sales.String()))
	exec(`COPY points FROM 's3://lake/points/'`)
	exec(`COPY sales FROM 's3://lake/sales/'`)
	exec(`ANALYZE`)
	return db
}

// BenchmarkServeThroughput drives serveSessions concurrent connections,
// each pulling queries from the shared mix until b.N total statements have
// been served. One op is one statement round-trip over TCP.
func BenchmarkServeThroughput(b *testing.B) {
	for _, tier := range []struct {
		name  string
		bytes int64
	}{
		{"cache-on", 0},
		{"cache-off", -1},
	} {
		b.Run(tier.name, func(b *testing.B) {
			db := serveBenchDB(b, tier.bytes)
			srv := NewSessionServer(func() SessionExecutor { return db.NewSession() })
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			clients := make([]*Client, serveSessions)
			var dialWG sync.WaitGroup
			var dialErr atomic.Value
			for i := range clients {
				dialWG.Add(1)
				go func(i int) {
					defer dialWG.Done()
					c, err := Dial(addr)
					if err != nil {
						dialErr.Store(err)
						return
					}
					clients[i] = c
				}(i)
			}
			dialWG.Wait()
			if err := dialErr.Load(); err != nil {
				b.Fatal(err)
			}
			defer func() {
				for _, c := range clients {
					c.Close()
				}
			}()

			queries := serveBenchQueries()
			lat := make([]time.Duration, b.N)
			var next atomic.Int64
			var failed atomic.Int64

			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for _, c := range clients {
				wg.Add(1)
				go func(c *Client) {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						q := queries[int(i)%len(queries)]
						t0 := time.Now()
						resp, err := c.Query(q)
						lat[i] = time.Since(t0)
						if err != nil || resp.Error != "" {
							failed.Add(1)
						}
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if n := failed.Load(); n > 0 {
				b.Fatalf("%d of %d statements failed", n, b.N)
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "qps")
			b.ReportMetric(float64(lat[len(lat)/2].Microseconds())/1e3, "p50-ms")
			b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds())/1e3, "p99-ms")
		})
	}
}
