package wire

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"redshift/internal/cluster"
	"redshift/internal/core"
	"redshift/internal/exec"
	"redshift/internal/faults"
	"redshift/internal/s3sim"
)

func startSessionServer(t *testing.T, db *core.Database) string {
	t.Helper()
	srv := NewSessionServer(func() SessionExecutor { return db.NewSession() })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func openWireDB(t *testing.T, cfg core.Config) *core.Database {
	t.Helper()
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func seedKV(t *testing.T, c *Client) {
	t.Helper()
	for _, q := range []string{
		`CREATE TABLE kv (k BIGINT NOT NULL, v BIGINT) DISTSTYLE KEY DISTKEY(k)`,
		`INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)`,
	} {
		resp, err := c.Query(q)
		if err != nil || resp.Error != "" {
			t.Fatalf("%q: %+v %v", q, resp, err)
		}
	}
}

// TestWireSessionState pins per-connection session semantics: prepared
// statements and SET variables are visible only on the connection that made
// them, and die with it.
func TestWireSessionState(t *testing.T) {
	db := openWireDB(t, core.Config{
		Cluster:   cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 128},
		DataStore: s3sim.New(),
	})
	addr := startSessionServer(t, db)

	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	seedKV(t, c1)

	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// PREPARE on c1 is invisible on c2.
	if resp, _ := c1.Query(`PREPARE total AS SELECT SUM(v) FROM kv`); resp.Error != "" {
		t.Fatalf("PREPARE: %q", resp.Error)
	}
	if resp, _ := c1.Query(`EXECUTE total`); resp.Error != "" || resp.Rows[0][0] != "60" {
		t.Fatalf("EXECUTE on owner = %+v", resp)
	}
	if resp, _ := c2.Query(`EXECUTE total`); resp.Error == "" {
		t.Fatal("prepared statement leaked to another connection")
	}

	// SET on c2 doesn't bleed into c1: c2 opts out of the result cache,
	// c1 keeps getting hits.
	if resp, _ := c2.Query(`SET result_cache TO off`); resp.Error != "" {
		t.Fatalf("SET: %q", resp.Error)
	}
	c1.Query(`SELECT SUM(v) FROM kv`)
	hit, _ := c1.Query(`SELECT SUM(v) FROM kv`)
	if !hit.Cached {
		t.Error("opted-in connection missed the result cache")
	}
	miss, _ := c2.Query(`SELECT SUM(v) FROM kv`)
	if miss.Cached {
		t.Error("opted-out connection served from the result cache")
	}

	// A new connection doesn't inherit a closed one's state: the name
	// "total" is free again after c1 goes away.
	c1.Close()
	c3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if resp, _ := c3.Query(`EXECUTE total`); resp.Error == "" {
		t.Fatal("prepared statement survived its connection")
	}
	if resp, _ := c3.Query(`PREPARE total AS SELECT COUNT(*) FROM kv`); resp.Error != "" {
		t.Fatalf("name not released: %q", resp.Error)
	}
}

// TestWireDisconnectMidQueryFreesResources is the teardown race test: a
// client that vanishes while its statement executes must have that
// statement cancelled — WLM slot released, exchanges drained, no batches in
// flight. Meaningful under -race.
func TestWireDisconnectMidQueryFreesResources(t *testing.T) {
	inj := faults.NewInjector(&faults.Plan{Seed: 7, Sites: map[string]faults.Rule{
		faults.SitePrimaryRead: {Latency: 2 * time.Millisecond, LatencyProb: 1},
	}})
	inj.SetEnabled(true)
	db := openWireDB(t, core.Config{
		Cluster:         cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 16},
		Mode:            exec.Compiled,
		DataStore:       s3sim.New(),
		BlockCacheBytes: -1,
		QuerySlots:      4,
		Faults:          inj,
	})
	addr := startSessionServer(t, db)

	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	setup.Query(`CREATE TABLE big (x BIGINT, y BIGINT)`)
	var rows strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&rows, "%d|%d\n", i, i%7)
	}
	db.DataStore().Put("lake/big/b.csv", []byte(rows.String()))
	if resp, _ := setup.Query(`COPY big FROM 's3://lake/big/'`); resp.Error != "" {
		t.Fatalf("COPY: %q", resp.Error)
	}
	setup.Close()

	// A fleet of clients each fires a slow aggregate and hangs up without
	// reading the answer.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			if err := c.Send(`SELECT SUM(x * y) FROM big WHERE x >= 0`); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(3 * time.Millisecond) // let execution start
			c.Close()
		}()
	}
	wg.Wait()

	// Every abandoned statement must unwind: no WLM slot held, no active
	// transaction, no pooled batch in flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if db.WLMStats().Active == 0 &&
			db.Txns().ActiveCount() == 0 &&
			db.Telemetry().Gauge("exec_batches_in_flight").Value() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resources still held 10s after disconnects: wlm=%d txns=%d batches=%d",
				db.WLMStats().Active, db.Txns().ActiveCount(),
				db.Telemetry().Gauge("exec_batches_in_flight").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server is still healthy for new sessions.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query(`SELECT COUNT(*) FROM big`)
	if err != nil || resp.Error != "" || resp.Rows[0][0] != "2000" {
		t.Fatalf("post-teardown query = %+v %v", resp, err)
	}
}

// TestWireCachedFlagTravels asserts the Cached bit reaches the client.
func TestWireCachedFlagTravels(t *testing.T) {
	db := openWireDB(t, core.Config{
		Cluster:   cluster.Config{Nodes: 2, SlicesPerNode: 2, BlockCap: 128},
		DataStore: s3sim.New(),
	})
	addr := startSessionServer(t, db)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedKV(t, c)

	cold, _ := c.Query(`SELECT SUM(v) FROM kv`)
	if cold.Error != "" || cold.Cached {
		t.Fatalf("cold = %+v", cold)
	}
	warm, _ := c.Query(`SELECT SUM(v) FROM kv`)
	if warm.Error != "" || !warm.Cached {
		t.Fatalf("warm = %+v", warm)
	}
	if warm.Stats == nil || warm.Stats.BlocksRead != 0 {
		t.Errorf("cache hit read blocks over the wire: %+v", warm.Stats)
	}
	if fmt.Sprint(warm.Rows) != fmt.Sprint(cold.Rows) {
		t.Errorf("cached rows differ: %v vs %v", warm.Rows, cold.Rows)
	}
}
