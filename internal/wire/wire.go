// Package wire implements the client/server protocol of the leader node
// (§2.1: "The leader node accepts connections from client programs").
//
// The protocol is newline-delimited JSON over TCP — a deliberately simple
// stand-in for the PostgreSQL wire format the real system speaks so that
// "customers' existing tools ecosystem would largely work" (§3.1). One
// request line yields exactly one response line.
//
// Each accepted connection is bound to its own session: prepared
// statements and SET variables live exactly as long as the connection, and
// a client that disconnects mid-query cancels that query (the reader
// goroutine notices the broken connection while the statement executes and
// tears the session's context down, releasing its WLM slot).
package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"redshift/internal/core"
	"redshift/internal/faults"
)

// Request is one statement from the client.
type Request struct {
	Query string `json:"query"`
}

// Response is one statement's outcome.
type Response struct {
	Columns []string   `json:"columns,omitempty"`
	Types   []string   `json:"types,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Message string     `json:"message,omitempty"`
	Error   string     `json:"error,omitempty"`
	// Retryable classifies Error per the elasticity taxonomy: true means
	// the statement failed transiently (resize cutover window, quarantined
	// replicas exhausted, WLM admission timeout) and resending the same
	// statement after a backoff is safe and expected to succeed.
	Retryable bool `json:"retryable,omitempty"`
	// Cached reports that the result came from the leader's result cache
	// without executing.
	Cached bool `json:"cached,omitempty"`
	// ExecMillis is server-side execution time.
	ExecMillis float64 `json:"exec_ms"`
	// Stats carries the engine counters for EXPLAIN ANALYZE-style tools.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats mirrors core.ExecStats over the wire.
type Stats struct {
	BlocksRead    int64 `json:"blocks_read"`
	BlocksSkipped int64 `json:"blocks_skipped"`
	RowsScanned   int64 `json:"rows_scanned"`
	NetBytes      int64 `json:"net_bytes"`
	// QueueMillis is WLM queue wait; PlanMillis is planning time; Queue is
	// the WLM queue that admitted the query ("" when WLM was bypassed).
	QueueMillis float64 `json:"queue_ms"`
	PlanMillis  float64 `json:"plan_ms"`
	Queue       string  `json:"queue,omitempty"`
}

// SessionExecutor is one connection's execution context: statements run
// under the connection's context (disconnect cancels them) and Close
// releases per-session state (prepared statements, SET variables).
// *core.Session implements it.
type SessionExecutor interface {
	ExecuteContext(ctx context.Context, query string) (*core.Result, error)
	Close()
}

// Executor is the legacy session-less endpoint abstraction; it still backs
// NewServer so resize/restore endpoints keep working unchanged.
type Executor interface {
	Execute(query string) (*core.Result, error)
}

// legacySession adapts an Executor to the session interface: no
// per-connection state, no cancellation.
type legacySession struct{ exec Executor }

func (l legacySession) ExecuteContext(_ context.Context, q string) (*core.Result, error) {
	return l.exec.Execute(q)
}
func (l legacySession) Close() {}

// Server is the leader node's TCP listener.
type Server struct {
	open func() SessionExecutor

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	handled int64
}

// NewSessionServer builds a server that opens a fresh session per accepted
// connection. open is typically Database.NewSession (or Warehouse
// equivalent) wrapped to return the interface.
func NewSessionServer(open func() SessionExecutor) *Server {
	return &Server{open: open, conns: map[net.Conn]struct{}{}}
}

// NewServer wraps a session-less executor; every connection shares its
// state. Prefer NewSessionServer for real serving.
func NewServer(exec Executor) *Server {
	return NewSessionServer(func() SessionExecutor { return legacySession{exec} })
}

// Listen starts accepting on addr (e.g. "127.0.0.1:5439") and returns the
// bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serve(conn)
	}
}

// serve runs one connection. The read side lives on its own goroutine so a
// disconnect is noticed even while a statement executes: the decoder fails
// the moment the peer goes away, which cancels ctx and aborts the in-flight
// statement at its next batch boundary.
func (s *Server) serve(conn net.Conn) {
	sess := s.open()
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		conn.Close()
		sess.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	reqs := make(chan Request)
	go func() {
		defer close(reqs)
		dec := json.NewDecoder(bufio.NewReader(conn))
		for {
			var req Request
			if err := dec.Decode(&req); err != nil {
				cancel() // EOF or bad framing: drop the session, abort in-flight work
				return
			}
			select {
			case reqs <- req:
			case <-ctx.Done():
				return
			}
		}
	}()

	enc := json.NewEncoder(conn)
	for req := range reqs {
		resp := s.handle(ctx, sess, req)
		if err := enc.Encode(resp); err != nil {
			cancel() // unblocks the reader goroutine
			return
		}
	}
}

func (s *Server) handle(ctx context.Context, sess SessionExecutor, req Request) *Response {
	s.mu.Lock()
	s.handled++
	s.mu.Unlock()
	start := time.Now()
	res, err := sess.ExecuteContext(ctx, req.Query)
	resp := &Response{ExecMillis: float64(time.Since(start).Microseconds()) / 1000}
	if err != nil {
		resp.Error = err.Error()
		resp.Retryable = faults.Retryable(err)
		return resp
	}
	resp.Message = res.Message
	resp.Cached = res.Cached
	for _, c := range res.Schema.Columns {
		resp.Columns = append(resp.Columns, c.Name)
		resp.Types = append(resp.Types, c.Type.String())
	}
	for _, row := range res.Rows {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = v.String()
		}
		resp.Rows = append(resp.Rows, line)
	}
	resp.Stats = &Stats{
		BlocksRead:    res.Stats.BlocksRead,
		BlocksSkipped: res.Stats.BlocksSkipped,
		RowsScanned:   res.Stats.RowsScanned,
		NetBytes:      res.Stats.NetBytes,
		QueueMillis:   float64(res.Stats.QueueWait.Microseconds()) / 1e3,
		PlanMillis:    float64(res.Stats.PlanTime.Microseconds()) / 1e3,
		Queue:         res.Stats.Queue,
	}
	return resp
}

// Handled returns how many requests the server has processed.
func (s *Server) Handled() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handled
}

// Close stops the listener and closes live connections (their in-flight
// statements are cancelled by the per-connection reader noticing the
// close).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

// Client is a minimal driver.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Query sends one statement and waits for its response.
func (c *Client) Query(query string) (*Response, error) {
	if err := c.enc.Encode(Request{Query: query}); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("wire: server closed the connection")
		}
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	return &resp, nil
}

// QueryRetry sends the statement and, when the server classifies the
// failure as retryable (resize cutover window, admission timeout,
// quarantine-exhausted read), backs off per policy and resends. A
// non-retryable error or an exhausted policy returns the last response.
func (c *Client) QueryRetry(ctx context.Context, query string, p faults.Policy) (*Response, error) {
	var resp *Response
	var sendErr error
	_, doErr := p.Do(ctx, func() error {
		r, err := c.Query(query)
		if err != nil {
			sendErr = err
			return faults.Permanent(err) // transport error: the session is gone
		}
		sendErr, resp = nil, r
		if r.Error != "" && r.Retryable {
			return fmt.Errorf("wire: retryable: %s", r.Error)
		}
		return nil
	})
	if sendErr != nil {
		return nil, sendErr
	}
	if resp == nil {
		return nil, doErr
	}
	// Policy exhaustion surfaces through resp.Error — the caller sees the
	// last server-side outcome either way.
	return resp, nil
}

// Send transmits one statement without waiting for its response; pair with
// Recv. Useful for tests that disconnect mid-query.
func (c *Client) Send(query string) error {
	if err := c.enc.Encode(Request{Query: query}); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	return nil
}

// Recv waits for the next response.
func (c *Client) Recv() (*Response, error) {
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	return &resp, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }
