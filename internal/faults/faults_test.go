package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if err := in.Hit(SitePrimaryRead); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	in.SetEnabled(true)
	in.SetRule("x", Rule{Prob: 1})
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if got := in.Snapshot(); got != nil {
		t.Fatalf("nil injector snapshot = %v", got)
	}
	if in.Seed() != 0 {
		t.Fatal("nil injector seed != 0")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func() []bool {
		in := NewInjector(&Plan{Seed: 42, Sites: map[string]Rule{"s": {Prob: 0.3}}})
		in.sleep = func(time.Duration) {}
		var outcomes []bool
		for i := 0; i < 200; i++ {
			outcomes = append(outcomes, in.Hit("s") != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identically-seeded runs", i)
		}
	}
	injected := 0
	for _, x := range a {
		if x {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Fatalf("Prob 0.3 over 200 hits injected %d errors", injected)
	}
}

func TestCountCapsInjections(t *testing.T) {
	in := NewInjector(&Plan{Seed: 7, Sites: map[string]Rule{"s": {Prob: 1, Count: 3}}})
	errs := 0
	for i := 0; i < 50; i++ {
		if in.Hit("s") != nil {
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("Count=3 injected %d errors", errs)
	}
	snap := in.Snapshot()
	if len(snap) != 1 || snap[0].Hits != 50 || snap[0].Injected != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestEnableToggleAndUnknownSiteCounting(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Disabled: true, Sites: map[string]Rule{"s": {Prob: 1}}})
	if in.Hit("s") != nil {
		t.Fatal("disabled injector injected")
	}
	in.SetEnabled(true)
	if in.Hit("s") == nil {
		t.Fatal("enabled Prob=1 did not inject")
	}
	in.Hit("unruled.site") // no rule: counted, never errors
	var found *SiteSnapshot
	snap := in.Snapshot()
	for i := range snap {
		if snap[i].Site == "unruled.site" {
			found = &snap[i]
		}
	}
	if found == nil || found.Hits != 1 || found.Injected != 0 {
		t.Fatalf("unruled site snapshot = %+v", found)
	}
}

func TestLatencySchedule(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Sites: map[string]Rule{"s": {Latency: time.Hour}}})
	var slept time.Duration
	in.sleep = func(d time.Duration) { slept += d }
	if err := in.Hit("s"); err != nil {
		t.Fatalf("latency-only rule injected error: %v", err)
	}
	if slept != time.Hour {
		t.Fatalf("slept %v, want 1h (recorded, not real)", slept)
	}
	if in.Snapshot()[0].Delayed != 1 {
		t.Fatal("delayed counter not incremented")
	}
}

func TestIsInjected(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Sites: map[string]Rule{"s": {Prob: 1, Err: "disk on fire"}}})
	err := in.Hit("s")
	if !IsInjected(err) {
		t.Fatalf("IsInjected(%v) = false", err)
	}
	if IsInjected(errors.New("real failure")) {
		t.Fatal("IsInjected(real error) = true")
	}
	wrapped := fmt.Errorf("fetch: %w", err)
	if !IsInjected(wrapped) {
		t.Fatal("IsInjected does not see through wrapping")
	}
}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	calls := 0
	attempts, err := Policy{MaxAttempts: 5, Base: time.Microsecond, Max: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	base := errors.New("no such copy")
	calls := 0
	attempts, err := Policy{MaxAttempts: 5, Base: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		return Permanent(base)
	})
	if calls != 1 || attempts != 1 {
		t.Fatalf("permanent error retried: calls=%d", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want unwrapped base", err)
	}
	if IsPermanent(err) {
		t.Fatal("Do should unwrap the Permanent marker")
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	attempts, err := Policy{MaxAttempts: 4, Base: time.Microsecond, Max: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		return errors.New("still down")
	})
	if calls != 4 || attempts != 4 || err == nil {
		t.Fatalf("calls=%d attempts=%d err=%v", calls, attempts, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := Policy{MaxAttempts: 100, Base: time.Hour}.Do(ctx, func() error {
		calls++
		cancel() // cancel during the first backoff sleep
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("made %d calls after cancellation", calls)
	}
}
