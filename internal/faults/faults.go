// Package faults is a deterministic, seedable fault-injection subsystem:
// a registry of named fault *sites* threaded through the storage read
// path, cluster block fetch/replication, the s3 simulator and the
// operator exchange. Each site carries an independent rule (error
// probability, injection budget, latency schedule), all driven by one
// seeded RNG so a chaos run replays bit-identically from its seed — the
// discipline §2.1's failure-masking claims are tested under.
//
// The package also owns the shared retry policy (retry.go): exponential
// backoff with jitter, used by page-fault reads, backup restore and COPY.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"redshift/internal/telemetry"
)

// Site names. Every injection point in the tree uses one of these
// constants, so a fault plan and the stv_faults table speak the same
// vocabulary.
const (
	// SitePrimaryRead fires on a primary (slice-local) block decode —
	// a media error on the node's own disk.
	SitePrimaryRead = "storage.read.primary"
	// SiteSecondaryFetch fires on a page-fault read from the cohort
	// secondary replica.
	SiteSecondaryFetch = "cluster.fetch.secondary"
	// SiteS3Fetch fires on a page-fault read from the S3 backup replica.
	SiteS3Fetch = "cluster.fetch.s3"
	// SiteReplicate fires on the synchronous secondary write during
	// segment append.
	SiteReplicate = "cluster.replicate"
	// SiteExchangeSend fires on a batch handoff between slices — a lost
	// link in the in-process "network".
	SiteExchangeSend = "exec.exchange.send"
	// SiteDataGet / SiteDataPut fire inside the data-lake object store
	// (COPY sources).
	SiteDataGet = "s3.data.get"
	SiteDataPut = "s3.data.put"
	// SiteBackupGet / SiteBackupPut fire inside the backup-region store.
	SiteBackupGet = "s3.backup.get"
	SiteBackupPut = "s3.backup.put"
	// SiteResizeCopy fires once per table on an online resize's snapshot
	// copy (writes still flowing on the source).
	SiteResizeCopy = "controlplane.resize.copy"
	// SiteResizeCatchup fires on each catch-up re-copy of a table whose
	// data version moved during the snapshot phase.
	SiteResizeCatchup = "controlplane.resize.catchup"
	// SiteResizeCutover fires on the final quiesced delta copy, inside the
	// write-rejection window.
	SiteResizeCutover = "controlplane.resize.cutover"
	// SiteBurstHydrate fires on each page-fault backup GET that hydrates a
	// concurrency-scaling burst cluster.
	SiteBurstHydrate = "burst.hydrate"
	// SiteBurstRoute fires when the endpoint routes a read query to a
	// burst cluster (an injected error falls the query back to the primary).
	SiteBurstRoute = "burst.route"
)

// Rule schedules one site's behavior.
type Rule struct {
	// Prob is the probability [0,1] that a hit returns an injected error.
	Prob float64
	// Count caps how many errors the site may inject; 0 means unlimited.
	Count int64
	// Latency, when set, delays hits (a slow disk or link, not a dead one).
	Latency time.Duration
	// LatencyProb is the probability a hit sleeps Latency; 0 with a
	// non-zero Latency means every hit sleeps.
	LatencyProb float64
	// Err overrides the injected error text.
	Err string
}

// Plan seeds an Injector: one RNG seed plus per-site rules. The zero
// value (no sites) injects nothing but still counts hits, which makes
// stv_faults an inventory of the wired sites.
type Plan struct {
	// Seed drives the single RNG behind every probabilistic decision;
	// 0 picks 1 so a zero-value plan is still deterministic.
	Seed int64
	// Sites maps site name → rule.
	Sites map[string]Rule
	// Disabled starts the injector off; SetEnabled / SET fault_injection
	// toggles it at runtime.
	Disabled bool
}

// Error is an injected fault. Errors.Is/As against *Error lets retry
// logic distinguish injected (transient) failures from real bugs.
type Error struct {
	Site string
	Msg  string
}

func (e *Error) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("faults: %s: %s", e.Site, e.Msg)
	}
	return fmt.Sprintf("faults: injected fault at %s", e.Site)
}

// IsInjected reports whether err originated from an Injector.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// siteState is one site's rule plus its cumulative counters.
type siteState struct {
	rule     Rule
	hits     int64
	injected int64
	delayed  int64
}

// SiteSnapshot is one stv_faults row.
type SiteSnapshot struct {
	Site     string
	Rule     Rule
	Hits     int64
	Injected int64
	Delayed  int64
}

// Injector evaluates fault rules at every registered site. All methods
// are safe on a nil receiver (a database with no fault plan pays one
// nil check per site hit) and safe for concurrent use.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	sites   map[string]*siteState
	order   []string // site names in first-hit/first-rule order
	enabled bool
	seed    int64

	// injectedTotal mirrors the cumulative injected-error count into the
	// shared registry as fault_injected_total; may be nil.
	injectedTotal *telemetry.Counter

	// sleep is swappable for tests; time.Sleep otherwise.
	sleep func(time.Duration)
}

// NewInjector builds an injector from a plan; a nil plan returns a nil
// injector (every method no-ops).
func NewInjector(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	in := &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		sites:   map[string]*siteState{},
		enabled: !p.Disabled,
		seed:    seed,
		sleep:   time.Sleep,
	}
	for name, rule := range p.Sites {
		in.order = append(in.order, name)
		in.sites[name] = &siteState{rule: rule}
	}
	sortStrings(in.order)
	return in
}

// Seed returns the plan's effective RNG seed (0 for a nil injector) —
// chaos tests print it so failures replay.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// SetMetrics mirrors injected-error counts into reg (fault_injected_total).
func (in *Injector) SetMetrics(reg *telemetry.Registry) {
	if in == nil || reg == nil {
		return
	}
	in.mu.Lock()
	in.injectedTotal = reg.Counter("fault_injected_total")
	in.mu.Unlock()
}

// SetEnabled toggles injection at runtime (SET fault_injection = on|off).
// Hit counting continues either way.
func (in *Injector) SetEnabled(on bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.enabled = on
	in.mu.Unlock()
}

// Enabled reports whether injection is live.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.enabled
}

// SetRule installs or replaces one site's rule at runtime.
func (in *Injector) SetRule(site string, r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.sites[site]
	if st == nil {
		st = &siteState{}
		in.sites[site] = st
		in.order = append(in.order, site)
		sortStrings(in.order)
	}
	st.rule = r
}

// Hit evaluates site's rule once: it may sleep (latency schedule) and may
// return an injected *Error. A nil injector, a disabled one, and a site
// with no rule all return nil — but hits are always counted, so
// stv_faults lists every site the engine actually passed through.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st := in.sites[site]
	if st == nil {
		st = &siteState{}
		in.sites[site] = st
		in.order = append(in.order, site)
		sortStrings(in.order)
	}
	st.hits++
	if !in.enabled {
		in.mu.Unlock()
		return nil
	}
	r := st.rule
	var delay time.Duration
	if r.Latency > 0 && (r.LatencyProb <= 0 || in.rng.Float64() < r.LatencyProb) {
		delay = r.Latency
		st.delayed++
	}
	var err error
	if r.Prob > 0 && (r.Count == 0 || st.injected < r.Count) && in.rng.Float64() < r.Prob {
		st.injected++
		err = &Error{Site: site, Msg: r.Err}
		if in.injectedTotal != nil {
			in.injectedTotal.Inc()
		}
	}
	sleep := in.sleep
	in.mu.Unlock()
	if delay > 0 {
		sleep(delay)
	}
	return err
}

// Snapshot returns every known site's rule and counters, sorted by name
// — the rows behind stv_faults.
func (in *Injector) Snapshot() []SiteSnapshot {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]SiteSnapshot, 0, len(in.order))
	for _, name := range in.order {
		st := in.sites[name]
		out = append(out, SiteSnapshot{
			Site:     name,
			Rule:     st.rule,
			Hits:     st.hits,
			Injected: st.injected,
			Delayed:  st.delayed,
		})
	}
	return out
}

func sortStrings(s []string) { sort.Strings(s) }
