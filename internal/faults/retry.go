package faults

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy is the shared retry discipline for transient read failures:
// exponential backoff with full jitter, bounded attempts, and immediate
// abort on context cancellation or a Permanent error. One policy serves
// the page-fault read path (primary → secondary → S3), backup restore
// and COPY's object reads.
type Policy struct {
	// MaxAttempts is the total number of tries (first call included).
	// <= 0 means the default of 3.
	MaxAttempts int
	// Base is the first backoff delay (default 200µs — the in-process
	// "network" is fast; production policies scale this up).
	Base time.Duration
	// Max caps the backoff delay (default 5ms).
	Max time.Duration
	// Jitter in [0,1] randomizes each delay to delay*(1±Jitter/2),
	// decorrelating retry storms (default 0.5).
	Jitter float64
}

// DefaultPolicy is the policy used when a zero value is supplied.
var DefaultPolicy = Policy{MaxAttempts: 3, Base: 200 * time.Microsecond, Max: 5 * time.Millisecond, Jitter: 0.5}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultPolicy.MaxAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultPolicy.Base
	}
	if p.Max <= 0 {
		p.Max = DefaultPolicy.Max
	}
	if p.Jitter <= 0 {
		p.Jitter = DefaultPolicy.Jitter
	}
	return p
}

// permanentError marks a failure retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Policy.Do stops immediately instead of burning
// attempts on a deterministic failure (a missing secondary copy, a
// corrupt object). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was wrapped by Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// retryableError marks a transient engine condition: the statement failed
// now but an identical resend is expected to succeed once the condition
// clears (a resize cutover window, a quarantined node waking up, a WLM
// queue draining).
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// MarkRetryable classifies err as transient for the client-facing error
// taxonomy: the wire layer surfaces it as Response.Retryable and clients
// back off and resend. A nil err stays nil.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// Retryable reports whether err (anywhere in its chain) was classified as
// transient by MarkRetryable.
func Retryable(err error) bool {
	var re *retryableError
	return errors.As(err, &re)
}

// Do runs fn up to p.MaxAttempts times, sleeping a jittered exponential
// backoff between failures. It returns the number of attempts made and
// the last error (unwrapped from Permanent). ctx cancellation ends the
// loop between attempts and during a backoff sleep.
func (p Policy) Do(ctx context.Context, fn func() error) (attempts int, err error) {
	p = p.withDefaults()
	delay := p.Base
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return attempt, nil
		}
		if IsPermanent(err) {
			var pe *permanentError
			errors.As(err, &pe)
			return attempt, pe.err
		}
		if attempt >= p.MaxAttempts {
			return attempt, err
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return attempt, cerr
			}
		}
		d := delay
		if p.Jitter > 0 {
			// rand's global source is concurrency-safe; determinism here
			// doesn't matter (the injector's RNG decides *what* fails).
			d = time.Duration(float64(d) * (1 + p.Jitter*(rand.Float64()-0.5)))
		}
		if ctx != nil {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return attempt, ctx.Err()
			}
		} else {
			time.Sleep(d)
		}
		delay *= 2
		if delay > p.Max {
			delay = p.Max
		}
	}
}
