package controlplane

import (
	"sync"
	"time"

	"redshift/internal/sim"
)

// Event is one host-manager observation.
type Event struct {
	At     time.Time
	Kind   string // "heartbeat", "engine-restart", "disk-error", ...
	Detail string
}

// HostManager is the per-node agent of §2.2: it monitors the host, database
// and logs, aggregates events and metrics, and has "limited capability to
// perform actions, for example, restarting a database process on failure".
type HostManager struct {
	NodeID int
	clock  sim.Clock

	mu       sync.Mutex
	events   []Event
	restarts int
	logBytes int64
}

// NewHostManager builds an agent for one node.
func NewHostManager(nodeID int, clock sim.Clock) *HostManager {
	return &HostManager{NodeID: nodeID, clock: clock}
}

// Record appends an event.
func (h *HostManager) Record(kind, detail string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events = append(h.events, Event{At: h.clock.Now(), Kind: kind, Detail: detail})
}

// CheckHealth runs one health probe. On failure the manager restarts the
// engine process locally (its one autonomous remediation) and reports
// whether the node is healthy after the check.
func (h *HostManager) CheckHealth(probe func() error) bool {
	err := probe()
	if err == nil {
		h.Record("heartbeat", "ok")
		return true
	}
	h.Record("engine-restart", err.Error())
	h.clock.Sleep(15 * time.Second) // process restart
	h.mu.Lock()
	h.restarts++
	h.mu.Unlock()
	return false
}

// Restarts returns how many times the engine was restarted.
func (h *HostManager) Restarts() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.restarts
}

// AppendLog accounts log growth; RotateLogs archives when past the limit
// ("archiving and rotating logs", §2.2). It returns whether a rotation
// happened.
func (h *HostManager) AppendLog(bytes int64, limit int64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.logBytes += bytes
	if h.logBytes >= limit {
		h.logBytes = 0
		h.events = append(h.events, Event{At: h.clock.Now(), Kind: "log-rotate"})
		return true
	}
	return false
}

// Events snapshots the event log.
func (h *HostManager) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.events...)
}
