package controlplane

import (
	"fmt"
	"sort"
	"sync"
)

// FleetPatcher rolls engine versions across a fleet of clusters under §5's
// two-version rule: "At any point, a customer will only be on one of two
// patch versions, greatly improving our ability to reproduce and diagnose
// issues." Failed patches roll back automatically (the Ops.Patch path), so
// stragglers stay on the previous version until retried.
type FleetPatcher struct {
	ops *Ops

	mu       sync.Mutex
	versions map[string]int
}

// NewFleetPatcher wires a patcher to the workflow engine.
func NewFleetPatcher(ops *Ops) *FleetPatcher {
	return &FleetPatcher{ops: ops, versions: map[string]int{}}
}

// Register adds a cluster at a version (provisioning installs the current
// fleet version).
func (f *FleetPatcher) Register(cluster string, version int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.versions[cluster] = version
}

// Versions returns the distinct engine versions currently in the fleet,
// ascending.
func (f *FleetPatcher) Versions() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := map[int]bool{}
	var out []int
	for _, v := range f.versions {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// WaveResult reports one rollout wave.
type WaveResult struct {
	Version    int
	Patched    []string
	RolledBack []string
}

// RollOut patches every cluster below newVersion to newVersion, cluster by
// cluster, with automatic rollback on telemetry regression. It refuses any
// rollout that would put a third version in the fleet: newVersion must be
// exactly max(current)+1, and every cluster must already be within one
// version of it.
func (f *FleetPatcher) RollOut(newVersion int, nodesOf func(cluster string) int, telemetryOK func(cluster string) bool) (WaveResult, error) {
	res := WaveResult{Version: newVersion}
	f.mu.Lock()
	if len(f.versions) == 0 {
		f.mu.Unlock()
		return res, fmt.Errorf("controlplane: empty fleet")
	}
	min, max := 1<<62, -(1 << 62)
	for _, v := range f.versions {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if newVersion != max+1 {
		f.mu.Unlock()
		return res, fmt.Errorf("controlplane: rollout must target version %d, got %d", max+1, newVersion)
	}
	if min < max {
		f.mu.Unlock()
		return res, fmt.Errorf(
			"controlplane: two-version rule: clusters still on version %d must reach %d before %d ships",
			min, max, newVersion)
	}
	targets := make([]string, 0, len(f.versions))
	for c := range f.versions {
		targets = append(targets, c)
	}
	f.mu.Unlock()
	sort.Strings(targets) // deterministic wave order

	for _, c := range targets {
		nodes := 2
		if nodesOf != nil {
			nodes = nodesOf(c)
		}
		var ok func() bool
		if telemetryOK != nil {
			cl := c
			ok = func() bool { return telemetryOK(cl) }
		}
		_, err := f.ops.Patch(nodes, ok)
		f.mu.Lock()
		if err != nil {
			// Patch rolled back: the cluster stays on the old version —
			// the fleet now legally spans two versions.
			res.RolledBack = append(res.RolledBack, c)
		} else {
			f.versions[c] = newVersion
			res.Patched = append(res.Patched, c)
		}
		f.mu.Unlock()
	}
	return res, nil
}

// RetryStragglers re-patches the clusters still below the fleet maximum —
// what must converge before the next rollout may ship.
func (f *FleetPatcher) RetryStragglers(nodesOf func(cluster string) int, telemetryOK func(cluster string) bool) (WaveResult, error) {
	f.mu.Lock()
	max := -(1 << 62)
	for _, v := range f.versions {
		if v > max {
			max = v
		}
	}
	var stragglers []string
	for c, v := range f.versions {
		if v < max {
			stragglers = append(stragglers, c)
		}
	}
	f.mu.Unlock()
	sort.Strings(stragglers)

	res := WaveResult{Version: max}
	for _, c := range stragglers {
		nodes := 2
		if nodesOf != nil {
			nodes = nodesOf(c)
		}
		var ok func() bool
		if telemetryOK != nil {
			cl := c
			ok = func() bool { return telemetryOK(cl) }
		}
		_, err := f.ops.Patch(nodes, ok)
		f.mu.Lock()
		if err != nil {
			res.RolledBack = append(res.RolledBack, c)
		} else {
			f.versions[c] = max
			res.Patched = append(res.Patched, c)
		}
		f.mu.Unlock()
	}
	return res, nil
}
