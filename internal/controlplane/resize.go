package controlplane

import (
	"fmt"
	"sync"
	"sync/atomic"

	"redshift/internal/catalog"
	"redshift/internal/core"
	"redshift/internal/load"
)

// Endpoint is the SQL endpoint customers connect to. Resize swaps the
// database behind it atomically ("we move the SQL endpoint and
// decommission the source", §3.1).
type Endpoint struct {
	db atomic.Pointer[core.Database]
}

// NewEndpoint wraps a database.
func NewEndpoint(db *core.Database) *Endpoint {
	e := &Endpoint{}
	e.db.Store(db)
	return e
}

// DB returns the current database.
func (e *Endpoint) DB() *core.Database { return e.db.Load() }

// Swap atomically moves the endpoint to a new database.
func (e *Endpoint) Swap(db *core.Database) { e.db.Store(db) }

// ResizeStats reports what a real resize moved.
type ResizeStats struct {
	Tables    int
	Rows      int64
	FromNodes int
	ToNodes   int
}

// ResizeDatabase performs the §3.1 resize on real data: provision a target
// cluster with the new topology, put the source in read-only mode (reads
// keep working throughout), copy every table with per-table parallelism,
// re-distributing rows for the new slice count, then flip the endpoint and
// leave the source to be decommissioned by the caller.
func ResizeDatabase(ep *Endpoint, target core.Config) (ResizeStats, error) {
	src := ep.DB()
	var stats ResizeStats
	stats.FromNodes = src.Cluster().NumNodes()
	stats.ToNodes = target.Cluster.Nodes

	dst, err := core.Open(target)
	if err != nil {
		return stats, err
	}
	src.SetReadOnly(true)
	defer src.SetReadOnly(false)

	defs := src.Catalog().List()
	// Recreate the schema first (serial — catalog IDs must be stable).
	for _, def := range defs {
		cp := &catalog.TableDef{
			Name:        def.Name,
			Columns:     append([]catalog.ColumnDef(nil), def.Columns...),
			DistStyle:   def.DistStyle,
			DistKeyCol:  def.DistKeyCol,
			SortStyle:   def.SortStyle,
			SortKeyCols: append([]int(nil), def.SortKeyCols...),
		}
		if err := dst.Catalog().Create(cp); err != nil {
			return stats, err
		}
	}
	// Parallel node-to-node copy, one worker per table.
	var wg sync.WaitGroup
	errs := make([]error, len(defs))
	var rowCount atomic.Int64
	for i, def := range defs {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			rows, err := src.ReadTable(name)
			if err != nil {
				errs[i] = err
				return
			}
			dstDef, err := dst.Catalog().Get(name)
			if err != nil {
				errs[i] = err
				return
			}
			t := dst.Txns().Begin()
			xid, err := dst.Txns().Commit(t)
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := load.AppendRows(dst.Cluster(), dst.Catalog(), dstDef, rows, load.Options{}, xid); err != nil {
				errs[i] = err
				return
			}
			rowCount.Add(int64(len(rows)))
		}(i, def.Name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, fmt.Errorf("controlplane: resize copy: %w", err)
		}
	}
	stats.Tables = len(defs)
	stats.Rows = rowCount.Load()
	ep.Swap(dst)
	if target.Metrics != nil {
		target.Metrics.Counter("resize_runs_total").Inc()
		target.Metrics.Counter("resize_rows_moved_total").Add(stats.Rows)
		target.Metrics.Counter("resize_tables_moved_total").Add(int64(stats.Tables))
	}
	return stats, nil
}
