package controlplane

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"redshift/internal/catalog"
	"redshift/internal/core"
	"redshift/internal/faults"
	"redshift/internal/load"
	"redshift/internal/types"
)

// Endpoint is the SQL endpoint customers connect to. Resize swaps the
// database behind it atomically ("we move the SQL endpoint and
// decommission the source", §3.1).
type Endpoint struct {
	db atomic.Pointer[core.Database]
}

// NewEndpoint wraps a database.
func NewEndpoint(db *core.Database) *Endpoint {
	e := &Endpoint{}
	e.db.Store(db)
	return e
}

// DB returns the current database.
func (e *Endpoint) DB() *core.Database { return e.db.Load() }

// Swap atomically moves the endpoint to a new database.
func (e *Endpoint) Swap(db *core.Database) { e.db.Store(db) }

// ResizeStats reports what a resize moved and what it cost the client.
type ResizeStats struct {
	Tables    int
	Rows      int64
	FromNodes int
	ToNodes   int
	// CatchupRounds is how many incremental delta copies ran between the
	// initial snapshot copy and the cutover.
	CatchupRounds int
	// CutoverWindow is how long writes saw retryable rejections: from
	// QuiesceWrites to the endpoint swap.
	CutoverWindow time.Duration
}

// ResizeOptions tunes the online workflow; the zero value is sane.
type ResizeOptions struct {
	// MaxCatchupRounds bounds the incremental copy loop before the
	// workflow gives up chasing the write backlog and cuts over anyway
	// (the final delta under quiesce is exact regardless). Default 3.
	MaxCatchupRounds int
	// Retry wraps each per-table copy so transient faults (injected or
	// real) don't abort the whole resize. Zero value = faults.DefaultPolicy.
	Retry faults.Policy
	// Finalize runs inside the cutover window, after the final delta copy
	// and before the endpoint swap — the warehouse hooks it to install the
	// target's S3 read tier and warm it with a fresh backup, so the first
	// post-swap page fault never lands on a cold backup store. An error
	// here aborts the cutover and rolls back to the source.
	Finalize func(dst *core.Database) error
}

func (o ResizeOptions) withDefaults() ResizeOptions {
	if o.MaxCatchupRounds <= 0 {
		o.MaxCatchupRounds = 3
	}
	return o
}

// ResizeDatabase performs the §3.1 resize with the default options; see
// ResizeOnline.
func ResizeDatabase(ep *Endpoint, target core.Config) (ResizeStats, error) {
	return ResizeOnline(ep, target, ResizeOptions{})
}

// ResizeOnline performs a phased online resize: writes keep flowing during
// the bulk of the copy and are rejected (retryably) only during the final
// cutover window.
//
//	provision      target cluster with the new topology
//	schema         recreate every table definition (serial; stable IDs)
//	snapshot-copy  parallel per-table copy while the source keeps serving
//	               reads AND writes; each table's data version is recorded
//	               before its snapshot is read
//	catch-up       bounded rounds of incremental re-copy for tables whose
//	               data version moved since they were copied
//	cutover        quiesce writes (in-flight statements drain, new ones get
//	               retryable errors), copy the final delta, swap the
//	               endpoint, decommission the source
//
// Any failure rolls back cleanly: the source resumes writes and stays
// authoritative, the partially-built target is discarded, and the endpoint
// never observes it. After a successful swap the source stays permanently
// non-writable (decommissioned) — a stale handle must not accept writes the
// new cluster will never see.
func ResizeOnline(ep *Endpoint, target core.Config, opts ResizeOptions) (ResizeStats, error) {
	opts = opts.withDefaults()
	src := ep.DB()
	inj := src.Faults()
	reg := target.Metrics
	if reg == nil {
		reg = src.Telemetry()
	}
	var stats ResizeStats
	stats.FromNodes = src.Cluster().NumNodes()
	stats.ToNodes = target.Cluster.Nodes

	prog := core.ResizeProgress{
		Active:    true,
		FromNodes: stats.FromNodes,
		ToNodes:   stats.ToNodes,
		Started:   time.Now(),
	}
	publish := func(phase string) {
		prog.Phase = phase
		src.SetResizeProgress(prog)
	}
	fail := func(phase string, err error) (ResizeStats, error) {
		// Roll back: the source is authoritative again; the half-built
		// target is garbage (never visible through the endpoint).
		src.ResumeWrites()
		prog.Active = false
		publish("failed: " + phase)
		if reg != nil {
			reg.Counter("resize_failures_total").Inc()
		}
		return stats, fmt.Errorf("controlplane: resize %s: %w", phase, err)
	}

	publish("provision")
	dst, err := core.Open(target)
	if err != nil {
		return fail("provision", err)
	}

	publish("schema")
	defs := src.Catalog().List()
	prog.TablesTotal = int64(len(defs))
	for _, def := range defs {
		cp := &catalog.TableDef{
			Name:        def.Name,
			Columns:     append([]catalog.ColumnDef(nil), def.Columns...),
			DistStyle:   def.DistStyle,
			DistKeyCol:  def.DistKeyCol,
			SortStyle:   def.SortStyle,
			SortKeyCols: append([]int(nil), def.SortKeyCols...),
		}
		if err := dst.Catalog().Create(cp); err != nil {
			return fail("schema", err)
		}
	}

	// copied tracks, per table, the source data version its last copy was
	// taken at. A table is stale while the live version differs.
	copied := make(map[string]int64, len(defs))
	var copiedMu sync.Mutex

	// copyOne re-copies one table replace-style (idempotent: safe to retry
	// and safe to run again in a later round), recording the version seen
	// BEFORE the snapshot read. Writers bump the version only after
	// publishing, so a racing write is either visible to the snapshot
	// (harmlessly re-copied later if the version moved) or caught by a
	// catch-up round — never silently missed.
	copyOne := func(site, name string) error {
		return retryCopy(opts.Retry, func() error {
			if err := inj.Hit(site); err != nil {
				return err
			}
			def, err := src.Catalog().Get(name)
			if err != nil {
				return err
			}
			ver := src.Catalog().DataVersion(def.ID)
			rows, err := src.ReadTable(name)
			if err != nil {
				return err
			}
			if err := replaceTable(dst, name, rows); err != nil {
				return err
			}
			copiedMu.Lock()
			if _, again := copied[name]; !again {
				prog.TablesCopied++
			}
			copied[name] = ver
			prog.RowsCopied += int64(len(rows))
			stats.Rows += int64(len(rows))
			src.SetResizeProgress(prog)
			copiedMu.Unlock()
			return nil
		})
	}

	publish("snapshot-copy")
	var wg sync.WaitGroup
	errs := make([]error, len(defs))
	for i, def := range defs {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = copyOne(faults.SiteResizeCopy, name)
		}(i, def.Name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fail("snapshot-copy", err)
		}
	}

	// staleTables lists the tables whose source data version moved since
	// their last copy (writes landed while we copied).
	staleTables := func() []string {
		copiedMu.Lock()
		defer copiedMu.Unlock()
		var out []string
		for _, def := range defs {
			if src.Catalog().DataVersion(def.ID) != copied[def.Name] {
				out = append(out, def.Name)
			}
		}
		return out
	}

	publish("catch-up")
	for round := 0; round < opts.MaxCatchupRounds; round++ {
		stale := staleTables()
		if len(stale) == 0 {
			break
		}
		stats.CatchupRounds++
		prog.CatchupRounds++
		src.SetResizeProgress(prog)
		if reg != nil {
			reg.Counter("resize_catchup_rounds_total").Inc()
		}
		for _, name := range stale {
			if err := copyOne(faults.SiteResizeCatchup, name); err != nil {
				return fail("catch-up", err)
			}
		}
	}

	// Cutover: freeze the table set, copy the exact final delta, move the
	// endpoint. From QuiesceWrites to Swap every new write statement fails
	// with a retryable error — the documented cutover window.
	publish("cutover")
	cutStart := time.Now()
	src.QuiesceWrites()
	if err := inj.Hit(faults.SiteResizeCutover); err != nil {
		return fail("cutover", err)
	}
	for _, name := range staleTables() {
		if err := copyOne(faults.SiteResizeCutover, name); err != nil {
			return fail("cutover", err)
		}
	}
	// The target starts its commit-xid horizon at the source's, so a client
	// that saw xid N on the source never observes an older snapshot after
	// the swap.
	dst.Txns().SetCommitXid(src.Txns().CurrentXid())
	if opts.Finalize != nil {
		if err := opts.Finalize(dst); err != nil {
			return fail("cutover", err)
		}
	}
	ep.Swap(dst)
	src.Decommission()
	stats.CutoverWindow = time.Since(cutStart)

	stats.Tables = len(defs)
	prog.Active = false
	publish("done")
	dst.SetResizeProgress(prog)
	if reg != nil {
		reg.Counter("resize_runs_total").Inc()
		reg.Counter("resize_rows_moved_total").Add(stats.Rows)
		reg.Counter("resize_tables_moved_total").Add(int64(stats.Tables))
	}
	return stats, nil
}

// retryCopy runs fn under the policy, treating every error as transient
// (per-table copies are idempotent replace-style writes).
func retryCopy(p faults.Policy, fn func() error) error {
	_, err := p.Do(context.Background(), fn)
	return err
}

// replaceTable atomically replaces dst's shard of the named table with
// rows: supersede every visible segment and append the new copy under one
// reserved xid, so readers of the target never see a half-replaced table
// and a failure discards the attempt wholesale (idempotent retries).
func replaceTable(dst *core.Database, name string, rows []types.Row) error {
	def, err := dst.Catalog().Get(name)
	if err != nil {
		return err
	}
	txm := dst.Txns()
	t := txm.Begin()
	if err := txm.LockTable(t, def.ID); err != nil {
		txm.Abort(t)
		return err
	}
	xid, err := txm.Reserve(t)
	if err != nil {
		txm.Abort(t)
		return err
	}
	for sl := 0; sl < dst.Cluster().NumSlices(); sl++ {
		dst.Cluster().ReplaceSegments(sl, def.ID, nil, xid)
	}
	if _, err := load.AppendRows(dst.Cluster(), dst.Catalog(), def, rows, load.Options{}, xid); err != nil {
		dst.Cluster().DiscardXid(def.ID, xid)
		txm.Abort(t)
		return err
	}
	if err := txm.Publish(t); err != nil {
		return err
	}
	dst.Cluster().PruneDropped(txm.OldestActiveSnapshot())
	dst.Catalog().BumpDataVersion(def.ID)
	return nil
}
