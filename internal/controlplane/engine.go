// Package controlplane implements §2.2 and §3: the workflows that monitor
// and manage the database — provisioning (cold and from the preconfigured
// warm pool), patching with the two-version rule and automatic rollback,
// backup/restore orchestration, cluster resize with a read-only source and
// parallel node-to-node copy, node replacement, and the per-node host
// manager.
//
// Workflows run on a sim.Clock: integration tests drive them in scaled wall
// time, the Figure 2 benchmarks in virtual time at 2/16/128-node scale.
package controlplane

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"redshift/internal/sim"
	"redshift/internal/telemetry"
)

// Step is one unit of a workflow: a named action with bounded retries.
type Step struct {
	Name string
	// Retries is how many times the step is re-attempted after failure.
	Retries int
	// Do performs the action; it may sleep on the engine's clock.
	Do func() error
}

// StepLog records one step's outcome.
type StepLog struct {
	Name     string
	Attempts int
	Duration time.Duration
	Err      error
}

// RunLog is a completed workflow's trace.
type RunLog struct {
	Name     string
	Steps    []StepLog
	Duration time.Duration
	Err      error
}

// Engine executes workflows — the stand-in for Amazon SWF (§2.3): every
// admin action is a sequence of durable, retried steps with fixed
// coordination overhead.
type Engine struct {
	Clock sim.Clock
	// StepOverhead is the coordination cost charged per step attempt.
	StepOverhead time.Duration
	// RetryBackoff is slept between attempts.
	RetryBackoff time.Duration
	// Metrics, when set, receives per-workflow-family run/failure counters
	// and a duration histogram.
	Metrics *telemetry.Registry

	mu   sync.Mutex
	runs []*RunLog
}

// NewEngine builds a workflow engine on the clock with the cost model's
// step overhead.
func NewEngine(clock sim.Clock, model sim.CostModel) *Engine {
	return &Engine{
		Clock:        clock,
		StepOverhead: model.ControlPlaneStep,
		RetryBackoff: 10 * time.Second,
	}
}

// Run executes the steps in order, retrying each per its budget. The first
// exhausted step aborts the workflow.
func (e *Engine) Run(name string, steps ...Step) (*RunLog, error) {
	start := e.Clock.Now()
	log := &RunLog{Name: name}
	for _, step := range steps {
		sl := StepLog{Name: step.Name}
		stepStart := e.Clock.Now()
		for attempt := 0; ; attempt++ {
			sl.Attempts++
			e.Clock.Sleep(e.StepOverhead)
			err := step.Do()
			if err == nil {
				sl.Err = nil
				break
			}
			sl.Err = err
			if attempt >= step.Retries {
				break
			}
			e.Clock.Sleep(e.RetryBackoff)
		}
		sl.Duration = e.Clock.Now().Sub(stepStart)
		log.Steps = append(log.Steps, sl)
		if sl.Err != nil {
			log.Err = fmt.Errorf("controlplane: workflow %s: step %s: %w", name, step.Name, sl.Err)
			break
		}
	}
	log.Duration = e.Clock.Now().Sub(start)
	e.mu.Lock()
	e.runs = append(e.runs, log)
	e.mu.Unlock()
	if e.Metrics != nil {
		fam := workflowFamily(name)
		e.Metrics.Counter("controlplane_" + fam + "_runs").Inc()
		if log.Err != nil {
			e.Metrics.Counter("controlplane_" + fam + "_failures").Inc()
		}
		e.Metrics.Histogram("controlplane_workflow_seconds").Observe(log.Duration.Seconds())
	}
	return log, log.Err
}

// workflowFamily strips instance suffixes from a workflow name so metrics
// aggregate per kind: "resize-2-to-16" → "resize", "patch-8" → "patch".
func workflowFamily(name string) string {
	parts := strings.Split(name, "-")
	for len(parts) > 1 {
		last := parts[len(parts)-1]
		if last != "to" && !isDigits(last) {
			break
		}
		parts = parts[:len(parts)-1]
	}
	return strings.Join(parts, "-")
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Runs returns the completed workflow logs.
func (e *Engine) Runs() []*RunLog {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*RunLog(nil), e.runs...)
}

// WarmPool is the preconfigured-node standby capacity of §3.1 ("support
// for preconfigured Amazon Redshift nodes available for faster creations
// and supporting standbys for node failure replacements").
type WarmPool struct {
	mu    sync.Mutex
	avail int
}

// NewWarmPool returns a pool with n preconfigured nodes.
func NewWarmPool(n int) *WarmPool { return &WarmPool{avail: n} }

// Take removes up to n nodes from the pool and returns how many it got.
func (w *WarmPool) Take(n int) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	got := n
	if got > w.avail {
		got = w.avail
	}
	w.avail -= got
	return got
}

// Return puts nodes back (decommission, pool refill).
func (w *WarmPool) Return(n int) {
	w.mu.Lock()
	w.avail += n
	w.mu.Unlock()
}

// Available reports the current pool size.
func (w *WarmPool) Available() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.avail
}
