package controlplane

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"redshift/internal/core"
	"redshift/internal/faults"
	"redshift/internal/sql"
	"redshift/internal/telemetry"
)

// Concurrency scaling (§3.1's burst capacity, productized as Redshift's
// concurrency-scaling clusters): when the WLM queue on the main cluster
// backs up, a read-only cluster is hydrated on demand from a fresh backup
// and cache-ineligible read queries are routed to it until the queue
// drains. Routed results are bit-identical to what the primary would have
// answered at the routed snapshot version — a query whose tables moved past
// the snapshot simply stays on the primary.

// BurstPolicy is the cost-aware scale-out policy. A burst cluster is
// worth hydrating when the queue's aggregate pain — queue depth × oldest
// wait × the cost of one slot-second — crosses Threshold.
type BurstPolicy struct {
	// Threshold in slot-cost units; <= 0 disables concurrency scaling.
	Threshold float64
	// SlotCost prices one query-second of queue wait (default 1).
	SlotCost float64
	// RetireAfter is how long the queue must stay empty (and no routed
	// query in flight) before the burst cluster is retired. Default 500ms.
	RetireAfter time.Duration
}

func (p BurstPolicy) withDefaults() BurstPolicy {
	if p.SlotCost <= 0 {
		p.SlotCost = 1
	}
	if p.RetireAfter <= 0 {
		p.RetireAfter = 500 * time.Millisecond
	}
	return p
}

// HydrateFunc provisions a read-only cluster from a fresh backup of the
// primary, returning the database, the backup it was restored from, and
// the snapshot xid it serves at. The warehouse supplies this — the control
// plane doesn't know where backups live.
type HydrateFunc func() (db *core.Database, backupID string, snapshotXid int64, err error)

// burstCluster is one hydrated read-only cluster.
type burstCluster struct {
	id       int64
	db       *core.Database
	backupID string
	snapXid  int64
	started  time.Time
	// versions pins each table's primary data version captured BEFORE the
	// hydration backup was taken: if the primary's version still matches,
	// the burst copy cannot be staler than the primary (writers bump the
	// version only after publishing, so the conservative failure mode is a
	// needless fallback, never a stale answer).
	versions  map[string]int64
	routed    atomic.Int64
	fallbacks atomic.Int64
}

// BurstManager owns the concurrency-scaling lifecycle: watch queue
// pressure, hydrate, route, retire.
type BurstManager struct {
	ep      *Endpoint
	policy  BurstPolicy
	hydrate HydrateFunc
	reg     *telemetry.Registry

	mu        sync.Mutex
	cur       *burstCluster
	hydrating bool
	nextID    int64
	lastBusy  time.Time
	history   []core.BurstClusterInfo

	inflight atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewBurstManager builds a manager and starts its retirement janitor. Stop
// must be called to release it. reg may be nil.
func NewBurstManager(ep *Endpoint, policy BurstPolicy, hydrate HydrateFunc, reg *telemetry.Registry) *BurstManager {
	m := &BurstManager{
		ep:      ep,
		policy:  policy.withDefaults(),
		hydrate: hydrate,
		reg:     reg,
		stop:    make(chan struct{}),
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// Stop halts the janitor and retires any live burst cluster.
func (m *BurstManager) Stop() {
	if m == nil {
		return
	}
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
	m.mu.Lock()
	m.retireLocked("retired")
	m.mu.Unlock()
}

// Snapshot returns every burst cluster's row for stv_burst_clusters:
// retired/failed history first, then the live cluster.
func (m *BurstManager) Snapshot() []core.BurstClusterInfo {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]core.BurstClusterInfo(nil), m.history...)
	if m.cur != nil {
		out = append(out, m.infoLocked(m.cur, "serving"))
	}
	return out
}

func (m *BurstManager) infoLocked(c *burstCluster, state string) core.BurstClusterInfo {
	return core.BurstClusterInfo{
		ID:            c.id,
		State:         state,
		BackupID:      c.backupID,
		SnapshotXid:   c.snapXid,
		RoutedQueries: c.routed.Load(),
		Fallbacks:     c.fallbacks.Load(),
		Started:       c.started,
	}
}

// retireLocked moves the live cluster (if any) into history.
func (m *BurstManager) retireLocked(state string) {
	if m.cur == nil {
		return
	}
	m.history = append(m.history, m.infoLocked(m.cur, state))
	m.cur = nil
	if m.reg != nil && state == "retired" {
		m.reg.Counter("burst_retirements_total").Inc()
	}
}

// shouldScale prices the current queue pain against the threshold.
func (m *BurstManager) shouldScale(primary *core.Database) bool {
	depth, oldest := primary.QueuePressure()
	if depth == 0 {
		return false
	}
	return float64(depth)*oldest.Seconds()*m.policy.SlotCost >= m.policy.Threshold
}

// TryRoute offers stmt to the concurrency-scaling tier. It returns
// (result, true) only when the burst cluster answered with a result
// bit-identical to the primary's at the routed snapshot version; any other
// outcome — policy says no, no cluster and pressure below threshold,
// hydration in progress or failed, table moved past the snapshot, injected
// route fault, execution error — returns (nil, false) and the caller runs
// the query on the primary as if this tier didn't exist. Routing can delay
// a read, never corrupt or drop it.
func (m *BurstManager) TryRoute(ctx context.Context, stmt sql.Statement) (*core.Result, bool) {
	if m == nil || m.policy.Threshold <= 0 {
		return nil, false
	}
	norm, tables, ok := core.RoutableSelect(stmt)
	if !ok {
		return nil, false
	}
	primary := m.ep.DB()
	if primary.HasFreshResult(norm) {
		// A version-valid cached result is cheaper than any routing.
		return nil, false
	}

	m.mu.Lock()
	cur := m.cur
	if cur == nil {
		if m.hydrating || !m.shouldScale(primary) {
			m.mu.Unlock()
			return nil, false
		}
		m.hydrating = true
		m.mu.Unlock()
		cur = m.hydrateNow(primary)
		if cur == nil {
			return nil, false
		}
	} else {
		m.lastBusy = time.Now()
		m.mu.Unlock()
	}

	// Staleness gate: every referenced table must still be at the version
	// pinned before the hydration backup.
	for _, name := range tables {
		def, err := primary.Catalog().Get(name)
		if err != nil {
			return nil, false
		}
		pinned, have := cur.versions[name]
		if !have || primary.Catalog().DataVersion(def.ID) != pinned {
			return nil, false
		}
	}

	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	fallback := func() (*core.Result, bool) {
		cur.fallbacks.Add(1)
		if m.reg != nil {
			m.reg.Counter("burst_fallbacks_total").Inc()
		}
		return nil, false
	}
	if err := primary.Faults().Hit(faults.SiteBurstRoute); err != nil {
		return fallback()
	}
	res, err := cur.db.ExecuteStmtContext(ctx, stmt)
	if err != nil {
		return fallback()
	}
	cur.routed.Add(1)
	if m.reg != nil {
		m.reg.Counter("burst_routed_queries_total").Inc()
	}
	m.mu.Lock()
	m.lastBusy = time.Now()
	m.mu.Unlock()
	return res, true
}

// hydrateNow provisions a burst cluster synchronously (the caller holds
// the hydrating flag, not the lock). Table versions are pinned BEFORE the
// backup is triggered so a write racing the backup can only cause a
// needless fallback, never a stale routed answer.
func (m *BurstManager) hydrateNow(primary *core.Database) *burstCluster {
	versions := map[string]int64{}
	for _, def := range primary.Catalog().List() {
		versions[def.Name] = primary.Catalog().DataVersion(def.ID)
	}
	start := time.Now()
	finish := func(c *burstCluster, failErr error) *burstCluster {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.hydrating = false
		if failErr != nil {
			m.nextID++
			m.history = append(m.history, core.BurstClusterInfo{
				ID: m.nextID, State: "failed", Started: start,
			})
			return nil
		}
		m.cur = c
		m.lastBusy = time.Now()
		return c
	}
	if err := primary.Faults().Hit(faults.SiteBurstHydrate); err != nil {
		return finish(nil, err)
	}
	db, backupID, snapXid, err := m.hydrate()
	if err != nil {
		return finish(nil, err)
	}
	db.SetReadOnly(true)
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.mu.Unlock()
	if m.reg != nil {
		m.reg.Counter("burst_hydrations_total").Inc()
	}
	return finish(&burstCluster{
		id: id, db: db, backupID: backupID, snapXid: snapXid,
		started: start, versions: versions,
	}, nil)
}

// janitor retires the burst cluster once the primary's queue has stayed
// empty (and no routed query is in flight) for RetireAfter.
func (m *BurstManager) janitor() {
	defer m.wg.Done()
	tick := m.policy.RetireAfter / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		depth, _ := m.ep.DB().QueuePressure()
		m.mu.Lock()
		idle := m.cur != nil && depth == 0 && m.inflight.Load() == 0 &&
			time.Since(m.lastBusy) >= m.policy.RetireAfter
		if idle {
			m.retireLocked("retired")
		}
		m.mu.Unlock()
	}
}

