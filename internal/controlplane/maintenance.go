package controlplane

import (
	"sync"
	"time"

	"redshift/internal/core"
	"redshift/internal/sim"
)

// MaintenanceDaemon periodically runs the database's self-correction pass
// (core.AutoMaintain) — §3.2's future work: table administration "closer to
// backup in operation", initiated by the system when load is light rather
// than by the user.
type MaintenanceDaemon struct {
	clock    sim.Clock
	endpoint *Endpoint
	policy   core.MaintenancePolicy
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	stopped bool
	reports []core.MaintenanceReport
}

// NewMaintenanceDaemon wires a daemon to the endpoint (it follows the
// endpoint across resizes and restores).
func NewMaintenanceDaemon(clock sim.Clock, ep *Endpoint, policy core.MaintenancePolicy, interval time.Duration) *MaintenanceDaemon {
	return &MaintenanceDaemon{
		clock:    clock,
		endpoint: ep,
		policy:   policy,
		interval: interval,
		stop:     make(chan struct{}),
	}
}

// RunOnce executes one maintenance pass immediately.
func (d *MaintenanceDaemon) RunOnce() (core.MaintenanceReport, error) {
	report, err := d.endpoint.DB().AutoMaintain(d.policy)
	if err == nil {
		d.mu.Lock()
		d.reports = append(d.reports, report)
		d.mu.Unlock()
	}
	return report, err
}

// Start launches the periodic loop on a goroutine. Each tick sleeps on the
// daemon's clock, so tests drive it in scaled or virtual time.
func (d *MaintenanceDaemon) Start() {
	go func() {
		for {
			select {
			case <-d.stop:
				return
			default:
			}
			d.clock.Sleep(d.interval)
			select {
			case <-d.stop:
				return
			default:
			}
			d.RunOnce() // errors are recorded per pass; the loop survives
		}
	}()
}

// Stop halts the loop.
func (d *MaintenanceDaemon) Stop() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.stopped {
		d.stopped = true
		close(d.stop)
	}
}

// Reports returns all completed pass reports.
func (d *MaintenanceDaemon) Reports() []core.MaintenanceReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]core.MaintenanceReport(nil), d.reports...)
}
