package controlplane

import (
	"fmt"
	"time"

	"redshift/internal/sim"
)

// Ops models the fleet-scale admin operations of Figure 2 and §3 on the
// cost model: each operation is a workflow whose data-moving steps are
// parallel across nodes, so durations stay nearly flat as clusters grow —
// the figure's central claim.
type Ops struct {
	Engine *Engine
	Model  sim.CostModel
	Warm   *WarmPool
	// EC2Outage simulates an instance-provisioning interruption in the
	// underlying infrastructure (§5's "design escalators, not elevators"):
	// cold acquisitions fail while set; the preconfigured warm pool keeps
	// provisioning and replacement working through the outage.
	EC2Outage bool
}

// NewOps wires the simulated operations.
func NewOps(clock sim.Clock, model sim.CostModel, warm *WarmPool) *Ops {
	return &Ops{Engine: NewEngine(clock, model), Model: model, Warm: warm}
}

// perNode runs one duration-consuming action for every node in parallel.
func (o *Ops) perNode(nodes int, d func(node int) time.Duration) func() error {
	return func() error {
		fns := make([]func(), nodes)
		for n := 0; n < nodes; n++ {
			n := n
			fns[n] = func() { o.Engine.Clock.Sleep(d(n)) }
		}
		sim.Parallel(o.Engine.Clock, fns...)
		return nil
	}
}

// Provision creates an n-node cluster. With useWarm, nodes come from the
// preconfigured pool when available (§3.1: 15 minutes cold at launch,
// 3 minutes with preconfigured nodes).
func (o *Ops) Provision(nodes int, useWarm bool) (*RunLog, error) {
	warm := 0
	if useWarm && o.Warm != nil {
		warm = o.Warm.Take(nodes)
	}
	m := o.Model
	boot := o.perNode(nodes, func(n int) time.Duration {
		if n < warm {
			return m.NodeBootWarm
		}
		return m.NodeBootCold
	})
	return o.Engine.Run(fmt.Sprintf("provision-%d", nodes),
		Step{Name: "reserve-capacity", Do: func() error { return nil }},
		Step{Name: "acquire-and-boot", Retries: 2, Do: func() error {
			if o.EC2Outage && warm < nodes {
				// Cold acquisition is down; only fully warm-pool-backed
				// provisioning can proceed.
				return fmt.Errorf("controlplane: EC2 provisioning interruption (%d of %d nodes warm)", warm, nodes)
			}
			return boot()
		}},
		Step{Name: "configure-network", Do: func() error {
			o.Engine.Clock.Sleep(m.ControlPlaneStep)
			return nil
		}},
		Step{Name: "start-engine", Do: o.perNode(nodes, func(int) time.Duration {
			return 10 * time.Second
		})},
		Step{Name: "register-endpoint", Do: func() error {
			o.Engine.Clock.Sleep(m.DNSPropagation)
			return nil
		}},
	)
}

// Connect models the customer's first connection: DNS lookup, TLS/auth
// handshake, session setup.
func (o *Ops) Connect() (*RunLog, error) {
	return o.Engine.Run("connect",
		Step{Name: "resolve-endpoint", Do: func() error {
			o.Engine.Clock.Sleep(2 * time.Second)
			return nil
		}},
		Step{Name: "authenticate", Do: func() error {
			o.Engine.Clock.Sleep(3 * time.Second)
			return nil
		}},
	)
}

// Backup uploads changed blocks to the object store. Per §3.2 the time is
// proportional to the data changed on a single node: every node uploads its
// share in parallel.
func (o *Ops) Backup(nodes int, changedBytes int64) (*RunLog, error) {
	perNodeBytes := changedBytes / int64(nodes)
	return o.Engine.Run(fmt.Sprintf("backup-%d", nodes),
		Step{Name: "snapshot-metadata", Do: func() error { return nil }},
		Step{Name: "upload-changed-blocks", Retries: 1, Do: o.perNode(nodes, func(int) time.Duration {
			return o.Model.S3Upload(perNodeBytes)
		})},
		Step{Name: "commit-manifest", Do: func() error { return nil }},
	)
}

// Restore brings a backup onto a fresh cluster. With streaming, the
// database opens after metadata restore and only the working set is pulled
// before first-query time; the rest downloads in background (not part of
// the reported duration, exactly as customers experience it).
func (o *Ops) Restore(nodes int, totalBytes int64, streaming bool, workingSet float64) (*RunLog, error) {
	pull := totalBytes
	if streaming {
		pull = int64(float64(totalBytes) * workingSet)
	}
	perNodeBytes := pull / int64(nodes)
	return o.Engine.Run(fmt.Sprintf("restore-%d", nodes),
		Step{Name: "restore-catalog", Do: func() error {
			o.Engine.Clock.Sleep(20 * time.Second)
			return nil
		}},
		Step{Name: "restore-block-metadata", Do: o.perNode(nodes, func(int) time.Duration {
			return 10 * time.Second
		})},
		Step{Name: "fetch-blocks", Retries: 1, Do: o.perNode(nodes, func(int) time.Duration {
			return o.Model.S3Download(perNodeBytes)
		})},
		Step{Name: "open-for-sql", Do: func() error { return nil }},
	)
}

// Resize provisions a target cluster, puts the source in read-only mode and
// runs the parallel node-to-node copy (§3.1). Copy time is bounded by the
// larger of per-source-node send and per-target-node receive bandwidth.
func (o *Ops) Resize(fromNodes, toNodes int, totalBytes int64) (*RunLog, error) {
	m := o.Model
	sendPerNode := totalBytes / int64(fromNodes)
	recvPerNode := totalBytes / int64(toNodes)
	copyTime := m.NetTransfer(sendPerNode)
	if r := m.NetTransfer(recvPerNode); r > copyTime {
		copyTime = r
	}
	return o.Engine.Run(fmt.Sprintf("resize-%d-to-%d", fromNodes, toNodes),
		Step{Name: "provision-target", Retries: 2, Do: o.perNode(toNodes, func(n int) time.Duration {
			warm := 0
			if o.Warm != nil {
				warm = o.Warm.Take(1)
			}
			if warm > 0 {
				return m.NodeBootWarm
			}
			return m.NodeBootCold
		})},
		Step{Name: "source-read-only", Do: func() error { return nil }},
		Step{Name: "parallel-copy", Retries: 1, Do: o.perNode(fromNodes, func(int) time.Duration {
			return copyTime
		})},
		Step{Name: "flip-endpoint", Do: func() error {
			o.Engine.Clock.Sleep(m.DNSPropagation)
			return nil
		}},
		Step{Name: "decommission-source", Do: func() error { return nil }},
	)
}

// Patch applies a new engine version to a cluster inside the 30-minute
// window (§5): drain, install per node in parallel, restart, verify
// telemetry, auto-rollback on regression.
func (o *Ops) Patch(nodes int, telemetryOK func() bool) (*RunLog, error) {
	install := o.perNode(nodes, func(int) time.Duration { return 90 * time.Second })
	rolledBack := false
	log, err := o.Engine.Run(fmt.Sprintf("patch-%d", nodes),
		Step{Name: "drain-queries", Do: func() error {
			o.Engine.Clock.Sleep(30 * time.Second)
			return nil
		}},
		Step{Name: "install-version", Retries: 1, Do: install},
		Step{Name: "restart-engine", Do: o.perNode(nodes, func(int) time.Duration {
			return 20 * time.Second
		})},
		Step{Name: "verify-telemetry", Do: func() error {
			o.Engine.Clock.Sleep(60 * time.Second) // observation window
			if telemetryOK != nil && !telemetryOK() {
				return fmt.Errorf("error rate regression detected")
			}
			return nil
		}},
	)
	if err != nil {
		// Reversible patches: roll back automatically (§5).
		rolledBack = true
		if _, rbErr := o.Engine.Run(fmt.Sprintf("rollback-%d", nodes),
			Step{Name: "reinstall-previous", Do: install},
			Step{Name: "restart-engine", Do: o.perNode(nodes, func(int) time.Duration {
				return 20 * time.Second
			})},
		); rbErr != nil {
			return log, rbErr
		}
	}
	if rolledBack {
		return log, fmt.Errorf("controlplane: patch rolled back: %w", err)
	}
	return log, nil
}

// ReplaceNode swaps a failed node: take a standby (warm pool), rebuild its
// blocks from cohort peers, rejoin.
func (o *Ops) ReplaceNode(bytesOnNode int64) (*RunLog, error) {
	m := o.Model
	boot := m.NodeBootCold
	haveWarm := o.Warm != nil && o.Warm.Take(1) > 0
	if haveWarm {
		boot = m.NodeBootWarm
	}
	return o.Engine.Run("replace-node",
		Step{Name: "detect-failure", Do: func() error {
			o.Engine.Clock.Sleep(30 * time.Second) // health-check interval
			return nil
		}},
		Step{Name: "acquire-standby", Retries: 2, Do: func() error {
			if o.EC2Outage && !haveWarm {
				return fmt.Errorf("controlplane: EC2 provisioning interruption and no preconfigured standby")
			}
			o.Engine.Clock.Sleep(boot)
			return nil
		}},
		Step{Name: "rebuild-from-cohort", Retries: 1, Do: func() error {
			o.Engine.Clock.Sleep(m.NetTransfer(bytesOnNode))
			return nil
		}},
		Step{Name: "rejoin-cluster", Do: func() error { return nil }},
	)
}
