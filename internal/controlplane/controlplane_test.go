package controlplane

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"redshift/internal/cluster"
	"redshift/internal/core"
	"redshift/internal/faults"
	"redshift/internal/s3sim"
	"redshift/internal/sim"
	"redshift/internal/telemetry"
)

// elapse runs a control-plane operation on a virtual clock and returns the
// simulated duration.
func elapse(t *testing.T, fn func(o *Ops)) time.Duration {
	t.Helper()
	var d time.Duration
	d = sim.Elapse(func(c *sim.VClock) {
		o := NewOps(c, sim.Default2013(), NewWarmPool(1000))
		fn(o)
	})
	return d
}

func TestWorkflowEngineRetries(t *testing.T) {
	clock := sim.NewVClock(time.Unix(0, 0))
	e := NewEngine(clock, sim.Default2013())
	failures := 2
	var log *RunLog
	clock.Go(func() {
		log, _ = e.Run("flaky",
			Step{Name: "sometimes", Retries: 3, Do: func() error {
				if failures > 0 {
					failures--
					return fmt.Errorf("transient")
				}
				return nil
			}},
		)
	})
	clock.Run()
	if log.Err != nil {
		t.Fatalf("workflow failed: %v", log.Err)
	}
	if log.Steps[0].Attempts != 3 {
		t.Errorf("attempts = %d", log.Steps[0].Attempts)
	}
	if len(e.Runs()) != 1 {
		t.Errorf("runs = %d", len(e.Runs()))
	}
}

func TestWorkflowEngineAbortsOnExhaustion(t *testing.T) {
	clock := sim.NewVClock(time.Unix(0, 0))
	e := NewEngine(clock, sim.Default2013())
	var err error
	ran := false
	clock.Go(func() {
		_, err = e.Run("doomed",
			Step{Name: "fails", Retries: 1, Do: func() error { return fmt.Errorf("permanent") }},
			Step{Name: "never", Do: func() error { ran = true; return nil }},
		)
	})
	clock.Run()
	if err == nil || ran {
		t.Errorf("err=%v ran=%v", err, ran)
	}
}

func TestProvisionWarmVsCold(t *testing.T) {
	cold := elapse(t, func(o *Ops) {
		o.Warm = nil
		if _, err := o.Provision(16, false); err != nil {
			t.Error(err)
		}
	})
	warm := elapse(t, func(o *Ops) {
		if _, err := o.Provision(16, true); err != nil {
			t.Error(err)
		}
	})
	// §3.1: 15 min at launch → 3 min with preconfigured nodes. Check the
	// shape: cold lands in 2–20 min, warm in 1–5 min, warm much faster.
	if cold < 2*time.Minute || cold > 20*time.Minute {
		t.Errorf("cold provision = %v", cold)
	}
	if warm < 30*time.Second || warm > 5*time.Minute {
		t.Errorf("warm provision = %v", warm)
	}
	if cold < 2*warm {
		t.Errorf("warm (%v) should be much faster than cold (%v)", warm, cold)
	}
}

func TestProvisionFlatAcrossClusterSizes(t *testing.T) {
	// Figure 2: admin operations are parallel per node, so duration is
	// nearly flat in cluster size.
	d2 := elapse(t, func(o *Ops) { o.Provision(2, false) })
	d128 := elapse(t, func(o *Ops) { o.Provision(128, false) })
	if d128 > d2*3/2 {
		t.Errorf("provision not flat: 2 nodes %v, 128 nodes %v", d2, d128)
	}
}

func TestBackupProportionalToPerNodeData(t *testing.T) {
	const changed = int64(400e9) // 400 GB changed
	d16 := elapse(t, func(o *Ops) { o.Backup(16, changed) })
	d128 := elapse(t, func(o *Ops) { o.Backup(128, changed) })
	if d128 >= d16 {
		t.Errorf("backup should speed up with nodes: 16=%v 128=%v", d16, d128)
	}
}

func TestStreamingRestoreMuchFasterThanFull(t *testing.T) {
	const total = int64(2e12) // 2 TB
	full := elapse(t, func(o *Ops) { o.Restore(16, total, false, 0) })
	streaming := elapse(t, func(o *Ops) { o.Restore(16, total, true, 0.05) })
	if streaming*4 > full {
		t.Errorf("streaming restore (%v) should be ≪ full restore (%v)", streaming, full)
	}
}

func TestPatchRollbackOnTelemetryRegression(t *testing.T) {
	clock := sim.NewVClock(time.Unix(0, 0))
	var err error
	clock.Go(func() {
		o := NewOps(clock, sim.Default2013(), nil)
		_, err = o.Patch(4, func() bool { return false })
	})
	clock.Run()
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Errorf("patch err = %v, want rollback", err)
	}

	// Healthy telemetry: no rollback, fits the 30-minute window.
	d := elapse(t, func(o *Ops) {
		if _, err := o.Patch(16, func() bool { return true }); err != nil {
			t.Error(err)
		}
	})
	if d > 30*time.Minute {
		t.Errorf("patch took %v, exceeds the 30-minute window", d)
	}
}

func TestReplaceNodeUsesWarmPool(t *testing.T) {
	pool := NewWarmPool(1)
	var withWarm, withoutWarm time.Duration
	withWarm = sim.Elapse(func(c *sim.VClock) {
		o := NewOps(c, sim.Default2013(), pool)
		o.ReplaceNode(100e9)
	})
	if pool.Available() != 0 {
		t.Errorf("pool = %d", pool.Available())
	}
	withoutWarm = sim.Elapse(func(c *sim.VClock) {
		o := NewOps(c, sim.Default2013(), pool) // now empty
		o.ReplaceNode(100e9)
	})
	if withWarm >= withoutWarm {
		t.Errorf("warm replacement (%v) should beat cold (%v)", withWarm, withoutWarm)
	}
}

func TestWarmPool(t *testing.T) {
	p := NewWarmPool(3)
	if got := p.Take(2); got != 2 {
		t.Errorf("Take(2) = %d", got)
	}
	if got := p.Take(5); got != 1 {
		t.Errorf("Take(5) = %d", got)
	}
	p.Return(4)
	if p.Available() != 4 {
		t.Errorf("Available = %d", p.Available())
	}
}

func TestHostManager(t *testing.T) {
	clock := sim.NewVClock(time.Unix(0, 0))
	h := NewHostManager(3, clock)
	clock.Go(func() {
		if !h.CheckHealth(func() error { return nil }) {
			t.Error("healthy probe reported unhealthy")
		}
		if h.CheckHealth(func() error { return fmt.Errorf("oom") }) {
			t.Error("failing probe reported healthy")
		}
	})
	clock.Run()
	if h.Restarts() != 1 {
		t.Errorf("restarts = %d", h.Restarts())
	}
	events := h.Events()
	if len(events) != 2 || events[1].Kind != "engine-restart" {
		t.Errorf("events = %+v", events)
	}
	if h.AppendLog(600, 1000) {
		t.Error("rotated too early")
	}
	if !h.AppendLog(600, 1000) {
		t.Error("did not rotate at limit")
	}
}

// realDB builds a small populated database for the real-resize test.
func realDB(t *testing.T, nodes int) *core.Database {
	t.Helper()
	db, err := core.Open(core.Config{
		Cluster:   cluster.Config{Nodes: nodes, SlicesPerNode: 2, BlockCap: 32},
		DataStore: s3sim.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE TABLE m (k BIGINT, v VARCHAR(16)) DISTSTYLE KEY DISTKEY(k) SORTKEY(k)`); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "%d|val%d\n", i, i)
	}
	db.DataStore().Put("m/1.csv", []byte(b.String()))
	if _, err := db.Execute(`COPY m FROM 'm/'`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRealResizePreservesDataAndReadability(t *testing.T) {
	src := realDB(t, 2)
	ep := NewEndpoint(src)

	// Kick off resize to 4 nodes; while it runs the source must answer
	// reads and reject writes. (Resize here is fast, so we check the
	// read-only rejection by flipping the flag the same way resize does.)
	src.SetReadOnly(true)
	if _, err := src.Execute(`INSERT INTO m VALUES (9999, 'x')`); err == nil {
		t.Error("write accepted in read-only mode")
	}
	if _, err := src.Execute(`SELECT COUNT(*) FROM m`); err != nil {
		t.Errorf("read failed in read-only mode: %v", err)
	}
	src.SetReadOnly(false)

	stats, err := ResizeDatabase(ep, core.Config{
		Cluster:   cluster.Config{Nodes: 4, SlicesPerNode: 2, BlockCap: 32},
		DataStore: s3sim.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 500 || stats.Tables != 1 || stats.FromNodes != 2 || stats.ToNodes != 4 {
		t.Errorf("stats = %+v", stats)
	}
	dst := ep.DB()
	if dst == src {
		t.Fatal("endpoint did not move")
	}
	if dst.Cluster().NumNodes() != 4 {
		t.Errorf("new cluster nodes = %d", dst.Cluster().NumNodes())
	}
	res, err := dst.Execute(`SELECT COUNT(*), MIN(k), MAX(k) FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 500 || res.Rows[0][1].I != 0 || res.Rows[0][2].I != 499 {
		t.Errorf("resized data = %v", res.Rows)
	}
	// The decommissioned source must stay permanently non-writable: a
	// stale pre-swap handle accepting a write would silently lose it (the
	// endpoint's cluster never sees it). The regression this guards: the
	// old workflow re-enabled writes on the source after the swap.
	if !src.Decommissioned() {
		t.Error("source not decommissioned after the endpoint moved")
	}
	if _, err := src.Execute(`INSERT INTO m VALUES (777, 'stale')`); err == nil {
		t.Error("decommissioned source accepted a write via a pre-swap handle")
	} else if faults.Retryable(err) {
		t.Errorf("decommission rejection must be fatal, not retryable: %v", err)
	}
	// Reads through the stale handle keep working (harmless, snapshot of
	// the old cluster), and the new cluster must not have absorbed the
	// rejected write.
	if res, err := dst.Execute(`SELECT COUNT(*) FROM m`); err != nil || res.Rows[0][0].I != 500 {
		t.Errorf("post-resize count = %v, %v", res.Rows, err)
	}
}

func TestResizeDownToFewerNodes(t *testing.T) {
	src := realDB(t, 4)
	ep := NewEndpoint(src)
	if _, err := ResizeDatabase(ep, core.Config{
		Cluster:   cluster.Config{Nodes: 1, SlicesPerNode: 2, BlockCap: 32},
		DataStore: s3sim.New(),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := ep.DB().Execute(`SELECT COUNT(*) FROM m`)
	if err != nil || res.Rows[0][0].I != 500 {
		t.Fatalf("shrunk cluster count = %v, %v", res.Rows, err)
	}
}

func TestMaintenanceDaemonLoop(t *testing.T) {
	src := realDB(t, 2)
	ep := NewEndpoint(src)
	// Degrade the table with several small runs on one slice (constant
	// distribution key → every insert lands on the same shard).
	for i := 0; i < 6; i++ {
		if _, err := src.Execute(`INSERT INTO m VALUES (7, 'x')`); err != nil {
			t.Fatal(err)
		}
	}
	d := NewMaintenanceDaemon(sim.Wall{Scale: 1000}, ep, core.DefaultMaintenancePolicy(), time.Second)
	d.Start()
	defer d.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, r := range d.Reports() {
			if len(r.Vacuumed) > 0 {
				return // the daemon self-corrected the table
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never vacuumed the degraded table")
}

func TestMaintenanceDaemonStop(t *testing.T) {
	src := realDB(t, 1)
	d := NewMaintenanceDaemon(sim.Wall{Scale: 1000}, NewEndpoint(src), core.DefaultMaintenancePolicy(), time.Second)
	d.Start()
	d.Stop()
	d.Stop() // idempotent
	n := len(d.Reports())
	time.Sleep(20 * time.Millisecond)
	if len(d.Reports()) > n+1 {
		t.Error("daemon kept running after Stop")
	}
}

func TestEscalatorProvisioningSurvivesEC2Outage(t *testing.T) {
	// §5: "we support the ability to preconfigure nodes in each data
	// center, allowing us to continue to provision and replace nodes for a
	// period of time if there is an Amazon EC2 provisioning interruption."
	var warmErr, coldErr error
	sim.Elapse(func(c *sim.VClock) {
		o := NewOps(c, sim.Default2013(), NewWarmPool(10))
		o.EC2Outage = true
		_, warmErr = o.Provision(8, true) // fully covered by the pool
		_, coldErr = o.Provision(8, true) // only 2 standbys left → fails
	})
	if warmErr != nil {
		t.Errorf("warm-pool provisioning failed during outage: %v", warmErr)
	}
	if coldErr == nil {
		t.Error("cold provisioning succeeded during the EC2 outage")
	}
	// Node replacement likewise keeps working off standbys.
	var replErr error
	sim.Elapse(func(c *sim.VClock) {
		o := NewOps(c, sim.Default2013(), NewWarmPool(1))
		o.EC2Outage = true
		_, replErr = o.ReplaceNode(10e9)
	})
	if replErr != nil {
		t.Errorf("standby replacement failed during outage: %v", replErr)
	}
}

func TestFleetPatcherTwoVersionRule(t *testing.T) {
	var (
		wave1, wave2 WaveResult
		err2, err3   error
		versions     []int
	)
	healthy := map[string]bool{"a": true, "b": false, "c": true}
	sim.Elapse(func(c *sim.VClock) {
		ops := NewOps(c, sim.Default2013(), nil)
		f := NewFleetPatcher(ops)
		for _, cl := range []string{"a", "b", "c"} {
			f.Register(cl, 1)
		}
		// Wave to v2: b's telemetry regresses → rollback, fleet spans {1,2}.
		wave1, _ = f.RollOut(2, nil, func(cl string) bool { return healthy[cl] })
		versions = f.Versions()
		// v3 must be refused while v1 stragglers exist.
		_, err2 = f.RollOut(3, nil, nil)
		// Fix b, retry stragglers, then v3 ships.
		healthy["b"] = true
		wave2, _ = f.RetryStragglers(nil, func(cl string) bool { return healthy[cl] })
		_, err3 = f.RollOut(3, nil, nil)
	})
	if len(wave1.Patched) != 2 || len(wave1.RolledBack) != 1 || wave1.RolledBack[0] != "b" {
		t.Fatalf("wave1 = %+v", wave1)
	}
	if len(versions) != 2 {
		t.Fatalf("fleet spans %v, want exactly two versions", versions)
	}
	if err2 == nil {
		t.Fatal("third version admitted while fleet spans two")
	}
	if len(wave2.Patched) != 1 || wave2.Patched[0] != "b" {
		t.Fatalf("wave2 = %+v", wave2)
	}
	if err3 != nil {
		t.Fatalf("v3 rollout after convergence: %v", err3)
	}
}

func TestFleetPatcherValidation(t *testing.T) {
	sim.Elapse(func(c *sim.VClock) {
		ops := NewOps(c, sim.Default2013(), nil)
		f := NewFleetPatcher(ops)
		if _, err := f.RollOut(1, nil, nil); err == nil {
			t.Error("empty fleet rollout accepted")
		}
		f.Register("a", 5)
		if _, err := f.RollOut(9, nil, nil); err == nil {
			t.Error("version skip accepted")
		}
		if _, err := f.RollOut(6, nil, nil); err != nil {
			t.Errorf("valid rollout rejected: %v", err)
		}
		if got := f.Versions(); len(got) != 1 || got[0] != 6 {
			t.Errorf("versions = %v", got)
		}
	})
}

func TestWorkflowFamily(t *testing.T) {
	cases := map[string]string{
		"provision-16":   "provision",
		"resize-2-to-16": "resize",
		"patch-8":        "patch",
		"rollback-8":     "rollback",
		"connect":        "connect",
		"replace-node":   "replace-node",
		"backup-128":     "backup",
	}
	for in, want := range cases {
		if got := workflowFamily(in); got != want {
			t.Errorf("workflowFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEngineEmitsWorkflowMetrics(t *testing.T) {
	clock := sim.NewVClock(time.Unix(0, 0))
	e := NewEngine(clock, sim.Default2013())
	reg := telemetry.NewRegistry()
	e.Metrics = reg
	clock.Go(func() {
		e.Run("provision-4", Step{Name: "ok", Do: func() error { return nil }})
		e.Run("provision-16", Step{Name: "ok", Do: func() error { return nil }})
		e.Run("patch-4", Step{Name: "boom", Do: func() error { return fmt.Errorf("nope") }})
	})
	clock.Run()
	if got := reg.Counter("controlplane_provision_runs").Value(); got != 2 {
		t.Errorf("provision runs = %d", got)
	}
	if got := reg.Counter("controlplane_patch_runs").Value(); got != 1 {
		t.Errorf("patch runs = %d", got)
	}
	if got := reg.Counter("controlplane_patch_failures").Value(); got != 1 {
		t.Errorf("patch failures = %d", got)
	}
	if got := reg.Counter("controlplane_provision_failures").Value(); got != 0 {
		t.Errorf("provision failures = %d", got)
	}
	if got := reg.Histogram("controlplane_workflow_seconds").Count(); got != 3 {
		t.Errorf("workflow durations observed = %d", got)
	}
}
