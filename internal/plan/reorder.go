package plan

import (
	"strings"

	"redshift/internal/catalog"
	"redshift/internal/sql"
)

// reorderJoins greedily reorders an inner-join chain before binding: the
// largest estimated relation anchors the left side and each step joins the
// smallest remaining relation that has an equality edge to the placed set,
// keeping hash-join build sides small. The rewrite happens on the parse
// tree — before any table registers a column layout — so binding proceeds
// unchanged over the new order. It bails out (returning stmt untouched)
// whenever reordering is disabled, unsafe (outer joins are order barriers)
// or uninformed (any relation's cardinality unknown).
func (b *binder) reorderJoins(stmt *sql.Select) *sql.Select {
	if b.opts.SyntaxJoinOrder || stmt == nil || stmt.From == nil || len(stmt.Joins) == 0 {
		return stmt
	}
	for _, j := range stmt.Joins {
		if j.Kind != sql.InnerJoin {
			return stmt
		}
	}

	// Resolve every relation and its cardinality estimate.
	type rel struct {
		ref *sql.TableRef
		def *catalog.TableDef
		est int64
	}
	refs := append([]*sql.TableRef{stmt.From}, make([]*sql.TableRef, 0, len(stmt.Joins))...)
	for _, j := range stmt.Joins {
		refs = append(refs, j.Table)
	}
	rels := make([]rel, len(refs))
	for i, ref := range refs {
		def, err := b.cat.Get(ref.Table)
		if err != nil {
			return stmt // binder will report the error
		}
		for k := 0; k < i; k++ {
			if strings.EqualFold(refs[k].Name(), ref.Name()) {
				return stmt // duplicate reference; binder reports it
			}
		}
		est, _ := b.tableEstRows(def)
		if est < 0 {
			return stmt // unknown cardinality: keep syntax order
		}
		rels[i] = rel{ref: ref, def: def, est: est}
	}

	// Pool the ON conjuncts with the set of relations each references.
	type conjunct struct {
		expr sql.Expr
		refs map[int]bool
	}
	var pool []conjunct
	for _, j := range stmt.Joins {
		for _, c := range splitAndAST(j.On) {
			used := map[int]bool{}
			if !b.relationsUsed(c, refs, used) {
				return stmt // unresolvable/ambiguous reference: keep order
			}
			pool = append(pool, conjunct{expr: c, refs: used})
		}
	}

	// relsOf splits an equality's operand reference sets; an edge usable at
	// this step has one side entirely within `placed` and the other
	// referencing only the candidate.
	sideRefs := func(e sql.Expr) (map[int]bool, bool) {
		used := map[int]bool{}
		if !b.relationsUsed(e, refs, used) {
			return nil, false
		}
		return used, true
	}
	subset := func(set, of map[int]bool) bool {
		for k := range set {
			if !of[k] {
				return false
			}
		}
		return true
	}
	only := func(set map[int]bool, r int) bool {
		return len(set) == 1 && set[r]
	}

	// Greedy order: largest relation first (it becomes the outermost probe
	// side), then repeatedly the smallest joinable remaining relation.
	n := len(rels)
	base := 0
	for i := 1; i < n; i++ {
		if rels[i].est > rels[base].est {
			base = i
		}
	}
	placed := map[int]bool{base: true}
	order := []int{base}
	for len(order) < n {
		pick := -1
		for r := 0; r < n; r++ {
			if placed[r] {
				continue
			}
			joinable := false
			for _, c := range pool {
				bin, ok := c.expr.(*sql.Binary)
				if !ok || bin.Op != sql.OpEq || !c.refs[r] || !subsetPlus(c.refs, placed, r) {
					continue
				}
				l, lok := sideRefs(bin.Left)
				rr, rok := sideRefs(bin.Right)
				if !lok || !rok {
					continue
				}
				if (len(l) > 0 && subset(l, placed) && only(rr, r)) ||
					(len(rr) > 0 && subset(rr, placed) && only(l, r)) {
					joinable = true
					break
				}
			}
			if joinable && (pick == -1 || rels[r].est < rels[pick].est) {
				pick = r
			}
		}
		if pick == -1 {
			return stmt // no equality edge into the placed set: keep order
		}
		placed[pick] = true
		order = append(order, pick)
	}

	unchanged := true
	for i, r := range order {
		if r != i {
			unchanged = false
			break
		}
	}
	if unchanged {
		return stmt
	}

	// Reassemble: each conjunct attaches to the first step at which all its
	// relations are placed.
	assigned := make([]bool, len(pool))
	out := *stmt
	out.From = rels[order[0]].ref
	out.Joins = make([]sql.Join, 0, n-1)
	placedSoFar := map[int]bool{order[0]: true}
	for _, r := range order[1:] {
		placedSoFar[r] = true
		var on sql.Expr
		for ci, c := range pool {
			if assigned[ci] || !subset(c.refs, placedSoFar) {
				continue
			}
			assigned[ci] = true
			if on == nil {
				on = c.expr
			} else {
				on = &sql.Binary{Op: sql.OpAnd, Left: on, Right: c.expr}
			}
		}
		out.Joins = append(out.Joins, sql.Join{Kind: sql.InnerJoin, Table: rels[r].ref, On: on})
	}

	// Remember the original FROM order so `*` expands identically.
	b.starOrder = make([]int, n)
	for pos, r := range order {
		b.starOrder[r] = pos
	}
	return &out
}

// subsetPlus reports set ⊆ placed ∪ {r}.
func subsetPlus(set, placed map[int]bool, r int) bool {
	for k := range set {
		if k != r && !placed[k] {
			return false
		}
	}
	return true
}

// starTables returns table indexes in the order `SELECT *` should expand
// them: the query's written FROM order, whatever order the planner joined
// the tables in.
func (b *binder) starTables() []int {
	out := make([]int, len(b.plan.Tables))
	if b.starOrder != nil {
		copy(out, b.starOrder)
		return out
	}
	for i := range out {
		out[i] = i
	}
	return out
}

// relationsUsed collects (into `used`) the relations a parse-tree
// expression references. Qualified columns match reference names;
// unqualified columns resolve only when exactly one relation has the
// column. Returns false when any reference cannot be resolved uniquely —
// the caller then abandons reordering and lets the binder report errors
// over the original order.
func (b *binder) relationsUsed(e sql.Expr, refs []*sql.TableRef, used map[int]bool) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *sql.ColumnRef:
		if x.Table != "" {
			for i, ref := range refs {
				if strings.EqualFold(ref.Name(), x.Table) {
					used[i] = true
					return true
				}
			}
			return false
		}
		found := -1
		for i, ref := range refs {
			def, err := b.cat.Get(ref.Table)
			if err != nil {
				return false
			}
			if def.Ordinal(x.Column) >= 0 {
				if found >= 0 {
					return false // ambiguous
				}
				found = i
			}
		}
		if found < 0 {
			return false
		}
		used[found] = true
		return true
	case *sql.Binary:
		return b.relationsUsed(x.Left, refs, used) && b.relationsUsed(x.Right, refs, used)
	case *sql.Unary:
		return b.relationsUsed(x.Expr, refs, used)
	case *sql.IsNull:
		return b.relationsUsed(x.Expr, refs, used)
	case *sql.Between:
		return b.relationsUsed(x.Expr, refs, used) &&
			b.relationsUsed(x.Lo, refs, used) && b.relationsUsed(x.Hi, refs, used)
	case *sql.In:
		if !b.relationsUsed(x.Expr, refs, used) {
			return false
		}
		for _, v := range x.List {
			if !b.relationsUsed(v, refs, used) {
				return false
			}
		}
		return true
	case *sql.Like:
		return b.relationsUsed(x.Expr, refs, used)
	case *sql.Case:
		for _, w := range x.Whens {
			if !b.relationsUsed(w.Cond, refs, used) || !b.relationsUsed(w.Then, refs, used) {
				return false
			}
		}
		if x.Else != nil {
			return b.relationsUsed(x.Else, refs, used)
		}
		return true
	case *sql.FuncCall:
		for _, a := range x.Args {
			if !b.relationsUsed(a, refs, used) {
				return false
			}
		}
		return true
	}
	return true // literals reference nothing
}

// splitAndAST flattens a parse-tree conjunction.
func splitAndAST(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if bin, ok := e.(*sql.Binary); ok && bin.Op == sql.OpAnd {
		return append(splitAndAST(bin.Left), splitAndAST(bin.Right)...)
	}
	return []sql.Expr{e}
}
