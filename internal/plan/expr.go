// Package plan implements the leader node's query planner (§2.1: the leader
// "parses requests, generates & compiles query plans for execution on the
// compute nodes"). It binds a parsed SELECT against the catalog and produces
// a physical plan with:
//
//   - per-table scans with pushed-down predicates and the per-column value
//     ranges the zone maps prune blocks with,
//   - a join strategy per join — co-located, broadcast or shuffle — decided
//     from distribution styles and table statistics,
//   - a two-phase aggregation split (partial per slice, final at the
//     leader), including mergeable state for AVG, COUNT(DISTINCT) and the
//     HLL-backed APPROXIMATE COUNT(DISTINCT),
//   - projection, ordering and limit over the merged stream.
package plan

import (
	"fmt"
	"strings"

	"redshift/internal/sql"
	"redshift/internal/types"
)

// Expr is a bound scalar expression: every column reference is an index
// into a known row layout and every node knows its result type.
type Expr interface {
	fmt.Stringer
	// Type returns the expression's result type.
	Type() types.Type
}

// Col references a column by position in the current row layout.
type Col struct {
	Index int
	T     types.Type
	// Name is kept for EXPLAIN and error messages.
	Name string
}

// Type implements Expr.
func (c *Col) Type() types.Type { return c.T }

func (c *Col) String() string {
	if c.Name != "" {
		return fmt.Sprintf("%s#%d", c.Name, c.Index)
	}
	return fmt.Sprintf("#%d", c.Index)
}

// Const is a constant value.
type Const struct {
	V types.Value
}

// Type implements Expr.
func (c *Const) Type() types.Type { return c.V.T }

func (c *Const) String() string { return c.V.String() }

// Bin is a binary operation with a resolved result type.
type Bin struct {
	Op   sql.BinOp
	L, R Expr
	T    types.Type
}

// Type implements Expr.
func (b *Bin) Type() types.Type { return b.T }

func (b *Bin) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not is logical negation.
type Not struct {
	E Expr
}

// Type implements Expr.
func (*Not) Type() types.Type { return types.Bool }

func (n *Not) String() string { return "NOT " + n.E.String() }

// Neg is arithmetic negation.
type Neg struct {
	E Expr
}

// Type implements Expr.
func (n *Neg) Type() types.Type { return n.E.Type() }

func (n *Neg) String() string { return "-" + n.E.String() }

// IsNull tests for SQL NULL.
type IsNull struct {
	E   Expr
	Not bool
}

// Type implements Expr.
func (*IsNull) Type() types.Type { return types.Bool }

func (i *IsNull) String() string {
	if i.Not {
		return i.E.String() + " IS NOT NULL"
	}
	return i.E.String() + " IS NULL"
}

// InList tests membership in a constant list.
type InList struct {
	E    Expr
	Vals []types.Value
	Not  bool
}

// Type implements Expr.
func (*InList) Type() types.Type { return types.Bool }

func (i *InList) String() string {
	parts := make([]string, len(i.Vals))
	for j, v := range i.Vals {
		parts[j] = v.String()
	}
	op := "IN"
	if i.Not {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", i.E.String(), op, strings.Join(parts, ", "))
}

// Like matches a % / _ pattern against a string expression.
type Like struct {
	E       Expr
	Pattern string
	Not     bool
}

// Type implements Expr.
func (*Like) Type() types.Type { return types.Bool }

func (l *Like) String() string {
	op := "LIKE"
	if l.Not {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'", l.E.String(), op, l.Pattern)
}

// Case is a bound CASE expression.
type Case struct {
	Whens []CaseWhen
	Else  Expr // may be nil
	T     types.Type
}

// CaseWhen is one branch.
type CaseWhen struct {
	Cond, Then Expr
}

// Type implements Expr.
func (c *Case) Type() types.Type { return c.T }

func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// Call is a bound scalar (non-aggregate) function call.
type Call struct {
	Name sql.FuncName
	Args []Expr
	T    types.Type
}

// Type implements Expr.
func (c *Call) Type() types.Type { return c.T }

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// shiftCols returns a copy of e with every Col index moved by delta.
// The planner uses it to rebase a right-table expression into the joined
// row layout.
func shiftCols(e Expr, delta int) Expr {
	if delta == 0 {
		return e
	}
	switch x := e.(type) {
	case *Col:
		return &Col{Index: x.Index + delta, T: x.T, Name: x.Name}
	case *Const:
		return x
	case *Bin:
		return &Bin{Op: x.Op, L: shiftCols(x.L, delta), R: shiftCols(x.R, delta), T: x.T}
	case *Not:
		return &Not{E: shiftCols(x.E, delta)}
	case *Neg:
		return &Neg{E: shiftCols(x.E, delta)}
	case *IsNull:
		return &IsNull{E: shiftCols(x.E, delta), Not: x.Not}
	case *InList:
		return &InList{E: shiftCols(x.E, delta), Vals: x.Vals, Not: x.Not}
	case *Like:
		return &Like{E: shiftCols(x.E, delta), Pattern: x.Pattern, Not: x.Not}
	case *Case:
		out := &Case{T: x.T}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, CaseWhen{shiftCols(w.Cond, delta), shiftCols(w.Then, delta)})
		}
		if x.Else != nil {
			out.Else = shiftCols(x.Else, delta)
		}
		return out
	case *Call:
		out := &Call{Name: x.Name, T: x.T}
		for _, a := range x.Args {
			out.Args = append(out.Args, shiftCols(a, delta))
		}
		return out
	default:
		panic(fmt.Sprintf("plan: shiftCols: unknown node %T", e))
	}
}

// ColsUsed collects the set of column indexes an expression reads. The
// executor uses it to split a scan's columns into the filter's inputs
// and the late-materialized rest.
func ColsUsed(e Expr, set map[int]bool) { colsUsed(e, set) }

// colsUsed collects the set of column indexes an expression reads.
func colsUsed(e Expr, set map[int]bool) {
	switch x := e.(type) {
	case *Col:
		set[x.Index] = true
	case *Const:
	case *Bin:
		colsUsed(x.L, set)
		colsUsed(x.R, set)
	case *Not:
		colsUsed(x.E, set)
	case *Neg:
		colsUsed(x.E, set)
	case *IsNull:
		colsUsed(x.E, set)
	case *InList:
		colsUsed(x.E, set)
	case *Like:
		colsUsed(x.E, set)
	case *Case:
		for _, w := range x.Whens {
			colsUsed(w.Cond, set)
			colsUsed(w.Then, set)
		}
		if x.Else != nil {
			colsUsed(x.Else, set)
		}
	case *Call:
		for _, a := range x.Args {
			colsUsed(a, set)
		}
	case nil:
	default:
		panic(fmt.Sprintf("plan: colsUsed: unknown node %T", e))
	}
}
