package plan

import (
	"strings"
	"testing"

	"redshift/internal/catalog"
	"redshift/internal/compress"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// testCatalog builds the weblog schema the §1 case study uses: a fact table
// distributed by product_id and two dimension tables.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tables := []*catalog.TableDef{
		{
			Name: "clicks",
			Columns: []catalog.ColumnDef{
				{Name: "ts", Type: types.Timestamp, Encoding: compress.Delta},
				{Name: "product_id", Type: types.Int64, Encoding: compress.Raw},
				{Name: "user_id", Type: types.Int64, Encoding: compress.Raw},
				{Name: "url", Type: types.String, Encoding: compress.Text},
				{Name: "latency", Type: types.Float64, Encoding: compress.Raw},
			},
			DistStyle:   catalog.DistKey,
			DistKeyCol:  1,
			SortStyle:   catalog.SortCompound,
			SortKeyCols: []int{0},
		},
		{
			Name: "products",
			Columns: []catalog.ColumnDef{
				{Name: "id", Type: types.Int64, Encoding: compress.Raw},
				{Name: "category", Type: types.String, Encoding: compress.ByteDict},
				{Name: "price", Type: types.Float64, Encoding: compress.Raw},
			},
			DistStyle:  catalog.DistKey,
			DistKeyCol: 0,
		},
		{
			Name: "regions",
			Columns: []catalog.ColumnDef{
				{Name: "id", Type: types.Int64, Encoding: compress.Raw},
				{Name: "name", Type: types.String, Encoding: compress.Raw},
			},
			DistStyle:  catalog.DistAll,
			DistKeyCol: -1,
		},
		{
			Name: "bigdim",
			Columns: []catalog.ColumnDef{
				{Name: "id", Type: types.Int64, Encoding: compress.Raw},
				{Name: "blob", Type: types.String, Encoding: compress.Raw},
			},
			DistStyle:  catalog.DistEven,
			DistKeyCol: -1,
		},
	}
	for _, def := range tables {
		if err := cat.Create(def); err != nil {
			t.Fatal(err)
		}
	}
	// products is small (broadcastable); bigdim is large.
	cat.UpdateStats(2, catalog.TableStats{Rows: 5_000, Cols: make([]catalog.ColumnStats, 3)})
	cat.UpdateStats(4, catalog.TableStats{Rows: 50_000_000, Cols: make([]catalog.ColumnStats, 2)})
	return cat
}

func build(t *testing.T, cat *catalog.Catalog, query string) *Plan {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	p, err := Build(cat, stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	return p
}

func buildErr(t *testing.T, cat *catalog.Catalog, query string) error {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	_, err = Build(cat, stmt.(*sql.Select))
	if err == nil {
		t.Fatalf("plan %q: expected error", query)
	}
	return err
}

func TestSimpleProjectionPlan(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, "SELECT url, latency * 2 AS dbl FROM clicks WHERE product_id = 5")
	if len(p.Tables) != 1 || p.HasAgg || p.Where != nil {
		t.Fatalf("plan = %+v", p)
	}
	scan := p.Tables[0]
	if scan.Filter == nil {
		t.Fatal("predicate not pushed down")
	}
	if len(scan.Ranges) != 1 || scan.Ranges[0].Col != 1 || scan.Ranges[0].Lo.I != 5 || !scan.Ranges[0].HasHi {
		t.Errorf("ranges = %+v", scan.Ranges)
	}
	if got := p.FieldNames; got[0] != "url" || got[1] != "dbl" {
		t.Errorf("names = %v", got)
	}
	if ts := p.FieldTypes(); ts[0] != types.String || ts[1] != types.Float64 {
		t.Errorf("types = %v", ts)
	}
	// NeedCols: product_id (filter), url, latency.
	if got := scan.NeedCols; len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Errorf("NeedCols = %v", got)
	}
}

func TestZoneMapRangeExtraction(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT url FROM clicks
		WHERE ts BETWEEN TIMESTAMP '2014-01-01 00:00:00' AND TIMESTAMP '2014-01-02 00:00:00'
		AND product_id IN (3, 1, 7) AND latency < 0.5`)
	scan := p.Tables[0]
	if len(scan.Ranges) != 4 {
		t.Fatalf("ranges = %+v", scan.Ranges)
	}
	// BETWEEN desugars to two one-sided ranges on ts.
	var tsLo, tsHi, inRange, latRange bool
	for _, r := range scan.Ranges {
		switch {
		case r.Col == 0 && r.HasLo && !r.HasHi:
			tsLo = true
		case r.Col == 0 && r.HasHi && !r.HasLo:
			tsHi = true
		case r.Col == 1:
			inRange = r.Lo.I == 1 && r.Hi.I == 7
		case r.Col == 4:
			latRange = r.HasHi && !r.HasLo && r.Hi.F == 0.5
		}
	}
	if !tsLo || !tsHi || !inRange || !latRange {
		t.Errorf("ranges = %+v", scan.Ranges)
	}
}

func TestCollocatedJoin(t *testing.T) {
	cat := testCatalog(t)
	// products is small enough to broadcast, but collocation must win:
	// both sides are distributed on the join key.
	p := build(t, cat, `SELECT c.url FROM clicks c JOIN products p ON c.product_id = p.id`)
	if len(p.Joins) != 1 {
		t.Fatal("expected one join")
	}
	if p.Joins[0].Strategy != StrategyCollocated {
		t.Errorf("strategy = %v, want DS_DIST_NONE", p.Joins[0].Strategy)
	}
}

func TestBroadcastJoinForDistAll(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT c.url FROM clicks c JOIN regions r ON c.user_id = r.id`)
	if p.Joins[0].Strategy != StrategyBroadcast {
		t.Errorf("strategy = %v, want DS_BCAST_INNER", p.Joins[0].Strategy)
	}
}

func TestBroadcastJoinForSmallTable(t *testing.T) {
	cat := testCatalog(t)
	// Join products on a non-distkey column: not collocated, but small.
	p := build(t, cat, `SELECT c.url FROM clicks c JOIN products p ON c.user_id = p.id`)
	if p.Joins[0].Strategy != StrategyBroadcast {
		t.Errorf("strategy = %v, want DS_BCAST_INNER", p.Joins[0].Strategy)
	}
}

func TestShuffleJoinForLargeMisaligned(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT c.url FROM clicks c JOIN bigdim b ON c.user_id = b.id`)
	if p.Joins[0].Strategy != StrategyShuffle {
		t.Errorf("strategy = %v, want DS_DIST_BOTH", p.Joins[0].Strategy)
	}
}

func TestJoinResidualAndKeyExtraction(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT c.url FROM clicks c JOIN products p
		ON c.product_id = p.id AND c.latency > p.price`)
	j := p.Joins[0]
	if len(j.LeftKeys) != 1 || len(j.RightKeys) != 1 {
		t.Fatalf("keys = %v / %v", j.LeftKeys, j.RightKeys)
	}
	if j.Residual == nil {
		t.Error("non-equi conjunct should become residual")
	}
	// Right key must be table-local (products.id is ordinal 0).
	rc := j.RightKeys[0].(*Col)
	if rc.Index != 0 {
		t.Errorf("right key index = %d, want table-local 0", rc.Index)
	}
}

func TestLeftJoinRestrictions(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT c.url FROM clicks c LEFT JOIN products p ON c.product_id = p.id WHERE p.price IS NULL`)
	// Predicate on the null-extended side must NOT be pushed down.
	if p.Tables[1].Filter != nil {
		t.Error("filter wrongly pushed below LEFT JOIN")
	}
	if p.Where == nil {
		t.Error("residual WHERE missing")
	}
	buildErr(t, cat, `SELECT c.url FROM clicks c LEFT JOIN products p ON c.product_id = p.id AND c.latency > p.price`)
}

func TestAggregatePlan(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT category, COUNT(*) AS n, SUM(price) AS total, AVG(price),
			APPROXIMATE COUNT(DISTINCT id)
		FROM products GROUP BY category HAVING COUNT(*) > 2`)
	if !p.HasAgg || len(p.GroupBy) != 1 || len(p.Aggs) != 4 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Aggs[0].Func != sql.FuncCount || p.Aggs[0].Arg != nil {
		t.Errorf("agg0 = %+v", p.Aggs[0])
	}
	if p.Aggs[1].T != types.Float64 || p.Aggs[2].T != types.Float64 {
		t.Errorf("agg types: %v %v", p.Aggs[1].T, p.Aggs[2].T)
	}
	if !p.Aggs[3].Approx || !p.Aggs[3].Distinct {
		t.Errorf("approx = %+v", p.Aggs[3])
	}
	// Projections: group ref then agg refs.
	if c := p.Project[0].(*Col); c.Index != 0 {
		t.Errorf("project[0] = %v", p.Project[0])
	}
	if c := p.Project[1].(*Col); c.Index != 1 {
		t.Errorf("project[1] = %v", p.Project[1])
	}
	if p.Having == nil {
		t.Error("HAVING missing")
	}
	// HAVING must reuse the COUNT(*) aggregate, not add a fifth.
	if len(p.Aggs) != 4 {
		t.Errorf("aggregate dedup failed: %d aggs", len(p.Aggs))
	}
}

func TestScalarAggregateNoGroupBy(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT COUNT(*), MIN(price), MAX(category) FROM products`)
	if !p.HasAgg || len(p.GroupBy) != 0 || len(p.Aggs) != 3 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Aggs[1].T != types.Float64 || p.Aggs[2].T != types.String {
		t.Errorf("types = %v %v", p.Aggs[1].T, p.Aggs[2].T)
	}
}

func TestGroupByExpressionMatch(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT year(ts), COUNT(*) FROM clicks GROUP BY year(ts)`)
	if len(p.GroupBy) != 1 {
		t.Fatalf("groups = %v", p.GroupBy)
	}
	if c, ok := p.Project[0].(*Col); !ok || c.Index != 0 {
		t.Errorf("project[0] should be group ref, got %v", p.Project[0])
	}
}

func TestNonGroupedColumnRejected(t *testing.T) {
	cat := testCatalog(t)
	err := buildErr(t, cat, `SELECT url, COUNT(*) FROM clicks GROUP BY product_id`)
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("err = %v", err)
	}
}

func TestOrderByResolution(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT category, COUNT(*) AS n FROM products GROUP BY category ORDER BY n DESC, category`)
	if len(p.OrderBy) != 2 || p.OrderBy[0].Index != 1 || !p.OrderBy[0].Desc || p.OrderBy[1].Index != 0 {
		t.Errorf("order = %+v", p.OrderBy)
	}
	// Structural match without alias.
	p = build(t, cat, `SELECT category, COUNT(*) FROM products GROUP BY category ORDER BY COUNT(*) DESC`)
	if p.OrderBy[0].Index != 1 {
		t.Errorf("order = %+v", p.OrderBy)
	}
	buildErr(t, cat, `SELECT category FROM products GROUP BY category ORDER BY price`)
}

func TestStarExpansion(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT * FROM products`)
	if len(p.Project) != 3 || p.FieldNames[0] != "id" || p.FieldNames[2] != "price" {
		t.Errorf("star: %v", p.FieldNames)
	}
	p = build(t, cat, `SELECT * FROM clicks c JOIN products p ON c.product_id = p.id`)
	if len(p.Project) != 8 {
		t.Errorf("joined star: %d fields", len(p.Project))
	}
}

func TestAmbiguityAndMissingColumns(t *testing.T) {
	cat := testCatalog(t)
	buildErr(t, cat, `SELECT id FROM products p JOIN regions r ON p.id = r.id`) // ambiguous
	buildErr(t, cat, `SELECT nope FROM products`)
	buildErr(t, cat, `SELECT p.nope FROM products p`)
	buildErr(t, cat, `SELECT x.id FROM products p`)
	buildErr(t, cat, `SELECT id FROM nosuchtable`)
	buildErr(t, cat, `SELECT p.id FROM products p JOIN products p ON p.id = p.id`) // dup alias
}

func TestTypeErrors(t *testing.T) {
	cat := testCatalog(t)
	buildErr(t, cat, `SELECT url + 1 FROM clicks`)
	buildErr(t, cat, `SELECT * FROM clicks WHERE url`)
	buildErr(t, cat, `SELECT * FROM clicks WHERE url > 5`)
	buildErr(t, cat, `SELECT SUM(url) FROM clicks`)
	buildErr(t, cat, `SELECT AVG(url) FROM clicks`)
	buildErr(t, cat, `SELECT * FROM clicks WHERE latency LIKE 'x%'`)
	buildErr(t, cat, `SELECT NOT latency FROM clicks`)
	buildErr(t, cat, `SELECT -url FROM clicks`)
	buildErr(t, cat, `SELECT CASE WHEN latency > 1 THEN 'a' ELSE 2 END FROM clicks`)
	buildErr(t, cat, `SELECT COUNT(*) FROM clicks HAVING SUM(latency)`)
	buildErr(t, cat, `SELECT product_id IN (url) FROM clicks`)
}

func TestJoinWithoutEquiKeyRejected(t *testing.T) {
	cat := testCatalog(t)
	buildErr(t, cat, `SELECT c.url FROM clicks c JOIN products p ON c.latency > p.price`)
}

func TestNumericPromotion(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT product_id + latency FROM clicks`)
	if p.Project[0].Type() != types.Float64 {
		t.Errorf("int+float = %v", p.Project[0].Type())
	}
	p = build(t, cat, `SELECT product_id / 2 FROM clicks`)
	if p.Project[0].Type() != types.Int64 {
		t.Errorf("int/int = %v", p.Project[0].Type())
	}
	p = build(t, cat, `SELECT * FROM clicks WHERE latency > 1`)
	if p.Tables[0].Filter == nil {
		t.Error("promoted comparison should still push down")
	}
}

func TestDateArithmetic(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT ts + 1 FROM clicks`)
	if p.Project[0].Type() != types.Timestamp {
		t.Errorf("ts+1 = %v", p.Project[0].Type())
	}
}

func TestExplainRendering(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT category, COUNT(*) AS n FROM clicks c JOIN products p ON c.product_id = p.id
		WHERE c.latency < 1 GROUP BY category ORDER BY n DESC LIMIT 10`)
	out := p.Explain()
	for _, want := range []string{"XN Limit", "XN Merge", "XN HashAggregate", "Hash Join DS_DIST_NONE", "Seq Scan on clicks", "Seq Scan on products", "zone-map"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
}

func TestSchemaOutput(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT category AS cat, COUNT(*) AS n FROM products GROUP BY category`)
	s := p.Schema()
	if s.Columns[0].Name != "cat" || s.Columns[0].Type != types.String ||
		s.Columns[1].Name != "n" || s.Columns[1].Type != types.Int64 {
		t.Errorf("schema = %+v", s)
	}
}

func TestAggContextExpressionForms(t *testing.T) {
	cat := testCatalog(t)
	// Scalar calls, CASE, IS NULL and arithmetic over aggregate results —
	// the bindAggExpr rewriting paths.
	p := build(t, cat, `
		SELECT UPPER(category),
		       CASE WHEN COUNT(*) > 10 THEN 'hot' ELSE 'cold' END AS heat,
		       SUM(price) / COUNT(*) AS unit,
		       MIN(price) IS NULL AS empty,
		       -MAX(price) AS neg,
		       NOT (COUNT(*) = 0) AS nonempty,
		       3 AS constant
		FROM products GROUP BY category`)
	if len(p.Aggs) != 4 { // COUNT(*), SUM(price), MIN(price), MAX(price)
		t.Fatalf("aggs = %v", p.Aggs)
	}
	wantTypes := []types.Type{types.String, types.String, types.Float64, types.Bool, types.Float64, types.Bool, types.Int64}
	for i, w := range wantTypes {
		if got := p.Project[i].Type(); got != w {
			t.Errorf("project[%d] type = %v, want %v", i, got, w)
		}
	}
}

func TestAggContextErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []string{
		`SELECT price + COUNT(*) FROM products GROUP BY category`,       // raw column mixed into agg expr
		`SELECT LOWER(category), COUNT(*) FROM products GROUP BY price`, // non-grouped column in scalar call
		`SELECT SUM(price, id) FROM products`,                           // arity
		`SELECT MIN(price) FROM products GROUP BY nosuch`,               // bad group column
	}
	for _, q := range cases {
		buildErr(t, cat, q)
	}
}

func TestBindScalar(t *testing.T) {
	e, err := sql.ParseExpr(`1 + 2 * 3`)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BindScalar(e)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Type() != types.Int64 {
		t.Errorf("type = %v", bound.Type())
	}
	colRef, _ := sql.ParseExpr(`some_column`)
	if _, err := BindScalar(colRef); err == nil {
		t.Error("column reference bound without tables")
	}
}

func TestExplainScalarAggAndDistinct(t *testing.T) {
	cat := testCatalog(t)
	p := build(t, cat, `SELECT DISTINCT COUNT(*) FROM products`)
	out := p.Explain()
	for _, want := range []string{"XN Unique", "XN Aggregate"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
}

func TestJoinStrategyStrings(t *testing.T) {
	if StrategyCollocated.String() != "DS_DIST_NONE" ||
		StrategyBroadcast.String() != "DS_BCAST_INNER" ||
		StrategyShuffle.String() != "DS_DIST_BOTH" {
		t.Error("strategy names wrong")
	}
}
