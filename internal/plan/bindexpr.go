package plan

import (
	"strings"

	"redshift/internal/sql"
	"redshift/internal/types"
)

// bindExpr binds a parse-tree expression over the joined row layout.
// Aggregate calls are rejected; bindAggExpr handles aggregate contexts.
func (b *binder) bindExpr(e sql.Expr) (Expr, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return &Const{V: x.Value}, nil

	case *sql.ColumnRef:
		return b.resolveColumn(x)

	case *sql.Binary:
		l, err := b.bindExpr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.Right)
		if err != nil {
			return nil, err
		}
		return typeBinary(x.Op, l, r)

	case *sql.Unary:
		inner, err := b.bindExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			if inner.Type() != types.Bool {
				return nil, errf("NOT requires a boolean, got %s", inner.Type())
			}
			return &Not{E: inner}, nil
		}
		if !inner.Type().Numeric() {
			return nil, errf("unary minus requires a numeric, got %s", inner.Type())
		}
		return &Neg{E: inner}, nil

	case *sql.IsNull:
		inner, err := b.bindExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: inner, Not: x.Not}, nil

	case *sql.Between:
		// Desugar to (e >= lo AND e <= hi), so pushdown and zone-map range
		// extraction see plain comparisons.
		inner, err := b.bindExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(x.Hi)
		if err != nil {
			return nil, err
		}
		ge, err := typeBinary(sql.OpGe, inner, lo)
		if err != nil {
			return nil, err
		}
		le, err := typeBinary(sql.OpLe, inner, hi)
		if err != nil {
			return nil, err
		}
		var out Expr = &Bin{Op: sql.OpAnd, L: ge, R: le, T: types.Bool}
		if x.Not {
			out = &Not{E: out}
		}
		return out, nil

	case *sql.In:
		inner, err := b.bindExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		list := &InList{E: inner, Not: x.Not}
		for _, item := range x.List {
			lit, ok := item.(*sql.Literal)
			if !ok {
				return nil, errf("IN list items must be literals, got %s", item)
			}
			v := lit.Value
			v, err := coerceValue(v, inner.Type())
			if err != nil {
				return nil, err
			}
			list.Vals = append(list.Vals, v)
		}
		return list, nil

	case *sql.Like:
		inner, err := b.bindExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		if inner.Type() != types.String {
			return nil, errf("LIKE requires a string, got %s", inner.Type())
		}
		return &Like{E: inner, Pattern: x.Pattern, Not: x.Not}, nil

	case *sql.Case:
		out := &Case{}
		for _, w := range x.Whens {
			cond, err := b.bindExpr(w.Cond)
			if err != nil {
				return nil, err
			}
			if cond.Type() != types.Bool {
				return nil, errf("CASE WHEN requires a boolean, got %s", cond.Type())
			}
			then, err := b.bindExpr(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, CaseWhen{Cond: cond, Then: then})
		}
		if x.Else != nil {
			e, err := b.bindExpr(x.Else)
			if err != nil {
				return nil, err
			}
			out.Else = e
		}
		t, err := caseType(out)
		if err != nil {
			return nil, err
		}
		out.T = t
		return out, nil

	case *sql.FuncCall:
		if x.IsAggregate() {
			return nil, errf("aggregate %s is not allowed here", x.Name)
		}
		return b.bindScalarCall(x)

	default:
		return nil, errf("unsupported expression %s", e)
	}
}

// bindAggExpr binds an expression in aggregate context: aggregate calls
// become references into the aggregate layout [group keys..., aggs...], and
// subexpressions structurally equal to a GROUP BY key become group
// references. Any other base-column reference is an error.
func (b *binder) bindAggExpr(e sql.Expr) (Expr, error) {
	// GROUP BY match: bind in plain mode (only valid if aggregate-free)
	// and compare renderings. A non-matching subtree is not an error yet —
	// the structural walk below may find group keys or aggregates inside
	// it (UPPER(category) with GROUP BY category recurses into the arg).
	if !containsAggregate(e) {
		if plain, err := b.bindExpr(e); err == nil {
			want := plain.String()
			for gi, g := range b.plan.GroupBy {
				if g.String() == want {
					return &Col{Index: gi, T: g.Type(), Name: "group"}, nil
				}
			}
			set := map[int]bool{}
			colsUsed(plain, set)
			if len(set) == 0 {
				return plain, nil // constant expression
			}
		}
	}
	switch x := e.(type) {
	case *sql.FuncCall:
		if x.IsAggregate() {
			return b.addAggregate(x)
		}
		// Scalar call over aggregate subexpressions.
		out := &Call{Name: x.Name}
		for _, a := range x.Args {
			bound, err := b.bindAggExpr(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, bound)
		}
		t, err := scalarCallType(out)
		if err != nil {
			return nil, err
		}
		out.T = t
		return out, nil
	case *sql.Binary:
		l, err := b.bindAggExpr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := b.bindAggExpr(x.Right)
		if err != nil {
			return nil, err
		}
		return typeBinary(x.Op, l, r)
	case *sql.Unary:
		inner, err := b.bindAggExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &Not{E: inner}, nil
		}
		return &Neg{E: inner}, nil
	case *sql.IsNull:
		inner, err := b.bindAggExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: inner, Not: x.Not}, nil
	case *sql.Between:
		inner, err := b.bindAggExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindAggExpr(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindAggExpr(x.Hi)
		if err != nil {
			return nil, err
		}
		ge, err := typeBinary(sql.OpGe, inner, lo)
		if err != nil {
			return nil, err
		}
		le, err := typeBinary(sql.OpLe, inner, hi)
		if err != nil {
			return nil, err
		}
		var out Expr = &Bin{Op: sql.OpAnd, L: ge, R: le, T: types.Bool}
		if x.Not {
			out = &Not{E: out}
		}
		return out, nil
	case *sql.In:
		inner, err := b.bindAggExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		list := &InList{E: inner, Not: x.Not}
		for _, item := range x.List {
			lit, ok := item.(*sql.Literal)
			if !ok {
				return nil, errf("IN list items must be literals, got %s", item)
			}
			v, err := coerceValue(lit.Value, inner.Type())
			if err != nil {
				return nil, err
			}
			list.Vals = append(list.Vals, v)
		}
		return list, nil
	case *sql.Like:
		inner, err := b.bindAggExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		if inner.Type() != types.String {
			return nil, errf("LIKE requires a string, got %s", inner.Type())
		}
		return &Like{E: inner, Pattern: x.Pattern, Not: x.Not}, nil
	case *sql.Case:
		out := &Case{}
		for _, w := range x.Whens {
			cond, err := b.bindAggExpr(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := b.bindAggExpr(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, CaseWhen{Cond: cond, Then: then})
		}
		if x.Else != nil {
			inner, err := b.bindAggExpr(x.Else)
			if err != nil {
				return nil, err
			}
			out.Else = inner
		}
		t, err := caseType(out)
		if err != nil {
			return nil, err
		}
		out.T = t
		return out, nil
	default:
		return nil, errf("%s must appear in GROUP BY or inside an aggregate", e)
	}
}

// addAggregate registers (or reuses) an aggregate and returns its reference
// in the aggregate layout.
func (b *binder) addAggregate(x *sql.FuncCall) (Expr, error) {
	spec := AggSpec{Func: x.Name, Distinct: x.Distinct, Approx: x.Approximate}
	if x.Star {
		spec.T = types.Int64
	} else {
		if len(x.Args) != 1 {
			return nil, errf("%s takes exactly one argument", x.Name)
		}
		arg, err := b.bindExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		spec.Arg = arg
		switch x.Name {
		case sql.FuncCount:
			spec.T = types.Int64
		case sql.FuncAvg:
			if !arg.Type().Numeric() {
				return nil, errf("AVG requires a numeric argument, got %s", arg.Type())
			}
			spec.T = types.Float64
		case sql.FuncSum:
			if !arg.Type().Numeric() {
				return nil, errf("SUM requires a numeric argument, got %s", arg.Type())
			}
			spec.T = arg.Type()
			if spec.T == types.Date || spec.T == types.Timestamp {
				return nil, errf("SUM of %s is not supported", spec.T)
			}
		case sql.FuncMin, sql.FuncMax:
			spec.T = arg.Type()
		}
	}
	// Reuse an identical aggregate.
	for i, existing := range b.plan.Aggs {
		if existing.String() == spec.String() {
			return &Col{Index: len(b.plan.GroupBy) + i, T: existing.T, Name: "agg"}, nil
		}
	}
	b.plan.Aggs = append(b.plan.Aggs, spec)
	return &Col{Index: len(b.plan.GroupBy) + len(b.plan.Aggs) - 1, T: spec.T, Name: "agg"}, nil
}

// resolveColumn finds a (possibly qualified) column in the joined layout.
func (b *binder) resolveColumn(ref *sql.ColumnRef) (*Col, error) {
	found := -1
	var typ types.Type
	for ti, scan := range b.plan.Tables {
		if ref.Table != "" && !strings.EqualFold(b.refNames[ti], ref.Table) {
			continue
		}
		ord := scan.Def.Ordinal(ref.Column)
		if ord < 0 {
			continue
		}
		if found >= 0 {
			return nil, errf("column reference %s is ambiguous", ref)
		}
		found = scan.BaseCol + ord
		typ = scan.Def.Columns[ord].Type
	}
	if found < 0 {
		if ref.Table != "" {
			return nil, errf("column %s.%s does not exist", ref.Table, ref.Column)
		}
		return nil, errf("column %s does not exist", ref.Column)
	}
	return &Col{Index: found, T: typ, Name: ref.Column}, nil
}

// bindScalarCall binds a non-aggregate function.
func (b *binder) bindScalarCall(x *sql.FuncCall) (Expr, error) {
	out := &Call{Name: x.Name}
	for _, a := range x.Args {
		bound, err := b.bindExpr(a)
		if err != nil {
			return nil, err
		}
		out.Args = append(out.Args, bound)
	}
	t, err := scalarCallType(out)
	if err != nil {
		return nil, err
	}
	out.T = t
	return out, nil
}

// scalarCallType type-checks a scalar call.
func scalarCallType(c *Call) (types.Type, error) {
	argn := func(n int) error {
		if len(c.Args) != n {
			return errf("%s takes %d argument(s), got %d", c.Name, n, len(c.Args))
		}
		return nil
	}
	switch c.Name {
	case sql.FuncLower, sql.FuncUpper:
		if err := argn(1); err != nil {
			return 0, err
		}
		if c.Args[0].Type() != types.String {
			return 0, errf("%s requires a string", c.Name)
		}
		return types.String, nil
	case sql.FuncLength:
		if err := argn(1); err != nil {
			return 0, err
		}
		if c.Args[0].Type() != types.String {
			return 0, errf("LENGTH requires a string")
		}
		return types.Int64, nil
	case sql.FuncAbs:
		if err := argn(1); err != nil {
			return 0, err
		}
		t := c.Args[0].Type()
		if t != types.Int64 && t != types.Float64 {
			return 0, errf("ABS requires a number")
		}
		return t, nil
	case sql.FuncCoalesce:
		if len(c.Args) == 0 {
			return 0, errf("COALESCE requires at least one argument")
		}
		// Untyped NULL literals adopt the result type.
		t := types.Invalid
		for _, a := range c.Args {
			at := a.Type()
			switch {
			case at == types.Invalid:
			case t == types.Invalid || at == t:
				t = at
			case (at == types.Int64 && t == types.Float64) || (at == types.Float64 && t == types.Int64):
				t = types.Float64
			default:
				return 0, errf("COALESCE arguments must share a type")
			}
		}
		if t == types.Invalid {
			return 0, errf("COALESCE needs at least one typed argument")
		}
		for i, a := range c.Args {
			if cst, ok := a.(*Const); ok && cst.V.Null && cst.V.T == types.Invalid {
				c.Args[i] = &Const{V: types.NewNull(t)}
			}
		}
		return t, nil
	case sql.FuncDateTrunc:
		if err := argn(2); err != nil {
			return 0, err
		}
		cst, ok := c.Args[0].(*Const)
		if !ok || cst.V.T != types.String {
			return 0, errf("DATE_TRUNC requires a unit literal")
		}
		switch strings.ToLower(cst.V.S) {
		case "year", "quarter", "month", "week", "day", "hour", "minute":
		default:
			return 0, errf("DATE_TRUNC: unsupported unit %q", cst.V.S)
		}
		if t := c.Args[1].Type(); t != types.Timestamp && t != types.Date {
			return 0, errf("DATE_TRUNC requires a timestamp or date")
		}
		return c.Args[1].Type(), nil
	case sql.FuncExtractYear, sql.FuncExtractMonth:
		if err := argn(1); err != nil {
			return 0, err
		}
		if t := c.Args[0].Type(); t != types.Timestamp && t != types.Date {
			return 0, errf("%s requires a timestamp or date", c.Name)
		}
		return types.Int64, nil
	default:
		return 0, errf("unknown function %s", c.Name)
	}
}

// typeBinary type-checks a binary operation, inserting numeric promotions
// and adopting a type for untyped NULL literals.
func typeBinary(op sql.BinOp, l, r Expr) (Expr, error) {
	l, r = adoptNullType(l, r)
	lt, rt := l.Type(), r.Type()
	switch op {
	case sql.OpAnd, sql.OpOr:
		if lt != types.Bool || rt != types.Bool {
			return nil, errf("%s requires booleans, got %s and %s", op, lt, rt)
		}
		return &Bin{Op: op, L: l, R: r, T: types.Bool}, nil

	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		if lt == rt {
			return &Bin{Op: op, L: l, R: r, T: types.Bool}, nil
		}
		if isNumericPair(lt, rt) {
			return &Bin{Op: op, L: promote(l), R: promote(r), T: types.Bool}, nil
		}
		return nil, errf("cannot compare %s with %s", lt, rt)

	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
		// Date/Timestamp ± integer keeps the temporal type.
		if (lt == types.Date || lt == types.Timestamp) && rt == types.Int64 && (op == sql.OpAdd || op == sql.OpSub) {
			return &Bin{Op: op, L: l, R: r, T: lt}, nil
		}
		if lt == rt && lt == types.Int64 {
			return &Bin{Op: op, L: l, R: r, T: types.Int64}, nil
		}
		if isNumericPair(lt, rt) && op != sql.OpMod {
			return &Bin{Op: op, L: promote(l), R: promote(r), T: types.Float64}, nil
		}
		return nil, errf("cannot apply %s to %s and %s", op, lt, rt)
	default:
		return nil, errf("unknown operator %s", op)
	}
}

// adoptNullType gives an untyped NULL constant the type of the other side.
func adoptNullType(l, r Expr) (Expr, Expr) {
	if c, ok := l.(*Const); ok && c.V.Null && c.V.T == types.Invalid {
		l = &Const{V: types.NewNull(r.Type())}
	}
	if c, ok := r.(*Const); ok && c.V.Null && c.V.T == types.Invalid {
		r = &Const{V: types.NewNull(l.Type())}
	}
	return l, r
}

func isNumericPair(a, b types.Type) bool {
	num := func(t types.Type) bool { return t == types.Int64 || t == types.Float64 }
	return num(a) && num(b)
}

// promote wraps an Int64 expression so it evaluates as Float64.
func promote(e Expr) Expr {
	if e.Type() != types.Int64 {
		return e
	}
	if c, ok := e.(*Const); ok {
		return &Const{V: types.NewFloat(float64(c.V.I))}
	}
	return &Call{Name: sql.FuncFloat, Args: []Expr{e}, T: types.Float64}
}

// caseType computes the result type of a CASE expression.
func caseType(c *Case) (types.Type, error) {
	var t types.Type
	consider := func(e Expr) error {
		et := e.Type()
		if t == types.Invalid || t == et {
			if et != types.Invalid {
				t = et
			}
			return nil
		}
		if isNumericPair(t, et) {
			t = types.Float64
			return nil
		}
		return errf("CASE branches must share a type (%s vs %s)", t, et)
	}
	for _, w := range c.Whens {
		if err := consider(w.Then); err != nil {
			return 0, err
		}
	}
	if c.Else != nil {
		if err := consider(c.Else); err != nil {
			return 0, err
		}
	}
	if t == types.Invalid {
		return 0, errf("CASE has no typed branch")
	}
	return t, nil
}

// coerceValue converts a literal to the target type for IN lists and
// comparisons (int↔float only; NULL adopts the target).
func coerceValue(v types.Value, target types.Type) (types.Value, error) {
	if v.Null {
		return types.NewNull(target), nil
	}
	if v.T == target {
		return v, nil
	}
	if v.T == types.Int64 && target == types.Float64 {
		return types.NewFloat(float64(v.I)), nil
	}
	if v.T == types.Float64 && target == types.Int64 {
		if v.F == float64(int64(v.F)) {
			return types.NewInt(int64(v.F)), nil
		}
	}
	return types.Value{}, errf("cannot use %s value %s where %s is required", v.T, v.String(), target)
}
