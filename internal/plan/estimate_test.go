package plan

import (
	"testing"

	"redshift/internal/catalog"
	"redshift/internal/compress"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// starCatalog builds a three-table star schema with full column statistics:
// a 1M-row fact table and two dimensions (100 and 10k rows) joined on
// their primary keys.
func starCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	intCol := func(name string) catalog.ColumnDef {
		return catalog.ColumnDef{Name: name, Type: types.Int64, Encoding: compress.Raw}
	}
	intStats := func(lo, hi, ndv, rows int64) catalog.ColumnStats {
		return catalog.ColumnStats{
			Min: types.NewInt(lo), Max: types.NewInt(hi), NDV: ndv, WidthSum: rows * 8,
		}
	}
	tables := []struct {
		def  *catalog.TableDef
		rows int64
		cols []catalog.ColumnStats
	}{
		{
			def: &catalog.TableDef{
				Name:       "fact",
				Columns:    []catalog.ColumnDef{intCol("id"), intCol("d1"), intCol("d2")},
				DistStyle:  catalog.DistEven,
				DistKeyCol: -1,
			},
			rows: 1_000_000,
			cols: []catalog.ColumnStats{
				intStats(0, 999_999, 1_000_000, 1_000_000),
				intStats(0, 99, 100, 1_000_000),
				intStats(0, 9_999, 10_000, 1_000_000),
			},
		},
		{
			def: &catalog.TableDef{
				Name:       "dimsmall",
				Columns:    []catalog.ColumnDef{intCol("sid"), intCol("sval")},
				DistStyle:  catalog.DistEven,
				DistKeyCol: -1,
			},
			rows: 100,
			cols: []catalog.ColumnStats{intStats(0, 99, 100, 100), intStats(0, 99, 100, 100)},
		},
		{
			def: &catalog.TableDef{
				Name:       "dimmed",
				Columns:    []catalog.ColumnDef{intCol("mid"), intCol("mval")},
				DistStyle:  catalog.DistEven,
				DistKeyCol: -1,
			},
			rows: 10_000,
			cols: []catalog.ColumnStats{intStats(0, 9_999, 10_000, 10_000), intStats(0, 999, 1_000, 10_000)},
		},
	}
	for _, tb := range tables {
		if err := cat.Create(tb.def); err != nil {
			t.Fatal(err)
		}
		if err := cat.ReplaceStats(tb.def.ID, catalog.TableStats{Rows: tb.rows, Cols: tb.cols}); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func buildWith(t *testing.T, cat *catalog.Catalog, opts Options, query string) *Plan {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	p, err := BuildWith(cat, stmt.(*sql.Select), opts)
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	return p
}

// within asserts got is within a multiplicative band of want.
func within(t *testing.T, what string, got, want int64, factor float64) {
	t.Helper()
	lo := int64(float64(want) / factor)
	hi := int64(float64(want) * factor)
	if got < lo || got > hi {
		t.Errorf("%s = %d, want within [%d, %d] (%vx of %d)", what, got, lo, hi, factor, want)
	}
}

func TestEqualitySelectivityEstimate(t *testing.T) {
	cat := starCatalog(t)
	// d1 has NDV 100 over 1M rows: equality keeps ~10k.
	p := build(t, cat, `SELECT id FROM fact WHERE d1 = 5`)
	ph := BuildPhysical(p)
	within(t, "eq-filter scan EstRows", ph.Base.EstRows, 10_000, 1.1)
}

func TestRangeSelectivityInterpolation(t *testing.T) {
	cat := starCatalog(t)
	// id spans [0, 999999]: id < 250000 keeps ~25%.
	p := build(t, cat, `SELECT id FROM fact WHERE id < 250000`)
	ph := BuildPhysical(p)
	within(t, "range-filter scan EstRows", ph.Base.EstRows, 250_000, 1.1)

	// Conjunction multiplies under independence: ~25% of ~10k.
	p = build(t, cat, `SELECT id FROM fact WHERE id < 250000 AND d1 = 5`)
	ph = BuildPhysical(p)
	within(t, "conjunction scan EstRows", ph.Base.EstRows, 2_500, 1.1)
}

func TestJoinCardinalityFromKeyNDV(t *testing.T) {
	cat := starCatalog(t)
	// |fact|*|dimmed| / max(ndv(d2), ndv(mid)) = 1M*10k/10k = 1M.
	p := build(t, cat, `SELECT f.id FROM fact f JOIN dimmed m ON f.d2 = m.mid`)
	ph := BuildPhysical(p)
	within(t, "join EstRows", ph.Joins[0].Probe.EstRows, 1_000_000, 1.1)
}

func TestGroupCountFromKeyNDV(t *testing.T) {
	cat := starCatalog(t)
	p := build(t, cat, `SELECT d1, COUNT(*) FROM fact GROUP BY d1`)
	ph := BuildPhysical(p)
	if ph.PartialAgg.EstRows != 100 {
		t.Errorf("group EstRows = %d, want 100", ph.PartialAgg.EstRows)
	}
	// Scalar aggregate: exactly one row.
	p = build(t, cat, `SELECT COUNT(*) FROM fact`)
	ph = BuildPhysical(p)
	if ph.LeaderAgg.EstRows != 1 {
		t.Errorf("scalar agg EstRows = %d, want 1", ph.LeaderAgg.EstRows)
	}
}

// Every operator of a stats-fresh plan carries an estimate — the tentpole's
// "EstRows on every PhysNode" requirement.
func TestEstRowsOnEveryNode(t *testing.T) {
	cat := starCatalog(t)
	p := build(t, cat, `SELECT m.mval, COUNT(*) AS n FROM fact f
		JOIN dimmed m ON f.d2 = m.mid
		WHERE f.d1 = 3 GROUP BY m.mval ORDER BY n DESC LIMIT 5`)
	ph := BuildPhysical(p)
	for _, n := range ph.Nodes {
		if n.EstRows < 0 {
			t.Errorf("node %d (%s) has no estimate", n.ID, n.SpanName())
		}
	}
}

// The greedy reorder rewrites a worst-case FROM order (dimension first,
// fact in the middle) into fact-anchored smallest-build-first order.
func TestJoinReorderStarWorstCase(t *testing.T) {
	cat := starCatalog(t)
	p := build(t, cat, `SELECT f.id FROM dimmed m
		JOIN fact f ON f.d2 = m.mid
		JOIN dimsmall s ON f.d1 = s.sid`)
	if got := p.Tables[0].Def.Name; got != "fact" {
		t.Fatalf("base table = %s, want fact (largest anchors the probe side)", got)
	}
	if got := p.Tables[p.Joins[0].Right].Def.Name; got != "dimsmall" {
		t.Errorf("first build side = %s, want dimsmall (smallest first)", got)
	}
	if got := p.Tables[p.Joins[1].Right].Def.Name; got != "dimmed" {
		t.Errorf("second build side = %s, want dimmed", got)
	}
	// Both dimension builds are tiny: the cost model broadcasts them.
	for i, j := range p.Joins {
		if j.Strategy != StrategyBroadcast {
			t.Errorf("join %d strategy = %v, want DS_BCAST_INNER", i, j.Strategy)
		}
	}
}

// `SELECT *` must expand columns in the written FROM order even when the
// planner joins in a different order — results stay bit-identical across
// plans.
func TestStarExpansionSurvivesReorder(t *testing.T) {
	cat := starCatalog(t)
	p := build(t, cat, `SELECT * FROM dimmed m
		JOIN fact f ON f.d2 = m.mid
		JOIN dimsmall s ON f.d1 = s.sid`)
	want := []string{"mid", "mval", "id", "d1", "d2", "sid", "sval"}
	if len(p.FieldNames) != len(want) {
		t.Fatalf("fields = %v", p.FieldNames)
	}
	for i, w := range want {
		if p.FieldNames[i] != w {
			t.Errorf("field[%d] = %s, want %s (original FROM order)", i, p.FieldNames[i], w)
		}
	}
}

func TestSyntaxJoinOrderDisablesReorder(t *testing.T) {
	cat := starCatalog(t)
	opts := DefaultOptions()
	opts.SyntaxJoinOrder = true
	p := buildWith(t, cat, opts, `SELECT f.id FROM dimmed m
		JOIN fact f ON f.d2 = m.mid
		JOIN dimsmall s ON f.d1 = s.sid`)
	if got := p.Tables[0].Def.Name; got != "dimmed" {
		t.Errorf("base table = %s, want dimmed (literal FROM order)", got)
	}
}

func TestReorderBailsOnOuterJoin(t *testing.T) {
	cat := starCatalog(t)
	p := build(t, cat, `SELECT f.id FROM dimmed m
		JOIN fact f ON f.d2 = m.mid
		LEFT JOIN dimsmall s ON f.d1 = s.sid`)
	if got := p.Tables[0].Def.Name; got != "dimmed" {
		t.Errorf("base table = %s, want dimmed (outer join is an order barrier)", got)
	}
}

// Tables that were never ANALYZEd fall back to the storage layer's visible
// row count instead of planning blind.
func TestTableRowsFallback(t *testing.T) {
	cat := testCatalog(t) // clicks has no row stats
	counts := map[string]int64{"clicks": 1_000_000}
	opts := DefaultOptions()
	opts.TableRows = func(id int64) int64 {
		def, err := cat.GetByID(id)
		if err != nil {
			return -1
		}
		if n, ok := counts[def.Name]; ok {
			return n
		}
		return -1
	}
	p := buildWith(t, cat, opts, `SELECT c.url FROM clicks c JOIN products p ON c.user_id = p.id`)
	if p.Tables[0].EstRows != 1_000_000 {
		t.Errorf("clicks EstRows = %d, want storage fallback 1000000", p.Tables[0].EstRows)
	}
	// With both sides now known the cost model still broadcasts tiny products.
	if p.Joins[0].Strategy != StrategyBroadcast {
		t.Errorf("strategy = %v, want DS_BCAST_INNER", p.Joins[0].Strategy)
	}
}

// The BroadcastRows cap stays an override: inner sides estimated above it
// never broadcast, whatever the cost model says.
func TestBroadcastRowsCapsCostModel(t *testing.T) {
	cat := starCatalog(t)
	opts := DefaultOptions()
	opts.BroadcastRows = 50 // below dimsmall's 100 rows
	p := buildWith(t, cat, opts, `SELECT f.id FROM fact f JOIN dimsmall s ON f.d1 = s.sid`)
	if p.Joins[0].Strategy != StrategyShuffle {
		t.Errorf("strategy = %v, want DS_DIST_BOTH under the cap", p.Joins[0].Strategy)
	}
}

// BuildDemand prices the build side for the executor's memory hint.
func TestBuildDemand(t *testing.T) {
	cat := starCatalog(t)
	p := build(t, cat, `SELECT f.id FROM fact f JOIN dimmed m ON f.d2 = m.mid`)
	ph := BuildPhysical(p)
	bytes, perSlice := ph.BuildDemand(0, 4)
	if bytes <= 0 || perSlice <= 0 {
		t.Fatalf("BuildDemand = %d, %d", bytes, perSlice)
	}
	// dimmed: 10k rows × (2×8B columns + 72B hash overhead) = ~880KB; a
	// broadcast build is resident on all 4 slices.
	if p.Joins[0].Strategy == StrategyBroadcast {
		within(t, "broadcast build bytes", bytes, 4*10_000*88, 1.2)
		if perSlice != 10_000 {
			t.Errorf("perSliceRows = %d, want full 10000 under broadcast", perSlice)
		}
	}
	// Unknown-cardinality builds yield no hint.
	cat2 := testCatalog(t)
	p2 := build(t, cat2, `SELECT c.url FROM clicks c JOIN bigdim b ON c.user_id = b.id`)
	ph2 := BuildPhysical(p2)
	if b, r := ph2.BuildDemand(0, 4); b != 0 && r != 0 {
		// bigdim has stats (50M rows) so a demand is fine; just exercise
		// the out-of-range guard.
		if gb, gr := ph2.BuildDemand(9, 4); gb != 0 || gr != 0 {
			t.Errorf("out-of-range BuildDemand = %d, %d", gb, gr)
		}
	}
}
