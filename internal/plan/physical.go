package plan

import (
	"fmt"
	"strings"

	"redshift/internal/catalog"
	"redshift/internal/sql"
)

// PhysKind identifies one physical operator in the lowered dataflow.
type PhysKind uint8

const (
	// PhysScan reads one base table's slice-local blocks.
	PhysScan PhysKind = iota
	// PhysExchange moves batches between slices (shuffle/broadcast) or to
	// the leader (gather).
	PhysExchange
	// PhysHashJoin builds a hash table from its first child and probes it
	// with batches from its second.
	PhysHashJoin
	// PhysFilter applies the residual WHERE predicate.
	PhysFilter
	// PhysPartialAgg accumulates slice-local groups (pipeline breaker).
	PhysPartialAgg
	// PhysLeaderAgg merges per-slice group tables on the leader and emits
	// final aggregate values.
	PhysLeaderAgg
	// PhysHaving filters final aggregate rows.
	PhysHaving
	// PhysProject computes the output expressions.
	PhysProject
	// PhysPartialDistinct drops duplicate projected rows slice-locally.
	PhysPartialDistinct
	// PhysSliceTopN keeps each slice's top LIMIT rows under ORDER BY.
	PhysSliceTopN
	// PhysLeaderMerge gathers slice streams on the leader, merge-sorted
	// when slices pre-sorted their output.
	PhysLeaderMerge
	// PhysFinalize applies leader-only DISTINCT / ORDER BY / LIMIT.
	PhysFinalize
)

// ExchangeKind is the data-movement pattern of a PhysExchange node.
type ExchangeKind uint8

const (
	// ExchangeShuffle repartitions rows by key hash across all slices.
	ExchangeShuffle ExchangeKind = iota
	// ExchangeBroadcast replicates every batch to all nodes.
	ExchangeBroadcast
	// ExchangeGather funnels every slice's stream to the leader.
	ExchangeGather
)

// String names the movement pattern as EXPLAIN prints it.
func (k ExchangeKind) String() string {
	switch k {
	case ExchangeShuffle:
		return "Shuffle"
	case ExchangeBroadcast:
		return "Broadcast"
	default:
		return "Gather"
	}
}

// PhysNode is one operator of the physical dataflow tree.
type PhysNode struct {
	Kind PhysKind
	// ID is the node's position in Physical.Nodes (creation order,
	// leaves-first); the driver indexes per-operator stats by it.
	ID int
	// Scan references the accessed table for PhysScan nodes, and the
	// build-side table for PhysHashJoin nodes (span labels name the table).
	Scan *TableScan
	// Join is the logical join step a PhysHashJoin implements.
	Join *JoinStep
	// ExKind qualifies PhysExchange (and PhysLeaderMerge's implicit gather).
	ExKind ExchangeKind
	// Keys are the shuffle partition keys for ExchangeShuffle nodes.
	Keys []Expr
	// EstRows is the statistics-based output cardinality (-1 unknown).
	EstRows int64
	// Width is the number of columns in this operator's output rows.
	Width int
	// Children in render order; a join's build side precedes its probe side.
	Children []*PhysNode
}

// PhysJoin groups the physical nodes implementing one JoinStep.
type PhysJoin struct {
	// Probe is the hash-join operator itself.
	Probe *PhysNode
	// BuildScan reads the build-side table.
	BuildScan *PhysNode
	// BuildEx moves build-side batches (broadcast or shuffle); nil when the
	// build side is read slice-locally (collocated, or DISTSTYLE ALL).
	BuildEx *PhysNode
	// ProbeEx re-shuffles the probe side; nil unless DS_DIST_BOTH.
	ProbeEx *PhysNode
}

// Physical is the lowered operator dataflow for one Plan. Root/Nodes give
// the renderable tree; the named handles let the driver wire per-slice
// operator chains without re-walking it.
type Physical struct {
	Plan *Plan
	Root *PhysNode
	// Nodes lists every operator in creation order (leaves first); a node's
	// ID indexes this slice.
	Nodes []*PhysNode

	Base       *PhysNode  // base-table scan
	Joins      []PhysJoin // parallel to Plan.Joins
	Where      *PhysNode  // nil when no residual predicate
	PartialAgg *PhysNode  // nil unless HasAgg
	LeaderAgg  *PhysNode  // nil unless HasAgg
	Having     *PhysNode  // nil unless HasAgg with HAVING
	Project    *PhysNode
	Distinct   *PhysNode // slice-local pre-dedup; nil unless non-agg DISTINCT
	TopN       *PhysNode // nil unless SliceTopN() applies
	Merge      *PhysNode // gather-to-leader; nil when HasAgg
	Finalize   *PhysNode // always the root
}

// SliceTopN reports whether ORDER BY + LIMIT push down to slices: each
// slice sorts and truncates locally so the leader merge-sorts tiny inputs.
func (p *Plan) SliceTopN() bool {
	return len(p.OrderBy) > 0 && p.Limit >= 0 && !p.Distinct
}

// BuildPhysical lowers a logical plan into the physical operator tree the
// executor runs and EXPLAIN prints.
func BuildPhysical(p *Plan) *Physical {
	ph := &Physical{Plan: p}
	node := func(n *PhysNode) *PhysNode {
		n.ID = len(ph.Nodes)
		ph.Nodes = append(ph.Nodes, n)
		return n
	}
	limited := func(est int64) int64 {
		if p.Limit >= 0 && (est < 0 || est > p.Limit) {
			return p.Limit
		}
		return est
	}

	base := p.Tables[0]
	cur := node(&PhysNode{Kind: PhysScan, Scan: base, EstRows: estScanOut(base), Width: len(base.Def.Columns)})
	ph.Base = cur

	for i := range p.Joins {
		step := &p.Joins[i]
		right := p.Tables[step.Right]
		buildScan := node(&PhysNode{Kind: PhysScan, Scan: right, EstRows: estScanOut(right), Width: len(right.Def.Columns)})
		build := buildScan
		pj := PhysJoin{BuildScan: buildScan}
		switch step.Strategy {
		case StrategyBroadcast:
			// DISTSTYLE ALL tables are already replicated; no movement node.
			if right.Def.DistStyle != catalog.DistAll {
				build = node(&PhysNode{Kind: PhysExchange, ExKind: ExchangeBroadcast,
					EstRows: buildScan.EstRows, Width: buildScan.Width, Children: []*PhysNode{buildScan}})
				pj.BuildEx = build
			}
		case StrategyShuffle:
			build = node(&PhysNode{Kind: PhysExchange, ExKind: ExchangeShuffle, Keys: step.RightKeys,
				EstRows: buildScan.EstRows, Width: buildScan.Width, Children: []*PhysNode{buildScan}})
			pj.BuildEx = build
			probeEx := node(&PhysNode{Kind: PhysExchange, ExKind: ExchangeShuffle, Keys: step.LeftKeys,
				EstRows: cur.EstRows, Width: cur.Width, Children: []*PhysNode{cur}})
			pj.ProbeEx = probeEx
			cur = probeEx
		}
		jn := node(&PhysNode{Kind: PhysHashJoin, Scan: right, Join: step,
			EstRows: estJoinRows(p, step, cur.EstRows, buildScan.EstRows),
			Width:    cur.Width + len(right.Def.Columns),
			Children: []*PhysNode{build, cur}})
		pj.Probe = jn
		ph.Joins = append(ph.Joins, pj)
		cur = jn
	}

	if p.Where != nil {
		est := int64(-1)
		if cur.EstRows >= 0 {
			est = roundRows(float64(cur.EstRows) * selectivity(p.Where, layoutResolver(p)))
		}
		cur = node(&PhysNode{Kind: PhysFilter, EstRows: est, Width: cur.Width, Children: []*PhysNode{cur}})
		ph.Where = cur
	}

	if p.HasAgg {
		aggWidth := len(p.GroupBy) + len(p.Aggs)
		groups := estGroups(p, cur.EstRows)
		cur = node(&PhysNode{Kind: PhysPartialAgg, EstRows: groups, Width: aggWidth, Children: []*PhysNode{cur}})
		ph.PartialAgg = cur
		cur = node(&PhysNode{Kind: PhysLeaderAgg, ExKind: ExchangeGather, EstRows: groups, Width: aggWidth, Children: []*PhysNode{cur}})
		ph.LeaderAgg = cur
		if p.Having != nil {
			est := int64(-1)
			if groups >= 0 {
				est = roundRows(float64(groups) * defaultSel)
			}
			cur = node(&PhysNode{Kind: PhysHaving, EstRows: est, Width: aggWidth, Children: []*PhysNode{cur}})
			ph.Having = cur
		}
		cur = node(&PhysNode{Kind: PhysProject, EstRows: cur.EstRows, Width: len(p.Project), Children: []*PhysNode{cur}})
		ph.Project = cur
	} else {
		cur = node(&PhysNode{Kind: PhysProject, EstRows: cur.EstRows, Width: len(p.Project), Children: []*PhysNode{cur}})
		ph.Project = cur
		if p.Distinct {
			// Dedup keeps at most its input; without projected-column NDVs
			// the input bound is the best statistics offer.
			cur = node(&PhysNode{Kind: PhysPartialDistinct, EstRows: cur.EstRows, Width: cur.Width, Children: []*PhysNode{cur}})
			ph.Distinct = cur
		}
		if p.SliceTopN() {
			cur = node(&PhysNode{Kind: PhysSliceTopN, EstRows: limited(cur.EstRows), Width: cur.Width, Children: []*PhysNode{cur}})
			ph.TopN = cur
		}
		cur = node(&PhysNode{Kind: PhysLeaderMerge, ExKind: ExchangeGather, EstRows: cur.EstRows, Width: cur.Width, Children: []*PhysNode{cur}})
		ph.Merge = cur
	}

	fin := node(&PhysNode{Kind: PhysFinalize, EstRows: limited(cur.EstRows), Width: cur.Width, Children: []*PhysNode{cur}})
	ph.Finalize = fin
	ph.Root = fin
	return ph
}

// SpanName labels the node in EXPLAIN ANALYZE trace trees.
func (n *PhysNode) SpanName() string {
	switch n.Kind {
	case PhysScan:
		return "scan " + n.Scan.Def.Name
	case PhysExchange:
		switch n.ExKind {
		case ExchangeBroadcast:
			return "broadcast " + scanName(n)
		default:
			return "shuffle"
		}
	case PhysHashJoin:
		return "join " + n.Scan.Def.Name
	case PhysFilter:
		return "filter"
	case PhysPartialAgg:
		return "partial-agg"
	case PhysLeaderAgg, PhysLeaderMerge:
		return "leader-merge"
	case PhysHaving:
		return "having"
	case PhysProject:
		return "project"
	case PhysPartialDistinct:
		return "partial-distinct"
	case PhysSliceTopN:
		return "slice-topn"
	default:
		return "finalize"
	}
}

func scanName(n *PhysNode) string {
	if len(n.Children) > 0 && n.Children[0].Scan != nil {
		return n.Children[0].Scan.Def.Name
	}
	return ""
}

// Explain renders the physical tree in the Redshift-flavored indented
// style, one operator per line with cardinality/width annotations.
func (ph *Physical) Explain() string {
	var b strings.Builder
	var walk func(n *PhysNode, depth int)
	emit := func(depth int, s string) {
		b.WriteString(strings.Repeat("  ", depth))
		if depth > 0 {
			b.WriteString("-> ")
		}
		b.WriteString(s)
		b.WriteByte('\n')
	}
	walk = func(n *PhysNode, depth int) {
		for _, ln := range ph.lines(n) {
			emit(depth, ln)
			depth++
		}
		for _, c := range n.Children {
			walk(c, depth)
		}
	}
	walk(ph.Root, 0)
	return b.String()
}

// lines renders one node, possibly as several stacked lines (Finalize
// prints each of its leader-side steps the way the old plan tree did).
func (ph *Physical) lines(n *PhysNode) []string {
	p := ph.Plan
	ann := func(s string) string {
		if n.EstRows >= 0 {
			return fmt.Sprintf("%s  (rows=%d width=%d)", s, n.EstRows, n.Width)
		}
		return fmt.Sprintf("%s  (width=%d)", s, n.Width)
	}
	switch n.Kind {
	case PhysFinalize:
		var ls []string
		if p.Limit >= 0 {
			ls = append(ls, fmt.Sprintf("XN Limit (rows=%d)", p.Limit))
		}
		if len(p.OrderBy) > 0 {
			ls = append(ls, fmt.Sprintf("XN Merge (order by: %s)", orderKeys(p)))
		}
		if p.Distinct {
			ls = append(ls, "XN Unique")
		}
		if len(ls) == 0 {
			ls = append(ls, "XN Result")
		}
		ls[0] = ann(ls[0])
		return ls
	case PhysLeaderMerge:
		detail := ""
		if p.SliceTopN() {
			detail = ": merge-sorted"
		}
		return []string{ann("XN Network (Gather" + detail + ")")}
	case PhysLeaderAgg:
		return []string{ann("XN " + aggLine(p))}
	case PhysPartialAgg:
		return []string{ann("XN Partial " + aggLine(p))}
	case PhysHaving:
		return []string{ann(fmt.Sprintf("XN Filter: %s", p.Having))}
	case PhysFilter:
		return []string{ann(fmt.Sprintf("XN Filter: %s", p.Where))}
	case PhysProject:
		return []string{ann("XN Project")}
	case PhysPartialDistinct:
		return []string{ann("XN Partial Unique")}
	case PhysSliceTopN:
		return []string{ann(fmt.Sprintf("XN SliceTopN (order by: %s; limit %d)", orderKeys(p), p.Limit))}
	case PhysExchange:
		if n.ExKind == ExchangeBroadcast {
			return []string{ann("XN Network (Broadcast)")}
		}
		keys := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			keys[i] = k.String()
		}
		return []string{ann(fmt.Sprintf("XN Network (Shuffle: %s)", strings.Join(keys, ", ")))}
	case PhysHashJoin:
		j := n.Join
		kind := "Hash Join"
		if j.Kind == sql.LeftJoin {
			kind = "Hash Left Join"
		}
		keys := make([]string, len(j.LeftKeys))
		for k := range j.LeftKeys {
			keys[k] = fmt.Sprintf("%s = %s", j.LeftKeys[k], j.RightKeys[k])
		}
		return []string{ann(fmt.Sprintf("XN %s %s (%s)", kind, j.Strategy, strings.Join(keys, " AND ")))}
	default: // PhysScan
		return []string{ann(fmt.Sprintf("XN Seq Scan on %s%s", n.Scan.Def.Name, scanDetail(n.Scan)))}
	}
}

func aggLine(p *Plan) string {
	aggs := make([]string, len(p.Aggs))
	for i, a := range p.Aggs {
		aggs[i] = a.String()
	}
	if len(p.GroupBy) > 0 {
		groups := make([]string, len(p.GroupBy))
		for i, g := range p.GroupBy {
			groups[i] = g.String()
		}
		return fmt.Sprintf("HashAggregate (groups: %s) [%s]", strings.Join(groups, ", "), strings.Join(aggs, ", "))
	}
	return fmt.Sprintf("Aggregate [%s]", strings.Join(aggs, ", "))
}

func orderKeys(p *Plan) string {
	keys := make([]string, len(p.OrderBy))
	for i, k := range p.OrderBy {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		keys[i] = fmt.Sprintf("%s %s", p.FieldNames[k.Index], dir)
	}
	return strings.Join(keys, ", ")
}
