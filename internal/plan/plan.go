package plan

import (
	"fmt"
	"strings"

	"redshift/internal/catalog"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// JoinStrategy is how a join's inputs are brought together across slices
// (§2.1: distribution keys allow "join processing on that key to be
// co-located on individual slices ... avoiding the redistribution of
// intermediate results").
type JoinStrategy uint8

const (
	// StrategyCollocated joins slice-local data with no data movement:
	// both sides are distributed by their join key.
	StrategyCollocated JoinStrategy = iota
	// StrategyBroadcast replicates the (small or DISTSTYLE ALL) inner side
	// to every node.
	StrategyBroadcast
	// StrategyShuffle redistributes both sides by the join key hash.
	StrategyShuffle
)

// String names the strategy as EXPLAIN prints it.
func (s JoinStrategy) String() string {
	switch s {
	case StrategyCollocated:
		return "DS_DIST_NONE"
	case StrategyBroadcast:
		return "DS_BCAST_INNER"
	case StrategyShuffle:
		return "DS_DIST_BOTH"
	default:
		return "DS_UNKNOWN"
	}
}

// ColRange is a per-column value bound extracted from a pushed predicate;
// the scan prunes any block whose zone map cannot intersect it.
type ColRange struct {
	Col    int // table-local column ordinal
	Lo, Hi types.Value
	HasLo  bool
	HasHi  bool
}

// TableScan is one base-table access.
type TableScan struct {
	Def   *catalog.TableDef
	Alias string
	// BaseCol is the offset of this table's first column in the joined row
	// layout.
	BaseCol int
	// Filter is the pushed-down predicate over table-local column indexes;
	// nil when nothing was pushable.
	Filter Expr
	// Ranges are the zone-map-prunable bounds derived from Filter.
	Ranges []ColRange
	// NeedCols lists the table-local columns the query reads: the
	// filter's input columns first (each group ascending), so the scan
	// can evaluate the predicate before materializing the rest. Unused
	// columns are never decoded, and an empty NeedCols means the scan
	// needs row counts only (COUNT(*) with no filter) — served from
	// block metadata with zero decodes.
	NeedCols []int
	// EstRows is the table's estimated row count: catalog statistics when
	// present, else the visible-segment fallback, else -1 (unknown).
	EstRows int64
	// Stats is the table's catalog statistics snapshot at plan time (nil
	// when the table has never been ANALYZEd or loaded with stats); the
	// selectivity estimator and cost model read per-column NDV, bounds,
	// null fractions and widths from it.
	Stats *catalog.TableStats
}

// JoinStep joins the accumulated left side with one more table.
type JoinStep struct {
	Kind  sql.JoinKind
	Right int // index into Plan.Tables
	// LeftKeys are equi-join keys over the current joined layout;
	// RightKeys are the matching keys over the right table's local layout.
	LeftKeys  []Expr
	RightKeys []Expr
	// Residual is an extra inner-join predicate evaluated on joined rows.
	Residual Expr
	Strategy JoinStrategy
}

// AggSpec is one aggregate computation, split into a mergeable partial
// phase (per slice) and a final phase (leader).
type AggSpec struct {
	Func sql.FuncName
	// Arg is the input expression over the joined layout; nil for COUNT(*).
	Arg      Expr
	Distinct bool
	// Approx selects the HLL sketch implementation of COUNT(DISTINCT).
	Approx bool
	T      types.Type
}

// String renders the aggregate for EXPLAIN.
func (a AggSpec) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	name := string(a.Func)
	if a.Approx {
		name = "APPROXIMATE " + name
	}
	return fmt.Sprintf("%s(%s)", name, arg)
}

// OrderKey orders final output by one projected column.
type OrderKey struct {
	Index int
	Desc  bool
}

// Plan is the physical plan for one SELECT.
type Plan struct {
	Tables []*TableScan
	Joins  []JoinStep
	// Where is the residual predicate over the joined layout after
	// pushdown; nil when fully pushed to scans.
	Where Expr
	// HasAgg marks an aggregating query. GroupBy/Aggs/Having are only
	// meaningful then; Project is over [group keys..., agg results...].
	HasAgg  bool
	GroupBy []Expr
	Aggs    []AggSpec
	Having  Expr
	// Project computes the output columns (over the joined layout, or over
	// the aggregate layout when HasAgg).
	Project    []Expr
	FieldNames []string
	Distinct   bool
	OrderBy    []OrderKey
	Limit      int64 // -1 = none
	// EstCost is the plan's scalar cost estimate — the sum of estimated
	// rows flowing through every physical node — or -1 when any node's
	// cardinality is unknown. The WLM's short-query fast lane compares it
	// against its admission threshold.
	EstCost int64
}

// FieldTypes returns the output column types.
func (p *Plan) FieldTypes() []types.Type {
	ts := make([]types.Type, len(p.Project))
	for i, e := range p.Project {
		ts[i] = e.Type()
	}
	return ts
}

// Schema returns the output schema.
func (p *Plan) Schema() types.Schema {
	cols := make([]types.Column, len(p.Project))
	for i := range p.Project {
		cols[i] = types.Column{Name: p.FieldNames[i], Type: p.Project[i].Type()}
	}
	return types.NewSchema(cols...)
}

// Explain renders the plan as its lowered physical operator tree — what
// the executor actually runs — in a Redshift-flavored indented style.
func (p *Plan) Explain() string {
	return BuildPhysical(p).Explain()
}

// ExplainWithMemory renders Explain plus the query's memory grant when
// one is in effect (grant > 0); ungoverned plans render unchanged so the
// plain EXPLAIN output stays stable.
func (p *Plan) ExplainWithMemory(grant int64) string {
	out := p.Explain()
	if grant > 0 {
		out += fmt.Sprintf("Memory Grant: %d bytes (spills to disk beyond it)\n", grant)
	}
	return out
}

func scanDetail(s *TableScan) string {
	var parts []string
	if s.Filter != nil {
		parts = append(parts, "filter: "+s.Filter.String())
	}
	if len(s.Ranges) > 0 {
		parts = append(parts, fmt.Sprintf("zone-map ranges: %d", len(s.Ranges)))
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, "; ") + ")"
}

// Options tunes planning decisions.
type Options struct {
	// BroadcastRows is the inner-table row-count threshold below which a
	// join broadcasts the inner side instead of shuffling both. Since the
	// cost model prices broadcast vs shuffle from statistics, this is an
	// override that only decides when one side's cardinality is unknown.
	BroadcastRows int64
	// TableRows estimates a table's current visible row count straight
	// from the storage layer (summing visible segment rows). It is the
	// planner's fallback for tables that have never been ANALYZEd or
	// loaded with STATUPDATE — without it such tables would always look
	// unknown and shuffle even when tiny. Returns -1 for unknown; nil
	// disables the fallback.
	TableRows func(tableID int64) int64
	// NumNodes is the cluster's node count, pricing broadcast replication
	// (a broadcast ships the inner side to every node). 0 is costed as 1.
	NumNodes int
	// SyntaxJoinOrder disables greedy join reordering so joins execute in
	// literal FROM order — the pre-cost-based behavior, kept for plan
	// regression baselines and the plan-quality benchmark's worst case.
	SyntaxJoinOrder bool
}

// DefaultOptions returns the planner defaults.
func DefaultOptions() Options { return Options{BroadcastRows: 100_000} }
