package plan

import (
	"math"

	"redshift/internal/catalog"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// Selectivity and width defaults — the textbook System-R constants, used
// whenever statistics cannot answer precisely.
const (
	// defaultSel prices a predicate the estimator cannot model.
	defaultSel = 1.0 / 3
	// likeSel prices a LIKE pattern match.
	likeSel = 0.1
	// minSel keeps conjunction products from rounding row counts to zero
	// (the "sanity clamp": estimates stay positive however many conjuncts
	// stack up).
	minSel = 1e-7
	// eqSelUnknownNDV prices an equality when the column's NDV is unknown.
	eqSelUnknownNDV = 0.005
	// fixedColBytes / stringColBytes are fallback per-value widths when a
	// column has no recorded width statistics.
	fixedColBytes  = 8.0
	stringColBytes = 16.0
	// hashEntryBytes approximates the hash-table bookkeeping per build row
	// (map bucket, key copy, position list) on top of payload bytes when
	// sizing join builds; mirrors exec's joinKeyOverhead+joinPosBytes.
	hashEntryBytes = 72.0
)

// colResolver maps a Col index (in whatever layout the expression is bound
// over) to its column statistics and the owning table's row count. Either
// return may be nil/-1 when unknown.
type colResolver func(idx int) (*catalog.ColumnStats, int64)

// scanResolver resolves table-local column indexes against one scan.
func scanResolver(scan *TableScan) colResolver {
	return func(idx int) (*catalog.ColumnStats, int64) {
		if scan.Stats == nil || idx < 0 || idx >= len(scan.Stats.Cols) {
			return nil, -1
		}
		return &scan.Stats.Cols[idx], scan.Stats.Rows
	}
}

// layoutResolver resolves joined-layout column indexes across the plan's
// tables.
func layoutResolver(p *Plan) colResolver {
	return func(idx int) (*catalog.ColumnStats, int64) {
		for i := len(p.Tables) - 1; i >= 0; i-- {
			scan := p.Tables[i]
			if idx >= scan.BaseCol {
				return scanResolver(scan)(idx - scan.BaseCol)
			}
		}
		return nil, -1
	}
}

// clampSel bounds a selectivity to the sane (minSel, 1] band.
func clampSel(s float64) float64 {
	switch {
	case math.IsNaN(s), s < minSel:
		return minSel
	case s > 1:
		return 1
	default:
		return s
	}
}

// selectivity estimates the fraction of rows a boolean expression keeps:
// equality via 1/NDV, ranges via min/max interpolation, conjunctions under
// the independence assumption with a sanity clamp.
func selectivity(e Expr, res colResolver) float64 {
	if e == nil {
		return 1
	}
	switch x := e.(type) {
	case *Bin:
		switch x.Op {
		case sql.OpAnd:
			return clampSel(selectivity(x.L, res) * selectivity(x.R, res))
		case sql.OpOr:
			l, r := selectivity(x.L, res), selectivity(x.R, res)
			return clampSel(l + r - l*r)
		case sql.OpEq:
			return clampSel(eqSelectivity(x, res))
		case sql.OpNe:
			return clampSel(1 - eqSelectivity(x, res))
		case sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return clampSel(rangeSelectivity(x, res))
		}
		return defaultSel
	case *Not:
		return clampSel(1 - selectivity(x.E, res))
	case *IsNull:
		if col, ok := x.E.(*Col); ok {
			if cs, rows := res(col.Index); cs != nil && rows > 0 {
				f := cs.NullFrac(rows)
				if x.Not {
					f = 1 - f
				}
				return clampSel(f)
			}
		}
		return defaultSel
	case *InList:
		s := defaultSel
		if col, ok := x.E.(*Col); ok {
			if cs, _ := res(col.Index); cs != nil && cs.NDV > 0 {
				s = float64(len(x.Vals)) / float64(cs.NDV)
			}
		}
		if x.Not {
			s = 1 - s
		}
		return clampSel(s)
	case *Like:
		if x.Not {
			return clampSel(1 - likeSel)
		}
		return likeSel
	case *Const:
		if !x.V.Null && x.V.T == types.Bool && x.V.I != 0 {
			return 1
		}
		return minSel
	}
	return defaultSel
}

// eqSelectivity prices `col = const` and `col = col` as 1/NDV (the larger
// NDV for col-col, matching the join-cardinality rule).
func eqSelectivity(b *Bin, res colResolver) float64 {
	ndvOf := func(e Expr) int64 {
		if col, ok := e.(*Col); ok {
			if cs, _ := res(col.Index); cs != nil {
				return cs.NDV
			}
		}
		return 0
	}
	dl, dr := ndvOf(b.L), ndvOf(b.R)
	_, lIsCol := b.L.(*Col)
	_, rIsCol := b.R.(*Col)
	if !lIsCol && !rIsCol {
		return defaultSel
	}
	d := dl
	if dr > d {
		d = dr
	}
	if d <= 0 {
		return eqSelUnknownNDV
	}
	return 1 / float64(d)
}

// rangeSelectivity interpolates `col OP const` within the column's
// [min, max] statistics; non-numeric columns and missing bounds fall back
// to the default.
func rangeSelectivity(b *Bin, res colResolver) float64 {
	col, v, op, ok := colConstCmp(b)
	if !ok {
		return defaultSel
	}
	cs, _ := res(col.Index)
	if cs == nil {
		return defaultSel
	}
	lo, okLo := asFloat(cs.Min)
	hi, okHi := asFloat(cs.Max)
	cv, okV := asFloat(v)
	if !okLo || !okHi || !okV || hi <= lo {
		return defaultSel
	}
	frac := (cv - lo) / (hi - lo)
	if op == sql.OpGt || op == sql.OpGe {
		frac = 1 - frac
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// asFloat projects an ordered value onto the number line for range
// interpolation.
func asFloat(v types.Value) (float64, bool) {
	if v.Null {
		return 0, false
	}
	switch v.T {
	case types.Int64, types.Timestamp:
		return float64(v.I), true
	case types.Float64:
		return v.F, true
	default:
		return 0, false
	}
}

// roundRows converts a fractional cardinality back to rows, never
// rounding a nonzero estimate down to nothing.
func roundRows(f float64) int64 {
	if f <= 0 {
		return 0
	}
	if f < 1 {
		return 1
	}
	if f > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(f + 0.5)
}

// estScanOut estimates a scan's emitted rows: table cardinality times the
// pushed-down filter's selectivity. -1 when the table's size is unknown.
func estScanOut(scan *TableScan) int64 {
	if scan.EstRows < 0 {
		return -1
	}
	if scan.Filter == nil || scan.EstRows == 0 {
		return scan.EstRows
	}
	return roundRows(float64(scan.EstRows) * selectivity(scan.Filter, scanResolver(scan)))
}

// estJoinRows estimates a join step's output: |L|·|R| / Π max(NDVl, NDVr)
// over the equi-key pairs, times the residual's selectivity. Falls back to
// the FK-style probe-side heuristic when key NDVs are unknown; LEFT JOINs
// never estimate below the preserved side.
func estJoinRows(p *Plan, step *JoinStep, leftRows, rightRows int64) int64 {
	if leftRows < 0 {
		return -1
	}
	if rightRows < 0 {
		return leftRows
	}
	if leftRows == 0 || rightRows == 0 {
		if step.Kind == sql.LeftJoin {
			return leftRows
		}
		return 0
	}
	right := p.Tables[step.Right]
	layout := layoutResolver(p)
	out := float64(leftRows) * float64(rightRows)
	known := false
	for i := range step.LeftKeys {
		var dl, dr int64
		if lc, ok := step.LeftKeys[i].(*Col); ok {
			if cs, _ := layout(lc.Index); cs != nil {
				dl = cs.NDV
			}
		}
		if rc, ok := step.RightKeys[i].(*Col); ok {
			if cs, _ := scanResolver(right)(rc.Index); cs != nil {
				dr = cs.NDV
			}
		}
		d := dl
		if dr > d {
			d = dr
		}
		if d > 0 {
			out /= float64(d)
			known = true
		}
	}
	if !known {
		return leftRows
	}
	if step.Residual != nil {
		out *= selectivity(step.Residual, layout)
	}
	if step.Kind == sql.LeftJoin && out < float64(leftRows) {
		return leftRows
	}
	return roundRows(out)
}

// estGroups estimates distinct groups as the product of the group keys'
// NDVs, clamped to the input cardinality; an unknown key NDV degrades the
// estimate to the input bound. Scalar aggregation is exactly one row.
func estGroups(p *Plan, inRows int64) int64 {
	if len(p.GroupBy) == 0 {
		return 1
	}
	if inRows < 0 {
		return -1
	}
	layout := layoutResolver(p)
	groups := 1.0
	for _, g := range p.GroupBy {
		col, ok := g.(*Col)
		if !ok {
			return inRows
		}
		cs, _ := layout(col.Index)
		if cs == nil || cs.NDV <= 0 {
			return inRows
		}
		groups *= float64(cs.NDV)
		if groups > float64(inRows) {
			return inRows
		}
	}
	return roundRows(groups)
}

// colBytes prices one value of a column: recorded average width when
// statistics have one, else a per-type default.
func colBytes(t types.Type, cs *catalog.ColumnStats, rows int64) float64 {
	def := fixedColBytes
	if t == types.String {
		def = stringColBytes
	}
	if cs != nil {
		return cs.AvgWidth(rows, def)
	}
	return def
}

// estRowBytes prices one full row of a scanned table in bytes — the unit
// the data-movement cost model multiplies cardinalities by.
func estRowBytes(scan *TableScan) float64 {
	w := 0.0
	for ci, col := range scan.Def.Columns {
		var cs *catalog.ColumnStats
		var rows int64 = -1
		if scan.Stats != nil && ci < len(scan.Stats.Cols) {
			cs = &scan.Stats.Cols[ci]
			rows = scan.Stats.Rows
		}
		w += colBytes(col.Type, cs, rows)
	}
	return w
}

// BuildDemand estimates join ji's query-wide build-side memory demand in
// bytes (payload plus hash-table overhead, across every concurrently
// building slice) and the rows one slice's build is expected to hold. The
// executor compares the demand against the query's grant to spill
// preemptively — and presizes the hash table — instead of guess-building.
// Returns (0, 0) when the build side's cardinality is unknown.
func (ph *Physical) BuildDemand(ji, nslices int) (totalBytes, perSliceRows int64) {
	if ji < 0 || ji >= len(ph.Joins) || nslices <= 0 {
		return 0, 0
	}
	pj := &ph.Joins[ji]
	rows := pj.BuildScan.EstRows
	if rows <= 0 {
		return 0, 0
	}
	step := pj.Probe.Join
	right := ph.Plan.Tables[step.Right]
	perRow := estRowBytes(right) + hashEntryBytes
	switch step.Strategy {
	case StrategyBroadcast:
		// Every slice builds the full inner side.
		return roundRows(float64(rows) * perRow * float64(nslices)), rows
	default:
		// Collocated/shuffled builds partition the inner side; all
		// partitions are resident at once.
		return roundRows(float64(rows) * perRow), (rows + int64(nslices) - 1) / int64(nslices)
	}
}
