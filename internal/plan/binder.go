package plan

import (
	"fmt"
	"strings"

	"redshift/internal/catalog"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// BindScalar binds an expression that references no tables — the leader
// evaluates such expressions locally (SELECT 1, SELECT UPPER('x')).
func BindScalar(e sql.Expr) (Expr, error) {
	b := &binder{plan: &Plan{}}
	return b.bindExpr(e)
}

// Build plans a SELECT against the catalog with default options.
func Build(cat *catalog.Catalog, stmt *sql.Select) (*Plan, error) {
	return BuildWith(cat, stmt, DefaultOptions())
}

// BuildWith plans a SELECT with explicit options.
func BuildWith(cat *catalog.Catalog, stmt *sql.Select, opts Options) (*Plan, error) {
	b := &binder{cat: cat, opts: opts, plan: &Plan{Limit: stmt.Limit}}
	stmt = b.reorderJoins(stmt)
	if err := b.bindFrom(stmt); err != nil {
		return nil, err
	}
	if err := b.bindWhere(stmt.Where); err != nil {
		return nil, err
	}
	if err := b.bindSelectList(stmt); err != nil {
		return nil, err
	}
	if err := b.bindOrderBy(stmt.OrderBy); err != nil {
		return nil, err
	}
	b.plan.Distinct = stmt.Distinct
	b.pruneColumns()
	b.plan.EstCost = estPlanCost(b.plan)
	return b.plan, nil
}

// estPlanCost folds the lowered physical tree's per-node cardinality
// estimates into one scalar: total estimated rows flowing through the
// plan. Any node with unknown cardinality poisons the estimate to -1 — the
// WLM fast lane must never admit a query it cannot size.
func estPlanCost(p *Plan) int64 {
	var total int64
	for _, n := range BuildPhysical(p).Nodes {
		if n.EstRows < 0 {
			return -1
		}
		total += n.EstRows
	}
	return total
}

type binder struct {
	cat  *catalog.Catalog
	opts Options
	plan *Plan
	// refNames[i] is the name table i is referenced by (alias or name).
	refNames []string
	// leftDistCol is the joined layout column the accumulated left side is
	// currently hash-distributed by; -1 when not key-distributed.
	leftDistCol int
	// leftRows / leftRowBytes track the accumulated left side's estimated
	// cardinality and per-row width as joins bind, feeding the data-movement
	// cost model. leftRows is -1 when unknown.
	leftRows     int64
	leftRowBytes float64
	// starOrder, when non-nil, lists table indexes in the query's original
	// FROM order; join reordering sets it so `SELECT *` expands columns in
	// the order the user wrote, keeping results identical across plans.
	starOrder []int
}

// errf builds a uniform planner error.
func errf(format string, args ...interface{}) error {
	return fmt.Errorf("plan: %s", fmt.Sprintf(format, args...))
}

// bindFrom resolves the FROM table and each JOIN, choosing strategies.
func (b *binder) bindFrom(stmt *sql.Select) error {
	if stmt.From == nil {
		return errf("queries without FROM are handled by the leader directly")
	}
	base, err := b.addTable(stmt.From)
	if err != nil {
		return err
	}
	b.leftDistCol = -1
	if base.Def.DistStyle == catalog.DistKey {
		b.leftDistCol = base.BaseCol + base.Def.DistKeyCol
	}
	b.leftRows = base.EstRows
	b.leftRowBytes = estRowBytes(base)
	for _, j := range stmt.Joins {
		if err := b.bindJoin(j); err != nil {
			return err
		}
	}
	return nil
}

// addTable registers a table reference and returns its scan.
func (b *binder) addTable(ref *sql.TableRef) (*TableScan, error) {
	def, err := b.cat.Get(ref.Table)
	if err != nil {
		return nil, errf("%v", err)
	}
	name := ref.Name()
	for _, existing := range b.refNames {
		if strings.EqualFold(existing, name) {
			return nil, errf("duplicate table reference %q (use an alias)", name)
		}
	}
	base := 0
	if n := len(b.plan.Tables); n > 0 {
		last := b.plan.Tables[n-1]
		base = last.BaseCol + len(last.Def.Columns)
	}
	scan := &TableScan{Def: def, Alias: ref.Alias, BaseCol: base}
	scan.EstRows, scan.Stats = b.tableEstRows(def)
	b.plan.Tables = append(b.plan.Tables, scan)
	b.refNames = append(b.refNames, name)
	return scan, nil
}

// tableEstRows estimates a table's cardinality: catalog statistics when the
// table has been ANALYZEd (Rows > 0 — the catalog keeps zeroed stats for
// fresh tables), else the storage layer's visible-segment count, else -1.
func (b *binder) tableEstRows(def *catalog.TableDef) (int64, *catalog.TableStats) {
	if stats, err := b.cat.Stats(def.ID); err == nil && stats.Rows > 0 {
		s := stats
		return stats.Rows, &s
	}
	if b.opts.TableRows != nil {
		if n := b.opts.TableRows(def.ID); n >= 0 {
			return n, nil
		}
	}
	return -1, nil
}

// layoutWidth is the number of columns in the joined layout so far.
func (b *binder) layoutWidth() int {
	if len(b.plan.Tables) == 0 {
		return 0
	}
	last := b.plan.Tables[len(b.plan.Tables)-1]
	return last.BaseCol + len(last.Def.Columns)
}

func (b *binder) bindJoin(j sql.Join) error {
	leftWidth := b.layoutWidth()
	right, err := b.addTable(j.Table)
	if err != nil {
		return err
	}
	rightIdx := len(b.plan.Tables) - 1

	on, err := b.bindExpr(j.On)
	if err != nil {
		return err
	}
	step := JoinStep{Kind: j.Kind, Right: rightIdx}
	var residuals []Expr
	for _, conj := range splitAnd(on) {
		l, r, ok := equiPair(conj, leftWidth, right)
		if ok {
			step.LeftKeys = append(step.LeftKeys, l)
			step.RightKeys = append(step.RightKeys, r)
			continue
		}
		if j.Kind == sql.LeftJoin {
			return errf("LEFT JOIN supports only equality conditions, got %s", conj)
		}
		residuals = append(residuals, conj)
	}
	if len(step.LeftKeys) == 0 {
		return errf("join ON must contain at least one equality between the two sides")
	}
	step.Residual = andAll(residuals)
	b.chooseStrategy(&step, right)
	b.plan.Joins = append(b.plan.Joins, step)
	b.leftRows = estJoinRows(b.plan, &step, b.leftRows, right.EstRows)
	b.leftRowBytes += estRowBytes(right)
	return nil
}

// equiPair splits an equality conjunct into (left-side, right-table-local)
// keys when one operand uses only already-joined columns and the other only
// the new table's columns.
func equiPair(e Expr, leftWidth int, right *TableScan) (l, r Expr, ok bool) {
	bin, isBin := e.(*Bin)
	if !isBin || bin.Op != sql.OpEq {
		return nil, nil, false
	}
	rightLo, rightHi := right.BaseCol, right.BaseCol+len(right.Def.Columns)
	side := func(x Expr) int { // 0=left only, 1=right only, -1=mixed/none
		set := map[int]bool{}
		colsUsed(x, set)
		if len(set) == 0 {
			return -1
		}
		allLeft, allRight := true, true
		for c := range set {
			if c >= leftWidth {
				allLeft = false
			}
			if c < rightLo || c >= rightHi {
				allRight = false
			}
		}
		switch {
		case allLeft:
			return 0
		case allRight:
			return 1
		default:
			return -1
		}
	}
	ls, rs := side(bin.L), side(bin.R)
	switch {
	case ls == 0 && rs == 1:
		return bin.L, shiftCols(bin.R, -right.BaseCol), true
	case ls == 1 && rs == 0:
		return bin.R, shiftCols(bin.L, -right.BaseCol), true
	}
	return nil, nil, false
}

// chooseStrategy decides data movement for a join (§2.1) from distribution
// styles and statistics, and tracks the left side's resulting distribution.
func (b *binder) chooseStrategy(step *JoinStep, right *TableScan) {
	// DISTSTYLE ALL: the inner side is already on every node.
	if right.Def.DistStyle == catalog.DistAll {
		step.Strategy = StrategyBroadcast
		return
	}
	// Co-located: left side hash-distributed by one of the left keys and
	// the right table hash-distributed by the matching right key.
	if b.leftDistCol >= 0 && right.Def.DistStyle == catalog.DistKey {
		for i := range step.LeftKeys {
			lc, lok := step.LeftKeys[i].(*Col)
			rc, rok := step.RightKeys[i].(*Col)
			if lok && rok && lc.Index == b.leftDistCol && rc.Index == right.Def.DistKeyCol {
				step.Strategy = StrategyCollocated
				return
			}
		}
	}
	// Cost the movement alternatives over estimated bytes: a broadcast
	// replicates the inner side to every node; a shuffle redistributes one
	// copy of each side. Pick whichever moves fewer bytes. BroadcastRows
	// survives as an override cap — inner sides estimated above it never
	// broadcast — and as the whole decision when one side's cardinality is
	// unknown (legacy small-inner-side threshold).
	if right.EstRows >= 0 && right.EstRows <= b.opts.BroadcastRows {
		if b.leftRows < 0 {
			step.Strategy = StrategyBroadcast
			return
		}
		nodes := b.opts.NumNodes
		if nodes < 1 {
			nodes = 1
		}
		rightBytes := float64(right.EstRows) * estRowBytes(right)
		leftBytes := float64(b.leftRows) * b.leftRowBytes
		if rightBytes*float64(nodes) <= rightBytes+leftBytes {
			step.Strategy = StrategyBroadcast
			return
		}
	}
	step.Strategy = StrategyShuffle
	// After a shuffle both sides are redistributed by the first join key.
	if lc, ok := step.LeftKeys[0].(*Col); ok {
		b.leftDistCol = lc.Index
	} else {
		b.leftDistCol = -1
	}
}

// bindWhere binds the WHERE clause, splits its conjuncts, pushes
// single-table conjuncts down to scans (when join kinds allow) and keeps
// the rest as the residual filter.
func (b *binder) bindWhere(where sql.Expr) error {
	if where == nil {
		return nil
	}
	bound, err := b.bindExpr(where)
	if err != nil {
		return err
	}
	if bound.Type() != types.Bool {
		return errf("WHERE must be boolean, got %s", bound.Type())
	}
	var residual []Expr
	for _, conj := range splitAnd(bound) {
		ti := b.singleTable(conj)
		if ti >= 0 && b.pushable(ti) {
			scan := b.plan.Tables[ti]
			local := shiftCols(conj, -scan.BaseCol)
			scan.Filter = andAll(append(splitAnd(scan.Filter), local))
			continue
		}
		residual = append(residual, conj)
	}
	b.plan.Where = andAll(residual)
	for _, scan := range b.plan.Tables {
		scan.Ranges = extractRanges(scan.Filter)
	}
	return nil
}

// singleTable returns the index of the only table a bound expression
// references, or -1.
func (b *binder) singleTable(e Expr) int {
	set := map[int]bool{}
	colsUsed(e, set)
	if len(set) == 0 {
		return -1
	}
	found := -1
	for c := range set {
		ti := b.tableOfCol(c)
		if found == -1 {
			found = ti
		} else if found != ti {
			return -1
		}
	}
	return found
}

func (b *binder) tableOfCol(c int) int {
	for i := len(b.plan.Tables) - 1; i >= 0; i-- {
		if c >= b.plan.Tables[i].BaseCol {
			return i
		}
	}
	return 0
}

// pushable reports whether a WHERE predicate on table ti commutes with the
// joins: always for the base table and inner-joined tables, never for the
// null-extended side of a LEFT JOIN.
func (b *binder) pushable(ti int) bool {
	if ti == 0 {
		return true
	}
	for _, j := range b.plan.Joins {
		if j.Right == ti {
			return j.Kind == sql.InnerJoin
		}
	}
	return false
}

// bindSelectList expands *, detects aggregation and binds projections.
func (b *binder) bindSelectList(stmt *sql.Select) error {
	// Expand * into per-table column refs.
	var items []sql.SelectItem
	for _, item := range stmt.Items {
		if !item.Star {
			items = append(items, item)
			continue
		}
		for _, ti := range b.starTables() {
			scan := b.plan.Tables[ti]
			for _, col := range scan.Def.Columns {
				items = append(items, sql.SelectItem{
					Expr: &sql.ColumnRef{Table: b.refNames[ti], Column: col.Name},
				})
			}
		}
	}
	if len(items) == 0 {
		return errf("empty select list")
	}

	hasAgg := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, item := range items {
		if containsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	b.plan.HasAgg = hasAgg

	if !hasAgg {
		for _, item := range items {
			e, err := b.bindExpr(item.Expr)
			if err != nil {
				return err
			}
			b.plan.Project = append(b.plan.Project, e)
			b.plan.FieldNames = append(b.plan.FieldNames, fieldName(item))
		}
		return nil
	}

	// Aggregation: bind GROUP BY over the joined layout first.
	for _, g := range stmt.GroupBy {
		e, err := b.bindExpr(g)
		if err != nil {
			return err
		}
		b.plan.GroupBy = append(b.plan.GroupBy, e)
	}
	// Projections and HAVING are rewritten over [groups..., aggs...].
	for _, item := range items {
		e, err := b.bindAggExpr(item.Expr)
		if err != nil {
			return err
		}
		b.plan.Project = append(b.plan.Project, e)
		b.plan.FieldNames = append(b.plan.FieldNames, fieldName(item))
	}
	if stmt.Having != nil {
		e, err := b.bindAggExpr(stmt.Having)
		if err != nil {
			return err
		}
		if e.Type() != types.Bool {
			return errf("HAVING must be boolean, got %s", e.Type())
		}
		b.plan.Having = e
	}
	return nil
}

// fieldName picks the output name for a select item.
func fieldName(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sql.ColumnRef:
		return e.Column
	case *sql.FuncCall:
		return strings.ToLower(string(e.Name))
	default:
		return strings.ToLower(e.String())
	}
}

// containsAggregate reports whether a parse-tree expression contains an
// aggregate function call.
func containsAggregate(e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.FuncCall:
		if x.IsAggregate() {
			return true
		}
		for _, a := range x.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *sql.Binary:
		return containsAggregate(x.Left) || containsAggregate(x.Right)
	case *sql.Unary:
		return containsAggregate(x.Expr)
	case *sql.IsNull:
		return containsAggregate(x.Expr)
	case *sql.Between:
		return containsAggregate(x.Expr) || containsAggregate(x.Lo) || containsAggregate(x.Hi)
	case *sql.In:
		if containsAggregate(x.Expr) {
			return true
		}
		for _, v := range x.List {
			if containsAggregate(v) {
				return true
			}
		}
	case *sql.Like:
		return containsAggregate(x.Expr)
	case *sql.Case:
		for _, w := range x.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Then) {
				return true
			}
		}
		if x.Else != nil {
			return containsAggregate(x.Else)
		}
	}
	return false
}

// bindOrderBy resolves ORDER BY keys to output columns.
func (b *binder) bindOrderBy(order []sql.OrderItem) error {
	for _, o := range order {
		idx, err := b.resolveOutput(o.Expr)
		if err != nil {
			return err
		}
		b.plan.OrderBy = append(b.plan.OrderBy, OrderKey{Index: idx, Desc: o.Desc})
	}
	return nil
}

// resolveOutput maps an ORDER BY expression to a projected column index:
// by alias/name first, then by structural equality with a projection.
func (b *binder) resolveOutput(e sql.Expr) (int, error) {
	if ref, ok := e.(*sql.ColumnRef); ok && ref.Table == "" {
		for i, name := range b.plan.FieldNames {
			if strings.EqualFold(name, ref.Column) {
				return i, nil
			}
		}
	}
	var bound Expr
	var err error
	if b.plan.HasAgg {
		bound, err = b.bindAggExpr(e)
	} else {
		bound, err = b.bindExpr(e)
	}
	if err != nil {
		return 0, errf("ORDER BY: %v", err)
	}
	want := bound.String()
	for i, p := range b.plan.Project {
		if p.String() == want {
			return i, nil
		}
	}
	return 0, errf("ORDER BY expression %s is not in the select list", e)
}

// pruneColumns computes each scan's NeedCols from every bound expression in
// the plan, so slices decode only the columns the query touches.
func (b *binder) pruneColumns() {
	global := map[int]bool{}
	collect := func(e Expr) {
		if e != nil {
			colsUsed(e, global)
		}
	}
	collect(b.plan.Where)
	for _, j := range b.plan.Joins {
		for _, k := range j.LeftKeys {
			collect(k)
		}
		collect(j.Residual)
		// RightKeys are table-local; account for them below.
	}
	for _, g := range b.plan.GroupBy {
		collect(g)
	}
	for _, a := range b.plan.Aggs {
		collect(a.Arg)
	}
	if !b.plan.HasAgg {
		for _, p := range b.plan.Project {
			collect(p)
		}
	}
	// Note: when HasAgg, Project/Having are over the aggregate layout and
	// reference no base columns.

	for ti, scan := range b.plan.Tables {
		local := map[int]bool{}
		for c := range global {
			if b.tableOfCol(c) == ti {
				local[c-scan.BaseCol] = true
			}
		}
		if scan.Filter != nil {
			colsUsed(scan.Filter, local)
		}
		for _, j := range b.plan.Joins {
			if j.Right == ti {
				for _, k := range j.RightKeys {
					colsUsed(k, local)
				}
			}
		}
		// Filter input columns come first so the scan can evaluate the
		// pushed-down predicate before materializing anything else
		// (predicate-first late materialization).
		inFilter := map[int]bool{}
		if scan.Filter != nil {
			colsUsed(scan.Filter, inFilter)
		}
		scan.NeedCols = scan.NeedCols[:0]
		for c := 0; c < len(scan.Def.Columns); c++ {
			if local[c] && inFilter[c] {
				scan.NeedCols = append(scan.NeedCols, c)
			}
		}
		for c := 0; c < len(scan.Def.Columns); c++ {
			if local[c] && !inFilter[c] {
				scan.NeedCols = append(scan.NeedCols, c)
			}
		}
		// A scan that feeds only COUNT(*) keeps NeedCols empty: the
		// executor serves row counts from block metadata, decoding
		// nothing at all.
	}
}

// splitAnd flattens nested AND conjuncts; nil input yields nil.
func splitAnd(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Bin); ok && b.Op == sql.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

// andAll rebuilds a conjunction; nil for an empty list.
func andAll(conjs []Expr) Expr {
	var out Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = &Bin{Op: sql.OpAnd, L: out, R: c, T: types.Bool}
		}
	}
	return out
}

// extractRanges derives zone-map bounds from a pushed-down filter's
// conjuncts: col = v, col </<=/>/>= v, col IN (v...), and the bound forms
// BETWEEN desugars into.
func extractRanges(filter Expr) []ColRange {
	var out []ColRange
	for _, conj := range splitAnd(filter) {
		switch x := conj.(type) {
		case *Bin:
			col, v, op, ok := colConstCmp(x)
			if !ok {
				continue
			}
			r := ColRange{Col: col.Index}
			switch op {
			case sql.OpEq:
				r.Lo, r.Hi, r.HasLo, r.HasHi = v, v, true, true
			case sql.OpGt, sql.OpGe:
				r.Lo, r.HasLo = v, true
			case sql.OpLt, sql.OpLe:
				r.Hi, r.HasHi = v, true
			default:
				continue
			}
			out = append(out, r)
		case *InList:
			col, ok := x.E.(*Col)
			if !ok || x.Not || len(x.Vals) == 0 {
				continue
			}
			lo, hi := x.Vals[0], x.Vals[0]
			valid := true
			for _, v := range x.Vals[1:] {
				if v.T != lo.T {
					valid = false
					break
				}
				if types.Compare(v, lo) < 0 {
					lo = v
				}
				if types.Compare(v, hi) > 0 {
					hi = v
				}
			}
			if valid {
				out = append(out, ColRange{Col: col.Index, Lo: lo, Hi: hi, HasLo: true, HasHi: true})
			}
		}
	}
	return out
}

// colConstCmp matches `col OP const` or `const OP col` (flipping the
// operator), with matching types.
func colConstCmp(b *Bin) (*Col, types.Value, sql.BinOp, bool) {
	if col, ok := b.L.(*Col); ok {
		if c, ok2 := b.R.(*Const); ok2 && !c.V.Null && c.V.T == col.T {
			return col, c.V, b.Op, true
		}
	}
	if col, ok := b.R.(*Col); ok {
		if c, ok2 := b.L.(*Const); ok2 && !c.V.Null && c.V.T == col.T {
			flip := map[sql.BinOp]sql.BinOp{
				sql.OpEq: sql.OpEq, sql.OpLt: sql.OpGt, sql.OpLe: sql.OpGe,
				sql.OpGt: sql.OpLt, sql.OpGe: sql.OpLe,
			}
			if f, ok3 := flip[b.Op]; ok3 {
				return col, c.V, f, true
			}
		}
	}
	return nil, types.Value{}, 0, false
}
