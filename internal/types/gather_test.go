package types

import (
	"fmt"
	"testing"
)

// boxedGather is the reference implementation Gather replaced: one Value
// box per element. Kept here so the specialized path is checked against it
// and the microbenchmark shows the win.
func boxedGather(v *Vector, sel []int) *Vector {
	out := NewVector(v.T, len(sel))
	for _, i := range sel {
		if i < 0 {
			out.AppendNull()
			continue
		}
		out.Append(v.Get(i))
	}
	return out
}

func gatherFixtures() map[string]*Vector {
	ints := NewVector(Int64, 0)
	floats := NewVector(Float64, 0)
	strs := NewVector(String, 0)
	withNulls := NewVector(Int64, 0)
	for i := 0; i < 100; i++ {
		ints.Append(NewInt(int64(i * 3)))
		floats.Append(NewFloat(float64(i) / 7))
		strs.Append(NewString(fmt.Sprintf("row-%d", i)))
		if i%5 == 0 {
			withNulls.AppendNull()
		} else {
			withNulls.Append(NewInt(int64(i)))
		}
	}
	return map[string]*Vector{"ints": ints, "floats": floats, "strs": strs, "nulls": withNulls}
}

func TestGatherMatchesBoxed(t *testing.T) {
	sels := map[string][]int{
		"ordered":  {0, 1, 2, 3, 50, 99},
		"shuffled": {99, 0, 42, 42, 7},
		"empty":    {},
		"nullext":  {5, -1, 10, -1, -1, 0},
	}
	for vn, v := range gatherFixtures() {
		for sn, sel := range sels {
			got := v.Gather(sel)
			want := boxedGather(v, sel)
			if !got.Equal(want) {
				t.Errorf("%s/%s: Gather mismatch\n got=%+v\nwant=%+v", vn, sn, got, want)
			}
		}
	}
}

func TestGatherNoMaskStaysUnmasked(t *testing.T) {
	v := NewVector(Int64, 0)
	for i := 0; i < 10; i++ {
		v.Append(NewInt(int64(i)))
	}
	out := v.Gather([]int{1, 3, 5})
	if out.Nulls != nil {
		t.Errorf("gather of null-free vector materialized a null mask")
	}
}

func TestAppendFrom(t *testing.T) {
	for vn, v := range gatherFixtures() {
		out := NewVector(v.T, 0)
		for i := v.Len() - 1; i >= 0; i-- {
			out.AppendFrom(v, i)
		}
		for i := 0; i < v.Len(); i++ {
			got, want := out.Get(v.Len()-1-i), v.Get(i)
			if got.Null != want.Null || (!got.Null && !Equal(got, want)) {
				t.Fatalf("%s: AppendFrom pos %d: got %v want %v", vn, i, got, want)
			}
		}
	}
}

// benchSel gathers every other row — the shape a filter or join produces.
func benchSel(n int) []int {
	sel := make([]int, 0, n/2)
	for i := 0; i < n; i += 2 {
		sel = append(sel, i)
	}
	return sel
}

func BenchmarkGatherSpecialized(b *testing.B) {
	for name, v := range gatherFixtures() {
		sel := benchSel(v.Len())
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v.Gather(sel)
			}
		})
	}
}

func BenchmarkGatherBoxed(b *testing.B) {
	for name, v := range gatherFixtures() {
		sel := benchSel(v.Len())
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				boxedGather(v, sel)
			}
		})
	}
}
