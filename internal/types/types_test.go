package types

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int":              Int64,
		"BIGINT":           Int64,
		"smallint":         Int64,
		"varchar":          String,
		"CHARACTER":        String,
		"double precision": Float64,
		"decimal":          Float64,
		"bool":             Bool,
		"date":             Date,
		"timestamp":        Timestamp,
		"blob":             Invalid,
	}
	for in, want := range cases {
		if got := ParseType(in); got != want {
			t.Errorf("ParseType(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	for _, typ := range []Type{Int64, Float64, String, Bool, Date, Timestamp} {
		if ParseType(typ.String()) != typ {
			t.Errorf("ParseType(%v.String()) != %v", typ, typ)
		}
	}
	if Invalid.String() != "INVALID" {
		t.Errorf("Invalid.String() = %q", Invalid.String())
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewFloat(3), "3.0"},
		{NewString("hello"), "hello"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewNull(Int64), "NULL"},
		{NewDate(0), "1970-01-01"},
		{NewDate(19723), "2024-01-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.1), NewFloat(1.2), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewNull(Int64), NewInt(math.MinInt64), -1},
		{NewNull(Int64), NewNull(Int64), 0},
		{NewInt(0), NewNull(Int64), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMismatchedTypesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare across types did not panic")
		}
	}()
	Compare(NewInt(1), NewFloat(1))
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt(a), NewInt(b)) == -Compare(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitiveStrings(t *testing.T) {
	f := func(a, b, c string) bool {
		va, vb, vc := NewString(a), NewString(b), NewString(c)
		if Compare(va, vb) <= 0 && Compare(vb, vc) <= 0 {
			return Compare(va, vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDateRoundTrip(t *testing.T) {
	f := func(days int32) bool {
		d := int64(days % 100000)
		return DateToDays(DaysToDate(d)) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("2015-05-31") // SIGMOD 2015 started May 31.
	if err != nil {
		t.Fatal(err)
	}
	if got := v.String(); got != "2015-05-31" {
		t.Errorf("round trip = %q", got)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("ParseDate accepted garbage")
	}
}

func TestParseTimestamp(t *testing.T) {
	v, err := ParseTimestamp("2013-02-14 09:30:00")
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2013, 2, 14, 9, 30, 0, 0, time.UTC).UnixMicro()
	if v.I != want {
		t.Errorf("micros = %d, want %d", v.I, want)
	}
	if _, err := ParseTimestamp("xyz"); err == nil {
		t.Error("ParseTimestamp accepted garbage")
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		t    Type
		in   string
		want Value
		bad  bool
	}{
		{Int64, "123", NewInt(123), false},
		{Int64, " 9 ", NewInt(9), false},
		{Int64, "", NewNull(Int64), false},
		{Int64, "abc", Value{}, true},
		{Float64, "2.25", NewFloat(2.25), false},
		{String, "", NewString(""), false},
		{String, "x", NewString("x"), false},
		{Bool, "t", NewBool(true), false},
		{Bool, "NO", NewBool(false), false},
		{Bool, "maybe", Value{}, true},
		{Date, "1999-12-31", NewDate(DateToDays(time.Date(1999, 12, 31, 0, 0, 0, 0, time.UTC))), false},
	}
	for _, c := range cases {
		got, err := ParseValue(c.t, c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseValue(%v, %q) should fail", c.t, c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseValue(%v, %q): %v", c.t, c.in, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("ParseValue(%v, %q) = %v, want %v", c.t, c.in, got, c.want)
		}
	}
}

func TestSchemaOrdinal(t *testing.T) {
	s := NewSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "Name", Type: String},
	)
	if got := s.Ordinal("ID"); got != 0 {
		t.Errorf("Ordinal(ID) = %d", got)
	}
	if got := s.Ordinal("name"); got != 1 {
		t.Errorf("Ordinal(name) = %d", got)
	}
	if got := s.Ordinal("missing"); got != -1 {
		t.Errorf("Ordinal(missing) = %d", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].I != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), NewString("a"), NewNull(Float64)}
	if got := r.String(); got != "1|a|NULL" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestNumericAndFixed(t *testing.T) {
	if !Int64.Numeric() || !Date.Numeric() || String.Numeric() || Bool.Numeric() {
		t.Error("Numeric misclassifies")
	}
	if !Int64.Fixed() || String.Fixed() || Invalid.Fixed() {
		t.Error("Fixed misclassifies")
	}
}

func TestAsFloat(t *testing.T) {
	if NewInt(3).AsFloat() != 3.0 {
		t.Error("int AsFloat")
	}
	if NewFloat(2.5).AsFloat() != 2.5 {
		t.Error("float AsFloat")
	}
}
