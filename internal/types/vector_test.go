package types

import (
	"testing"
	"testing/quick"
)

func TestVectorAppendGet(t *testing.T) {
	v := NewVector(Int64, 4)
	v.Append(NewInt(10))
	v.AppendNull()
	v.Append(NewInt(-3))
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	if got := v.Get(0); !Equal(got, NewInt(10)) {
		t.Errorf("Get(0) = %v", got)
	}
	if !v.IsNull(1) {
		t.Error("position 1 should be null")
	}
	if got := v.Get(1); !got.Null {
		t.Errorf("Get(1) = %v, want NULL", got)
	}
	if got := v.Get(2); !Equal(got, NewInt(-3)) {
		t.Errorf("Get(2) = %v", got)
	}
}

func TestVectorNullMaskAfterLateNull(t *testing.T) {
	v := NewVector(String, 0)
	v.Append(NewString("a"))
	v.Append(NewString("b"))
	v.AppendNull()
	if v.IsNull(0) || v.IsNull(1) || !v.IsNull(2) {
		t.Errorf("null mask wrong: %v", v.Nulls)
	}
	if v.NullCount() != 1 {
		t.Errorf("NullCount = %d", v.NullCount())
	}
}

func TestVectorTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	NewVector(Int64, 0).Append(NewString("x"))
}

func TestVectorSliceSharesStorage(t *testing.T) {
	v := NewVector(Float64, 0)
	for i := 0; i < 10; i++ {
		v.Append(NewFloat(float64(i)))
	}
	s := v.Slice(2, 5)
	if s.Len() != 3 || s.Floats[0] != 2 {
		t.Fatalf("slice = %+v", s)
	}
	s.Floats[0] = 99
	if v.Floats[2] != 99 {
		t.Error("Slice should share storage")
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := NewVector(Int64, 0)
	v.Append(NewInt(1))
	c := v.Clone()
	c.Ints[0] = 7
	if v.Ints[0] != 1 {
		t.Error("Clone shares storage")
	}
	if !v.Equal(v.Clone()) {
		t.Error("Clone not Equal to original")
	}
}

func TestVectorMinMax(t *testing.T) {
	v := NewVector(Int64, 0)
	v.AppendNull()
	v.Append(NewInt(5))
	v.Append(NewInt(-2))
	v.Append(NewInt(9))
	min, max, ok := v.MinMax()
	if !ok || min.I != -2 || max.I != 9 {
		t.Errorf("MinMax = %v %v %v", min, max, ok)
	}

	allNull := NewVector(Int64, 0)
	allNull.AppendNull()
	if _, _, ok := allNull.MinMax(); ok {
		t.Error("MinMax of all-null should be !ok")
	}
	if _, _, ok := NewVector(String, 0).MinMax(); ok {
		t.Error("MinMax of empty should be !ok")
	}
}

func TestVectorMinMaxStrings(t *testing.T) {
	v := NewVector(String, 0)
	for _, s := range []string{"pear", "apple", "zebra"} {
		v.Append(NewString(s))
	}
	min, max, _ := v.MinMax()
	if min.S != "apple" || max.S != "zebra" {
		t.Errorf("MinMax = %v %v", min, max)
	}
}

func TestVectorEqual(t *testing.T) {
	a := NewVector(Int64, 0)
	b := NewVector(Int64, 0)
	a.Append(NewInt(1))
	b.Append(NewInt(1))
	if !a.Equal(b) {
		t.Error("equal vectors not Equal")
	}
	b.AppendNull()
	if a.Equal(b) {
		t.Error("different lengths Equal")
	}
	a.Append(NewInt(0)) // same placeholder payload, but non-null vs null
	if a.Equal(b) {
		t.Error("null vs zero Equal")
	}
}

func TestVectorMinMaxMatchesScalarScan(t *testing.T) {
	f := func(vals []int64) bool {
		v := NewVector(Int64, len(vals))
		for _, x := range vals {
			v.Append(NewInt(x))
		}
		min, max, ok := v.MinMax()
		if len(vals) == 0 {
			return !ok
		}
		wantMin, wantMax := vals[0], vals[0]
		for _, x := range vals {
			if x < wantMin {
				wantMin = x
			}
			if x > wantMax {
				wantMax = x
			}
		}
		return ok && min.I == wantMin && max.I == wantMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorByteSize(t *testing.T) {
	v := NewVector(Int64, 0)
	v.Append(NewInt(1))
	v.Append(NewInt(2))
	if v.ByteSize() != 16 {
		t.Errorf("ByteSize = %d", v.ByteSize())
	}
	s := NewVector(String, 0)
	s.Append(NewString("abc"))
	if s.ByteSize() != 7 {
		t.Errorf("string ByteSize = %d", s.ByteSize())
	}
}
