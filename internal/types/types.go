// Package types defines the value model shared by every layer of the
// warehouse: column types, typed scalar values, rows and schemas.
//
// The engine is columnar, so the hot paths operate on typed vectors
// ([]int64, []float64, []string) rather than on Value; Value exists for the
// planner (constants), the interpreted baseline engine, result sets and the
// wire protocol.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type identifies a column type. The set mirrors the types the paper's
// engine inherits from PostgreSQL that matter for analytics workloads.
type Type uint8

const (
	// Invalid is the zero Type and never describes real data.
	Invalid Type = iota
	// Int64 covers SMALLINT/INT/BIGINT; all integers are widened to 64 bits.
	Int64
	// Float64 covers REAL/DOUBLE PRECISION.
	Float64
	// String covers CHAR/VARCHAR/TEXT.
	String
	// Bool covers BOOLEAN.
	Bool
	// Date is a calendar day stored as days since the Unix epoch.
	Date
	// Timestamp is an instant stored as microseconds since the Unix epoch.
	Timestamp
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE PRECISION"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	case Date:
		return "DATE"
	case Timestamp:
		return "TIMESTAMP"
	default:
		return "INVALID"
	}
}

// Numeric reports whether the type supports arithmetic.
func (t Type) Numeric() bool {
	switch t {
	case Int64, Float64, Date, Timestamp:
		return true
	}
	return false
}

// Fixed reports whether values of the type have a fixed-width physical
// representation (everything except String).
func (t Type) Fixed() bool { return t != String && t != Invalid }

// ParseType maps a SQL type name to a Type. Unknown names return Invalid.
func ParseType(name string) Type {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "SMALLINT", "INT2", "INTEGER", "INT", "INT4", "BIGINT", "INT8":
		return Int64
	case "REAL", "FLOAT4", "FLOAT", "FLOAT8", "DOUBLE", "DOUBLE PRECISION", "DECIMAL", "NUMERIC":
		return Float64
	case "CHAR", "VARCHAR", "TEXT", "BPCHAR", "CHARACTER", "CHARACTER VARYING":
		return String
	case "BOOLEAN", "BOOL":
		return Bool
	case "DATE":
		return Date
	case "TIMESTAMP", "TIMESTAMPTZ", "DATETIME":
		return Timestamp
	default:
		return Invalid
	}
}

// Value is a nullable typed scalar. Exactly one of I, F, S carries the
// payload, selected by T; Null overrides the payload entirely.
//
// Date values store days in I; Timestamp values store microseconds in I;
// Bool stores 0/1 in I.
type Value struct {
	T    Type
	Null bool
	I    int64
	F    float64
	S    string
}

// Convenience constructors.

// NewInt returns a non-null Int64 value.
func NewInt(v int64) Value { return Value{T: Int64, I: v} }

// NewFloat returns a non-null Float64 value.
func NewFloat(v float64) Value { return Value{T: Float64, F: v} }

// NewString returns a non-null String value.
func NewString(v string) Value { return Value{T: String, S: v} }

// NewBool returns a non-null Bool value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{T: Bool, I: i}
}

// NewDate returns a non-null Date value holding days since the Unix epoch.
func NewDate(days int64) Value { return Value{T: Date, I: days} }

// NewTimestamp returns a non-null Timestamp value holding microseconds since
// the Unix epoch.
func NewTimestamp(micros int64) Value { return Value{T: Timestamp, I: micros} }

// NewNull returns the null value of type t.
func NewNull(t Type) Value { return Value{T: t, Null: true} }

// Bool reports the truth value of a Bool Value; null is false.
func (v Value) Bool() bool { return !v.Null && v.T == Bool && v.I != 0 }

// AsFloat converts a numeric value to float64 for mixed-type arithmetic.
func (v Value) AsFloat() float64 {
	if v.T == Float64 {
		return v.F
	}
	return float64(v.I)
}

// WithoutNull returns the value with its null flag cleared, exposing the
// physical placeholder payload. Codecs use it; SQL evaluation never should.
func (v Value) WithoutNull() Value {
	v.Null = false
	return v
}

// IsZero reports whether v is the zero Value (no type at all), distinct from
// a typed NULL.
func (v Value) IsZero() bool { return v.T == Invalid && !v.Null && v.I == 0 && v.F == 0 && v.S == "" }

// String renders the value the way the CLI and test fixtures expect.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.T {
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return formatFloat(v.F)
	case String:
		return v.S
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case Date:
		return DaysToDate(v.I).Format("2006-01-02")
	case Timestamp:
		return time.UnixMicro(v.I).UTC().Format("2006-01-02 15:04:05.000000")
	default:
		return "<invalid>"
	}
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Compare orders two values of the same type. NULLs sort first (before any
// non-null value), matching the engine's ORDER BY ... NULLS FIRST default.
// It panics if the types differ, which always indicates a planner bug.
func Compare(a, b Value) int {
	if a.T != b.T {
		panic(fmt.Sprintf("types: comparing %s with %s", a.T, b.T))
	}
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	switch a.T {
	case Int64, Bool, Date, Timestamp:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case Float64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case String:
		return strings.Compare(a.S, b.S)
	default:
		panic("types: comparing invalid values")
	}
}

// Equal reports whether two values are the same SQL value. Unlike SQL
// three-valued logic, NULL equals NULL here; the executor handles ternary
// semantics separately where required.
func Equal(a, b Value) bool { return a.T == b.T && Compare(a, b) == 0 }

// Column describes one column of a schema.
type Column struct {
	Name string
	Type Type
	// NotNull records a NOT NULL constraint from CREATE TABLE.
	NotNull bool
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return Schema{Columns: cols} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Columns) }

// Ordinal returns the position of the named column (case-insensitive), or -1.
func (s Schema) Ordinal(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Types returns the column types in order.
func (s Schema) Types() []Type {
	ts := make([]Type, len(s.Columns))
	for i, c := range s.Columns {
		ts[i] = c.Type
	}
	return ts
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	ns := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		ns[i] = c.Name
	}
	return ns
}

// Row is one tuple of values, aligned with a Schema.
type Row []Value

// Clone returns a copy of the row that shares no mutable state.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a pipe-separated line, the CLI's row format.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

// epoch is the zero day for Date arithmetic.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// DateToDays converts a civil time to days since the Unix epoch.
func DateToDays(t time.Time) int64 {
	t = t.UTC()
	d := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
	return int64(d.Sub(epoch) / (24 * time.Hour))
}

// DaysToDate converts days since the Unix epoch back to a civil time.
func DaysToDate(days int64) time.Time {
	return epoch.Add(time.Duration(days) * 24 * time.Hour)
}

// ParseDate parses a YYYY-MM-DD literal into a Date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", strings.TrimSpace(s))
	if err != nil {
		return Value{}, fmt.Errorf("types: bad date %q: %w", s, err)
	}
	return NewDate(DateToDays(t)), nil
}

// ParseTimestamp parses a timestamp literal in a few common layouts.
func ParseTimestamp(s string) (Value, error) {
	s = strings.TrimSpace(s)
	for _, layout := range []string{
		"2006-01-02 15:04:05.999999",
		"2006-01-02 15:04:05",
		"2006-01-02T15:04:05Z07:00",
		"2006-01-02",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return NewTimestamp(t.UTC().UnixMicro()), nil
		}
	}
	return Value{}, fmt.Errorf("types: bad timestamp %q", s)
}

// ParseValue parses a textual field into a value of type t, as COPY does.
// An empty field parses as NULL for every type except String.
func ParseValue(t Type, field string) (Value, error) {
	if field == "" && t != String {
		return NewNull(t), nil
	}
	switch t {
	case Int64:
		i, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("types: bad integer %q: %w", field, err)
		}
		return NewInt(i), nil
	case Float64:
		f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return Value{}, fmt.Errorf("types: bad float %q: %w", field, err)
		}
		return NewFloat(f), nil
	case String:
		return NewString(field), nil
	case Bool:
		switch strings.ToLower(strings.TrimSpace(field)) {
		case "t", "true", "1", "y", "yes":
			return NewBool(true), nil
		case "f", "false", "0", "n", "no":
			return NewBool(false), nil
		}
		return Value{}, fmt.Errorf("types: bad boolean %q", field)
	case Date:
		return ParseDate(field)
	case Timestamp:
		return ParseTimestamp(field)
	default:
		return Value{}, fmt.Errorf("types: cannot parse into %s", t)
	}
}
