package types

import "fmt"

// Vector is a typed column batch: the unit the compiled engine, the codecs
// and the block store all operate on. Fixed-width types live in Ints or
// Floats (Bool, Date and Timestamp share Ints); strings live in Strs.
// Nulls, when non-nil, marks null positions; values at null positions are
// zero placeholders so the payload slices always have Len entries.
type Vector struct {
	T      Type
	Nulls  []bool
	Ints   []int64
	Floats []float64
	Strs   []string
}

// NewVector returns an empty vector of type t with capacity hint n.
func NewVector(t Type, n int) *Vector {
	v := &Vector{T: t}
	switch t {
	case Float64:
		v.Floats = make([]float64, 0, n)
	case String:
		v.Strs = make([]string, 0, n)
	default:
		v.Ints = make([]int64, 0, n)
	}
	return v
}

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.T {
	case Float64:
		return len(v.Floats)
	case String:
		return len(v.Strs)
	default:
		return len(v.Ints)
	}
}

// IsNull reports whether position i holds SQL NULL.
func (v *Vector) IsNull(i int) bool { return v.Nulls != nil && v.Nulls[i] }

// HasNulls reports whether any position is null.
func (v *Vector) HasNulls() bool {
	for _, n := range v.Nulls {
		if n {
			return true
		}
	}
	return false
}

// ensureNulls materializes the null mask at the current length.
func (v *Vector) ensureNulls() {
	for len(v.Nulls) < v.Len() {
		v.Nulls = append(v.Nulls, false)
	}
}

// Append adds a value, which must match the vector type (or be null).
func (v *Vector) Append(val Value) {
	if val.Null {
		v.AppendNull()
		return
	}
	if val.T != v.T {
		panic(fmt.Sprintf("types: appending %s to %s vector", val.T, v.T))
	}
	switch v.T {
	case Float64:
		v.Floats = append(v.Floats, val.F)
	case String:
		v.Strs = append(v.Strs, val.S)
	default:
		v.Ints = append(v.Ints, val.I)
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
}

// AppendNull adds a SQL NULL.
func (v *Vector) AppendNull() {
	v.ensureNulls()
	switch v.T {
	case Float64:
		v.Floats = append(v.Floats, 0)
	case String:
		v.Strs = append(v.Strs, "")
	default:
		v.Ints = append(v.Ints, 0)
	}
	v.Nulls = append(v.Nulls, true)
}

// Get returns the value at position i.
func (v *Vector) Get(i int) Value {
	if v.IsNull(i) {
		return NewNull(v.T)
	}
	switch v.T {
	case Float64:
		return Value{T: v.T, F: v.Floats[i]}
	case String:
		return Value{T: v.T, S: v.Strs[i]}
	default:
		return Value{T: v.T, I: v.Ints[i]}
	}
}

// Gather returns a new vector holding the values at the selected positions,
// in selection order, copying payload slices directly instead of boxing each
// value through Value. A negative position yields SQL NULL — the hash join's
// null-extension for unmatched left rows.
func (v *Vector) Gather(sel []int) *Vector {
	out := &Vector{T: v.T}
	n := len(sel)
	masked := v.Nulls != nil
	if !masked {
		for _, i := range sel {
			if i < 0 {
				masked = true
				break
			}
		}
	}
	if masked {
		out.Nulls = make([]bool, n)
	}
	switch v.T {
	case Float64:
		out.Floats = make([]float64, n)
		for o, i := range sel {
			if i < 0 {
				out.Nulls[o] = true
				continue
			}
			out.Floats[o] = v.Floats[i]
			if v.Nulls != nil {
				out.Nulls[o] = v.Nulls[i]
			}
		}
	case String:
		out.Strs = make([]string, n)
		for o, i := range sel {
			if i < 0 {
				out.Nulls[o] = true
				continue
			}
			out.Strs[o] = v.Strs[i]
			if v.Nulls != nil {
				out.Nulls[o] = v.Nulls[i]
			}
		}
	default:
		out.Ints = make([]int64, n)
		for o, i := range sel {
			if i < 0 {
				out.Nulls[o] = true
				continue
			}
			out.Ints[o] = v.Ints[i]
			if v.Nulls != nil {
				out.Nulls[o] = v.Nulls[i]
			}
		}
	}
	return out
}

// AppendFrom appends src's position i without boxing through Value. The
// vector types must match.
func (v *Vector) AppendFrom(src *Vector, i int) {
	if src.T != v.T {
		panic(fmt.Sprintf("types: appending from %s to %s vector", src.T, v.T))
	}
	if src.IsNull(i) {
		v.AppendNull()
		return
	}
	switch v.T {
	case Float64:
		v.Floats = append(v.Floats, src.Floats[i])
	case String:
		v.Strs = append(v.Strs, src.Strs[i])
	default:
		v.Ints = append(v.Ints, src.Ints[i])
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
}

// Slice returns a view of positions [lo, hi). The view shares storage.
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{T: v.T}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	switch v.T {
	case Float64:
		out.Floats = v.Floats[lo:hi]
	case String:
		out.Strs = v.Strs[lo:hi]
	default:
		out.Ints = v.Ints[lo:hi]
	}
	return out
}

// View returns a shallow copy whose payload slices are capacity-clamped
// (full slice expressions), so any append through the view reallocates
// instead of writing into v's backing arrays. Callers handing out cached
// or otherwise shared vectors use it to stay safe against downstream
// in-place appends.
func (v *Vector) View() *Vector {
	out := &Vector{T: v.T}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[:len(v.Nulls):len(v.Nulls)]
	}
	if v.Ints != nil {
		out.Ints = v.Ints[:len(v.Ints):len(v.Ints)]
	}
	if v.Floats != nil {
		out.Floats = v.Floats[:len(v.Floats):len(v.Floats)]
	}
	if v.Strs != nil {
		out.Strs = v.Strs[:len(v.Strs):len(v.Strs)]
	}
	return out
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	out := &Vector{T: v.T}
	if v.Nulls != nil {
		out.Nulls = append([]bool(nil), v.Nulls...)
	}
	out.Ints = append([]int64(nil), v.Ints...)
	out.Floats = append([]float64(nil), v.Floats...)
	out.Strs = append([]string(nil), v.Strs...)
	return out
}

// MinMax returns the smallest and largest non-null values, for zone maps.
// ok is false when every value is null or the vector is empty.
func (v *Vector) MinMax() (min, max Value, ok bool) {
	n := v.Len()
	for i := 0; i < n; i++ {
		if v.IsNull(i) {
			continue
		}
		val := v.Get(i)
		if !ok {
			min, max, ok = val, val, true
			continue
		}
		if Compare(val, min) < 0 {
			min = val
		}
		if Compare(val, max) > 0 {
			max = val
		}
	}
	return min, max, ok
}

// NullCount returns the number of null positions.
func (v *Vector) NullCount() int {
	n := 0
	for _, isNull := range v.Nulls {
		if isNull {
			n++
		}
	}
	return n
}

// Equal reports whether two vectors hold the same logical values.
func (v *Vector) Equal(o *Vector) bool {
	if v.T != o.T || v.Len() != o.Len() {
		return false
	}
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) != o.IsNull(i) {
			return false
		}
		if v.IsNull(i) {
			continue
		}
		if !Equal(v.Get(i), o.Get(i)) {
			return false
		}
	}
	return true
}

// ByteSize estimates the in-memory payload size, used by the compression
// analyzer to compute ratios and by the cost accounting for network shuffles.
func (v *Vector) ByteSize() int64 {
	var b int64
	switch v.T {
	case String:
		for _, s := range v.Strs {
			b += int64(len(s)) + 4
		}
	case Float64:
		b = int64(len(v.Floats)) * 8
	default:
		b = int64(len(v.Ints)) * 8
	}
	if v.Nulls != nil {
		b += int64(len(v.Nulls)+7) / 8
	}
	return b
}
