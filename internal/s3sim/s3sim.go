// Package s3sim simulates the Amazon S3 dependency of §2.3: a durable
// object store with GET/PUT/LIST semantics, first-byte latency, per-stream
// bandwidth, a second-region replica for disaster recovery, and failure
// injection for durability tests. The data plane uses it as the third read
// replica of every block and the backup layer as its backing store.
package s3sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"redshift/internal/faults"
	"redshift/internal/sim"
)

// ErrNoSuchKey reports a GET/DELETE of a missing object.
var ErrNoSuchKey = fmt.Errorf("s3sim: no such key")

// Stats are cumulative operation counters.
type Stats struct {
	Gets, Puts, Deletes, Lists int64
	BytesIn, BytesOut          int64
}

// Store is one region's object store. The zero value is not usable; call
// New.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]byte

	// Delay model. When clock is nil operations complete instantly.
	clock   sim.Clock
	latency time.Duration
	mbps    float64

	// Fault injection. When inj is non-nil, Get/Put consult the sites
	// "<sitePrefix>.get" / "<sitePrefix>.put" before touching the map —
	// the request either sleeps (latency rule), errors (probability
	// rule), or proceeds.
	inj        *faults.Injector
	sitePrefix string

	gets, puts, deletes, lists atomic.Int64
	bytesIn, bytesOut          atomic.Int64
}

// New returns an empty store with no delays.
func New() *Store {
	return &Store{objects: map[string][]byte{}}
}

// WithDelays configures the latency/bandwidth model. Pass sim.Wall{Scale: n}
// to run n× faster than real time, or a *sim.VClock inside a simulation.
func (s *Store) WithDelays(clock sim.Clock, latency time.Duration, mbps float64) *Store {
	s.clock = clock
	s.latency = latency
	s.mbps = mbps
	return s
}

func (s *Store) delay(bytes int) {
	if s.clock == nil {
		return
	}
	d := s.latency
	if s.mbps > 0 {
		d += time.Duration(float64(bytes) / (s.mbps * 1e6) * float64(time.Second))
	}
	s.clock.Sleep(d)
}

// WithFaults routes requests through an injector under the given site
// prefix ("s3.data", "s3.backup"); nil detaches.
func (s *Store) WithFaults(inj *faults.Injector, sitePrefix string) *Store {
	s.inj = inj
	s.sitePrefix = sitePrefix
	return s
}

// Put stores an object (full overwrite, last write wins).
func (s *Store) Put(key string, data []byte) error {
	if key == "" {
		return fmt.Errorf("s3sim: empty key")
	}
	if s.inj != nil {
		if err := s.inj.Hit(s.sitePrefix + ".put"); err != nil {
			return err
		}
	}
	s.delay(len(data))
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.objects[key] = cp
	s.mu.Unlock()
	s.puts.Add(1)
	s.bytesIn.Add(int64(len(data)))
	return nil
}

// Get retrieves an object.
func (s *Store) Get(key string) ([]byte, error) {
	if s.inj != nil {
		if err := s.inj.Hit(s.sitePrefix + ".get"); err != nil {
			return nil, err
		}
	}
	s.mu.RLock()
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchKey, key)
	}
	s.delay(len(data))
	s.gets.Add(1)
	s.bytesOut.Add(int64(len(data)))
	return append([]byte(nil), data...), nil
}

// Exists reports whether the key is present (a HEAD request).
func (s *Store) Exists(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[key]
	return ok
}

// Delete removes an object; deleting a missing key is an error, unlike S3,
// because in this system it always indicates a bookkeeping bug.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchKey, key)
	}
	delete(s.objects, key)
	s.deletes.Add(1)
	return nil
}

// List returns the keys under a prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.lists.Add(1)
	var out []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns an object's size without transferring it.
func (s *Store) Size(key string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchKey, key)
	}
	return int64(len(data)), nil
}

// TotalBytes returns the sum of object sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, d := range s.objects {
		n += int64(len(d))
	}
	return n
}

// NumObjects returns the object count.
func (s *Store) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Stats snapshots the operation counters.
func (s *Store) Stats() Stats {
	return Stats{
		Gets: s.gets.Load(), Puts: s.puts.Load(),
		Deletes: s.deletes.Load(), Lists: s.lists.Load(),
		BytesIn: s.bytesIn.Load(), BytesOut: s.bytesOut.Load(),
	}
}

// Drop destroys an object without bookkeeping — failure injection for
// durability tests (S3 promises 11 nines; this is the other case).
func (s *Store) Drop(key string) {
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
}

// Corrupt flips a byte of an object — bit-rot injection.
func (s *Store) Corrupt(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if data, ok := s.objects[key]; ok && len(data) > 0 {
		data[len(data)/2] ^= 0xFF
	}
}

// CopyTo replicates every object under prefix into another store (the
// second-region disaster-recovery backup of §3.2). It returns the bytes
// copied.
func (s *Store) CopyTo(dst *Store, prefix string) (int64, error) {
	var total int64
	for _, key := range s.List(prefix) {
		data, err := s.Get(key)
		if err != nil {
			return total, err
		}
		if err := dst.Put(key, data); err != nil {
			return total, err
		}
		total += int64(len(data))
	}
	return total, nil
}
