package s3sim

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"redshift/internal/sim"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	if err := s.Put("a/b/1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b/1")
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if !s.Exists("a/b/1") || s.Exists("nope") {
		t.Error("Exists wrong")
	}
	if n, _ := s.Size("a/b/1"); n != 5 {
		t.Errorf("Size = %d", n)
	}
	if err := s.Put("", []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
}

func TestGetCopiesAreIsolated(t *testing.T) {
	s := New()
	s.Put("k", []byte("abc"))
	got, _ := s.Get("k")
	got[0] = 'X'
	again, _ := s.Get("k")
	if again[0] != 'a' {
		t.Error("Get returned shared buffer")
	}
}

func TestDeleteAndErrors(t *testing.T) {
	s := New()
	s.Put("k", []byte("v"))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("double delete err = %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("Get deleted err = %v", err)
	}
}

func TestListPrefix(t *testing.T) {
	s := New()
	for _, k := range []string{"b/2", "a/1", "a/2", "c"} {
		s.Put(k, []byte("x"))
	}
	got := s.List("a/")
	if len(got) != 2 || got[0] != "a/1" || got[1] != "a/2" {
		t.Errorf("List = %v", got)
	}
	if all := s.List(""); len(all) != 4 {
		t.Errorf("List all = %v", all)
	}
}

func TestStatsAndTotals(t *testing.T) {
	s := New()
	s.Put("a", make([]byte, 100))
	s.Put("b", make([]byte, 50))
	s.Get("a")
	st := s.Stats()
	if st.Puts != 2 || st.Gets != 1 || st.BytesIn != 150 || st.BytesOut != 100 {
		t.Errorf("stats = %+v", st)
	}
	if s.TotalBytes() != 150 || s.NumObjects() != 2 {
		t.Errorf("totals = %d / %d", s.TotalBytes(), s.NumObjects())
	}
}

func TestFailureInjection(t *testing.T) {
	s := New()
	s.Put("k", []byte("payload"))
	s.Corrupt("k")
	got, _ := s.Get("k")
	if bytes.Equal(got, []byte("payload")) {
		t.Error("Corrupt did nothing")
	}
	s.Drop("k")
	if s.Exists("k") {
		t.Error("Drop did nothing")
	}
}

func TestCrossRegionCopy(t *testing.T) {
	src, dst := New(), New()
	src.Put("backup/1", []byte("aa"))
	src.Put("backup/2", []byte("bbb"))
	src.Put("other/x", []byte("c"))
	n, err := src.CopyTo(dst, "backup/")
	if err != nil || n != 5 {
		t.Fatalf("copied %d, %v", n, err)
	}
	if dst.NumObjects() != 2 || dst.Exists("other/x") {
		t.Errorf("dst = %v", dst.List(""))
	}
}

func TestDelayModelOnVirtualClock(t *testing.T) {
	clock := sim.NewVClock(time.Unix(0, 0))
	s := New().WithDelays(clock, 30*time.Millisecond, 100) // 100 MB/s
	var elapsed time.Duration
	clock.Go(func() {
		start := clock.Now()
		s.Put("k", make([]byte, 50*1e6)) // 50 MB → 0.5s + 30ms
		elapsed = clock.Now().Sub(start)
	})
	clock.Run()
	want := 530 * time.Millisecond
	if elapsed != want {
		t.Errorf("simulated PUT took %v, want %v", elapsed, want)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%4))
			s.Put(key, []byte{byte(i)})
			s.Get(key)
			s.List("")
		}(i)
	}
	wg.Wait()
	if s.NumObjects() != 4 {
		t.Errorf("objects = %d", s.NumObjects())
	}
}
