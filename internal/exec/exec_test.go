package exec

import (
	"fmt"
	"testing"

	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// both runs a subtest in each engine mode — every behavior must agree.
func both(t *testing.T, fn func(t *testing.T, mode Mode)) {
	t.Helper()
	for _, mode := range []Mode{Compiled, Interpreted} {
		t.Run(mode.String(), func(t *testing.T) { fn(t, mode) })
	}
}

func col(i int, t types.Type) plan.Expr { return &plan.Col{Index: i, T: t} }
func icon(v int64) plan.Expr            { return &plan.Const{V: types.NewInt(v)} }
func fcon(v float64) plan.Expr          { return &plan.Const{V: types.NewFloat(v)} }
func scon(s string) plan.Expr           { return &plan.Const{V: types.NewString(s)} }
func bin(op sql.BinOp, l, r plan.Expr, t types.Type) plan.Expr {
	return &plan.Bin{Op: op, L: l, R: r, T: t}
}

// intBatch builds a single-column Int64 batch; -1 sentinel means NULL when
// nullAt matches the index.
func intBatch(vals []int64, nulls map[int]bool) *Batch {
	v := types.NewVector(types.Int64, len(vals))
	for i, x := range vals {
		if nulls[i] {
			v.AppendNull()
		} else {
			v.Append(types.NewInt(x))
		}
	}
	b := NewBatch(1)
	b.Cols[0] = v
	b.N = v.Len()
	return b
}

func evalOne(t *testing.T, mode Mode, e plan.Expr, b *Batch) *types.Vector {
	t.Helper()
	ev, err := NewEvaluator(mode, e)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ev.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmeticBothModes(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		b := intBatch([]int64{1, 2, 3, 0}, map[int]bool{3: true})
		e := bin(sql.OpAdd, bin(sql.OpMul, col(0, types.Int64), icon(10), types.Int64), icon(5), types.Int64)
		v := evalOne(t, mode, e, b)
		want := []int64{15, 25, 35}
		for i, w := range want {
			if v.IsNull(i) || v.Ints[i] != w {
				t.Errorf("row %d = %v, want %d", i, v.Get(i), w)
			}
		}
		if !v.IsNull(3) {
			t.Error("null row should propagate")
		}
	})
}

func TestDivisionByZeroBothModes(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		b := intBatch([]int64{10, 0}, nil)
		e := bin(sql.OpDiv, icon(100), col(0, types.Int64), types.Int64)
		ev, err := NewEvaluator(mode, e)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Eval(b); err == nil {
			t.Error("division by zero not reported")
		}
	})
}

func TestDivisionByZeroSkippedOnNullRows(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		// Null placeholder payload is 0 — dividing by a NULL must not
		// raise division by zero.
		b := intBatch([]int64{5, 0}, map[int]bool{1: true})
		e := bin(sql.OpDiv, icon(100), col(0, types.Int64), types.Int64)
		v := evalOne(t, mode, e, b)
		if v.Ints[0] != 20 || !v.IsNull(1) {
			t.Errorf("got %v %v", v.Get(0), v.Get(1))
		}
	})
}

func TestComparisonsAndTernaryLogic(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		b := intBatch([]int64{1, 5, 9, 0}, map[int]bool{3: true})
		lt := bin(sql.OpLt, col(0, types.Int64), icon(5), types.Bool)
		ge := bin(sql.OpGe, col(0, types.Int64), icon(9), types.Bool)
		orE := bin(sql.OpOr, lt, ge, types.Bool)
		v := evalOne(t, mode, orE, b)
		wantTrue := []bool{true, false, true}
		for i, w := range wantTrue {
			if got := !v.IsNull(i) && v.Ints[i] != 0; got != w {
				t.Errorf("row %d = %v, want %v", i, got, w)
			}
		}
		if !v.IsNull(3) {
			t.Error("NULL OR NULL should be NULL")
		}

		// NULL AND FALSE = FALSE (ternary).
		andE := bin(sql.OpAnd,
			bin(sql.OpLt, col(0, types.Int64), icon(100), types.Bool), // NULL on row 3
			&plan.Const{V: types.NewBool(false)}, types.Bool)
		v2 := evalOne(t, mode, andE, b)
		if v2.IsNull(3) || v2.Ints[3] != 0 {
			t.Error("NULL AND FALSE must be FALSE")
		}
	})
}

func TestStringOpsBothModes(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		v := types.NewVector(types.String, 3)
		v.Append(types.NewString("Books"))
		v.Append(types.NewString("music"))
		v.AppendNull()
		b := NewBatch(1)
		b.Cols[0] = v
		b.N = 3

		lower := &plan.Call{Name: sql.FuncLower, Args: []plan.Expr{col(0, types.String)}, T: types.String}
		lv := evalOne(t, mode, lower, b)
		if lv.Strs[0] != "books" || !lv.IsNull(2) {
			t.Errorf("LOWER = %v", lv)
		}

		like := &plan.Like{E: col(0, types.String), Pattern: "%oo%"}
		lk := evalOne(t, mode, like, b)
		if lk.Ints[0] != 1 || lk.Ints[1] != 0 || !lk.IsNull(2) {
			t.Errorf("LIKE = %v %v %v", lk.Get(0), lk.Get(1), lk.Get(2))
		}

		cmp := bin(sql.OpLt, col(0, types.String), scon("m"), types.Bool)
		cv := evalOne(t, mode, cmp, b)
		if cv.Ints[0] != 1 || cv.Ints[1] != 0 {
			t.Errorf("string < = %v", cv)
		}
	})
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%", "", true},
		{"_", "", false},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"%%x", "x", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.pattern, c.s, got)
		}
	}
}

func TestInListBothModes(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		b := intBatch([]int64{1, 2, 3, 0}, map[int]bool{3: true})
		in := &plan.InList{E: col(0, types.Int64), Vals: []types.Value{types.NewInt(1), types.NewInt(3)}}
		v := evalOne(t, mode, in, b)
		if v.Ints[0] != 1 || v.Ints[1] != 0 || v.Ints[2] != 1 || !v.IsNull(3) {
			t.Errorf("IN = %v", v)
		}
		notIn := &plan.InList{E: col(0, types.Int64), Vals: []types.Value{types.NewInt(1)}, Not: true}
		nv := evalOne(t, mode, notIn, b)
		if nv.Ints[0] != 0 || nv.Ints[1] != 1 {
			t.Errorf("NOT IN = %v", nv)
		}
	})
}

func TestCaseBothModes(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		b := intBatch([]int64{1, 5, 50}, nil)
		c := &plan.Case{
			Whens: []plan.CaseWhen{
				{Cond: bin(sql.OpLt, col(0, types.Int64), icon(3), types.Bool), Then: scon("small")},
				{Cond: bin(sql.OpLt, col(0, types.Int64), icon(10), types.Bool), Then: scon("medium")},
			},
			T: types.String,
		}
		v := evalOne(t, mode, c, b)
		if v.Strs[0] != "small" || v.Strs[1] != "medium" || !v.IsNull(2) {
			t.Errorf("CASE = %v", v)
		}
	})
}

func TestIsNullAndNotBothModes(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		b := intBatch([]int64{1, 0}, map[int]bool{1: true})
		isn := &plan.IsNull{E: col(0, types.Int64)}
		v := evalOne(t, mode, isn, b)
		if v.Ints[0] != 0 || v.Ints[1] != 1 {
			t.Errorf("IS NULL = %v", v)
		}
		notNull := &plan.IsNull{E: col(0, types.Int64), Not: true}
		v2 := evalOne(t, mode, notNull, b)
		if v2.Ints[0] != 1 || v2.Ints[1] != 0 {
			t.Errorf("IS NOT NULL = %v", v2)
		}
		neg := &plan.Not{E: &plan.IsNull{E: col(0, types.Int64)}}
		v3 := evalOne(t, mode, neg, b)
		if v3.Ints[0] != 1 || v3.Ints[1] != 0 {
			t.Errorf("NOT IS NULL = %v", v3)
		}
	})
}

func TestFilterApply(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		b := intBatch([]int64{1, 2, 3, 4, 5, 0}, map[int]bool{5: true})
		f, err := NewFilter(mode, bin(sql.OpGt, col(0, types.Int64), icon(2), types.Bool))
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.Apply(b)
		if err != nil {
			t.Fatal(err)
		}
		if out.N != 3 || out.Cols[0].Ints[0] != 3 || out.Cols[0].Ints[2] != 5 {
			t.Errorf("filtered = %v", out.Cols[0])
		}
		// Nil predicate passes through.
		pass, _ := NewFilter(mode, nil)
		same, _ := pass.Apply(b)
		if same != b {
			t.Error("nil filter should pass through")
		}
	})
}

func TestProjector(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		b := intBatch([]int64{2, 4}, nil)
		p, err := NewProjector(mode, []plan.Expr{
			col(0, types.Int64),
			bin(sql.OpMul, col(0, types.Int64), icon(3), types.Int64),
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := p.Apply(b)
		if err != nil {
			t.Fatal(err)
		}
		if out.N != 2 || out.Cols[1].Ints[1] != 12 {
			t.Errorf("projected = %+v", out)
		}
	})
}

func mkJoinStep(kind sql.JoinKind) plan.JoinStep {
	return plan.JoinStep{
		Kind:      kind,
		LeftKeys:  []plan.Expr{col(0, types.Int64)},
		RightKeys: []plan.Expr{col(0, types.Int64)},
	}
}

func twoColBatch(ids []int64, names []string) *Batch {
	b := NewBatch(2)
	idv := types.NewVector(types.Int64, len(ids))
	nv := types.NewVector(types.String, len(names))
	for i := range ids {
		idv.Append(types.NewInt(ids[i]))
		nv.Append(types.NewString(names[i]))
	}
	b.Cols[0], b.Cols[1], b.N = idv, nv, len(ids)
	return b
}

func TestHashJoinInner(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		j, err := NewHashJoin(mode, mkJoinStep(sql.InnerJoin), 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Build(twoColBatch([]int64{1, 2, 2}, []string{"a", "b", "b2"})); err != nil {
			t.Fatal(err)
		}
		if j.BuildRows() != 3 {
			t.Errorf("BuildRows = %d", j.BuildRows())
		}
		out, err := j.Probe(twoColBatch([]int64{2, 3, 1}, []string{"x", "y", "z"}))
		if err != nil {
			t.Fatal(err)
		}
		// id=2 matches twice, id=3 none, id=1 once → 3 rows.
		if out.N != 3 {
			t.Fatalf("joined %d rows", out.N)
		}
		if out.Cols[0].Ints[0] != 2 || out.Cols[3].Strs[0] != "b" || out.Cols[3].Strs[1] != "b2" {
			t.Errorf("row0 = %v", out.Row(0))
		}
		if out.Cols[0].Ints[2] != 1 || out.Cols[3].Strs[2] != "a" {
			t.Errorf("row2 = %v", out.Row(2))
		}
	})
}

func TestHashJoinLeft(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		j, err := NewHashJoin(mode, mkJoinStep(sql.LeftJoin), 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Build(twoColBatch([]int64{1}, []string{"a"})); err != nil {
			t.Fatal(err)
		}
		out, err := j.Probe(twoColBatch([]int64{1, 9}, []string{"x", "y"}))
		if err != nil {
			t.Fatal(err)
		}
		if out.N != 2 {
			t.Fatalf("joined %d rows", out.N)
		}
		if out.Cols[2].IsNull(0) || !out.Cols[2].IsNull(1) {
			t.Errorf("null extension wrong: %v %v", out.Row(0), out.Row(1))
		}
	})
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		j, _ := NewHashJoin(mode, mkJoinStep(sql.InnerJoin), 1)
		bv := types.NewVector(types.Int64, 2)
		bv.AppendNull()
		bv.Append(types.NewInt(7))
		build := NewBatch(1)
		build.Cols[0], build.N = bv, 2
		j.Build(build)

		pv := types.NewVector(types.Int64, 2)
		pv.AppendNull()
		pv.Append(types.NewInt(7))
		probe := NewBatch(1)
		probe.Cols[0], probe.N = pv, 2
		out, err := j.Probe(probe)
		if err != nil {
			t.Fatal(err)
		}
		if out.N != 1 || out.Cols[0].Ints[0] != 7 {
			t.Errorf("NULL keys matched: %d rows", out.N)
		}
	})
}

func TestHashJoinResidual(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		step := mkJoinStep(sql.InnerJoin)
		// Joined layout: [left.id, left.name, right.id, right.name];
		// residual: left.name <> right.name.
		step.Residual = bin(sql.OpNe, col(1, types.String), col(3, types.String), types.Bool)
		j, err := NewHashJoin(mode, step, 2)
		if err != nil {
			t.Fatal(err)
		}
		j.Build(twoColBatch([]int64{1, 1}, []string{"same", "diff"}))
		out, err := j.Probe(twoColBatch([]int64{1}, []string{"same"}))
		if err != nil {
			t.Fatal(err)
		}
		if out.N != 1 || out.Cols[3].Strs[0] != "diff" {
			t.Errorf("residual filtering wrong: %d rows", out.N)
		}
	})
}

func TestGroupTableBasic(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		specs := []plan.AggSpec{
			{Func: sql.FuncCount, T: types.Int64},                           // COUNT(*)
			{Func: sql.FuncSum, Arg: col(0, types.Int64), T: types.Int64},   // SUM(id)
			{Func: sql.FuncAvg, Arg: col(0, types.Int64), T: types.Float64}, // AVG(id)
			{Func: sql.FuncMin, Arg: col(1, types.String), T: types.String}, // MIN(name)
			{Func: sql.FuncMax, Arg: col(1, types.String), T: types.String}, // MAX(name)
			{Func: sql.FuncCount, Arg: col(0, types.Int64), Distinct: true, T: types.Int64},
		}
		g, err := NewGroupTable(mode, []plan.Expr{col(1, types.String)}, specs)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Consume(twoColBatch([]int64{1, 2, 3, 2}, []string{"a", "a", "b", "a"})); err != nil {
			t.Fatal(err)
		}
		out, err := g.Result()
		if err != nil {
			t.Fatal(err)
		}
		if out.N != 2 {
			t.Fatalf("groups = %d", out.N)
		}
		// Group "a": count=3 sum=5 avg≈1.667 distinct=2.
		if out.Cols[0].Strs[0] != "a" || out.Cols[1].Ints[0] != 3 || out.Cols[2].Ints[0] != 5 {
			t.Errorf("group a = %v", out.Row(0))
		}
		if av := out.Cols[3].Floats[0]; av < 1.6 || av > 1.7 {
			t.Errorf("avg = %v", av)
		}
		if out.Cols[6].Ints[0] != 2 {
			t.Errorf("count distinct = %v", out.Cols[6].Ints[0])
		}
		// Group "b": count=1 sum=3.
		if out.Cols[0].Strs[1] != "b" || out.Cols[1].Ints[1] != 1 {
			t.Errorf("group b = %v", out.Row(1))
		}
	})
}

func TestGroupTableMergeEqualsSingle(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		specs := []plan.AggSpec{
			{Func: sql.FuncCount, T: types.Int64},
			{Func: sql.FuncSum, Arg: col(0, types.Int64), T: types.Int64},
			{Func: sql.FuncCount, Arg: col(0, types.Int64), Distinct: true, Approx: true, T: types.Int64},
		}
		groupBy := []plan.Expr{col(1, types.String)}

		// One table consuming everything.
		single, _ := NewGroupTable(mode, groupBy, specs)
		// Two tables consuming halves, then merged (slice → leader).
		p1, _ := NewGroupTable(mode, groupBy, specs)
		p2, _ := NewGroupTable(mode, groupBy, specs)

		all := twoColBatch([]int64{1, 2, 3, 4, 5, 6}, []string{"x", "y", "x", "y", "x", "y"})
		single.Consume(all)
		p1.Consume(twoColBatch([]int64{1, 2, 3}, []string{"x", "y", "x"}))
		p2.Consume(twoColBatch([]int64{4, 5, 6}, []string{"y", "x", "y"}))
		p1.Merge(p2)

		a, _ := single.Result()
		b, _ := p1.Result()
		if a.N != b.N {
			t.Fatalf("group counts differ: %d vs %d", a.N, b.N)
		}
		// Compare group by group (order may differ).
		find := func(batch *Batch, key string) types.Row {
			for i := 0; i < batch.N; i++ {
				if batch.Cols[0].Strs[i] == key {
					return batch.Row(i)
				}
			}
			t.Fatalf("group %q missing", key)
			return nil
		}
		for _, key := range []string{"x", "y"} {
			ra, rb := find(a, key), find(b, key)
			for c := range ra {
				if !types.Equal(ra[c], rb[c]) {
					t.Errorf("group %s col %d: %v vs %v", key, c, ra[c], rb[c])
				}
			}
		}
	})
}

func TestScalarAggOverEmptyInput(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		specs := []plan.AggSpec{
			{Func: sql.FuncCount, T: types.Int64},
			{Func: sql.FuncSum, Arg: col(0, types.Int64), T: types.Int64},
			{Func: sql.FuncMin, Arg: col(0, types.Int64), T: types.Int64},
		}
		g, _ := NewGroupTable(mode, nil, specs)
		out, err := g.Result()
		if err != nil {
			t.Fatal(err)
		}
		if out.N != 1 {
			t.Fatalf("scalar agg rows = %d", out.N)
		}
		if out.Cols[0].Ints[0] != 0 {
			t.Errorf("COUNT(*) over empty = %v", out.Cols[0].Get(0))
		}
		if !out.Cols[1].IsNull(0) || !out.Cols[2].IsNull(0) {
			t.Error("SUM/MIN over empty must be NULL")
		}
	})
}

func TestAggNullHandling(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		specs := []plan.AggSpec{
			{Func: sql.FuncCount, T: types.Int64},                           // COUNT(*)
			{Func: sql.FuncCount, Arg: col(0, types.Int64), T: types.Int64}, // COUNT(x)
			{Func: sql.FuncAvg, Arg: col(0, types.Int64), T: types.Float64},
		}
		g, _ := NewGroupTable(mode, nil, specs)
		g.Consume(intBatch([]int64{10, 0, 20}, map[int]bool{1: true}))
		out, _ := g.Result()
		if out.Cols[0].Ints[0] != 3 {
			t.Errorf("COUNT(*) = %d", out.Cols[0].Ints[0])
		}
		if out.Cols[1].Ints[0] != 2 {
			t.Errorf("COUNT(x) = %d", out.Cols[1].Ints[0])
		}
		if out.Cols[2].Floats[0] != 15 {
			t.Errorf("AVG ignoring nulls = %v", out.Cols[2].Floats[0])
		}
	})
}

func TestSortBatchAndTopN(t *testing.T) {
	b := twoColBatch([]int64{3, 1, 2, 1}, []string{"c", "b", "a", "a"})
	sorted := SortBatch(b, []plan.OrderKey{{Index: 0}, {Index: 1, Desc: true}})
	ids := sorted.Cols[0].Ints
	names := sorted.Cols[1].Strs
	if ids[0] != 1 || names[0] != "b" || ids[1] != 1 || names[1] != "a" || ids[3] != 3 {
		t.Errorf("sorted = %v %v", ids, names)
	}
	top := TopN(sorted, 2)
	if top.N != 2 || top.Cols[0].Ints[1] != 1 {
		t.Errorf("topN = %+v", top)
	}
	if TopN(sorted, -1).N != 4 {
		t.Error("TopN(-1) should be identity")
	}
}

func TestMergeSorted(t *testing.T) {
	keys := []plan.OrderKey{{Index: 0}}
	b1 := SortBatch(twoColBatch([]int64{1, 5, 9}, []string{"a", "b", "c"}), keys)
	b2 := SortBatch(twoColBatch([]int64{2, 6}, []string{"d", "e"}), keys)
	b3 := &Batch{Cols: make([]*types.Vector, 2)}
	out, err := MergeSorted([]*Batch{b1, b2, b3}, keys)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 5, 6, 9}
	if out.N != 5 {
		t.Fatalf("merged %d rows", out.N)
	}
	for i, w := range want {
		if out.Cols[0].Ints[i] != w {
			t.Errorf("merged[%d] = %d, want %d", i, out.Cols[0].Ints[i], w)
		}
	}
}

func TestDistinct(t *testing.T) {
	b := twoColBatch([]int64{1, 1, 2, 1}, []string{"a", "a", "a", "b"})
	d := Distinct(b)
	if d.N != 3 {
		t.Errorf("distinct rows = %d", d.N)
	}
}

func TestBatchRowAndGather(t *testing.T) {
	b := twoColBatch([]int64{1, 2, 3}, []string{"x", "y", "z"})
	r := b.Row(1)
	if r[0].I != 2 || r[1].S != "y" {
		t.Errorf("Row = %v", r)
	}
	g := b.Gather([]int{2, 0})
	if g.N != 2 || g.Cols[0].Ints[0] != 3 || g.Cols[1].Strs[1] != "x" {
		t.Errorf("Gather = %v", g.Row(0))
	}
}

func TestFromRows(t *testing.T) {
	rows := []types.Row{
		{types.NewInt(1), types.NewString("a")},
		{types.NewNull(types.Int64), types.NewString("b")},
	}
	b := FromRows([]types.Type{types.Int64, types.String}, rows)
	if b.N != 2 || !b.Cols[0].IsNull(1) || b.Cols[1].Strs[0] != "a" {
		t.Errorf("FromRows = %+v", b)
	}
}

func TestKeyEncoderInjective(t *testing.T) {
	// Values that could collide under naive encodings.
	rows := [][]types.Value{
		{types.NewString("ab"), types.NewString("c")},
		{types.NewString("a"), types.NewString("bc")},
		{types.NewString(""), types.NewString("abc")},
		{types.NewInt(0)},
		{types.NewNull(types.Int64)},
		{types.NewFloat(0)},
		{types.NewInt(1), types.NewInt(2)},
		{types.NewInt(1), types.NewInt(3)},
	}
	seen := map[string]int{}
	for i, r := range rows {
		k := KeyEncoder(r)
		if j, ok := seen[k]; ok {
			t.Errorf("rows %d and %d collide", i, j)
		}
		seen[k] = i
	}
}

func TestHashValuesStable(t *testing.T) {
	a := HashValues([]types.Value{types.NewInt(42)})
	b := HashValues([]types.Value{types.NewInt(42)})
	c := HashValues([]types.Value{types.NewInt(43)})
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == c {
		t.Error("hash trivially collides")
	}
}

func TestCompiledMatchesInterpretedProperty(t *testing.T) {
	// Cross-engine differential test over a grab-bag of expressions.
	exprs := []plan.Expr{
		bin(sql.OpAdd, col(0, types.Int64), icon(7), types.Int64),
		bin(sql.OpMul, col(0, types.Int64), col(0, types.Int64), types.Int64),
		bin(sql.OpLe, col(0, types.Int64), icon(50), types.Bool),
		&plan.InList{E: col(0, types.Int64), Vals: []types.Value{types.NewInt(3), types.NewInt(50)}},
		&plan.IsNull{E: col(0, types.Int64)},
		&plan.Neg{E: col(0, types.Int64)},
		&plan.Case{
			Whens: []plan.CaseWhen{{Cond: bin(sql.OpGt, col(0, types.Int64), icon(10), types.Bool), Then: icon(1)}},
			Else:  icon(0), T: types.Int64,
		},
		bin(sql.OpAnd,
			bin(sql.OpGt, col(0, types.Int64), icon(5), types.Bool),
			bin(sql.OpLt, col(0, types.Int64), icon(90), types.Bool), types.Bool),
	}
	vals := make([]int64, 200)
	nulls := map[int]bool{}
	for i := range vals {
		vals[i] = int64(i*7%101 - 50)
		if i%13 == 0 {
			nulls[i] = true
		}
	}
	b := intBatch(vals, nulls)
	for ei, e := range exprs {
		cv := evalOne(t, Compiled, e, b)
		iv := evalOne(t, Interpreted, e, b)
		if !cv.Equal(iv) {
			for i := 0; i < cv.Len(); i++ {
				if cv.IsNull(i) != iv.IsNull(i) || (!cv.IsNull(i) && !types.Equal(cv.Get(i), iv.Get(i))) {
					t.Errorf("expr %d (%s) row %d: compiled=%v interpreted=%v", ei, e, i, cv.Get(i), iv.Get(i))
					break
				}
			}
		}
	}
}

func TestFloatPromotionKernel(t *testing.T) {
	both(t, func(t *testing.T, mode Mode) {
		b := intBatch([]int64{4, 10}, nil)
		e := bin(sql.OpDiv,
			&plan.Call{Name: sql.FuncFloat, Args: []plan.Expr{col(0, types.Int64)}, T: types.Float64},
			fcon(8), types.Float64)
		v := evalOne(t, mode, e, b)
		if v.Floats[0] != 0.5 || v.Floats[1] != 1.25 {
			t.Errorf("promoted div = %v", v.Floats)
		}
	})
}

func BenchmarkCompiledVsInterpreted(b *testing.B) {
	// The A4 microbench kernel: scan-filter-sum over one column.
	vals := make([]int64, 100_000)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	batch := intBatch(vals, nil)
	expr := bin(sql.OpAnd,
		bin(sql.OpGt, col(0, types.Int64), icon(100), types.Bool),
		bin(sql.OpLt, col(0, types.Int64), icon(900), types.Bool), types.Bool)
	for _, mode := range []Mode{Compiled, Interpreted} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev, err := NewEvaluator(mode, expr)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ev.Eval(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func ExampleKeyEncoder() {
	k1 := KeyEncoder([]types.Value{types.NewInt(1), types.NewString("a")})
	k2 := KeyEncoder([]types.Value{types.NewInt(1), types.NewString("a")})
	fmt.Println(k1 == k2)
	// Output: true
}
