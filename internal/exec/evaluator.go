package exec

import (
	"fmt"
	"math"

	"redshift/internal/plan"
	"redshift/internal/types"
)

// Mode selects the execution engine.
type Mode uint8

const (
	// Compiled is the vectorized, type-specialized engine (§2.1's compiled
	// execution).
	Compiled Mode = iota
	// Interpreted is the generic row-at-a-time engine the paper contrasts
	// compilation against.
	Interpreted
)

// String names the mode.
func (m Mode) String() string {
	if m == Interpreted {
		return "interpreted"
	}
	return "compiled"
}

// Evaluator evaluates one bound expression over batches in either mode.
type Evaluator struct {
	mode Mode
	expr plan.Expr
	fn   VecFn // compiled mode only
}

// NewEvaluator prepares an expression for repeated evaluation. In Compiled
// mode this is where the per-query fixed cost is paid.
func NewEvaluator(mode Mode, expr plan.Expr) (*Evaluator, error) {
	ev := &Evaluator{mode: mode, expr: expr}
	if mode == Compiled {
		fn, err := CompileVec(expr)
		if err != nil {
			return nil, err
		}
		ev.fn = fn
	}
	return ev, nil
}

// Eval evaluates the expression over a batch, returning one vector.
func (ev *Evaluator) Eval(b *Batch) (*types.Vector, error) {
	if ev.mode == Compiled {
		return ev.fn(b)
	}
	out := types.NewVector(exprVecType(ev.expr), b.N)
	for i := 0; i < b.N; i++ {
		v, err := EvalRow(ev.expr, b.Row(i))
		if err != nil {
			return nil, err
		}
		out.Append(v)
	}
	return out, nil
}

func exprVecType(e plan.Expr) types.Type {
	if t := e.Type(); t != types.Invalid {
		return t
	}
	return types.Bool
}

// Filter applies a boolean predicate to a batch and returns the surviving
// rows, compacted.
type Filter struct {
	ev *Evaluator
}

// NewFilter prepares a predicate.
func NewFilter(mode Mode, pred plan.Expr) (*Filter, error) {
	if pred == nil {
		return &Filter{}, nil
	}
	ev, err := NewEvaluator(mode, pred)
	if err != nil {
		return nil, err
	}
	return &Filter{ev: ev}, nil
}

// Apply filters the batch; with no predicate it passes the batch through.
func (f *Filter) Apply(b *Batch) (*Batch, error) {
	sel, all, err := f.Select(b, nil)
	if err != nil {
		return nil, err
	}
	if all {
		return b, nil
	}
	return b.Gather(sel), nil
}

// Select evaluates the predicate and returns the passing row positions
// appended to sel (which may be nil or a reused buffer sliced to zero
// length). all reports that every row passed, in which case the returned
// selection must not be used — the batch stands as-is. This is the
// late-materialization entry point: the scan evaluates the filter before
// deciding which remaining columns to decode.
func (f *Filter) Select(b *Batch, sel []int) ([]int, bool, error) {
	if f.ev == nil || b.N == 0 {
		return sel, true, nil
	}
	v, err := f.ev.Eval(b)
	if err != nil {
		return sel, false, err
	}
	sel = SelectTrueInto(v, sel)
	return sel, len(sel) == b.N, nil
}

// Projector computes output columns from input batches.
type Projector struct {
	evs []*Evaluator
}

// NewProjector prepares the projection expressions.
func NewProjector(mode Mode, exprs []plan.Expr) (*Projector, error) {
	p := &Projector{}
	for _, e := range exprs {
		ev, err := NewEvaluator(mode, e)
		if err != nil {
			return nil, err
		}
		p.evs = append(p.evs, ev)
	}
	return p, nil
}

// Apply computes the projected batch.
func (p *Projector) Apply(b *Batch) (*Batch, error) {
	out := NewBatch(len(p.evs))
	out.N = b.N
	for i, ev := range p.evs {
		v, err := ev.Eval(b)
		if err != nil {
			return nil, err
		}
		out.Cols[i] = v
	}
	return out, nil
}

// KeyEncoder renders a tuple of values into a comparable string key for
// hash tables (joins, grouping, distinct). The encoding is injective.
func KeyEncoder(vals []types.Value) string {
	buf := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		if v.Null {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1, byte(v.T))
		switch v.T {
		case types.Float64:
			buf = appendUint64(buf, floatKeyBits(v.F))
		case types.String:
			buf = appendUint64(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		default:
			buf = appendUint64(buf, uint64(v.I))
		}
	}
	return string(buf)
}

func appendUint64(b []byte, x uint64) []byte {
	return append(b,
		byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
		byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
}

func floatKeyBits(f float64) uint64 {
	// Normalize -0 and +0 so they hash identically.
	if f == 0 {
		f = 0
	}
	return math.Float64bits(f)
}

// HashValues hashes a tuple for distribution (FNV-1a over the key
// encoding), the same function the cluster layer uses to place rows by
// distribution key, so planner co-location reasoning and executor shuffles
// agree by construction.
func HashValues(vals []types.Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range []byte(KeyEncoder(vals)) {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// errWidth is a shared consistency failure.
func errWidth(what string, got, want int) error {
	return fmt.Errorf("exec: %s width %d, want %d", what, got, want)
}
