package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"redshift/internal/plan"
	"redshift/internal/storage"
	"redshift/internal/types"
)

// Morsel is the unit of intra-slice parallel work: one block row-group of
// one segment, tagged with its dense dispatch sequence (0..n-1 in the
// exact order the serial ScanOp would have visited it). The sequence is
// what lets downstream stages reassemble the serial batch stream: every
// morsel yields at most one batch, so collecting per-morsel outputs in
// Seq order reproduces the serial pipeline's stream bit for bit.
type Morsel struct {
	Seg   *storage.Segment
	Block int
	Seq   int64
}

// MorselQueue is a shared work queue over a slice's visible blocks. It is
// a plain atomic cursor over a precomputed unit list — pulling is one
// atomic add, so dozens of workers can drain a scan without contending on
// anything but the counter.
type MorselQueue struct {
	units []Morsel
	next  atomic.Int64
}

// NewMorselQueue enumerates every block of the given segments in serial
// scan order.
func NewMorselQueue(segs []*storage.Segment) *MorselQueue {
	q := &MorselQueue{}
	for _, seg := range segs {
		for bi := 0; bi < seg.NumBlocks(); bi++ {
			q.units = append(q.units, Morsel{Seg: seg, Block: bi, Seq: int64(len(q.units))})
		}
	}
	return q
}

// Next hands out the next undispatched morsel.
func (q *MorselQueue) Next() (Morsel, bool) {
	i := q.next.Add(1) - 1
	if i >= int64(len(q.units)) {
		return Morsel{}, false
	}
	return q.units[i], true
}

// Len returns the total number of morsels in the queue.
func (q *MorselQueue) Len() int { return len(q.units) }

// fnvOwner assigns a hash key to one of dop owner-workers (FNV-1a).
func fnvOwner(k string, dop int) int {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return int(h % uint32(dop))
}

// ParallelBuild drains an already-collected build side into the join's
// hash table using dop workers, producing a table identical to feeding
// the same batches through Build one at a time. Three phases:
//
//  1. Serial concat: batches are charged and appended to j.build exactly
//     as Build would (including size-hint application and mid-stream
//     spill cutover), but without touching the hash table.
//  2. Parallel key evaluation: workers encode every batch's join keys.
//  3. Partitioned insert: dop owner-workers each scan all keys in batch
//     order and insert only the keys they own (hash(k) % dop) into a
//     private map at the row's global build position, so per-key position
//     lists come out ascending — the serial insert order. The disjoint
//     maps are then unified into j.table.
//
// Memory: phase 1 charges batch bytes per batch; the table's key/position
// overhead is charged as one lump after phase 3. If either charge fails,
// the join flips into grace-spill mode (re-partitioning whatever was
// accumulated), exactly like the serial path — the spill trigger point
// can differ from serial by part of a batch, but the join's output
// cannot: the grace path replays build rows in their original order.
func (j *HashJoin) ParallelBuild(ctx context.Context, src []*Batch, dop int) error {
	if dop <= 1 {
		for _, b := range src {
			if err := j.Build(b); err != nil {
				return err
			}
		}
		return nil
	}
	// Phase 1: serial concat + byte charging (Build minus table inserts).
	var retained []*Batch
	var bases []int
	for idx, b := range src {
		j.noteBuildTypes(b)
		if j.hinted {
			if err := j.applyHint(); err != nil {
				return err
			}
		}
		if j.spill != nil {
			// The size hint (or an earlier overflow) put us on the grace
			// path; the rest of the input streams straight to partitions.
			return j.buildRest(src[idx:])
		}
		if !j.mc.tryGrow(b.ByteSize()) {
			if err := j.enterSpill(); err != nil {
				return err
			}
			return j.buildRest(src[idx:])
		}
		j.charged += b.ByteSize()
		bases = append(bases, j.build.N)
		if err := j.alignAndConcat(b); err != nil {
			return err
		}
		retained = append(retained, b)
	}
	nb := len(retained)
	if nb == 0 {
		return nil
	}

	// Phase 2: parallel key evaluation.
	keys := make([][]string, nb)
	nulls := make([][]bool, nb)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, dop)
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= nb {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				ks, nl, err := keyStrings(j.buildKeys, retained[i])
				if err != nil {
					errs[w] = err
					return
				}
				keys[i], nulls[i] = ks, nl
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Phase 3: owner-partitioned inserts into disjoint maps.
	subs := make([]map[string][]int, dop)
	deltas := make([]int64, dop)
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func(owner int) {
			defer wg.Done()
			sub := make(map[string][]int)
			var delta int64
			for i := 0; i < nb; i++ {
				ks, nl := keys[i], nulls[i]
				base := bases[i]
				for r := range ks {
					if nl[r] {
						continue // NULL keys never match
					}
					k := ks[r]
					if fnvOwner(k, dop) != owner {
						continue
					}
					if _, ok := sub[k]; !ok {
						delta += joinKeyOverhead + int64(len(k))
					}
					delta += joinPosBytes
					sub[k] = append(sub[k], base+r)
				}
			}
			subs[owner], deltas[owner] = sub, delta
		}(w)
	}
	wg.Wait()

	var keyDelta int64
	for w := 0; w < dop; w++ {
		keyDelta += deltas[w]
		for k, pos := range subs[w] {
			j.table[k] = pos
		}
	}
	if !j.mc.tryGrow(keyDelta) {
		// enterSpill resets the table and re-partitions the accumulated
		// build rows; the shrink it performs returns the phase-1 charges.
		return j.enterSpill()
	}
	j.charged += keyDelta
	return nil
}

// buildRest forwards the remaining build input through the serial path
// (which routes to the grace-spill partitions once j.spill is set).
func (j *HashJoin) buildRest(rest []*Batch) error {
	for _, b := range rest {
		if err := j.Build(b); err != nil {
			return err
		}
	}
	return nil
}

// WorkerAgg is one morsel worker's private partial aggregation: a
// GroupTable plus the morsel sequence that first created each resident
// group, so the per-slice merge can reconstruct the exact group order the
// serial table would have produced.
type WorkerAgg struct {
	gt       *GroupTable
	firstSeq []int64 // parallel to gt.order
}

// NewWorkerAgg wraps a fresh per-worker GroupTable.
func NewWorkerAgg(gt *GroupTable) *WorkerAgg { return &WorkerAgg{gt: gt} }

// Table exposes the underlying table (for release and stats).
func (w *WorkerAgg) Table() *GroupTable { return w.gt }

// Consume folds one morsel's batch, tagging any newly created groups with
// the morsel's sequence. Once the table spills, no new resident groups
// appear, so firstSeq stays aligned with gt.order.
func (w *WorkerAgg) Consume(b *Batch, seq int64) error {
	if err := w.gt.Consume(b); err != nil {
		return err
	}
	for len(w.firstSeq) < len(w.gt.order) {
		w.firstSeq = append(w.firstSeq, seq)
	}
	return nil
}

// MergeWorkerAggs folds per-worker partial tables into dst (assumed
// empty). When no worker spilled, groups are adopted in ascending
// first-seen morsel order — a k-way merge over the workers' already
// seq-ordered group lists. Two workers never share a sequence (a morsel
// is processed by exactly one worker) and within a worker creation order
// is already (seq, in-morsel row) order, so the merged order is exactly
// the serial table's first-seen order. When a worker spilled, tables
// merge in worker order via Drain: group ORDER can then differ from a
// serial run, but group contents never do — and every query whose output
// order is observable sorts downstream anyway.
func MergeWorkerAggs(ctx context.Context, dst *GroupTable, workers []*WorkerAgg) error {
	for _, w := range workers {
		if w.gt.Spilled() {
			for _, w := range workers {
				if err := dst.MergeCtx(ctx, w.gt); err != nil {
					return err
				}
			}
			return nil
		}
	}
	cursors := make([]int, len(workers))
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		best := -1
		var bestSeq int64
		for i, w := range workers {
			if cursors[i] >= len(w.gt.order) {
				continue
			}
			if s := w.firstSeq[cursors[i]]; best < 0 || s < bestSeq {
				best, bestSeq = i, s
			}
		}
		if best < 0 {
			return nil
		}
		src := workers[best].gt
		k := src.order[cursors[best]]
		cursors[best]++
		og := src.groups[k]
		if grp, ok := dst.groups[k]; ok {
			for i := range grp.states {
				grp.states[i].Merge(og.states[i])
			}
			continue
		}
		dst.groups[k] = og
		dst.order = append(dst.order, k)
		if dst.mc != nil && dst.mc.T != nil {
			nb := groupMemBytes(k, og)
			og.mem = nb
			dst.mc.grow(nb)
			dst.charged += nb
		}
	}
}

// DistinctSieve is a morsel worker's pre-deduplication for parallel
// DISTINCT: it keeps each key's first occurrence within this worker's
// stream. Because a worker's morsel sequences are increasing, the
// globally first occurrence of any key always survives its worker's
// sieve — so a final slice-level StreamDistinct pass over the sieved
// batches in morsel order emits exactly the serial survivor stream.
type DistinctSieve struct {
	seen map[string]bool
	row  []types.Value
}

// NewDistinctSieve prepares an empty per-worker sieve.
func NewDistinctSieve() *DistinctSieve { return &DistinctSieve{seen: map[string]bool{}} }

// Apply drops rows this worker has already seen, following the
// StreamDistinct ownership contract: the input is returned untouched when
// every row survives, released and replaced by a gathered copy when some
// do, and released with nil returned when none do.
func (d *DistinctSieve) Apply(b *Batch) *Batch {
	d.row = d.row[:0]
	for c := 0; c < len(b.Cols); c++ {
		d.row = append(d.row, types.Value{})
	}
	var sel []int
	for i := 0; i < b.N; i++ {
		for c, v := range b.Cols {
			if v != nil {
				d.row[c] = v.Get(i)
			} else {
				d.row[c] = types.Value{}
			}
		}
		k := KeyEncoder(d.row)
		if !d.seen[k] {
			d.seen[k] = true
			sel = append(sel, i)
		}
	}
	if len(sel) == b.N {
		return b
	}
	if len(sel) == 0 {
		PutBatch(b)
		return nil
	}
	out := b.Gather(sel)
	PutBatch(b)
	return out
}

// TopNPartial accumulates one worker's share of a slice-local ORDER BY +
// LIMIT. Each batch is tagged with a trailing Int64 morsel-sequence
// column and sorted by (keys..., seq); truncating a worker's candidates
// at the limit is then exact, because (keys, seq, in-morsel row order) is
// the same total order the serial TopNOp's stable sort realizes.
type TopNPartial struct {
	sorter *ExternalSorter
	width  int // payload width, without the seq column
	limit  int64
}

// NewTopNPartial prepares one worker's partial sorter. width is the
// projection width; the sorter runs over width+1 columns (payload + seq).
func NewTopNPartial(keys []plan.OrderKey, limit int64, width int, mc *MemContext) *TopNPartial {
	ks := make([]plan.OrderKey, 0, len(keys)+1)
	ks = append(ks, keys...)
	ks = append(ks, plan.OrderKey{Index: width})
	return &TopNPartial{sorter: NewExternalSorter(ks, width+1, mc), width: width, limit: limit}
}

// Add folds one post-projection batch tagged with its morsel sequence.
// The batch is spent (the TopN ownership contract).
func (t *TopNPartial) Add(b *Batch, seq int64) error {
	seqv := types.NewVector(types.Int64, b.N)
	sv := types.NewInt(seq)
	for i := 0; i < b.N; i++ {
		seqv.Append(sv)
	}
	tagged := &Batch{Cols: make([]*types.Vector, t.width+1), N: b.N}
	copy(tagged.Cols, b.Cols)
	tagged.Cols[t.width] = seqv
	err := t.sorter.Add(tagged) // Add copies; tagged's payload still aliases b
	PutBatch(b)
	return err
}

// Collect returns this worker's at-most-limit candidate rows sorted by
// (keys, seq), releasing the sorter's memory.
func (t *TopNPartial) Collect(ctx context.Context) (*Batch, error) {
	b, err := collectSorted(ctx, t.sorter, t.width+1, t.limit)
	t.sorter.Release()
	return b, err
}

// Release returns the partial's sorter memory on abandon paths.
// Idempotent, and safe after Collect.
func (t *TopNPartial) Release() { t.sorter.Release() }

// MergeTopNPartials combines per-worker candidate batches into the exact
// slice-level top-N: concatenate, stable-sort by (keys, seq), truncate,
// strip the seq column. Partial batches are consumed.
func MergeTopNPartials(parts []*Batch, keys []plan.OrderKey, limit int64, width int) (*Batch, error) {
	merged := NewBatch(width + 1)
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.N == 0 {
			PutBatch(p)
			continue
		}
		err := merged.Concat(p)
		PutBatch(p)
		if err != nil {
			return nil, err
		}
	}
	ks := make([]plan.OrderKey, 0, len(keys)+1)
	ks = append(ks, keys...)
	ks = append(ks, plan.OrderKey{Index: width})
	out := TopN(SortBatch(merged, ks), limit)
	out.Cols = out.Cols[:width]
	return out, nil
}

// seqBatch pairs a scanned batch with its morsel sequence for the
// order-restoring sender.
type seqBatch struct {
	seq int64
	b   *Batch
}

// ParallelProduce is the morsel-parallel twin of Exchange.Produce for scan
// producers: dop workers (one per scanner) pull blocks from the queue and
// scan concurrently, while a single sender forwards the batches in morsel
// order through route and Send — so consumers observe exactly the serial
// producer's deterministic batch order. Scan stats go to the shared
// ScanStats the scanners were built with; st (may be nil) receives the
// producer-side operator counters the serial path's instrumentation would
// have recorded, and morsels (may be nil) counts dispatched units.
func ParallelProduce(ctx context.Context, ex *Exchange, src int, queue *MorselQueue, scanners []*Scanner, route RouteFn, st *OpStats, morsels *atomic.Int64) {
	defer ex.closeSend(src)
	dop := len(scanners)
	results := make(chan seqBatch, dop)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	var once sync.Once
	var werr error
	fail := func(err error) {
		once.Do(func() {
			werr = err
			cancel()
		})
	}
	for _, sc := range scanners {
		wg.Add(1)
		go func(sc *Scanner) {
			defer wg.Done()
			for {
				if wctx.Err() != nil {
					return
				}
				m, ok := queue.Next()
				if !ok {
					return
				}
				if morsels != nil {
					morsels.Add(1)
				}
				if m.Seg.Schema.Len() != sc.width {
					fail(errWidth("segment", m.Seg.Schema.Len(), sc.width))
					return
				}
				start := time.Now()
				b, err := sc.ScanBlock(wctx, m.Seg, m.Block)
				if st != nil {
					st.Nanos.Add(int64(time.Since(start)))
				}
				if err != nil {
					fail(err)
					return
				}
				if b != nil && st != nil {
					st.Batches.Add(1)
					st.Rows.Add(int64(b.N))
				}
				select {
				case results <- seqBatch{m.Seq, b}:
				case <-wctx.Done():
					if b != nil {
						PutBatch(b)
					}
					return
				}
			}
		}(sc)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Sender: reorder completions back into morsel order before routing,
	// mirroring Produce's semantics (stop on the first failure; pruned
	// blocks produce no batch but still advance the sequence).
	pending := map[int64]*Batch{}
	var next int64
	stopped := false
	for r := range results {
		if stopped {
			if r.b != nil {
				PutBatch(r.b)
			}
			continue
		}
		pending[r.seq] = r.b
		for !stopped {
			b, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if b == nil {
				continue
			}
			parts, err := route(b)
			if err != nil {
				ex.Abort(err)
				fail(err)
				stopped = true
				break
			}
			for dst, p := range parts {
				if p == nil || p.N == 0 {
					continue
				}
				if err := ex.Send(ctx, src, dst, p); err != nil {
					fail(err)
					stopped = true
					break
				}
			}
		}
	}
	for _, b := range pending {
		if b != nil {
			PutBatch(b)
		}
	}
	if werr != nil && !stopped {
		ex.Abort(werr)
	}
}
