package exec

import (
	"context"

	"redshift/internal/plan"
)

// ExternalSorter is the budget-aware ORDER BY backend: it accumulates
// input in memory while the query's grant allows, and when a batch no
// longer fits it sorts the accumulated rows into a run, spills the run to
// the scratch dir, and keeps going. Stream() then k-way merges every run
// (plus the final in-memory run) back in sorted order.
//
// Determinism: runs are written in input order, the resident run merges
// last, each run is stable-sorted, and the merge breaks ties toward the
// lowest stream index — so the global output is exactly the stable sort
// of the input, byte-identical to the in-memory path at any budget.
type ExternalSorter struct {
	keys  []plan.OrderKey
	width int
	mc    *MemContext

	cur     *Batch
	charged int64
	runs    []*spillFile
}

// NewExternalSorter builds a sorter over the given output layout width.
// mc may be nil (pure in-memory sort).
func NewExternalSorter(keys []plan.OrderKey, width int, mc *MemContext) *ExternalSorter {
	return &ExternalSorter{keys: keys, width: width, mc: mc}
}

// Add appends a batch's rows to the sorter. The caller keeps ownership
// of b.
func (s *ExternalSorter) Add(b *Batch) error {
	if b == nil || b.N == 0 {
		return nil
	}
	sz := b.ByteSize()
	if !s.mc.tryGrow(sz) {
		if err := s.flushRun(); err != nil {
			return err
		}
		// The incoming batch must reside somewhere; after flushing the run
		// this is the new (small) resident set, charged unconditionally.
		s.mc.grow(sz)
	}
	s.charged += sz
	if s.cur == nil {
		s.cur = NewBatch(s.width)
	}
	return s.cur.Concat(b)
}

// Spilled reports whether any run went to disk.
func (s *ExternalSorter) Spilled() bool { return len(s.runs) > 0 }

// Release drops the resident run and returns its memory charge. Call
// only after the Stream() output has been fully drained — the resident
// run's batches are referenced by the merge until then.
func (s *ExternalSorter) Release() {
	s.mc.shrink(s.charged)
	s.charged = 0
	s.cur = nil
}

// flushRun sorts the resident rows and writes them out as one run.
func (s *ExternalSorter) flushRun() error {
	if s.cur == nil || s.cur.N == 0 {
		return nil
	}
	s.cur = SortBatch(s.cur, s.keys)
	sf, err := s.mc.Dir.create("sort-run", s.mc.spillStats())
	if err != nil {
		return err
	}
	if err := writeBatchChunks(sf, s.cur); err != nil {
		return err
	}
	s.runs = append(s.runs, sf)
	s.mc.addRun()
	s.cur = nil
	s.mc.shrink(s.charged)
	s.charged = 0
	return nil
}

// writeBatchChunks frames a large batch in BatchSize pieces so readers
// never materialize more than one batch per frame.
func writeBatchChunks(sf *spillFile, b *Batch) error {
	if b.N <= BatchSize {
		return sf.WriteBatch(b)
	}
	sel := make([]int, 0, BatchSize)
	for off := 0; off < b.N; off += BatchSize {
		end := off + BatchSize
		if end > b.N {
			end = b.N
		}
		sel = sel[:0]
		for i := off; i < end; i++ {
			sel = append(sel, i)
		}
		chunk := b.Gather(sel)
		err := sf.WriteBatch(chunk)
		PutBatch(chunk)
		if err != nil {
			return err
		}
	}
	return nil
}

// Stream returns the fully sorted output as a batch stream. The sorter
// must not receive further Adds.
func (s *ExternalSorter) Stream(ctx context.Context) (batchStream, error) {
	if s.cur != nil && s.cur.N > 0 {
		s.cur = SortBatch(s.cur, s.keys)
	}
	if len(s.runs) == 0 {
		if s.cur == nil {
			return &memStream{}, nil
		}
		return &memStream{batches: []*Batch{s.cur}}, nil
	}
	streams := make([]batchStream, 0, len(s.runs)+1)
	for _, run := range s.runs {
		r, err := run.Reader()
		if err != nil {
			return nil, err
		}
		streams = append(streams, r)
	}
	if s.cur != nil && s.cur.N > 0 {
		streams = append(streams, &memStream{batches: []*Batch{s.cur}})
	}
	keys := s.keys
	return newMergeStream(streams, func(a *Batch, ai int, b *Batch, bi int) int {
		return crossCompare(a, ai, b, bi, keys)
	}), nil
}
