package exec

import (
	"fmt"
	"strings"

	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// VecFn evaluates an expression over a whole batch at once.
type VecFn func(b *Batch) (*types.Vector, error)

// CompileVec lowers a bound expression to a tree of type-specialized
// closures over typed vectors — this system's stand-in for §2.1's "query
// plan generation and compilation to C++ and machine code". The fixed
// per-query cost is the closure construction here; the payoff is unboxed,
// branch-light per-row execution.
func CompileVec(e plan.Expr) (VecFn, error) {
	switch x := e.(type) {
	case *plan.Col:
		idx := x.Index
		return func(b *Batch) (*types.Vector, error) {
			if idx >= len(b.Cols) || b.Cols[idx] == nil {
				return nil, fmt.Errorf("exec: column %d not materialized", idx)
			}
			return b.Cols[idx], nil
		}, nil

	case *plan.Const:
		v := x.V
		return func(b *Batch) (*types.Vector, error) {
			out := types.NewVector(constVecType(v), b.N)
			for i := 0; i < b.N; i++ {
				out.Append(v)
			}
			return out, nil
		}, nil

	case *plan.Bin:
		return compileBin(x)

	case *plan.Not:
		inner, err := CompileVec(x.E)
		if err != nil {
			return nil, err
		}
		return func(b *Batch) (*types.Vector, error) {
			v, err := inner(b)
			if err != nil {
				return nil, err
			}
			out := types.NewVector(types.Bool, v.Len())
			for i := 0; i < v.Len(); i++ {
				if v.IsNull(i) {
					out.AppendNull()
				} else {
					out.Append(types.NewBool(v.Ints[i] == 0))
				}
			}
			return out, nil
		}, nil

	case *plan.Neg:
		inner, err := CompileVec(x.E)
		if err != nil {
			return nil, err
		}
		t := x.Type()
		return func(b *Batch) (*types.Vector, error) {
			v, err := inner(b)
			if err != nil {
				return nil, err
			}
			out := &types.Vector{T: t}
			if v.T == types.Float64 {
				out.Floats = make([]float64, len(v.Floats))
				for i, f := range v.Floats {
					out.Floats[i] = -f
				}
			} else {
				out.Ints = make([]int64, len(v.Ints))
				for i, n := range v.Ints {
					out.Ints[i] = -n
				}
			}
			if v.Nulls != nil {
				out.Nulls = v.Nulls
			}
			return out, nil
		}, nil

	case *plan.IsNull:
		inner, err := CompileVec(x.E)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(b *Batch) (*types.Vector, error) {
			v, err := inner(b)
			if err != nil {
				return nil, err
			}
			out := types.NewVector(types.Bool, v.Len())
			for i := 0; i < v.Len(); i++ {
				out.Append(types.NewBool(v.IsNull(i) != not))
			}
			return out, nil
		}, nil

	case *plan.InList:
		return compileInList(x)

	case *plan.Like:
		inner, err := CompileVec(x.E)
		if err != nil {
			return nil, err
		}
		pattern, not := x.Pattern, x.Not
		return func(b *Batch) (*types.Vector, error) {
			v, err := inner(b)
			if err != nil {
				return nil, err
			}
			out := types.NewVector(types.Bool, v.Len())
			for i, s := range v.Strs {
				if v.IsNull(i) {
					out.AppendNull()
				} else {
					out.Append(types.NewBool(likeMatch(pattern, s) != not))
				}
			}
			return out, nil
		}, nil

	case *plan.Case:
		return compileCase(x)

	case *plan.Call:
		return compileCall(x)

	default:
		return nil, fmt.Errorf("exec: cannot compile %T", e)
	}
}

// constVecType resolves the vector type for a constant (untyped NULL
// becomes Bool so the vector has a concrete representation).
func constVecType(v types.Value) types.Type {
	if v.T == types.Invalid {
		return types.Bool
	}
	return v.T
}

// compileBin specializes on operator category and operand type.
func compileBin(x *plan.Bin) (VecFn, error) {
	lfn, err := CompileVec(x.L)
	if err != nil {
		return nil, err
	}
	rfn, err := CompileVec(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case sql.OpAnd, sql.OpOr:
		op := x.Op
		return func(b *Batch) (*types.Vector, error) {
			l, err := lfn(b)
			if err != nil {
				return nil, err
			}
			r, err := rfn(b)
			if err != nil {
				return nil, err
			}
			// Fast path: no nulls on either side — plain bitwise logic.
			if l.Nulls == nil && r.Nulls == nil {
				out := &types.Vector{T: types.Bool, Ints: make([]int64, len(l.Ints))}
				if op == sql.OpAnd {
					for i := range l.Ints {
						out.Ints[i] = l.Ints[i] & r.Ints[i]
					}
				} else {
					for i := range l.Ints {
						out.Ints[i] = l.Ints[i] | r.Ints[i]
					}
				}
				return out, nil
			}
			out := types.NewVector(types.Bool, l.Len())
			for i := 0; i < l.Len(); i++ {
				out.Append(ternary(op, l.Get(i), r.Get(i)))
			}
			return out, nil
		}, nil

	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		return compileCompare(x.Op, x.L.Type(), lfn, rfn)

	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
		return compileArith(x.Op, x.T, lfn, rfn)

	default:
		return nil, fmt.Errorf("exec: cannot compile operator %s", x.Op)
	}
}

// compileCompare builds a type-specialized comparison kernel.
func compileCompare(op sql.BinOp, t types.Type, lfn, rfn VecFn) (VecFn, error) {
	pred := cmpPred(op)
	switch t {
	case types.Float64:
		return func(b *Batch) (*types.Vector, error) {
			l, err := lfn(b)
			if err != nil {
				return nil, err
			}
			r, err := rfn(b)
			if err != nil {
				return nil, err
			}
			out := &types.Vector{T: types.Bool, Ints: make([]int64, len(l.Floats))}
			nulls := mergeNulls(l, r)
			for i := range l.Floats {
				if nulls != nil && nulls[i] {
					continue
				}
				c := 0
				switch {
				case l.Floats[i] < r.Floats[i]:
					c = -1
				case l.Floats[i] > r.Floats[i]:
					c = 1
				}
				if pred(c) {
					out.Ints[i] = 1
				}
			}
			out.Nulls = nulls
			return out, nil
		}, nil
	case types.String:
		return func(b *Batch) (*types.Vector, error) {
			l, err := lfn(b)
			if err != nil {
				return nil, err
			}
			r, err := rfn(b)
			if err != nil {
				return nil, err
			}
			out := &types.Vector{T: types.Bool, Ints: make([]int64, len(l.Strs))}
			nulls := mergeNulls(l, r)
			for i := range l.Strs {
				if nulls != nil && nulls[i] {
					continue
				}
				if pred(strings.Compare(l.Strs[i], r.Strs[i])) {
					out.Ints[i] = 1
				}
			}
			out.Nulls = nulls
			return out, nil
		}, nil
	default: // integer-kind
		return func(b *Batch) (*types.Vector, error) {
			l, err := lfn(b)
			if err != nil {
				return nil, err
			}
			r, err := rfn(b)
			if err != nil {
				return nil, err
			}
			out := &types.Vector{T: types.Bool, Ints: make([]int64, len(l.Ints))}
			nulls := mergeNulls(l, r)
			for i := range l.Ints {
				if nulls != nil && nulls[i] {
					continue
				}
				c := 0
				switch {
				case l.Ints[i] < r.Ints[i]:
					c = -1
				case l.Ints[i] > r.Ints[i]:
					c = 1
				}
				if pred(c) {
					out.Ints[i] = 1
				}
			}
			out.Nulls = nulls
			return out, nil
		}, nil
	}
}

func cmpPred(op sql.BinOp) func(int) bool {
	switch op {
	case sql.OpEq:
		return func(c int) bool { return c == 0 }
	case sql.OpNe:
		return func(c int) bool { return c != 0 }
	case sql.OpLt:
		return func(c int) bool { return c < 0 }
	case sql.OpLe:
		return func(c int) bool { return c <= 0 }
	case sql.OpGt:
		return func(c int) bool { return c > 0 }
	default:
		return func(c int) bool { return c >= 0 }
	}
}

// mergeNulls combines two operands' null masks (nil when neither has one).
func mergeNulls(l, r *types.Vector) []bool {
	if l.Nulls == nil && r.Nulls == nil {
		return nil
	}
	n := l.Len()
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = l.IsNull(i) || r.IsNull(i)
	}
	return out
}

// compileArith builds type-specialized arithmetic kernels.
func compileArith(op sql.BinOp, t types.Type, lfn, rfn VecFn) (VecFn, error) {
	if t == types.Float64 {
		var k func(a, b float64) float64
		switch op {
		case sql.OpAdd:
			k = func(a, b float64) float64 { return a + b }
		case sql.OpSub:
			k = func(a, b float64) float64 { return a - b }
		case sql.OpMul:
			k = func(a, b float64) float64 { return a * b }
		case sql.OpDiv:
			k = nil // handled with a zero check below
		default:
			return nil, fmt.Errorf("exec: %s unsupported for floats", op)
		}
		return func(b *Batch) (*types.Vector, error) {
			l, err := lfn(b)
			if err != nil {
				return nil, err
			}
			r, err := rfn(b)
			if err != nil {
				return nil, err
			}
			out := &types.Vector{T: types.Float64, Floats: make([]float64, len(l.Floats))}
			nulls := mergeNulls(l, r)
			for i := range l.Floats {
				if nulls != nil && nulls[i] {
					continue
				}
				if k != nil {
					out.Floats[i] = k(l.Floats[i], r.Floats[i])
				} else {
					if r.Floats[i] == 0 {
						return nil, fmt.Errorf("exec: division by zero")
					}
					out.Floats[i] = l.Floats[i] / r.Floats[i]
				}
			}
			out.Nulls = nulls
			return out, nil
		}, nil
	}
	var k func(a, b int64) int64
	switch op {
	case sql.OpAdd:
		k = func(a, b int64) int64 { return a + b }
	case sql.OpSub:
		k = func(a, b int64) int64 { return a - b }
	case sql.OpMul:
		k = func(a, b int64) int64 { return a * b }
	case sql.OpDiv, sql.OpMod:
		k = nil
	}
	isMod := op == sql.OpMod
	return func(b *Batch) (*types.Vector, error) {
		l, err := lfn(b)
		if err != nil {
			return nil, err
		}
		r, err := rfn(b)
		if err != nil {
			return nil, err
		}
		out := &types.Vector{T: t, Ints: make([]int64, len(l.Ints))}
		nulls := mergeNulls(l, r)
		for i := range l.Ints {
			if nulls != nil && nulls[i] {
				continue
			}
			if k != nil {
				out.Ints[i] = k(l.Ints[i], r.Ints[i])
			} else {
				if r.Ints[i] == 0 {
					return nil, fmt.Errorf("exec: division by zero")
				}
				if isMod {
					out.Ints[i] = l.Ints[i] % r.Ints[i]
				} else {
					out.Ints[i] = l.Ints[i] / r.Ints[i]
				}
			}
		}
		out.Nulls = nulls
		return out, nil
	}, nil
}

// compileInList specializes membership tests: int keys get a hash set,
// strings a map, everything else a linear scan.
func compileInList(x *plan.InList) (VecFn, error) {
	inner, err := CompileVec(x.E)
	if err != nil {
		return nil, err
	}
	not := x.Not
	switch x.E.Type() {
	case types.String:
		set := make(map[string]bool, len(x.Vals))
		for _, v := range x.Vals {
			if !v.Null {
				set[v.S] = true
			}
		}
		return func(b *Batch) (*types.Vector, error) {
			v, err := inner(b)
			if err != nil {
				return nil, err
			}
			out := types.NewVector(types.Bool, v.Len())
			for i, s := range v.Strs {
				if v.IsNull(i) {
					out.AppendNull()
				} else {
					out.Append(types.NewBool(set[s] != not))
				}
			}
			return out, nil
		}, nil
	case types.Float64:
		set := make(map[float64]bool, len(x.Vals))
		for _, v := range x.Vals {
			if !v.Null {
				set[v.F] = true
			}
		}
		return func(b *Batch) (*types.Vector, error) {
			v, err := inner(b)
			if err != nil {
				return nil, err
			}
			out := types.NewVector(types.Bool, v.Len())
			for i, f := range v.Floats {
				if v.IsNull(i) {
					out.AppendNull()
				} else {
					out.Append(types.NewBool(set[f] != not))
				}
			}
			return out, nil
		}, nil
	default:
		set := make(map[int64]bool, len(x.Vals))
		for _, v := range x.Vals {
			if !v.Null {
				set[v.I] = true
			}
		}
		return func(b *Batch) (*types.Vector, error) {
			v, err := inner(b)
			if err != nil {
				return nil, err
			}
			out := types.NewVector(types.Bool, v.Len())
			for i, n := range v.Ints {
				if v.IsNull(i) {
					out.AppendNull()
				} else {
					out.Append(types.NewBool(set[n] != not))
				}
			}
			return out, nil
		}, nil
	}
}

func compileCase(x *plan.Case) (VecFn, error) {
	type branch struct {
		cond, then VecFn
	}
	branches := make([]branch, len(x.Whens))
	for i, w := range x.Whens {
		c, err := CompileVec(w.Cond)
		if err != nil {
			return nil, err
		}
		t, err := CompileVec(w.Then)
		if err != nil {
			return nil, err
		}
		branches[i] = branch{c, t}
	}
	var elseFn VecFn
	if x.Else != nil {
		var err error
		elseFn, err = CompileVec(x.Else)
		if err != nil {
			return nil, err
		}
	}
	t := x.T
	return func(b *Batch) (*types.Vector, error) {
		conds := make([]*types.Vector, len(branches))
		thens := make([]*types.Vector, len(branches))
		for i, br := range branches {
			var err error
			if conds[i], err = br.cond(b); err != nil {
				return nil, err
			}
			if thens[i], err = br.then(b); err != nil {
				return nil, err
			}
		}
		var elseVec *types.Vector
		if elseFn != nil {
			var err error
			if elseVec, err = elseFn(b); err != nil {
				return nil, err
			}
		}
		out := types.NewVector(t, b.N)
		for i := 0; i < b.N; i++ {
			matched := false
			for bi := range branches {
				if !conds[bi].IsNull(i) && conds[bi].Ints[i] != 0 {
					out.Append(coerceTo(thens[bi].Get(i), t))
					matched = true
					break
				}
			}
			if !matched {
				if elseVec != nil {
					out.Append(coerceTo(elseVec.Get(i), t))
				} else {
					out.AppendNull()
				}
			}
		}
		return out, nil
	}, nil
}

// coerceTo widens int values into float results (CASE branches of mixed
// numeric types).
func coerceTo(v types.Value, t types.Type) types.Value {
	if v.Null {
		return types.NewNull(t)
	}
	if v.T == types.Int64 && t == types.Float64 {
		return types.NewFloat(float64(v.I))
	}
	return v
}

func compileCall(x *plan.Call) (VecFn, error) {
	argFns := make([]VecFn, len(x.Args))
	for i, a := range x.Args {
		fn, err := CompileVec(a)
		if err != nil {
			return nil, err
		}
		argFns[i] = fn
	}
	// FLOAT (int→float promotion) gets a dedicated tight kernel; it is on
	// the hot path of promoted arithmetic.
	if x.Name == sql.FuncFloat {
		return func(b *Batch) (*types.Vector, error) {
			v, err := argFns[0](b)
			if err != nil {
				return nil, err
			}
			out := &types.Vector{T: types.Float64, Floats: make([]float64, len(v.Ints)), Nulls: v.Nulls}
			for i, n := range v.Ints {
				out.Floats[i] = float64(n)
			}
			return out, nil
		}, nil
	}
	call := *x
	return func(b *Batch) (*types.Vector, error) {
		args := make([]*types.Vector, len(argFns))
		for i, fn := range argFns {
			v, err := fn(b)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		out := types.NewVector(call.T, b.N)
		row := make([]types.Value, len(args))
		for i := 0; i < b.N; i++ {
			for a := range args {
				row[a] = args[a].Get(i)
			}
			v, err := evalCall(&call, row)
			if err != nil {
				return nil, err
			}
			out.Append(v)
		}
		return out, nil
	}, nil
}

// SelectTrue returns the positions where a boolean vector is true
// (NULL counts as false, per WHERE semantics).
func SelectTrue(v *types.Vector) []int {
	return SelectTrueInto(v, make([]int, 0, len(v.Ints)))
}

// SelectTrueInto appends the true positions to out, letting hot scan
// loops reuse one selection buffer instead of allocating per block.
func SelectTrueInto(v *types.Vector, out []int) []int {
	for i, n := range v.Ints {
		if n != 0 && !v.IsNull(i) {
			out = append(out, i)
		}
	}
	return out
}
