package exec

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"redshift/internal/faults"
)

// TestExchangeDrainRetiresParkedBatches covers the early-stop leak: a
// consumer that never pulls leaves batches parked in the exchange buffers,
// and Drain must retire every one from the flight tracker.
func TestExchangeDrainRetiresParkedBatches(t *testing.T) {
	fl := NewFlightTracker(nil)
	e := NewExchange(2, 4, nil, fl)

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := e.Send(ctx, 0, 1, intBatch([]int64{int64(i)}, nil)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if got := fl.Current(); got != 3 {
		t.Fatalf("in flight after sends = %d, want 3", got)
	}
	// The consumer dies without receiving (LIMIT satisfied, error, cancel).
	e.Abort(errors.New("consumer stopped early"))

	if n := e.Drain(); n != 3 {
		t.Errorf("Drain retired %d batches, want 3", n)
	}
	if got := fl.Current(); got != 0 {
		t.Errorf("in flight after Drain = %d, want 0", got)
	}
	// Drain is idempotent.
	if n := e.Drain(); n != 0 {
		t.Errorf("second Drain retired %d batches, want 0", n)
	}
}

// TestExchangeSendUnblocksOnCancel: a producer blocked on a full buffer must
// return promptly when the query context is cancelled, undoing its flight
// count so nothing leaks.
func TestExchangeSendUnblocksOnCancel(t *testing.T) {
	fl := NewFlightTracker(nil)
	e := NewExchange(1, 1, nil, fl)
	ctx, cancel := context.WithCancel(context.Background())

	if err := e.Send(ctx, 0, 0, intBatch([]int64{1}, nil)); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Buffer is full: this send blocks until cancel.
		errc <- e.Send(ctx, 0, 0, intBatch([]int64{2}, nil))
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	wg.Wait()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("blocked send returned %v, want context.Canceled", err)
	}
	// One batch parked, the cancelled one already un-counted.
	if got := fl.Current(); got != 1 {
		t.Errorf("in flight = %d, want 1 (only the parked batch)", got)
	}
	if n := e.Drain(); n != 1 {
		t.Errorf("Drain retired %d, want 1", n)
	}
	if got := fl.Current(); got != 0 {
		t.Errorf("in flight after Drain = %d, want 0", got)
	}
}

// TestExchangeSendFaultAborts: an injected link failure on the send site
// aborts the whole exchange so every peer unwinds, and the lost batch is
// never counted in flight.
func TestExchangeSendFaultAborts(t *testing.T) {
	fl := NewFlightTracker(nil)
	e := NewExchange(2, 2, nil, fl)
	inj := faults.NewInjector(&faults.Plan{Seed: 5, Sites: map[string]faults.Rule{
		faults.SiteExchangeSend: {Prob: 1, Err: "link reset"},
	}})
	inj.SetEnabled(true)
	e.SetFaults(inj)

	err := e.Send(context.Background(), 0, 1, intBatch([]int64{1}, nil))
	if err == nil {
		t.Fatal("send succeeded through a dead link")
	}
	if !strings.Contains(err.Error(), "link reset") {
		t.Errorf("send error %q does not carry the injected fault", err)
	}
	if e.Err() == nil {
		t.Error("exchange not aborted after link failure")
	}
	if got := fl.Current(); got != 0 {
		t.Errorf("in flight = %d after failed send, want 0", got)
	}
	// Receivers observe the abort rather than hanging.
	recv := NewRecvOp(e, 1)
	if _, rerr := recv.Next(context.Background()); rerr == nil {
		t.Error("receiver returned no error from an aborted exchange")
	}
}
