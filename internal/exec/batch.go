// Package exec implements query execution: a vectorized, type-specialized
// "compiled" engine (the stand-in for §2.1's compilation to C++ and machine
// code) and a generic row-at-a-time "interpreted" engine (the
// general-purpose executor the paper says compilation beats), plus the
// operators both share — zone-map-pruned scans, hash joins, two-phase
// mergeable aggregation (including HLL for APPROXIMATE COUNT(DISTINCT)),
// sort, distinct and limit.
package exec

import (
	"fmt"
	"sync"

	"redshift/internal/types"
)

// BatchSize is the number of rows per vector batch in the compiled engine.
const BatchSize = 1024

// Batch is a set of column vectors sharing a row count. Cols is laid out
// per the plan's row layout; positions the query never reads are nil
// (late materialization — unread columns are never decoded).
type Batch struct {
	Cols []*types.Vector
	N    int
}

// NewBatch returns an empty batch with the given layout width.
func NewBatch(width int) *Batch {
	return &Batch{Cols: make([]*types.Vector, width)}
}

// batchPool recycles Batch structs and their Cols slices through the
// streaming operator chain, so steady-state scans stop allocating one
// batch header per block. Vectors are never pooled — only the wrapper.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// GetBatch returns an empty pooled batch with the given layout width.
func GetBatch(width int) *Batch {
	b := batchPool.Get().(*Batch)
	if cap(b.Cols) < width {
		b.Cols = make([]*types.Vector, width)
	} else {
		b.Cols = b.Cols[:width]
		for i := range b.Cols {
			b.Cols[i] = nil
		}
	}
	b.N = 0
	return b
}

// PutBatch releases a batch to the pool. Callers must be the batch's
// sole owner: an operator may release only input batches it consumed
// itself, never a batch that was broadcast or that it passed through.
// Column vectors are not recycled, so vectors gathered out of b (or
// aliased by a projection) stay valid after the release.
func PutBatch(b *Batch) {
	if b == nil {
		return
	}
	for i := range b.Cols {
		b.Cols[i] = nil
	}
	b.N = 0
	batchPool.Put(b)
}

// Row boxes row i into a types.Row (nil columns yield zero Values). Used by
// the interpreted engine and by the leader when rendering results.
func (b *Batch) Row(i int) types.Row {
	row := make(types.Row, len(b.Cols))
	for c, v := range b.Cols {
		if v != nil {
			row[c] = v.Get(i)
		}
	}
	return row
}

// Gather returns a new batch holding the selected row positions, in order.
// The batch comes from the pool; vectors are freshly allocated copies.
func (b *Batch) Gather(sel []int) *Batch {
	out := GetBatch(len(b.Cols))
	out.N = len(sel)
	for c, v := range b.Cols {
		if v == nil {
			continue
		}
		out.Cols[c] = v.Gather(sel)
	}
	return out
}

// Concat appends other's rows to b. Column layouts must match.
func (b *Batch) Concat(other *Batch) error {
	if len(b.Cols) != len(other.Cols) {
		return fmt.Errorf("exec: concat width mismatch %d vs %d", len(b.Cols), len(other.Cols))
	}
	for c := range b.Cols {
		// An empty receiver adopts the other batch's materialization shape.
		if b.N == 0 && b.Cols[c] == nil && other.Cols[c] != nil {
			b.Cols[c] = types.NewVector(other.Cols[c].T, other.N)
		}
		switch {
		case b.Cols[c] == nil && other.Cols[c] == nil:
		case b.Cols[c] != nil && other.Cols[c] != nil:
			for i := 0; i < other.N; i++ {
				b.Cols[c].AppendFrom(other.Cols[c], i)
			}
		default:
			return fmt.Errorf("exec: concat materialization mismatch at column %d", c)
		}
	}
	b.N += other.N
	return nil
}

// ByteSize estimates the materialized payload size, for network accounting.
func (b *Batch) ByteSize() int64 {
	var n int64
	for _, v := range b.Cols {
		if v != nil {
			n += v.ByteSize()
		}
	}
	return n
}

// FromRows builds a fully materialized batch from boxed rows. Each column's
// type is taken from schema.
func FromRows(schema []types.Type, rows []types.Row) *Batch {
	b := NewBatch(len(schema))
	for c, t := range schema {
		b.Cols[c] = types.NewVector(t, len(rows))
	}
	for _, row := range rows {
		for c := range schema {
			b.Cols[c].Append(row[c])
		}
	}
	b.N = len(rows)
	return b
}
