package exec

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"redshift/internal/compress"
	"redshift/internal/types"
)

// SpillDir is a query's scratch directory. It is created lazily on the
// first spill (most queries never pay the mkdir), hands out spill files to
// any operator in the query, and Cleanup removes the whole tree — the
// single point the query lifecycle calls on success, cancel and timeout
// alike. A nil SpillDir means spilling is disabled (operators then grow
// in memory unconditionally).
type SpillDir struct {
	base   string
	prefix string

	mu      sync.Mutex
	path    string
	seq     int
	files   []*spillFile
	removed bool

	bytes atomic.Int64
}

// NewSpillDir prepares a scratch area under base (os.TempDir() when
// empty); prefix names the per-query subdirectory for debuggability.
func NewSpillDir(base, prefix string) *SpillDir {
	if prefix == "" {
		prefix = "q"
	}
	return &SpillDir{base: base, prefix: prefix}
}

// Path returns the scratch directory path, or "" if nothing has spilled.
func (d *SpillDir) Path() string {
	if d == nil {
		return ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.path
}

// Bytes returns the total bytes written to spill files by this query.
func (d *SpillDir) Bytes() int64 {
	if d == nil {
		return 0
	}
	return d.bytes.Load()
}

// create opens a new spill file. stats (may be nil) receives the bytes
// written to it.
func (d *SpillDir) create(kind string, stats *SpillStats) (*spillFile, error) {
	if d == nil {
		return nil, errors.New("exec: spill requested but no scratch dir configured")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return nil, errors.New("exec: spill after scratch dir cleanup")
	}
	if d.path == "" {
		if d.base != "" {
			if err := os.MkdirAll(d.base, 0o755); err != nil {
				return nil, err
			}
		}
		p, err := os.MkdirTemp(d.base, d.prefix+"-")
		if err != nil {
			return nil, err
		}
		d.path = p
	}
	d.seq++
	name := filepath.Join(d.path, fmt.Sprintf("%s-%06d.spill", kind, d.seq))
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	sf := &spillFile{dir: d, name: name, f: f, stats: stats}
	sf.w = bufio.NewWriterSize(f, 64<<10)
	d.files = append(d.files, sf)
	return sf, nil
}

// Cleanup closes every spill file and removes the scratch directory.
// Idempotent; safe on a nil receiver.
func (d *SpillDir) Cleanup() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.removed = true
	for _, sf := range d.files {
		sf.closeFile()
	}
	d.files = nil
	if d.path == "" {
		return nil
	}
	err := os.RemoveAll(d.path)
	d.path = ""
	return err
}

// spillFile is a single scratch file holding a sequence of batch frames.
// Frame format (all integers uvarint):
//
//	[rows][ncols] then per column: [blobLen][blob]
//
// where blob is an internal/compress Raw block (self-describing type +
// null mask) and blobLen==0 marks a nil column — late-materialization
// holes survive the round trip. Write fully, then Reader() rewinds for a
// single sequential read.
type spillFile struct {
	dir   *SpillDir
	name  string
	f     *os.File
	w     *bufio.Writer
	stats *SpillStats

	bytes  int64
	rows   int64
	closed bool
}

// writeUvarint appends a uvarint to the file, tracking bytes.
func (sf *spillFile) writeUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	if _, err := sf.w.Write(buf[:n]); err != nil {
		return err
	}
	sf.account(int64(n))
	return nil
}

func (sf *spillFile) account(n int64) {
	sf.bytes += n
	if sf.dir != nil {
		sf.dir.bytes.Add(n)
	}
	if sf.stats != nil {
		sf.stats.Bytes.Add(n)
	}
}

// WriteBatch appends one frame. Empty or nil batches write nothing. The
// caller keeps ownership of b.
func (sf *spillFile) WriteBatch(b *Batch) error {
	if b == nil || b.N == 0 {
		return nil
	}
	if err := sf.writeUvarint(uint64(b.N)); err != nil {
		return err
	}
	if err := sf.writeUvarint(uint64(len(b.Cols))); err != nil {
		return err
	}
	for _, v := range b.Cols {
		if v == nil {
			if err := sf.writeUvarint(0); err != nil {
				return err
			}
			continue
		}
		blob, err := compress.Encode(compress.Raw, v)
		if err != nil {
			return err
		}
		if err := sf.writeUvarint(uint64(len(blob))); err != nil {
			return err
		}
		if _, err := sf.w.Write(blob); err != nil {
			return err
		}
		sf.account(int64(len(blob)))
	}
	sf.rows += int64(b.N)
	return nil
}

// Rows returns the number of rows written so far.
func (sf *spillFile) Rows() int64 { return sf.rows }

// Bytes returns the encoded size written so far.
func (sf *spillFile) Bytes() int64 { return sf.bytes }

// Reader flushes pending writes and returns a reader positioned at the
// first frame. A spill file is written once, then read once.
func (sf *spillFile) Reader() (*spillReader, error) {
	if err := sf.w.Flush(); err != nil {
		return nil, err
	}
	if _, err := sf.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return &spillReader{f: sf, r: bufio.NewReaderSize(sf.f, 64<<10)}, nil
}

func (sf *spillFile) closeFile() {
	if sf.closed {
		return
	}
	sf.closed = true
	sf.f.Close()
}

// Discard closes and deletes the file early — partition files are dropped
// as soon as their pass completes so peak scratch usage stays near the
// live working set, not the sum of every pass.
func (sf *spillFile) Discard() {
	sf.closeFile()
	os.Remove(sf.name)
}

// spillReader streams frames back as pooled batches; the consumer owns
// each returned batch. Next returns (nil, nil) at end of file.
type spillReader struct {
	f *spillFile
	r *bufio.Reader
}

func (r *spillReader) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("spill read %s: %w", filepath.Base(r.f.name), err)
	}
	ncols, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, fmt.Errorf("spill read %s: %w", filepath.Base(r.f.name), err)
	}
	b := GetBatch(int(ncols))
	b.N = int(n)
	for c := 0; c < int(ncols); c++ {
		l, err := binary.ReadUvarint(r.r)
		if err != nil {
			PutBatch(b)
			return nil, fmt.Errorf("spill read %s: %w", filepath.Base(r.f.name), err)
		}
		if l == 0 {
			continue // nil (unmaterialized) column
		}
		blob := make([]byte, l)
		if _, err := io.ReadFull(r.r, blob); err != nil {
			PutBatch(b)
			return nil, fmt.Errorf("spill read %s: %w", filepath.Base(r.f.name), err)
		}
		v, err := compress.Decode(blob)
		if err != nil {
			PutBatch(b)
			return nil, fmt.Errorf("spill decode %s: %w", filepath.Base(r.f.name), err)
		}
		b.Cols[c] = v
	}
	return b, nil
}

// batchStream is the minimal pull interface shared by spill readers,
// in-memory batch lists and k-way merges. Next returns (nil, nil) when
// exhausted; returned batches are owned by the caller.
type batchStream interface {
	Next(ctx context.Context) (*Batch, error)
}

// memStream replays a fixed list of batches, handing off ownership.
type memStream struct {
	batches []*Batch
	i       int
}

func (s *memStream) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for s.i < len(s.batches) {
		b := s.batches[s.i]
		s.batches[s.i] = nil
		s.i++
		if b != nil && b.N > 0 {
			return b, nil
		}
		if b != nil {
			PutBatch(b)
		}
	}
	return nil, nil
}

// rowCompare orders row ai of a against row bi of b.
type rowCompare func(a *Batch, ai int, b *Batch, bi int) int

// mergeStream k-way merges already-ordered input streams. Ties go to the
// lowest stream index, which makes the merge stable when streams are
// appended in temporal order — the property the external sort and the
// spilled join rely on for deterministic, tier-independent output.
type mergeStream struct {
	streams []batchStream
	cmp     rowCompare
	cur     []*Batch
	pos     []int
	inited  bool
}

func newMergeStream(streams []batchStream, cmp rowCompare) *mergeStream {
	return &mergeStream{
		streams: streams,
		cmp:     cmp,
		cur:     make([]*Batch, len(streams)),
		pos:     make([]int, len(streams)),
	}
}

// advance loads the next non-empty batch of stream i.
func (m *mergeStream) advance(ctx context.Context, i int) error {
	for {
		b, err := m.streams[i].Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			m.cur[i] = nil
			return nil
		}
		if b.N > 0 {
			m.cur[i] = b
			m.pos[i] = 0
			return nil
		}
		PutBatch(b)
	}
}

func (m *mergeStream) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !m.inited {
		m.inited = true
		for i := range m.streams {
			if err := m.advance(ctx, i); err != nil {
				return nil, err
			}
		}
	}
	var out *Batch
	for {
		best := -1
		for i := range m.cur {
			if m.cur[i] == nil {
				continue
			}
			if best == -1 || m.cmp(m.cur[i], m.pos[i], m.cur[best], m.pos[best]) < 0 {
				best = i
			}
		}
		if best == -1 {
			if out != nil && out.N > 0 {
				return out, nil
			}
			if out != nil {
				PutBatch(out)
			}
			return nil, nil
		}
		src := m.cur[best]
		if out == nil {
			out = GetBatch(len(src.Cols))
		}
		appendRow(out, src, m.pos[best])
		m.pos[best]++
		if m.pos[best] >= src.N {
			PutBatch(src)
			m.cur[best] = nil
			if err := m.advance(ctx, best); err != nil {
				PutBatch(out)
				return nil, err
			}
		}
		if out.N >= BatchSize {
			return out, nil
		}
	}
}

// appendRow copies row i of src onto dst, materializing dst's vectors
// lazily from src's shape (nil columns stay nil).
func appendRow(dst, src *Batch, i int) {
	for c, v := range src.Cols {
		if v == nil {
			continue
		}
		if dst.Cols[c] == nil {
			dst.Cols[c] = types.NewVector(v.T, BatchSize)
		}
		dst.Cols[c].AppendFrom(v, i)
	}
	dst.N++
}
