package exec

import (
	"testing"
	"time"

	"redshift/internal/types"
)

// trunc runs dateTrunc on a parsed DATE and formats the result.
func trunc(t *testing.T, unit, date string) string {
	t.Helper()
	v, err := types.ParseDate(date)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dateTrunc(unit, v)
	if err != nil {
		t.Fatalf("date_trunc(%q, %s): %v", unit, date, err)
	}
	if out.T != types.Date {
		t.Fatalf("date_trunc(%q) changed type to %v", unit, out.T)
	}
	return toTime(out).Format("2006-01-02")
}

func TestDateTruncWeek(t *testing.T) {
	// Regression: week was rejected with "bad unit". ISO weeks start Monday.
	cases := map[string]string{
		"2026-01-01": "2025-12-29", // Thursday → previous year's Monday
		"2025-12-29": "2025-12-29", // Monday truncates to itself
		"2026-01-04": "2025-12-29", // Sunday belongs to the Monday-start week
		"2026-01-05": "2026-01-05", // next Monday
		"2024-03-01": "2024-02-26", // leap year, month boundary
	}
	for in, want := range cases {
		if got := trunc(t, "week", in); got != want {
			t.Errorf("date_trunc('week', %s) = %s, want %s", in, got, want)
		}
	}
}

func TestDateTruncQuarter(t *testing.T) {
	// Regression: quarter was rejected with "bad unit".
	cases := map[string]string{
		"2025-11-15": "2025-10-01",
		"2026-01-01": "2026-01-01",
		"2026-02-20": "2026-01-01",
		"2026-06-30": "2026-04-01",
		"2025-12-31": "2025-10-01",
	}
	for in, want := range cases {
		if got := trunc(t, "quarter", in); got != want {
			t.Errorf("date_trunc('quarter', %s) = %s, want %s", in, got, want)
		}
	}
}

func TestDateTruncWeekTimestamp(t *testing.T) {
	v, err := types.ParseTimestamp("2026-01-01 13:45:07")
	if err != nil {
		t.Fatal(err)
	}
	out, err := dateTrunc("week", v)
	if err != nil {
		t.Fatal(err)
	}
	if out.T != types.Timestamp {
		t.Fatalf("type = %v", out.T)
	}
	want := time.Date(2025, 12, 29, 0, 0, 0, 0, time.UTC)
	if got := toTime(out); !got.Equal(want) {
		t.Errorf("week of timestamp = %s, want %s", got, want)
	}
}

func TestDateTruncBadUnitStillRejected(t *testing.T) {
	v, _ := types.ParseDate("2026-01-01")
	if _, err := dateTrunc("fortnight", v); err == nil {
		t.Error("bad unit accepted")
	}
}
