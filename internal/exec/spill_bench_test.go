package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// benchKVBatches builds n rows of (Int64 key, String payload) in
// BatchSize chunks and reports their total tracked size.
func benchKVBatches(rng *rand.Rand, n, dupMod int) ([]*Batch, int64) {
	var batches []*Batch
	var bytes int64
	for left := n; left > 0; left -= BatchSize {
		b := randKVBatch(rng, min(left, BatchSize), dupMod, 0)
		bytes += b.ByteSize()
		batches = append(batches, b)
	}
	return batches, bytes
}

// benchMemCtx builds a governed MemContext over dir with the given
// budget, returning it with its stats for spill reporting.
func benchMemCtx(b *testing.B, budget int64) *MemContext {
	tr := NewMemTracker(budget, nil)
	dir := NewSpillDir(b.TempDir(), "bench")
	b.Cleanup(func() { dir.Cleanup() })
	return &MemContext{T: tr.Child(), Dir: dir, Stats: &SpillStats{}}
}

// BenchmarkSpillJoin compares the in-memory hash join against the grace
// spill path on the same data, with the build side 8x the governed
// budget so every partition goes through disk.
func BenchmarkSpillJoin(b *testing.B) {
	const buildRows, probeRows = 60000, 60000
	rng := rand.New(rand.NewSource(20260805))
	build, buildBytes := benchKVBatches(rng, buildRows, 1000)
	probe, _ := benchKVBatches(rng, probeRows, 1000)
	budget := buildBytes / 8
	ctx := context.Background()

	run := func(b *testing.B, governed bool) {
		var spilled int64
		for i := 0; i < b.N; i++ {
			j, err := NewHashJoin(Compiled, mkJoinStep(sql.InnerJoin), 2)
			if err != nil {
				b.Fatal(err)
			}
			var mc *MemContext
			if governed {
				mc = benchMemCtx(b, budget)
				j.SetMemory(mc)
			}
			for _, bb := range build {
				if err := j.Build(bb); err != nil {
					b.Fatal(err)
				}
			}
			var rows int64
			if !j.Spilled() {
				if governed {
					b.Fatal("8x-budget build did not spill")
				}
				for _, pb := range probe {
					out, err := j.Probe(pb)
					if err != nil {
						b.Fatal(err)
					}
					rows += int64(out.N)
					PutBatch(out)
				}
			} else {
				for _, pb := range probe {
					if err := j.spill.addProbe(pb); err != nil {
						b.Fatal(err)
					}
				}
				st, err := j.spill.run(ctx)
				if err != nil {
					b.Fatal(err)
				}
				for {
					out, err := st.Next(ctx)
					if err != nil {
						b.Fatal(err)
					}
					if out == nil {
						break
					}
					rows += int64(out.N)
					PutBatch(out)
				}
			}
			if rows == 0 {
				b.Fatal("join produced no rows")
			}
			if governed {
				spilled += mc.Stats.Bytes.Load()
				j.ReleaseMem()
			}
		}
		if governed {
			b.ReportMetric(float64(spilled)/float64(b.N), "spill-B/op")
		}
	}
	b.Run(fmt.Sprintf("in-memory-%dKB", buildBytes>>10), func(b *testing.B) { run(b, false) })
	b.Run(fmt.Sprintf("spill-budget-%dKB", budget>>10), func(b *testing.B) { run(b, true) })
}

// BenchmarkExternalSort compares the one-shot in-memory sort against the
// external run-merge path with the input 8x the governed budget.
func BenchmarkExternalSort(b *testing.B) {
	const rows = 200000
	rng := rand.New(rand.NewSource(20260805))
	input, inBytes := benchKVBatches(rng, rows, 1<<30)
	budget := inBytes / 8
	keys := []plan.OrderKey{{Index: 0}, {Index: 1, Desc: true}}
	ctx := context.Background()

	run := func(b *testing.B, governed bool) {
		var spilled int64
		for i := 0; i < b.N; i++ {
			var mc *MemContext
			if governed {
				mc = benchMemCtx(b, budget)
			}
			s := NewExternalSorter(keys, 2, mc)
			for _, bb := range input {
				if err := s.Add(bb); err != nil {
					b.Fatal(err)
				}
			}
			if governed && !s.Spilled() {
				b.Fatal("8x-budget sort did not spill")
			}
			st, err := s.Stream(ctx)
			if err != nil {
				b.Fatal(err)
			}
			var got int64
			var last types.Value
			for {
				out, err := st.Next(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if out == nil {
					break
				}
				// Touch the sort key so the merge isn't dead code, and spot-
				// check ordering while we're at it.
				v := out.Cols[0].Get(out.N - 1)
				if got > 0 && last.I > out.Cols[0].Get(0).I {
					b.Fatal("merge emitted keys out of order")
				}
				last = v
				got += int64(out.N)
				PutBatch(out)
			}
			if got != rows {
				b.Fatalf("sorted %d rows, want %d", got, rows)
			}
			s.Release()
			if governed {
				spilled += mc.Stats.Bytes.Load()
			}
		}
		if governed {
			b.ReportMetric(float64(spilled)/float64(b.N), "spill-B/op")
		}
	}
	b.Run(fmt.Sprintf("in-memory-%dKB", inBytes>>10), func(b *testing.B) { run(b, false) })
	b.Run(fmt.Sprintf("spill-budget-%dKB", budget>>10), func(b *testing.B) { run(b, true) })
}
