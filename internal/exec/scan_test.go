package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"redshift/internal/catalog"
	"redshift/internal/compress"
	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/storage"
	"redshift/internal/types"
)

// buildSegment builds a sorted 2-column segment (ts ascending, v cyclic)
// with 16 rows per block.
func buildSegment(t *testing.T, rows int) (*storage.Segment, *catalog.TableDef) {
	t.Helper()
	def := &catalog.TableDef{
		ID:   1,
		Name: "f",
		Columns: []catalog.ColumnDef{
			{Name: "ts", Type: types.Int64, Encoding: compress.Delta},
			{Name: "v", Type: types.Int64, Encoding: compress.Raw},
		},
		DistKeyCol: -1,
	}
	b, err := storage.NewBuilder(1, 0, 0, def.Schema(), def.Encodings(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := b.Append(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	return seg, def
}

// scanSpec builds a plan.TableScan with a ts < hi filter.
func scanSpec(def *catalog.TableDef, hi int64) *plan.TableScan {
	filter := &plan.Bin{
		Op: sql.OpLt,
		L:  &plan.Col{Index: 0, T: types.Int64, Name: "ts"},
		R:  &plan.Const{V: types.NewInt(hi)},
		T:  types.Bool,
	}
	return &plan.TableScan{
		Def:      def,
		Filter:   filter,
		Ranges:   []plan.ColRange{{Col: 0, Hi: types.NewInt(hi), HasHi: true}},
		NeedCols: []int{0, 1},
	}
}

func TestScannerZoneMapPruning(t *testing.T) {
	seg, def := buildSegment(t, 160) // 10 blocks of 16
	sc, err := NewScanner(Compiled, scanSpec(def, 20), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	if err := sc.ScanSegment(context.Background(), seg, func(b *Batch) error {
		rows += b.N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 20 {
		t.Errorf("emitted %d rows, want 20", rows)
	}
	st := sc.Stats()
	// Blocks 0 and 1 (ts 0..31) survive the zone map; blocks 2..9 prune.
	if st.BlocksRead.Load() != 4 { // 2 surviving blocks × 2 needed columns
		t.Errorf("BlocksRead = %d", st.BlocksRead.Load())
	}
	if st.BlocksSkipped.Load() != 16 { // 8 pruned blocks × 2 columns
		t.Errorf("BlocksSkipped = %d", st.BlocksSkipped.Load())
	}
	if st.RowsRead.Load() != 32 || st.RowsEmitted.Load() != 20 {
		t.Errorf("rows read/emitted = %d/%d", st.RowsRead.Load(), st.RowsEmitted.Load())
	}
}

func TestScannerLateMaterialization(t *testing.T) {
	seg, def := buildSegment(t, 32)
	spec := scanSpec(def, 1000)
	spec.NeedCols = []int{1} // only v; ts never decoded
	spec.Filter = nil
	spec.Ranges = nil
	sc, err := NewScanner(Compiled, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = sc.ScanSegment(context.Background(), seg, func(b *Batch) error {
		if b.Cols[0] != nil {
			return errors.New("unneeded column was materialized")
		}
		if b.Cols[1] == nil {
			return errors.New("needed column missing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Stats().BlocksRead.Load() != 2 { // 2 blocks × 1 column
		t.Errorf("BlocksRead = %d", sc.Stats().BlocksRead.Load())
	}
}

func TestScannerPageFaults(t *testing.T) {
	seg, def := buildSegment(t, 48)
	// Evict everything, serve payloads from a side copy via the fetcher.
	payloads := map[storage.BlockID][]byte{}
	seg.Blocks(func(b *storage.Block) {
		payloads[b.ID] = append([]byte(nil), b.Payload()...)
		b.Evict()
	})
	fetch := func(_ context.Context, b *storage.Block) (int, error) {
		p, ok := payloads[b.ID]
		if !ok {
			return 0, fmt.Errorf("no payload for %s", b.ID)
		}
		return 0, b.Fill(p)
	}
	spec := scanSpec(def, 1000)
	spec.Filter, spec.Ranges = nil, nil
	sc, err := NewScanner(Compiled, spec, fetch, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	if err := sc.ScanSegment(context.Background(), seg, func(b *Batch) error {
		rows += b.N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 48 {
		t.Errorf("rows = %d", rows)
	}
	if sc.Stats().PageFaults.Load() != 6 { // 3 blocks × 2 columns
		t.Errorf("PageFaults = %d", sc.Stats().PageFaults.Load())
	}
}

func TestScannerNoFetcherFailsOnEvicted(t *testing.T) {
	seg, def := buildSegment(t, 16)
	seg.Blocks(func(b *storage.Block) { b.Evict() })
	spec := scanSpec(def, 1000)
	spec.Filter, spec.Ranges = nil, nil
	sc, _ := NewScanner(Compiled, spec, nil, nil)
	err := sc.ScanSegment(context.Background(), seg, func(*Batch) error { return nil })
	if !errors.Is(err, storage.ErrNotResident) {
		t.Errorf("err = %v, want ErrNotResident", err)
	}
}

func TestScannerWidthMismatch(t *testing.T) {
	seg, _ := buildSegment(t, 16)
	wrong := &catalog.TableDef{
		ID:         2,
		Name:       "w",
		Columns:    []catalog.ColumnDef{{Name: "only", Type: types.Int64, Encoding: compress.Raw}},
		DistKeyCol: -1,
	}
	spec := &plan.TableScan{Def: wrong, NeedCols: []int{0}}
	sc, _ := NewScanner(Compiled, spec, nil, nil)
	if err := sc.ScanSegment(context.Background(), seg, func(*Batch) error { return nil }); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestCompiledFloatAndStringComparisons(t *testing.T) {
	// Exercise the float and string kernels of compileCompare and the
	// float branch of compileInList directly.
	fb := NewBatch(1)
	fv := types.NewVector(types.Float64, 4)
	for _, f := range []float64{1.5, 2.5, 3.5, 2.5} {
		fv.Append(types.NewFloat(f))
	}
	fb.Cols[0], fb.N = fv, 4

	ge := &plan.Bin{Op: sql.OpGe, L: &plan.Col{Index: 0, T: types.Float64}, R: &plan.Const{V: types.NewFloat(2.5)}, T: types.Bool}
	v := evalOne(t, Compiled, ge, fb)
	if v.Ints[0] != 0 || v.Ints[1] != 1 || v.Ints[2] != 1 {
		t.Errorf("float >= : %v", v.Ints)
	}
	in := &plan.InList{E: &plan.Col{Index: 0, T: types.Float64}, Vals: []types.Value{types.NewFloat(2.5)}}
	v = evalOne(t, Compiled, in, fb)
	if v.Ints[0] != 0 || v.Ints[1] != 1 || v.Ints[3] != 1 {
		t.Errorf("float IN: %v", v.Ints)
	}

	sb := NewBatch(1)
	sv := types.NewVector(types.String, 3)
	for _, s := range []string{"apple", "mango", "zebra"} {
		sv.Append(types.NewString(s))
	}
	sb.Cols[0], sb.N = sv, 3
	ne := &plan.Bin{Op: sql.OpNe, L: &plan.Col{Index: 0, T: types.String}, R: &plan.Const{V: types.NewString("mango")}, T: types.Bool}
	v = evalOne(t, Compiled, ne, sb)
	if v.Ints[0] != 1 || v.Ints[1] != 0 || v.Ints[2] != 1 {
		t.Errorf("string <>: %v", v.Ints)
	}
}

func TestScannerPredicateShortCircuit(t *testing.T) {
	seg, def := buildSegment(t, 160) // 10 blocks of 16
	spec := scanSpec(def, 20)
	spec.Ranges = nil // disable zone maps; only the predicate can save work
	sc, err := NewScanner(Compiled, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	if err := sc.ScanSegment(context.Background(), seg, func(b *Batch) error {
		rows += b.N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 20 {
		t.Errorf("emitted %d rows, want 20", rows)
	}
	st := sc.Stats()
	// The filter column (ts) decodes in all 10 blocks; v decodes only in
	// the 2 blocks with surviving rows — the other 8 short-circuit.
	if st.BlocksRead.Load() != 12 {
		t.Errorf("BlocksRead = %d, want 12", st.BlocksRead.Load())
	}
	if st.BlocksSkipped.Load() != 0 {
		t.Errorf("BlocksSkipped = %d (zone maps were off)", st.BlocksSkipped.Load())
	}

	// The same scan with eager materialization would decode 20 blocks; the
	// byte accounting must show only 12 were paid for.
	var full int64
	for c := 0; c < 2; c++ {
		for bi := 0; bi < seg.NumBlocks(); bi++ {
			full += seg.Block(c, bi).ByteSize()
		}
	}
	if st.BytesRead.Load() >= full {
		t.Errorf("BytesRead = %d, want < full decode %d", st.BytesRead.Load(), full)
	}
}

func TestScannerBufferCache(t *testing.T) {
	seg, def := buildSegment(t, 64)
	spec := scanSpec(def, 1000)
	spec.Filter, spec.Ranges = nil, nil
	cache := storage.NewBlockCache(1 << 20)

	runScan := func() (*ScanStats, []int64) {
		sc, err := NewScanner(Compiled, spec, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc.SetCache(cache)
		var got []int64
		if err := sc.ScanSegment(context.Background(), seg, func(b *Batch) error {
			for i := 0; i < b.N; i++ {
				got = append(got, b.Cols[0].Ints[i])
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return sc.Stats(), got
	}

	cold, rows1 := runScan()
	if cold.CacheHits.Load() != 0 || cold.CacheMisses.Load() != 8 {
		t.Errorf("cold hits/misses = %d/%d, want 0/8",
			cold.CacheHits.Load(), cold.CacheMisses.Load())
	}
	if cold.BytesRead.Load() == 0 {
		t.Error("cold scan decoded nothing")
	}

	warm, rows2 := runScan()
	if warm.CacheHits.Load() != 8 || warm.CacheMisses.Load() != 0 {
		t.Errorf("warm hits/misses = %d/%d, want 8/0",
			warm.CacheHits.Load(), warm.CacheMisses.Load())
	}
	if warm.BytesRead.Load() != 0 {
		t.Errorf("warm scan decoded %d bytes, want 0", warm.BytesRead.Load())
	}
	if warm.BlocksRead.Load() != cold.BlocksRead.Load() {
		t.Errorf("BlocksRead cold %d != warm %d (hits still materialize)",
			cold.BlocksRead.Load(), warm.BlocksRead.Load())
	}
	if len(rows1) != len(rows2) {
		t.Fatalf("row counts differ: %d vs %d", len(rows1), len(rows2))
	}
	for i := range rows1 {
		if rows1[i] != rows2[i] {
			t.Fatalf("row %d differs: %d vs %d", i, rows1[i], rows2[i])
		}
	}
}

func TestScannerMetadataOnlyScan(t *testing.T) {
	seg, def := buildSegment(t, 48)
	spec := &plan.TableScan{Def: def, NeedCols: nil} // COUNT(*) shape
	sc, err := NewScanner(Compiled, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Evict every block: a metadata-only scan must not even notice.
	seg.Blocks(func(b *storage.Block) { b.Evict() })
	rows := 0
	if err := sc.ScanSegment(context.Background(), seg, func(b *Batch) error {
		for _, c := range b.Cols {
			if c != nil {
				return errors.New("metadata-only scan materialized a column")
			}
		}
		rows += b.N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 48 {
		t.Errorf("rows = %d, want 48", rows)
	}
	st := sc.Stats()
	if st.BlocksRead.Load() != 0 || st.BytesRead.Load() != 0 {
		t.Errorf("metadata scan read %d blocks / %d bytes, want 0/0",
			st.BlocksRead.Load(), st.BytesRead.Load())
	}
}
