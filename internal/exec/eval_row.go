package exec

import (
	"fmt"
	"strings"

	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// EvalRow evaluates a bound expression against one boxed row — the
// interpreted engine's evaluation path, a stand-in for execution "in a
// general-purpose set of executor functions" (§2.1).
func EvalRow(e plan.Expr, row types.Row) (types.Value, error) {
	switch x := e.(type) {
	case *plan.Col:
		if x.Index >= len(row) {
			return types.Value{}, fmt.Errorf("exec: column %d out of range (row width %d)", x.Index, len(row))
		}
		return row[x.Index], nil

	case *plan.Const:
		return x.V, nil

	case *plan.Bin:
		return evalBinRow(x, row)

	case *plan.Not:
		v, err := EvalRow(x.E, row)
		if err != nil {
			return types.Value{}, err
		}
		if v.Null {
			return types.NewNull(types.Bool), nil
		}
		return types.NewBool(v.I == 0), nil

	case *plan.Neg:
		v, err := EvalRow(x.E, row)
		if err != nil {
			return types.Value{}, err
		}
		if v.Null {
			return types.NewNull(v.T), nil
		}
		if v.T == types.Float64 {
			return types.NewFloat(-v.F), nil
		}
		return types.Value{T: v.T, I: -v.I}, nil

	case *plan.IsNull:
		v, err := EvalRow(x.E, row)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewBool(v.Null != x.Not), nil

	case *plan.InList:
		v, err := EvalRow(x.E, row)
		if err != nil {
			return types.Value{}, err
		}
		if v.Null {
			return types.NewNull(types.Bool), nil
		}
		for _, item := range x.Vals {
			if !item.Null && types.Compare(v, item) == 0 {
				return types.NewBool(!x.Not), nil
			}
		}
		return types.NewBool(x.Not), nil

	case *plan.Like:
		v, err := EvalRow(x.E, row)
		if err != nil {
			return types.Value{}, err
		}
		if v.Null {
			return types.NewNull(types.Bool), nil
		}
		return types.NewBool(likeMatch(x.Pattern, v.S) != x.Not), nil

	case *plan.Case:
		for _, w := range x.Whens {
			c, err := EvalRow(w.Cond, row)
			if err != nil {
				return types.Value{}, err
			}
			if c.Bool() {
				return EvalRow(w.Then, row)
			}
		}
		if x.Else != nil {
			return EvalRow(x.Else, row)
		}
		return types.NewNull(x.T), nil

	case *plan.Call:
		args := make([]types.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := EvalRow(a, row)
			if err != nil {
				return types.Value{}, err
			}
			args[i] = v
		}
		return evalCall(x, args)

	default:
		return types.Value{}, fmt.Errorf("exec: unknown expression node %T", e)
	}
}

func evalBinRow(x *plan.Bin, row types.Row) (types.Value, error) {
	// AND/OR need ternary logic and short-circuiting.
	if x.Op == sql.OpAnd || x.Op == sql.OpOr {
		l, err := EvalRow(x.L, row)
		if err != nil {
			return types.Value{}, err
		}
		if x.Op == sql.OpAnd && !l.Null && l.I == 0 {
			return types.NewBool(false), nil
		}
		if x.Op == sql.OpOr && !l.Null && l.I != 0 {
			return types.NewBool(true), nil
		}
		r, err := EvalRow(x.R, row)
		if err != nil {
			return types.Value{}, err
		}
		return ternary(x.Op, l, r), nil
	}

	l, err := EvalRow(x.L, row)
	if err != nil {
		return types.Value{}, err
	}
	r, err := EvalRow(x.R, row)
	if err != nil {
		return types.Value{}, err
	}
	if l.Null || r.Null {
		return types.NewNull(x.T), nil
	}
	switch x.Op {
	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		cmp := types.Compare(l, r)
		var ok bool
		switch x.Op {
		case sql.OpEq:
			ok = cmp == 0
		case sql.OpNe:
			ok = cmp != 0
		case sql.OpLt:
			ok = cmp < 0
		case sql.OpLe:
			ok = cmp <= 0
		case sql.OpGt:
			ok = cmp > 0
		case sql.OpGe:
			ok = cmp >= 0
		}
		return types.NewBool(ok), nil
	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
		return arith(x.Op, x.T, l, r)
	default:
		return types.Value{}, fmt.Errorf("exec: unknown operator %s", x.Op)
	}
}

// ternary applies SQL three-valued AND/OR.
func ternary(op sql.BinOp, l, r types.Value) types.Value {
	lt, lf := !l.Null && l.I != 0, !l.Null && l.I == 0
	rt, rf := !r.Null && r.I != 0, !r.Null && r.I == 0
	if op == sql.OpAnd {
		switch {
		case lf || rf:
			return types.NewBool(false)
		case lt && rt:
			return types.NewBool(true)
		default:
			return types.NewNull(types.Bool)
		}
	}
	switch {
	case lt || rt:
		return types.NewBool(true)
	case lf && rf:
		return types.NewBool(false)
	default:
		return types.NewNull(types.Bool)
	}
}

// arith applies an arithmetic operator to non-null operands with the
// planner-resolved result type.
func arith(op sql.BinOp, t types.Type, l, r types.Value) (types.Value, error) {
	if t == types.Float64 {
		a, b := l.AsFloat(), r.AsFloat()
		var out float64
		switch op {
		case sql.OpAdd:
			out = a + b
		case sql.OpSub:
			out = a - b
		case sql.OpMul:
			out = a * b
		case sql.OpDiv:
			if b == 0 {
				return types.Value{}, fmt.Errorf("exec: division by zero")
			}
			out = a / b
		default:
			return types.Value{}, fmt.Errorf("exec: %s unsupported for floats", op)
		}
		return types.NewFloat(out), nil
	}
	a, b := l.I, r.I
	var out int64
	switch op {
	case sql.OpAdd:
		out = a + b
	case sql.OpSub:
		out = a - b
	case sql.OpMul:
		out = a * b
	case sql.OpDiv:
		if b == 0 {
			return types.Value{}, fmt.Errorf("exec: division by zero")
		}
		out = a / b
	case sql.OpMod:
		if b == 0 {
			return types.Value{}, fmt.Errorf("exec: division by zero")
		}
		out = a % b
	}
	return types.Value{T: t, I: out}, nil
}

// evalCall applies a scalar function to evaluated arguments.
func evalCall(x *plan.Call, args []types.Value) (types.Value, error) {
	// Most functions are strict: NULL in, NULL out. COALESCE is the
	// exception.
	if x.Name != sql.FuncCoalesce {
		for _, a := range args {
			if a.Null {
				return types.NewNull(x.T), nil
			}
		}
	}
	switch x.Name {
	case sql.FuncLower:
		return types.NewString(strings.ToLower(args[0].S)), nil
	case sql.FuncUpper:
		return types.NewString(strings.ToUpper(args[0].S)), nil
	case sql.FuncLength:
		return types.NewInt(int64(len(args[0].S))), nil
	case sql.FuncAbs:
		if args[0].T == types.Float64 {
			f := args[0].F
			if f < 0 {
				f = -f
			}
			return types.NewFloat(f), nil
		}
		i := args[0].I
		if i < 0 {
			i = -i
		}
		return types.NewInt(i), nil
	case sql.FuncCoalesce:
		for _, a := range args {
			if !a.Null {
				if a.T == types.Int64 && x.T == types.Float64 {
					return types.NewFloat(float64(a.I)), nil
				}
				return a, nil
			}
		}
		return types.NewNull(x.T), nil
	case sql.FuncFloat:
		return types.NewFloat(float64(args[0].I)), nil
	case sql.FuncDateTrunc:
		return dateTrunc(args[0].S, args[1])
	case sql.FuncExtractYear:
		return types.NewInt(int64(toTime(args[0]).Year())), nil
	case sql.FuncExtractMonth:
		return types.NewInt(int64(toTime(args[0]).Month())), nil
	default:
		return types.Value{}, fmt.Errorf("exec: unknown function %s", x.Name)
	}
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}
