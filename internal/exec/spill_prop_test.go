package exec

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"

	"redshift/internal/plan"
	"redshift/internal/sql"
	"redshift/internal/types"
)

// propSeed pins the randomized-shape generator; override with SPILL_SEED
// to replay a failing dataset.
func propSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("SPILL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SPILL_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("spill property seed = %d (replay with SPILL_SEED=%d)", seed, seed)
	return seed
}

// govCtx builds a governed MemContext with the given root budget and a
// scratch dir that is torn down (and checked) at test end.
func govCtx(t *testing.T, limit int64) *MemContext {
	t.Helper()
	tr := NewMemTracker(limit, nil)
	dir := NewSpillDir(t.TempDir(), "prop")
	t.Cleanup(func() {
		if used := tr.Used(); used != 0 {
			t.Errorf("tracker holds %d bytes at test end, want 0", used)
		}
		dir.Cleanup()
	})
	return &MemContext{T: tr.Child(), Dir: dir, Stats: &SpillStats{}}
}

// randKVBatch builds a two-column (Int64 key, String payload) batch.
// Keys repeat mod dupMod (dupMod <= 1 means one giant key) and go NULL
// with probability nullProb.
func randKVBatch(rng *rand.Rand, n, dupMod int, nullProb float64) *Batch {
	kv := types.NewVector(types.Int64, n)
	pv := types.NewVector(types.String, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < nullProb {
			kv.AppendNull()
		} else if dupMod <= 1 {
			kv.Append(types.NewInt(42))
		} else {
			kv.Append(types.NewInt(int64(rng.Intn(dupMod))))
		}
		pv.Append(types.NewString(fmt.Sprintf("p%04d", rng.Intn(10000))))
	}
	b := NewBatch(2)
	b.Cols[0], b.Cols[1], b.N = kv, pv, n
	return b
}

// batchRowStrings renders every row for order-sensitive comparison.
func batchRowStrings(b *Batch) []string {
	if b == nil {
		return nil
	}
	out := make([]string, 0, b.N)
	for i := 0; i < b.N; i++ {
		out = append(out, fmt.Sprint(b.Row(i)))
	}
	return out
}

func sameRows(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d rows, want %d", label, len(got), len(want))
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: row %d = %s, want %s", label, i, got[i], want[i])
			return
		}
	}
}

// joinShape is one randomized grace-join scenario.
type joinShape struct {
	name             string
	buildN, probeN   int
	dupMod           int
	buildNull, probeNull float64
}

// TestPropGraceJoinMatchesInMemory drives the grace hash join through
// adversarial key distributions and compares its output — row for row, in
// order — against the ungoverned in-memory join over the same batches.
func TestPropGraceJoinMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	ctx := context.Background()

	// Sizes are chosen so the build side blows a 4 KiB grant (hundreds of
	// rows) while join fan-out stays bounded — dup-heavy keys multiply the
	// output, so build/dupMod x probe is kept in the tens of thousands.
	shapes := []joinShape{
		{"empty-build", 0, 500, 50, 0, 0},
		{"single-row-build", 1, 500, 50, 0, 0},
		{"dup-heavy", 900, 300, 30, 0, 0},
		{"one-giant-key", 600, 40, 1, 0, 0},
		{"all-null-build", 2000, 500, 50, 1, 0},
		{"all-null-probe", 2000, 500, 50, 0, 1},
		{"sprinkled-nulls", 1200, 800, 40, 0.1, 0.1},
	}
	for i := 0; i < 4; i++ {
		shapes = append(shapes, joinShape{
			name:      fmt.Sprintf("random-%d", i),
			buildN:    rng.Intn(1200),
			probeN:    rng.Intn(800),
			dupMod:    20 + rng.Intn(480),
			buildNull: float64(rng.Intn(3)) / 4,
			probeNull: float64(rng.Intn(3)) / 4,
		})
	}

	for _, kind := range []sql.JoinKind{sql.InnerJoin, sql.LeftJoin} {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%v/%s", kind, sh.name), func(t *testing.T) {
				// One dataset, consumed by both joins in identical batches.
				var build, probe []*Batch
				for n := sh.buildN; n > 0; n -= BatchSize {
					c := min(n, BatchSize)
					build = append(build, randKVBatch(rng, c, sh.dupMod, sh.buildNull))
				}
				for n := sh.probeN; n > 0; n -= BatchSize {
					c := min(n, BatchSize)
					probe = append(probe, randKVBatch(rng, c, sh.dupMod, sh.probeNull))
				}

				ref, err := NewHashJoin(Compiled, mkJoinStep(kind), 2)
				if err != nil {
					t.Fatal(err)
				}
				var want []string
				for _, b := range build {
					if err := ref.Build(b); err != nil {
						t.Fatal(err)
					}
				}
				for _, p := range probe {
					out, err := ref.Probe(p)
					if err != nil {
						t.Fatal(err)
					}
					want = append(want, batchRowStrings(out)...)
				}

				gov, err := NewHashJoin(Compiled, mkJoinStep(kind), 2)
				if err != nil {
					t.Fatal(err)
				}
				const limit = 4 << 10
				gov.SetMemory(govCtx(t, limit))
				var buildBytes int64
				for _, b := range build {
					buildBytes += b.ByteSize()
					if err := gov.Build(b); err != nil {
						t.Fatal(err)
					}
				}
				if buildBytes > 2*limit && !gov.Spilled() {
					t.Fatalf("%d-byte build side never spilled a %d-byte grant", buildBytes, limit)
				}

				var got []string
				if !gov.Spilled() {
					for _, p := range probe {
						out, err := gov.Probe(p)
						if err != nil {
							t.Fatal(err)
						}
						got = append(got, batchRowStrings(out)...)
					}
				} else {
					for _, p := range probe {
						if err := gov.spill.addProbe(p); err != nil {
							t.Fatal(err)
						}
					}
					st, err := gov.spill.run(ctx)
					if err != nil {
						t.Fatal(err)
					}
					for {
						b, err := st.Next(ctx)
						if err != nil {
							t.Fatal(err)
						}
						if b == nil {
							break
						}
						// Strip the trailing probe-sequence column.
						view := &Batch{Cols: b.Cols[:len(b.Cols)-1], N: b.N}
						got = append(got, batchRowStrings(view)...)
						PutBatch(b)
					}
				}
				sameRows(t, sh.name, got, want)
				gov.ReleaseMem()
			})
		}
	}
}

// TestPropExternalSortMatchesInMemory compares the external merge sort
// against a single stable in-memory SortBatch over presorted, reversed,
// duplicate-heavy, NULL-riddled and random inputs.
func TestPropExternalSortMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	ctx := context.Background()
	keys := []plan.OrderKey{{Index: 0}, {Index: 1, Desc: true}}

	gen := func(n int, mode string) *Batch {
		kv := types.NewVector(types.Int64, n)
		pv := types.NewVector(types.String, n)
		for i := 0; i < n; i++ {
			switch mode {
			case "presorted":
				kv.Append(types.NewInt(int64(i)))
			case "reverse":
				kv.Append(types.NewInt(int64(n - i)))
			case "dup-heavy":
				kv.Append(types.NewInt(int64(i % 5)))
			case "nulls":
				if i%3 == 0 {
					kv.AppendNull()
				} else {
					kv.Append(types.NewInt(int64(rng.Intn(100))))
				}
			default:
				kv.Append(types.NewInt(int64(rng.Intn(100000))))
			}
			pv.Append(types.NewString(fmt.Sprintf("s%03d", rng.Intn(1000))))
		}
		b := NewBatch(2)
		b.Cols[0], b.Cols[1], b.N = kv, pv, n
		return b
	}

	for _, mode := range []string{"presorted", "reverse", "dup-heavy", "nulls", "random"} {
		for _, n := range []int{0, 1, 7000} {
			t.Run(fmt.Sprintf("%s-%d", mode, n), func(t *testing.T) {
				var batches []*Batch
				for left := n; left > 0; left -= BatchSize {
					batches = append(batches, gen(min(left, BatchSize), mode))
				}

				all := NewBatch(2)
				for _, b := range batches {
					if err := all.Concat(b); err != nil {
						t.Fatal(err)
					}
				}
				want := batchRowStrings(SortBatch(all, keys))

				s := NewExternalSorter(keys, 2, govCtx(t, 2<<10))
				var inBytes int64
				for _, b := range batches {
					inBytes += b.ByteSize()
					if err := s.Add(b); err != nil {
						t.Fatal(err)
					}
				}
				if inBytes > 8<<10 && !s.Spilled() {
					t.Fatalf("%d input bytes never spilled a 2KiB grant", inBytes)
				}
				st, err := s.Stream(ctx)
				if err != nil {
					t.Fatal(err)
				}
				var got []string
				for {
					b, err := st.Next(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if b == nil {
						break
					}
					got = append(got, batchRowStrings(b)...)
				}
				s.Release()
				sameRows(t, mode, got, want)
			})
		}
	}
}

// TestPropAggSpillMatchesInMemory compares partitioned-restart hash
// aggregation against the unlimited in-memory table across key skews,
// including the one-giant-key shape that must never recurse.
func TestPropAggSpillMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	specs := []plan.AggSpec{
		{Func: sql.FuncCount, T: types.Int64},
		{Func: sql.FuncSum, Arg: col(0, types.Int64), T: types.Int64},
		{Func: sql.FuncMin, Arg: col(1, types.String), T: types.String},
		{Func: sql.FuncCount, Arg: col(1, types.String), Distinct: true, T: types.Int64},
	}
	groupBy := []plan.Expr{col(0, types.Int64)}

	shapes := []struct {
		name     string
		rows     int
		dupMod   int
		nullProb float64
	}{
		{"empty", 0, 10, 0},
		{"one-giant-key", 6000, 1, 0},
		{"dup-heavy", 6000, 7, 0},
		{"high-cardinality", 6000, 100000, 0},
		{"all-null-keys", 3000, 10, 1},
		{"sprinkled-nulls", 5000, 50, 0.2},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			var batches []*Batch
			for left := sh.rows; left > 0; left -= BatchSize {
				batches = append(batches, randKVBatch(rng, min(left, BatchSize), sh.dupMod, sh.nullProb))
			}

			ref, err := NewGroupTable(Compiled, groupBy, specs)
			if err != nil {
				t.Fatal(err)
			}
			gov, err := NewGroupTable(Compiled, groupBy, specs)
			if err != nil {
				t.Fatal(err)
			}
			gov.SetMemory(govCtx(t, 2<<10))
			for _, b := range batches {
				if err := ref.Consume(b); err != nil {
					t.Fatal(err)
				}
				if err := gov.Consume(b); err != nil {
					t.Fatal(err)
				}
			}
			if sh.rows >= 5000 && sh.dupMod >= 1000 && !gov.Spilled() {
				t.Fatal("high-cardinality aggregation never spilled a 2KiB grant")
			}

			a, err := ref.Result()
			if err != nil {
				t.Fatal(err)
			}
			b, err := gov.Result()
			if err != nil {
				t.Fatal(err)
			}
			// Group emission order differs once partitions replay; compare
			// as key → row maps.
			toMap := func(batch *Batch) map[string]string {
				m := make(map[string]string, batch.N)
				for i := 0; i < batch.N; i++ {
					row := batch.Row(i)
					m[fmt.Sprint(row[0])] = fmt.Sprint(row)
				}
				return m
			}
			am, bm := toMap(a), toMap(b)
			if len(am) != len(bm) || a.N != b.N {
				t.Fatalf("group counts differ: %d vs %d", a.N, b.N)
			}
			for k, av := range am {
				if bv, ok := bm[k]; !ok || av != bv {
					t.Errorf("group %s: %s vs %s", k, av, bv)
				}
			}
			gov.ReleaseMem()
		})
	}
}

// TestAggAccountingTracksRealAllocations is the accounting regression
// bound: what the tracker charges for a big aggregation must be within a
// small constant factor of the real heap growth it causes — neither
// vanishing (undercounting lets a query blow past its grant) nor wildly
// inflated (overcounting forces pointless spills).
func TestAggAccountingTracksRealAllocations(t *testing.T) {
	specs := []plan.AggSpec{
		{Func: sql.FuncCount, T: types.Int64},
		{Func: sql.FuncSum, Arg: col(0, types.Int64), T: types.Int64},
		{Func: sql.FuncCount, Arg: col(1, types.String), Distinct: true, T: types.Int64},
	}
	groupBy := []plan.Expr{col(1, types.String)}

	g, err := NewGroupTable(Compiled, groupBy, specs)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewMemTracker(0, nil) // unlimited: every charge is forced, none refused
	g.SetMemory(&MemContext{T: tr.Child()})

	const rows = 40000
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)

	for off := 0; off < rows; off += BatchSize {
		n := min(rows-off, BatchSize)
		kv := types.NewVector(types.Int64, n)
		pv := types.NewVector(types.String, n)
		for i := 0; i < n; i++ {
			kv.Append(types.NewInt(int64(off + i)))
			pv.Append(types.NewString(fmt.Sprintf("group-%06d", off+i)))
		}
		b := NewBatch(2)
		b.Cols[0], b.Cols[1], b.N = kv, pv, n
		if err := g.Consume(b); err != nil {
			t.Fatal(err)
		}
	}

	runtime.GC()
	runtime.ReadMemStats(&ms2)
	real := int64(ms2.HeapAlloc) - int64(ms1.HeapAlloc)
	charged := tr.Used()
	t.Logf("charged=%d real-heap-growth=%d ratio=%.2f", charged, real, float64(charged)/float64(real))

	if charged == 0 {
		t.Fatal("tracker charged nothing for a 40k-group aggregation")
	}
	// Generous envelope: the estimate must be the right order of
	// magnitude, not byte-exact. 40k groups x several states is ~10MB, so
	// GC noise from the test harness is a rounding error here.
	if real > 0 && (charged < real/4 || charged > real*6) {
		t.Errorf("charged %d bytes vs %d real heap growth — accounting drifted out of [x0.25, x6]",
			charged, real)
	}
	if sb := g.StateBytes(); sb > charged {
		t.Errorf("StateBytes %d exceeds tracker charge %d — overheads must be >= payload", sb, charged)
	}
	g.ReleaseMem()
	runtime.KeepAlive(g)
}
