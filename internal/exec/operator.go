package exec

import (
	"context"
	"sync/atomic"
	"time"

	"redshift/internal/plan"
	"redshift/internal/storage"
	"redshift/internal/telemetry"
	"redshift/internal/types"
)

// Operator is one node of a streaming physical-operator chain: the
// pull-based (Volcano-style) execution model of §2.1, where intermediate
// results flow batch-at-a-time through a fused per-slice pipeline instead
// of being fully materialized between stages. Next returns (nil, nil) at
// end of stream. Operators are single-consumer: one goroutine drives a
// chain end to end.
//
// The context flows through every pull so cancellation (Database.Cancel,
// statement_timeout) reaches the leaves: scans check it per block pull
// and exchange receives select on it, bounding abort latency to one
// batch boundary. Close never takes a context — cleanup must run even
// after cancellation.
type Operator interface {
	Open(ctx context.Context) error
	Next(ctx context.Context) (*Batch, error)
	Close() error
}

// BatchSource replays a fixed batch list — system-table rows and other
// already-materialized inputs.
type BatchSource struct {
	batches []*Batch
	i       int
}

// NewBatchSource wraps batches as an Operator.
func NewBatchSource(batches []*Batch) *BatchSource { return &BatchSource{batches: batches} }

func (s *BatchSource) Open(ctx context.Context) error { return nil }

func (s *BatchSource) Next(ctx context.Context) (*Batch, error) {
	for s.i < len(s.batches) {
		b := s.batches[s.i]
		s.i++
		if b != nil && b.N > 0 {
			return b, nil
		}
	}
	return nil, nil
}

func (s *BatchSource) Close() error { return nil }

// ScanOp streams one table's visible segments on one slice, one block
// row-group per Next pull.
type ScanOp struct {
	sc   *Scanner
	segs []*storage.Segment
	si   int
	bi   int
}

// NewScanOp wraps a prepared Scanner over a segment list.
func NewScanOp(sc *Scanner, segs []*storage.Segment) *ScanOp {
	return &ScanOp{sc: sc, segs: segs}
}

func (o *ScanOp) Open(ctx context.Context) error { return nil }

func (o *ScanOp) Next(ctx context.Context) (*Batch, error) {
	for o.si < len(o.segs) {
		// The per-pull check is what bounds cancellation latency at the
		// pipeline's leaves.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seg := o.segs[o.si]
		if o.bi >= seg.NumBlocks() {
			o.si++
			o.bi = 0
			continue
		}
		if seg.Schema.Len() != o.sc.width {
			return nil, errWidth("segment", seg.Schema.Len(), o.sc.width)
		}
		bi := o.bi
		o.bi++
		b, err := o.sc.ScanBlock(ctx, seg, bi)
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
	}
	return nil, nil
}

func (o *ScanOp) Close() error { return nil }

// FilterOp streams its child through a predicate, dropping emptied batches.
type FilterOp struct {
	child Operator
	f     *Filter
}

// NewFilterOp prepares a streaming filter; a nil predicate passes through.
func NewFilterOp(mode Mode, pred plan.Expr, child Operator) (*FilterOp, error) {
	f, err := NewFilter(mode, pred)
	if err != nil {
		return nil, err
	}
	return &FilterOp{child: child, f: f}, nil
}

func (o *FilterOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *FilterOp) Next(ctx context.Context) (*Batch, error) {
	for {
		b, err := o.child.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		fb, err := o.f.Apply(b)
		if err != nil {
			return nil, err
		}
		if fb != b {
			// The gather copied the surviving rows; the input batch is
			// consumed and this operator is its sole owner.
			PutBatch(b)
		}
		if fb.N > 0 {
			return fb, nil
		}
		if fb != b {
			PutBatch(fb)
		}
	}
}

func (o *FilterOp) Close() error { return o.child.Close() }

// ProjectOp computes the output columns batch by batch.
type ProjectOp struct {
	child Operator
	proj  *Projector
}

// NewProjectOp prepares a streaming projection.
func NewProjectOp(mode Mode, exprs []plan.Expr, child Operator) (*ProjectOp, error) {
	proj, err := NewProjector(mode, exprs)
	if err != nil {
		return nil, err
	}
	return &ProjectOp{child: child, proj: proj}, nil
}

func (o *ProjectOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *ProjectOp) Next(ctx context.Context) (*Batch, error) {
	b, err := o.child.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	return o.proj.Apply(b)
}

func (o *ProjectOp) Close() error { return o.child.Close() }

// HashJoinOp is the join's pipeline breaker on the build side only: Open
// drains the build child into the hash table, then probe batches stream
// through without materialization. If the build side overflowed its
// memory grant, Next instead drains the probe side into grace-join
// partitions and streams the merged per-partition join output, which is
// row-for-row identical to the in-memory order.
type HashJoinOp struct {
	join  *HashJoin
	build Operator
	probe Operator

	spillOut batchStream // set once the spilled probe has been partitioned and joined
}

// NewHashJoinOp pairs a prepared HashJoin with its input operators.
func NewHashJoinOp(join *HashJoin, build, probe Operator) *HashJoinOp {
	return &HashJoinOp{join: join, build: build, probe: probe}
}

func (o *HashJoinOp) Open(ctx context.Context) error {
	if err := o.build.Open(ctx); err != nil {
		o.build.Close()
		return err
	}
	for {
		b, err := o.build.Next(ctx)
		if err != nil {
			o.build.Close()
			return err
		}
		if b == nil {
			break
		}
		if err := o.join.Build(b); err != nil {
			o.build.Close()
			return err
		}
	}
	if err := o.build.Close(); err != nil {
		return err
	}
	return o.probe.Open(ctx)
}

func (o *HashJoinOp) Next(ctx context.Context) (*Batch, error) {
	if o.join.Spilled() {
		return o.spillNext(ctx)
	}
	for {
		b, err := o.probe.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		joined, err := o.join.Probe(b)
		if err != nil {
			return nil, err
		}
		// Probe assembled a fresh batch (columns are gathered copies), so
		// the probe input is consumed here. Build-side batches are NOT
		// released anywhere: a broadcast exchange shares one batch across
		// every consumer slice.
		PutBatch(b)
		if joined.N > 0 {
			return joined, nil
		}
		PutBatch(joined)
	}
}

// spillNext runs the grace join: partition the whole probe stream to
// scratch files, join each partition pair, then stream the seq-merged
// output with the carry column stripped.
func (o *HashJoinOp) spillNext(ctx context.Context) (*Batch, error) {
	if o.spillOut == nil {
		for {
			b, err := o.probe.Next(ctx)
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			err = o.join.spill.addProbe(b)
			PutBatch(b)
			if err != nil {
				return nil, err
			}
		}
		out, err := o.join.spill.run(ctx)
		if err != nil {
			return nil, err
		}
		o.spillOut = out
	}
	for {
		b, err := o.spillOut.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		b.Cols = b.Cols[:len(b.Cols)-1] // strip the probe-sequence carry
		if b.N > 0 {
			return b, nil
		}
		PutBatch(b)
	}
}

func (o *HashJoinOp) Close() error {
	o.join.ReleaseMem()
	return o.probe.Close()
}

// PartialAggOp is a full pipeline breaker: it folds its entire input into a
// slice-local group table and emits nothing — the leader merges the tables.
type PartialAggOp struct {
	child Operator
	gt    *GroupTable
	done  bool
}

// NewPartialAggOp prepares the slice-local aggregation phase.
func NewPartialAggOp(gt *GroupTable, child Operator) *PartialAggOp {
	return &PartialAggOp{child: child, gt: gt}
}

func (o *PartialAggOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *PartialAggOp) Next(ctx context.Context) (*Batch, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	for {
		b, err := o.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		if err := o.gt.Consume(b); err != nil {
			return nil, err
		}
		// Consume copies values into accumulator states; the batch is
		// spent and this breaker is its sole owner.
		PutBatch(b)
	}
}

func (o *PartialAggOp) Close() error { return o.child.Close() }

// Table exposes the accumulated partial state after the chain is drained.
func (o *PartialAggOp) Table() *GroupTable { return o.gt }

// StreamDistinctOp drops rows already seen earlier in the stream. It is NOT
// a pipeline breaker: first-occurrence order is exactly what batchwise
// filtering with a shared seen-set produces.
type StreamDistinctOp struct {
	child Operator
	seen  map[string]bool
}

// NewStreamDistinctOp prepares a streaming partial-distinct.
func NewStreamDistinctOp(child Operator) *StreamDistinctOp {
	return &StreamDistinctOp{child: child, seen: map[string]bool{}}
}

func (o *StreamDistinctOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *StreamDistinctOp) Next(ctx context.Context) (*Batch, error) {
	row := make([]types.Value, 0, 8)
	for {
		b, err := o.child.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		var sel []int
		row = row[:0]
		for c := 0; c < len(b.Cols); c++ {
			row = append(row, types.Value{})
		}
		for i := 0; i < b.N; i++ {
			for c, v := range b.Cols {
				if v != nil {
					row[c] = v.Get(i)
				} else {
					row[c] = types.Value{}
				}
			}
			k := KeyEncoder(row)
			if !o.seen[k] {
				o.seen[k] = true
				sel = append(sel, i)
			}
		}
		if len(sel) == b.N {
			return b, nil
		}
		if len(sel) > 0 {
			out := b.Gather(sel)
			PutBatch(b)
			return out, nil
		}
		PutBatch(b)
	}
}

func (o *StreamDistinctOp) Close() error { return o.child.Close() }

// TopNOp is a pipeline breaker: it sorts its whole input through an
// ExternalSorter (spilling runs when over the memory grant), truncates to
// the limit, and emits exactly one batch (possibly empty) — the
// slice-local ORDER BY + LIMIT pushdown.
type TopNOp struct {
	child Operator
	keys  []plan.OrderKey
	limit int64
	width int
	mc    *MemContext
	done  bool
}

// NewTopNOp prepares a slice-local top-N over a stream of the given width.
func NewTopNOp(child Operator, keys []plan.OrderKey, limit int64, width int) *TopNOp {
	return &TopNOp{child: child, keys: keys, limit: limit, width: width}
}

// SetMemory attaches the operator to the query's memory governance.
func (o *TopNOp) SetMemory(mc *MemContext) { o.mc = mc }

func (o *TopNOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *TopNOp) Next(ctx context.Context) (*Batch, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	sorter := NewExternalSorter(o.keys, o.width, o.mc)
	for {
		b, err := o.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		err = sorter.Add(b)
		// Add copied the rows; the streamed batch is spent.
		PutBatch(b)
		if err != nil {
			return nil, err
		}
	}
	return collectSorted(ctx, sorter, o.width, o.limit)
}

// collectSorted drains a sorter's merged stream into one batch, stopping
// once limit rows (if any) have been gathered.
func collectSorted(ctx context.Context, sorter *ExternalSorter, width int, limit int64) (*Batch, error) {
	stream, err := sorter.Stream(ctx)
	if err != nil {
		return nil, err
	}
	out := NewBatch(width)
	for {
		if limit >= 0 && int64(out.N) >= limit {
			break
		}
		b, err := stream.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		err = out.Concat(b)
		PutBatch(b)
		if err != nil {
			return nil, err
		}
	}
	return TopN(out, limit), nil
}

func (o *TopNOp) Close() error {
	o.mc.release()
	return o.child.Close()
}

// GroupMergeOp is the leader's aggregation phase: it merges the per-slice
// partial tables into a fresh leader table and emits the aggregate layout
// once. A dedicated leader table (rather than reusing slice 0's) keeps
// the merge correct when slice tables spilled: draining a spilled table
// interleaves resident and re-aggregated groups, and merging into a table
// with its own pending partitions would double-emit keys. ship observes
// each non-leader table before merging (gather-transfer accounting).
type GroupMergeOp struct {
	leader *GroupTable
	tables []*GroupTable
	ship   func(sl int, t *GroupTable)
	done   bool
}

// NewGroupMergeOp prepares the leader merge; ship may be nil.
func NewGroupMergeOp(leader *GroupTable, tables []*GroupTable, ship func(sl int, t *GroupTable)) *GroupMergeOp {
	return &GroupMergeOp{leader: leader, tables: tables, ship: ship}
}

func (o *GroupMergeOp) Open(ctx context.Context) error { return nil }

func (o *GroupMergeOp) Next(ctx context.Context) (*Batch, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	for sl, t := range o.tables {
		if sl > 0 && o.ship != nil {
			o.ship(sl, t)
		}
		if err := o.leader.MergeCtx(ctx, t); err != nil {
			return nil, err
		}
	}
	return o.leader.ResultCtx(ctx)
}

func (o *GroupMergeOp) Close() error {
	o.leader.ReleaseMem()
	for _, t := range o.tables {
		t.ReleaseMem()
	}
	return nil
}

// LeaderMergeOp gathers per-slice result streams at the leader: a sorted
// merge when every slice pre-sorted its output (the top-N pushdown path),
// otherwise a slice-order replay of the gathered batches.
type LeaderMergeOp struct {
	perSlice [][]*Batch
	keys     []plan.OrderKey
	sorted   bool

	flat []*Batch
	i    int
	done bool
}

// NewLeaderMergeOp prepares the gather step. sorted selects the merge of
// pre-sorted single-batch slices.
func NewLeaderMergeOp(perSlice [][]*Batch, keys []plan.OrderKey, sorted bool) *LeaderMergeOp {
	return &LeaderMergeOp{perSlice: perSlice, keys: keys, sorted: sorted}
}

func (o *LeaderMergeOp) Open(ctx context.Context) error {
	if !o.sorted {
		for _, bs := range o.perSlice {
			o.flat = append(o.flat, bs...)
		}
	}
	return nil
}

func (o *LeaderMergeOp) Next(ctx context.Context) (*Batch, error) {
	if o.sorted {
		if o.done {
			return nil, nil
		}
		o.done = true
		var firsts []*Batch
		for _, bs := range o.perSlice {
			if len(bs) > 0 {
				firsts = append(firsts, bs[0])
			}
		}
		return MergeSorted(firsts, o.keys)
	}
	for o.i < len(o.flat) {
		b := o.flat[o.i]
		o.i++
		if b != nil && b.N > 0 {
			return b, nil
		}
	}
	return nil, nil
}

func (o *LeaderMergeOp) Close() error { return nil }

// FinalizeOp applies leader-side DISTINCT, ORDER BY and LIMIT. It is a
// breaker when any of those is set; either way it emits exactly one batch
// so the driver always has a well-formed (possibly empty) result.
// DISTINCT filters streamwise (first occurrence wins, as before), ORDER
// BY runs through an ExternalSorter so a larger-than-memory leader sort
// spills runs instead of holding everything; without ORDER BY the leader
// must materialize the result anyway and the concat is charged (forced)
// so peak accounting stays honest.
type FinalizeOp struct {
	child    Operator
	distinct bool
	keys     []plan.OrderKey
	limit    int64
	width    int
	mc       *MemContext
	done     bool
}

// NewFinalizeOp prepares the leader's final step over a stream of width
// columns.
func NewFinalizeOp(child Operator, distinct bool, keys []plan.OrderKey, limit int64, width int) *FinalizeOp {
	return &FinalizeOp{child: child, distinct: distinct, keys: keys, limit: limit, width: width}
}

// SetMemory attaches the operator to the query's memory governance.
func (o *FinalizeOp) SetMemory(mc *MemContext) { o.mc = mc }

func (o *FinalizeOp) Next(ctx context.Context) (*Batch, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	var seen map[string]bool
	var row []types.Value
	if o.distinct {
		seen = map[string]bool{}
		row = make([]types.Value, o.width)
	}
	var sorter *ExternalSorter
	var merged *Batch
	if len(o.keys) > 0 {
		sorter = NewExternalSorter(o.keys, o.width, o.mc)
	} else {
		merged = NewBatch(o.width)
	}
	for {
		b, err := o.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if b.N == 0 {
			continue
		}
		// Leader-merge batches are shared with the gather lists, so the
		// child's batches are never released here; gathered copies are.
		fb := b
		if o.distinct {
			var sel []int
			for i := 0; i < b.N; i++ {
				for c, v := range b.Cols {
					if v != nil {
						row[c] = v.Get(i)
					} else {
						row[c] = types.Value{}
					}
				}
				k := KeyEncoder(row)
				if !seen[k] {
					seen[k] = true
					o.mc.grow(int64(len(k)) + 48)
					sel = append(sel, i)
				}
			}
			if len(sel) == 0 {
				continue
			}
			if len(sel) < b.N {
				fb = b.Gather(sel)
			}
		}
		if sorter != nil {
			err = sorter.Add(fb)
		} else {
			err = merged.Concat(fb)
			o.mc.grow(fb.ByteSize())
		}
		if fb != b {
			PutBatch(fb)
		}
		if err != nil {
			return nil, err
		}
	}
	if sorter != nil {
		return collectSorted(ctx, sorter, o.width, o.limit)
	}
	return TopN(merged, o.limit), nil
}

func (o *FinalizeOp) Open(ctx context.Context) error { return o.child.Open(ctx) }

func (o *FinalizeOp) Close() error {
	o.mc.release()
	return o.child.Close()
}

// FlightTracker counts batches that have been produced but not yet retired
// anywhere in a query's pipelines — including batches parked in exchange
// buffers. The high-water mark is the query's peak count of live
// intermediate batches: O(slices × pipeline depth) for a streaming
// executor, O(table size) for a materializing one. All methods are
// nil-receiver safe.
type FlightTracker struct {
	cur  atomic.Int64
	peak atomic.Int64
	// live, when set, mirrors the current count into a shared gauge
	// (exec_batches_in_flight) so /metrics shows pipeline pressure.
	live *telemetry.Gauge
}

// NewFlightTracker returns a tracker mirroring into live (which may be nil).
func NewFlightTracker(live *telemetry.Gauge) *FlightTracker {
	return &FlightTracker{live: live}
}

// Inc records one batch entering flight.
func (f *FlightTracker) Inc() {
	if f == nil {
		return
	}
	c := f.cur.Add(1)
	for {
		p := f.peak.Load()
		if c <= p || f.peak.CompareAndSwap(p, c) {
			break
		}
	}
	if f.live != nil {
		f.live.Add(1)
	}
}

// Dec records one batch retired.
func (f *FlightTracker) Dec() {
	if f == nil {
		return
	}
	f.cur.Add(-1)
	if f.live != nil {
		f.live.Add(-1)
	}
}

// Current returns the live batch count.
func (f *FlightTracker) Current() int64 {
	if f == nil {
		return 0
	}
	return f.cur.Load()
}

// HighWater returns the peak live batch count.
func (f *FlightTracker) HighWater() int64 {
	if f == nil {
		return 0
	}
	return f.peak.Load()
}

// OpStats accumulates one physical operator's runtime counters, shared by
// all of its per-slice instances. Nanos is inclusive (child time counted),
// like EXPLAIN ANALYZE actual time.
type OpStats struct {
	Rows    atomic.Int64
	Batches atomic.Int64
	Nanos   atomic.Int64
}

// instrumented decorates an Operator with the per-operator telemetry the
// trace tree is built from — rows, batches, cumulative time — and tracks
// emitted batches in a FlightTracker. A batch is retired when the consumer
// pulls again (or closes): the pull contract means the consumer is done
// with the previous batch by then.
type instrumented struct {
	op          Operator
	st          *OpStats
	fl          *FlightTracker
	outstanding bool
}

// Instrument wraps op; st and fl may each be nil.
func Instrument(op Operator, st *OpStats, fl *FlightTracker) Operator {
	if st == nil && fl == nil {
		return op
	}
	return &instrumented{op: op, st: st, fl: fl}
}

func (o *instrumented) Open(ctx context.Context) error {
	start := time.Now()
	err := o.op.Open(ctx)
	if o.st != nil {
		o.st.Nanos.Add(int64(time.Since(start)))
	}
	return err
}

func (o *instrumented) Next(ctx context.Context) (*Batch, error) {
	if o.outstanding {
		o.fl.Dec()
		o.outstanding = false
	}
	start := time.Now()
	b, err := o.op.Next(ctx)
	if o.st != nil {
		o.st.Nanos.Add(int64(time.Since(start)))
	}
	if b != nil {
		if o.st != nil {
			o.st.Batches.Add(1)
			o.st.Rows.Add(int64(b.N))
		}
		if o.fl != nil {
			o.fl.Inc()
			o.outstanding = true
		}
	}
	return b, err
}

func (o *instrumented) Close() error {
	if o.outstanding {
		o.fl.Dec()
		o.outstanding = false
	}
	start := time.Now()
	err := o.op.Close()
	if o.st != nil {
		o.st.Nanos.Add(int64(time.Since(start)))
	}
	return err
}
