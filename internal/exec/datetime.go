package exec

import (
	"fmt"
	"time"

	"redshift/internal/types"
)

// toTime converts a Date or Timestamp value to time.Time (UTC).
func toTime(v types.Value) time.Time {
	if v.T == types.Date {
		return types.DaysToDate(v.I)
	}
	return time.UnixMicro(v.I).UTC()
}

// fromTime converts a time back to the given temporal type.
func fromTime(t types.Type, tm time.Time) types.Value {
	if t == types.Date {
		return types.NewDate(types.DateToDays(tm))
	}
	return types.NewTimestamp(tm.UTC().UnixMicro())
}

// dateTrunc truncates a temporal value to the named unit.
func dateTrunc(unit string, v types.Value) (types.Value, error) {
	tm := toTime(v)
	var out time.Time
	switch unit {
	case "year":
		out = time.Date(tm.Year(), 1, 1, 0, 0, 0, 0, time.UTC)
	case "quarter":
		qm := time.Month((int(tm.Month())-1)/3*3 + 1)
		out = time.Date(tm.Year(), qm, 1, 0, 0, 0, 0, time.UTC)
	case "month":
		out = time.Date(tm.Year(), tm.Month(), 1, 0, 0, 0, 0, time.UTC)
	case "week":
		// ISO week: Monday start. Weekday() has Sunday=0, so shift by 6.
		wd := (int(tm.Weekday()) + 6) % 7
		out = time.Date(tm.Year(), tm.Month(), tm.Day()-wd, 0, 0, 0, 0, time.UTC)
	case "day":
		out = time.Date(tm.Year(), tm.Month(), tm.Day(), 0, 0, 0, 0, time.UTC)
	case "hour":
		out = tm.Truncate(time.Hour)
	case "minute":
		out = tm.Truncate(time.Minute)
	default:
		return types.Value{}, fmt.Errorf("exec: date_trunc: bad unit %q", unit)
	}
	return fromTime(v.T, out), nil
}
