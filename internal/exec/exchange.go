package exec

import (
	"context"
	"errors"
	"sync"

	"redshift/internal/faults"
	"redshift/internal/plan"
	"redshift/internal/types"
)

// Exchange moves batches between per-slice pipelines through bounded
// per-(src,dst) channels: the data-movement operator behind shuffle and
// broadcast joins. The small buffers give backpressure — a slow consumer
// throttles its producers instead of the system buffering a whole
// repartitioned table — and the per-pair channels keep consumption
// deterministic: each receiver drains source 0's stream, then source 1's,
// and so on, so a query's output is bit-identical run to run.
type Exchange struct {
	n     int
	chans [][]chan *Batch // [src][dst]
	done  chan struct{}
	once  sync.Once
	err   error // written once before done closes
	// account observes every delivered batch (transfer accounting lives in
	// the exchange now, not in the driver); may be nil.
	account AccountFn
	fl      *FlightTracker
	// inj, when set, fires the exec.exchange.send site on every handoff —
	// the in-process stand-in for a flaky inter-node link.
	inj *faults.Injector
}

// AccountFn observes one batch delivered from src slice to dst slice.
type AccountFn func(src, dst int, b *Batch)

// RouteFn splits one batch into per-destination parts (nil/empty parts are
// skipped). The returned slice is indexed by destination.
type RouteFn func(*Batch) ([]*Batch, error)

// NewExchange creates an n-way exchange with buf batches of slack per
// (src,dst) pair.
func NewExchange(n, buf int, account AccountFn, fl *FlightTracker) *Exchange {
	e := &Exchange{
		n:       n,
		chans:   make([][]chan *Batch, n),
		done:    make(chan struct{}),
		account: account,
		fl:      fl,
	}
	for src := range e.chans {
		e.chans[src] = make([]chan *Batch, n)
		for dst := range e.chans[src] {
			e.chans[src][dst] = make(chan *Batch, buf)
		}
	}
	return e
}

// SetFaults attaches a fault injector to the send path (nil detaches).
func (e *Exchange) SetFaults(inj *faults.Injector) { e.inj = inj }

// Abort cancels the exchange: pending and future sends and receives return
// err. The first abort wins.
func (e *Exchange) Abort(err error) {
	if err == nil {
		err = errors.New("exec: exchange aborted")
	}
	e.once.Do(func() {
		e.err = err
		close(e.done)
	})
}

// Err returns the abort error, or nil while the exchange is healthy.
func (e *Exchange) Err() error {
	select {
	case <-e.done:
		return e.err
	default:
		return nil
	}
}

// Send delivers one batch from src to dst, blocking while dst's buffer is
// full (backpressure) and failing once the exchange is aborted or the
// context is cancelled.
func (e *Exchange) Send(ctx context.Context, src, dst int, b *Batch) error {
	// The fault site fires before accounting or flight tracking: an
	// injected link failure loses the batch before it was ever "on the
	// wire". Latency rules model a slow link.
	if e.inj != nil {
		if err := e.inj.Hit(faults.SiteExchangeSend); err != nil {
			e.Abort(err)
			return err
		}
	}
	// Account before the channel op: ownership passes to the consumer the
	// moment the send succeeds, and a released batch must not be read.
	// (An aborted send over-accounts one batch; the query failed anyway.)
	if e.account != nil {
		e.account(src, dst, b)
	}
	// Inc before the channel op so the consumer's Dec can never observe the
	// batch before it was counted.
	e.fl.Inc()
	select {
	case e.chans[src][dst] <- b:
		return nil
	case <-e.done:
		e.fl.Dec()
		return e.err
	case <-ctx.Done():
		e.fl.Dec()
		return ctx.Err()
	}
}

// closeSend marks src's streams complete for every destination.
func (e *Exchange) closeSend(src int) {
	for _, ch := range e.chans[src] {
		close(ch)
	}
}

// Produce drives op to exhaustion, routing every output batch to its
// destinations. It always closes src's streams on the way out and aborts
// the exchange on any failure, so consumers never hang.
func (e *Exchange) Produce(ctx context.Context, src int, op Operator, route RouteFn) {
	defer e.closeSend(src)
	if err := op.Open(ctx); err != nil {
		e.Abort(err)
		op.Close()
		return
	}
loop:
	for {
		b, err := op.Next(ctx)
		if err != nil {
			e.Abort(err)
			break
		}
		if b == nil {
			break
		}
		parts, err := route(b)
		if err != nil {
			e.Abort(err)
			break
		}
		for dst, p := range parts {
			if p == nil || p.N == 0 {
				continue
			}
			if err := e.Send(ctx, src, dst, p); err != nil {
				break loop
			}
		}
	}
	if err := op.Close(); err != nil {
		e.Abort(err)
	}
}

// Drain empties every channel after all producers and consumers have
// stopped, retiring parked batches from the flight tracker — the early-
// stop path (error, LIMIT, cancel) otherwise leaks whatever the buffers
// held. Drained batches are dropped to the GC, NOT returned to the pool:
// a broadcast batch may sit in several destination buffers at once, and
// double-pooling one would corrupt every later query sharing the pool.
// It returns how many batches were retired. The caller must guarantee no
// Send or Recv is still running.
func (e *Exchange) Drain() int {
	n := 0
	for _, row := range e.chans {
		for _, ch := range row {
		drainChan:
			for {
				select {
				case b, ok := <-ch:
					if !ok {
						break drainChan // closed and empty
					}
					if b != nil {
						e.fl.Dec()
						n++
					}
				default:
					break drainChan // open but empty
				}
			}
		}
	}
	return n
}

// RecvOp streams one destination's inbound batches, draining sources in
// index order (deterministic assembly).
type RecvOp struct {
	e   *Exchange
	dst int
	src int
}

// NewRecvOp returns dst's receiving operator.
func NewRecvOp(e *Exchange, dst int) *RecvOp { return &RecvOp{e: e, dst: dst} }

func (o *RecvOp) Open(ctx context.Context) error { return nil }

func (o *RecvOp) Next(ctx context.Context) (*Batch, error) {
	for o.src < o.e.n {
		select {
		case b, ok := <-o.e.chans[o.src][o.dst]:
			if !ok {
				o.src++
				continue
			}
			o.e.fl.Dec()
			return b, nil
		case <-o.e.done:
			return nil, o.e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// All producers closed cleanly; surface a late abort if one happened.
	return nil, o.e.Err()
}

func (o *RecvOp) Close() error { return nil }

// BroadcastRoute replicates every batch to all n destinations. Consumers
// must treat inbound batches as read-only (hash-join build does).
func BroadcastRoute(n int) RouteFn {
	return func(b *Batch) ([]*Batch, error) {
		parts := make([]*Batch, n)
		for i := range parts {
			parts[i] = b
		}
		return parts, nil
	}
}

// NewShuffleRouter partitions rows across n destinations by the hash of the
// key expressions — the same hash the cluster layer distributes rows with,
// so planner co-location reasoning and executor shuffles agree.
func NewShuffleRouter(mode Mode, keys []plan.Expr, n int) (RouteFn, error) {
	evs := make([]*Evaluator, len(keys))
	for i, k := range keys {
		ev, err := NewEvaluator(mode, k)
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	return func(b *Batch) ([]*Batch, error) {
		keyVecs := make([]*types.Vector, len(evs))
		for i, ev := range evs {
			v, err := ev.Eval(b)
			if err != nil {
				return nil, err
			}
			keyVecs[i] = v
		}
		sel := make([][]int, n)
		keyRow := make([]types.Value, len(keyVecs))
		for r := 0; r < b.N; r++ {
			for i, v := range keyVecs {
				keyRow[i] = v.Get(r)
			}
			dst := int(HashValues(keyRow) % uint64(n))
			sel[dst] = append(sel[dst], r)
		}
		parts := make([]*Batch, n)
		for dst, rows := range sel {
			if len(rows) == 0 {
				continue
			}
			if len(rows) == b.N {
				parts[dst] = b
				continue
			}
			parts[dst] = b.Gather(rows)
		}
		return parts, nil
	}, nil
}
